//===- tests/crosscheck_test.cpp - Theory vs simulation cross-check -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Ties the committed bench baseline to the bounds layer: for every cell
// of the grid recorded in BENCH_pf_sim.json (the logm/logn/cs the E5
// bench last ran with), the simulated PF adversary must force at least
// the closed-form Theorem 1 heap size M * h(M, n, c) out of every
// c-partial manager. A failure convicts either the adversary
// implementation (too weak), the bounds layer (too strong), or a manager
// whose accounting breaches the c-partial contract. The grid parameters
// are parsed from the committed JSON rather than hard-coded so the test
// follows the baseline when it is regenerated.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "support/MathUtils.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pcb;

namespace {

#ifndef PCB_BENCH_BASELINE
#error "tests/CMakeLists.txt must define PCB_BENCH_BASELINE"
#endif

/// The slice of BENCH_pf_sim.json this test consumes.
struct BaselineGrid {
  unsigned LogM = 0;
  unsigned LogN = 0;
  std::vector<double> Cs;
};

/// Extracts the integer after "\"<key>\":". The baseline is written by
/// bench_pf_sim.cpp with one key per line, so a string scan is enough —
/// no JSON library in the test tree.
bool parseUIntField(const std::string &Text, const std::string &Key,
                    unsigned &Out) {
  size_t At = Text.find("\"" + Key + "\":");
  if (At == std::string::npos)
    return false;
  At = Text.find_first_of("0123456789", At);
  if (At == std::string::npos)
    return false;
  Out = unsigned(std::strtoul(Text.c_str() + At, nullptr, 10));
  return true;
}

bool parseBaseline(const std::string &Path, BaselineGrid &Grid) {
  std::ifstream IS(Path);
  if (!IS)
    return false;
  std::stringstream Buffer;
  Buffer << IS.rdbuf();
  const std::string Text = Buffer.str();
  if (!parseUIntField(Text, "logm", Grid.LogM) ||
      !parseUIntField(Text, "logn", Grid.LogN))
    return false;
  size_t At = Text.find("\"cs\":");
  if (At == std::string::npos)
    return false;
  size_t Open = Text.find('[', At);
  size_t Close = Text.find(']', At);
  if (Open == std::string::npos || Close == std::string::npos)
    return false;
  std::istringstream List(Text.substr(Open + 1, Close - Open - 1));
  std::string Item;
  while (std::getline(List, Item, ','))
    if (!Item.empty())
      Grid.Cs.push_back(std::strtod(Item.c_str(), nullptr));
  return !Grid.Cs.empty();
}

TEST(CrossCheck, BaselineParses) {
  BaselineGrid Grid;
  ASSERT_TRUE(parseBaseline(PCB_BENCH_BASELINE, Grid))
      << "cannot parse " << PCB_BENCH_BASELINE;
  // Sanity floor, not a pin: the adversary needs room to play (Theorem 1
  // wants M >> n) and at least one quota to sweep.
  EXPECT_GT(Grid.LogM, Grid.LogN);
  EXPECT_GE(Grid.Cs.size(), 1u);
}

TEST(CrossCheck, SimulatedPfClearsTheoremOneOnTheBaselineGrid) {
  BaselineGrid Grid;
  ASSERT_TRUE(parseBaseline(PCB_BENCH_BASELINE, Grid))
      << "cannot parse " << PCB_BENCH_BASELINE;
  const uint64_t M = pow2(Grid.LogM);
  const uint64_t N = pow2(Grid.LogN);

  // The bench's manager family minus its "sliding-unlimited" reference
  // row: that one is deliberately not c-partial and is the only row the
  // bench allows below h.
  const std::vector<std::string> Policies = {
      "first-fit", "best-fit",    "segregated-fit",
      "chunked",   "meshing",     "evacuating",
      "hybrid",    "sliding",     "paged-space",
      "bump-compactor"};

  for (double C : Grid.Cs) {
    BoundParams P{M, N, C};
    ASSERT_TRUE(P.valid()) << "baseline cell outside the formula domain";
    const double TheoryWords = cohenPetrankLowerHeapWords(P);
    for (const std::string &Policy : Policies) {
      Heap H;
      std::string Error;
      auto MM = createManagerChecked(Policy, H, C, /*LiveBound=*/M, &Error);
      ASSERT_TRUE(MM) << Error;
      CohenPetrankProgram PF(M, N, C);
      Execution E(*MM, PF, M);
      ExecutionResult R = E.run();
      EXPECT_GE(double(R.HeapSize) + 1e-9, TheoryWords)
          << Policy << " at c=" << C << " beat the Theorem 1 bound: HS "
          << R.HeapSize << " < M*h " << TheoryWords
          << " — adversary too weak, bound too strong, or the manager"
          << " breached its budget";
      // And the run must have respected the c-partial contract.
      EXPECT_LE(double(R.MovedWords),
                double(R.TotalAllocatedWords) / C + 1e-9)
          << Policy << " at c=" << C;
    }
  }
}

} // namespace
