//===- tests/mesh_probe_test.cpp - Disjointness probe vs oracle -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The meshing compactor's merge safety rests on one primitive:
// Heap::occupancyDisjoint, the word-AND probe over the occupancy
// bitboard. This suite certifies it against a naive per-cell oracle —
// one usedWordsIn query per address, no bit tricks — over hundreds of
// randomized occupancy boards plus the adversarial edge shapes
// (all-full, all-empty, a single object straddling a window boundary,
// unaligned windows, address-space-boundary windows).
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"
#include "heap/HeapTypes.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace pcb;

namespace {

/// The oracle: per-cell occupancy comparison, one query per address.
bool naiveDisjoint(const Heap &H, Addr A, Addr B, uint64_t Size) {
  for (uint64_t I = 0; I != Size; ++I)
    if (H.usedWordsIn(A + I, 1) != 0 && H.usedWordsIn(B + I, 1) != 0)
      return false;
  return true;
}

/// Fills [Start, Start + Size) with random objects until \p Tries
/// placements have been attempted (collisions are simply skipped), so
/// boards range from sparse to nearly full.
void fillRandomly(Heap &H, Rng &R, Addr Start, uint64_t Size,
                  unsigned Tries) {
  for (unsigned T = 0; T != Tries; ++T) {
    uint64_t Len = R.nextInRange(1, 8);
    if (Len > Size)
      Len = Size;
    Addr At = Start + R.nextBelow(Size - Len + 1);
    if (H.isFree(At, Len))
      H.place(At, Len);
  }
}

/// One randomized board: two windows with random occupancy, probe vs
/// oracle. Returns the number of probes checked.
unsigned checkRandomBoard(Rng &R, bool Aligned) {
  Heap H;
  uint64_t Words = R.nextInRange(1, 6);
  uint64_t Size = Aligned ? Words * 64 : R.nextInRange(1, 6 * 64);
  // Non-overlapping windows with a random gap; sometimes let them abut.
  Addr A = Aligned ? 64 * R.nextBelow(4) : R.nextBelow(256);
  Addr B = A + Size + (Aligned ? 64 * R.nextBelow(4) : R.nextBelow(128));
  if (Aligned)
    B = (B + 63) / 64 * 64;
  unsigned Tries = unsigned(R.nextInRange(0, 24));
  fillRandomly(H, R, A, Size, Tries);
  fillRandomly(H, R, B, Size, Tries);
  // Sometimes drop an object straddling a window edge.
  if (R.nextBool(0.3)) {
    Addr Edge = R.nextBool(0.5) ? A : B;
    if (R.nextBool(0.5))
      Edge += Size;
    Addr At = Edge >= 4 ? Edge - 4 : 0;
    if (H.isFree(At, 8))
      H.place(At, 8);
  }
  bool Probe = H.occupancyDisjoint(A, B, Size);
  bool Oracle = naiveDisjoint(H, A, B, Size);
  EXPECT_EQ(Probe, Oracle) << "A=" << A << " B=" << B << " Size=" << Size;
  return 1;
}

// The acceptance criterion: >= 500 randomized boards, zero mismatches.
TEST(MeshProbe, MatchesNaiveOracleOnRandomAlignedBoards) {
  Rng R(0xd1570117);
  unsigned Boards = 0;
  for (int Iter = 0; Iter != 300; ++Iter)
    Boards += checkRandomBoard(R, /*Aligned=*/true);
  EXPECT_GE(Boards, 300u);
}

TEST(MeshProbe, MatchesNaiveOracleOnRandomUnalignedBoards) {
  Rng R(0xdeadbeef);
  unsigned Boards = 0;
  for (int Iter = 0; Iter != 300; ++Iter)
    Boards += checkRandomBoard(R, /*Aligned=*/false);
  EXPECT_GE(Boards, 300u);
}

// --- Edge shapes ---------------------------------------------------------

TEST(MeshProbe, AllEmptyWindowsAreDisjoint) {
  Heap H;
  EXPECT_TRUE(H.occupancyDisjoint(0, 64, 64));
  EXPECT_TRUE(naiveDisjoint(H, 0, 64, 64));
  // Far beyond any committed board word.
  EXPECT_TRUE(H.occupancyDisjoint(1 << 20, 1 << 21, 256));
}

TEST(MeshProbe, AllFullWindowsCollideEverywhere) {
  Heap H;
  H.place(0, 64);
  H.place(64, 64);
  EXPECT_FALSE(H.occupancyDisjoint(0, 64, 64));
  EXPECT_FALSE(naiveDisjoint(H, 0, 64, 64));
}

TEST(MeshProbe, FullAgainstEmptyIsDisjoint) {
  Heap H;
  H.place(0, 64);
  EXPECT_TRUE(H.occupancyDisjoint(0, 64, 64));
  EXPECT_TRUE(naiveDisjoint(H, 0, 64, 64));
}

TEST(MeshProbe, SingleObjectStraddlingTheWindowBoundary) {
  // One object straddles out of window A: only its in-window prefix may
  // collide; the words beyond the window must not count.
  Heap H;
  H.place(60, 8); // covers A's offsets 60..63 and 4 words beyond
  EXPECT_TRUE(H.occupancyDisjoint(0, 128, 64))
      << "the straddler's tail lies outside both windows";
  EXPECT_TRUE(naiveDisjoint(H, 0, 128, 64));
  // An object at the same offsets of window B collides with the prefix…
  H.place(128 + 60, 4);
  EXPECT_FALSE(H.occupancyDisjoint(0, 128, 64));
  EXPECT_FALSE(naiveDisjoint(H, 0, 128, 64));
  // …but not once the probe is clipped short of the straddled offsets.
  EXPECT_TRUE(H.occupancyDisjoint(0, 128, 60));
  EXPECT_TRUE(naiveDisjoint(H, 0, 128, 60));
}

TEST(MeshProbe, ProbesAcrossTheDenseBoardCeiling) {
  // Windows beyond the dense occupancy board run on the interval-map
  // fallback; the probe must agree with the oracle there too.
  Heap H;
  const Addr High = (uint64_t(1) << 30);
  ObjectId HighObj = H.place(High + 3, 5);
  H.place(64 + 3, 5); // same in-window offsets, low window
  EXPECT_FALSE(H.occupancyDisjoint(64, High, 64));
  EXPECT_FALSE(naiveDisjoint(H, 64, High, 64));
  H.free(HighObj);
  EXPECT_TRUE(H.occupancyDisjoint(64, High, 64));
}

TEST(MeshProbe, ProbesAtTheAddressSpaceLimit) {
  // The meshing AddrLimit edge case rests on this: windows ending
  // exactly at AddrLimit probe correctly.
  Heap H;
  H.place(AddrLimit - 64, 8);
  H.place(AddrLimit - 128 + 32, 8);
  EXPECT_TRUE(H.occupancyDisjoint(AddrLimit - 128, AddrLimit - 64, 64));
  EXPECT_TRUE(naiveDisjoint(H, AddrLimit - 128, AddrLimit - 64, 64));
  H.place(AddrLimit - 128, 4); // now both windows use offset 0..3
  EXPECT_FALSE(H.occupancyDisjoint(AddrLimit - 128, AddrLimit - 64, 64));
}

} // namespace
