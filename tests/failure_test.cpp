//===- tests/failure_test.cpp - Failure injection / death tests ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The model's contracts are enforced by assertions that stay enabled in
// every build type; these tests inject violations and verify the process
// dies with the intended diagnostic rather than corrupting state.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "heap/FreeSpaceIndex.h"
#include "heap/Heap.h"
#include "mm/SequentialFitManagers.h"

#include <gtest/gtest.h>

using namespace pcb;

namespace {

TEST(FailureInjection, DoubleFreeDies) {
  EXPECT_DEATH(
      {
        Heap H;
        ObjectId A = H.place(0, 4);
        H.free(A);
        H.free(A);
      },
      "freeing a dead or unknown object");
}

TEST(FailureInjection, OverlappingPlacementDies) {
  EXPECT_DEATH(
      {
        Heap H;
        H.place(0, 8);
        H.place(4, 8);
      },
      "reserve target");
}

TEST(FailureInjection, MoveOntoLiveObjectDies) {
  EXPECT_DEATH(
      {
        Heap H;
        ObjectId A = H.place(0, 4);
        H.place(8, 4);
        H.move(A, 8);
      },
      "reserve target");
}

TEST(FailureInjection, MoveOfDeadObjectDies) {
  EXPECT_DEATH(
      {
        Heap H;
        ObjectId A = H.place(0, 4);
        H.free(A);
        H.move(A, 8);
      },
      "moving a dead or unknown object");
}

TEST(FailureInjection, ZeroSizeAllocationDies) {
  EXPECT_DEATH(
      {
        Heap H;
        FirstFitManager MM(H, 10.0);
        MM.allocate(0);
      },
      "zero");
}

/// A program that ignores its live bound.
class GreedyProgram : public Program {
public:
  bool step(MutatorContext &Ctx) override {
    for (;;)
      Ctx.allocate(1024);
  }
  std::string name() const override { return "greedy"; }
};

/// A program that never finishes (but stays within its live bound).
class EndlessProgram : public Program {
public:
  bool step(MutatorContext &Ctx) override {
    ObjectId Id = Ctx.allocate(1);
    Ctx.free(Id);
    return true;
  }
  std::string name() const override { return "endless"; }
};

TEST(FailureInjection, RunawayProgramHitsStepLimit) {
  EXPECT_DEATH(
      {
        Heap H;
        FirstFitManager MM(H, 10.0);
        EndlessProgram P;
        Execution::Options Opts;
        Opts.MaxSteps = 16;
        Execution E(MM, P, 1024, Opts);
        E.run();
      },
      "step limit");
}

TEST(FailureInjection, ProgramExceedingLiveBoundDies) {
  EXPECT_DEATH(
      {
        Heap H;
        FirstFitManager MM(H, 10.0);
        GreedyProgram P;
        Execution E(MM, P, /*M=*/4096);
        E.run();
      },
      "live bound");
}

void runTrace(std::vector<TraceOp> Trace) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  TraceReplayProgram P(std::move(Trace));
  Execution E(MM, P, 1024);
  E.run();
}

TEST(FailureInjection, TraceFreeingUnknownAllocationDies) {
  std::vector<TraceOp> Trace = {TraceOp::alloc(4), TraceOp::release(7)};
  EXPECT_DEATH(runTrace(Trace), "unknown allocation");
}

TEST(FailureInjection, TraceDoubleFreeDies) {
  std::vector<TraceOp> Trace = {TraceOp::alloc(4), TraceOp::release(0),
                                TraceOp::release(0)};
  EXPECT_DEATH(runTrace(Trace), "dead object");
}

// A program that moves an object through the heap directly, bypassing
// the manager's budget gate — the execution driver's ledger invariant
// must catch the breach after the step.
class RogueMoverProgram : public Program {
public:
  explicit RogueMoverProgram(Heap &H) : H(H) {}
  bool step(MutatorContext &Ctx) override {
    if (StepsDone++ == 0) {
      Moved = Ctx.allocate(8);
      return true;
    }
    // 16 words allocated so far; with c = 1000 the budget is
    // floor(16/1000) = 0 words, so this move is over budget.
    Ctx.allocate(8);
    H.move(Moved, 64);
    return false;
  }
  std::string name() const override { return "rogue-mover"; }

private:
  Heap &H;
  ObjectId Moved = InvalidObjectId;
  int StepsDone = 0;
};

TEST(FailureInjection, OverBudgetMoveDies) {
  EXPECT_DEATH(
      {
        Heap H;
        FirstFitManager MM(H, /*C=*/1000.0);
        RogueMoverProgram P(H);
        Execution E(MM, P, /*M=*/1024);
        E.run();
      },
      "exceeded its compaction budget");
}

TEST(FailureInjection, FreeIndexDoubleReserveDies) {
  EXPECT_DEATH(
      {
        FreeSpaceIndex FSI;
        FSI.reserve(0, 8);
        FSI.reserve(4, 8);
      },
      "reserve target is not free");
}

TEST(FailureInjection, FreeIndexDoubleReleaseDies) {
  EXPECT_DEATH(
      {
        FreeSpaceIndex FSI;
        FSI.reserve(0, 16);
        FSI.release(0, 8);
        FSI.release(0, 8);
      },
      "releasing a range that is partly free");
}

TEST(FailureInjection, FreeIndexReleaseOverlappingSuccessorDies) {
  EXPECT_DEATH(
      {
        FreeSpaceIndex FSI;
        FSI.reserve(0, 16);
        FSI.release(8, 8);
        // [8, 16) is free again; releasing [4, 12) overlaps it.
        FSI.release(4, 8);
      },
      "releasing a range that is partly free");
}

// The address space is [0, AddrLimit): an object may end exactly at the
// limit, and the very next word over must die. The boundary block is the
// infinite tail, so this also pins the index's handling of a reserve
// that consumes the tail's last addressable words.
TEST(FailureInjection, PlacementEndingAtAddrLimitLivesOnePastDies) {
  {
    Heap H;
    ObjectId A = H.place(AddrLimit - 8, 8); // ends exactly at the limit
    EXPECT_EQ(H.object(A).Address, AddrLimit - 8);
    EXPECT_FALSE(H.isFree(AddrLimit - 8, 8));
    H.free(A); // and the tail coalesces back to one block
    EXPECT_EQ(H.freeSpace().numBlocks(), 1u);
  }
  EXPECT_DEATH(
      {
        Heap H;
        H.place(AddrLimit - 4, 8);
      },
      "placement beyond the address space");
}

TEST(FailureInjection, InadmissibleSigmaOverrideDies) {
  EXPECT_DEATH(
      {
        CohenPetrankProgram::Options Opts;
        Opts.SigmaOverride = 40; // far beyond log2(3c/4)
        CohenPetrankProgram PF(1 << 14, 1 << 8, 20.0, Opts);
      },
      "inadmissible");
}

} // namespace
