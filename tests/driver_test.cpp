//===- tests/driver_test.cpp - Unit tests for src/driver -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "mm/SequentialFitManagers.h"
#include "mm/SlidingCompactor.h"

#include <gtest/gtest.h>

using namespace pcb;

namespace {

/// A program scripted in-line for driver tests.
class LambdaProgram : public Program {
public:
  using StepFn = std::function<bool(MutatorContext &)>;
  explicit LambdaProgram(StepFn Fn) : Fn(std::move(Fn)) {}
  bool step(MutatorContext &Ctx) override { return Fn(Ctx); }
  std::string name() const override { return "lambda"; }

  bool onObjectMoved(ObjectId, Addr, Addr) override {
    ++MovesSeen;
    return FreeOnMove;
  }

  unsigned MovesSeen = 0;
  bool FreeOnMove = false;

private:
  StepFn Fn;
};

TEST(Execution, RunsToCompletionAndReports) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  int Steps = 0;
  LambdaProgram P([&](MutatorContext &Ctx) {
    Ctx.allocate(4);
    return ++Steps < 5;
  });
  Execution E(MM, P, 1024);
  ExecutionResult R = E.run();
  EXPECT_EQ(R.Steps, 5u);
  EXPECT_EQ(R.NumAllocations, 5u);
  EXPECT_EQ(R.HeapSize, 20u);
  EXPECT_EQ(R.TotalAllocatedWords, 20u);
  EXPECT_DOUBLE_EQ(R.wasteFactor(1024), 20.0 / 1024.0);
}

TEST(Execution, SingleStepping) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  int Steps = 0;
  LambdaProgram P([&](MutatorContext &Ctx) {
    Ctx.allocate(1);
    return ++Steps < 3;
  });
  Execution E(MM, P, 64);
  EXPECT_TRUE(E.runStep());
  EXPECT_TRUE(E.runStep());
  EXPECT_FALSE(E.runStep());
  EXPECT_FALSE(E.runStep()); // idempotent after completion
  EXPECT_EQ(E.stepsRun(), 3u);
}

TEST(Execution, MoveNotificationsReachProgram) {
  Heap H;
  SlidingCompactor MM(H, 0.0);
  LambdaProgram P([&](MutatorContext &Ctx) {
    ObjectId A = Ctx.allocate(6);
    Ctx.allocate(6);
    ObjectId C = Ctx.allocate(6);
    Ctx.allocate(6);
    Ctx.free(A);
    Ctx.free(C);
    // Two 6-word holes; 10 words fit only after a slide.
    Ctx.allocate(10);
    return false;
  });
  Execution E(MM, P, 64);
  E.run();
  EXPECT_GT(P.MovesSeen, 0u);
}

TEST(Execution, FreeOnMoveIsHonoured) {
  Heap H;
  SlidingCompactor MM(H, 0.0);
  ObjectId Tail = InvalidObjectId;
  LambdaProgram P([&](MutatorContext &Ctx) {
    ObjectId A = Ctx.allocate(6);
    Ctx.allocate(6);
    ObjectId C = Ctx.allocate(6);
    Tail = Ctx.allocate(6);
    Ctx.free(A);
    Ctx.free(C);
    Ctx.allocate(10); // slide moves the survivors; program frees them
    return false;
  });
  P.FreeOnMove = true;
  Execution E(MM, P, 64);
  E.run();
  EXPECT_GT(P.MovesSeen, 0u);
  // Everything the slide touched was freed from under the manager.
  EXPECT_FALSE(H.isLive(Tail));
}

TEST(Execution, ObserversSeeEveryStep) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  int Steps = 0;
  LambdaProgram P([&](MutatorContext &) { return ++Steps < 4; });
  Execution E(MM, P, 64);
  int Observed = 0;
  E.addStepObserver([&](const Execution &Ex) {
    ++Observed;
    EXPECT_EQ(Ex.stepsRun(), uint64_t(Observed));
  });
  E.run();
  EXPECT_EQ(Observed, 4);
}

TEST(Execution, DeepConsistencyChecksRun) {
  Heap H;
  SlidingCompactor MM(H, 0.0);
  RandomChurnProgram::Options POpts;
  POpts.Steps = 30;
  POpts.MaxLogSize = 5;
  RandomChurnProgram P(1024, POpts);
  Execution::Options Opts;
  Opts.DeepCheckEvery = 1; // every step, including across compactions
  Execution E(MM, P, 1024, Opts);
  ExecutionResult R = E.run();
  EXPECT_EQ(R.Steps, 30u);
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Execution, HeadroomReflectsLiveBound) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  LambdaProgram P([&](MutatorContext &Ctx) {
    EXPECT_EQ(Ctx.headroom(), 100u);
    ObjectId A = Ctx.allocate(30);
    EXPECT_EQ(Ctx.headroom(), 70u);
    Ctx.free(A);
    EXPECT_EQ(Ctx.headroom(), 100u);
    return false;
  });
  Execution E(MM, P, 100);
  E.run();
}

TEST(Execution, ResultSnapshotMidRun) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  int Steps = 0;
  LambdaProgram P([&](MutatorContext &Ctx) {
    Ctx.allocate(8);
    return ++Steps < 3;
  });
  Execution E(MM, P, 1024);
  E.runStep();
  ExecutionResult Mid = E.result();
  EXPECT_EQ(Mid.Steps, 1u);
  EXPECT_EQ(Mid.NumAllocations, 1u);
  E.run();
  EXPECT_EQ(E.result().NumAllocations, 3u);
}

} // namespace
