//===- tests/adversary_test.cpp - Unit tests for src/adversary -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/PatternWorkloads.h"
#include "adversary/ProgramFactory.h"
#include "adversary/RobsonProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "adversary/WorkloadSpec.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "mm/BumpCompactor.h"
#include "mm/EvacuatingCompactor.h"
#include "mm/ManagerFactory.h"
#include "mm/SegregatedFitManager.h"
#include "mm/SequentialFitManagers.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace pcb;

namespace {

// --- Robson adversary -----------------------------------------------------

TEST(Robson, ForcesExactBoundOnFirstFit) {
  // Against a non-moving manager, PR forces exactly
  // M (log n / 2 + 1) - n + 1 — Robson's matching bound. Our simulation
  // reproduces it to the word for first fit.
  const uint64_t M = pow2(12);
  const unsigned LogN = 6;
  Heap H;
  FirstFitManager MM(H, 1e18);
  RobsonProgram PR(M, LogN);
  Execution E(MM, PR, M);
  ExecutionResult R = E.run();
  BoundParams P{M, pow2(LogN), 10.0};
  EXPECT_EQ(double(R.HeapSize), robsonHeapWords(P));
}

struct RobsonCase {
  const char *Policy;
  unsigned LogM;
  unsigned LogN;
};

class RobsonVersusManagers : public ::testing::TestWithParam<RobsonCase> {};

TEST_P(RobsonVersusManagers, LowerBoundHolds) {
  RobsonCase Case = GetParam();
  const uint64_t M = pow2(Case.LogM);
  Heap H;
  auto MM = createManager(Case.Policy, H, 1e18);
  ASSERT_NE(MM, nullptr);
  RobsonProgram PR(M, Case.LogN);
  Execution E(*MM, PR, M);
  ExecutionResult R = E.run();
  BoundParams P{M, pow2(Case.LogN), 10.0};
  EXPECT_GE(double(R.HeapSize) + 1e-9, robsonHeapWords(P))
      << Case.Policy << " beat Robson's bound";
  // Sanity: the program observed its own contract.
  EXPECT_LE(R.PeakLiveWords, M);
}

INSTANTIATE_TEST_SUITE_P(
    NonMovingManagers, RobsonVersusManagers,
    ::testing::Values(RobsonCase{"first-fit", 10, 5},
                      RobsonCase{"best-fit", 10, 5},
                      RobsonCase{"next-fit", 10, 5},
                      RobsonCase{"buddy", 10, 5},
                      RobsonCase{"segregated-fit", 10, 5},
                      RobsonCase{"aligned-fit", 10, 5},
                      RobsonCase{"worst-fit", 10, 5},
                      RobsonCase{"first-fit", 13, 7},
                      RobsonCase{"best-fit", 13, 7}),
    [](const ::testing::TestParamInfo<RobsonCase> &Info) {
      std::string Name = Info.param.Policy;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_m" + std::to_string(Info.param.LogM) + "_n" +
             std::to_string(Info.param.LogN);
    });

TEST(Robson, OccupierCountMeetsClaim49) {
  // Claim 4.9: after step i at least M (i + 2) / 2^(i+1) objects are
  // f_i-occupying.
  const uint64_t M = pow2(10);
  const unsigned LogN = 6;
  Heap H;
  FirstFitManager MM(H, 1e18);
  RobsonProgram PR(M, LogN);
  Execution E(MM, PR, M);
  unsigned Step = 0;
  bool More = true;
  while (More) {
    More = E.runStep();
    EXPECT_GE(double(PR.occupierCount()) + 1e-9,
              robsonOccupierLowerBound(M, Step))
        << "after step " << Step;
    ++Step;
  }
}

TEST(Robson, GhostsAppearUnderCompaction) {
  // Against a compacting manager, moved objects become ghosts and the
  // live-or-ghost accounting keeps the program within M.
  const uint64_t M = pow2(10);
  Heap H;
  EvacuatingCompactor::Options Opts;
  Opts.DensityThreshold = 0.9;
  Opts.MinEvacuationSize = 2;
  EvacuatingCompactor MM(H, 3.0, Opts);
  RobsonProgram PR(M, 5);
  Execution E(MM, PR, M);
  ExecutionResult R = E.run();
  EXPECT_GT(R.MovedWords, 0u) << "test needs an actually-compacting run";
  EXPECT_LE(R.PeakLiveWords, M);
  BoundParams P{M, pow2(5), 3.0};
  // With compaction the manager may beat the non-moving bound, but never
  // the c-partial lower bound.
  EXPECT_GE(R.wasteFactor(M) + 1e-9, cohenPetrankLowerWasteFactor(P));
}

// --- Cohen-Petrank adversary ----------------------------------------------

TEST(CohenPetrank, ParametersDerivedFromTheory) {
  const uint64_t M = pow2(16);
  const uint64_t N = pow2(9);
  CohenPetrankProgram PF(M, N, 50.0);
  BoundParams P{M, N, 50.0};
  EXPECT_GE(PF.sigma(), 1u);
  EXPECT_LE(PF.sigma(), cohenPetrankMaxSigma(50.0));
  EXPECT_LE(2 * PF.sigma(), log2Exact(N) - 2);
  EXPECT_GT(PF.allocationFactor(), 0.0);
  EXPECT_NEAR(PF.targetWasteFactor(),
              cohenPetrankLowerWasteFactorForSigma(P, PF.sigma()), 1e-12);
}

TEST(CohenPetrank, SigmaOverrideRespected) {
  CohenPetrankProgram::Options Opts;
  Opts.SigmaOverride = 1;
  CohenPetrankProgram PF(pow2(16), pow2(9), 50.0, Opts);
  EXPECT_EQ(PF.sigma(), 1u);
}

struct PfCase {
  const char *Policy;
  double C;
};

class PfVersusManagers : public ::testing::TestWithParam<PfCase> {};

TEST_P(PfVersusManagers, TheoremOneHolds) {
  PfCase Case = GetParam();
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  Heap H;
  auto MM = createManager(Case.Policy, H, Case.C);
  ASSERT_NE(MM, nullptr);
  CohenPetrankProgram PF(M, N, Case.C);
  Execution E(*MM, PF, M);
  ExecutionResult R = E.run();
  // Theorem 1: HS(A, PF) >= M * h for every c-partial manager A.
  EXPECT_GE(R.wasteFactor(M) + 1e-9, PF.targetWasteFactor())
      << Case.Policy << " beat the lower bound at c=" << Case.C;
  EXPECT_LE(R.PeakLiveWords, M);
}

INSTANTIATE_TEST_SUITE_P(
    CPartialManagers, PfVersusManagers,
    ::testing::Values(PfCase{"first-fit", 10}, PfCase{"first-fit", 50},
                      PfCase{"evacuating", 10}, PfCase{"evacuating", 50},
                      PfCase{"evacuating", 100}, PfCase{"sliding", 10},
                      PfCase{"sliding", 50}, PfCase{"hybrid", 50},
                      PfCase{"best-fit", 100}, PfCase{"buddy", 50},
                      PfCase{"segregated-fit", 10},
                      PfCase{"paged-space", 20},
                      PfCase{"paged-space", 100}),
    [](const ::testing::TestParamInfo<PfCase> &Info) {
      std::string Name = Info.param.Policy;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_c" + std::to_string(int(Info.param.C));
    });

TEST(CohenPetrank, PotentialFunctionNeverDecreases) {
  // Claim 4.16 property 1: no event decreases u(t). Sampled after every
  // driver step of the stage-two execution.
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  Heap H;
  EvacuatingCompactor MM(H, 20.0);
  CohenPetrankProgram PF(M, N, 20.0);
  Execution E(MM, PF, M);
  double LastU = 0.0;
  bool SawStageTwo = false;
  E.addStepObserver([&](const Execution &) {
    if (!PF.inStageTwo())
      return;
    double U = PF.potential();
    if (SawStageTwo) {
      EXPECT_GE(U + 1e-6, LastU)
          << "potential decreased at step " << PF.currentStep();
    }
    LastU = U;
    SawStageTwo = true;
  });
  E.run();
  EXPECT_TRUE(SawStageTwo);
}

TEST(CohenPetrank, PotentialIsALowerBoundOnHeapSize) {
  // u(t) underpins Theorem 1 by never exceeding the heap size in use.
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  Heap H;
  FirstFitManager MM(H, 30.0);
  CohenPetrankProgram PF(M, N, 30.0);
  Execution E(MM, PF, M);
  E.addStepObserver([&](const Execution &Ex) {
    EXPECT_LE(PF.potential(), double(Ex.heap().stats().HighWaterMark) + 1e-6);
  });
  E.run();
}

TEST(CohenPetrank, AssociationInvariantsHold) {
  // Claim 4.15, checked after every step against both a moving and a
  // non-moving manager.
  for (const char *Policy : {"first-fit", "evacuating", "sliding"}) {
    const uint64_t M = pow2(13);
    const uint64_t N = pow2(8);
    Heap H;
    auto MM = createManager(Policy, H, 15.0);
    CohenPetrankProgram PF(M, N, 15.0);
    Execution E(*MM, PF, M);
    E.addStepObserver([&](const Execution &) {
      ASSERT_TRUE(PF.checkAssociationInvariants()) << Policy;
      ASSERT_TRUE(PF.checkDensityInvariant()) << Policy;
    });
    E.run();
  }
}

TEST(CohenPetrank, DensityAblationFreesMore) {
  // Without density maintenance the adversary de-allocates more but the
  // manager can recycle chunks; the footprint it forces must not exceed
  // the faithful adversary's on an evacuating manager.
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  const double C = 20.0;

  auto RunWith = [&](bool MaintainDensity) {
    Heap H;
    EvacuatingCompactor MM(H, C);
    CohenPetrankProgram::Options Opts;
    Opts.MaintainDensity = MaintainDensity;
    CohenPetrankProgram PF(M, N, C, Opts);
    Execution E(MM, PF, M);
    return E.run().HeapSize;
  };
  EXPECT_GE(RunWith(true), RunWith(false));
}

TEST(CohenPetrank, StageStructureAndAllocationSizes) {
  // White box: stage one allocates sizes 1..2^sigma over steps
  // 0..sigma, null steps do nothing, and stage-two step i allocates
  // floor(x*M/2^(i+2)) objects of size 2^(i+2).
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  Heap H;
  FirstFitManager MM(H, 40.0);
  CohenPetrankProgram PF(M, N, 40.0);
  Execution E(MM, PF, M);
  unsigned Sigma = PF.sigma();
  unsigned LogN = log2Exact(N);
  double X = PF.allocationFactor();

  uint64_t PrevAllocs = 0;
  uint64_t PrevWords = 0;
  unsigned Step = 0;
  bool More = true;
  while (More) {
    More = E.runStep();
    uint64_t Allocs = H.stats().NumAllocations - PrevAllocs;
    uint64_t Words = H.stats().TotalAllocatedWords - PrevWords;
    PrevAllocs = H.stats().NumAllocations;
    PrevWords = H.stats().TotalAllocatedWords;

    if (Step == 0) {
      EXPECT_EQ(Allocs, M) << "step 0 fills M unit objects";
    } else if (Step <= Sigma) {
      if (Allocs != 0) {
        EXPECT_EQ(Words / Allocs, pow2(Step))
            << "stage-one step " << Step << " allocates 2^step objects";
      }
    } else if (Step <= 2 * Sigma - 1) {
      EXPECT_EQ(Allocs, 0u) << "null step " << Step << " must not allocate";
    } else if (Step <= LogN - 2) {
      uint64_t Size = pow2(Step + 2);
      uint64_t Planned = uint64_t(X * double(M)) / Size;
      EXPECT_LE(Allocs, Planned) << "stage-two step " << Step;
      if (Allocs != 0) {
        EXPECT_EQ(Words / Allocs, Size) << "stage-two step " << Step;
      }
    }
    ++Step;
  }
  EXPECT_EQ(Step, LogN - 1) << "steps 0..log(n)-2 were executed";
}

TEST(CohenPetrank, LiveNeverExceedsBoundWithGhosts) {
  // The ghost accounting must keep real live words within M even while
  // the manager compacts aggressively during stage one.
  const uint64_t M = pow2(13);
  const uint64_t N = pow2(8);
  Heap H;
  EvacuatingCompactor::Options MOpts;
  MOpts.DensityThreshold = 0.9;
  MOpts.MinEvacuationSize = 2;
  EvacuatingCompactor MM(H, 5.0, MOpts);
  CohenPetrankProgram PF(M, N, 5.0);
  Execution E(MM, PF, M);
  ExecutionResult R = E.run();
  EXPECT_LE(R.PeakLiveWords, M);
  EXPECT_GT(R.MovedWords, 0u) << "test needs actual compaction";
}

TEST(CohenPetrank, TrackedChunksShrinkAcrossMerges) {
  // Partition coarsening halves the index space; the chunk map must
  // never grow across a merge.
  const uint64_t M = pow2(13);
  const uint64_t N = pow2(8);
  Heap H;
  FirstFitManager MM(H, 20.0);
  CohenPetrankProgram PF(M, N, 20.0);
  Execution E(MM, PF, M);
  uint64_t PrevChunks = UINT64_MAX;
  E.addStepObserver([&](const Execution &) {
    if (!PF.inStageTwo())
      return;
    uint64_t Now = PF.numTrackedChunks();
    if (PrevChunks != UINT64_MAX) {
      // New chunks appear only through allocation (3 per object).
      EXPECT_LE(Now, PrevChunks + 3 * (uint64_t(PF.allocationFactor() *
                                                double(M))));
    }
    PrevChunks = Now;
  });
  E.run();
}

TEST(ProgramFactory, CreatesEveryProgram) {
  for (const std::string &Name : allProgramNames()) {
    auto P = createProgram(Name, pow2(12), 6, 20.0);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_FALSE(P->name().empty());
  }
  EXPECT_EQ(createProgram("no-such-program", pow2(12), 6, 20.0), nullptr);
  // The three name lists partition the full registry.
  EXPECT_EQ(adversarialProgramNames().size() + ordinaryProgramNames().size() +
                updateProgramNames().size(),
            allProgramNames().size());
}

TEST(ProgramFactory, UnknownProgramFailsWithTheFullProgramList) {
  // Same contract as createManagerChecked: an unknown name fails with a
  // message naming every valid program, never a silent default.
  std::string Error;
  EXPECT_EQ(createProgramChecked("no-such-program", pow2(12), 6, 20.0,
                                 &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown program 'no-such-program'"),
            std::string::npos)
      << Error;
  for (const std::string &Name : allProgramNames())
    EXPECT_NE(Error.find(Name), std::string::npos)
        << "error message omits valid program '" << Name << "': " << Error;
  // Success leaves the error untouched.
  Error.clear();
  EXPECT_NE(createProgramChecked("robson", pow2(12), 6, 20.0, &Error),
            nullptr);
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(ProgramFactory, EveryProgramRunsAgainstFirstFit) {
  const uint64_t M = pow2(11);
  for (const std::string &Name : allProgramNames()) {
    Heap H;
    FirstFitManager MM(H, 20.0);
    auto P = createProgram(Name, M, 5, 20.0);
    ASSERT_NE(P, nullptr) << Name;
    Execution E(MM, *P, M);
    ExecutionResult R = E.run();
    EXPECT_LE(R.PeakLiveWords, M) << Name;
    EXPECT_TRUE(H.checkConsistency()) << Name;
  }
}

// --- The (c+1)M collector: both bounds at once ------------------------------

TEST(BumpCompactor, SandwichAgainstPF) {
  // Against the strongest adversary, the POPL 2011 collector must sit
  // between Theorem 1's lower bound and its own (c+1)M guarantee
  // (plus one object of period overshoot).
  const uint64_t M = pow2(12);
  const uint64_t N = pow2(7);
  for (double C : {3.0, 5.0, 10.0}) {
    Heap H;
    BumpCompactor MM(H, C, M);
    CohenPetrankProgram PF(M, N, C);
    Execution E(MM, PF, M);
    ExecutionResult R = E.run();
    EXPECT_GE(R.wasteFactor(M) + 1e-9, PF.targetWasteFactor()) << "c=" << C;
    EXPECT_LE(R.HeapSize, MM.footprintGuarantee() + N) << "c=" << C;
    EXPECT_TRUE(MM.ledger().holds()) << "c=" << C;
  }
}

TEST(BumpCompactor, CompactsPeriodicallyUnderChurn) {
  // Enough allocation volume funds repeated full compactions; the
  // footprint stays within the (c+1)M guarantee throughout.
  const uint64_t M = pow2(11);
  Heap H;
  BumpCompactor MM(H, 3.0, M);
  RandomChurnProgram::Options Opts;
  Opts.Steps = 60;
  Opts.MaxLogSize = 5;
  RandomChurnProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_GT(MM.numCompactions(), 2u);
  EXPECT_LE(R.HeapSize, MM.footprintGuarantee() + pow2(5));
  EXPECT_TRUE(MM.ledger().holds());
}

TEST(BumpCompactor, GuaranteeHoldsAgainstRobson) {
  const uint64_t M = pow2(12);
  const unsigned LogN = 6;
  Heap H;
  BumpCompactor MM(H, 4.0, M);
  RobsonProgram PR(M, LogN);
  Execution E(MM, PR, M);
  ExecutionResult R = E.run();
  EXPECT_LE(R.HeapSize, MM.footprintGuarantee() + pow2(LogN));
  EXPECT_TRUE(MM.ledger().holds());
}

TEST(BumpCompactor, BeatsRobsonBoundWhenCIsSmall) {
  // The whole point of partial compaction: with enough budget the
  // (c+1)M collector needs less than any non-moving manager must pay.
  const uint64_t M = pow2(12);
  const unsigned LogN = 6;
  BoundParams P{M, pow2(LogN), 3.0};
  Heap H;
  BumpCompactor MM(H, 3.0, M);
  RobsonProgram PR(M, LogN);
  Execution E(MM, PR, M);
  ExecutionResult R = E.run();
  EXPECT_LT(double(R.HeapSize), robsonHeapWords(P));
}

// --- Synthetic workloads ---------------------------------------------------

TEST(RandomChurn, StaysWithinBoundsAndTerminates) {
  const uint64_t M = pow2(14);
  Heap H;
  FirstFitManager MM(H, 10.0);
  RandomChurnProgram::Options Opts;
  Opts.Steps = 40;
  RandomChurnProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_EQ(R.Steps, 40u);
  EXPECT_LE(R.PeakLiveWords, M);
  EXPECT_GT(R.NumAllocations, 0u);
}

TEST(RandomChurn, DeterministicGivenSeed) {
  auto RunOnce = [] {
    Heap H;
    BestFitManager MM(H, 10.0);
    RandomChurnProgram::Options Opts;
    Opts.Steps = 20;
    Opts.Seed = 77;
    RandomChurnProgram P(pow2(12), Opts);
    Execution E(MM, P, pow2(12));
    return E.run().HeapSize;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(RandomChurn, FragmentsFarLessThanAdversary) {
  // The conclusion's contrast: ordinary churn wastes much less than the
  // worst case the theorems describe.
  const uint64_t M = pow2(14);
  Heap H;
  FirstFitManager MM(H, 10.0);
  RandomChurnProgram::Options Opts;
  Opts.Steps = 60;
  Opts.MaxLogSize = 7;
  RandomChurnProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  BoundParams BP{M, pow2(7), 10.0};
  EXPECT_LT(R.wasteFactor(M), robsonWasteFactor(BP) / 2.0);
}

TEST(MarkovPhase, RunsAllPhases) {
  const uint64_t M = pow2(13);
  Heap H;
  SegregatedFitManager MM(H, 10.0);
  MarkovPhaseProgram::Options Opts;
  Opts.Phases = 5;
  Opts.StepsPerPhase = 4;
  Opts.MaxLogSize = 6;
  MarkovPhaseProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_EQ(R.Steps, 20u);
  EXPECT_LE(R.PeakLiveWords, M);
}

TEST(PatternWorkloads, StackStaysTightUnderFirstFit) {
  // LIFO lifetimes are every allocator's best case: the footprint should
  // sit essentially at the peak live volume.
  const uint64_t M = pow2(13);
  Heap H;
  FirstFitManager MM(H, 10.0);
  StackProgram::Options Opts;
  Opts.Steps = 50;
  Opts.MaxLogSize = 6;
  StackProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_LE(R.PeakLiveWords, M);
  EXPECT_LE(double(R.HeapSize), 1.1 * double(R.PeakLiveWords));
}

TEST(PatternWorkloads, QueueSlidesWithoutBlowup) {
  const uint64_t M = pow2(13);
  Heap H;
  BestFitManager MM(H, 10.0);
  QueueProgram::Options Opts;
  Opts.Steps = 60;
  Opts.MaxLogSize = 6;
  QueueProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_LE(R.PeakLiveWords, M);
  // FIFO recycling keeps the footprint well under Robson territory.
  BoundParams BP{M, pow2(6), 10.0};
  EXPECT_LT(R.wasteFactor(M), robsonWasteFactor(BP) / 2.0);
}

TEST(PatternWorkloads, SawtoothPinsFragmentTheHeap) {
  // Pinned survivors across waves must cost *some* footprint over the
  // live peak, but far less than the adversarial worst case.
  const uint64_t M = pow2(13);
  Heap H;
  FirstFitManager MM(H, 10.0);
  SawtoothProgram::Options Opts;
  Opts.Waves = 10;
  Opts.MaxLogSize = 6;
  SawtoothProgram P(M, Opts);
  Execution E(MM, P, M);
  ExecutionResult R = E.run();
  EXPECT_LE(R.PeakLiveWords, M);
  EXPECT_GE(R.HeapSize, R.PeakLiveWords);
  BoundParams BP{M, pow2(6), 10.0};
  EXPECT_LT(R.wasteFactor(M), robsonWasteFactor(BP));
}

TEST(PatternWorkloads, AllPatternsRunUnderAllManagers) {
  const uint64_t M = pow2(11);
  for (const std::string &Policy : allManagerPolicies()) {
    for (int Which = 0; Which != 3; ++Which) {
      Heap H;
      auto MM = createManager(Policy, H, 10.0, /*LiveBound=*/M);
      ASSERT_NE(MM, nullptr) << Policy;
      std::unique_ptr<Program> P;
      if (Which == 0) {
        StackProgram::Options O;
        O.Steps = 12;
        O.MaxLogSize = 5;
        P = std::make_unique<StackProgram>(M, O);
      } else if (Which == 1) {
        QueueProgram::Options O;
        O.Steps = 12;
        O.MaxLogSize = 5;
        P = std::make_unique<QueueProgram>(M, O);
      } else {
        SawtoothProgram::Options O;
        O.Waves = 6;
        O.MaxLogSize = 5;
        P = std::make_unique<SawtoothProgram>(M, O);
      }
      Execution E(*MM, *P, M);
      ExecutionResult R = E.run();
      EXPECT_LE(R.PeakLiveWords, M) << Policy << " pattern " << Which;
      EXPECT_TRUE(H.checkConsistency()) << Policy << " pattern " << Which;
    }
  }
}

TEST(Adversaries, FullyDeterministic) {
  // Both adversaries are RNG-free: two identical executions produce
  // identical footprints and move counts.
  auto RunRobson = [] {
    Heap H;
    auto MM = createManager("evacuating", H, 5.0);
    RobsonProgram PR(pow2(11), 5);
    Execution E(*MM, PR, pow2(11));
    ExecutionResult R = E.run();
    return std::make_pair(R.HeapSize, R.MovedWords);
  };
  EXPECT_EQ(RunRobson(), RunRobson());

  auto RunPf = [] {
    Heap H;
    auto MM = createManager("evacuating", H, 20.0);
    CohenPetrankProgram PF(pow2(12), pow2(7), 20.0);
    Execution E(*MM, PF, pow2(12));
    ExecutionResult R = E.run();
    return std::make_pair(R.HeapSize, R.MovedWords);
  };
  EXPECT_EQ(RunPf(), RunPf());
}

// --- Workload specs -----------------------------------------------------

TEST(WorkloadSpec, ParsesFullSyntax) {
  std::istringstream IS("# comment\n"
                        "seed 42\n"
                        "\n"
                        "phase steps=10 occupancy=0.8 free=0.5 minlog=1 "
                        "maxlog=6\n"
                        "phase maxlog=3\n");
  WorkloadSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseWorkloadSpec(IS, Spec, Error)) << Error;
  EXPECT_EQ(Spec.Seed, 42u);
  ASSERT_EQ(Spec.Phases.size(), 2u);
  EXPECT_EQ(Spec.Phases[0].Steps, 10u);
  EXPECT_DOUBLE_EQ(Spec.Phases[0].TargetOccupancy, 0.8);
  EXPECT_DOUBLE_EQ(Spec.Phases[0].FreeProbability, 0.5);
  EXPECT_EQ(Spec.Phases[0].MinLogSize, 1u);
  EXPECT_EQ(Spec.Phases[0].MaxLogSize, 6u);
  // Defaults on the second phase.
  EXPECT_EQ(Spec.Phases[1].Steps, 8u);
  EXPECT_EQ(Spec.Phases[1].MaxLogSize, 3u);
}

TEST(WorkloadSpec, RejectsMalformedInput) {
  for (const char *Bad :
       {"bogus 1\n", "phase steps=zero\n", "phase vol=3\n", "seed\n",
        "phase minlog=5 maxlog=2\n", "phase occupancy=1.5\n", ""}) {
    std::istringstream IS(Bad);
    WorkloadSpec Spec;
    std::string Error;
    EXPECT_FALSE(parseWorkloadSpec(IS, Spec, Error)) << '"' << Bad << '"';
    EXPECT_FALSE(Error.empty()) << '"' << Bad << '"';
  }
}

TEST(WorkloadSpec, RunsPhasesInOrderAndDeterministically) {
  WorkloadSpec Spec;
  Spec.Seed = 5;
  Spec.Phases.push_back(PhaseSpec{3, 0.9, 0.3, 0, 4});
  Spec.Phases.push_back(PhaseSpec{2, 0.2, 0.9, 2, 5});
  ASSERT_TRUE(Spec.valid());

  auto RunOnce = [&] {
    Heap H;
    FirstFitManager MM(H, 10.0);
    SpecProgram P(pow2(12), Spec);
    Execution E(MM, P, pow2(12));
    ExecutionResult R = E.run();
    EXPECT_EQ(R.Steps, 5u);
    EXPECT_LE(R.PeakLiveWords, pow2(12));
    return R.HeapSize;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(WorkloadSpec, PhaseOccupancyIsHonoured) {
  WorkloadSpec Spec;
  Spec.Phases.push_back(PhaseSpec{4, 0.5, 0.0, 0, 3});
  const uint64_t M = pow2(12);
  Heap H;
  FirstFitManager MM(H, 10.0);
  SpecProgram P(M, Spec);
  Execution E(MM, P, M);
  E.addStepObserver([&](const Execution &Ex) {
    // Refill stops at the phase target (within one object of slack).
    EXPECT_LE(Ex.heap().stats().LiveWords, uint64_t(0.5 * double(M)) + 8);
  });
  E.run();
}

TEST(TraceReplay, ExactSequence) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  std::vector<TraceOp> Trace = {
      TraceOp::alloc(8), TraceOp::alloc(4), TraceOp::release(0),
      TraceOp::alloc(2),
  };
  TraceReplayProgram P(Trace);
  Execution E(MM, P, 1024);
  ExecutionResult R = E.run();
  EXPECT_EQ(R.NumAllocations, 3u);
  EXPECT_EQ(R.NumFrees, 1u);
  EXPECT_FALSE(H.isLive(P.idOfAllocation(0)));
  EXPECT_TRUE(H.isLive(P.idOfAllocation(1)));
  // The 2-word object reuses the freed 8-word hole under first fit.
  EXPECT_EQ(H.object(P.idOfAllocation(2)).Address, 0u);
}

} // namespace
