//===- tests/obs_test.cpp - Telemetry subsystem tests ---------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Covers the observability layer end to end: Profiler install/merge and
// the disabled null sink, Timeline emitters (including the committed
// golden CSV/JSON), TimelineSampler striding and point-budget thinning,
// and the determinism contract — the timeline a sweep produces must be
// byte-identical whether the Runner uses one thread or four.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "heap/Heap.h"
#include "mm/ManagerFactory.h"
#include "obs/Profiler.h"
#include "obs/Timeline.h"
#include "obs/TimelineSampler.h"
#include "runner/ExperimentGrid.h"
#include "runner/Runner.h"
#include "support/MathUtils.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace pcb;

namespace {

/// Runs the paper's PF adversary at toy scale under \p Policy, sampling
/// with \p SamplerOpts, and returns the completed (finished) timeline.
Timeline runSampled(const std::string &Policy, unsigned LogM, unsigned LogN,
                    double C, const TimelineSampler::Options &SamplerOpts) {
  Heap H;
  uint64_t M = pow2(LogM);
  auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
  CohenPetrankProgram PF(M, pow2(LogN), C);
  Execution E(*MM, PF, M);
  TimelineSampler Sampler(SamplerOpts);
  Sampler.attach(E);
  E.run();
  Sampler.finish(E);
  return Sampler.timeline();
}

// --- Profiler ------------------------------------------------------------

TEST(Profiler, DisabledInstrumentationIsANoOp) {
  ASSERT_EQ(Profiler::current(), nullptr);
  // With no profiler installed, timers and counter bumps record nowhere
  // and must not crash.
  {
    ScopedTimer T(Profiler::SecHeapPlace);
    Profiler::bump(Profiler::CtrFitProbes);
  }
  EXPECT_EQ(Profiler::current(), nullptr);
}

TEST(Profiler, ScopeInstallsAndRestores) {
  Profiler Outer;
  ProfilerScope OuterScope(Outer);
  EXPECT_EQ(Profiler::current(), &Outer);
  {
    Profiler Inner;
    ProfilerScope InnerScope(Inner);
    EXPECT_EQ(Profiler::current(), &Inner);
    { ScopedTimer T(Profiler::SecCompaction); }
    Profiler::bump(Profiler::CtrCompactionPasses, 3);
    EXPECT_EQ(Inner.section(Profiler::SecCompaction).Calls, 1u);
    EXPECT_EQ(Inner.counter(Profiler::CtrCompactionPasses), 3u);
  }
  // Inner work never leaked into the outer profiler; the scope restored.
  EXPECT_EQ(Profiler::current(), &Outer);
  EXPECT_TRUE(Outer.empty());
}

TEST(Profiler, NullPointerScopeLeavesInstallationUntouched) {
  Profiler P;
  ProfilerScope Scope(P);
  {
    ProfilerScope Null(static_cast<Profiler *>(nullptr));
    EXPECT_EQ(Profiler::current(), &P);
  }
  EXPECT_EQ(Profiler::current(), &P);
}

TEST(Profiler, MergeAddsSectionsAndCounters) {
  Profiler A, B;
  A.add(Profiler::SecHeapPlace, 100);
  A.add(Profiler::SecHeapPlace, 50);
  B.add(Profiler::SecHeapPlace, 25);
  B.add(Profiler::SecStep, 10);
  ProfilerScope Scope(B);
  Profiler::bump(Profiler::CtrTimelineSamples, 7);
  A.merge(B);
  EXPECT_EQ(A.section(Profiler::SecHeapPlace).Calls, 3u);
  EXPECT_EQ(A.section(Profiler::SecHeapPlace).Nanos, 175u);
  EXPECT_EQ(A.section(Profiler::SecStep).Calls, 1u);
  EXPECT_EQ(A.counter(Profiler::CtrTimelineSamples), 7u);
  EXPECT_FALSE(A.empty());
  A.reset();
  EXPECT_TRUE(A.empty());
}

TEST(Profiler, InstrumentationSitesRecordDuringARun) {
  Profiler Prof;
  {
    ProfilerScope Scope(Prof);
    runSampled("evacuating", /*LogM=*/10, /*LogN=*/5, /*C=*/50,
               TimelineSampler::Options());
  }
  // Every permanently instrumented layer fired: steps, placements,
  // compaction, free-space maintenance, and the sampler's counter.
  EXPECT_GT(Prof.section(Profiler::SecStep).Calls, 0u);
  EXPECT_GT(Prof.section(Profiler::SecHeapPlace).Calls, 0u);
  EXPECT_GT(Prof.section(Profiler::SecCompaction).Calls, 0u);
  EXPECT_GT(Prof.section(Profiler::SecFreeReserve).Calls, 0u);
  EXPECT_GT(Prof.counter(Profiler::CtrTimelineSamples), 0u);
  std::ostringstream OS;
  Prof.printReport(OS, /*WallSeconds=*/1.0);
  EXPECT_NE(OS.str().find("exec.step"), std::string::npos);
  EXPECT_NE(OS.str().find("timeline.samples"), std::string::npos);
}

// --- Timeline emitters ---------------------------------------------------

TimelinePoint makePoint(uint64_t Step) {
  TimelinePoint P;
  P.Step = Step;
  P.FootprintWords = 100 + Step;
  P.LiveWords = 60;
  P.FreeWords = P.FootprintWords - P.LiveWords;
  P.FreeBlocks = 4;
  P.LargestFreeBlock = 16;
  P.Utilization = double(P.LiveWords) / double(P.FootprintWords);
  P.ExternalFragmentation =
      1.0 - double(P.LargestFreeBlock) / double(P.FreeWords);
  P.AllocatedWords = 10 * Step;
  P.MovedWords = Step;
  P.BudgetWords = Step / 2;
  return P;
}

TEST(Timeline, CsvHasHeaderAndOneLinePerPoint) {
  Timeline TL;
  TL.addPoint(makePoint(1));
  TL.addPoint(makePoint(9));
  std::ostringstream OS;
  TL.printCsv(OS);
  std::string Out = OS.str();
  EXPECT_EQ(Out.find("step,footprint_words,live_words,free_words"), 0u);
  EXPECT_NE(Out.find("\n1,101,60,41,4,16,"), std::string::npos);
  EXPECT_NE(Out.find("\n9,109,60,49,4,16,"), std::string::npos);
}

TEST(Timeline, EmptyTimelineEmitsHeaderOnly) {
  Timeline TL;
  std::ostringstream Csv, Json, Charts;
  TL.printCsv(Csv);
  EXPECT_EQ(Csv.str(),
            "step,footprint_words,live_words,free_words,free_blocks,"
            "largest_free_block,utilization,external_fragmentation,"
            "allocated_words,moved_words,budget_words\n");
  TL.printJson(Json);
  EXPECT_EQ(Json.str(), "[\n\n]\n"); // an empty JSON array, no rows
  TL.printCharts(Charts);
  EXPECT_NE(Charts.str().find("(empty timeline)"), std::string::npos);
}

TEST(Timeline, ThinHalfKeepsEvenIndices) {
  Timeline TL;
  for (uint64_t Step : {1, 3, 5, 7, 9})
    TL.addPoint(makePoint(Step));
  TL.thinHalf();
  ASSERT_EQ(TL.size(), 3u);
  EXPECT_EQ(TL.points()[0].Step, 1u);
  EXPECT_EQ(TL.points()[1].Step, 5u);
  EXPECT_EQ(TL.points()[2].Step, 9u);
}

TEST(Timeline, CellPathJoinsTagBeforeExtension) {
  EXPECT_EQ(timelineCellPath("tl.csv", "c50-first-fit"),
            "tl-c50-first-fit.csv");
  EXPECT_EQ(timelineCellPath("out/tl.json", "seed7"), "out/tl-seed7.json");
  EXPECT_EQ(timelineCellPath("prefix", "tag"), "prefix-tag.csv");
}

// --- TimelineSampler -----------------------------------------------------

TEST(TimelineSampler, StrideSelectsStepsAndFinishAddsEndpoint) {
  TimelineSampler::Options O;
  O.Stride = 4;
  Timeline TL = runSampled("first-fit", /*LogM=*/10, /*LogN=*/5,
                           /*C=*/50, O);
  ASSERT_GE(TL.size(), 2u);
  // Strided samples land on steps 1, 5, 9, ...; the endpoint is always
  // recorded even when the stride misses it.
  for (size_t I = 0; I + 1 < TL.size(); ++I)
    EXPECT_EQ((TL.points()[I].Step - 1) % 4, 0u) << "index " << I;
  for (size_t I = 1; I < TL.size(); ++I)
    EXPECT_GT(TL.points()[I].Step, TL.points()[I - 1].Step);
  // Per-point invariants of the incremental metrics.
  for (const TimelinePoint &P : TL.points()) {
    EXPECT_EQ(P.LiveWords + P.FreeWords, P.FootprintWords);
    EXPECT_LE(P.LargestFreeBlock, P.FreeWords);
    EXPECT_LE(P.MovedWords, P.AllocatedWords);
  }
}

TEST(TimelineSampler, PointBudgetThinsAndDoublesStride) {
  // The adversary programs finish in a handful of macro steps, so drive
  // a 64-step churn workload to overflow an 8-point budget.
  Heap H;
  uint64_t M = pow2(12);
  auto MM = createManager("first-fit", H, 50, /*LiveBound=*/M);
  RandomChurnProgram::Options PO;
  PO.Steps = 64;
  RandomChurnProgram Churn(M, PO);
  Execution E(*MM, Churn, M);
  TimelineSampler::Options O;
  O.Stride = 1;
  O.MaxPoints = 8;
  TimelineSampler Sampler(O);
  Sampler.attach(E);
  E.run();
  Sampler.finish(E);
  const Timeline &TL = Sampler.timeline();
  // The budget engaged: the stride doubled (64 samples into 8 slots
  // needs at least three thinnings) and the series never exceeds the
  // budget yet still reaches the run's endpoint.
  EXPECT_GE(Sampler.stride(), 8u);
  EXPECT_LE(TL.size(), 8u);
  EXPECT_GE(TL.size(), 2u);
  EXPECT_EQ(TL.points().back().Step, 64u);
}

TEST(TimelineSampler, EndpointMatchesExecutionResult) {
  Heap H;
  uint64_t M = pow2(10);
  auto MM = createManager("evacuating", H, 50, /*LiveBound=*/M);
  CohenPetrankProgram PF(M, pow2(5), 50);
  Execution E(*MM, PF, M);
  TimelineSampler Sampler;
  Sampler.attach(E);
  ExecutionResult R = E.run();
  Sampler.finish(E);
  const Timeline &TL = Sampler.timeline();
  ASSERT_FALSE(TL.empty());
  const TimelinePoint &Last = TL.points().back();
  EXPECT_EQ(Last.Step, R.Steps);
  EXPECT_EQ(Last.FootprintWords, R.HeapSize);
  EXPECT_EQ(Last.MovedWords, R.MovedWords);
  EXPECT_EQ(Last.AllocatedWords, R.TotalAllocatedWords);
}

// --- Determinism and goldens ---------------------------------------------

/// The toy configuration the committed goldens were generated from.
Timeline goldenTimeline() {
  TimelineSampler::Options O;
  O.Stride = 8;
  return runSampled("evacuating", /*LogM=*/10, /*LogN=*/5, /*C=*/50, O);
}

TEST(TimelineGolden, CsvMatchesCommittedGolden) {
  std::ostringstream OS;
  goldenTimeline().printCsv(OS);
  // Regenerate the committed goldens with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./obs_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream Out(std::string(Dir) + "/timeline.csv");
    ASSERT_TRUE(Out.good());
    Out << OS.str();
  }
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/timeline.csv");
  ASSERT_TRUE(IS.good()) << "missing golden timeline.csv";
  std::stringstream Golden;
  Golden << IS.rdbuf();
  EXPECT_EQ(OS.str(), Golden.str());
}

TEST(TimelineGolden, JsonMatchesCommittedGolden) {
  std::ostringstream OS;
  goldenTimeline().printJson(OS);
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream Out(std::string(Dir) + "/timeline.json");
    ASSERT_TRUE(Out.good());
    Out << OS.str();
  }
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/timeline.json");
  ASSERT_TRUE(IS.good()) << "missing golden timeline.json";
  std::stringstream Golden;
  Golden << IS.rdbuf();
  EXPECT_EQ(OS.str(), Golden.str());
}

/// Sweeps four policies, one timeline per cell, and returns the
/// concatenated CSVs in cell order.
std::string sweepTimelines(unsigned Threads) {
  ExperimentGrid Grid;
  Grid.addAxis("policy",
               {"first-fit", "best-fit", "evacuating", "sliding"});
  RunnerOptions RO;
  RO.Threads = Threads;
  RO.Progress = 0;
  Runner Run(RO);
  std::vector<std::string> Csvs(size_t(Grid.numCells()));
  Run.forEachCell(Grid.numCells(), [&](uint64_t I) {
    TimelineSampler::Options O;
    O.Stride = 16;
    Timeline TL = runSampled(Grid.cell(I).str("policy"), /*LogM=*/10,
                             /*LogN=*/5, /*C=*/50, O);
    std::ostringstream OS;
    TL.printCsv(OS);
    Csvs[size_t(I)] = OS.str();
  });
  std::string All;
  for (const std::string &Csv : Csvs)
    All += Csv;
  return All;
}

TEST(TimelineDeterminism, ByteIdenticalAcrossThreadCounts) {
  EXPECT_EQ(sweepTimelines(1), sweepTimelines(4));
}

TEST(Runner, RecordsPerCellAndTotalWallClock) {
  RunnerOptions RO;
  RO.Threads = 2;
  RO.Progress = 0;
  Runner Run(RO);
  Run.forEachCell(6, [](uint64_t) {});
  ASSERT_EQ(Run.cellSeconds().size(), 6u);
  for (double S : Run.cellSeconds())
    EXPECT_GE(S, 0.0);
  EXPECT_GE(Run.wallSeconds(), 0.0);
}

TEST(Runner, MergesWorkerProfilersIntoAggregate) {
  Profiler Prof;
  RunnerOptions RO;
  RO.Threads = 2;
  RO.Progress = 0;
  RO.Prof = &Prof;
  Runner Run(RO);
  Run.forEachCell(4, [](uint64_t) {
    Heap H;
    uint64_t M = pow2(10);
    auto MM = createManager("first-fit", H, 50, /*LiveBound=*/M);
    CohenPetrankProgram PF(M, pow2(5), 50);
    Execution E(*MM, PF, M);
    E.run();
  });
  // The workers' private profilers were folded into the aggregate: four
  // cells' worth of steps and placements.
  EXPECT_GT(Prof.section(Profiler::SecStep).Calls, 0u);
  EXPECT_GT(Prof.section(Profiler::SecHeapPlace).Calls, 0u);
}

} // namespace
