//===- tests/heap_test.cpp - Unit tests for src/heap ---------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/ChunkView.h"
#include "heap/FreeSpaceIndex.h"
#include "heap/Heap.h"
#include "heap/HeapImage.h"
#include "heap/IntervalSet.h"
#include "heap/Metrics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pcb;

namespace {

// --- IntervalSet ---------------------------------------------------------

TEST(IntervalSet, InsertAndQuery) {
  IntervalSet S;
  S.insert(10, 20);
  EXPECT_TRUE(S.containsRange(10, 20));
  EXPECT_TRUE(S.containsRange(12, 15));
  EXPECT_FALSE(S.containsRange(5, 12));
  EXPECT_FALSE(S.containsRange(15, 25));
  EXPECT_TRUE(S.overlaps(15, 25));
  EXPECT_FALSE(S.overlaps(20, 25));
  EXPECT_FALSE(S.overlaps(0, 10));
  EXPECT_EQ(S.totalWords(), 10u);
}

TEST(IntervalSet, CoalescesNeighbours) {
  IntervalSet S;
  S.insert(0, 10);
  S.insert(20, 30);
  EXPECT_EQ(S.numIntervals(), 2u);
  S.insert(10, 20); // bridges the two
  EXPECT_EQ(S.numIntervals(), 1u);
  EXPECT_TRUE(S.containsRange(0, 30));
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet S;
  S.insert(0, 30);
  S.erase(10, 20);
  EXPECT_EQ(S.numIntervals(), 2u);
  EXPECT_TRUE(S.containsRange(0, 10));
  EXPECT_TRUE(S.containsRange(20, 30));
  EXPECT_FALSE(S.overlaps(10, 20));
  EXPECT_EQ(S.totalWords(), 20u);
}

TEST(IntervalSet, EraseAtBoundaries) {
  IntervalSet S;
  S.insert(0, 30);
  S.erase(0, 10);
  S.erase(20, 30);
  EXPECT_EQ(S.numIntervals(), 1u);
  EXPECT_TRUE(S.containsRange(10, 20));
}

TEST(IntervalSet, CoveredWords) {
  IntervalSet S;
  S.insert(0, 10);
  S.insert(20, 30);
  EXPECT_EQ(S.coveredWords(0, 30), 20u);
  EXPECT_EQ(S.coveredWords(5, 25), 10u);
  EXPECT_EQ(S.coveredWords(10, 20), 0u);
}

TEST(IntervalSet, IntervalContaining) {
  IntervalSet S;
  S.insert(10, 20);
  auto [A, B] = S.intervalContaining(15);
  EXPECT_EQ(A, 10u);
  EXPECT_EQ(B, 20u);
  auto [C, D] = S.intervalContaining(20);
  EXPECT_EQ(C, InvalidAddr);
  EXPECT_EQ(D, InvalidAddr);
}

TEST(IntervalSet, AdjacentRangeCoalescing) {
  // Right-adjacent, then left-adjacent insertion each coalesce into one
  // maximal interval; a gap of one word does not.
  IntervalSet S;
  S.insert(10, 20);
  S.insert(20, 30); // right-adjacent
  EXPECT_EQ(S.numIntervals(), 1u);
  S.insert(0, 10); // left-adjacent
  EXPECT_EQ(S.numIntervals(), 1u);
  EXPECT_TRUE(S.containsRange(0, 30));
  EXPECT_EQ(S.totalWords(), 30u);
  S.insert(31, 40); // one-word gap stays separate
  EXPECT_EQ(S.numIntervals(), 2u);
  EXPECT_FALSE(S.contains(30));
}

TEST(IntervalSet, ExactOverlapRemoval) {
  // Erasing exactly a stored interval empties it without touching its
  // neighbours.
  IntervalSet S;
  S.insert(0, 10);
  S.insert(20, 30);
  S.insert(40, 50);
  S.erase(20, 30);
  EXPECT_EQ(S.numIntervals(), 2u);
  EXPECT_FALSE(S.overlaps(20, 30));
  EXPECT_TRUE(S.containsRange(0, 10));
  EXPECT_TRUE(S.containsRange(40, 50));
  EXPECT_EQ(S.totalWords(), 20u);
  S.erase(0, 10);
  S.erase(40, 50);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.totalWords(), 0u);
}

TEST(IntervalSet, SplitInTheMiddleRelease) {
  // Erasing strictly inside an interval splits it into two maximal
  // pieces with exact boundaries.
  IntervalSet S;
  S.insert(0, 100);
  S.erase(40, 60);
  EXPECT_EQ(S.numIntervals(), 2u);
  auto [L0, L1] = S.intervalContaining(39);
  EXPECT_EQ(L0, 0u);
  EXPECT_EQ(L1, 40u);
  auto [R0, R1] = S.intervalContaining(60);
  EXPECT_EQ(R0, 60u);
  EXPECT_EQ(R1, 100u);
  EXPECT_EQ(S.totalWords(), 80u);
  // Splitting the right piece again keeps every boundary exact.
  S.erase(70, 80);
  EXPECT_EQ(S.numIntervals(), 3u);
  EXPECT_TRUE(S.containsRange(60, 70));
  EXPECT_TRUE(S.containsRange(80, 100));
  EXPECT_FALSE(S.overlaps(70, 80));
}

TEST(IntervalSet, RandomizedAgainstReference) {
  // Property test: IntervalSet agrees with a std::set<Addr> reference
  // model over random insert/erase sequences.
  Rng R(123);
  IntervalSet S;
  std::set<Addr> Ref;
  const Addr Universe = 256;
  for (int Op = 0; Op != 2000; ++Op) {
    Addr Start = R.nextBelow(Universe - 8);
    Addr End = Start + 1 + R.nextBelow(8);
    bool AllIn = true, AllOut = true;
    for (Addr A = Start; A != End; ++A)
      (Ref.count(A) ? AllOut : AllIn) = false;
    if (AllOut && R.nextBool(0.6)) {
      S.insert(Start, End);
      for (Addr A = Start; A != End; ++A)
        Ref.insert(A);
    } else if (AllIn && !Ref.empty() && R.nextBool(0.8)) {
      S.erase(Start, End);
      for (Addr A = Start; A != End; ++A)
        Ref.erase(A);
    }
    ASSERT_EQ(S.totalWords(), Ref.size());
    Addr Probe = R.nextBelow(Universe);
    ASSERT_EQ(S.contains(Probe), Ref.count(Probe) != 0) << "probe " << Probe;
  }
}

// --- FreeSpaceIndex ------------------------------------------------------

TEST(FreeSpaceIndex, StartsFullyFree) {
  FreeSpaceIndex F;
  EXPECT_TRUE(F.isFree(0, 1024));
  EXPECT_EQ(F.firstFit(16), 0u);
  EXPECT_EQ(F.numBlocks(), 1u);
}

TEST(FreeSpaceIndex, ReserveReleaseRoundTrip) {
  FreeSpaceIndex F;
  F.reserve(0, 16);
  EXPECT_FALSE(F.isFree(0, 1));
  EXPECT_EQ(F.firstFit(1), 16u);
  F.release(0, 16);
  EXPECT_TRUE(F.isFree(0, 16));
  EXPECT_EQ(F.numBlocks(), 1u); // coalesced back into the tail
}

TEST(FreeSpaceIndex, FirstFitSkipsSmallHoles) {
  FreeSpaceIndex F;
  F.reserve(0, 100);
  F.release(10, 4);  // hole of 4
  F.release(30, 8);  // hole of 8
  EXPECT_EQ(F.firstFit(4), 10u);
  EXPECT_EQ(F.firstFit(5), 30u);
  EXPECT_EQ(F.firstFit(8), 30u);
  EXPECT_EQ(F.firstFit(9), 100u); // only the tail fits
}

TEST(FreeSpaceIndex, BestFitPrefersTightHole) {
  FreeSpaceIndex F;
  F.reserve(0, 100);
  F.release(10, 16);
  F.release(40, 4);
  EXPECT_EQ(F.bestFit(3), 40u);
  EXPECT_EQ(F.bestFit(4), 40u);
  EXPECT_EQ(F.bestFit(5), 10u);
}

TEST(FreeSpaceIndex, FirstFitFromCursor) {
  FreeSpaceIndex F;
  F.reserve(0, 100);
  F.release(10, 8);
  F.release(50, 8);
  EXPECT_EQ(F.firstFitFrom(0, 8), 10u);
  EXPECT_EQ(F.firstFitFrom(20, 8), 50u);
  EXPECT_EQ(F.firstFitFrom(60, 8), 100u);
  // A cursor inside a block uses the block's remainder.
  EXPECT_EQ(F.firstFitFrom(12, 4), 12u);
  EXPECT_EQ(F.firstFitFrom(12, 6), 12u); // [12, 18) still fits 6
  EXPECT_EQ(F.firstFitFrom(13, 6), 50u); // [13, 18) does not
}

TEST(FreeSpaceIndex, AlignedFit) {
  FreeSpaceIndex F;
  F.reserve(0, 64);
  F.release(6, 10); // block [6, 16): aligned-8 start within is 8
  EXPECT_EQ(F.firstFitAligned(8, 8), 8u);
  EXPECT_EQ(F.firstFitAligned(9, 8), 64u);
  EXPECT_EQ(F.firstFitAligned(4, 4), 8u);
}

TEST(FreeSpaceIndex, FitBelowLimit) {
  FreeSpaceIndex F;
  F.reserve(0, 100);
  F.release(10, 8);
  EXPECT_EQ(F.firstFitBelow(8, 100), 10u);
  EXPECT_EQ(F.firstFitBelow(8, 18), 10u);
  EXPECT_EQ(F.firstFitBelow(8, 17), InvalidAddr);
  EXPECT_EQ(F.firstFitBelow(9, 100), InvalidAddr);
}

TEST(FreeSpaceIndex, FreeWordsAccounting) {
  FreeSpaceIndex F;
  F.reserve(0, 100);
  F.release(10, 8);
  F.release(30, 4);
  EXPECT_EQ(F.freeWordsBelow(100), 12u);
  EXPECT_EQ(F.freeWordsBelow(32), 10u);
  EXPECT_EQ(F.freeWordsIn(10, 18), 8u);
  EXPECT_EQ(F.freeWordsIn(12, 40), 10u);
  EXPECT_EQ(F.freeWordsIn(50, 90), 0u);
}

TEST(FreeSpaceIndex, RandomizedAgainstIntervalSet) {
  // Property test: the free index is exactly the complement of a
  // reference IntervalSet of used space.
  Rng R(99);
  FreeSpaceIndex F;
  IntervalSet Used;
  const Addr Universe = 512;
  for (int Op = 0; Op != 4000; ++Op) {
    Addr Start = R.nextBelow(Universe - 16);
    uint64_t Size = 1 + R.nextBelow(16);
    if (!Used.overlaps(Start, Start + Size) && R.nextBool(0.55)) {
      F.reserve(Start, Size);
      Used.insert(Start, Start + Size);
    } else if (Used.containsRange(Start, Start + Size) && R.nextBool(0.9)) {
      F.release(Start, Size);
      Used.erase(Start, Start + Size);
    }
    Addr P1 = R.nextBelow(Universe - 8);
    uint64_t S1 = 1 + R.nextBelow(8);
    ASSERT_EQ(F.isFree(P1, S1), !Used.overlaps(P1, P1 + S1));
    ASSERT_EQ(F.freeWordsIn(P1, P1 + S1),
              S1 - Used.coveredWords(P1, P1 + S1));
    // First fit really is first: nothing free of that size earlier.
    uint64_t S2 = 1 + R.nextBelow(8);
    Addr Fit = F.firstFit(S2);
    ASSERT_TRUE(F.isFree(Fit, S2));
    for (Addr A = 0; A < Fit && A + S2 <= Universe; ++A)
      ASSERT_FALSE(F.isFree(A, S2)) << "missed earlier fit at " << A;
  }
}

// --- Heap ----------------------------------------------------------------

TEST(Heap, PlaceFreeMoveLifecycle) {
  Heap H;
  ObjectId A = H.place(0, 10);
  ObjectId B = H.place(16, 8);
  EXPECT_TRUE(H.isLive(A));
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.stats().LiveWords, 18u);
  EXPECT_EQ(H.stats().HighWaterMark, 24u);

  H.free(A);
  EXPECT_FALSE(H.isLive(A));
  EXPECT_EQ(H.stats().LiveWords, 8u);
  EXPECT_EQ(H.stats().HighWaterMark, 24u); // footprint never shrinks

  H.move(B, 0);
  EXPECT_EQ(H.object(B).Address, 0u);
  EXPECT_EQ(H.stats().MovedWords, 8u);
  EXPECT_EQ(H.stats().NumMoves, 1u);
}

TEST(Heap, OverlappingSlideAllowed) {
  Heap H;
  ObjectId A = H.place(4, 10);
  H.move(A, 0); // target overlaps the source; memmove semantics
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_TRUE(H.isFree(10, 4));
}

TEST(Heap, UsedWordsIn) {
  Heap H;
  H.place(0, 4);
  H.place(8, 4);
  EXPECT_EQ(H.usedWordsIn(0, 12), 8u);
  EXPECT_EQ(H.usedWordsIn(2, 8), 4u);
  EXPECT_EQ(H.usedWordsIn(4, 4), 0u);
}

TEST(Heap, LiveObjectsInAddressOrder) {
  Heap H;
  ObjectId C = H.place(32, 4);
  ObjectId A = H.place(0, 4);
  ObjectId B = H.place(16, 4);
  std::vector<ObjectId> Live = H.liveObjects();
  ASSERT_EQ(Live.size(), 3u);
  EXPECT_EQ(Live[0], A);
  EXPECT_EQ(Live[1], B);
  EXPECT_EQ(Live[2], C);

  auto In = H.liveObjectsIn(10, 10); // [10, 20): only B
  ASSERT_EQ(In.size(), 1u);
  EXPECT_EQ(In[0], B);

  // Straddling object: starts before the range but reaches into it.
  auto Straddle = H.liveObjectsIn(2, 4);
  ASSERT_EQ(Straddle.size(), 1u);
  EXPECT_EQ(Straddle[0], A);
}

TEST(Heap, StatsAccumulate) {
  Heap H;
  ObjectId A = H.place(0, 4);
  H.free(A);
  ObjectId B = H.place(0, 4);
  (void)B;
  EXPECT_EQ(H.stats().TotalAllocatedWords, 8u);
  EXPECT_EQ(H.stats().NumAllocations, 2u);
  EXPECT_EQ(H.stats().NumFrees, 1u);
  EXPECT_EQ(H.stats().PeakLiveWords, 4u);
}

// --- ChunkView -----------------------------------------------------------

TEST(ChunkView, IndexArithmetic) {
  ChunkView V(3); // chunks of 8
  EXPECT_EQ(V.chunkSize(), 8u);
  EXPECT_EQ(V.indexOf(0), 0u);
  EXPECT_EQ(V.indexOf(7), 0u);
  EXPECT_EQ(V.indexOf(8), 1u);
  EXPECT_EQ(V.startOf(2), 16u);
  EXPECT_EQ(V.endOf(2), 24u);
}

TEST(ChunkView, FullCoverage) {
  ChunkView V(3);
  // Aligned 32-word object at 0 fully covers chunks 0..3.
  EXPECT_EQ(V.firstFullIndex(0, 32), 0u);
  EXPECT_EQ(V.lastFullIndex(0, 32), 3u);
  EXPECT_EQ(V.numFullChunks(0, 32), 4u);
  // Unaligned at 4: fully covers chunks 1..3 only.
  EXPECT_EQ(V.firstFullIndex(4, 32), 1u);
  EXPECT_EQ(V.lastFullIndex(4, 32), 3u);
  EXPECT_EQ(V.numFullChunks(4, 32), 3u);
  // Small object covers no chunk fully.
  EXPECT_EQ(V.numFullChunks(4, 6), 0u);
}

TEST(ChunkView, TouchedChunks) {
  ChunkView V(3);
  EXPECT_EQ(V.firstTouchedIndex(4), 0u);
  EXPECT_EQ(V.lastTouchedIndex(4, 32), 4u); // [4, 36) touches chunk 4
  EXPECT_EQ(V.lastTouchedIndex(0, 8), 0u);
}

TEST(ChunkView, OccupyingDefinition) {
  // Definition 4.2: object at [a, a+s) is f-occupying iff it covers some
  // address k * 2^i + f.
  ChunkView V(3);
  EXPECT_TRUE(V.isOccupying(0, 1, 0));
  EXPECT_FALSE(V.isOccupying(0, 1, 1));
  EXPECT_TRUE(V.isOccupying(5, 4, 0)); // [5, 9) covers 8 = 1*8 + 0
  EXPECT_TRUE(V.isOccupying(5, 4, 6));
  EXPECT_FALSE(V.isOccupying(5, 4, 1));
  // Object of a full chunk size occupies every offset.
  for (uint64_t F = 0; F != 8; ++F)
    EXPECT_TRUE(V.isOccupying(3, 8, F));
}

TEST(ChunkView, OccupyingMatchesBruteForce) {
  // Property: the closed-form f-occupying test agrees with enumerating
  // the object's words, across all small placements, sizes and offsets.
  for (unsigned LogSize : {1u, 2u, 3u, 4u}) {
    ChunkView V(LogSize);
    uint64_t Chunk = V.chunkSize();
    for (Addr Start = 0; Start != 3 * Chunk; ++Start)
      for (uint64_t Size = 1; Size <= 2 * Chunk; ++Size)
        for (uint64_t F = 0; F != Chunk; ++F) {
          bool Brute = false;
          for (Addr W = Start; W != Start + Size; ++W)
            if (W % Chunk == F) {
              Brute = true;
              break;
            }
          ASSERT_EQ(V.isOccupying(Start, Size, F), Brute)
              << "log=" << LogSize << " start=" << Start
              << " size=" << Size << " f=" << F;
        }
  }
}

TEST(ChunkView, FullCoverageMatchesBruteForce) {
  ChunkView V(3);
  uint64_t Chunk = V.chunkSize();
  for (Addr Start = 0; Start != 4 * Chunk; ++Start)
    for (uint64_t Size = 1; Size <= 4 * Chunk; ++Size) {
      uint64_t Brute = 0;
      for (uint64_t K = V.indexOf(Start); K <= V.indexOf(Start + Size - 1);
           ++K)
        if (Start <= V.startOf(K) && V.endOf(K) <= Start + Size)
          ++Brute;
      ASSERT_EQ(V.numFullChunks(Start, Size), Brute)
          << "start=" << Start << " size=" << Size;
    }
}

TEST(FreeSpaceIndex, AlignedFitMatchesBruteForce) {
  // Property: firstFitAligned returns the lowest aligned address that a
  // brute-force scan over the free map would find.
  Rng R(321);
  FreeSpaceIndex F;
  IntervalSet Used;
  const Addr Universe = 256;
  for (int Op = 0; Op != 1500; ++Op) {
    Addr Start = R.nextBelow(Universe - 16);
    uint64_t Size = 1 + R.nextBelow(16);
    if (!Used.overlaps(Start, Start + Size) && R.nextBool(0.6)) {
      F.reserve(Start, Size);
      Used.insert(Start, Start + Size);
    } else if (Used.containsRange(Start, Start + Size)) {
      F.release(Start, Size);
      Used.erase(Start, Start + Size);
    }
    uint64_t QSize = 1 + R.nextBelow(12);
    uint64_t Align = uint64_t(1) << R.nextBelow(4);
    Addr Got = F.firstFitAligned(QSize, Align);
    Addr Brute = InvalidAddr;
    for (Addr A = 0; A + QSize <= 2 * Universe; A += Align)
      if (F.isFree(A, QSize)) {
        Brute = A;
        break;
      }
    ASSERT_EQ(Got, Brute) << "size=" << QSize << " align=" << Align;
  }
}

TEST(Heap, ConsistencyCheckerPassesThroughChurn) {
  Heap H;
  Rng R(17);
  std::vector<ObjectId> Live;
  for (int Op = 0; Op != 2000; ++Op) {
    if (Live.empty() || R.nextBool(0.6)) {
      uint64_t Size = 1 + R.nextBelow(32);
      Live.push_back(H.place(H.freeSpace().firstFit(Size), Size));
    } else {
      size_t Pick = size_t(R.nextBelow(Live.size()));
      H.free(Live[Pick]);
      Live[Pick] = Live.back();
      Live.pop_back();
    }
    if (Op % 100 == 0) {
      ASSERT_TRUE(H.checkConsistency()) << "op " << Op;
    }
  }
  EXPECT_TRUE(H.checkConsistency());
}

// --- HeapImage -----------------------------------------------------------

TEST(HeapImage, RendersOccupancyGlyphs) {
  Heap H;
  H.place(0, 16);
  H.place(20, 8);
  std::string Img = renderHeapImage(H, 32, 4, 1);
  // 4 cells of 8 words: full, full, half-used, half-used.
  EXPECT_EQ(Img, "##::");
}

TEST(HeapImage, EmptyHeap) {
  Heap H;
  EXPECT_EQ(renderHeapImage(H, 0), "(empty heap)");
}

TEST(HeapImage, WrapsAcrossLines) {
  Heap H;
  H.place(0, 8);
  std::string Img = renderHeapImage(H, 16, /*MaxColumns=*/4, /*MaxLines=*/4);
  // 16 words in cells of 1 word across 4-column lines: #### / #### / ....
  EXPECT_EQ(Img, "####\n####\n....\n....");
}

TEST(Heap, MoveBeyondMarkGrowsFootprint) {
  Heap H;
  ObjectId A = H.place(0, 8);
  EXPECT_EQ(H.stats().HighWaterMark, 8u);
  H.move(A, 100);
  EXPECT_EQ(H.stats().HighWaterMark, 108u);
  EXPECT_EQ(H.stats().MovedWords, 8u);
  EXPECT_TRUE(H.checkConsistency());
}

TEST(FreeSpaceIndex, BlockCountTracksFragmentation) {
  FreeSpaceIndex F;
  EXPECT_EQ(F.numBlocks(), 1u); // the infinite tail
  F.reserve(0, 64);
  EXPECT_EQ(F.numBlocks(), 1u);
  F.release(8, 8);
  F.release(24, 8);
  EXPECT_EQ(F.numBlocks(), 3u);
  F.release(16, 8); // bridges the two holes
  EXPECT_EQ(F.numBlocks(), 2u);
  F.release(0, 8);
  F.release(32, 32); // merges with the tail
  EXPECT_EQ(F.numBlocks(), 1u);
}

TEST(FreeSpaceIndex, AggregateQueriesBelowLimit) {
  FreeSpaceIndex F;
  // The tail starts at 0, so everything below any limit is one clipped
  // block.
  EXPECT_EQ(F.numBlocksBelow(100), 1u);
  EXPECT_EQ(F.largestBlockBelow(100), 100u);
  F.reserve(0, 64); // tail now starts at 64
  EXPECT_EQ(F.numBlocksBelow(64), 0u);
  EXPECT_EQ(F.largestBlockBelow(64), 0u);
  F.release(8, 8);
  F.release(24, 4);
  EXPECT_EQ(F.numBlocksBelow(64), 2u);
  EXPECT_EQ(F.largestBlockBelow(64), 8u);
  // A block straddling the limit counts, clipped.
  EXPECT_EQ(F.numBlocksBelow(26), 2u);
  EXPECT_EQ(F.largestBlockBelow(26), 8u);
  EXPECT_EQ(F.largestBlockBelow(12), 4u); // [8,16) clipped to [8,12)
  EXPECT_EQ(F.numBlocksBelow(8), 0u);
}

TEST(Metrics, FastPathMatchesRescan) {
  // Property test: the O(log) measureFragmentation (complement identity
  // plus FreeSpaceIndex aggregates) agrees with a brute-force walk of
  // the free list over a random churn workload.
  Rng R(2013);
  Heap H;
  std::vector<ObjectId> Live;
  for (int Op = 0; Op != 600; ++Op) {
    if (Live.empty() || R.nextBool(0.6)) {
      uint64_t Size = 1 + R.nextBelow(32);
      Live.push_back(H.place(H.freeSpace().firstFit(Size), Size));
    } else {
      size_t K = size_t(R.nextBelow(Live.size()));
      H.free(Live[K]);
      Live.erase(Live.begin() + K);
    }

    FragmentationMetrics M = measureFragmentation(H);
    uint64_t FreeWords = 0, FreeBlocks = 0, Largest = 0;
    for (const auto &[Start, End] : H.freeSpace()) {
      if (Start >= M.FootprintWords)
        break;
      uint64_t Span =
          std::min<Addr>(End, M.FootprintWords) - Start;
      FreeWords += Span;
      Largest = std::max(Largest, Span);
      ++FreeBlocks;
    }
    ASSERT_EQ(M.FreeWords, FreeWords);
    ASSERT_EQ(M.FreeBlocks, FreeBlocks);
    ASSERT_EQ(M.LargestFreeBlock, Largest);
  }
}

} // namespace
