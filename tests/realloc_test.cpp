//===- tests/realloc_test.cpp - The reallocation workbench gauntlet ------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Three layers of confidence in the reallocation family (src/realloc/,
// DESIGN.md §17):
//
//   1. Hand-computed micro-schedules: exact overhead ratios, backfill
//      and repack decisions, and trigger boundaries on boards small
//      enough to verify on paper.
//   2. Randomized gauntlets: thousands of insert/delete ops per seed,
//      with each algorithm's worst-prefix overhead held to its paper
//      bound and its ledger reconciled against the heap's statistics.
//   3. Oracle regressions: managers built to lie (a bound their moves
//      exceed, a move their ledger never saw, a history that breached
//      the bound) ARE caught by the named fuzzer invariants, and the
//      committed worst-overhead reproducer keeps reproducing.
//
//===----------------------------------------------------------------------===//

#include "adversary/ProgramFactory.h"
#include "driver/Execution.h"
#include "driver/TraceIO.h"
#include "fuzz/InvariantOracle.h"
#include "mm/ManagerFactory.h"
#include "realloc/CostObliviousAllocator.h"
#include "realloc/NeverMoveAllocator.h"
#include "realloc/ReallocManager.h"
#include "realloc/ReallocationLedger.h"
#include "realloc/TightSpanAllocator.h"
#include "realloc/UpdateProgram.h"
#include "support/MathUtils.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

using namespace pcb;

namespace {

// --- ReallocationLedger ----------------------------------------------------

TEST(ReallocationLedger, HandComputedRatios) {
  ReallocationLedger L(1.0);
  EXPECT_EQ(L.overheadRatio(), 0.0); // no volume yet
  L.noteAllocation(10);
  EXPECT_EQ(L.allocatedWords(), 10u);
  L.chargeMove(5);
  EXPECT_EQ(L.movedWords(), 5u);
  EXPECT_DOUBLE_EQ(L.overheadRatio(), 0.5);
  L.noteAllocation(10);
  EXPECT_DOUBLE_EQ(L.overheadRatio(), 0.25);
  L.chargeMove(15);
  EXPECT_DOUBLE_EQ(L.overheadRatio(), 1.0);
  EXPECT_TRUE(L.holds());
}

TEST(ReallocationLedger, WorstPrefixIsSticky) {
  ReallocationLedger L(2.0);
  L.noteAllocation(4);
  L.chargeMove(8); // prefix ratio 2.0
  EXPECT_DOUBLE_EQ(L.maxPrefixRatio(), 2.0);
  L.noteAllocation(100); // current ratio collapses to 8/104...
  EXPECT_LT(L.overheadRatio(), 0.1);
  EXPECT_DOUBLE_EQ(L.maxPrefixRatio(), 2.0); // ...the worst prefix remains
  EXPECT_TRUE(L.holds());
}

TEST(ReallocationLedger, UnlimitedMode) {
  ReallocationLedger L(-1.0);
  EXPECT_TRUE(L.isUnlimited());
  EXPECT_TRUE(std::isinf(L.bound()));
  EXPECT_TRUE(L.canCharge(UINT64_MAX / 2));
  L.chargeMove(1000); // no volume, no bound: still fine
  EXPECT_TRUE(L.holds());
}

TEST(ReallocationLedger, CanChargeBoundaryIsExact) {
  ReallocationLedger L(1.0);
  L.noteAllocation(10);
  EXPECT_TRUE(L.canCharge(10));   // exactly at the bound: allowed
  EXPECT_FALSE(L.canCharge(11));  // one word over: denied
  L.chargeMove(10);
  EXPECT_FALSE(L.canCharge(1));   // budget exhausted until fresh volume
  L.noteAllocation(1);
  EXPECT_TRUE(L.canCharge(1));
}

TEST(ReallocationLedger, HoldsDetectsForcedViolation) {
  // chargeMove without a canCharge check models a buggy scheme; the
  // worst-prefix tracker must convict it.
  ReallocationLedger L(1.0);
  L.noteAllocation(10);
  L.chargeMove(25);
  EXPECT_FALSE(L.holds());
  EXPECT_DOUBLE_EQ(L.maxPrefixRatio(), 2.5);
}

// --- CostObliviousAllocator (realloc-bucket) -------------------------------

TEST(CostOblivious, BackfillsHighestClassMateIntoHole) {
  Heap H;
  CostObliviousAllocator MM(H);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(8);
  ObjectId C = MM.allocate(8);
  ASSERT_EQ(H.object(A).Address, 0u);
  ASSERT_EQ(H.object(C).Address, 16u);
  MM.free(A);
  // The highest-addressed 8-word class-mate (C) slid into A's hole.
  EXPECT_EQ(MM.backfills(), 1u);
  EXPECT_EQ(H.object(C).Address, 0u);
  EXPECT_EQ(H.object(B).Address, 8u);
  // Exact accounting: 8 words moved against 24 allocated.
  const ReallocationLedger *RL = MM.reallocationLedger();
  ASSERT_NE(RL, nullptr);
  EXPECT_EQ(RL->movedWords(), 8u);
  EXPECT_EQ(RL->allocatedWords(), 24u);
  EXPECT_DOUBLE_EQ(RL->maxPrefixRatio(), 8.0 / 24.0);
  EXPECT_TRUE(RL->holds());
}

TEST(CostOblivious, NoBackfillWhenHoleIsAboveAllClassMates) {
  Heap H;
  CostObliviousAllocator MM(H);
  MM.allocate(8);
  MM.allocate(8);
  ObjectId C = MM.allocate(8);
  MM.free(C); // the hole is the highest range: nothing above to slide down
  EXPECT_EQ(MM.backfills(), 0u);
  EXPECT_EQ(H.stats().MovedWords, 0u);
}

TEST(CostOblivious, SizeClassesAreIsolated) {
  Heap H;
  CostObliviousAllocator MM(H);
  ObjectId A8 = MM.allocate(8);  // @0
  ObjectId B4 = MM.allocate(4);  // @8
  ObjectId C8 = MM.allocate(8);  // @12
  ObjectId D4 = MM.allocate(4);  // @20
  MM.free(A8);
  // Only the 8-word class reacts: C8 backfills, the 4-word objects stay.
  EXPECT_EQ(H.object(C8).Address, 0u);
  EXPECT_EQ(H.object(B4).Address, 8u);
  EXPECT_EQ(H.object(D4).Address, 20u);
  EXPECT_EQ(MM.backfills(), 1u);
}

TEST(CostOblivious, BackfillMovesAreStrictlyDownward) {
  Heap H;
  CostObliviousAllocator MM(H);
  Rng R(7);
  std::vector<ObjectId> Live;
  for (int Op = 0; Op != 600; ++Op) {
    if (Live.empty() || R.nextBool(0.6)) {
      Live.push_back(MM.allocate(uint64_t(1) << R.nextBelow(5)));
    } else {
      size_t I = R.nextBelow(Live.size());
      // Snapshot every survivor's address: a free may only ever slide
      // objects down, never up.
      std::vector<Addr> Before;
      for (ObjectId Id : Live)
        Before.push_back(H.object(Id).Address);
      ObjectId Victim = Live[I];
      MM.free(Victim);
      Live.erase(Live.begin() + I);
      Before.erase(Before.begin() + I);
      for (size_t J = 0; J != Live.size(); ++J)
        EXPECT_LE(H.object(Live[J]).Address, Before[J]);
    }
  }
  EXPECT_GT(MM.backfills(), 0u);
  EXPECT_TRUE(MM.reallocationLedger()->holds());
}

// --- TightSpanAllocator (realloc-jin) --------------------------------------

TEST(TightSpan, TriggerBoundaryIsExact) {
  Heap H;
  TightSpanAllocator MM(H);
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(4);
  ObjectId C = MM.allocate(4);
  (void)C;
  EXPECT_EQ(MM.spanTop(), 12u);
  MM.free(A); // dead 4, live 8: 2*4 <= 8, exactly at the trigger — no pass
  EXPECT_EQ(MM.rebuilds(), 0u);
  EXPECT_EQ(MM.spanTop(), 12u);
  MM.free(B); // dead 8, live 4: 2*8 > 4 — repack fires
  EXPECT_EQ(MM.rebuilds(), 1u);
  EXPECT_EQ(H.object(C).Address, 0u);
  EXPECT_EQ(MM.spanTop(), 4u);
}

TEST(TightSpan, RebuildPacksDensePrefixAndChargesExactly) {
  Heap H;
  TightSpanAllocator MM(H);
  ObjectId A = MM.allocate(4); // @0
  ObjectId B = MM.allocate(4); // @4
  ObjectId C = MM.allocate(4); // @8
  ObjectId D = MM.allocate(4); // @12
  MM.free(B); // dead 4, live 12: no trigger
  MM.free(D); // dead 8, live 8: trigger — C slides 8 -> 4
  EXPECT_EQ(MM.rebuilds(), 1u);
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.object(C).Address, 4u);
  // A complete pass leaves the span exactly as tight as the live size.
  EXPECT_EQ(MM.spanTop(), H.stats().LiveWords);
  const ReallocationLedger *RL = MM.reallocationLedger();
  EXPECT_EQ(RL->movedWords(), 4u);
  EXPECT_EQ(RL->allocatedWords(), 16u);
  EXPECT_DOUBLE_EQ(RL->maxPrefixRatio(), 0.25);
}

TEST(TightSpan, EmptyHeapResetsSpan) {
  Heap H;
  TightSpanAllocator MM(H);
  ObjectId A = MM.allocate(16);
  EXPECT_EQ(MM.spanTop(), 16u);
  MM.free(A);
  EXPECT_EQ(MM.spanTop(), 0u);
  EXPECT_EQ(MM.rebuilds(), 0u); // nothing to repack: the span collapses free
}

TEST(TightSpan, SpendGateDenialDegradesGracefully) {
  Heap H;
  TightSpanAllocator MM(H);
  MM.setSpendGate([] { return false; });
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(4);
  MM.allocate(4);
  MM.free(A);
  MM.free(B); // the trigger fires, but the gate denies the first move
  // Denial degrades to fewer moves, not a violated bound or a livelock.
  EXPECT_EQ(H.stats().MovedWords, 0u);
  EXPECT_TRUE(MM.reallocationLedger()->holds());
  EXPECT_EQ(MM.reallocationLedger()->movedWords(), 0u);
  EXPECT_EQ(MM.spanTop(), 12u); // an incomplete pass must not tighten
}

// --- Randomized gauntlets --------------------------------------------------

// 8 seeds x 10k insert/delete ops against each movement scheme: the
// worst-prefix overhead (which covers EVERY prefix, by construction of
// maxPrefixRatio) stays within the paper bound, and the scheme's own
// ledger reconciles exactly with the heap's independent statistics.
template <typename ManagerT>
void runRandomChurn(double Bound) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Heap H;
    ManagerT MM(H);
    Rng R(Seed);
    std::vector<ObjectId> Live;
    uint64_t LiveWords = 0;
    for (int Op = 0; Op != 10000; ++Op) {
      if (Live.empty() || (LiveWords < 4096 && R.nextBool(0.55))) {
        uint64_t Size = uint64_t(1) << R.nextBelow(7);
        Live.push_back(MM.allocate(Size));
        LiveWords += Size;
      } else {
        size_t I = R.nextBelow(Live.size());
        LiveWords -= H.object(Live[I]).Size;
        MM.free(Live[I]);
        Live[I] = Live.back();
        Live.pop_back();
      }
    }
    const ReallocationLedger *RL = MM.reallocationLedger();
    ASSERT_NE(RL, nullptr);
    EXPECT_TRUE(RL->holds()) << "seed " << Seed;
    EXPECT_LE(RL->maxPrefixRatio(), Bound + 1e-9) << "seed " << Seed;
    EXPECT_EQ(RL->movedWords(), H.stats().MovedWords) << "seed " << Seed;
    EXPECT_EQ(RL->allocatedWords(), H.stats().TotalAllocatedWords)
        << "seed " << Seed;
    EXPECT_GT(H.stats().MovedWords, 0u) << "seed " << Seed
                                        << ": the gauntlet never moved";
  }
}

TEST(Gauntlet, CostObliviousHoldsBoundOnEveryPrefix) {
  runRandomChurn<CostObliviousAllocator>(1.0);
}

TEST(Gauntlet, TightSpanHoldsBoundOnEveryPrefix) {
  runRandomChurn<TightSpanAllocator>(2.0);
}

TEST(Gauntlet, NeverMoveIsZeroOverhead) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Heap H;
    NeverMoveAllocator MM(H);
    Rng R(Seed);
    std::vector<ObjectId> Live;
    for (int Op = 0; Op != 2000; ++Op) {
      if (Live.empty() || R.nextBool(0.55)) {
        Live.push_back(MM.allocate(uint64_t(1) << R.nextBelow(6)));
      } else {
        size_t I = R.nextBelow(Live.size());
        MM.free(Live[I]);
        Live[I] = Live.back();
        Live.pop_back();
      }
    }
    EXPECT_EQ(H.stats().MovedWords, 0u);
    EXPECT_EQ(MM.overheadBound(), 0.0);
    EXPECT_EQ(MM.reallocationLedger()->movedWords(), 0u);
    EXPECT_DOUBLE_EQ(MM.reallocationLedger()->overheadRatio(), 0.0);
  }
}

// PF frees every moved object, driving backfill cascades (bucket) and
// mid-pass re-triggering (jin): the bound must survive the compaction
// family's strongest adversary, and the cascades must terminate.
TEST(Gauntlet, PFCascadesTerminateWithinBound) {
  struct Case {
    const char *Policy;
    double Bound;
  } Cases[] = {{"realloc-bucket", 1.0}, {"realloc-jin", 2.0}};
  for (const Case &K : Cases) {
    Heap H;
    uint64_t M = pow2(10);
    auto MM = createManager(K.Policy, H, 50.0, M);
    ASSERT_NE(MM, nullptr);
    auto Prog = createProgram("cohen-petrank", M, 4, 50.0);
    ASSERT_NE(Prog, nullptr);
    Execution E(*MM, *Prog, M);
    ExecutionResult Res = E.run();
    const ReallocationLedger *RL = MM->reallocationLedger();
    ASSERT_NE(RL, nullptr) << K.Policy;
    EXPECT_TRUE(RL->holds()) << K.Policy;
    EXPECT_LE(RL->maxPrefixRatio(), K.Bound + 1e-9) << K.Policy;
    EXPECT_EQ(RL->movedWords(), Res.MovedWords) << K.Policy;
    EXPECT_EQ(RL->allocatedWords(), Res.TotalAllocatedWords) << K.Policy;
  }
}

// --- Factory registration --------------------------------------------------

TEST(Factory, ReallocFamilyRegistered) {
  EXPECT_EQ(reallocManagerPolicies(),
            (std::vector<std::string>{"realloc-never", "realloc-bucket",
                                      "realloc-jin"}));
  for (const std::string &Policy : reallocManagerPolicies()) {
    Heap H;
    auto MM = createManager(Policy, H, 50.0);
    ASSERT_NE(MM, nullptr) << Policy;
    EXPECT_EQ(MM->name(), Policy);
    EXPECT_NE(MM->reallocationLedger(), nullptr) << Policy;
    EXPECT_TRUE(isReallocPolicy(Policy));
  }
  EXPECT_FALSE(isReallocPolicy("first-fit"));
  EXPECT_FALSE(isReallocPolicy("sliding"));
  // The two families partition the registry.
  EXPECT_EQ(allManagerPolicies().size(),
            compactionFamilyPolicies().size() +
                reallocManagerPolicies().size());
  // The zero-overhead envelope is also a non-moving manager (Robson's
  // bounds apply to it).
  std::vector<std::string> NonMoving = nonMovingManagerPolicies();
  EXPECT_NE(std::find(NonMoving.begin(), NonMoving.end(), "realloc-never"),
            NonMoving.end());
}

TEST(Factory, OverheadBoundsPerFamily) {
  Heap H1, H2, H3, H4, H5;
  EXPECT_EQ(createManager("realloc-never", H1, 50.0)->overheadBound(), 0.0);
  EXPECT_EQ(createManager("realloc-bucket", H2, 50.0)->overheadBound(), 1.0);
  EXPECT_EQ(createManager("realloc-jin", H3, 50.0)->overheadBound(), 2.0);
  // c-partial managers declare 1/c; unlimited baselines declare nothing.
  EXPECT_DOUBLE_EQ(createManager("sliding", H4, 50.0)->overheadBound(),
                   1.0 / 50.0);
  EXPECT_TRUE(std::isinf(
      createManager("sliding-unlimited", H5, 50.0)->overheadBound()));
}

// --- Oracle regressions ----------------------------------------------------

namespace oracle_regressions {

// A manager whose declared bound its own moves exceed: the cheap
// per-step overhead-ratio invariant must convict it.
class LyingBoundAllocator : public CostObliviousAllocator {
public:
  explicit LyingBoundAllocator(Heap &H) : CostObliviousAllocator(H) {}
  double overheadBound() const override { return 0.0; } // "I never move"
};

// A manager that moves behind its ledger's back (tryMoveObject without
// reallocMove): only the end-to-end reconciliation catches it, because
// the heap's statistics are the independent witness.
class RogueMoveManager : public ReallocManager {
public:
  explicit RogueMoveManager(Heap &H) : ReallocManager(H, 1.0) {}
  std::string name() const override { return "rogue-move"; }
  bool rogueMove(ObjectId Id, Addr To) { return tryMoveObject(Id, To); }

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().firstFit(Size);
  }
};

// A manager whose ledger recorded a bound-breaching prefix: the
// overhead-history invariant must flag it even when the current ratio
// has long since recovered.
class BrokenHistoryManager : public MemoryManager {
public:
  explicit BrokenHistoryManager(Heap &H)
      : MemoryManager(H, /*C=*/0.0), RL(1.0) {}
  std::string name() const override { return "broken-history"; }
  const ReallocationLedger *reallocationLedger() const override {
    return &RL;
  }
  double overheadBound() const override { return RL.bound(); }
  ReallocationLedger RL;

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().firstFit(Size);
  }
};

} // namespace oracle_regressions

TEST(OracleRegression, LyingOverheadBoundIsCaught) {
  Heap H;
  EventLog Log;
  oracle_regressions::LyingBoundAllocator MM(H);
  ObjectId A = MM.allocate(8);
  MM.allocate(8);
  MM.allocate(8);
  MM.free(A); // triggers a backfill move the declared bound forbids
  ASSERT_GT(H.stats().MovedWords, 0u);
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_GT(Oracle.checkStep(1, Out), 0u);
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.front().Check, "overhead-ratio");
}

TEST(OracleRegression, UnchargedMoveFailsLedgerReconcile) {
  Heap H;
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  oracle_regressions::RogueMoveManager MM(H);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(8);
  MM.free(A);
  ASSERT_TRUE(MM.rogueMove(B, 0)); // moved, but the ledger never saw it
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_GT(Oracle.checkDeep(1, Out), 0u);
  bool SawReconcile = false;
  for (const Violation &V : Out)
    SawReconcile |= V.Check == "ledger-reconcile";
  EXPECT_TRUE(SawReconcile);
}

TEST(OracleRegression, BreachedPrefixFailsOverheadHistory) {
  Heap H;
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  oracle_regressions::BrokenHistoryManager MM(H);
  MM.allocate(8);
  MM.RL.noteAllocation(8);
  MM.RL.chargeMove(40); // prefix ratio 5 against bound 1
  MM.RL.noteAllocation(992);
  EXPECT_LT(MM.RL.overheadRatio(), 1.0); // the endpoint looks innocent
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_GT(Oracle.checkDeep(1, Out), 0u);
  bool SawHistory = false;
  for (const Violation &V : Out)
    SawHistory |= V.Check == "overhead-history";
  EXPECT_TRUE(SawHistory);
}

// --- UpdateProgram ---------------------------------------------------------

TEST(UpdateProgram, FactoryRoundTripsEveryShape) {
  for (const std::string &Name : updateProgramNames()) {
    auto Prog = createProgram(Name, pow2(12), 6, 50.0);
    ASSERT_NE(Prog, nullptr) << Name;
    EXPECT_EQ(Prog->name(), Name);
  }
  EXPECT_EQ(updateProgramNames().size(), 5u);
}

TEST(UpdateProgram, UpdateModelDoesNotFreeOnMove) {
  // The update model charges the algorithm for moves; the adversary only
  // chooses the update sequence. A PF-style reactive free would change
  // the problem, so the notification must decline.
  UpdateProgram::Options O;
  UpdateProgram P(pow2(12), O);
  EXPECT_FALSE(P.onObjectMoved(0, 0, 64));
}

TEST(UpdateProgram, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Heap H;
    auto MM = createManager("realloc-jin", H, 50.0);
    auto Prog = createProgram("update-mix", pow2(12), 6, 50.0);
    Execution E(*MM, *Prog, pow2(12));
    return E.run();
  };
  ExecutionResult A = runOnce();
  ExecutionResult B = runOnce();
  EXPECT_EQ(A.HeapSize, B.HeapSize);
  EXPECT_EQ(A.TotalAllocatedWords, B.TotalAllocatedWords);
  EXPECT_EQ(A.MovedWords, B.MovedWords);
  EXPECT_EQ(A.NumAllocations, B.NumAllocations);
  EXPECT_EQ(A.NumFrees, B.NumFrees);
  EXPECT_EQ(A.Steps, B.Steps);
}

TEST(UpdateProgram, FillDrainIsASawtooth) {
  Heap H;
  uint64_t M = pow2(12);
  NeverMoveAllocator MM(H);
  auto Prog = createProgram("update-fill-drain", M, 8, 50.0);
  ASSERT_NE(Prog, nullptr);
  Execution E(MM, *Prog, M);
  uint64_t Target = uint64_t(double(M) * 0.85);
  bool ReachedTarget = false, DrainedAfter = false;
  E.addStepObserver([&](const Execution &Ex) {
    uint64_t Live = Ex.heap().stats().LiveWords;
    ReachedTarget |= Live >= Target;
    DrainedAfter |= ReachedTarget && Live == 0;
  });
  ExecutionResult Res = E.run();
  EXPECT_TRUE(ReachedTarget); // filled to the occupancy target...
  EXPECT_TRUE(DrainedAfter);  // ...then drained all the way down
  EXPECT_EQ(Res.Steps, 96u);
}

TEST(UpdateProgram, AlternatingStaircaseFragmentsNonMovers) {
  Heap H;
  uint64_t M = pow2(12);
  NeverMoveAllocator MM(H);
  auto Prog = createProgram("update-alternating", M, 8, 50.0);
  Execution E(MM, *Prog, M);
  ExecutionResult Res = E.run();
  // Each round frees the lowest object and demands one word more than
  // the hole holds: without movement the footprint must creep past the
  // peak live volume.
  EXPECT_GT(Res.HeapSize, Res.PeakLiveWords);
  EXPECT_GT(Res.TotalAllocatedWords, Res.NumAllocations); // growing sizes
}

TEST(UpdateProgram, CombChurnsEverySizeClass) {
  Heap H;
  uint64_t M = pow2(12);
  CostObliviousAllocator MM(H);
  auto Prog = createProgram("update-comb", M, 6, 50.0);
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  Execution E(MM, *Prog, M);
  E.run();
  // The comb doubles its tooth size each phase: the trace must contain
  // allocations in several distinct size classes.
  std::set<uint64_t> Sizes;
  for (const HeapEvent &Ev : Log.events())
    if (Ev.Event == HeapEvent::Kind::Alloc)
      Sizes.insert(Ev.Size);
  EXPECT_GE(Sizes.size(), 4u);
  EXPECT_TRUE(MM.reallocationLedger()->holds());
}

// --- Golden worst-overhead reproducer --------------------------------------

struct WorstOverhead {
  std::string Program;
  double MaxPrefix = 0.0;
  EventLog Log;
};

// Runs every update shape through the Jin-style repacker and returns the
// shape with the worst prefix overhead ratio, with its recorded trace.
WorstOverhead findWorstOverhead() {
  WorstOverhead Worst;
  uint64_t M = pow2(11);
  for (const std::string &Name : updateProgramNames()) {
    Heap H;
    TightSpanAllocator MM(H);
    EventLog Log;
    Execution::Options EO;
    EO.Log = &Log;
    auto Prog = createProgram(Name, M, 6, 50.0);
    Execution E(MM, *Prog, M, EO);
    E.run();
    double Prefix = MM.reallocationLedger()->maxPrefixRatio();
    if (Prefix > Worst.MaxPrefix) {
      Worst.Program = Name;
      Worst.MaxPrefix = Prefix;
      Worst.Log = std::move(Log);
    }
  }
  return Worst;
}

TEST(GoldenWorstOverhead, SomeShapeApproachesTheBound) {
  WorstOverhead Worst = findWorstOverhead();
  // The adversary family earns its keep: at least one shape drives the
  // repacker past half of its amortization headroom...
  EXPECT_GE(Worst.MaxPrefix, 1.0) << Worst.Program;
  // ...but the enforced bound is never crossed.
  EXPECT_LE(Worst.MaxPrefix, 2.0 + 1e-9) << Worst.Program;

  // Regenerate the committed golden reproducer with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./realloc_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream OS(std::string(Dir) + "/worst-overhead-jin.trace");
    ASSERT_TRUE(OS.good());
    OS << "# worst-overhead reproducer: " << Worst.Program
       << " through realloc-jin, worst prefix ratio " << Worst.MaxPrefix
       << "\n";
    writeEventLog(OS, Worst.Log);
  }
}

// The committed reproducer: replaying its update sequence through a
// fresh Jin-style repacker must keep producing a near-bound worst
// prefix, forever — the adversary's sting is part of the contract.
TEST(GoldenWorstOverhead, CommittedReproducerStillStings) {
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) +
                   "/worst-overhead-jin.trace");
  ASSERT_TRUE(IS.good()) << "missing golden worst-overhead reproducer";
  EventLog Log;
  std::string Error;
  ASSERT_TRUE(readEventLog(IS, Log, &Error)) << Error;
  std::vector<TraceOp> Trace = Log.toTrace();
  ASSERT_FALSE(Trace.empty());

  Heap H;
  TightSpanAllocator MM(H);
  TraceReplayProgram P(Trace);
  Execution E(MM, P, tracePeakLiveWords(Trace));
  E.run();
  const ReallocationLedger *RL = MM.reallocationLedger();
  EXPECT_GE(RL->maxPrefixRatio(), 1.0)
      << "the committed trace no longer stresses the repacker";
  EXPECT_LE(RL->maxPrefixRatio(), 2.0 + 1e-9);
  EXPECT_TRUE(RL->holds());
}

} // namespace
