//===- tests/fuzz_test.cpp - Differential fuzzing subsystem --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Three layers of confidence in the fuzzer itself:
//
//   1. The generator is deterministic and its schedules (and every
//      subset of them) lower to valid traces.
//   2. Fixed-seed differential runs — every pattern, every manager
//      policy, thousands of ops — report zero violations.
//   3. The planted-bug experiment: corrupting the event stream through
//      the harness's fault-injection tap IS caught by the oracle, the
//      failure shrinks to a handful of ops, and the written reproducer
//      round-trips through TraceIO with the corruption intact. A golden
//      minimal reproducer is committed and re-checked here.
//
//===----------------------------------------------------------------------===//

#include "adversary/SyntheticWorkloads.h"
#include "driver/Auditors.h"
#include "driver/Execution.h"
#include "driver/TraceIO.h"
#include "fuzz/DifferentialHarness.h"
#include "fuzz/HeapParityChecker.h"
#include "fuzz/InvariantOracle.h"
#include "fuzz/WorkloadFuzzer.h"
#include "mm/ManagerFactory.h"
#include "mm/MeshingCompactor.h"
#include "mm/SequentialFitManagers.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace pcb;

namespace {

WorkloadFuzzer::Options baseOptions(uint64_t Seed,
                                    WorkloadFuzzer::Pattern P) {
  WorkloadFuzzer::Options O;
  O.Seed = Seed;
  O.NumOps = 768;
  O.LiveBound = pow2(12);
  O.MaxLogSize = 8;
  O.P = P;
  return O;
}

// --- Generator properties --------------------------------------------------

TEST(WorkloadFuzzer, GeneratesValidTracesForEveryPattern) {
  for (WorkloadFuzzer::Pattern P : WorkloadFuzzer::allPatterns()) {
    FuzzSchedule S = WorkloadFuzzer(baseOptions(11, P)).generate();
    EXPECT_EQ(S.Pattern, WorkloadFuzzer::patternName(P));
    EXPECT_GT(S.size(), 0u) << S.Pattern;
    std::string Why;
    EXPECT_TRUE(validateTrace(S.materialize(), &Why))
        << S.Pattern << ": " << Why;
  }
}

TEST(WorkloadFuzzer, GenerationIsDeterministic) {
  WorkloadFuzzer::Options O = baseOptions(42, WorkloadFuzzer::Pattern::Mixed);
  std::vector<TraceOp> A = WorkloadFuzzer(O).generate().materialize();
  std::vector<TraceOp> B = WorkloadFuzzer(O).generate().materialize();
  EXPECT_EQ(A, B);
}

TEST(WorkloadFuzzer, DistinctSeedsGiveDistinctSchedules) {
  WorkloadFuzzer::Options O1 = baseOptions(1, WorkloadFuzzer::Pattern::Uniform);
  WorkloadFuzzer::Options O2 = baseOptions(2, WorkloadFuzzer::Pattern::Uniform);
  EXPECT_NE(WorkloadFuzzer(O1).generate().materialize(),
            WorkloadFuzzer(O2).generate().materialize());
}

TEST(WorkloadFuzzer, RespectsLiveBound) {
  for (uint64_t Seed : {3u, 4u, 5u}) {
    WorkloadFuzzer::Options O = baseOptions(Seed, WorkloadFuzzer::Pattern::Mixed);
    FuzzSchedule S = WorkloadFuzzer(O).generate();
    EXPECT_LE(tracePeakLiveWords(S.materialize()), O.LiveBound);
  }
}

// The closure property delta debugging relies on: ANY subset of a
// schedule is still a well-formed schedule.
TEST(WorkloadFuzzer, EverySubsetMaterializesToAValidTrace) {
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(7, WorkloadFuzzer::Pattern::Mixed)).generate();
  Rng R(99);
  for (int Trial = 0; Trial < 8; ++Trial) {
    std::vector<bool> Keep(S.size());
    for (size_t I = 0; I < S.size(); ++I)
      Keep[I] = R.nextBool(0.5);
    std::string Why;
    EXPECT_TRUE(validateTrace(S.materialize(&Keep), &Why)) << Why;
    FuzzSchedule Sub = S.subset(Keep);
    EXPECT_TRUE(validateTrace(Sub.materialize(), &Why)) << Why;
  }
}

TEST(WorkloadFuzzer, SubsetMatchesMaterializeWithKeepMask) {
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(8, WorkloadFuzzer::Pattern::QueueFifo))
          .generate();
  std::vector<bool> Keep(S.size());
  for (size_t I = 0; I < S.size(); ++I)
    Keep[I] = (I % 3) != 0;
  EXPECT_EQ(S.materialize(&Keep), S.subset(Keep).materialize());
}

TEST(WorkloadFuzzer, ScheduleFromTraceRoundTrips) {
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(9, WorkloadFuzzer::Pattern::StackLifo))
          .generate();
  std::vector<TraceOp> Trace = S.materialize();
  FuzzSchedule Back = scheduleFromTrace(Trace, S.Seed, S.Pattern);
  EXPECT_EQ(Back.materialize(), Trace);
}

// --- Fixed-seed differential runs ------------------------------------------

// Every pattern through every factory policy; with 8 patterns at ~768 ops
// each this sweeps >5000 operations per run of the suite. Any violation
// prints the oracle's full diagnosis.
TEST(DifferentialHarness, FixedSeedsAllPoliciesClean) {
  DifferentialHarness Harness; // default options: all policies
  ASSERT_EQ(Harness.options().Policies.size(),
            allManagerPolicies().size());
  uint64_t TotalOps = 0;
  const std::vector<WorkloadFuzzer::Pattern> &Patterns =
      WorkloadFuzzer::allPatterns();
  for (size_t I = 0; I < Patterns.size(); ++I) {
    WorkloadFuzzer::Options O =
        baseOptions(splitSeed(0x5eed, I), Patterns[I]);
    FuzzSchedule S = WorkloadFuzzer(O).generate();
    TotalOps += S.size();
    DifferentialReport Report = Harness.run(S);
    EXPECT_TRUE(Report.clean())
        << "pattern " << S.Pattern << ":\n" << Report.summary();
  }
  EXPECT_GE(TotalOps, 5000u);
}

// A second quota regime: tight budgets (c=200) stress the ledger and the
// budget-history auditor harder than the default c=50.
TEST(DifferentialHarness, TightQuotaClean) {
  DifferentialHarness::Options HO;
  HO.C = 200.0;
  HO.DeepCheckEvery = 32;
  DifferentialHarness Harness(HO);
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(0xbeef, WorkloadFuzzer::Pattern::Comb))
          .generate();
  DifferentialReport Report = Harness.run(S);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(DifferentialHarness, ReportsOneRunPerPolicy) {
  DifferentialHarness Harness;
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(21, WorkloadFuzzer::Pattern::Bimodal))
          .generate();
  DifferentialReport Report = Harness.run(S);
  ASSERT_EQ(Report.Runs.size(), allManagerPolicies().size());
  for (const PolicyRunResult &R : Report.Runs) {
    EXPECT_GT(R.Log.size(), 0u) << R.Policy;
    EXPECT_GT(R.Stats.NumAllocations, 0u) << R.Policy;
  }
  // Program behaviour is manager-independent: spot-check the invariant
  // the cross-policy comparison enforces.
  for (const PolicyRunResult &R : Report.Runs) {
    EXPECT_EQ(R.Stats.TotalAllocatedWords,
              Report.Runs.front().Stats.TotalAllocatedWords)
        << R.Policy;
    EXPECT_EQ(R.Stats.NumFrees, Report.Runs.front().Stats.NumFrees)
        << R.Policy;
  }
}

// --- The oracle in isolation -----------------------------------------------

TEST(InvariantOracle, CleanHeapPassesDeepCheck) {
  Heap H;
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  FirstFitManager MM(H, 50.0);
  ASSERT_NE(MM.allocate(8), InvalidObjectId);
  ASSERT_NE(MM.allocate(4), InvalidObjectId);
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_EQ(Oracle.checkDeep(1, Out), 0u);
  EXPECT_TRUE(Out.empty());
}

TEST(InvariantOracle, CatchesForeignEventInLog) {
  Heap H;
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  FirstFitManager MM(H, 50.0);
  ASSERT_NE(MM.allocate(8), InvalidObjectId);
  // A free of an object that never existed: the event stream no longer
  // describes the heap.
  Log.record(HeapEvent::release(99, 0, 8));
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_GT(Oracle.checkDeep(1, Out), 0u);
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.front().Check, "event-stream");
  EXPECT_NE(Out.front().describe().find("event-stream"), std::string::npos);
}

TEST(InvariantOracle, CatchesDroppedEventInLog) {
  Heap H;
  EventLog Log;
  bool Drop = false;
  H.setEventCallback([&](const HeapEvent &E) {
    if (!Drop)
      Log.record(E);
  });
  FirstFitManager MM(H, 50.0);
  ASSERT_NE(MM.allocate(8), InvalidObjectId);
  Drop = true; // this allocation never reaches the log
  ASSERT_NE(MM.allocate(4), InvalidObjectId);
  InvariantOracle Oracle(H, MM, Log);
  std::vector<Violation> Out;
  EXPECT_GT(Oracle.checkDeep(1, Out), 0u);
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.front().Check, "audit-mismatch");
}

// --- The heap-parity checker -----------------------------------------------

TEST(HeapParity, CleanMirrorStaysClean) {
  Heap H;
  HeapParityChecker Parity(H);
  H.setEventCallback([&](const HeapEvent &E) { Parity.observe(E); });
  FirstFitManager MM(H, 50.0);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(4);
  ASSERT_NE(A, InvalidObjectId);
  MM.free(A);
  ASSERT_NE(MM.allocate(16), InvalidObjectId);
  (void)B;
  std::vector<Violation> Out;
  Parity.checkStep("first-fit", 1, Out);
  EXPECT_TRUE(Out.empty()) << Out.front().describe();
}

TEST(HeapParity, CatchesDivergentMirror) {
  Heap H;
  HeapParityChecker Parity(H);
  bool Mirror = true;
  H.setEventCallback([&](const HeapEvent &E) {
    if (Mirror)
      Parity.observe(E);
  });
  FirstFitManager MM(H, 50.0);
  ASSERT_NE(MM.allocate(8), InvalidObjectId);
  Mirror = false; // the mirror misses this allocation: heaps diverge
  ASSERT_NE(MM.allocate(4), InvalidObjectId);
  std::vector<Violation> Out;
  Parity.checkStep("first-fit", 1, Out);
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.front().Check, "heap-parity");
  EXPECT_EQ(Out.front().Policy, "first-fit");
}

TEST(HeapParity, CatchesObjectTableDivergence) {
  // A phantom allocate+free pair leaves the mirror's free space exactly
  // where it started — the old free-index-only checker was blind to
  // this; the object table and allocation counters give it away.
  Heap H;
  HeapParityChecker Parity(H);
  H.setEventCallback([&](const HeapEvent &E) { Parity.observe(E); });
  FirstFitManager MM(H, 50.0);
  ASSERT_NE(MM.allocate(8), InvalidObjectId);
  H.setEventCallback({});
  ObjectId Phantom = ObjectId(H.numObjects());
  Parity.observe(HeapEvent::alloc(Phantom, /*A=*/100, /*Size=*/4));
  Parity.observe(HeapEvent::release(Phantom, /*A=*/100, /*Size=*/4));
  std::vector<Violation> Out;
  Parity.checkStep("first-fit", 1, Out);
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.front().Check, "heap-parity");
}

// --- The planted-bug experiment --------------------------------------------

DifferentialHarness::Options plantedBugOptions() {
  DifferentialHarness::Options HO;
  // One policy keeps the experiment fast; the corruption is in the
  // logging layer, which every policy shares.
  HO.Policies = {"first-fit"};
  // Corrupt the recorded size of every multi-word free. The heap itself
  // is untouched — only the log lies — which is exactly the class of
  // bookkeeping bug the audit-replay oracle exists to catch.
  HO.LogTap = [](HeapEvent &E) {
    if (E.Event == HeapEvent::Kind::Free && E.Size > 1)
      E.Size -= 1;
    return true;
  };
  return HO;
}

TEST(PlantedBug, OracleCatchesCorruptedEventStream) {
  DifferentialHarness Harness(plantedBugOptions());
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(123, WorkloadFuzzer::Pattern::Uniform))
          .generate();
  DifferentialReport Report = Harness.run(S);
  ASSERT_FALSE(Report.clean());
  bool SawEventStream = false;
  for (const Violation &V : Report.allViolations())
    SawEventStream |= V.Check == "event-stream";
  EXPECT_TRUE(SawEventStream) << Report.summary();
  // The corruption lives in the logging layer only; the heap-parity
  // mirror watches the real heap and must not be fooled by it.
  for (const Violation &V : Report.allViolations())
    EXPECT_NE(V.Check, "heap-parity") << V.describe();
}

TEST(PlantedBug, ShrinksToAFewOpsAndWritesAReplayableReproducer) {
  DifferentialHarness Harness(plantedBugOptions());
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(123, WorkloadFuzzer::Pattern::Uniform))
          .generate();
  ASSERT_FALSE(Harness.run(S).clean());

  FuzzSchedule Minimal = Harness.shrink(S);
  EXPECT_LE(Minimal.size(), 20u)
      << "shrinking left " << Minimal.size() << " of " << S.size() << " ops";
  EXPECT_LT(Minimal.size(), S.size());

  DifferentialReport Report = Harness.run(Minimal);
  ASSERT_FALSE(Report.clean());
  const PolicyRunResult *Failing = Report.firstFailing();
  ASSERT_NE(Failing, nullptr);

  std::stringstream Repro;
  DifferentialHarness::writeReproducer(Repro, Minimal, *Failing);
  std::string Text = Repro.str();
  EXPECT_NE(Text.find("# pcbound-fuzz-repro"), std::string::npos);
  EXPECT_NE(Text.find("policy=first-fit"), std::string::npos);

  // The reproducer round-trips through TraceIO, and the corruption is
  // still visible to a fresh auditor — no harness state required.
  EventLog Log;
  std::istringstream IS(Text);
  std::string Error;
  ASSERT_TRUE(readEventLog(IS, Log, &Error)) << Error;
  EXPECT_FALSE(auditEvents(Log.events()).Consistent);

  // Regenerate the committed golden reproducer with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./fuzz_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream OS(std::string(Dir) + "/planted-free-corruption.trace");
    ASSERT_TRUE(OS.good());
    DifferentialHarness::writeReproducer(OS, Minimal, *Failing);
  }
}

// The committed minimal reproducer from the experiment above: reading it
// back must still reproduce the detection, forever.
TEST(PlantedBug, GoldenReproducerStillDetects) {
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) +
                   "/planted-free-corruption.trace");
  ASSERT_TRUE(IS.good()) << "missing golden reproducer";
  EventLog Log;
  std::string Error;
  ASSERT_TRUE(readEventLog(IS, Log, &Error)) << Error;
  EXPECT_LE(Log.toTrace().size(), 20u);
  EXPECT_FALSE(auditEvents(Log.events()).Consistent)
      << "the corrupted event stream went undetected";
}

// --- Golden chunk merge -----------------------------------------------------

/// A hand-crafted schedule that forces the meshing compactor to merge a
/// chunk pair: two 64-word chunks of 8-word slots whose frees interleave
/// (chunk 0 keeps the even slots, chunk 1 the odd ones), leaving disjoint
/// occupancies and no hole bigger than 16 words. The final 24-word
/// request cannot fit without a merge — and at C = 4 the budget
/// (floor(128/4) = 32) covers the 32 surviving source words exactly.
FuzzSchedule chunkMergeSchedule() {
  FuzzSchedule S;
  S.Seed = 0;
  S.Pattern = "crafted-chunk-merge";
  for (int I = 0; I != 16; ++I)
    S.Ops.push_back(FuzzOp::alloc(8));
  for (size_t P = 1; P < 8; P += 2)
    S.Ops.push_back(FuzzOp::release(P));
  for (size_t P = 8; P < 16; P += 2)
    S.Ops.push_back(FuzzOp::release(P));
  S.Ops.push_back(FuzzOp::alloc(24));
  return S;
}

TEST(GoldenChunkMerge, CraftedScheduleMeshesCleanly) {
  DifferentialHarness::Options O;
  O.C = 4.0;
  O.Policies = {"first-fit", "meshing"};
  DifferentialHarness Harness(O);
  FuzzSchedule S = chunkMergeSchedule();
  DifferentialReport Report = Harness.run(S);
  EXPECT_TRUE(Report.clean()) << Report.summary();

  // The differential run proves agreement; a direct replay proves the
  // schedule exercises what it was crafted for — an actual merge.
  std::vector<TraceOp> Trace = S.materialize();
  Heap H;
  MeshingCompactor MM(H, 4.0);
  TraceReplayProgram P(Trace);
  Execution E(MM, P, tracePeakLiveWords(Trace));
  ExecutionResult R = E.run();
  EXPECT_GE(MM.numMerges(), 1u);
  EXPECT_EQ(R.MovedWords, 32u) << "one merge: the source chunk popcount";
  EXPECT_EQ(R.HeapSize, 128u) << "the merge kept the final alloc below HWM";

  // Regenerate the committed golden reproducer with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./fuzz_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    const PolicyRunResult *Meshing = nullptr;
    for (const PolicyRunResult &Run : Report.Runs)
      if (Run.Policy == "meshing")
        Meshing = &Run;
    ASSERT_NE(Meshing, nullptr);
    std::ofstream OS(std::string(Dir) + "/chunk-merge-meshing.trace");
    ASSERT_TRUE(OS.good());
    DifferentialHarness::writeReproducer(OS, S, *Meshing);
  }
}

// The committed merge reproducer: reading it back must still drive the
// meshing compactor into a merge, and the full policy gauntlet must stay
// clean on it.
TEST(GoldenChunkMerge, CommittedReproducerStillMerges) {
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) +
                   "/chunk-merge-meshing.trace");
  ASSERT_TRUE(IS.good()) << "missing golden chunk-merge reproducer";
  EventLog Log;
  std::string Error;
  ASSERT_TRUE(readEventLog(IS, Log, &Error)) << Error;
  std::vector<TraceOp> Trace = Log.toTrace();

  Heap H;
  MeshingCompactor MM(H, 4.0);
  TraceReplayProgram P(Trace);
  Execution E(MM, P, tracePeakLiveWords(Trace));
  ExecutionResult R = E.run();
  EXPECT_GE(MM.numMerges(), 1u) << "the committed trace no longer merges";
  EXPECT_EQ(R.MovedWords, 32u);

  DifferentialHarness::Options O;
  O.C = 4.0; // default policies: the whole factory family
  DifferentialReport Report = DifferentialHarness(O).run(
      scheduleFromTrace(Trace, 0, "crafted-chunk-merge"));
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

// Shrinking with a custom predicate: minimize to "at least 3 allocs"
// (a monotone-ish property with a known-size minimum).
TEST(Shrink, CustomPredicateFindsMinimum) {
  DifferentialHarness Harness;
  FuzzSchedule S =
      WorkloadFuzzer(baseOptions(55, WorkloadFuzzer::Pattern::Mixed))
          .generate();
  auto AtLeast3Allocs = [](const FuzzSchedule &Cand) {
    size_t Allocs = 0;
    for (const FuzzOp &Op : Cand.Ops)
      Allocs += Op.Op == FuzzOp::Kind::Alloc;
    return Allocs >= 3;
  };
  ASSERT_TRUE(AtLeast3Allocs(S));
  FuzzSchedule Minimal = Harness.shrink(S, AtLeast3Allocs);
  EXPECT_EQ(Minimal.size(), 3u);
  // The size-halving phase drives every surviving allocation to 1 word.
  for (const FuzzOp &Op : Minimal.Ops)
    EXPECT_EQ(Op.Size, 1u);
}

} // namespace
