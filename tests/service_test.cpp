//===- tests/service_test.cpp - Fleet service-layer gauntlet -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The service layer's conformance gauntlet: the fleet report must be
// byte-identical across thread counts and slice sizes (the determinism
// contract work-stealing rests on), session schedules must be pure
// functions of (fleet seed, global id), the edge configurations (empty
// fleet, one arena, ragged striping, batch-size boundaries) must drain
// cleanly, and a fault planted in one arena's event stream via the
// LogTap port must be detected and attributed to that arena alone —
// sibling shards' stats, masks, ledgers, and timelines stay untouched.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceFleet.h"

#include "heap/Metrics.h"
#include "service/SessionWorkload.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace pcb;

namespace {

/// The small audited fleet most tests run: big enough to exercise
/// admission churn, multiple flush boundaries, and the oracle's deep
/// checks; small enough to stay milliseconds.
FleetOptions smallFleet() {
  FleetOptions FO;
  FO.NumArenas = 3;
  FO.NumSessions = 48;
  FO.Threads = 1;
  FO.SliceFlushes = 4;
  FO.Shard.Policy = "evacuating";
  FO.Shard.C = 50.0;
  FO.Shard.BatchSize = 8;
  FO.Shard.MaxResident = 4;
  FO.Shard.SampleEverySessions = 4;
  FO.Shard.Audit = true;
  FO.Shard.DeepCheckEvery = 8;
  FO.Shard.Session.FleetSeed = 7;
  FO.Shard.Session.TargetOps = 32;
  FO.Shard.Session.LiveBound = 256;
  FO.Shard.Session.MaxLogSize = 5;
  return FO;
}

/// Runs a fleet and renders both report forms, concatenated — the byte
/// string the determinism tests compare.
std::string runAndRender(const FleetOptions &FO) {
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  std::ostringstream OS;
  R.printText(OS);
  R.printJson(OS);
  R.FleetTimeline.printCsv(OS);
  return OS.str();
}

/// Everything deterministic about one drained shard, as a comparable
/// byte string (stats, masks, ledger, violations, timeline).
std::string shardFingerprint(const ArenaShard &S) {
  std::ostringstream OS;
  const HeapStats &St = S.heap().stats();
  OS << "retired=" << S.sessionsRetired() << " flushes=" << S.flushes()
     << " ops=" << S.opsApplied() << " hs=" << St.HighWaterMark
     << " live=" << St.LiveWords << " alloc=" << St.TotalAllocatedWords
     << " moved=" << St.MovedWords << " allocs=" << St.NumAllocations
     << " frees=" << St.NumFrees << " moves=" << St.NumMoves
     << " occ=" << S.heap().occupancyMask(64)
     << " starts=" << S.heap().objectStartMask(64);
  const CompactionLedger &L = S.manager().ledger();
  OS << " budget=" << (L.isUnlimited() ? 0 : L.budgetWords());
  OS << " violations=" << S.violations().size();
  for (const Violation &V : S.violations())
    OS << " [" << V.describe() << "]";
  OS << "\n";
  S.timeline().printCsv(OS);
  return OS.str();
}

// --- Session workload purity ---------------------------------------------

TEST(SessionWorkload, SeedSplitsIndependentlyOfOrder) {
  // splitSeed discipline: a session's seed depends only on (fleet seed,
  // global id), and distinct ids get distinct streams.
  EXPECT_EQ(sessionSeed(7, 41), sessionSeed(7, 41));
  EXPECT_NE(sessionSeed(7, 41), sessionSeed(7, 42));
  EXPECT_NE(sessionSeed(7, 41), sessionSeed(8, 41));
}

TEST(SessionWorkload, PatternCyclesThroughDirectFamilies) {
  // Five direct patterns, cycled by id: ids 0 and 5 share one, 0..4 are
  // all distinct.
  EXPECT_EQ(sessionPattern(0), sessionPattern(5));
  for (uint64_t A = 0; A != 5; ++A)
    for (uint64_t B = A + 1; B != 5; ++B)
      EXPECT_NE(sessionPattern(A), sessionPattern(B))
          << "ids " << A << " and " << B;
}

TEST(SessionWorkload, TraceIsStableUnderGenerationOrderPermutation) {
  SessionParams P;
  P.FleetSeed = 7;
  P.TargetOps = 24;
  P.LiveBound = 128;
  P.MaxLogSize = 4;
  // Materialize ids forward, then backward; each id's trace must be
  // byte-identical — generation holds no hidden cross-session state.
  std::vector<std::vector<TraceOp>> Forward, Backward(10);
  for (uint64_t Id = 0; Id != 10; ++Id)
    Forward.push_back(generateSessionTrace(P, Id));
  for (uint64_t Id = 10; Id-- != 0;)
    Backward[size_t(Id)] = generateSessionTrace(P, Id);
  for (uint64_t Id = 0; Id != 10; ++Id) {
    ASSERT_EQ(Forward[size_t(Id)].size(), Backward[size_t(Id)].size());
    for (size_t I = 0; I != Forward[size_t(Id)].size(); ++I) {
      EXPECT_EQ(Forward[size_t(Id)][I].Op, Backward[size_t(Id)][I].Op);
      EXPECT_EQ(Forward[size_t(Id)][I].Value, Backward[size_t(Id)][I].Value);
    }
  }
}

TEST(SessionWorkload, TeardownFreesEveryAllocation) {
  SessionParams P;
  P.FleetSeed = 3;
  P.TargetOps = 40;
  for (uint64_t Id = 0; Id != 8; ++Id) {
    std::vector<TraceOp> Ops = generateSessionTrace(P, Id);
    uint64_t Allocs = 0, Frees = 0;
    for (const TraceOp &Op : Ops)
      (Op.Op == TraceOp::Kind::Alloc ? Allocs : Frees) += 1;
    EXPECT_EQ(Allocs, Frees) << "session " << Id
                             << " retires with live objects";
  }
}

// --- Determinism across threads and slices -------------------------------

TEST(ServiceFleet, ReportByteIdenticalAtThreads1248) {
  FleetOptions FO = smallFleet();
  FO.Threads = 1;
  std::string Reference = runAndRender(FO);
  for (unsigned Threads : {2u, 4u, 8u}) {
    FleetOptions Parallel = FO;
    Parallel.Threads = Threads;
    EXPECT_EQ(Reference, runAndRender(Parallel))
        << "report diverged at threads=" << Threads;
  }
}

TEST(ServiceFleet, ReportByteIdenticalAcrossSliceSizes) {
  // The scheduler quantum bounds progress per acquisition, nothing else:
  // single-flush slices and one giant slice must render identically.
  FleetOptions FO = smallFleet();
  FO.SliceFlushes = 1;
  std::string Fine = runAndRender(FO);
  FO.SliceFlushes = 1 << 20;
  EXPECT_EQ(Fine, runAndRender(FO));
  FO.SliceFlushes = 3;
  FO.Threads = 4;
  EXPECT_EQ(Fine, runAndRender(FO));
}

TEST(ServiceFleet, ShardExecutionIndependentOfSliceSchedule) {
  // Drive two identical shards: one a flush at a time, one in a single
  // slice. Every deterministic observable must match.
  ShardConfig Cfg = smallFleet().Shard;
  ArenaShard Fine(/*ArenaId=*/0, /*NumSessions=*/16, /*FirstGlobalId=*/0,
                  /*GlobalStride=*/1, Cfg);
  ArenaShard Coarse(0, 16, 0, 1, Cfg);
  while (!Fine.runSlice(1)) {
  }
  EXPECT_TRUE(Coarse.runSlice(1 << 20));
  EXPECT_EQ(shardFingerprint(Fine), shardFingerprint(Coarse));
}

// --- Edge configurations -------------------------------------------------

TEST(ServiceFleet, EmptyFleetDrainsClean) {
  FleetOptions FO = smallFleet();
  FO.NumSessions = 0;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.TotalSessions, 0u);
  EXPECT_EQ(R.TotalOpsApplied, 0u);
  EXPECT_EQ(R.TotalFootprintWords, 0u);
  EXPECT_EQ(R.Arenas.size(), 3u);
}

TEST(ServiceFleet, SingleArenaServesEverySession) {
  FleetOptions FO = smallFleet();
  FO.NumArenas = 1;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_TRUE(R.clean());
  ASSERT_EQ(R.Arenas.size(), 1u);
  EXPECT_EQ(R.Arenas[0].Sessions, FO.NumSessions);
  EXPECT_EQ(R.TotalSessions, FO.NumSessions);
}

TEST(ServiceFleet, RaggedStripingAssignsEverySessionExactlyOnce) {
  // 10 sessions over 4 arenas: counts 3,3,2,2 in arena order, totals 10.
  FleetOptions FO = smallFleet();
  FO.NumArenas = 4;
  FO.NumSessions = 10;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  ASSERT_EQ(R.Arenas.size(), 4u);
  EXPECT_EQ(R.Arenas[0].Sessions, 3u);
  EXPECT_EQ(R.Arenas[1].Sessions, 3u);
  EXPECT_EQ(R.Arenas[2].Sessions, 2u);
  EXPECT_EQ(R.Arenas[3].Sessions, 2u);
  EXPECT_EQ(R.TotalSessions, 10u);
  EXPECT_TRUE(R.clean());
}

TEST(ServiceFleet, MoreArenasThanSessionsLeavesIdleShards) {
  FleetOptions FO = smallFleet();
  FO.NumArenas = 8;
  FO.NumSessions = 3;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_EQ(R.TotalSessions, 3u);
  for (unsigned A = 3; A != 8; ++A) {
    EXPECT_EQ(R.Arenas[A].Sessions, 0u);
    EXPECT_EQ(R.Arenas[A].Stats.HighWaterMark, 0u);
  }
  EXPECT_TRUE(R.clean());
}

// --- Batch-size boundaries -----------------------------------------------

/// Total ops of every session assigned to a (1-arena) fleet.
uint64_t totalTraceOps(const FleetOptions &FO) {
  uint64_t Total = 0;
  for (uint64_t Id = 0; Id != FO.NumSessions; ++Id)
    Total += generateSessionTrace(FO.Shard.Session, Id).size();
  return Total;
}

TEST(ServiceFleet, BatchSizeOneFlushesEveryRequestAlone) {
  FleetOptions FO = smallFleet();
  FO.NumArenas = 1;
  FO.NumSessions = 6;
  FO.Shard.BatchSize = 1;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_TRUE(R.clean());
  // One op per flush, so the two counters coincide exactly.
  EXPECT_EQ(R.TotalFlushes, R.TotalOpsApplied);
  EXPECT_EQ(R.TotalOpsApplied, totalTraceOps(FO));
  EXPECT_EQ(R.TotalLiveWords, 0u) << "teardown must free everything";
}

TEST(ServiceFleet, BatchLargerThanSessionLengthStarvationFlushes) {
  // Batch far above what the residents can ever queue: every flush is a
  // starvation flush, and the arena must still drain completely.
  FleetOptions FO = smallFleet();
  FO.NumArenas = 1;
  FO.NumSessions = 5;
  FO.Shard.BatchSize = 1 << 20;
  FO.Shard.MaxResident = 2;
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.TotalSessions, 5u);
  EXPECT_EQ(R.TotalOpsApplied, totalTraceOps(FO));
  EXPECT_EQ(R.TotalLiveWords, 0u);
  // Each flush drains everything the residents hold, so there are far
  // fewer flushes than ops.
  EXPECT_LT(R.TotalFlushes, R.TotalOpsApplied);
}

TEST(ServiceFleet, FinalPartialBatchFlushesOnDrain) {
  // A batch size that does not divide the total op count: the last,
  // short batch must still be applied (drain flush), not dropped.
  FleetOptions FO = smallFleet();
  FO.NumArenas = 1;
  FO.NumSessions = 3;
  uint64_t Total = totalTraceOps(FO);
  FO.Shard.BatchSize = 7;
  ASSERT_NE(Total % FO.Shard.BatchSize, 0u)
      << "pick a batch size that leaves a remainder";
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_EQ(R.TotalOpsApplied, Total);
  EXPECT_EQ(R.TotalSessions, 3u);
  EXPECT_TRUE(R.clean());
}

// --- Shard isolation under fault injection -------------------------------

TEST(ServiceFleet, PlantedFaultIsAttributedToItsArenaOnly) {
  const unsigned Corrupted = 1;

  // Reference: the same fleet with no tap.
  FleetOptions Clean = smallFleet();
  ServiceFleet Reference(Clean);
  Reference.run();
  ASSERT_TRUE(Reference.report().clean());

  // Corrupt arena 1's *recorded* event stream through the LogTap port:
  // every alloc event under-reports its size by one word, so the audit
  // replay can no longer reproduce the heap's statistics.
  FleetOptions Tapped = Clean;
  Tapped.ArenaTap = [Corrupted](unsigned Arena, HeapEvent &E) {
    if (Arena == Corrupted && E.Event == HeapEvent::Kind::Alloc &&
        E.Size > 1)
      --E.Size;
    return true;
  };
  ServiceFleet Fleet(Tapped);
  Fleet.run();
  FleetReport R = Fleet.report();

  // The fault is detected...
  EXPECT_FALSE(R.clean());
  ASSERT_FALSE(R.Violations.empty());
  // ...attributed to the corrupted arena only...
  for (const FleetViolation &FV : R.Violations)
    EXPECT_EQ(FV.ArenaId, Corrupted) << FV.V.describe();
  EXPECT_GT(R.Arenas[Corrupted].NumViolations, 0u);

  // ...and the siblings are bit-for-bit untouched: stats, occupancy and
  // object-start masks, ledger, timeline. Shared-nothing means a fault
  // in one shard cannot leak into another's state.
  for (unsigned A = 0; A != Clean.NumArenas; ++A) {
    if (A == Corrupted)
      continue;
    EXPECT_EQ(shardFingerprint(Reference.shard(A)),
              shardFingerprint(Fleet.shard(A)))
        << "arena " << A << " contaminated by arena " << Corrupted;
  }
  // The corrupted arena's heap itself is also intact — the fault lives
  // in its telemetry stream, and detection must not perturb execution.
  const HeapStats &Ref = Reference.shard(Corrupted).heap().stats();
  const HeapStats &Got = Fleet.shard(Corrupted).heap().stats();
  EXPECT_EQ(Ref.HighWaterMark, Got.HighWaterMark);
  EXPECT_EQ(Ref.TotalAllocatedWords, Got.TotalAllocatedWords);
  EXPECT_EQ(Reference.shard(Corrupted).heap().occupancyMask(64),
            Fleet.shard(Corrupted).heap().occupancyMask(64));
  EXPECT_EQ(Reference.shard(Corrupted).heap().objectStartMask(64),
            Fleet.shard(Corrupted).heap().objectStartMask(64));
}

TEST(ServiceFleet, DroppedEventsAreAlsoDetected) {
  // The tap's other move: silently dropping free events from the log.
  FleetOptions FO = smallFleet();
  FO.ArenaTap = [](unsigned Arena, HeapEvent &E) {
    return !(Arena == 2 && E.Event == HeapEvent::Kind::Free);
  };
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  EXPECT_FALSE(R.clean());
  for (const FleetViolation &FV : R.Violations)
    EXPECT_EQ(FV.ArenaId, 2u);
}

// --- Report invariants and percentiles -----------------------------------

TEST(FleetReport, PercentileNearestRank) {
  EXPECT_EQ(percentileNearestRank({}, 0.99), 0.0);
  EXPECT_EQ(percentileNearestRank({5.0}, 0.50), 5.0);
  EXPECT_EQ(percentileNearestRank({5.0}, 0.99), 5.0);
  EXPECT_EQ(percentileNearestRank({4.0, 1.0, 3.0, 2.0}, 0.50), 2.0);
  EXPECT_EQ(percentileNearestRank({4.0, 1.0, 3.0, 2.0}, 0.99), 4.0);
  EXPECT_EQ(percentileNearestRank({4.0, 1.0, 3.0, 2.0}, 0.25), 1.0);
}

TEST(FleetReport, TotalsAreConsistentWithArenaRows) {
  FleetOptions FO = smallFleet();
  ServiceFleet Fleet(FO);
  Fleet.run();
  FleetReport R = Fleet.report();
  uint64_t Footprint = 0, Sessions = 0, Flushes = 0, Ops = 0;
  for (const ArenaSummary &A : R.Arenas) {
    Footprint += A.Stats.HighWaterMark;
    Sessions += A.Sessions;
    Flushes += A.Flushes;
    Ops += A.OpsApplied;
  }
  EXPECT_EQ(R.TotalFootprintWords, Footprint);
  EXPECT_EQ(R.TotalSessions, Sessions);
  EXPECT_EQ(R.TotalFlushes, Flushes);
  EXPECT_EQ(R.TotalOpsApplied, Ops);
  EXPECT_EQ(R.TotalSessions, FO.NumSessions);
  // The drained fleet holds nothing: every session tears down.
  EXPECT_EQ(R.TotalLiveWords, 0u);
  // The fleet timeline exists and its final epoch sums the arenas.
  ASSERT_FALSE(R.FleetTimeline.empty());
  EXPECT_EQ(R.FleetTimeline.points().back().Step, R.TotalSessions);
}

TEST(FleetReport, WriteFileReportsUnwritablePath) {
  FleetOptions FO = smallFleet();
  FO.NumSessions = 4;
  ServiceFleet Fleet(FO);
  Fleet.run();
  std::string Error;
  EXPECT_FALSE(Fleet.report().writeFile("/no/such/dir/report.json", &Error));
  EXPECT_FALSE(Error.empty());
}

// --- Golden fleet report -------------------------------------------------

/// The fixed configuration the committed goldens were generated from.
std::string goldenReport(bool Json) {
  ServiceFleet Fleet(smallFleet());
  Fleet.run();
  FleetReport R = Fleet.report();
  std::ostringstream OS;
  if (Json)
    R.printJson(OS);
  else
    R.printText(OS);
  return OS.str();
}

TEST(FleetReportGolden, TextMatchesCommittedGolden) {
  std::string Got = goldenReport(/*Json=*/false);
  // Regenerate the committed goldens with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./service_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream Out(std::string(Dir) + "/fleet-report.txt");
    ASSERT_TRUE(Out.good());
    Out << Got;
  }
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/fleet-report.txt");
  ASSERT_TRUE(IS.good()) << "missing golden fleet-report.txt";
  std::stringstream Golden;
  Golden << IS.rdbuf();
  EXPECT_EQ(Got, Golden.str());
}

TEST(FleetReportGolden, JsonMatchesCommittedGolden) {
  std::string Got = goldenReport(/*Json=*/true);
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream Out(std::string(Dir) + "/fleet-report.json");
    ASSERT_TRUE(Out.good());
    Out << Got;
  }
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/fleet-report.json");
  ASSERT_TRUE(IS.good()) << "missing golden fleet-report.json";
  std::stringstream Golden;
  Golden << IS.rdbuf();
  EXPECT_EQ(Got, Golden.str());
}

} // namespace
