//===- tests/bounds_test.cpp - Unit tests for src/bounds -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The anchor tests pin every formula to the numbers the paper states in
// prose for M = 256MB, n = 1MB (M = 2^28, n = 2^20 words).
//
//===----------------------------------------------------------------------===//

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/BoundSweep.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/Planning.h"
#include "bounds/RobsonBounds.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pcb;

namespace {

BoundParams paperParams(double C) { return BoundParams{pow2(28), pow2(20), C}; }

// --- Robson -----------------------------------------------------------

TEST(RobsonBounds, PaperParameters) {
  // M * (log(n)/2 + 1) - n + 1 = 11M - n + 1 for log n = 20.
  BoundParams P = paperParams(10);
  EXPECT_DOUBLE_EQ(robsonHeapWords(P),
                   11.0 * double(P.M) - double(P.N) + 1.0);
  EXPECT_NEAR(robsonWasteFactor(P), 10.996, 0.001);
  EXPECT_DOUBLE_EQ(robsonGeneralHeapWords(P), 2.0 * robsonHeapWords(P));
}

TEST(RobsonBounds, GrowsWithLogN) {
  BoundParams Small{pow2(20), pow2(8), 10};
  BoundParams Large{pow2(20), pow2(16), 10};
  EXPECT_LT(robsonWasteFactor(Small), robsonWasteFactor(Large));
}

TEST(RobsonBounds, OccupierLowerBound) {
  // Claim 4.9: at least M (i + 2) / 2^(i+1) occupiers after step i.
  EXPECT_DOUBLE_EQ(robsonOccupierLowerBound(1024, 0), 1024.0);
  EXPECT_DOUBLE_EQ(robsonOccupierLowerBound(1024, 1), 768.0);
  EXPECT_DOUBLE_EQ(robsonOccupierLowerBound(1024, 2), 512.0);
}

// --- Bendersky-Petrank --------------------------------------------------

TEST(BenderskyPetrankBounds, TrivialAtPracticalParameters) {
  // The paper's motivating observation: for M = 256MB, n = 1MB the POPL
  // 2011 lower bound gives only the trivial factor 1 throughout
  // c = 10..100.
  for (unsigned C = 10; C <= 100; ++C) {
    BoundParams P = paperParams(C);
    EXPECT_EQ(benderskyPetrankLowerWasteFactor(P), 1.0) << "c=" << C;
  }
}

TEST(BenderskyPetrankBounds, MeaningfulForHugeHeaps) {
  // ... but for huge object/heap ratios (n = 16TB scale) it exceeds M.
  BoundParams P{pow2(54), pow2(44), 10};
  EXPECT_GT(benderskyPetrankLowerWasteFactor(P), 1.0);
}

TEST(BenderskyPetrankBounds, UpperBound) {
  BoundParams P = paperParams(50);
  EXPECT_DOUBLE_EQ(benderskyPetrankUpperWasteFactor(P), 51.0);
  EXPECT_DOUBLE_EQ(benderskyPetrankUpperHeapWords(P), 51.0 * double(P.M));
}

TEST(BenderskyPetrankBounds, BranchBoundary) {
  // The two-regime formula switches at c = 4 log n; both sides stay
  // finite and positive-branch selection matches the definition.
  BoundParams Below = paperParams(79); // 4 log n = 80
  BoundParams Above = paperParams(81);
  EXPECT_GE(benderskyPetrankLowerWasteFactor(Below), 1.0);
  EXPECT_GE(benderskyPetrankLowerWasteFactor(Above), 1.0);
}

// --- Cohen-Petrank Theorem 1 --------------------------------------------

TEST(CohenPetrankLower, PaperAnchorC10) {
  // "Even with 10% of the allocated space being compacted, a heap size of
  // 2M = 512MB is unavoidable."
  EXPECT_NEAR(cohenPetrankLowerWasteFactor(paperParams(10)), 2.0, 0.01);
}

TEST(CohenPetrankLower, PaperAnchorC50) {
  // "when compaction of 2% of all allocated space is allowed (c = 50),
  // any memory manager will need ... at least 3.15 M."
  EXPECT_NEAR(cohenPetrankLowerWasteFactor(paperParams(50)), 3.15, 0.05);
}

TEST(CohenPetrankLower, PaperAnchorC100) {
  // "when the compaction is limited to 1% ... an overhead of 3.5x".
  EXPECT_NEAR(cohenPetrankLowerWasteFactor(paperParams(100)), 3.5, 0.05);
}

TEST(CohenPetrankLower, MonotoneInC) {
  // Less compaction budget can only force more waste.
  double Prev = 0.0;
  for (unsigned C = 10; C <= 100; C += 5) {
    double H = cohenPetrankLowerWasteFactor(paperParams(C));
    EXPECT_GE(H, Prev) << "c=" << C;
    Prev = H;
  }
}

TEST(CohenPetrankLower, SigmaAdmissibility) {
  EXPECT_EQ(cohenPetrankMaxSigma(10.0), 2u);  // 2^2 <= 7.5 < 2^3
  EXPECT_EQ(cohenPetrankMaxSigma(100.0), 6u); // 2^6 = 64 <= 75
  EXPECT_EQ(cohenPetrankMaxSigma(2.0), 0u);   // 3c/4 = 1.5 < 2
  EXPECT_EQ(cohenPetrankMaxSigma(8.0 / 3.0), 1u);
}

TEST(CohenPetrankLower, OptimalSigmaIsAdmissibleAndBest) {
  for (unsigned C : {10u, 25u, 50u, 100u}) {
    BoundParams P = paperParams(C);
    unsigned Best = cohenPetrankOptimalSigma(P);
    ASSERT_GE(Best, 1u);
    ASSERT_LE(Best, cohenPetrankMaxSigma(P.C));
    double HBest = cohenPetrankLowerWasteFactorForSigma(P, Best);
    for (unsigned S = 1; S <= cohenPetrankMaxSigma(P.C); ++S)
      EXPECT_LE(cohenPetrankLowerWasteFactorForSigma(P, S), HBest)
          << "c=" << C << " sigma=" << S;
  }
}

TEST(CohenPetrankLower, BeatsPriorBoundAtPracticalParameters) {
  // The headline claim: meaningful (> 1) exactly where POPL 2011 is
  // trivial.
  for (unsigned C = 10; C <= 100; C += 10) {
    BoundParams P = paperParams(C);
    EXPECT_GT(cohenPetrankLowerWasteFactor(P),
              benderskyPetrankLowerWasteFactor(P))
        << "c=" << C;
  }
}

TEST(CohenPetrankLower, BelowRobsonNoCompactionCeiling) {
  // With compaction allowed the forced waste must stay below the
  // no-compaction worst case.
  for (unsigned C = 10; C <= 100; C += 10) {
    BoundParams P = paperParams(C);
    EXPECT_LT(cohenPetrankLowerWasteFactor(P), robsonWasteFactor(P));
  }
}

TEST(CohenPetrankLower, AllocationFactorPositiveAndSane) {
  for (unsigned C : {10u, 50u, 100u}) {
    BoundParams P = paperParams(C);
    unsigned S = cohenPetrankOptimalSigma(P);
    double X = cohenPetrankAllocationFactor(P, S);
    EXPECT_GT(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(CohenPetrankLower, SelfConsistencyOfH) {
  // h(sigma) was derived by solving the paper's budget identity at
  // equality:
  //   h = (s+2)/2 - (2^s/c) S1 + A [(1 - 2^-s h) L - 2n/M']...
  // Verify the closed form satisfies the fixed-point equation it came
  // from: plugging h back into the right-hand side reproduces h.
  for (unsigned C : {10u, 25u, 50u, 100u}) {
    BoundParams P = paperParams(C);
    for (unsigned S = 1; S <= cohenPetrankMaxSigma(P.C); ++S) {
      double H = cohenPetrankLowerWasteFactorForSigma(P, S);
      double TwoS = std::pow(2.0, double(S));
      double A = 0.75 - TwoS / P.C;
      double L = (double(P.logN()) - 2.0 * S - 1.0) / (S + 1.0);
      double Series = 0.0;
      for (unsigned I = 1; I <= S; ++I)
        Series += double(I) / (std::pow(2.0, double(I)) - 1.0);
      double S1 = S + 1.0 - 0.5 * Series;
      double Rhs = (S + 2.0) / 2.0 - (TwoS / P.C) * S1 +
                   A * ((1.0 - H / TwoS) * L) -
                   2.0 * double(P.N) / double(P.M);
      EXPECT_NEAR(H, Rhs, 1e-9) << "c=" << C << " sigma=" << S;
    }
  }
}

TEST(CohenPetrankLower, InsensitiveToMWhenNIsSmall) {
  // The paper: "the lower bound as a function of M is very close to a
  // constant function" once n/M is small.
  BoundParams A{pow2(28), pow2(16), 50.0};
  BoundParams B{pow2(34), pow2(16), 50.0};
  EXPECT_NEAR(cohenPetrankLowerWasteFactor(A),
              cohenPetrankLowerWasteFactor(B), 0.01);
}

// --- Cohen-Petrank Theorem 2 --------------------------------------------

TEST(CohenPetrankUpper, SequenceShape) {
  BoundParams P = paperParams(20);
  std::vector<double> A = cohenPetrankUpperSequence(P);
  ASSERT_EQ(A.size(), 21u);
  EXPECT_DOUBLE_EQ(A[0], 1.0);
  // a_1 = (1 - 1/c)/2 and the sequence is non-increasing.
  EXPECT_DOUBLE_EQ(A[1], (1.0 - 1.0 / 20.0) / 2.0);
  for (size_t I = 1; I != A.size(); ++I)
    EXPECT_LE(A[I], A[I - 1]);
}

TEST(CohenPetrankUpper, ImprovesOnPriorForModerateC) {
  // Figure 3's qualitative content: the new bound beats
  // min((c+1) M, 2 * Robson) throughout c = 20..100.
  for (unsigned C = 20; C <= 100; C += 10) {
    BoundParams P = paperParams(C);
    EXPECT_LT(cohenPetrankUpperWasteFactor(P), priorBestUpperWasteFactor(P))
        << "c=" << C;
    EXPECT_DOUBLE_EQ(newBestUpperWasteFactor(P),
                     std::min(cohenPetrankUpperWasteFactor(P),
                              priorBestUpperWasteFactor(P)));
  }
}

TEST(CohenPetrankUpper, AboveLowerBound) {
  // Upper and lower bounds must bracket: no contradiction in the model.
  for (unsigned C = 15; C <= 100; C += 5) {
    BoundParams P = paperParams(C);
    EXPECT_GT(cohenPetrankUpperWasteFactor(P),
              cohenPetrankLowerWasteFactor(P))
        << "c=" << C;
  }
}

TEST(CohenPetrankUpper, OutsideDomainFallsBackToPrior) {
  BoundParams P = paperParams(9); // c <= log2(n)/2 = 10
  EXPECT_DOUBLE_EQ(newBestUpperWasteFactor(P), priorBestUpperWasteFactor(P));
}

// --- Planning (inverse) queries ------------------------------------------

TEST(Planning, InvertsFigureOneAnchors) {
  // At M=256MB, n=1MB, h hits 2.0 exactly at c = 10, so a 2.0x waste
  // target needs a moved fraction of at least ~1/10.
  CompactionPlan Plan = planCompactionBudget(pow2(28), pow2(20), 2.0);
  ASSERT_TRUE(Plan.Feasible);
  EXPECT_NEAR(Plan.MaxQuota, 10.0, 0.3);
  EXPECT_LE(Plan.AchievedLowerBound, 2.0 + 1e-9);
  // And the point just beyond the plan's quota must exceed the target.
  BoundParams Beyond{pow2(28), pow2(20), Plan.MaxQuota + 0.5};
  EXPECT_GT(cohenPetrankLowerWasteFactor(Beyond), 2.0);
}

TEST(Planning, InfeasibleAndTightTargets) {
  // Nothing below the trivial factor is ever guaranteed.
  EXPECT_FALSE(planCompactionBudget(pow2(28), pow2(20), 0.9).Feasible);
  // A 1.2x target is only "free" while Theorem 1 is trivial: it pins the
  // quota to the small-c regime (h(c=4) is already ~1.39 > 1.2).
  CompactionPlan Tight = planCompactionBudget(pow2(28), pow2(20), 1.2);
  ASSERT_TRUE(Tight.Feasible);
  EXPECT_LT(Tight.MaxQuota, 4.0);
  EXPECT_GT(Tight.MinMovedFraction, 0.25);
}

TEST(Planning, GenerousTargetsSaturateTheRange) {
  // A target above h at the range's top end needs no more compaction
  // than the range's weakest budget.
  CompactionPlan Plan =
      planCompactionBudget(pow2(28), pow2(20), 50.0, 2.0, 128.0);
  ASSERT_TRUE(Plan.Feasible);
  EXPECT_DOUBLE_EQ(Plan.MaxQuota, 128.0);
  EXPECT_DOUBLE_EQ(Plan.MinMovedFraction, 1.0 / 128.0);
}

TEST(Planning, MonotoneInTarget) {
  double PrevQuota = 0.0;
  for (double Target : {1.6, 2.0, 2.5, 3.0, 3.4}) {
    CompactionPlan Plan = planCompactionBudget(pow2(28), pow2(20), Target);
    ASSERT_TRUE(Plan.Feasible) << Target;
    EXPECT_GE(Plan.MaxQuota, PrevQuota) << Target;
    PrevQuota = Plan.MaxQuota;
  }
}

// --- Sweeps (the figures) -----------------------------------------------

TEST(BoundSweep, Fig1SeriesMatchesPointQueries) {
  auto Series = sweepFig1(pow2(28), pow2(20), 10, 100);
  ASSERT_EQ(Series.size(), 91u);
  EXPECT_DOUBLE_EQ(Series.front().C, 10.0);
  EXPECT_DOUBLE_EQ(Series.back().C, 100.0);
  for (const Fig1Point &Pt : Series) {
    BoundParams P = paperParams(Pt.C);
    EXPECT_DOUBLE_EQ(Pt.NewLower, cohenPetrankLowerWasteFactor(P));
    EXPECT_DOUBLE_EQ(Pt.PriorLower, benderskyPetrankLowerWasteFactor(P));
    EXPECT_EQ(Pt.Sigma, cohenPetrankOptimalSigma(P));
  }
}

TEST(BoundSweep, Fig2SeriesGrowsWithN) {
  // Figure 2: c = 100, M = 256 n, n = 1KB .. 1GB. The bound grows with
  // the maximum object size.
  auto Series = sweepFig2(100.0, 10, 30, 256);
  ASSERT_EQ(Series.size(), 21u);
  EXPECT_LT(Series.front().NewLower, Series.back().NewLower);
  for (size_t I = 1; I != Series.size(); ++I)
    EXPECT_GE(Series[I].NewLower + 1e-9, Series[I - 1].NewLower)
        << "logn=" << Series[I].LogN;
}

TEST(BoundSweep, Fig2SeriesMatchesPointQueries) {
  auto Series = sweepFig2(100.0, 12, 16, 256);
  ASSERT_EQ(Series.size(), 5u);
  for (const Fig2Point &Pt : Series) {
    BoundParams P{256 * Pt.N, Pt.N, 100.0};
    EXPECT_DOUBLE_EQ(Pt.NewLower, cohenPetrankLowerWasteFactor(P));
    EXPECT_EQ(Pt.Sigma, cohenPetrankOptimalSigma(P));
    EXPECT_EQ(Pt.N, pow2(Pt.LogN));
  }
}

TEST(CohenPetrankUpper, DomainBoundary) {
  // Theorem 2 needs c > log2(n)/2; just above the boundary it must
  // produce a finite positive bound.
  BoundParams P{pow2(28), pow2(20), 10.5}; // log n / 2 = 10
  double W = cohenPetrankUpperWasteFactor(P);
  EXPECT_GT(W, 1.0);
  EXPECT_LT(W, 1e4);
}

TEST(CohenPetrankLower, MinimalAdmissibleC) {
  // c = 8/3 is the smallest quota admitting sigma = 1; the bound exists
  // and is clamped at or above the trivial factor.
  BoundParams P{pow2(20), pow2(10), 8.0 / 3.0};
  EXPECT_EQ(cohenPetrankMaxSigma(P.C), 1u);
  EXPECT_GE(cohenPetrankLowerWasteFactor(P), 1.0);
}

TEST(RobsonBounds, GeneralDoublesP2) {
  for (unsigned C : {10u, 50u}) {
    BoundParams P = paperParams(C);
    EXPECT_DOUBLE_EQ(robsonGeneralWasteFactor(P),
                     2.0 * robsonWasteFactor(P));
  }
}

TEST(BoundSweep, Fig3SeriesConsistent) {
  auto Series = sweepFig3(pow2(28), pow2(20), 10, 100);
  ASSERT_EQ(Series.size(), 91u);
  for (const Fig3Point &Pt : Series) {
    EXPECT_LE(Pt.BestUpper, Pt.PriorUpper + 1e-12);
    if (!std::isnan(Pt.NewUpper)) {
      EXPECT_LE(Pt.BestUpper, Pt.NewUpper + 1e-12);
    }
  }
}

// --- Parameterized cross-property sweep ----------------------------------

struct SweepCase {
  unsigned LogM;
  unsigned LogN;
  unsigned C;
};

class BoundConsistency : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BoundConsistency, LowerBelowUpperAndAboveTrivial) {
  SweepCase S = GetParam();
  BoundParams P{pow2(S.LogM), pow2(S.LogN), double(S.C)};
  ASSERT_TRUE(P.valid());
  double Lower = cohenPetrankLowerWasteFactor(P);
  EXPECT_GE(Lower, 1.0);
  // The c-partial upper bound family must dominate the lower bound.
  EXPECT_LE(Lower, benderskyPetrankUpperWasteFactor(P));
  // Robson's no-compaction program is also a c-partial worst case, so
  // the no-compaction ceiling dominates too.
  EXPECT_LE(Lower, robsonWasteFactor(P) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, BoundConsistency,
    ::testing::Values(SweepCase{20, 8, 10}, SweepCase{20, 8, 40},
                      SweepCase{24, 12, 10}, SweepCase{24, 12, 60},
                      SweepCase{28, 20, 10}, SweepCase{28, 20, 50},
                      SweepCase{28, 20, 100}, SweepCase{30, 10, 30},
                      SweepCase{32, 24, 80}, SweepCase{26, 16, 25}));

} // namespace
