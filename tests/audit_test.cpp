//===- tests/audit_test.cpp - Event log, auditors, metrics ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The auditors re-derive every statistic from a recorded event stream
// with independent data structures; these tests use them as a witness
// that the heap's counters — which feed HS(A, P) and the compaction
// ledger — are honest, across every manager and adversary combination.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/RobsonProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "driver/Auditors.h"
#include "driver/EventLog.h"
#include "driver/Execution.h"
#include "driver/TraceIO.h"
#include "heap/Metrics.h"
#include "mm/ManagerFactory.h"
#include "mm/SequentialFitManagers.h"
#include "support/MathUtils.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace pcb;

namespace {

// --- EventLog basics -------------------------------------------------------

TEST(EventLog, RecordsHeapMutations) {
  Heap H;
  EventLog Log;
  H.setEventCallback([&](const HeapEvent &E) { Log.record(E); });
  ObjectId A = H.place(0, 8);
  H.move(A, 16);
  H.free(A);
  ASSERT_EQ(Log.size(), 3u);
  EXPECT_EQ(Log.events()[0].Event, HeapEvent::Kind::Alloc);
  EXPECT_EQ(Log.events()[1].Event, HeapEvent::Kind::Move);
  EXPECT_EQ(Log.events()[1].From, 0u);
  EXPECT_EQ(Log.events()[1].Address, 16u);
  EXPECT_EQ(Log.events()[2].Event, HeapEvent::Kind::Free);
  EXPECT_EQ(Log.events()[2].Address, 16u);
}

TEST(EventLog, ToTraceKeepsProgramBehaviourOnly) {
  EventLog Log;
  Log.record(HeapEvent::alloc(0, 0, 8));
  Log.record(HeapEvent::alloc(1, 8, 4));
  Log.record(HeapEvent::move(0, 0, 32, 8));
  Log.record(HeapEvent::release(0, 32, 8));
  Log.record(HeapEvent::stepEnd());
  std::vector<TraceOp> Trace = Log.toTrace();
  ASSERT_EQ(Trace.size(), 3u);
  EXPECT_EQ(Trace[0].Op, TraceOp::Kind::Alloc);
  EXPECT_EQ(Trace[0].Value, 8u);
  EXPECT_EQ(Trace[1].Op, TraceOp::Kind::Alloc);
  EXPECT_EQ(Trace[2].Op, TraceOp::Kind::Free);
  EXPECT_EQ(Trace[2].Value, 0u); // frees the first allocation
}

// --- Auditors ---------------------------------------------------------------

TEST(Auditors, CleanStreamMatchesByHand) {
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 0, 10),   HeapEvent::alloc(1, 10, 6),
      HeapEvent::release(0, 0, 10), HeapEvent::alloc(2, 0, 4),
      HeapEvent::move(1, 10, 4, 6),
  };
  AuditReport R = auditEvents(Events);
  EXPECT_TRUE(R.Consistent);
  EXPECT_EQ(R.HighWaterMark, 16u);
  EXPECT_EQ(R.LiveWords, 10u);
  EXPECT_EQ(R.PeakLiveWords, 16u);
  EXPECT_EQ(R.TotalAllocatedWords, 20u);
  EXPECT_EQ(R.MovedWords, 6u);
  EXPECT_EQ(R.NumAllocations, 3u);
  EXPECT_EQ(R.NumFrees, 1u);
  EXPECT_EQ(R.NumMoves, 1u);
}

TEST(Auditors, DetectsDoubleFree) {
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 0, 4),
      HeapEvent::release(0, 0, 4),
      HeapEvent::release(0, 0, 4),
  };
  EXPECT_FALSE(auditEvents(Events).Consistent);
}

TEST(Auditors, DetectsOverlappingPlacement) {
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 0, 8),
      HeapEvent::alloc(1, 4, 8),
  };
  EXPECT_FALSE(auditEvents(Events).Consistent);
}

TEST(Auditors, DetectsMoveOfDeadObject) {
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 0, 4),
      HeapEvent::release(0, 0, 4),
      HeapEvent::move(0, 0, 8, 4),
  };
  EXPECT_FALSE(auditEvents(Events).Consistent);
}

TEST(Auditors, AcceptsOverlappingSlide) {
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 4, 10),
      HeapEvent::move(0, 4, 0, 10), // memmove-style downward slide
  };
  EXPECT_TRUE(auditEvents(Events).Consistent);
}

TEST(Auditors, BudgetHistoryCatchesMidRunBreach) {
  // Final state is within budget, but the move happened before enough
  // allocation had funded it.
  std::vector<HeapEvent> Events = {
      HeapEvent::alloc(0, 0, 10),
      HeapEvent::move(0, 0, 16, 10),  // moved 10 of 10 allocated: breach
      HeapEvent::alloc(1, 32, 990),   // funding arrives too late
  };
  EXPECT_FALSE(auditBudgetHistory(Events, 2.0));
  // The same prefix is fine with unlimited budget.
  EXPECT_TRUE(auditBudgetHistory(Events, 0.0));
  // And fine when the allocation comes first.
  std::vector<HeapEvent> Reordered = {
      HeapEvent::alloc(1, 32, 990),
      HeapEvent::alloc(0, 0, 10),
      HeapEvent::move(0, 0, 1024, 10),
  };
  EXPECT_TRUE(auditBudgetHistory(Reordered, 2.0));
}

// --- End-to-end: every execution audits clean -------------------------------

struct AuditCase {
  const char *Program;
  const char *Policy;
  double C;
};

class ExecutionAudit : public ::testing::TestWithParam<AuditCase> {};

TEST_P(ExecutionAudit, StatsMatchAndBudgetHeldThroughout) {
  AuditCase Case = GetParam();
  const uint64_t M = pow2(12);
  const uint64_t N = pow2(7);
  Heap H;
  auto MM = createManager(Case.Policy, H, Case.C);
  ASSERT_NE(MM, nullptr);

  std::unique_ptr<Program> Prog;
  if (std::string(Case.Program) == "robson")
    Prog = std::make_unique<RobsonProgram>(M, log2Exact(N));
  else if (std::string(Case.Program) == "cohen-petrank")
    Prog = std::make_unique<CohenPetrankProgram>(M, N, Case.C);
  else {
    RandomChurnProgram::Options Opts;
    Opts.Steps = 24;
    Opts.MaxLogSize = 6;
    Prog = std::make_unique<RandomChurnProgram>(M, Opts);
  }

  EventLog Log;
  Execution::Options Opts;
  Opts.Log = &Log;
  Execution E(*MM, *Prog, M, Opts);
  E.run();

  AuditReport R = auditEvents(Log.events());
  EXPECT_TRUE(R.Consistent);
  EXPECT_TRUE(R.matches(H.stats()));
  EXPECT_TRUE(auditBudgetHistory(Log.events(), Case.C));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExecutionAudit,
    ::testing::Values(AuditCase{"robson", "first-fit", 1e18},
                      AuditCase{"robson", "evacuating", 5.0},
                      AuditCase{"cohen-petrank", "first-fit", 20.0},
                      AuditCase{"cohen-petrank", "evacuating", 20.0},
                      AuditCase{"cohen-petrank", "sliding", 20.0},
                      AuditCase{"cohen-petrank", "hybrid", 20.0},
                      AuditCase{"churn", "best-fit", 10.0},
                      AuditCase{"churn", "buddy", 10.0}),
    [](const ::testing::TestParamInfo<AuditCase> &Info) {
      std::string Name = std::string(Info.param.Program) + "_" +
                         Info.param.Policy;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

// --- Cross-manager replay ----------------------------------------------------

TEST(Replay, AdversaryTraceHurtsNonMovingManagerEqually) {
  // Record PF against first fit, replay the identical allocation/free
  // sequence through TraceReplayProgram against a fresh first fit: the
  // deterministic manager must produce the identical footprint.
  const uint64_t M = pow2(12);
  const uint64_t N = pow2(7);
  EventLog Log;
  uint64_t DirectHS;
  {
    Heap H;
    FirstFitManager MM(H, 1e18);
    CohenPetrankProgram PF(M, N, 20.0);
    Execution::Options Opts;
    Opts.Log = &Log;
    Execution E(MM, PF, M, Opts);
    DirectHS = E.run().HeapSize;
  }
  {
    Heap H;
    FirstFitManager MM(H, 1e18);
    TraceReplayProgram Replay(Log.toTrace());
    Execution E(MM, Replay, M);
    EXPECT_EQ(E.run().HeapSize, DirectHS);
  }
}

TEST(Replay, TraceIsManagerPortable) {
  // The recorded trace is a plain program: it must run cleanly (and
  // within the live bound) under every manager policy.
  const uint64_t M = pow2(11);
  const uint64_t N = pow2(6);
  EventLog Log;
  {
    Heap H;
    FirstFitManager MM(H, 1e18);
    RobsonProgram PR(M, log2Exact(N));
    Execution::Options Opts;
    Opts.Log = &Log;
    Execution E(MM, PR, M, Opts);
    E.run();
  }
  std::vector<TraceOp> Trace = Log.toTrace();
  for (const std::string &Policy : allManagerPolicies()) {
    Heap H;
    auto MM = createManager(Policy, H, 10.0, /*LiveBound=*/M);
    TraceReplayProgram Replay(Trace);
    Execution E(*MM, Replay, M);
    ExecutionResult R = E.run();
    EXPECT_LE(R.PeakLiveWords, M) << Policy;
    EXPECT_GE(R.HeapSize, R.PeakLiveWords) << Policy;
  }
}

// --- Trace text serialization -------------------------------------------------

TEST(TraceIO, RoundTrip) {
  EventLog Log;
  Log.record(HeapEvent::alloc(0, 0, 8));
  Log.record(HeapEvent::move(0, 0, 16, 8));
  Log.record(HeapEvent::stepEnd());
  Log.record(HeapEvent::release(0, 16, 8));

  std::stringstream SS;
  writeEventLog(SS, Log);
  EventLog Back;
  ASSERT_TRUE(readEventLog(SS, Back));
  ASSERT_EQ(Back.size(), Log.size());
  for (size_t I = 0; I != Log.size(); ++I) {
    const HeapEvent &A = Log.events()[I];
    const HeapEvent &B = Back.events()[I];
    EXPECT_EQ(A.Event, B.Event) << I;
    EXPECT_EQ(A.Id, B.Id) << I;
    EXPECT_EQ(A.Address, B.Address) << I;
    EXPECT_EQ(A.From, B.From) << I;
    EXPECT_EQ(A.Size, B.Size) << I;
  }
}

TEST(TraceIO, ToleratesCommentsAndBlankLines) {
  std::stringstream SS("# header\n\nA 0 0 4\nS\n# trailer\n");
  EventLog Log;
  ASSERT_TRUE(readEventLog(SS, Log));
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log.events()[0].Event, HeapEvent::Kind::Alloc);
}

TEST(TraceIO, RejectsMalformedLines) {
  for (const char *Bad : {"X 1 2 3\n", "A 1 2\n", "M 1 2 3\n",
                          "A 1 2 3 junk\n", "A one 2 3\n"}) {
    std::stringstream SS(Bad);
    EventLog Log;
    EXPECT_FALSE(readEventLog(SS, Log)) << Bad;
    EXPECT_TRUE(Log.empty()) << Bad;
  }
}

TEST(TraceIO, RecordedExecutionRoundTripsAndAuditsClean) {
  const uint64_t M = pow2(11);
  EventLog Log;
  {
    Heap H;
    auto MM = createManager("evacuating", H, 10.0);
    CohenPetrankProgram PF(M, pow2(6), 10.0);
    Execution::Options Opts;
    Opts.Log = &Log;
    Execution E(*MM, PF, M, Opts);
    E.run();
  }
  std::stringstream SS;
  writeEventLog(SS, Log);
  EventLog Back;
  ASSERT_TRUE(readEventLog(SS, Back));
  AuditReport Original = auditEvents(Log.events());
  AuditReport Reloaded = auditEvents(Back.events());
  EXPECT_TRUE(Reloaded.Consistent);
  EXPECT_EQ(Original.HighWaterMark, Reloaded.HighWaterMark);
  EXPECT_EQ(Original.MovedWords, Reloaded.MovedWords);
  EXPECT_EQ(Original.TotalAllocatedWords, Reloaded.TotalAllocatedWords);
}

// The full record -> write -> read -> replay loop: re-executing the
// reloaded trace must reproduce the original run's statistics exactly,
// and the auditor must agree with both.
TEST(TraceIO, ReplayOfReloadedTraceReproducesStats) {
  const uint64_t M = pow2(11);
  EventLog Log;
  HeapStats Original;
  {
    Heap H;
    auto MM = createManager("first-fit", H, 50.0);
    RandomChurnProgram::Options CO;
    CO.Seed = 17;
    CO.MaxLogSize = 5;
    RandomChurnProgram Churn(M, CO);
    Execution::Options Opts;
    Opts.Log = &Log;
    Execution E(*MM, Churn, M, Opts);
    E.run();
    Original = H.stats();
  }

  std::stringstream SS;
  writeEventLog(SS, Log);
  EventLog Back;
  std::string Error;
  ASSERT_TRUE(readEventLog(SS, Back, &Error)) << Error;

  Heap H;
  auto MM = createManager("first-fit", H, 50.0);
  TraceReplayProgram Replay(Back.toTrace());
  Execution E(*MM, Replay, M);
  E.run();
  const HeapStats &Replayed = H.stats();
  EXPECT_EQ(Replayed.HighWaterMark, Original.HighWaterMark);
  EXPECT_EQ(Replayed.LiveWords, Original.LiveWords);
  EXPECT_EQ(Replayed.PeakLiveWords, Original.PeakLiveWords);
  EXPECT_EQ(Replayed.TotalAllocatedWords, Original.TotalAllocatedWords);
  EXPECT_EQ(Replayed.NumAllocations, Original.NumAllocations);
  EXPECT_EQ(Replayed.NumFrees, Original.NumFrees);
  EXPECT_EQ(Replayed.MovedWords, Original.MovedWords);

  AuditReport Audit = auditEvents(Back.events());
  EXPECT_TRUE(Audit.Consistent);
  EXPECT_TRUE(Audit.matches(Original));
}

TEST(TraceIO, DiagnosticNamesTheOffendingLine) {
  struct Case {
    const char *Input;
    const char *ExpectedFragment;
  };
  for (const Case &C : {
           Case{"# ok\nA 0 0 4\nX 1 2 3\n", "line 3: unknown record"},
           Case{"A 0 0\n", "line 1: truncated or malformed allocation"},
           Case{"A 0 0 4\nF 0 0\n", "line 2: truncated or malformed free"},
           Case{"M 0 1 2\n", "line 1: truncated or malformed move"},
           Case{"A 0 0 4 junk\n", "line 1: trailing characters"},
       }) {
    std::stringstream SS(C.Input);
    EventLog Log;
    std::string Error;
    EXPECT_FALSE(readEventLog(SS, Log, &Error)) << C.Input;
    EXPECT_NE(Error.find(C.ExpectedFragment), std::string::npos)
        << "got '" << Error << "' for input " << C.Input;
    EXPECT_TRUE(Log.empty()) << C.Input;
  }
}

// A file cut off mid-record (e.g. a crashed writer) is rejected with a
// diagnostic pointing at the truncation, not silently half-loaded.
TEST(TraceIO, RejectsTruncatedFile) {
  EventLog Log;
  Log.record(HeapEvent::alloc(0, 0, 8));
  Log.record(HeapEvent::alloc(1, 8, 4));
  Log.record(HeapEvent::release(0, 0, 8));
  std::stringstream SS;
  writeEventLog(SS, Log);
  std::string Text = SS.str();
  std::string Truncated = Text.substr(0, Text.rfind(' ') + 1);
  ASSERT_LT(Truncated.size(), Text.size());

  std::stringstream In(Truncated);
  EventLog Back;
  std::string Error;
  EXPECT_FALSE(readEventLog(In, Back, &Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_TRUE(Back.empty());
}

// --- Fragmentation metrics ----------------------------------------------------

// An empty heap measures as all zeros — including Utilization, which
// used to default to 1.0 and make timelines start from a phantom full
// heap. Regression test for the all-zero contract.
TEST(Metrics, EmptyHeap) {
  Heap H;
  FragmentationMetrics M = measureFragmentation(H);
  EXPECT_EQ(M.FootprintWords, 0u);
  EXPECT_EQ(M.LiveWords, 0u);
  EXPECT_EQ(M.FreeWords, 0u);
  EXPECT_EQ(M.FreeBlocks, 0u);
  EXPECT_EQ(M.LargestFreeBlock, 0u);
  EXPECT_DOUBLE_EQ(M.Utilization, 0.0);
  EXPECT_DOUBLE_EQ(M.ExternalFragmentation, 0.0);
}

TEST(Metrics, ByHand) {
  Heap H;
  ObjectId A = H.place(0, 8);
  H.place(8, 8);
  H.place(16, 8);
  H.free(A);
  FragmentationMetrics M = measureFragmentation(H);
  EXPECT_EQ(M.FootprintWords, 24u);
  EXPECT_EQ(M.LiveWords, 16u);
  EXPECT_EQ(M.FreeWords, 8u);
  EXPECT_EQ(M.FreeBlocks, 1u);
  EXPECT_EQ(M.LargestFreeBlock, 8u);
  EXPECT_DOUBLE_EQ(M.Utilization, 16.0 / 24.0);
  EXPECT_DOUBLE_EQ(M.ExternalFragmentation, 0.0);
}

TEST(Metrics, ExternalFragmentationRises) {
  Heap H;
  // Shattered free space: 4 one-word holes.
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(H.place(Addr(I) * 2, 1)); // at 0, 2, 4, ...
  for (int I = 0; I != 8; ++I)
    H.place(Addr(I) * 2 + 1, 1);
  for (int I = 0; I != 4; ++I)
    H.free(Ids[I]);
  FragmentationMetrics M = measureFragmentation(H);
  EXPECT_EQ(M.FreeWords, 4u);
  EXPECT_EQ(M.FreeBlocks, 4u);
  EXPECT_EQ(M.LargestFreeBlock, 1u);
  EXPECT_DOUBLE_EQ(M.ExternalFragmentation, 0.75);
}

TEST(Metrics, AdversaryDrivesFragmentationUp) {
  const uint64_t M = pow2(11);
  Heap H;
  FirstFitManager MM(H, 1e18);
  RobsonProgram PR(M, 5);
  Execution E(MM, PR, M);
  E.run();
  FragmentationMetrics Metrics = measureFragmentation(H);
  // Robson's endgame leaves a heavily shattered heap.
  EXPECT_LT(Metrics.Utilization, 0.5);
  EXPECT_GT(Metrics.FreeBlocks, 10u);
}

// --- The no-stage1 ablation knob -------------------------------------------

TEST(CohenPetrankAblation, NoStageOneWeakensTheAttack) {
  const uint64_t M = pow2(14);
  const uint64_t N = pow2(8);
  const double C = 50.0;
  auto RunWith = [&](bool Bootstrap) {
    Heap H;
    auto MM = createManager("first-fit", H, C);
    CohenPetrankProgram::Options Opts;
    Opts.RobsonBootstrap = Bootstrap;
    CohenPetrankProgram PF(M, N, C, Opts);
    Execution E(*MM, PF, M);
    return E.run().HeapSize;
  };
  // The Robson stage one is the paper's first improvement; without it
  // the forced footprint must not increase.
  EXPECT_GE(RunWith(true), RunWith(false));
}

} // namespace
