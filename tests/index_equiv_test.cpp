//===- tests/index_equiv_test.cpp - Flat index vs reference oracle -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Property test: the flat FreeSpaceIndex and the preserved node-based
// ReferenceFreeSpaceIndex are driven through identical random
// reserve/release streams, and every placement and aggregate query is
// compared after every operation. Any semantic drift in the rewrite —
// a tie-break, a boundary, a stale summary — shows up as a mismatch with
// the op number and seed in the failure message.
//
//===----------------------------------------------------------------------===//

#include "heap/FreeSpaceIndex.h"
#include "support/Random.h"
#include "testsupport/ReferenceFreeSpaceIndex.h"

#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

namespace {

using namespace pcb;

/// Compares every query the managers use, plus the aggregates the
/// telemetry samples, on both indexes.
void expectQueriesMatch(const FreeSpaceIndex &Fast,
                        const ReferenceFreeSpaceIndex &Ref, uint64_t Size,
                        Addr From, uint64_t Align, Addr Limit, int Op) {
  SCOPED_TRACE(::testing::Message()
               << "op " << Op << " size " << Size << " from " << From
               << " align " << Align << " limit " << Limit);
  EXPECT_EQ(Fast.firstFit(Size), Ref.firstFit(Size));
  EXPECT_EQ(Fast.firstFitFrom(From, Size), Ref.firstFitFrom(From, Size));
  EXPECT_EQ(Fast.bestFit(Size), Ref.bestFit(Size));
  EXPECT_EQ(Fast.firstFitAligned(Size, Align),
            Ref.firstFitAligned(Size, Align));
  EXPECT_EQ(Fast.firstFitBelow(Size, Limit), Ref.firstFitBelow(Size, Limit));
  EXPECT_EQ(Fast.worstFitBelow(Size, Limit), Ref.worstFitBelow(Size, Limit));
  EXPECT_EQ(Fast.isFree(From, Size), Ref.isFree(From, Size));
  EXPECT_EQ(Fast.numBlocks(), Ref.numBlocks());
  EXPECT_EQ(Fast.numBlocksBelow(Limit), Ref.numBlocksBelow(Limit));
  EXPECT_EQ(Fast.largestBlockBelow(Limit), Ref.largestBlockBelow(Limit));
  EXPECT_EQ(Fast.freeWordsBelow(Limit), Ref.freeWordsBelow(Limit));
}

/// Full structural comparison: both indexes hold exactly the same blocks
/// in the same order.
void expectBlocksMatch(const FreeSpaceIndex &Fast,
                       const ReferenceFreeSpaceIndex &Ref, int Op) {
  SCOPED_TRACE(::testing::Message() << "op " << Op);
  auto FIt = Fast.begin();
  for (const auto &[Start, End] : Ref) {
    ASSERT_NE(FIt, Fast.end());
    EXPECT_EQ((*FIt).first, Start);
    EXPECT_EQ((*FIt).second, End);
    ++FIt;
  }
  EXPECT_EQ(FIt, Fast.end());
}

class IndexEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalence, RandomOpsMatchReference) {
  const uint64_t Seed = GetParam();
  Rng R(Seed);
  FreeSpaceIndex Fast;
  ReferenceFreeSpaceIndex Ref;
  // Ranges currently reserved in both indexes, eligible for release.
  std::vector<std::pair<Addr, uint64_t>> Reserved;
  constexpr Addr Region = Addr(1) << 20;
  constexpr int NumOps = 10000;

  for (int Op = 0; Op != NumOps; ++Op) {
    if (Reserved.empty() || R.nextBool(0.55)) {
      // Reserve at a placement chosen by one of the real policies'
      // queries, so the streams hit the same block shapes the managers
      // produce (splits at both ends, exact fills, aligned holes).
      uint64_t Size = (uint64_t(1) << R.nextBelow(10)) + R.nextBelow(16);
      Addr A = InvalidAddr;
      switch (R.nextBelow(4)) {
      case 0:
        A = Ref.firstFit(Size);
        break;
      case 1:
        A = Ref.bestFit(Size);
        break;
      case 2:
        A = Ref.firstFitFrom(R.nextBelow(Region), Size);
        break;
      case 3:
        A = Ref.firstFitAligned(Size, uint64_t(1) << R.nextBelow(8));
        break;
      }
      ASSERT_TRUE(Ref.isFree(A, Size));
      Fast.reserve(A, Size);
      Ref.reserve(A, Size);
      Reserved.emplace_back(A, Size);
    } else {
      size_t I = R.nextBelow(Reserved.size());
      auto [A, Size] = Reserved[I];
      Fast.release(A, Size);
      Ref.release(A, Size);
      Reserved[I] = Reserved.back();
      Reserved.pop_back();
    }

    uint64_t QSize = uint64_t(1) << R.nextBelow(14);
    QSize += R.nextBelow(QSize);
    Addr From = R.nextBelow(Region + Region / 4);
    uint64_t Align = uint64_t(1) << R.nextBelow(10);
    Addr Limit = 1 + R.nextBelow(Region);
    expectQueriesMatch(Fast, Ref, QSize, From, Align, Limit, Op);
    if (HasFailure())
      FAIL() << "first divergence at op " << Op << " (seed " << Seed << ")";
    if (Op % 256 == 0)
      expectBlocksMatch(Fast, Ref, Op);
  }
  expectBlocksMatch(Fast, Ref, NumOps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Checkerboard stress: thousands of single-word gaps force the flat index
// through leaf splits on the way up and cross-leaf coalescing on the way
// down, with the reference checked at every step of the teardown.
TEST(IndexEquivalenceStress, CheckerboardSplitsAndCoalesces) {
  FreeSpaceIndex Fast;
  ReferenceFreeSpaceIndex Ref;
  constexpr int N = 4096;
  for (Addr A = 0; A != 2 * N; A += 2) {
    Fast.reserve(A, 1);
    Ref.reserve(A, 1);
  }
  expectBlocksMatch(Fast, Ref, 0);
  // Free the even words in a scrambled but deterministic order so
  // coalescing happens left, right, both, and across leaf boundaries.
  Rng R(99);
  std::vector<Addr> Order;
  for (Addr A = 0; A != 2 * N; A += 2)
    Order.push_back(A);
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);
  int Op = 0;
  for (Addr A : Order) {
    Fast.release(A, 1);
    Ref.release(A, 1);
    EXPECT_EQ(Fast.numBlocks(), Ref.numBlocks());
    EXPECT_EQ(Fast.firstFit(2), Ref.firstFit(2));
    EXPECT_EQ(Fast.largestBlockBelow(2 * N), Ref.largestBlockBelow(2 * N));
    if (++Op % 512 == 0)
      expectBlocksMatch(Fast, Ref, Op);
  }
  expectBlocksMatch(Fast, Ref, Op);
  EXPECT_EQ(Fast.numBlocks(), 1u);
}

// Mask extraction at word boundaries: occupancy spans read back from the
// packed board must agree with per-bit queries for every alignment of
// the read window — including reads straddling the bit-63 -> bit-64 seam,
// whole used and whole free words, widths that are not multiples of 64,
// and windows reaching past the committed prefix (zero-extended).
TEST(IndexEquivalenceStress, MaskExtractionAtWordBoundaries) {
  FreeSpaceIndex Fast;
  const std::vector<std::pair<Addr, uint64_t>> Ranges = {
      {62, 4},    // straddles the word 0 -> word 1 seam
      {128, 64},  // exactly word 2, a full used word
      {193, 63},  // odd start, ends flush at a word boundary
      {257, 130}, // crosses two boundaries with an odd width
  };
  for (auto [S, Sz] : Ranges)
    Fast.reserve(S, Sz);

  auto CheckWindow = [&](Addr Start) {
    std::array<uint64_t, 8> Out{};
    Fast.occupancyWords(Start, Out.size(), Out.data());
    for (unsigned B = 0; B != unsigned(Out.size()) * 64; ++B) {
      uint64_t Got = (Out[B / 64] >> (B % 64)) & 1;
      uint64_t Want = Fast.isFree(Start + B, 1) ? 0 : 1;
      ASSERT_EQ(Got, Want) << "window at " << Start << ", bit " << B;
    }
  };
  for (Addr Start : {Addr(0), Addr(1), Addr(62), Addr(63), Addr(64),
                     Addr(127), Addr(128), Addr(200), Addr(384)})
    CheckWindow(Start);

  // Releasing the seam-straddling and full-word ranges must clear the
  // same windows bit-for-bit.
  Fast.release(62, 4);
  Fast.release(128, 64);
  for (Addr Start : {Addr(0), Addr(62), Addr(63), Addr(64), Addr(127)})
    CheckWindow(Start);
}

} // namespace
