//===- tests/support_test.cpp - Unit tests for src/support ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"
#include "support/MathUtils.h"
#include "support/OptionParser.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

using namespace pcb;

namespace {

TEST(MathUtils, PowersOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(uint64_t(1) << 40));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(6));
  EXPECT_FALSE(isPowerOfTwo(uint64_t(1) << 40 | 1));
}

TEST(MathUtils, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), uint64_t(1) << 63);
}

TEST(MathUtils, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4), 2u);
  EXPECT_EQ(log2Floor(1023), 9u);
  EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(MathUtils, Log2Ceil) {
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(2), 1u);
  EXPECT_EQ(log2Ceil(3), 2u);
  EXPECT_EQ(log2Ceil(4), 2u);
  EXPECT_EQ(log2Ceil(5), 3u);
  EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(MathUtils, Alignment) {
  EXPECT_EQ(alignUp(0, 8), 0u);
  EXPECT_EQ(alignUp(1, 8), 8u);
  EXPECT_EQ(alignUp(8, 8), 8u);
  EXPECT_EQ(alignUp(9, 8), 16u);
  EXPECT_EQ(alignDown(7, 8), 0u);
  EXPECT_EQ(alignDown(8, 8), 8u);
  EXPECT_EQ(alignDown(15, 8), 8u);
}

TEST(MathUtils, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(0), 1u);
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(4), 4u);
  EXPECT_EQ(nextPowerOfTwo(5), 8u);
}

TEST(MathUtils, CeilDivAndSatSub) {
  EXPECT_EQ(ceilDiv(0, 4), 0u);
  EXPECT_EQ(ceilDiv(1, 4), 1u);
  EXPECT_EQ(ceilDiv(4, 4), 1u);
  EXPECT_EQ(ceilDiv(5, 4), 2u);
  EXPECT_EQ(satSub(5, 3), 2u);
  EXPECT_EQ(satSub(3, 5), 0u);
}

TEST(Random, Determinism) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Random, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    uint64_t V = R.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, RoughUniformity) {
  Rng R(11);
  std::map<uint64_t, int> Counts;
  const int Draws = 80000;
  for (int I = 0; I != Draws; ++I)
    ++Counts[R.nextBelow(8)];
  for (uint64_t V = 0; V != 8; ++V) {
    EXPECT_GT(Counts[V], Draws / 8 - Draws / 40);
    EXPECT_LT(Counts[V], Draws / 8 + Draws / 40);
  }
}

TEST(Table, AlignedOutput) {
  Table T({"a", "bb"});
  T.beginRow();
  T.addCell(uint64_t(7));
  T.addCell(std::string("x"));
  std::ostringstream OS;
  T.printAligned(OS);
  EXPECT_EQ(OS.str(), "a  bb\n"
                      "-  --\n"
                      "7   x\n");
}

TEST(Table, CsvEscaping) {
  Table T({"name"});
  T.beginRow();
  T.addCell(std::string("a,b\"c"));
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "name\n\"a,b\"\"c\"\n");
}

TEST(Table, DoubleFormatting) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(Table, FormatWords) {
  EXPECT_EQ(formatWords(0), "0");
  EXPECT_EQ(formatWords(512), "512");
  EXPECT_EQ(formatWords(1024), "1K");
  EXPECT_EQ(formatWords(uint64_t(256) << 20), "256M");
  EXPECT_EQ(formatWords(uint64_t(1) << 30), "1G");
  EXPECT_EQ(formatWords(1536), "1536"); // not a whole number of KiB
}

TEST(AsciiChart, RendersSeriesGlyphsAndLegend) {
  AsciiChart::Options Opts;
  Opts.Width = 16;
  Opts.Height = 5;
  Opts.YMin = 0.0;
  Opts.YMax = 4.0;
  AsciiChart Chart(0.0, 10.0, Opts);
  Chart.addSeries(ChartSeries{"rising", '#', {0.0, 1.0, 2.0, 3.0, 4.0}});
  Chart.addSeries(ChartSeries{"flat", '.', {2.0, 2.0, 2.0, 2.0, 2.0}});
  std::ostringstream OS;
  Chart.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find('#'), std::string::npos);
  EXPECT_NE(Out.find('.'), std::string::npos);
  EXPECT_NE(Out.find("# = rising"), std::string::npos);
  EXPECT_NE(Out.find(". = flat"), std::string::npos);
  // The top Y label is the requested maximum, the bottom the minimum.
  EXPECT_NE(Out.find("4.00 |"), std::string::npos);
  EXPECT_NE(Out.find("0.00 |"), std::string::npos);
  // The rising series reaches the top-right region; the flat series sits
  // on its own row throughout.
  size_t TopRow = Out.find("4.00 |");
  size_t TopRowEnd = Out.find('\n', TopRow);
  EXPECT_NE(Out.substr(TopRow, TopRowEnd - TopRow).find('#'),
            std::string::npos);
}

TEST(AsciiChart, AutoScalesAndSkipsNaN) {
  AsciiChart Chart(0.0, 1.0);
  double NaN = std::nan("");
  Chart.addSeries(ChartSeries{"partial", '*', {NaN, 5.0, 7.0, NaN}});
  std::ostringstream OS;
  Chart.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find('*'), std::string::npos);
  // Auto-scale must cover [5, 7] with padding.
  EXPECT_NE(Out.find("|"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesDoesNotCrash) {
  AsciiChart Chart(0.0, 1.0);
  Chart.addSeries(ChartSeries{"empty", '#', {}});
  std::ostringstream OS;
  Chart.print(OS);
  EXPECT_FALSE(OS.str().empty());
}

TEST(AsciiChart, SinglePointSeries) {
  // One sample: auto-scale sees YMin == YMax and must still render the
  // glyph somewhere on the canvas instead of dividing by a zero range.
  AsciiChart Chart(0.0, 1.0);
  Chart.addSeries(ChartSeries{"point", '@', {42.0}});
  std::ostringstream OS;
  Chart.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find('@'), std::string::npos);
  EXPECT_NE(Out.find("@ = point"), std::string::npos);
}

TEST(AsciiChart, DegenerateExplicitRange) {
  // YMin == YMax passed explicitly means "auto-scale"; a flat series then
  // still has a zero data range, which must widen rather than divide by 0.
  AsciiChart::Options Opts;
  Opts.YMin = 3.0;
  Opts.YMax = 3.0;
  AsciiChart Chart(0.0, 4.0, Opts);
  Chart.addSeries(ChartSeries{"flat", '#', {3.0, 3.0, 3.0}});
  std::ostringstream OS;
  Chart.print(OS);
  EXPECT_NE(OS.str().find('#'), std::string::npos);
}

TEST(AsciiChart, AllNaNSeriesRendersAxesOnly) {
  double NaN = std::nan("");
  AsciiChart Chart(0.0, 1.0);
  Chart.addSeries(ChartSeries{"gaps", '*', {NaN, NaN, NaN}});
  std::ostringstream OS;
  Chart.print(OS);
  std::string Out = OS.str();
  // Nothing to plot: the glyph appears exactly once, in the legend, and
  // the frame still renders.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '*'), 1);
  EXPECT_NE(Out.find('|'), std::string::npos);
  EXPECT_NE(Out.find("* = gaps"), std::string::npos);
}

TEST(Statistics, EmptyStatIsAllZeros) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(Statistics, ConstantSeriesHasZeroSpread) {
  RunningStat S;
  for (int I = 0; I != 100; ++I)
    S.add(-2.5);
  EXPECT_EQ(S.count(), 100u);
  EXPECT_DOUBLE_EQ(S.mean(), -2.5);
  EXPECT_DOUBLE_EQ(S.min(), -2.5);
  EXPECT_DOUBLE_EQ(S.max(), -2.5);
  // Welford's update must not accumulate rounding noise on a constant.
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(Statistics, ExtremeMagnitudesStayFinite) {
  // Largest magnitudes whose squared deviations still fit in a double;
  // Welford's M2 must stay finite and symmetric samples cancel exactly.
  RunningStat S;
  S.add(1e150);
  S.add(-1e150);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_TRUE(std::isfinite(S.stddev()));
  EXPECT_DOUBLE_EQ(S.min(), -1e150);
  EXPECT_DOUBLE_EQ(S.max(), 1e150);
}

TEST(Statistics, StreamingMoments) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  // Sample stddev of the classic example set: sqrt(32/7).
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Statistics, SingleSample) {
  RunningStat S;
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_DOUBLE_EQ(S.min(), 3.5);
  EXPECT_DOUBLE_EQ(S.max(), 3.5);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(OptionParser, ParsesPairsAndPositionals) {
  const char *Argv[] = {"tool", "M=256M", "--c=50", "run", "x=not-a-number"};
  OptionParser P(5, Argv);
  EXPECT_TRUE(P.has("M"));
  EXPECT_EQ(P.getUInt("M", 0), uint64_t(256) << 20);
  EXPECT_EQ(P.getUInt("c", 0), 50u);
  EXPECT_EQ(P.getUInt("x", 9), 9u); // malformed falls back
  EXPECT_EQ(P.getUInt("absent", 3), 3u);
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "run");
}

TEST(OptionParser, WordCountSuffixes) {
  uint64_t V = 0;
  EXPECT_TRUE(OptionParser::parseWordCount("17", V));
  EXPECT_EQ(V, 17u);
  EXPECT_TRUE(OptionParser::parseWordCount("2K", V));
  EXPECT_EQ(V, 2048u);
  EXPECT_TRUE(OptionParser::parseWordCount("3m", V));
  EXPECT_EQ(V, uint64_t(3) << 20);
  EXPECT_TRUE(OptionParser::parseWordCount("1G", V));
  EXPECT_EQ(V, uint64_t(1) << 30);
  EXPECT_FALSE(OptionParser::parseWordCount("", V));
  EXPECT_FALSE(OptionParser::parseWordCount("K", V));
  EXPECT_FALSE(OptionParser::parseWordCount("5X", V));
  EXPECT_FALSE(OptionParser::parseWordCount("5KB", V));
}

TEST(OptionParser, MalformedPairs) {
  // "key=" (empty value) stays an option with an empty value; "=value"
  // has no key and is a positional; bare "=" likewise.
  const char *Argv[] = {"tool", "key=", "=value", "="};
  OptionParser P(4, Argv);
  EXPECT_TRUE(P.has("key"));
  EXPECT_EQ(P.getString("key", "fallback"), "");
  EXPECT_EQ(P.getUInt("key", 7), 7u); // empty value is malformed
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "=value");
  EXPECT_EQ(P.positional()[1], "=");
}

TEST(OptionParser, DuplicateKeysLastWins) {
  const char *Argv[] = {"tool", "n=1", "n=2", "--n=3"};
  OptionParser P(4, Argv);
  EXPECT_EQ(P.getUInt("n", 0), 3u);
}

TEST(OptionParser, OutOfRangeIntegersAreMalformed) {
  uint64_t V = 0;
  // UINT64_MAX parses; one more does not wrap around.
  EXPECT_TRUE(OptionParser::parseWordCount("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_FALSE(OptionParser::parseWordCount("18446744073709551616", V));
  // Suffix scaling must not wrap either.
  EXPECT_TRUE(OptionParser::parseWordCount("17179869183G", V));
  EXPECT_FALSE(OptionParser::parseWordCount("17179869184G", V));
  EXPECT_FALSE(OptionParser::parseWordCount("99999999999999999999K", V));

  const char *Argv[] = {"tool", "big=18446744073709551616",
                        "huge=17179869184G", "neg=-5"};
  OptionParser P(4, Argv);
  EXPECT_EQ(P.getUInt("big", 42), 42u);
  EXPECT_EQ(P.getUInt("huge", 42), 42u);
  // Word counts are unsigned; a negative value is malformed, while
  // getDouble accepts it.
  EXPECT_EQ(P.getUInt("neg", 42), 42u);
  EXPECT_DOUBLE_EQ(P.getDouble("neg", 0.0), -5.0);
}

TEST(OptionParser, DoublesAndBools) {
  const char *Argv[] = {"tool", "t=0.25", "v=true", "w=0"};
  OptionParser P(4, Argv);
  EXPECT_DOUBLE_EQ(P.getDouble("t", 1.0), 0.25);
  EXPECT_TRUE(P.getBool("v", false));
  EXPECT_FALSE(P.getBool("w", true));
  EXPECT_TRUE(P.getBool("absent", true));
}

} // namespace
