//===- tests/exact_test.cpp - Unit tests for src/exact --------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The solver is the repo's ground truth, so it is tested three ways:
// hand-checkable micro-cases whose game values can be verified on paper,
// the full sandwich sweep of the certification grid, and a replay of the
// extracted witness through the real Heap + CompactionLedger, cross-
// checking the solver's bitboard states against the heap's at every step.
//
//===----------------------------------------------------------------------===//

#include "exact/Certifier.h"
#include "exact/ExactGame.h"
#include "exact/MinimaxSolver.h"
#include "exact/WitnessTrace.h"

#include "driver/Auditors.h"
#include "driver/TraceIO.h"
#include "heap/Heap.h"
#include "mm/CompactionLedger.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <sstream>

using namespace pcb;

namespace {

ExactParams cell(uint64_t M, uint64_t N, uint64_t C) {
  ExactParams P;
  P.M = M;
  P.N = N;
  P.C = C;
  return P;
}

// --- Layout primitives --------------------------------------------------

TEST(ArenaLayout, PlaceAndRemove) {
  ArenaLayout L;
  L = layoutPlace(L, 2, 1); // [1, 3)
  L = layoutPlace(L, 1, 4); // [4, 5)
  EXPECT_EQ(L.Occ, 0b10110u);
  EXPECT_EQ(L.Starts, 0b10010u);
  EXPECT_EQ(layoutLiveWords(L), 3u);
  EXPECT_FALSE(layoutFits(L, 8, 2, 2)); // overlaps [1, 3)
  EXPECT_TRUE(layoutFits(L, 8, 1, 3));
  EXPECT_TRUE(layoutFits(L, 8, 2, 5));
  EXPECT_FALSE(layoutFits(L, 8, 2, 7)); // past the arena end
  L = layoutRemove(L, 2, 1);
  EXPECT_EQ(L.Occ, 0b10000u);
  EXPECT_EQ(L.Starts, 0b10000u);
}

TEST(ArenaLayout, ObjectSizeSplitsAdjacentObjects) {
  // Two size-2 objects back to back: the start bit at 2 must terminate
  // the first object's extent even though occupancy is contiguous.
  ArenaLayout L;
  L = layoutPlace(L, 2, 0);
  L = layoutPlace(L, 2, 2);
  EXPECT_EQ(layoutObjectSize(L, 8, 0), 2u);
  EXPECT_EQ(layoutObjectSize(L, 8, 2), 2u);

  std::map<unsigned, unsigned> Objects;
  forEachLayoutObject(L, 8, [&](unsigned Start, unsigned Size) {
    Objects[Start] = Size;
  });
  EXPECT_EQ(Objects, (std::map<unsigned, unsigned>{{0, 2}, {2, 2}}));
}

TEST(ArenaLayout, MirrorAndCanonical) {
  // One size-2 object at [0, 2) of a 5-cell arena mirrors to [3, 5).
  ArenaLayout L = layoutPlace({}, 2, 0);
  ArenaLayout Mir = mirrorLayout(L, 5);
  EXPECT_EQ(Mir.Occ, 0b11000u);
  EXPECT_EQ(Mir.Starts, 0b01000u);
  // Mirror is an involution, and both orientations share one canonical
  // representative.
  EXPECT_EQ(mirrorLayout(Mir, 5), L);
  EXPECT_EQ(canonicalLayout(L, 5), canonicalLayout(Mir, 5));
}

// --- Hand-checkable game values -----------------------------------------

TEST(ExactSolver, UnitObjectsNeedExactlyM) {
  // With n = 1 there is no fragmentation: any manager keeps every
  // placement inside [0, M), and M live words are trivially forced.
  for (uint64_t M : {1, 2, 4, 5})
    for (uint64_t C : {0, 1, 4}) {
      ExactResult R = solveExact(cell(M, 1, C));
      ASSERT_TRUE(R.Solved) << "M=" << M << " c=" << C;
      EXPECT_EQ(R.ExactWords, M) << "M=" << M << " c=" << C;
    }
}

TEST(ExactSolver, SmallestFragmentingCell) {
  // M = 2, n = 2, non-moving: the adversary would need a hole under a
  // live word to force 3 cells, but with only one unit object live it
  // can free nothing useful — 2 cells suffice. Verifiable by hand: the
  // manager plays "place at the lowest free address".
  ExactResult R = solveExact(cell(2, 2, 0));
  ASSERT_TRUE(R.Solved);
  EXPECT_EQ(R.ExactWords, 2u);
}

TEST(ExactSolver, ClassicCheckerboardForcing) {
  // M = 4, n = 2, non-moving. Robson's classic play: allocate four unit
  // objects at [0, 4), free those at addresses 1 and 3, then request a
  // size-2 object — no aligned-free pair exists below address 4, so the
  // manager is forced to 5 cells. Conversely 5 cells always suffice
  // (Robson's formula: 4 * (1/2 + 1) - 2 + 1 = 5).
  ExactResult R = solveExact(cell(4, 2, 0));
  ASSERT_TRUE(R.Solved);
  EXPECT_EQ(R.ExactWords, 5u);
}

TEST(ExactSolver, NonPowerOfTwoLiveBounds) {
  // The solver does not need the closed forms' power-of-two M. Probed
  // values, stable under the determinism contract: M = 3 can hold one
  // checkerboard hole (4 cells), M = 6 two of them (8 cells).
  ExactResult R3 = solveExact(cell(3, 2, 0));
  ASSERT_TRUE(R3.Solved);
  EXPECT_EQ(R3.ExactWords, 4u);
  ExactResult R6 = solveExact(cell(6, 2, 0));
  ASSERT_TRUE(R6.Solved);
  EXPECT_EQ(R6.ExactWords, 8u);
}

TEST(ExactSolver, CompactionShrinksTheForcedHeap) {
  // At M = 8, n = 2 the non-moving value is Robson's 11; a 1-partial
  // manager (move a word per allocated word) holds the adversary to the
  // trivial 8.
  ExactResult Free = solveExact(cell(8, 2, 1));
  ExactResult None = solveExact(cell(8, 2, 0));
  ASSERT_TRUE(Free.Solved && None.Solved);
  EXPECT_EQ(Free.ExactWords, 8u);
  EXPECT_EQ(None.ExactWords, 11u);
}

// --- Certification ------------------------------------------------------

TEST(Certifier, RobsonEqualityAtInfinity) {
  // The paper's Section 3 claim, checked against ground truth: at
  // c = infinity the exact game value *equals* Robson's matching formula
  // M (log n / 2 + 1) - n + 1 on every power-of-two cell.
  for (auto [M, N] : std::vector<std::pair<uint64_t, uint64_t>>{
           {2, 2}, {4, 2}, {8, 2}, {4, 4}, {8, 4}}) {
    ExactParams P = cell(M, N, 0);
    ExactCertificate Cert = certifyCell(P, solveExact(P));
    ASSERT_TRUE(Cert.Result.Solved) << Cert.describe();
    EXPECT_TRUE(Cert.RobsonMatch) << Cert.describe();
    EXPECT_DOUBLE_EQ(double(Cert.Result.ExactWords), P.robsonWords())
        << Cert.describe();
    EXPECT_TRUE(Cert.ok()) << Cert.describe();
  }
}

TEST(Certifier, FullSandwichSweep) {
  // Every cell of the default certification grid: Theorem 1 forced <=
  // exact <= best upper bound, Robson equality at c = infinity.
  for (uint64_t M : {2, 4, 8})
    for (uint64_t N : {2, 4})
      for (uint64_t C : {1, 2, 4, 0}) {
        if (N > M)
          continue;
        ExactParams P = cell(M, N, C);
        ExactCertificate Cert = certifyCell(P, solveExact(P));
        EXPECT_TRUE(Cert.ok()) << Cert.describe();
      }
}

TEST(Certifier, StrictSeparation) {
  // At M = 4, n = 2, c = 4 the ground truth (5) falls strictly between
  // Theorem 1 (4) and Theorem 2 (15): the acceptance criterion that the
  // paper's bounds are not tight at small parameters.
  ExactParams P = cell(4, 2, 4);
  ExactCertificate Cert = certifyCell(P, solveExact(P));
  ASSERT_TRUE(Cert.ok()) << Cert.describe();
  EXPECT_TRUE(Cert.Strict) << Cert.describe();
  EXPECT_LT(Cert.LowerWords, double(Cert.Result.ExactWords));
  EXPECT_LT(double(Cert.Result.ExactWords), Cert.Theorem2Words);
}

TEST(Certifier, MonotoneInQuota) {
  // A larger quota denominator means less compaction, so the forced heap
  // can only grow; c = infinity dominates all finite c.
  for (auto [M, N] : std::vector<std::pair<uint64_t, uint64_t>>{
           {8, 2}, {8, 4}}) {
    uint64_t Last = 0;
    for (uint64_t C : {1, 2, 4, 0}) {
      ExactResult R = solveExact(cell(M, N, C));
      ASSERT_TRUE(R.Solved);
      EXPECT_GE(R.ExactWords, Last) << "M=" << M << " n=" << N << " c=" << C;
      Last = R.ExactWords;
    }
    // ... and compaction genuinely helps at these cells.
    EXPECT_GT(Last, solveExact(cell(M, N, 1)).ExactWords);
  }
}

TEST(Certifier, UnsolvedCellNeverCertifies) {
  ExactParams P = cell(8, 4, 4);
  P.NodeLimit = 100; // far below the ~265k reachable states
  ExactResult R = solveExact(P);
  EXPECT_FALSE(R.Solved);
  EXPECT_TRUE(R.Aborted);
  ExactCertificate Cert = certifyCell(P, R);
  EXPECT_FALSE(Cert.ok());
}

TEST(ExactSolver, BudgetCapDoesNotBindOnTheGrid) {
  // The banked budget is capped (a manager-weakening approximation that
  // keeps upper certificates sound); on the certification grid the cap
  // must not bind — doubling it cannot change any value.
  for (auto [M, N] : std::vector<std::pair<uint64_t, uint64_t>>{
           {4, 2}, {8, 2}}) {
    ExactParams P = cell(M, N, 4);
    ExactParams Doubled = P;
    Doubled.BudgetCap = 2 * P.budgetCap();
    EXPECT_EQ(solveExact(P).ExactWords, solveExact(Doubled).ExactWords)
        << "M=" << M << " n=" << N;
  }
}

TEST(ExactSolver, DeterministicResolve) {
  ExactResult A = solveExact(cell(4, 2, 2));
  ExactResult B = solveExact(cell(4, 2, 2));
  ASSERT_TRUE(A.Solved && B.Solved);
  EXPECT_EQ(A.ExactWords, B.ExactWords);
  ASSERT_EQ(A.Witness.size(), B.Witness.size());
  for (size_t I = 0; I != A.Witness.size(); ++I) {
    EXPECT_EQ(A.Witness[I].Op, B.Witness[I].Op);
    EXPECT_EQ(A.Witness[I].Size, B.Witness[I].Size);
    EXPECT_EQ(A.Witness[I].Addr, B.Witness[I].Addr);
    EXPECT_EQ(A.Witness[I].To, B.Witness[I].To);
  }
}

// --- Witness replay through the real heap -------------------------------

/// Two-word shadow bitboard: wide enough to exercise the heap's span
/// extraction (occupancyWords/objectStartWords with Count > 1) rather
/// than the single-word convenience masks.
struct ShadowBoard {
  std::array<uint64_t, 2> W{};

  void setRange(unsigned Pos, unsigned Size) {
    for (unsigned B = Pos; B != Pos + Size; ++B)
      W[B / 64] |= uint64_t(1) << (B % 64);
  }
  void clearRange(unsigned Pos, unsigned Size) {
    for (unsigned B = Pos; B != Pos + Size; ++B)
      W[B / 64] &= ~(uint64_t(1) << (B % 64));
  }
};

/// Replays \p Witness into a fresh Heap, cross-checking the heap's
/// occupancy/start bitboards (the canonicalization hooks) against a
/// mirror maintained from the arena ops, and the c-partial ledger after
/// every move. Leaves the final heap stats in \p Out (gtest ASSERTs force
/// a void return type).
void replayWitness(const ExactParams &P,
                   const std::vector<WitnessOp> &Witness, HeapStats &Out) {
  Heap H;
  // Ledger convention clash (see ExactParams): its C <= 0 means
  // *unlimited*, so the solver's C = 0 (non-moving) maps to a quota no
  // witness can legally draw on.
  CompactionLedger Ledger(H, P.C == 0 ? 1e18 : double(P.C));
  std::map<unsigned, ObjectId> ByAddr;
  ShadowBoard Occ, Starts;

  for (const WitnessOp &Op : Witness) {
    switch (Op.Op) {
    case WitnessOp::Kind::Alloc: {
      ByAddr[Op.Addr] = H.place(Op.Addr, Op.Size);
      Occ.setRange(Op.Addr, Op.Size);
      Starts.setRange(Op.Addr, 1);
      break;
    }
    case WitnessOp::Kind::Free: {
      auto It = ByAddr.find(Op.Addr);
      ASSERT_NE(It, ByAddr.end()) << "free of an unknown address";
      EXPECT_EQ(H.object(It->second).Size, Op.Size);
      H.free(It->second);
      Occ.clearRange(Op.Addr, Op.Size);
      Starts.clearRange(Op.Addr, 1);
      ByAddr.erase(It);
      break;
    }
    case WitnessOp::Kind::Move: {
      auto It = ByAddr.find(Op.Addr);
      ASSERT_NE(It, ByAddr.end()) << "move of an unknown address";
      ObjectId Id = It->second;
      EXPECT_TRUE(Ledger.canMove(Op.Size))
          << "witness move exceeds the c-partial budget";
      H.move(Id, Op.To);
      Occ.clearRange(Op.Addr, Op.Size);
      Starts.clearRange(Op.Addr, 1);
      Occ.setRange(Op.To, Op.Size);
      Starts.setRange(Op.To, 1);
      ByAddr.erase(It);
      ByAddr[Op.To] = Id;
      break;
    }
    }
    EXPECT_TRUE(H.checkConsistency());
    std::array<uint64_t, 2> GotOcc{}, GotStarts{};
    H.occupancyWords(0, GotOcc.size(), GotOcc.data());
    H.objectStartWords(0, GotStarts.size(), GotStarts.data());
    EXPECT_EQ(GotOcc, Occ.W);
    EXPECT_EQ(GotStarts, Starts.W);
    EXPECT_LE(H.stats().LiveWords, P.M) << "witness breached the live bound";
    EXPECT_TRUE(Ledger.holds());
  }
  Out = H.stats();
}

TEST(Witness, ForcesTheExactFootprintThroughARealHeap) {
  for (auto [M, N, C] : std::vector<std::tuple<uint64_t, uint64_t, uint64_t>>{
           {4, 2, 0}, {8, 2, 0}, {4, 2, 4}, {8, 2, 4}, {8, 4, 2}}) {
    ExactParams P = cell(M, N, C);
    ExactResult R = solveExact(P);
    ASSERT_TRUE(R.Solved);
    ASSERT_FALSE(R.Witness.empty());
    HeapStats Stats;
    {
      SCOPED_TRACE("M=" + std::to_string(M) + " n=" + std::to_string(N) +
                   " c=" + std::to_string(C));
      replayWitness(P, R.Witness, Stats);
    }
    // The witness's point: the play ends having touched at least
    // ExactWords cells even against the optimally-resisting manager.
    EXPECT_GE(Stats.HighWaterMark, R.ExactWords);
  }
}

TEST(Witness, NonMovingWitnessNeverMoves) {
  ExactResult R = solveExact(cell(8, 2, 0));
  ASSERT_TRUE(R.Solved);
  for (const WitnessOp &Op : R.Witness)
    EXPECT_NE(Op.Op, WitnessOp::Kind::Move);
}

TEST(Witness, EventLogRoundTripsThroughTraceIO) {
  ExactResult R = solveExact(cell(8, 2, 4));
  ASSERT_TRUE(R.Solved);
  EventLog Log = witnessToEventLog(R.Witness);

  AuditReport Audit = auditEvents(Log.events());
  EXPECT_TRUE(Audit.Consistent);
  EXPECT_GE(Audit.HighWaterMark, R.ExactWords);

  std::stringstream SS;
  writeEventLog(SS, Log);
  EventLog Back;
  std::string Error;
  ASSERT_TRUE(readEventLog(SS, Back, &Error)) << Error;
  ASSERT_EQ(Back.size(), Log.size());
  EXPECT_TRUE(validateTrace(Back.toTrace()));
}

} // namespace
