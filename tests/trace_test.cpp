//===- tests/trace_test.cpp - Trace engine and budget controllers --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Four layers of confidence in the trace engine:
//
//   1. Wire format: both framings round-trip op-for-op and stat-for-stat,
//      and every class of structural or schedule damage is rejected with
//      a diagnostic naming the offending line (text) or record (binary).
//   2. Streaming: a million-op trace streamed through the full stack is
//      byte-identical to the same trace materialized and replayed, while
//      the reader's and program's only trace-size-dependent state (the
//      live-id window) stays bounded by the schedule's live volume.
//   3. Controllers: the square-root rule is checked against hand-computed
//      targets, the fixed trigger is byte-identical to an ungated run,
//      and an attached controller really gates the manager's moves.
//   4. Cross-policy: every controller preserves the differential
//      harness's manager-independence invariants across the whole policy
//      family, and trace-backed fuzz windows are well-formed schedules.
//
//===----------------------------------------------------------------------===//

#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "fuzz/DifferentialHarness.h"
#include "fuzz/WorkloadFuzzer.h"
#include "heap/Heap.h"
#include "mm/ManagerFactory.h"
#include "trace/BudgetController.h"
#include "trace/TraceFormat.h"
#include "trace/TraceReader.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceRun.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

using namespace pcb;

namespace {

/// A small schedule exercising id reuse: ids name allocations, so id 1
/// may come back after its free.
std::vector<MallocOp> sampleOps() {
  using K = MallocOp::Kind;
  return {
      {K::Alloc, 1, 8}, {K::Alloc, 2, 3},  {K::Free, 1, 0},
      {K::Alloc, 1, 5}, {K::Alloc, 7, 16}, {K::Free, 2, 0},
      {K::Free, 1, 0},  {K::Alloc, 3, 1},
  };
}

std::string serialize(const std::vector<MallocOp> &Ops, TraceFraming F) {
  std::ostringstream OS;
  TraceWriter W(OS, F);
  for (const MallocOp &Op : Ops)
    W.record(Op);
  EXPECT_TRUE(W.good());
  return OS.str();
}

std::vector<MallocOp> readAll(TraceReader &R) {
  std::vector<MallocOp> Ops;
  MallocOp Op;
  while (R.next(Op))
    Ops.push_back(Op);
  return Ops;
}

/// Expects the reader over \p Text to fail with \p Diagnostic somewhere
/// in its error message.
void expectRejected(const std::string &Text, const std::string &Diagnostic) {
  std::istringstream IS(Text);
  TraceReader R(IS);
  readAll(R);
  ASSERT_TRUE(R.failed()) << "accepted damaged input: " << Text;
  EXPECT_NE(R.error().find(Diagnostic), std::string::npos)
      << "diagnostic '" << R.error() << "' lacks '" << Diagnostic << "'";
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Wire format: round trips
//===----------------------------------------------------------------------===//

TEST(TraceFormat, TextRoundtripStatIdentity) {
  std::istringstream IS(serialize(sampleOps(), TraceFraming::Text));
  TraceReader R(IS);
  std::vector<MallocOp> Ops = readAll(R);
  ASSERT_FALSE(R.failed()) << R.error();
  EXPECT_EQ(R.framing(), TraceFraming::Text);
  EXPECT_EQ(Ops.size(), sampleOps().size());
  EXPECT_EQ(R.numAllocs(), 5u);
  EXPECT_EQ(R.numFrees(), 3u);
  EXPECT_EQ(R.allocatedWords(), 8u + 3 + 5 + 16 + 1);
  // Peak live: {1:8,2:3} -> 11, then {2:3,1:5,7:16} -> 24.
  EXPECT_EQ(R.peakLiveWords(), 24u);
  EXPECT_EQ(R.liveWords(), 16u + 1);
  EXPECT_EQ(R.maxLiveWindow(), 3u);
}

TEST(TraceFormat, BinaryRoundtripStatIdentity) {
  std::string Blob = serialize(sampleOps(), TraceFraming::Binary);
  EXPECT_EQ(Blob.compare(0, 4, "PCBT"), 0);
  std::istringstream IS(Blob);
  TraceReader R(IS);
  std::vector<MallocOp> Ops = readAll(R);
  ASSERT_FALSE(R.failed()) << R.error();
  EXPECT_EQ(R.framing(), TraceFraming::Binary);
  EXPECT_EQ(Ops.size(), sampleOps().size());
  EXPECT_EQ(R.numAllocs(), 5u);
  EXPECT_EQ(R.numFrees(), 3u);
  EXPECT_EQ(R.allocatedWords(), 33u);
  EXPECT_EQ(R.peakLiveWords(), 24u);
}

TEST(TraceFormat, FramingsCarryIdenticalOps) {
  std::istringstream TextIS(serialize(sampleOps(), TraceFraming::Text));
  std::istringstream BinIS(serialize(sampleOps(), TraceFraming::Binary));
  TraceReader TextR(TextIS), BinR(BinIS);
  std::vector<MallocOp> TextOps = readAll(TextR), BinOps = readAll(BinR);
  ASSERT_FALSE(TextR.failed()) << TextR.error();
  ASSERT_FALSE(BinR.failed()) << BinR.error();
  ASSERT_EQ(TextOps.size(), BinOps.size());
  for (size_t I = 0; I != TextOps.size(); ++I) {
    EXPECT_EQ(TextOps[I].Op, BinOps[I].Op) << "op " << I;
    EXPECT_EQ(TextOps[I].Id, BinOps[I].Id) << "op " << I;
    EXPECT_EQ(TextOps[I].Size, BinOps[I].Size) << "op " << I;
  }
}

TEST(TraceFormat, FreeRecordsCarrySizeFromLiveWindow) {
  std::istringstream IS(serialize(sampleOps(), TraceFraming::Text));
  TraceReader R(IS);
  std::vector<MallocOp> Ops = readAll(R);
  ASSERT_FALSE(R.failed()) << R.error();
  // Op 2 frees the first incarnation of id 1 (8 words); op 6 frees the
  // second (5 words) — the reader restores sizes from its live window.
  EXPECT_EQ(Ops[2].Size, 8u);
  EXPECT_EQ(Ops[5].Size, 3u);
  EXPECT_EQ(Ops[6].Size, 5u);
}

TEST(TraceFormat, CommentsAndBlankLinesSkipped) {
  std::istringstream IS("pcbtrace 1 text\n# a comment\n\na 4 10\n"
                        "  \n# more\nf 4\n");
  TraceReader R(IS);
  std::vector<MallocOp> Ops = readAll(R);
  ASSERT_FALSE(R.failed()) << R.error();
  EXPECT_EQ(Ops.size(), 2u);
  EXPECT_EQ(R.allocatedWords(), 10u);

  // The writer's comment() surface: visible in text, absent in binary.
  std::ostringstream TextOS, BinOS;
  TraceWriter TW(TextOS, TraceFraming::Text), BW(BinOS, TraceFraming::Binary);
  TW.comment("hello");
  BW.comment("hello");
  EXPECT_NE(TextOS.str().find("# hello"), std::string::npos);
  EXPECT_EQ(BinOS.str().find("hello"), std::string::npos);
}

TEST(TraceFormat, FramingNamesRoundTrip) {
  EXPECT_EQ(framingName(TraceFraming::Text), "text");
  EXPECT_EQ(framingName(TraceFraming::Binary), "binary");
  TraceFraming F = TraceFraming::Text;
  EXPECT_TRUE(parseFraming("binary", F));
  EXPECT_EQ(F, TraceFraming::Binary);
  EXPECT_TRUE(parseFraming("text", F));
  EXPECT_EQ(F, TraceFraming::Text);
  EXPECT_FALSE(parseFraming("csv", F));
}

//===----------------------------------------------------------------------===//
// 1b. Wire format: rejection diagnostics
//===----------------------------------------------------------------------===//

TEST(TraceReject, EmptyStream) {
  expectRejected("", "missing pcbtrace header");
}

TEST(TraceReject, AlienHeader) {
  expectRejected("malloc 1 text\na 1 4\n", "pcbtrace header");
}

TEST(TraceReject, UnsupportedTextVersion) {
  expectRejected("pcbtrace 99 text\n", "unsupported version 99");
}

TEST(TraceReject, UnsupportedBinaryVersion) {
  std::string Blob = "PCBT";
  Blob.push_back(char(9));
  expectRejected(Blob, "unsupported version 9");
}

TEST(TraceReject, TrailingHeaderGarbage) {
  expectRejected("pcbtrace 1 text nonsense\n", "trailing characters");
}

TEST(TraceReject, MalformedRecordNamesItsLine) {
  // Line 1 header, line 2 fine, line 3 is an alloc missing its size.
  expectRejected("pcbtrace 1 text\na 1 4\na 2\n", "line 3");
}

TEST(TraceReject, UnknownRecordType) {
  expectRejected("pcbtrace 1 text\nx 1 4\n", "unknown record type 'x'");
}

TEST(TraceReject, TrailingRecordGarbage) {
  expectRejected("pcbtrace 1 text\na 1 4 9\n", "trailing characters");
}

TEST(TraceReject, ZeroSizeAllocation) {
  expectRejected("pcbtrace 1 text\na 1 0\n", "zero-word allocation");
}

TEST(TraceReject, AllocationOfLiveId) {
  expectRejected("pcbtrace 1 text\na 1 4\na 1 2\n",
                 "allocation of id 1");
}

TEST(TraceReject, FreeOfUnknownId) {
  expectRejected("pcbtrace 1 text\nf 3\n",
                 "free of unknown or already-freed id 3");
}

TEST(TraceReject, DoubleFree) {
  expectRejected("pcbtrace 1 text\na 1 4\nf 1\nf 1\n",
                 "free of unknown or already-freed id 1");
}

TEST(TraceReject, TruncatedBinaryRecordNamesItsOrdinal) {
  std::vector<MallocOp> Ops = sampleOps();
  std::string Blob = serialize(Ops, TraceFraming::Binary);
  // Chop mid-way through the final record's varints.
  std::istringstream IS(Blob.substr(0, Blob.size() - 1));
  TraceReader R(IS);
  readAll(R);
  ASSERT_TRUE(R.failed());
  EXPECT_NE(R.error().find("record " + std::to_string(Ops.size())),
            std::string::npos)
      << R.error();
}

TEST(TraceReject, UnknownBinaryTag) {
  std::string Blob = "PCBT";
  Blob.push_back(char(TraceFormatVersion));
  Blob.push_back(char(7)); // neither alloc (1) nor free (2)
  expectRejected(Blob, "unknown record tag 7");
}

TEST(TraceReject, FailureIsSticky) {
  std::istringstream IS("pcbtrace 1 text\nf 3\na 1 4\n");
  TraceReader R(IS);
  MallocOp Op;
  EXPECT_FALSE(R.next(Op));
  ASSERT_TRUE(R.failed());
  std::string FirstError = R.error();
  // Valid records after the damage must not resurrect the stream.
  EXPECT_FALSE(R.next(Op));
  EXPECT_EQ(R.error(), FirstError);
  EXPECT_EQ(R.opsRead(), 0u);
}

TEST(TraceReject, MaterializeSurfacesReaderError) {
  std::istringstream IS("pcbtrace 1 text\na 1 4\nf 9\n");
  TraceReader R(IS);
  std::string Error;
  EXPECT_TRUE(materializeTrace(R, &Error).empty());
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// 2. Streaming replay
//===----------------------------------------------------------------------===//

TEST(TraceStreaming, MillionOpStreamMatchesMaterializedReplay) {
  // A million-op sliding-window schedule, pushed through the binary wire
  // format once.
  WorkloadFuzzer::Options FO;
  FO.Seed = 9;
  FO.NumOps = uint64_t(1) << 20;
  FO.P = WorkloadFuzzer::Pattern::QueueFifo;
  std::vector<TraceOp> Schedule = WorkloadFuzzer(FO).generate().materialize();
  std::ostringstream Wire;
  TraceRecorder Rec(Wire, TraceFraming::Binary);
  Rec.record(Schedule);
  ASSERT_TRUE(Rec.good());
  ASSERT_GE(Rec.opsWritten(), uint64_t(1) << 20);

  // Streaming side: the production trace-run path (fixed gate).
  std::istringstream IS(Wire.str());
  TraceReader R(IS);
  TraceRunOptions RO;
  RO.Policy = "first-fit";
  RO.C = 50.0;
  TraceRunReport Rep = runTrace(R, RO, "wire");

  // Materialized side: the whole schedule in memory, no gate at all.
  Heap H;
  std::unique_ptr<MemoryManager> MM = createManager("first-fit", H, 50.0);
  TraceReplayProgram P(Schedule);
  Execution::Options EO;
  EO.MaxSteps = UINT64_MAX;
  Execution E(*MM, P, uint64_t(1) << 62, EO);
  ExecutionResult Ref = E.run();

  EXPECT_EQ(Rep.Exec.HeapSize, Ref.HeapSize);
  EXPECT_EQ(Rep.Exec.PeakLiveWords, Ref.PeakLiveWords);
  EXPECT_EQ(Rep.Exec.TotalAllocatedWords, Ref.TotalAllocatedWords);
  EXPECT_EQ(Rep.Exec.MovedWords, Ref.MovedWords);
  EXPECT_EQ(Rep.Exec.Steps, Ref.Steps);
  EXPECT_EQ(Rep.Exec.NumAllocations, Ref.NumAllocations);
  EXPECT_EQ(Rep.Exec.NumFrees, Ref.NumFrees);
  EXPECT_EQ(Rep.OpsStreamed, Ref.Steps);

  // The memory bound that makes streaming worthwhile: the only
  // trace-size-dependent state is the live-id window, which the
  // generator's live bound caps at 2^12 one-word objects — three orders
  // of magnitude below the op count.
  EXPECT_LE(Rep.PeakLiveWindow, FO.LiveBound);
  EXPECT_LE(R.maxLiveWindow(), size_t(FO.LiveBound));
  EXPECT_GT(Rep.OpsStreamed, 256 * Rep.PeakLiveWindow);
}

TEST(TraceStreaming, GatedRunWithFixedControllerIsByteIdentical) {
  // The fixed trigger's gate is installed but must change nothing: same
  // moves, same footprint, grant counts equal to the move attempts.
  WorkloadFuzzer::Options FO;
  FO.Seed = 3;
  FO.NumOps = 4096;
  FO.P = WorkloadFuzzer::Pattern::Comb;
  std::vector<TraceOp> Schedule = WorkloadFuzzer(FO).generate().materialize();
  std::ostringstream Wire;
  TraceRecorder Rec(Wire, TraceFraming::Binary);
  Rec.record(Schedule);

  std::istringstream IS(Wire.str());
  TraceReader R(IS);
  TraceRunOptions RO;
  RO.Policy = "evacuating";
  RO.C = 50.0; // Controller defaults to the fixed trigger
  TraceRunReport Rep = runTrace(R, RO, "comb");

  Heap H;
  std::unique_ptr<MemoryManager> MM = createManager("evacuating", H, 50.0);
  TraceReplayProgram P(Schedule);
  Execution::Options EO;
  EO.MaxSteps = UINT64_MAX;
  Execution E(*MM, P, uint64_t(1) << 62, EO);
  ExecutionResult Ref = E.run();

  ASSERT_GE(Ref.NumMoves, 1u) << "schedule too tame to exercise the gate";
  EXPECT_EQ(Rep.Exec.HeapSize, Ref.HeapSize);
  EXPECT_EQ(Rep.Exec.MovedWords, Ref.MovedWords);
  EXPECT_EQ(Rep.Exec.NumMoves, Ref.NumMoves);
  EXPECT_EQ(Rep.Controller, "fixed");
  EXPECT_GE(Rep.ControllerGrants, Rep.Exec.NumMoves);
  EXPECT_EQ(Rep.ControllerDenials, 0u);
}

//===----------------------------------------------------------------------===//
// 3. Budget controllers
//===----------------------------------------------------------------------===//

TEST(Controller, FixedAlwaysGrants) {
  FixedTriggerController C;
  BudgetSample S;
  for (uint64_t Step = 0; Step != 5; ++Step) {
    S.Step = Step;
    C.observe(S);
    EXPECT_TRUE(C.allowSpend());
  }
}

TEST(Controller, PeriodicGatesOnStepModulo) {
  PeriodicController C(4);
  BudgetSample S;
  for (uint64_t Step = 0; Step != 12; ++Step) {
    S.Step = Step;
    C.observe(S);
    EXPECT_EQ(C.allowSpend(), Step % 4 == 0) << "step " << Step;
  }
  // A zero period is clamped to one (always allow), not a division trap.
  PeriodicController Degenerate(0);
  S.Step = 7;
  Degenerate.observe(S);
  EXPECT_TRUE(Degenerate.allowSpend());
}

TEST(Controller, MemBalancerSqrtRuleHandComputed) {
  MemBalancerController::Options O;
  O.C1 = 100.0;
  O.Smoothing = 0.5;
  MemBalancerController C(O);

  // Pre-run sample: no growth signal yet, slack zero -> the MinSlack
  // floor is the target and zero slack is below it.
  BudgetSample S;
  S.Step = 0;
  S.LiveWords = 1000;
  S.FootprintWords = 1000;
  C.observe(S);
  EXPECT_DOUBLE_EQ(C.slackTargetWords(), 64.0);
  EXPECT_FALSE(C.allowSpend());

  // Two steps later live grew by 400: the growth EWMA takes half of the
  // 200 words/step derivative, and the target is
  // sqrt(c1 * L * g / cost) = sqrt(100 * 1400 * 100 / 1) = 3741.657...
  S.Step = 2;
  S.LiveWords = 1400;
  S.FootprintWords = 1500;
  C.observe(S);
  EXPECT_DOUBLE_EQ(C.growthEwma(), 100.0);
  EXPECT_NEAR(C.slackTargetWords(), 3741.6573867739413, 1e-9);
  EXPECT_FALSE(C.allowSpend()) << "slack 100 is under the optimal limit";

  // Live stalls (growth halves to 50) while fragmentation balloons the
  // footprint: slack 4700 now exceeds sqrt(100 * 1400 * 50) = 2645.75...
  S.Step = 4;
  S.LiveWords = 1400;
  S.FootprintWords = 6100;
  C.observe(S);
  EXPECT_DOUBLE_EQ(C.growthEwma(), 50.0);
  EXPECT_NEAR(C.slackTargetWords(), 2645.7513110645905, 1e-9);
  EXPECT_TRUE(C.allowSpend());
}

TEST(Controller, MemBalancerMoveCostDampensTarget) {
  MemBalancerController::Options O;
  O.C1 = 100.0;
  O.Smoothing = 0.5;
  MemBalancerController C(O);
  BudgetSample S;
  S.Step = 0;
  S.LiveWords = 1000;
  S.FootprintWords = 1000;
  C.observe(S);
  S.Step = 2;
  S.LiveWords = 1400;
  S.FootprintWords = 1500;
  C.observe(S);
  // Same state as the hand-computed test, but compaction history says a
  // transaction moves 100 words on average: the target shrinks by
  // sqrt(100) to sqrt(100 * 1400 * 100 / 100) = 374.165...
  S.Step = 4;
  S.LiveWords = 1400;
  S.FootprintWords = 1500;
  S.MovedWords = 400;
  S.NumMoves = 4;
  C.observe(S);
  EXPECT_DOUBLE_EQ(C.growthEwma(), 50.0);
  EXPECT_NEAR(C.slackTargetWords(),
              std::sqrt(100.0 * 1400.0 * 50.0 / 100.0), 1e-9);
}

TEST(Controller, MemBalancerShrinkingLiveMeansNoGrowth) {
  MemBalancerController::Options O;
  O.Smoothing = 1.0; // no memory: EWMA == latest sample
  MemBalancerController C(O);
  BudgetSample S;
  S.Step = 0;
  S.LiveWords = 1000;
  C.observe(S);
  S.Step = 1;
  S.LiveWords = 400;
  C.observe(S);
  EXPECT_DOUBLE_EQ(C.growthEwma(), 0.0) << "shrinking clamps at zero";
}

TEST(Controller, ConsultCountsGrantsAndDenials) {
  PeriodicController C(2);
  BudgetSample S;
  S.Step = 0;
  C.observe(S); // allow
  EXPECT_TRUE(C.consult());
  EXPECT_TRUE(C.consult());
  S.Step = 1;
  C.observe(S); // deny
  EXPECT_FALSE(C.consult());
  EXPECT_EQ(C.grants(), 2u);
  EXPECT_EQ(C.denials(), 1u);
}

TEST(Controller, FactoryKnowsEveryNameAndRejectsOthers) {
  EXPECT_EQ(allControllerNames().size(), 3u);
  for (const std::string &Name : allControllerNames()) {
    ControllerSpec Spec;
    Spec.Name = Name;
    std::string Error;
    std::unique_ptr<BudgetController> C =
        createControllerChecked(Spec, &Error);
    ASSERT_NE(C, nullptr) << Error;
    EXPECT_EQ(C->name(), Name);
  }
  ControllerSpec Bad;
  Bad.Name = "optimal";
  std::string Error;
  EXPECT_EQ(createControllerChecked(Bad, &Error), nullptr);
  EXPECT_NE(Error.find("membalancer"), std::string::npos)
      << "diagnostic must list the valid names: " << Error;
}

namespace {
/// Test-only controller that never grants — the strongest gate.
class DenyAllController : public BudgetController {
public:
  std::string name() const override { return "deny-all"; }
  void observe(const BudgetSample &S) override { (void)S; }
  bool allowSpend() const override { return false; }
};

ExecutionResult replayUnder(const std::vector<TraceOp> &Schedule,
                            BudgetController *Ctrl, uint64_t *Denials) {
  Heap H;
  std::unique_ptr<MemoryManager> MM = createManager("evacuating", H, 50.0);
  TraceReplayProgram P(Schedule);
  Execution::Options EO;
  EO.MaxSteps = UINT64_MAX;
  Execution E(*MM, P, uint64_t(1) << 62, EO);
  if (Ctrl)
    attachController(E, *MM, *Ctrl);
  ExecutionResult R = E.run();
  if (Ctrl && Denials)
    *Denials = Ctrl->denials();
  return R;
}
} // namespace

TEST(Controller, AttachedGateActuallyBlocksMoves) {
  WorkloadFuzzer::Options FO;
  FO.Seed = 3;
  FO.NumOps = 4096;
  FO.P = WorkloadFuzzer::Pattern::Comb;
  std::vector<TraceOp> Schedule = WorkloadFuzzer(FO).generate().materialize();

  ExecutionResult Ungated = replayUnder(Schedule, nullptr, nullptr);
  ASSERT_GE(Ungated.NumMoves, 1u) << "schedule too tame to test the gate";

  DenyAllController Deny;
  uint64_t Denials = 0;
  ExecutionResult Gated = replayUnder(Schedule, &Deny, &Denials);
  EXPECT_EQ(Gated.NumMoves, 0u);
  EXPECT_EQ(Gated.MovedWords, 0u);
  EXPECT_GE(Denials, 1u) << "the manager never even asked";

  FixedTriggerController Fixed;
  ExecutionResult Open = replayUnder(Schedule, &Fixed, nullptr);
  EXPECT_EQ(Open.NumMoves, Ungated.NumMoves);
  EXPECT_EQ(Open.MovedWords, Ungated.MovedWords);
  EXPECT_EQ(Open.HeapSize, Ungated.HeapSize);
}

//===----------------------------------------------------------------------===//
// 3b. Golden trace-run reports
//===----------------------------------------------------------------------===//

namespace {
/// The committed E15 churn trace under the configuration EXPERIMENTS.md
/// E15 reports: evacuating at c=50 under the MemBalancer gate.
TraceRunReport goldenRun() {
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/e15-churn.mtrace",
                   std::ios::binary);
  EXPECT_TRUE(IS.good()) << "missing golden e15-churn.mtrace";
  TraceReader R(IS);
  TraceRunOptions RO;
  RO.Policy = "evacuating";
  RO.C = 50.0;
  RO.Controller.Name = "membalancer";
  RO.Controller.C1 = 10000.0;
  RO.Controller.Smoothing = 0.25;
  return runTrace(R, RO, "e15-churn.mtrace");
}

void checkGolden(const std::string &Rendered, const std::string &File) {
  // Regenerate the committed goldens with:
  //   PCB_REGEN_GOLDEN=<repo>/tests/golden ./trace_test
  if (const char *Dir = std::getenv("PCB_REGEN_GOLDEN")) {
    std::ofstream Out(std::string(Dir) + "/" + File);
    ASSERT_TRUE(Out.good());
    Out << Rendered;
  }
  std::ifstream IS(std::string(PCB_TEST_DATA_DIR) + "/" + File);
  ASSERT_TRUE(IS.good()) << "missing golden " << File;
  std::stringstream Golden;
  Golden << IS.rdbuf();
  EXPECT_EQ(Rendered, Golden.str());
}
} // namespace

TEST(TraceRunGolden, TextReportMatchesCommittedGolden) {
  std::ostringstream OS;
  goldenRun().printText(OS);
  checkGolden(OS.str(), "trace-run.txt");
}

TEST(TraceRunGolden, JsonReportMatchesCommittedGolden) {
  std::ostringstream OS;
  goldenRun().printJson(OS);
  checkGolden(OS.str(), "trace-run.json");
}

//===----------------------------------------------------------------------===//
// 4. Cross-policy invariants under every controller
//===----------------------------------------------------------------------===//

TEST(CrossPolicy, EveryControllerPreservesManagerIndependence) {
  // The harness's cross-policy agreement invariants (identical program
  // statistics, non-movers never move, replay determinism) must hold
  // with a spend gate between every manager and its ledger — for each
  // controller, across the entire policy family.
  WorkloadFuzzer::Options FO;
  FO.Seed = 11;
  FO.NumOps = 256;
  FO.P = WorkloadFuzzer::Pattern::Mixed;
  FuzzSchedule S = WorkloadFuzzer(FO).generate();
  for (const std::string &Name : allControllerNames()) {
    DifferentialHarness::Options O;
    O.Controller.Name = Name;
    O.Controller.Period = 8;
    O.Controller.C1 = 10000.0;
    DifferentialHarness Harness(O);
    DifferentialReport Report = Harness.run(S);
    EXPECT_TRUE(Report.clean())
        << "controller " << Name << ":\n" << Report.summary();
  }
}

TEST(CrossPolicy, TraceBackedFuzzWindowsAreWellFormed) {
  // Pattern::Trace replays seeded windows of a recorded trace; every
  // window must be a valid schedule, different seeds must pick different
  // windows, and a window must survive the full differential gauntlet.
  WorkloadFuzzer::Options Gen;
  Gen.Seed = 42;
  Gen.NumOps = 3000;
  Gen.P = WorkloadFuzzer::Pattern::Churn;
  auto Corpus = std::make_shared<const std::vector<TraceOp>>(
      WorkloadFuzzer(Gen).generate().materialize());

  WorkloadFuzzer::Options FO;
  FO.P = WorkloadFuzzer::Pattern::Trace;
  FO.TraceOps = Corpus;
  FO.NumOps = 512;
  std::vector<size_t> Sizes;
  for (uint64_t Seed = 1; Seed != 5; ++Seed) {
    FO.Seed = Seed;
    FuzzSchedule S = WorkloadFuzzer(FO).generate();
    EXPECT_EQ(S.Pattern, "trace");
    EXPECT_FALSE(S.Ops.empty());
    std::string Why;
    EXPECT_TRUE(validateTrace(S.materialize(), &Why)) << Why;
    Sizes.push_back(S.size());
  }
  // Determinism: the same seed re-generates the same window.
  FO.Seed = 1;
  EXPECT_EQ(WorkloadFuzzer(FO).generate().size(), Sizes.front());

  FO.Seed = 2;
  DifferentialHarness Harness;
  DifferentialReport Report = Harness.run(WorkloadFuzzer(FO).generate());
  EXPECT_TRUE(Report.clean()) << Report.summary();
}
