//===- tests/crossfamily_test.cpp - Compaction x reallocation cross-stress ===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// E16's experimental question, pinned as tests: the two problem families
// share one heap substrate, so each family's adversaries must run
// cleanly through the other family's managers — PF and the comb through
// the reallocation algorithms, the insert/delete update adversaries
// through every compaction policy — with the footprint and overhead
// invariants holding in both directions.
//
//===----------------------------------------------------------------------===//

#include "adversary/ProgramFactory.h"
#include "driver/Execution.h"
#include "fuzz/DifferentialHarness.h"
#include "fuzz/InvariantOracle.h"
#include "fuzz/WorkloadFuzzer.h"
#include "mm/ManagerFactory.h"
#include "realloc/ReallocationLedger.h"
#include "support/MathUtils.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pcb;

namespace {

// Records \p ProgName (run through a never-moving manager, so the trace
// is placement-independent) as a replayable trace.
std::vector<TraceOp> recordUpdateTrace(const std::string &ProgName,
                                       uint64_t M) {
  Heap H;
  auto MM = createManager("realloc-never", H, 50.0, M);
  auto Prog = createProgram(ProgName, M, 6, 50.0);
  EXPECT_NE(Prog, nullptr) << ProgName;
  EventLog Log;
  Execution::Options EO;
  EO.Log = &Log;
  Execution E(*MM, *Prog, M, EO);
  E.run();
  return Log.toTrace();
}

// --- Compaction-family adversaries through reallocation managers -----------

// PF frees every moved object; run it through each reallocation
// algorithm with the full per-step oracle attached — every cheap and
// deep invariant, including overhead-ratio and ledger-reconcile, after
// every step.
TEST(CrossFamily, PFThroughReallocAlgorithmsWithPerStepOracle) {
  for (const std::string &Policy : reallocManagerPolicies()) {
    Heap H;
    uint64_t M = pow2(11);
    auto MM = createManager(Policy, H, 50.0, M);
    ASSERT_NE(MM, nullptr) << Policy;
    auto Prog = createProgram("cohen-petrank", M, 5, 50.0);
    ASSERT_NE(Prog, nullptr);
    EventLog Log;
    Execution::Options EO;
    EO.Log = &Log;
    Execution E(*MM, *Prog, M, EO);
    InvariantOracle::Options OO;
    OO.DeepCheckEvery = 16;
    InvariantOracle Oracle(H, *MM, Log, OO);
    std::vector<Violation> Out;
    E.addStepObserver([&](const Execution &Ex) {
      Oracle.checkStep(Ex.stepsRun(), Out);
    });
    E.run();
    Oracle.checkDeep(E.stepsRun(), Out);
    EXPECT_TRUE(Out.empty()) << Policy << ": " << Out.front().describe();
  }
}

// The comb workload (the paper's fragmentation archetype, as a fuzz
// pattern) through the reallocation trio plus first-fit, differentially
// — with the realloc replay-determinism check engaged.
TEST(CrossFamily, CombScheduleThroughReallocPolicies) {
  DifferentialHarness::Options HO;
  HO.Policies = {"first-fit", "realloc-never", "realloc-bucket",
                 "realloc-jin"};
  HO.ReplayCheckPolicy = "realloc-bucket";
  HO.DeepCheckEvery = 32;
  DifferentialHarness Harness(HO);
  WorkloadFuzzer::Options FO;
  FO.Seed = 0xc0b;
  FO.NumOps = 1024;
  FO.LiveBound = pow2(12);
  FO.MaxLogSize = 7;
  FO.P = WorkloadFuzzer::Pattern::Comb;
  DifferentialReport Report = Harness.run(WorkloadFuzzer(FO).generate());
  EXPECT_TRUE(Report.clean()) << Report.summary();
  ASSERT_EQ(Report.Runs.size(), 4u);
}

// PF is tuned to starve c-partial budgets; aimed at the bucketed
// scheme it drives the overhead ratio close to the scheme's bound of 1
// (every PF free funds exactly one backfill of the same size) — the
// cross-stress E16 reports.
TEST(CrossFamily, PFStressesBucketNearItsBound) {
  Heap H;
  uint64_t M = pow2(12);
  auto MM = createManager("realloc-bucket", H, 50.0, M);
  auto Prog = createProgram("cohen-petrank", M, 6, 50.0);
  Execution E(*MM, *Prog, M);
  E.run();
  const ReallocationLedger *RL = MM->reallocationLedger();
  ASSERT_NE(RL, nullptr);
  EXPECT_GE(RL->maxPrefixRatio(), 0.8);
  EXPECT_LE(RL->maxPrefixRatio(), 1.0 + 1e-9);
  EXPECT_TRUE(RL->holds());
}

// --- Update adversaries through the compaction family ----------------------

// Every update shape's trace through EVERY factory policy — all fifteen
// compaction managers and the three reallocation algorithms — under the
// differential harness's full oracle and cross-policy agreement checks.
TEST(CrossFamily, UpdateTracesThroughEveryPolicy) {
  DifferentialHarness Harness; // default options: the whole registry
  ASSERT_EQ(Harness.options().Policies.size(), allManagerPolicies().size());
  for (const std::string &ProgName : updateProgramNames()) {
    std::vector<TraceOp> Trace = recordUpdateTrace(ProgName, pow2(11));
    ASSERT_FALSE(Trace.empty()) << ProgName;
    DifferentialReport Report =
        Harness.run(scheduleFromTrace(Trace, 0, ProgName));
    EXPECT_TRUE(Report.clean()) << ProgName << ":\n" << Report.summary();
  }
}

// Both directions of the invariant pair, recomputed from the raw run
// statistics: footprint dominates peak-live for every policy, and moved
// words respect each family's overhead discipline — 1/c of allocation
// volume for budgeted compaction managers, the declared scheme bound
// for the reallocation family.
TEST(CrossFamily, FootprintAndOverheadInvariantsBothDirections) {
  DifferentialHarness Harness;
  std::vector<TraceOp> Trace = recordUpdateTrace("update-mix", pow2(11));
  DifferentialReport Report =
      Harness.run(scheduleFromTrace(Trace, 0, "update-mix"));
  ASSERT_TRUE(Report.clean()) << Report.summary();
  std::map<std::string, double> ReallocBounds = {
      {"realloc-never", 0.0}, {"realloc-bucket", 1.0}, {"realloc-jin", 2.0}};
  for (const PolicyRunResult &R : Report.Runs) {
    EXPECT_GE(R.Stats.HighWaterMark, R.Stats.PeakLiveWords) << R.Policy;
    auto It = ReallocBounds.find(R.Policy);
    if (It != ReallocBounds.end()) {
      EXPECT_LE(double(R.Stats.MovedWords),
                It->second * double(R.Stats.TotalAllocatedWords) + 1e-9)
          << R.Policy;
    } else if (R.QuotaC > 0.0) {
      EXPECT_LE(double(R.Stats.MovedWords),
                double(R.Stats.TotalAllocatedWords) / R.QuotaC + 1e-9)
          << R.Policy;
    }
  }
}

// The other half of E16's question: do insert/delete adversaries
// separate the managers? The comb shape must — it leaves same-size
// holes no doubled tooth fits, so footprint depends on whether (and
// how) a policy moves: the never-move envelope pays the most, the
// backfilling and repacking schemes reclaim the gaps, and an unlimited
// compactor beats a first-fit non-mover.
TEST(CrossFamily, UpdateAdversarySeparatesManagers) {
  std::vector<TraceOp> Trace = recordUpdateTrace("update-comb", pow2(11));
  uint64_t M = tracePeakLiveWords(Trace);
  std::map<std::string, uint64_t> Footprints;
  for (const std::string Policy :
       {"first-fit", "sliding-unlimited", "realloc-never", "realloc-bucket",
        "realloc-jin"}) {
    Heap H;
    auto MM = createManager(Policy, H, 50.0, M);
    ASSERT_NE(MM, nullptr) << Policy;
    TraceReplayProgram P(Trace);
    Execution E(*MM, P, M);
    Footprints[Policy] = E.run().HeapSize;
  }
  std::set<uint64_t> Distinct;
  for (const auto &Entry : Footprints)
    Distinct.insert(Entry.second);
  EXPECT_GE(Distinct.size(), 2u)
      << "the comb no longer separates any policies";
  // Movement must pay for itself: both reallocation movers beat the
  // never-move envelope on the comb, and unlimited sliding compaction
  // beats plain first-fit.
  EXPECT_LT(Footprints["realloc-bucket"], Footprints["realloc-never"]);
  EXPECT_LT(Footprints["realloc-jin"], Footprints["realloc-never"]);
  EXPECT_LE(Footprints["sliding-unlimited"], Footprints["first-fit"]);
}

// The default fuzz surface covers both families: a schedule run through
// the default harness executes against every realloc policy too, so
// `pcbound fuzz` (any family) keeps regressing the reallocation code.
TEST(CrossFamily, DefaultHarnessCoversBothFamilies) {
  DifferentialHarness Harness;
  const std::vector<std::string> &Policies = Harness.options().Policies;
  for (const std::string &Policy : reallocManagerPolicies())
    EXPECT_NE(std::find(Policies.begin(), Policies.end(), Policy),
              Policies.end())
        << Policy;
  for (const std::string &Policy : compactionFamilyPolicies())
    EXPECT_NE(std::find(Policies.begin(), Policies.end(), Policy),
              Policies.end())
        << Policy;
}

} // namespace
