//===- tests/mm_test.cpp - Unit tests for src/mm -------------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/BuddyManager.h"
#include "mm/ChunkedManager.h"
#include "mm/CompactionLedger.h"
#include "mm/EvacuatingCompactor.h"
#include "mm/HybridManager.h"
#include "mm/ManagerFactory.h"
#include "mm/MeshingCompactor.h"
#include "mm/PagedSpaceManager.h"
#include "mm/SegregatedFitManager.h"
#include "mm/SequentialFitManagers.h"
#include "mm/SlidingCompactor.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace pcb;

namespace {

// --- CompactionLedger ----------------------------------------------------

TEST(CompactionLedger, BudgetTracksAllocations) {
  Heap H;
  CompactionLedger L(H, 10.0);
  EXPECT_EQ(L.budgetWords(), 0u);
  EXPECT_FALSE(L.canMove(1));
  H.place(0, 100);
  EXPECT_EQ(L.budgetWords(), 10u);
  EXPECT_TRUE(L.canMove(10));
  EXPECT_FALSE(L.canMove(11));
  EXPECT_TRUE(L.holds());
}

TEST(CompactionLedger, SpendingReducesRemaining) {
  Heap H;
  CompactionLedger L(H, 4.0);
  ObjectId A = H.place(0, 40);
  EXPECT_EQ(L.remainingWords(), 10u);
  H.move(A, 64); // 40 words moved: over budget
  EXPECT_EQ(L.remainingWords(), 0u);
  EXPECT_FALSE(L.holds()); // the ledger reports the violation
}

TEST(CompactionLedger, UnlimitedMode) {
  Heap H;
  CompactionLedger L(H, 0.0);
  EXPECT_TRUE(L.isUnlimited());
  EXPECT_TRUE(L.canMove(UINT64_MAX / 2));
  EXPECT_TRUE(L.holds());
}

// --- Placement policies --------------------------------------------------

TEST(FirstFit, ReusesLowestHole) {
  Heap H;
  FirstFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(8);
  ObjectId C = MM.allocate(8);
  (void)C;
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.object(B).Address, 8u);
  MM.free(B);
  ObjectId D = MM.allocate(4);
  EXPECT_EQ(H.object(D).Address, 8u); // lowest hole, not the tail
}

TEST(BestFit, PrefersTightestHole) {
  Heap H;
  BestFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(16);
  ObjectId Sep1 = MM.allocate(1);
  ObjectId B = MM.allocate(4);
  ObjectId Sep2 = MM.allocate(1);
  (void)Sep1;
  (void)Sep2;
  MM.free(A);
  MM.free(B);
  // A 4-word request fits both holes; best fit takes the 4-word one.
  ObjectId C = MM.allocate(4);
  EXPECT_EQ(H.object(C).Address, 17u);
}

TEST(WorstFit, PrefersLargestHoleBelowMark) {
  Heap H;
  WorstFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(16);
  ObjectId Sep1 = MM.allocate(1);
  ObjectId B = MM.allocate(4);
  ObjectId Sep2 = MM.allocate(1);
  (void)Sep1;
  (void)Sep2;
  MM.free(A); // hole [0, 16)
  MM.free(B); // hole [17, 21)
  // Worst fit puts a 4-word request in the *big* hole.
  ObjectId C = MM.allocate(4);
  EXPECT_EQ(H.object(C).Address, 0u);
  // And falls back to the tail when nothing below the mark fits.
  ObjectId D = MM.allocate(64);
  EXPECT_EQ(H.object(D).Address, 22u);
}

TEST(NextFit, AdvancesCursor) {
  Heap H;
  NextFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(8);
  MM.free(A);
  // Cursor sits after B; the hole at 0 is behind it.
  ObjectId C = MM.allocate(8);
  EXPECT_EQ(H.object(C).Address, 16u);
  MM.free(B);
  (void)B;
  // Request beyond the tail from cursor still succeeds.
  ObjectId D = MM.allocate(8);
  EXPECT_EQ(H.object(D).Address, 24u);
}

TEST(AlignedFit, AlignsToRoundedSize) {
  Heap H;
  AlignedFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(3); // rounds to alignment 4
  ObjectId B = MM.allocate(8);
  EXPECT_EQ(H.object(A).Address % 4, 0u);
  EXPECT_EQ(H.object(B).Address % 8, 0u);
}

// The cursor lands inside the infinite tail block: the next request must
// be served from the cursor itself (the block containing the cursor
// counts from the cursor onward), not from the tail's start or a hole
// behind the cursor.
TEST(NextFit, CursorInsideTailBlockAllocatesAtCursor) {
  Heap H;
  NextFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(8);
  ObjectId B = MM.allocate(8);
  MM.free(A); // hole [0, 8) behind the cursor; tail starts at 16
  MM.free(B);
  // The whole space is one free block [0, AddrLimit) again, and the
  // cursor sits at 16, strictly inside it.
  ASSERT_EQ(H.freeSpace().numBlocks(), 1u);
  ObjectId C = MM.allocate(4);
  EXPECT_EQ(H.object(C).Address, 16u);
  // The cursor keeps advancing through the tail rather than rewinding.
  ObjectId D = MM.allocate(4);
  EXPECT_EQ(H.object(D).Address, 20u);
}

// A cursor parked exactly at the start of the tail block is the
// wraparound boundary case: the fit query's "block containing From"
// probe and its "first block at or after From" scan meet at one address.
TEST(NextFit, CursorExactlyAtTailStart) {
  Heap H;
  NextFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(8); // cursor = 8 = tail start
  (void)A;
  ObjectId B = MM.allocate(8);
  EXPECT_EQ(H.object(B).Address, 8u);
}

// Every finite hole is smaller than the request's alignment, so aligned
// fit must skip them all and place in the tail at the next aligned
// address — not in any unaligned-but-large-enough scrap.
TEST(AlignedFit, AlignmentLargerThanAnyFiniteHole) {
  Heap H;
  AlignedFitManager MM(H, 10.0);
  // Pin 1-word objects at every 4th address so the free space below the
  // frontier is eight 3-word holes at addresses 1 mod 4.
  for (Addr A = 0; A <= 32; A += 4)
    H.place(A, 1);
  // Request 16 -> alignment 16, larger than any finite hole: the
  // placement must come from the tail at the next 16-aligned address.
  ObjectId Big = MM.allocate(16);
  EXPECT_EQ(H.object(Big).Address, 48u);
  // A 3-word request (alignment 4) fits no hole either: each hole starts
  // at 1 mod 4 and is only 3 words deep, so its only 4-aligned address
  // is its one-past-the-end. The gap before Big serves it at 36.
  ObjectId Small = MM.allocate(3);
  EXPECT_EQ(H.object(Small).Address, 36u);
}

// --- Buddy ---------------------------------------------------------------

TEST(Buddy, SplitsAndCoalesces) {
  Heap H;
  BuddyManager MM(H, 10.0);
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(4);
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.object(B).Address, 4u);
  MM.free(A);
  MM.free(B);
  // The pair coalesces: an 8-word request reuses the same block.
  ObjectId C = MM.allocate(8);
  EXPECT_EQ(H.object(C).Address, 0u);
}

TEST(Buddy, RoundsToPowerOfTwo) {
  Heap H;
  BuddyManager MM(H, 10.0);
  ObjectId A = MM.allocate(5); // occupies an 8-block
  EXPECT_EQ(MM.internalPaddingWords(), 3u);
  ObjectId B = MM.allocate(8);
  EXPECT_EQ(H.object(B).Address, 8u); // padding is not handed out
  MM.free(A);
  EXPECT_EQ(MM.internalPaddingWords(), 0u);
}

TEST(Buddy, BlockAlignment) {
  Heap H;
  BuddyManager MM(H, 10.0);
  MM.allocate(1);
  ObjectId B = MM.allocate(16);
  EXPECT_EQ(H.object(B).Address % 16, 0u);
}

// --- Segregated fit ------------------------------------------------------

TEST(SegregatedFit, ClassesDoNotMix) {
  Heap H;
  SegregatedFitManager MM(H, 10.0);
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(8);
  MM.free(A);
  // The freed 4-slot must not serve an 8-request.
  ObjectId C = MM.allocate(8);
  EXPECT_NE(H.object(C).Address, H.object(A).Address);
  // But it does serve the next 4-request.
  ObjectId D = MM.allocate(4);
  EXPECT_EQ(H.object(D).Address, 0u);
  (void)B;
}

// --- Paged space -----------------------------------------------------------

TEST(PagedSpace, SlotsPackWithinOnePage) {
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5; // 32-word pages
  PagedSpaceManager MM(H, 10.0, Opts);
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(4);
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.object(B).Address, 4u);
  EXPECT_EQ(MM.numPages(), 1u);
}

TEST(PagedSpace, ClassesUseSeparatePages) {
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  PagedSpaceManager MM(H, 10.0, Opts);
  ObjectId A = MM.allocate(4);
  ObjectId B = MM.allocate(8);
  EXPECT_EQ(H.object(A).Address / 32, 0u);
  EXPECT_EQ(H.object(B).Address / 32, 1u);
}

TEST(PagedSpace, EmptyPagesRecycleAcrossClasses) {
  // The structural advantage over flat segregated fit: a page emptied of
  // 4-word objects serves 8-word objects next.
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  PagedSpaceManager MM(H, 10.0, Opts);
  std::vector<ObjectId> Small;
  for (int I = 0; I != 8; ++I)
    Small.push_back(MM.allocate(4)); // fills page 0
  for (ObjectId Id : Small)
    MM.free(Id); // page 0 empties and is recycled
  EXPECT_EQ(MM.numFreePages(), 1u);
  ObjectId Big = MM.allocate(8);
  EXPECT_EQ(H.object(Big).Address / 32, 0u) << "page 0 was not recycled";
}

TEST(PagedSpace, HumongousRunsAndTheirRelease) {
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  PagedSpaceManager MM(H, 10.0, Opts);
  ObjectId Big = MM.allocate(100); // 4 pages of 32
  EXPECT_EQ(H.object(Big).Address, 0u);
  EXPECT_EQ(MM.numPages(), 4u);
  // A small allocation goes after the run.
  ObjectId Small = MM.allocate(4);
  EXPECT_EQ(H.object(Small).Address / 32, 4u);
  MM.free(Big);
  EXPECT_EQ(MM.numFreePages(), 4u);
  // The freed run is reused for the next humongous request.
  ObjectId Big2 = MM.allocate(60);
  EXPECT_EQ(H.object(Big2).Address, 0u);
}

TEST(PagedSpace, EvacuationConsolidatesSparsePages) {
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  Opts.EvacuationThreshold = 0.5;
  PagedSpaceManager MM(H, 4.0, Opts); // generous budget
  // Two pages of 8-word slots, one survivor each.
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(MM.allocate(8));
  for (int I = 0; I != 8; ++I)
    if (I != 0 && I != 4)
      MM.free(Ids[I]);
  ASSERT_EQ(MM.numFreePages(), 0u);
  // A 16-word request has no slot and no free page: evacuation must
  // consolidate the two quarter-full pages instead of growing the heap.
  uint64_t HwmBefore = H.stats().HighWaterMark;
  ObjectId Big = MM.allocate(16);
  EXPECT_GT(MM.numEvacuations(), 0u);
  EXPECT_LE(H.object(Big).end(), HwmBefore);
  EXPECT_TRUE(MM.ledger().holds());
}

TEST(PagedSpace, EvacuationRespectsBudget) {
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  Opts.EvacuationThreshold = 1.0;
  PagedSpaceManager MM(H, 1000.0, Opts); // almost no budget
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(MM.allocate(8));
  for (int I = 0; I != 8; ++I)
    if (I % 4 != 0)
      MM.free(Ids[I]);
  MM.allocate(16);
  EXPECT_EQ(MM.numEvacuations(), 0u);
  EXPECT_EQ(H.stats().MovedWords, 0u);
}

// --- Evacuating compactor ------------------------------------------------

TEST(Evacuating, ReusesSparseChunkWithinBudget) {
  Heap H;
  EvacuatingCompactor::Options Opts;
  Opts.DensityThreshold = 0.5;
  Opts.MinEvacuationSize = 4;
  EvacuatingCompactor MM(H, 4.0, Opts); // generous budget: 1/4
  // Fill [0, 64) with 16 x 4-word objects, then free all but one per
  // 16-word chunk to build sparse chunks.
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 16; ++I)
    Ids.push_back(MM.allocate(4));
  for (int I = 0; I != 16; ++I)
    if (I % 4 != 0)
      MM.free(Ids[I]);
  // Each 16-chunk holds 4 live words (density 1/4 <= 1/2). A 16-word
  // request should evacuate a chunk rather than extend past the mark...
  uint64_t HwmBefore = H.stats().HighWaterMark;
  ObjectId Big = MM.allocate(16);
  EXPECT_LT(H.object(Big).Address, HwmBefore);
  EXPECT_GT(MM.numEvacuations(), 0u);
  EXPECT_GT(H.stats().MovedWords, 0u);
  EXPECT_TRUE(MM.ledger().holds());
}

TEST(Evacuating, RespectsBudget) {
  Heap H;
  EvacuatingCompactor::Options Opts;
  Opts.DensityThreshold = 1.0;
  Opts.MinEvacuationSize = 4;
  EvacuatingCompactor MM(H, 1000.0, Opts); // nearly no budget
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 16; ++I)
    Ids.push_back(MM.allocate(4));
  for (int I = 0; I != 16; ++I)
    if (I % 2 != 0)
      MM.free(Ids[I]);
  // Budget is 64/1000 = 0 words; no evacuation may happen.
  MM.allocate(16);
  EXPECT_EQ(H.stats().MovedWords, 0u);
  EXPECT_TRUE(MM.ledger().holds());
}

// --- Hybrid: slot bookkeeping across evacuation ----------------------------

TEST(Hybrid, EvacuationSplitsContainingFreeSlot) {
  // The hardest bookkeeping path: evacuating a sparse chunk frees the
  // big slot that *contains* it; the manager must buddy-split that slot
  // so later allocations of other classes reuse the complement without
  // overlapping the cleared chunk.
  Heap H;
  HybridManager::Options Opts;
  Opts.DensityThreshold = 0.5;
  Opts.MinEvacuationSize = 4;
  HybridManager MM(H, 2.0, Opts);
  // Fund the compaction budget.
  for (int I = 0; I != 4; ++I)
    MM.free(MM.allocate(16));
  // A 9-word object in a 16-word class-4 slot: the slot's third 4-chunk
  // holds a single live word.
  ObjectId A = MM.allocate(9);
  Addr OldAddr = H.object(A).Address;
  // A class-2 slot miss triggers evacuation of that sparse chunk.
  ObjectId B = MM.allocate(4);
  EXPECT_GT(MM.numEvacuations(), 0u);
  EXPECT_NE(H.object(A).Address, OldAddr);
  EXPECT_TRUE(MM.ledger().holds());
  ASSERT_TRUE(H.checkConsistency());
  // The split slot's complement serves other classes cleanly.
  ObjectId C = MM.allocate(8);
  ObjectId D = MM.allocate(4);
  EXPECT_TRUE(H.isLive(B));
  EXPECT_TRUE(H.isLive(C));
  EXPECT_TRUE(H.isLive(D));
  ASSERT_TRUE(H.checkConsistency());
}

// --- Sliding compactor ---------------------------------------------------

TEST(Sliding, UnlimitedPacksPerfectly) {
  Heap H;
  SlidingCompactor MM(H, 0.0); // unlimited budget
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(MM.allocate(8));
  for (int I = 0; I != 8; I += 2)
    MM.free(Ids[I]);
  // 32 live words in [0, 64) with holes; a 32-word request compacts and
  // fits below the old mark.
  ObjectId Big = MM.allocate(32);
  EXPECT_LE(H.object(Big).end(), 64u);
  EXPECT_EQ(MM.numCompactions(), 1u);
  EXPECT_EQ(H.stats().HighWaterMark, 64u);
}

TEST(Sliding, PreservesAddressOrder) {
  Heap H;
  SlidingCompactor MM(H, 0.0);
  ObjectId P = MM.allocate(6);
  ObjectId Q = MM.allocate(6);
  ObjectId R = MM.allocate(6);
  ObjectId S = MM.allocate(6);
  MM.free(Q);
  MM.free(S);
  // Two 6-word holes; a 10-word request cannot use either, but 12 free
  // words sit below the mark, so the manager slides.
  MM.allocate(10);
  EXPECT_EQ(MM.numCompactions(), 1u);
  EXPECT_EQ(H.object(P).Address, 0u);
  EXPECT_EQ(H.object(R).Address, 6u); // Lisp-2 order preserved
}

TEST(Sliding, FiniteBudgetStopsCompacting) {
  Heap H;
  SlidingCompactor MM(H, 1000000.0);
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(MM.allocate(8));
  for (int I = 0; I != 8; I += 2)
    MM.free(Ids[I]);
  uint64_t Hwm = H.stats().HighWaterMark;
  ObjectId Big = MM.allocate(32);
  // No budget: the request must extend the heap instead.
  EXPECT_GE(H.object(Big).Address, Hwm);
  EXPECT_TRUE(MM.ledger().holds());
}

TEST(Buddy, SplitChainFromLargeBlock) {
  Heap H;
  BuddyManager MM(H, 10.0);
  ObjectId Big = MM.allocate(32);
  MM.free(Big);
  // A 1-word request splits the 32-block down to order 0 at address 0 and
  // leaves buddies at 1, 2, 4, 8, 16.
  ObjectId Tiny = MM.allocate(1);
  EXPECT_EQ(H.object(Tiny).Address, 0u);
  EXPECT_EQ(H.object(MM.allocate(2)).Address, 2u);
  EXPECT_EQ(H.object(MM.allocate(4)).Address, 4u);
  EXPECT_EQ(H.object(MM.allocate(1)).Address, 1u);
}

TEST(PagedSpace, HumongousRunSpansFrontierGap) {
  // A humongous request larger than any free-page run must extend the
  // frontier even when scattered free pages exist.
  Heap H;
  PagedSpaceManager::Options Opts;
  Opts.PageLog = 5;
  PagedSpaceManager MM(H, 10.0, Opts);
  ObjectId A = MM.allocate(4);  // page 0
  ObjectId B = MM.allocate(32); // page 1 (full page slot)
  ObjectId C = MM.allocate(32); // page 2
  MM.free(B);                   // free page 1, isolated
  ASSERT_EQ(MM.numFreePages(), 1u);
  ObjectId Big = MM.allocate(64); // needs 2 consecutive pages
  EXPECT_EQ(H.object(Big).Address, 3u * 32u) << "must start a fresh run";
  (void)A;
  (void)C;
  EXPECT_TRUE(H.checkConsistency());
}

// --- Move callback plumbing ----------------------------------------------

TEST(MoveCallback, ImmediateFreeOnMove) {
  Heap H;
  EvacuatingCompactor::Options Opts;
  Opts.DensityThreshold = 1.0;
  Opts.MinEvacuationSize = 4;
  EvacuatingCompactor MM(H, 2.0, Opts);
  std::vector<std::pair<Addr, Addr>> Moves;
  MM.setMoveCallback([&](ObjectId, Addr From, Addr To) {
    Moves.emplace_back(From, To);
    return true; // adversary behaviour: free it immediately
  });
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 8; ++I)
    Ids.push_back(MM.allocate(4));
  for (int I = 1; I != 8; ++I)
    MM.free(Ids[I]);
  // One 4-word object left in [0, 32); a 32-word request evacuates it,
  // and the callback frees it mid-flight.
  MM.allocate(32);
  ASSERT_EQ(Moves.size(), 1u);
  EXPECT_FALSE(H.isLive(Ids[0]));
  EXPECT_TRUE(MM.ledger().holds());
}

// --- Chunked manager: counters, triggers, humongous runs ------------------

TEST(Chunked, BumpsWithinChunksWithoutStraddling) {
  Heap H;
  ChunkedManager::Options Opts;
  Opts.ChunkLog = 4; // 16-word chunks
  ChunkedManager MM(H, 10.0, Opts);
  ObjectId A = MM.allocate(6);
  ObjectId B = MM.allocate(6);
  // 4 words remain in chunk 0: a 6-word request must retire it and open
  // chunk 1 rather than straddle the boundary.
  ObjectId C = MM.allocate(6);
  EXPECT_EQ(H.object(A).Address, 0u);
  EXPECT_EQ(H.object(B).Address, 6u);
  EXPECT_EQ(H.object(C).Address, 16u);
  EXPECT_EQ(MM.countersAt(0).Bump, 12u);
  EXPECT_EQ(MM.countersAt(16).Bump, 6u);
  EXPECT_EQ(MM.countersAt(0).Freed, 0u);
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Chunked, FreedCounterSaturatesAndRecyclesWithoutMoves) {
  // Counter saturation: Freed climbing all the way to Bump must release
  // the chunk (garbage collection for free — no moved words) and reset
  // both counters for its next cycle.
  Heap H;
  ChunkedManager::Options Opts;
  Opts.ChunkLog = 4;
  ChunkedManager MM(H, 10.0, Opts);
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 4; ++I)
    Ids.push_back(MM.allocate(4)); // fills chunk 0 exactly
  MM.allocate(1);                  // retires chunk 0, opens chunk 1
  EXPECT_EQ(MM.countersAt(0).Bump, 16u);
  for (ObjectId Id : Ids)
    MM.free(Id);
  // Freed == Bump: released on the last free, counters back to zero, and
  // the transient trigger (Freed crossed the threshold mid-way) is gone.
  EXPECT_EQ(MM.numFreeChunks(), 1u);
  EXPECT_EQ(MM.numPendingTriggers(), 0u);
  EXPECT_EQ(MM.countersAt(0).Bump, 0u);
  EXPECT_EQ(MM.countersAt(0).Freed, 0u);
  EXPECT_EQ(H.stats().MovedWords, 0u);
  // The recycled chunk is the next one opened (lowest-first).
  ObjectId Reuse = MM.allocate(16);
  EXPECT_EQ(H.object(Reuse).Address, 0u);
  EXPECT_EQ(H.stats().MovedWords, 0u);
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Chunked, TriggerFiresExactlyAtTheGarbageShareBoundary) {
  // The trigger rule is inclusive: freed words == threshold * chunk size
  // queues the chunk; one word short does not.
  Heap H;
  ChunkedManager::Options Opts;
  Opts.ChunkLog = 4;            // 16-word chunks
  Opts.GarbageThreshold = 0.5;  // boundary at exactly 8 freed words
  ChunkedManager MM(H, 2.0, Opts);
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 16; ++I)
    Ids.push_back(MM.allocate(1));
  MM.allocate(1); // retires chunk 0
  for (int I = 0; I != 7; ++I)
    MM.free(Ids[I]);
  EXPECT_EQ(MM.numPendingTriggers(), 0u) << "7/16 < 0.5 must not trigger";
  MM.free(Ids[7]);
  EXPECT_EQ(MM.numPendingTriggers(), 1u) << "8/16 == 0.5 must trigger";
  // The next allocation drains the queue: 8 survivors move, within the
  // budget floor(17/2) = 8.
  MM.allocate(1);
  EXPECT_EQ(MM.numChunkEvacuations(), 1u);
  EXPECT_EQ(MM.numPendingTriggers(), 0u);
  EXPECT_EQ(H.stats().MovedWords, 8u);
  EXPECT_GE(MM.numFreeChunks(), 1u);
  EXPECT_TRUE(MM.ledger().holds());
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Chunked, HumongousRunsDedicateChunksAndRecycle) {
  Heap H;
  ChunkedManager::Options Opts;
  Opts.ChunkLog = 4;
  ChunkedManager MM(H, 10.0, Opts);
  ObjectId Big = MM.allocate(40); // 3 dedicated chunks
  EXPECT_EQ(H.object(Big).Address, 0u);
  MM.free(Big);
  EXPECT_EQ(MM.numFreeChunks(), 3u);
  // A small allocation reuses the lowest recycled chunk; a second
  // humongous request no longer finds 3 consecutive free chunks and must
  // take a fresh run at the frontier.
  ObjectId Small = MM.allocate(4);
  EXPECT_EQ(H.object(Small).Address, 0u);
  ObjectId Big2 = MM.allocate(40);
  EXPECT_EQ(H.object(Big2).Address, 48u);
  EXPECT_EQ(H.stats().MovedWords, 0u) << "humongous runs are never moved";
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Chunked, BudgetDeniedTriggerWaitsForTheBudgetToGrow) {
  Heap H;
  ChunkedManager::Options Opts;
  Opts.ChunkLog = 4;
  ChunkedManager MM(H, 1000.0, Opts); // budget: 1 word per 1000 allocated
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 16; ++I)
    Ids.push_back(MM.allocate(1));
  MM.allocate(1); // retires chunk 0
  for (int I = 0; I != 8; ++I)
    MM.free(Ids[I]);
  ASSERT_EQ(MM.numPendingTriggers(), 1u);
  // Draining needs 8 words of budget; floor(18/1000) = 0. The trigger
  // must stay queued, untouched, not half-evacuated.
  MM.free(MM.allocate(1));
  EXPECT_EQ(MM.numChunkEvacuations(), 0u);
  EXPECT_EQ(H.stats().MovedWords, 0u);
  EXPECT_EQ(MM.numPendingTriggers(), 1u);
  // Churn until the budget covers the survivors, then the queued chunk
  // finally drains.
  for (int I = 0; I != 520; ++I)
    MM.free(MM.allocate(16));
  EXPECT_EQ(MM.numChunkEvacuations(), 1u);
  EXPECT_EQ(MM.numPendingTriggers(), 0u);
  EXPECT_EQ(H.stats().MovedWords, 8u);
  EXPECT_TRUE(MM.ledger().holds());
  EXPECT_TRUE(H.checkConsistency());
}

// --- Meshing compactor: probes, merges, edge addresses --------------------

TEST(Meshing, MergesDisjointChunksInsteadOfGrowing) {
  Heap H;
  MeshingCompactor MM(H, 4.0); // budget floor(128/4) = 32: exactly one merge
  // Two 64-word chunks of 8 x 8-word slots; free chunk 0's odd slots and
  // chunk 1's even slots so their occupancies interleave disjointly.
  std::vector<ObjectId> Ids;
  for (int I = 0; I != 16; ++I)
    Ids.push_back(MM.allocate(8));
  for (int I = 1; I < 8; I += 2)
    MM.free(Ids[I]);
  for (int I = 8; I < 16; I += 2)
    MM.free(Ids[I]);
  // Largest hole is 8 words: a 24-word request must mesh, not extend.
  ObjectId Big = MM.allocate(24);
  EXPECT_EQ(MM.numMerges(), 1u);
  EXPECT_EQ(H.stats().MovedWords, 32u) << "exactly the source chunk popcount";
  EXPECT_EQ(H.stats().HighWaterMark, 128u) << "the merge freed chunk 0";
  EXPECT_LT(H.object(Big).Address, 128u);
  EXPECT_TRUE(MM.ledger().holds());
  EXPECT_TRUE(H.checkConsistency());
}

TEST(Meshing, FruitlessPassIsCachedUntilTheHeapChanges) {
  Heap H;
  MeshingCompactor MM(H, 4.0);
  // Three chunks, each live only at offset [0, 8): every pair collides.
  std::vector<ObjectId> Keep, Fill;
  for (int I = 0; I != 3; ++I) {
    Keep.push_back(MM.allocate(8));
    Fill.push_back(MM.allocate(56));
  }
  for (ObjectId Id : Fill)
    MM.free(Id);
  EXPECT_FALSE(MM.meshPass());
  EXPECT_EQ(MM.numProbes(), 3u) << "3 candidate pairs, all colliding";
  // Nothing changed: the pass must short-circuit without re-probing.
  EXPECT_FALSE(MM.meshPass());
  EXPECT_EQ(MM.numProbes(), 3u);
  // A free invalidates the cache; the next pass scans again.
  MM.free(Keep[2]);
  MM.allocate(8); // first fit: lands at 8, thickening chunk 0
  EXPECT_FALSE(MM.meshPass());
  EXPECT_EQ(MM.numProbes(), 4u) << "one surviving pair, re-probed";
}

TEST(Meshing, MergeTargetLandingAtAddrLimit) {
  // A merge whose destination offset pushes an object flush against the
  // end of the address space must still account and move correctly.
  Heap H;
  MeshingCompactor MM(H, 1.0);
  const uint64_t SrcIndex = (AddrLimit - 128) / 64;
  ObjectId Src = H.place(AddrLimit - 72, 8); // source chunk, offset 56
  H.place(AddrLimit - 64, 8);                // destination chunk, offset 0
  MM.mergeChunks(SrcIndex, SrcIndex + 1);
  EXPECT_EQ(H.object(Src).Address, AddrLimit - 8)
      << "moved object must end exactly at AddrLimit";
  EXPECT_EQ(H.usedWordsIn(AddrLimit - 128, 64), 0u);
  EXPECT_EQ(MM.numMerges(), 1u);
  EXPECT_EQ(H.stats().MovedWords, 8u);
  EXPECT_TRUE(MM.ledger().holds());
  EXPECT_TRUE(H.checkConsistency());
}

TEST(MeshingDeathTest, DoubleMergeOfTheSamePairDies) {
  // After a merge the source chunk is empty; meshing the same pair again
  // is a policy bug the assertions must catch, not a silent no-op.
  Heap H;
  MeshingCompactor MM(H, 1.0);
  H.place(0, 8);      // chunk 0, offset 0
  H.place(64 + 8, 8); // chunk 1, offset 8: disjoint
  MM.mergeChunks(0, 1);
  ASSERT_EQ(H.usedWordsIn(0, 64), 0u);
  EXPECT_DEATH(MM.mergeChunks(0, 1), "meshing an empty source chunk");
}

// --- Property sweep across all managers ----------------------------------

struct ChurnCase {
  const char *Policy;
  uint64_t Seed;
};

class ManagerChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ManagerChurn, RandomWorkloadInvariants) {
  ChurnCase Case = GetParam();
  Heap H;
  auto MM = createManager(Case.Policy, H, 20.0, /*LiveBound=*/pow2(14));
  ASSERT_NE(MM, nullptr);
  MM->setMoveCallback([](ObjectId, Addr, Addr) { return false; });

  Rng R(Case.Seed);
  std::vector<ObjectId> Live;
  uint64_t ExpectedLiveWords = 0;
  for (int Op = 0; Op != 4000; ++Op) {
    if (Live.empty() || R.nextBool(0.55)) {
      uint64_t Size = uint64_t(1) << R.nextBelow(7);
      if (R.nextBool(0.3))
        Size += R.nextBelow(Size); // non-power-of-two sizes too
      ObjectId Id = MM->allocate(Size);
      ASSERT_TRUE(H.isLive(Id));
      ExpectedLiveWords += H.object(Id).Size;
      Live.push_back(Id);
    } else {
      size_t Pick = size_t(R.nextBelow(Live.size()));
      ObjectId Id = Live[Pick];
      Live[Pick] = Live.back();
      Live.pop_back();
      if (!H.isLive(Id))
        continue;
      ExpectedLiveWords -= H.object(Id).Size;
      MM->free(Id);
    }
    ASSERT_EQ(H.stats().LiveWords, ExpectedLiveWords);
    ASSERT_TRUE(MM->ledger().holds()) << "budget breached by "
                                      << Case.Policy;
  }
  // No two live objects overlap: total live words fit in the footprint.
  EXPECT_LE(H.stats().LiveWords, H.stats().HighWaterMark);
  // Address-ordered live objects are pairwise disjoint.
  std::vector<ObjectId> Sorted = H.liveObjects();
  for (size_t I = 1; I < Sorted.size(); ++I)
    ASSERT_LE(H.object(Sorted[I - 1]).end(), H.object(Sorted[I]).Address);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ManagerChurn,
    ::testing::Values(ChurnCase{"first-fit", 1}, ChurnCase{"best-fit", 2},
                      ChurnCase{"next-fit", 3}, ChurnCase{"aligned-fit", 4},
                      ChurnCase{"worst-fit", 12},
                      ChurnCase{"buddy", 5}, ChurnCase{"segregated-fit", 6},
                      ChurnCase{"evacuating", 7}, ChurnCase{"hybrid", 8},
                      ChurnCase{"sliding", 9},
                      ChurnCase{"sliding-unlimited", 10},
                      ChurnCase{"bump-compactor", 11},
                      ChurnCase{"paged-space", 13},
                      ChurnCase{"chunked", 14}, ChurnCase{"meshing", 15}),
    [](const ::testing::TestParamInfo<ChurnCase> &Info) {
      std::string Name = Info.param.Policy;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(ManagerFactory, KnowsAllPolicies) {
  Heap H;
  for (const std::string &Policy : allManagerPolicies()) {
    auto MM = createManager(Policy, H, 10.0, /*LiveBound=*/1024);
    ASSERT_NE(MM, nullptr) << Policy;
    if (Policy == "sliding-unlimited")
      EXPECT_EQ(MM->name(), "sliding-unlimited");
    else
      EXPECT_EQ(MM->name(), Policy);
  }
  EXPECT_EQ(createManager("no-such-policy", H, 10.0), nullptr);
  // The bump compactor needs the program's live bound.
  EXPECT_EQ(createManager("bump-compactor", H, 10.0), nullptr);
}

TEST(ManagerFactory, UnknownPolicyFailsWithTheFullPolicyList) {
  // Regression test: an unknown policy must fail loudly, naming every
  // valid policy — not fall back to a default manager or an opaque null.
  Heap H;
  std::string Error;
  EXPECT_EQ(createManagerChecked("no-such-policy", H, 10.0, 0, &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown policy 'no-such-policy'"),
            std::string::npos)
      << Error;
  for (const std::string &Policy : allManagerPolicies())
    EXPECT_NE(Error.find(Policy), std::string::npos)
        << "error message omits valid policy '" << Policy << "': " << Error;
  EXPECT_EQ(Error.find("requires a live bound"), std::string::npos)
      << "unknown-name failure must not reuse the bump-compactor message";
}

TEST(ManagerFactory, NewFamilyPoliciesAreListedInErrorPaths) {
  // Regression test for the chunked/meshing rollout: a near-miss name
  // must list the new policies among the valid ones, and both must
  // create without a live bound (unlike bump-compactor).
  Heap H;
  std::string Error;
  EXPECT_EQ(createManagerChecked("chunkd", H, 10.0, 0, &Error), nullptr);
  EXPECT_NE(Error.find("unknown policy 'chunkd'"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("chunked"), std::string::npos) << Error;
  EXPECT_NE(Error.find("meshing"), std::string::npos) << Error;
  Error.clear();
  auto Chunked = createManagerChecked("chunked", H, 10.0, 0, &Error);
  ASSERT_NE(Chunked, nullptr) << Error;
  EXPECT_EQ(Chunked->name(), "chunked");
  Heap H2;
  auto Meshing = createManagerChecked("meshing", H2, 10.0, 0, &Error);
  ASSERT_NE(Meshing, nullptr) << Error;
  EXPECT_EQ(Meshing->name(), "meshing");
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(ManagerFactory, BumpCompactorWithoutLiveBoundGetsItsOwnDiagnosis) {
  // A *known* policy failing for a missing parameter must not be
  // reported as unknown.
  Heap H;
  std::string Error;
  EXPECT_EQ(createManagerChecked("bump-compactor", H, 10.0, 0, &Error),
            nullptr);
  EXPECT_NE(Error.find("bump-compactor"), std::string::npos) << Error;
  EXPECT_NE(Error.find("requires a live bound"), std::string::npos)
      << Error;
  EXPECT_EQ(Error.find("unknown policy"), std::string::npos) << Error;
  // With the bound supplied the same call succeeds and leaves no stale
  // error behind.
  Error.clear();
  EXPECT_NE(createManagerChecked("bump-compactor", H, 10.0, 1024, &Error),
            nullptr);
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(ManagerFactory, CheckedSuccessMatchesUnchecked) {
  for (const std::string &Policy : allManagerPolicies()) {
    Heap H;
    std::string Error;
    auto MM = createManagerChecked(Policy, H, 10.0, 1024, &Error);
    ASSERT_NE(MM, nullptr) << Policy << ": " << Error;
    EXPECT_TRUE(Error.empty()) << Policy << ": " << Error;
  }
  // The list used in error messages covers exactly the factory's names.
  std::string List = managerPolicyList();
  for (const std::string &Policy : allManagerPolicies())
    EXPECT_NE(List.find(Policy), std::string::npos) << List;
}

} // namespace
