//===- tests/bounds_property_test.cpp - Property tests for src/bounds -----===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Where bounds_test.cpp pins the formulas to the paper's stated numbers,
// this suite pins their *shape*: the monotonicities the paper asserts in
// prose, the endpoint identities between the bound families, and the
// lower <= upper sandwich over a seeded random parameter sweep. Every
// property here was validated numerically before being pinned; notably,
// Theorem 2's upper bound is NOT monotone in c near its applicability
// threshold (small dips around c ~ log2(n)/2 + 2), and Theorem 1's lower
// bound can exceed Robson's non-moving value at n = 2 — so neither of
// those is asserted.
//
//===----------------------------------------------------------------------===//

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"

#include <gtest/gtest.h>

#include <random>

using namespace pcb;

namespace {

constexpr double Eps = 1e-9;

// --- Monotonicity where the paper says so -------------------------------

TEST(BoundsProperty, Theorem1LowerMonotoneInQuota) {
  // Section 4: the less compaction the manager may do (larger c), the
  // more waste the adversary forces. h is nondecreasing in c.
  for (auto [LogM, LogN] : std::vector<std::pair<unsigned, unsigned>>{
           {20, 10}, {28, 10}, {28, 20}}) {
    double Prev = 0.0;
    for (double C = 2.0; C <= 200.0; C += 1.0) {
      BoundParams P{pow2(LogM), pow2(LogN), C};
      double H = cohenPetrankLowerWasteFactor(P);
      EXPECT_GE(H, Prev - Eps)
          << "logm=" << LogM << " logn=" << LogN << " c=" << C;
      Prev = H;
    }
  }
}

TEST(BoundsProperty, Theorem1LowerMonotoneInLiveBound) {
  // Growing M (with n, c fixed) only helps the adversary: the 2n/M slack
  // term shrinks, so the forced waste factor is nondecreasing in M.
  for (double C : {10.0, 50.0}) {
    double Prev = 0.0;
    for (unsigned LogM = 11; LogM <= 30; ++LogM) {
      double H = cohenPetrankLowerWasteFactor({pow2(LogM), pow2(10), C});
      EXPECT_GE(H, Prev - Eps) << "c=" << C << " logm=" << LogM;
      Prev = H;
    }
  }
}

TEST(BoundsProperty, RobsonMonotoneInBothParameters) {
  // Robson's waste factor log2(n)/2 + 1 - (n - 1)/M grows with M at
  // fixed n and with n at fixed M.
  double Prev = 0.0;
  for (unsigned LogM = 12; LogM <= 30; ++LogM) {
    double W = robsonWasteFactor({pow2(LogM), pow2(10), 2.0});
    EXPECT_GE(W, Prev - Eps) << "logm=" << LogM;
    Prev = W;
  }
  Prev = 0.0;
  for (unsigned LogN = 1; LogN <= 24; ++LogN) {
    double W = robsonWasteFactor({pow2(28), pow2(LogN), 2.0});
    EXPECT_GE(W, Prev - Eps) << "logn=" << LogN;
    Prev = W;
  }
}

// --- Endpoint agreement -------------------------------------------------

TEST(BoundsProperty, BenderskyUpperIsExactlyQuotaPlusOne) {
  // The prior-art upper bound is (c + 1) M on the nose, at every c.
  for (double C : {2.0, 3.5, 10.0, 50.0, 100.0}) {
    BoundParams P{pow2(28), pow2(20), C};
    EXPECT_DOUBLE_EQ(benderskyPetrankUpperWasteFactor(P), C + 1.0);
    EXPECT_DOUBLE_EQ(benderskyPetrankUpperHeapWords(P),
                     (C + 1.0) * double(P.M));
  }
}

TEST(BoundsProperty, NewUpperCollapsesToPriorBelowThreshold) {
  // Theorem 2 needs c > log2(n)/2; at or below the threshold the "new
  // best" combined upper bound must agree with the prior art exactly,
  // and above it the new bound can only improve (it is a min).
  for (unsigned LogN : {10u, 20u}) {
    BoundParams At{pow2(28), pow2(LogN), 0.5 * double(LogN)};
    EXPECT_DOUBLE_EQ(newBestUpperWasteFactor(At),
                     priorBestUpperWasteFactor(At));
    for (double C : {2.0, 10.0, 50.0, 150.0}) {
      BoundParams P{pow2(28), pow2(LogN), C};
      EXPECT_LE(newBestUpperWasteFactor(P),
                priorBestUpperWasteFactor(P) + Eps)
          << "logn=" << LogN << " c=" << C;
    }
  }
}

TEST(BoundsProperty, SigmaAdmissibilityEndpoints) {
  // The density exponent sigma needs 2^sigma <= 3c/4: no admissible
  // sigma below c = 8/3, and the count grows with c like
  // floor(log2(3c/4)). Probed away from the exact 8/3 boundary, which
  // sits on a rounding knife-edge in binary floating point.
  EXPECT_EQ(cohenPetrankMaxSigma(2.0), 0u);
  EXPECT_EQ(cohenPetrankMaxSigma(3.0), 1u);
  EXPECT_EQ(cohenPetrankMaxSigma(6.0), 2u);
  EXPECT_EQ(cohenPetrankMaxSigma(100.0), 6u);
}

// --- The sandwich over a random parameter sweep -------------------------

TEST(BoundsProperty, RandomSweepSandwich) {
  // 500 seeded random cells with n >= 4 (Theorem 1 vs Robson genuinely
  // needs n > 2; at n = 2 the lower bound can poke above Robson's value,
  // which only means the closed forms' domains differ there). At every
  // cell: 1 <= Theorem-1 lower <= every upper, lower <= Robson, and the
  // POPL'11 lower below the combined upper too.
  std::mt19937_64 Rng(12345);
  for (int I = 0; I != 500; ++I) {
    unsigned LogN = 2 + unsigned(Rng() % 21);                // n in [4, 2^22]
    unsigned LogM = LogN + 1 + unsigned(Rng() % (30 - LogN)); // M > n
    double C = 2.0 + double(Rng() % 2000) / 10.0;            // c in [2, 202)
    BoundParams P{pow2(LogM), pow2(LogN), C};
    ASSERT_TRUE(P.valid());

    double Lower = cohenPetrankLowerWasteFactor(P);
    double PriorLower = benderskyPetrankLowerWasteFactor(P);
    double Upper = newBestUpperWasteFactor(P);
    double Robson = robsonWasteFactor(P);

    EXPECT_GE(Lower, 1.0 - Eps) << "cell " << I;
    EXPECT_LE(Lower, Upper + Eps)
        << "cell " << I << ": logm=" << LogM << " logn=" << LogN
        << " c=" << C;
    EXPECT_LE(Lower, Robson + Eps)
        << "cell " << I << ": logm=" << LogM << " logn=" << LogN
        << " c=" << C;
    EXPECT_LE(PriorLower, Upper + Eps) << "cell " << I;
    EXPECT_LE(Upper, C + 1.0 + Eps)
        << "cell " << I << ": combined upper must beat (c+1)M";
  }
}

} // namespace
