//===- tests/runner_test.cpp - Unit tests for src/runner -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"

#include "adversary/RobsonProgram.h"
#include "driver/Execution.h"
#include "mm/SequentialFitManagers.h"
#include "support/MathUtils.h"
#include "support/OptionParser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

using namespace pcb;

namespace {

Runner makeRunner(unsigned Threads) {
  RunnerOptions Opts;
  Opts.Threads = Threads;
  Opts.Progress = 0;
  return Runner(Opts);
}

TEST(ExperimentGrid, CartesianDecode) {
  ExperimentGrid G;
  G.addAxis("c", std::vector<double>{10, 50, 100});
  G.addAxis("policy", std::vector<std::string>{"first-fit", "best-fit"});
  ASSERT_EQ(G.numCells(), 6u);

  // First axis outermost, last axis fastest-varying — the nested-loop
  // order the benches historically used.
  GridCell C0 = G.cell(0);
  EXPECT_EQ(C0.num("c"), 10.0);
  EXPECT_EQ(C0.str("policy"), "first-fit");
  GridCell C1 = G.cell(1);
  EXPECT_EQ(C1.num("c"), 10.0);
  EXPECT_EQ(C1.str("policy"), "best-fit");
  GridCell C5 = G.cell(5);
  EXPECT_EQ(C5.num("c"), 100.0);
  EXPECT_EQ(C5.str("policy"), "best-fit");
  EXPECT_EQ(C5.axisIndex("c"), 2u);
  EXPECT_EQ(C5.axisIndex("policy"), 1u);
}

TEST(ExperimentGrid, RangeAxis) {
  ExperimentGrid G;
  G.addRangeAxis("logn", 4, 8);
  ASSERT_EQ(G.numCells(), 5u);
  EXPECT_EQ(G.cell(0).num("logn"), 4.0);
  EXPECT_EQ(G.cell(4).num("logn"), 8.0);

  ExperimentGrid Empty;
  Empty.addRangeAxis("logn", 8, 4);
  EXPECT_EQ(Empty.numCells(), 0u);
}

TEST(ExperimentGrid, EmptyGridHasNoCells) {
  ExperimentGrid NoAxes;
  EXPECT_EQ(NoAxes.numCells(), 0u);

  ExperimentGrid EmptyAxis;
  EmptyAxis.addAxis("c", std::vector<double>{});
  EmptyAxis.addAxis("policy", std::vector<std::string>{"first-fit"});
  EXPECT_EQ(EmptyAxis.numCells(), 0u);
}

TEST(ExperimentGrid, CellSeedsAreDistinctAndStable) {
  ExperimentGrid G(/*BaseSeed=*/42);
  G.addRangeAxis("i", 0, 99);
  std::set<uint64_t> Seeds;
  for (uint64_t I = 0; I != G.numCells(); ++I)
    Seeds.insert(G.cell(I).seed());
  EXPECT_EQ(Seeds.size(), 100u);

  // Seeds depend only on (base seed, index): a fresh identical grid and a
  // differently-seeded grid.
  ExperimentGrid Same(42);
  Same.addRangeAxis("i", 0, 99);
  EXPECT_EQ(Same.cell(7).seed(), G.cell(7).seed());
  ExperimentGrid Other(43);
  Other.addRangeAxis("i", 0, 99);
  EXPECT_NE(Other.cell(7).seed(), G.cell(7).seed());

  EXPECT_EQ(G.cell(7).seed(), splitSeed(42, 7));
}

TEST(SplitSeed, MatchesSplitMixStream) {
  // splitSeed(base, k) must be the (k+1)-th SplitMix64 output for base;
  // adjacent children must decorrelate (no shared high bits pattern).
  EXPECT_NE(splitSeed(0, 0), splitSeed(0, 1));
  EXPECT_NE(splitSeed(0, 0), splitSeed(1, 0));
  std::set<uint64_t> Children;
  for (uint64_t K = 0; K != 1000; ++K)
    Children.insert(splitSeed(12345, K));
  EXPECT_EQ(Children.size(), 1000u);
}

/// Renders the sink's table as CSV for byte-level comparison.
std::string csvOf(const ResultSink &Sink) {
  std::ostringstream OS;
  Sink.toTable().printCsv(OS);
  return OS.str();
}

/// A stochastic cell function: result depends only on the cell's seed, so
/// any execution order / thread count must reproduce it.
Row stochasticCell(const GridCell &Cell) {
  Rng R(Cell.seed());
  uint64_t Sum = 0;
  for (int I = 0; I != 1000; ++I)
    Sum += R.nextBelow(1000);
  return Row().addCell(Cell.index()).addCell(Sum);
}

TEST(Runner, SingleVsMultiThreadedTablesAreIdentical) {
  ExperimentGrid G(7);
  G.addRangeAxis("i", 0, 31);

  ResultSink Serial({"cell", "sum"});
  makeRunner(1).runRows(G, stochasticCell, Serial);
  ASSERT_EQ(Serial.numRows(), 32u);

  for (unsigned Threads : {2u, 8u}) {
    ResultSink Parallel({"cell", "sum"});
    makeRunner(Threads).runRows(G, stochasticCell, Parallel);
    EXPECT_EQ(csvOf(Parallel), csvOf(Serial))
        << "table differs at " << Threads << " threads";
  }
}

TEST(Runner, RealExecutionsAreDeterministicAcrossThreadCounts) {
  // End-to-end: private Heap/Manager/Program per cell, as the benches run.
  ExperimentGrid G;
  G.addRangeAxis("logm", 9, 12);
  G.addRangeAxis("logn", 3, 5);
  auto CellFn = [](const GridCell &Cell) {
    const uint64_t M = pow2(unsigned(Cell.num("logm")));
    Heap H;
    FirstFitManager MM(H, 1e18);
    RobsonProgram PR(M, unsigned(Cell.num("logn")));
    Execution E(MM, PR, M);
    ExecutionResult R = E.run();
    return Row().addCell(R.HeapSize).addCell(R.TotalAllocatedWords);
  };
  ResultSink Serial({"hs", "alloc"});
  makeRunner(1).runRows(G, CellFn, Serial);
  ResultSink Parallel({"hs", "alloc"});
  makeRunner(8).runRows(G, CellFn, Parallel);
  EXPECT_EQ(csvOf(Parallel), csvOf(Serial));
}

TEST(Runner, PermutedExecutionOrderDoesNotChangeAnyCell) {
  // Per-cell seed independence: running the cells by hand in reverse (or
  // any) order yields exactly the rows the pool produced for each index.
  ExperimentGrid G(99);
  G.addRangeAxis("i", 0, 15);

  ResultSink Pooled({"cell", "sum"});
  makeRunner(4).runRows(G, stochasticCell, Pooled);

  ResultSink Reversed({"cell", "sum"});
  Reversed.resizeCells(G.numCells());
  for (uint64_t I = G.numCells(); I-- != 0;)
    Reversed.store(I, {stochasticCell(G.cell(I))});
  EXPECT_EQ(csvOf(Reversed), csvOf(Pooled));
}

TEST(Runner, EmptyGrid) {
  ExperimentGrid G;
  ResultSink Sink({"x"});
  uint64_t Calls = 0;
  makeRunner(4).run(
      G,
      [&](const GridCell &) -> std::vector<Row> {
        ++Calls;
        return {};
      },
      Sink);
  EXPECT_EQ(Calls, 0u);
  EXPECT_EQ(Sink.numRows(), 0u);
  EXPECT_EQ(Sink.toTable().numRows(), 0u);
}

TEST(Runner, OneCellGrid) {
  ExperimentGrid G;
  G.addAxis("c", std::vector<double>{50});
  ResultSink Sink({"c"});
  makeRunner(8).runRows(
      G, [](const GridCell &Cell) { return Row().addCell(Cell.num("c"), 0); },
      Sink);
  ASSERT_EQ(Sink.numRows(), 1u);
  EXPECT_EQ(csvOf(Sink), "c\n50\n");
}

TEST(Runner, CellsMayProduceZeroOrManyRows) {
  ExperimentGrid G;
  G.addRangeAxis("i", 0, 5);
  ResultSink Sink({"i"});
  makeRunner(3).run(
      G,
      [](const GridCell &Cell) {
        // Cell i yields i % 3 rows: exercises flattening in cell order.
        std::vector<Row> Rows;
        for (uint64_t K = 0; K != uint64_t(Cell.num("i")) % 3; ++K)
          Rows.push_back(Row().addCell(Cell.index()));
        return Rows;
      },
      Sink);
  EXPECT_EQ(csvOf(Sink), "i\n1\n2\n2\n4\n5\n5\n");
}

TEST(Runner, MapReturnsResultsInCellOrder) {
  ExperimentGrid G(3);
  G.addRangeAxis("i", 0, 63);
  std::vector<uint64_t> Expected;
  for (uint64_t I = 0; I != 64; ++I)
    Expected.push_back(splitSeed(3, I));
  std::vector<uint64_t> Got = makeRunner(8).map<uint64_t>(
      G, [](const GridCell &Cell) { return Cell.seed(); });
  EXPECT_EQ(Got, Expected);
}

TEST(ResultSink, EmitReportsUnwritableOutput) {
  const char *Argv[] = {"test", "out=/nonexistent-dir/table.csv"};
  OptionParser Opts(2, Argv);
  ResultSink Sink({"x"});
  Sink.append(Row().addCell(uint64_t(1)));
  testing::internal::CaptureStdout();
  bool Ok = Sink.emit(Opts);
  testing::internal::GetCapturedStdout();
  EXPECT_FALSE(Ok);
}

TEST(ResultSink, JsonEmitsNumbersUnquoted) {
  ResultSink Sink({"c", "policy", "waste"});
  Sink.append(Row().addCell(uint64_t(10)).addCell("first-fit").addCell(3.485, 3));
  std::ostringstream OS;
  Sink.printJson(OS);
  EXPECT_EQ(OS.str(),
            "[\n  {\"c\": 10, \"policy\": \"first-fit\", \"waste\": 3.485}\n]\n");
}

} // namespace
