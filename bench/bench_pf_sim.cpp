//===- bench/bench_pf_sim.cpp - E5: Theorem 1 by simulation --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Runs the Cohen-Petrank adversary PF against the c-partial manager
// family at scaled parameters, sweeping the compaction quota c. Theorem 1
// says every manager's measured waste factor must be at least the h
// computed for (M, n, c); the bench prints both plus the budget actually
// spent. The unlimited slider is included as the "overhead factor 1"
// reference the introduction contrasts against — it is *not* c-partial
// and is the only row allowed below h.
//
// Usage: bench_pf_sim [logm=16] [logn=9] [cs=10,25,50,75,100] [csv=0]
//                     [threads=0] [out=] [bench-json=FILE]
//                     [overhead-check=0]
//
// The results table on stdout stays byte-identical across thread counts
// (the determinism test diffs it); everything wall-clock — the perf
// summary, slowest cells — goes to stderr, and the machine-readable
// regression baseline (ops/sec plus a per-phase breakdown from a
// profiled re-run of one representative cell) goes to bench-json=FILE.
// overhead-check=1 asserts the disabled-profiler ScopedTimer fast path
// costs nanoseconds, failing the run when instrumentation regresses.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "BenchUtils.h"
#include "obs/Profiler.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace pcb;

namespace {

/// Asserts the null-sink fast path: with no profiler installed, a
/// ScopedTimer is one thread_local load and a branch. The ceiling is
/// generous (a clock read alone costs ~20ns; the disabled path must stay
/// well under one) so the check only fires on a real regression, e.g.
/// someone adding an unconditional clock read.
int runOverheadCheck() {
  constexpr uint64_t Iters = 20'000'000;
  auto Start = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I != Iters; ++I) {
    ScopedTimer T(Profiler::SecHeapPlace);
    // Keep the loop body from being hoisted or elided wholesale.
    asm volatile("" ::: "memory");
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  double NsPerOp = Seconds * 1e9 / double(Iters);
  std::cerr << "# overhead-check: disabled ScopedTimer = "
            << formatDouble(NsPerOp, 2) << " ns/op over " << Iters
            << " iterations\n";
  if (NsPerOp > 25.0) {
    std::cerr << "# overhead-check: FAIL — disabled instrumentation must"
              << " stay under 25 ns/op\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 16));
  unsigned LogN = unsigned(Opts.getUInt("logn", 9));
  std::vector<double> Cs = parseNumberList(Opts.getString("cs", "10,25,50,75,100"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);
  std::string BenchJsonPath = Opts.getString("bench-json", "");
  if (Opts.getBool("overhead-check", false) && runOverheadCheck() != 0)
    return 1;

  std::cout << "# E5: Theorem 1 by simulation: PF vs c-partial managers"
            << " (M=" << formatWords(M) << ", n=" << formatWords(N) << ")\n"
            << "# Every c-partial row must satisfy measured >= h;"
            << " sliding-unlimited is the non-c-partial reference.\n";

  // The last policy value is the non-c-partial full compactor; keeping it
  // on the axis preserves the historical row order (reference row last
  // within each c group).
  const std::string Reference = "sliding-unlimited*";
  std::vector<std::string> Policies = {"first-fit",  "best-fit",
                                       "segregated-fit", "chunked",
                                       "meshing",    "evacuating",
                                       "hybrid",     "sliding",
                                       "paged-space",
                                       "bump-compactor", Reference};

  ExperimentGrid Grid;
  Grid.addAxis("c", Cs);
  Grid.addAxis("policy", Policies);

  ResultSink Sink({"c", "policy", "measured_HS", "measured_waste", "theory_h",
                   "sigma", "moved_words", "budget_used_%"});
  std::atomic<uint64_t> TotalSteps{0};
  std::atomic<uint64_t> TotalAllocatedWords{0};
  Runner Run = makeRunner(Opts);
  Run.runRows(
      Grid,
      [&](const GridCell &Cell) {
        double C = Cell.num("c");
        const std::string &Policy = Cell.str("policy");
        bool IsReference = Policy == Reference;
        Heap H;
        auto MM = IsReference
                      ? createManager("sliding-unlimited", H, 0.0)
                      : createManager(Policy, H, C, /*LiveBound=*/M);
        CohenPetrankProgram PF(M, N, C);
        Execution E(*MM, PF, M);
        ExecutionResult R = E.run();
        TotalSteps.fetch_add(R.Steps, std::memory_order_relaxed);
        TotalAllocatedWords.fetch_add(R.TotalAllocatedWords,
                                      std::memory_order_relaxed);
        Row Out;
        Out.addCell(uint64_t(C))
            .addCell(Policy)
            .addCell(R.HeapSize)
            .addCell(R.wasteFactor(M), 3)
            .addCell(PF.targetWasteFactor(), 3)
            .addCell(uint64_t(PF.sigma()))
            .addCell(R.MovedWords);
        if (IsReference) {
          Out.addCell(std::string("n/a"));
        } else {
          double BudgetPct = R.TotalAllocatedWords == 0
                                 ? 0.0
                                 : 100.0 * double(R.MovedWords) * C /
                                       double(R.TotalAllocatedWords);
          Out.addCell(BudgetPct, 1);
        }
        return Out;
      },
      Sink);
  if (!Sink.emit(Opts))
    return 1;

  std::cout << "\n# (*) not a c-partial manager: unlimited compaction"
            << " budget, shown as the overhead-1 reference.\n";

  // Wall-clock reporting is stderr-only: the determinism test diffs
  // stdout across thread counts.
  double Wall = Run.wallSeconds();
  double StepsPerSec =
      Wall > 0.0 ? double(TotalSteps.load()) / Wall : 0.0;
  std::cerr << "# perf: " << Grid.numCells() << " cells in "
            << formatDouble(Wall, 2) << "s wall (threads=" << Run.threads()
            << "); " << TotalSteps.load() << " steps, "
            << uint64_t(StepsPerSec) << " steps/s\n";
  // The slowest cells, for eyeballing where the time goes.
  std::vector<size_t> ByTime(Run.cellSeconds().size());
  for (size_t I = 0; I != ByTime.size(); ++I)
    ByTime[I] = I;
  std::sort(ByTime.begin(), ByTime.end(), [&](size_t A, size_t B) {
    return Run.cellSeconds()[A] > Run.cellSeconds()[B];
  });
  size_t NumSlow = std::min<size_t>(3, ByTime.size());
  for (size_t I = 0; I != NumSlow; ++I) {
    GridCell Cell = Grid.cell(ByTime[I]);
    std::cerr << "# slowest[" << I << "]: c=" << formatDouble(Cell.num("c"), 0)
              << " policy=" << Cell.str("policy") << " "
              << formatDouble(Run.cellSeconds()[ByTime[I]], 3) << "s\n";
  }

  if (!BenchJsonPath.empty()) {
    // Per-phase breakdown from a profiled serial re-run of one
    // representative cell (the evacuating manager at the first quota).
    Profiler Prof;
    double CellWall = 0.0;
    uint64_t CellSteps = 0;
    {
      Heap H;
      auto MM = createManager("evacuating", H, Cs.front(), /*LiveBound=*/M);
      CohenPetrankProgram PF(M, N, Cs.front());
      Execution E(*MM, PF, M);
      ProfilerScope Scope(Prof);
      auto Start = std::chrono::steady_clock::now();
      CellSteps = E.run().Steps;
      CellWall = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    }

    std::ofstream OS(BenchJsonPath);
    OS << "{\n"
       << "  \"bench\": \"pf_sim\",\n"
       << "  \"logm\": " << LogM << ",\n"
       << "  \"logn\": " << LogN << ",\n"
       << "  \"cs\": [";
    for (size_t I = 0; I != Cs.size(); ++I)
      OS << (I ? ", " : "") << formatDouble(Cs[I], 0);
    OS << "],\n"
       << "  \"threads\": " << Run.threads() << ",\n"
       << "  \"wall_seconds\": " << formatDouble(Wall, 3) << ",\n"
       << "  \"total_steps\": " << TotalSteps.load() << ",\n"
       << "  \"total_allocated_words\": " << TotalAllocatedWords.load()
       << ",\n"
       << "  \"steps_per_second\": " << formatDouble(StepsPerSec, 1)
       << ",\n"
       << "  \"slowest_cells\": [";
    for (size_t I = 0; I != NumSlow; ++I) {
      GridCell Cell = Grid.cell(ByTime[I]);
      OS << (I ? ", " : "") << "{\"c\": " << formatDouble(Cell.num("c"), 0)
         << ", \"policy\": \"" << Cell.str("policy") << "\", \"seconds\": "
         << formatDouble(Run.cellSeconds()[ByTime[I]], 3) << "}";
    }
    OS << "],\n"
       << "  \"profiled_cell\": {\"policy\": \"evacuating\", \"c\": "
       << formatDouble(Cs.front(), 0) << ", \"steps\": " << CellSteps
       << ", \"wall_seconds\": " << formatDouble(CellWall, 3) << "},\n"
       << "  \"per_phase\": [";
    bool First = true;
    for (unsigned S = 0; S != Profiler::NumSections; ++S) {
      const Profiler::SectionStats &Stats =
          Prof.section(Profiler::Section(S));
      if (Stats.Calls == 0)
        continue;
      OS << (First ? "" : ", ") << "{\"section\": \""
         << Profiler::sectionName(Profiler::Section(S))
         << "\", \"calls\": " << Stats.Calls << ", \"total_ms\": "
         << formatDouble(double(Stats.Nanos) * 1e-6, 3)
         << ", \"ns_per_call\": "
         << formatDouble(double(Stats.Nanos) / double(Stats.Calls), 1)
         << "}";
      First = false;
    }
    OS << "]\n}\n";
    if (!OS) {
      std::cerr << "error: cannot write '" << BenchJsonPath << "'\n";
      return 1;
    }
    std::cerr << "# bench baseline written to " << BenchJsonPath << "\n";
  }
  return 0;
}
