//===- bench/bench_pf_sim.cpp - E5: Theorem 1 by simulation --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Runs the Cohen-Petrank adversary PF against the c-partial manager
// family at scaled parameters, sweeping the compaction quota c. Theorem 1
// says every manager's measured waste factor must be at least the h
// computed for (M, n, c); the bench prints both plus the budget actually
// spent. The unlimited slider is included as the "overhead factor 1"
// reference the introduction contrasts against — it is *not* c-partial
// and is the only row allowed below h.
//
// Usage: bench_pf_sim [logm=16] [logn=9] [cs=10,25,50,75,100] [csv=0]
//                     [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>
#include <sstream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 16));
  unsigned LogN = unsigned(Opts.getUInt("logn", 9));
  std::vector<double> Cs = parseNumberList(Opts.getString("cs", "10,25,50,75,100"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout << "# E5: Theorem 1 by simulation: PF vs c-partial managers"
            << " (M=" << formatWords(M) << ", n=" << formatWords(N) << ")\n"
            << "# Every c-partial row must satisfy measured >= h;"
            << " sliding-unlimited is the non-c-partial reference.\n";

  // The last policy value is the non-c-partial full compactor; keeping it
  // on the axis preserves the historical row order (reference row last
  // within each c group).
  const std::string Reference = "sliding-unlimited*";
  std::vector<std::string> Policies = {"first-fit",  "best-fit",
                                       "segregated-fit", "evacuating",
                                       "hybrid",     "sliding",
                                       "paged-space",
                                       "bump-compactor", Reference};

  ExperimentGrid Grid;
  Grid.addAxis("c", Cs);
  Grid.addAxis("policy", Policies);

  ResultSink Sink({"c", "policy", "measured_HS", "measured_waste", "theory_h",
                   "sigma", "moved_words", "budget_used_%"});
  makeRunner(Opts).runRows(
      Grid,
      [&](const GridCell &Cell) {
        double C = Cell.num("c");
        const std::string &Policy = Cell.str("policy");
        bool IsReference = Policy == Reference;
        Heap H;
        auto MM = IsReference
                      ? createManager("sliding-unlimited", H, 0.0)
                      : createManager(Policy, H, C, /*LiveBound=*/M);
        CohenPetrankProgram PF(M, N, C);
        Execution E(*MM, PF, M);
        ExecutionResult R = E.run();
        Row Out;
        Out.addCell(uint64_t(C))
            .addCell(Policy)
            .addCell(R.HeapSize)
            .addCell(R.wasteFactor(M), 3)
            .addCell(PF.targetWasteFactor(), 3)
            .addCell(uint64_t(PF.sigma()))
            .addCell(R.MovedWords);
        if (IsReference) {
          Out.addCell(std::string("n/a"));
        } else {
          double BudgetPct = R.TotalAllocatedWords == 0
                                 ? 0.0
                                 : 100.0 * double(R.MovedWords) * C /
                                       double(R.TotalAllocatedWords);
          Out.addCell(BudgetPct, 1);
        }
        return Out;
      },
      Sink);
  if (!Sink.emit(Opts))
    return 1;

  std::cout << "\n# (*) not a c-partial manager: unlimited compaction"
            << " budget, shown as the overhead-1 reference.\n";
  return 0;
}
