//===- bench/bench_pf_sim.cpp - E5: Theorem 1 by simulation --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Runs the Cohen-Petrank adversary PF against the c-partial manager
// family at scaled parameters, sweeping the compaction quota c. Theorem 1
// says every manager's measured waste factor must be at least the h
// computed for (M, n, c); the bench prints both plus the budget actually
// spent. The unlimited slider is included as the "overhead factor 1"
// reference the introduction contrasts against — it is *not* c-partial
// and is the only row allowed below h.
//
// Usage: bench_pf_sim [logm=16] [logn=9] [cs=10,25,50,75,100] [csv=0]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "BenchUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>
#include <sstream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 16));
  unsigned LogN = unsigned(Opts.getUInt("logn", 9));
  std::vector<double> Cs = parseNumberList(Opts.getString("cs", "10,25,50,75,100"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout << "# E5: Theorem 1 by simulation: PF vs c-partial managers"
            << " (M=" << formatWords(M) << ", n=" << formatWords(N) << ")\n"
            << "# Every c-partial row must satisfy measured >= h;"
            << " sliding-unlimited is the non-c-partial reference.\n";

  std::vector<std::string> Policies = {"first-fit",  "best-fit",
                                       "segregated-fit", "evacuating",
                                       "hybrid",     "sliding",
                                       "paged-space",
                                       "bump-compactor"};

  Table T({"c", "policy", "measured_HS", "measured_waste", "theory_h",
           "sigma", "moved_words", "budget_used_%"});
  for (double C : Cs) {
    for (const std::string &Policy : Policies) {
      Heap H;
      auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
      CohenPetrankProgram PF(M, N, C);
      Execution E(*MM, PF, M);
      ExecutionResult R = E.run();
      double BudgetPct =
          R.TotalAllocatedWords == 0
              ? 0.0
              : 100.0 * double(R.MovedWords) * C /
                    double(R.TotalAllocatedWords);
      T.beginRow();
      T.addCell(uint64_t(C));
      T.addCell(Policy);
      T.addCell(R.HeapSize);
      T.addCell(R.wasteFactor(M), 3);
      T.addCell(PF.targetWasteFactor(), 3);
      T.addCell(uint64_t(PF.sigma()));
      T.addCell(R.MovedWords);
      T.addCell(BudgetPct, 1);
    }
    // The non-c-partial reference: full compaction reaches overhead ~1.
    Heap H;
    auto MM = createManager("sliding-unlimited", H, 0.0);
    CohenPetrankProgram PF(M, N, C);
    Execution E(*MM, PF, M);
    ExecutionResult R = E.run();
    T.beginRow();
    T.addCell(uint64_t(C));
    T.addCell(std::string("sliding-unlimited*"));
    T.addCell(R.HeapSize);
    T.addCell(R.wasteFactor(M), 3);
    T.addCell(PF.targetWasteFactor(), 3);
    T.addCell(uint64_t(PF.sigma()));
    T.addCell(R.MovedWords);
    T.addCell(std::string("n/a"));
  }
  if (!emitTable(T, Opts))
    return 1;

  std::cout << "\n# (*) not a c-partial manager: unlimited compaction"
            << " budget, shown as the overhead-1 reference.\n";
  return 0;
}
