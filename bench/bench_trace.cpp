//===- bench/bench_trace.cpp - E15: trace replay under budget gates ------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Drives the trace engine end to end: each named workload pattern is
// generated once, serialized through the malloc-trace wire format, and
// then *streamed back* through every (policy x controller) pair — so one
// cell covers TraceWriter, TraceReader, StreamingTraceProgram and the
// spend gate together, exactly the production trace-run path. The table
// compares how the budget controllers trade compaction-budget burn
// against the achieved waste factor on identical schedules.
//
// Usage: bench_trace [traces=churn,queue-fifo,comb] [ops=20000]
//                    [policies=first-fit,evacuating,chunked]
//                    [controllers=fixed,periodic,membalancer]
//                    [c=50] [period=64] [c1=10000] [smoothing=0.25]
//                    [seed=42] [maxlog=8] [live=16384] [threads=0]
//                    [csv=0] [json=0] [out=] [bench-json=FILE]
//
// The results table on stdout stays byte-identical across thread counts
// (the determinism test diffs it); wall-clock perf goes to stderr, and
// the machine-readable regression baseline (ops/sec plus the per-phase
// breakdown, trace.read included) goes to bench-json=FILE.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "fuzz/WorkloadFuzzer.h"
#include "obs/Profiler.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceRun.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

using namespace pcb;

namespace {

/// Splits "a,b,c" into non-empty items.
std::vector<std::string> parseNameList(const std::string &Text) {
  std::vector<std::string> Names;
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Names.push_back(Item);
  return Names;
}

/// Resolves a fuzz pattern by name; exits with a diagnostic otherwise.
WorkloadFuzzer::Pattern patternByName(const std::string &Name) {
  for (WorkloadFuzzer::Pattern P : WorkloadFuzzer::allPatterns())
    if (WorkloadFuzzer::patternName(P) == Name)
      return P;
  std::cerr << "error: unknown trace pattern '" << Name << "' (one of:";
  for (WorkloadFuzzer::Pattern P : WorkloadFuzzer::allPatterns())
    std::cerr << " " << WorkloadFuzzer::patternName(P);
  std::cerr << ")\n";
  std::exit(1);
}

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::vector<std::string> Traces =
      parseNameList(Opts.getString("traces", "churn,queue-fifo,comb"));
  std::vector<std::string> Policies = parseNameList(
      Opts.getString("policies", "first-fit,evacuating,chunked"));
  std::vector<std::string> Controllers = parseNameList(
      Opts.getString("controllers", "fixed,periodic,membalancer"));
  uint64_t NumOps = Opts.getUInt("ops", 20000);
  uint64_t Seed = Opts.getUInt("seed", 42);
  if (Traces.empty() || Policies.empty() || Controllers.empty() ||
      NumOps == 0) {
    std::cerr << "error: traces=, policies=, controllers= and ops= must"
              << " be non-empty\n";
    return 1;
  }
  ControllerSpec Spec; // shared tuning; Name set per cell
  Spec.Period = std::max<uint64_t>(1, Opts.getUInt("period", 64));
  Spec.C1 = Opts.getDouble("c1", 10000.0);
  Spec.Smoothing = Opts.getDouble("smoothing", 0.25);
  TraceRunOptions Base;
  Base.C = Opts.getDouble("c", 50.0);
  Base.LiveBound = Opts.getUInt("live", 0);
  std::string BenchJsonPath = Opts.getString("bench-json", "");

  // Generate each trace once and push it through the wire format, so the
  // grid cells stream exactly what trace-run would read from disk. The
  // binary framing is the production one (and the denser to parse).
  WorkloadFuzzer::Options FO;
  FO.NumOps = NumOps;
  FO.LiveBound = std::max<uint64_t>(1, Opts.getUInt("livegen", 1 << 12));
  FO.MaxLogSize = unsigned(Opts.getUInt("maxlog", 8));
  std::map<std::string, std::string> Serialized;
  for (size_t T = 0; T != Traces.size(); ++T) {
    FO.Seed = splitSeed(Seed, T);
    FO.P = patternByName(Traces[T]);
    std::ostringstream OS;
    TraceRecorder Rec(OS, TraceFraming::Binary);
    Rec.record(WorkloadFuzzer(FO).generate().materialize());
    Serialized[Traces[T]] = OS.str();
  }

  std::cout << "# E15: trace replay under budget controllers: "
            << Traces.size() << " traces x " << Policies.size()
            << " policies x " << Controllers.size() << " controllers (ops="
            << NumOps << ", c=" << formatDouble(Base.C, 0) << ", period="
            << Spec.Period << ", c1=" << formatDouble(Spec.C1, 0) << ")\n"
            << "# Budget burn vs waste factor on identical streamed"
            << " schedules; fixed is the managers' built-in trigger.\n";

  ExperimentGrid Grid;
  Grid.addAxis("trace", Traces);
  Grid.addAxis("policy", Policies);
  Grid.addAxis("controller", Controllers);

  ResultSink Sink({"trace", "policy", "controller", "ops", "HS", "waste",
                   "moved_words", "burn_%", "grants", "denials"});
  std::atomic<uint64_t> TotalOps{0};
  Runner Run = makeRunner(Opts);
  try {
    Run.runRows(
        Grid,
        [&](const GridCell &Cell) {
          TraceRunOptions RO = Base;
          RO.Policy = Cell.str("policy");
          RO.Controller = Spec;
          RO.Controller.Name = Cell.str("controller");
          std::istringstream IS(Serialized.at(Cell.str("trace")));
          TraceReader R(IS);
          TraceRunReport Rep = runTrace(R, RO, Cell.str("trace"));
          TotalOps.fetch_add(Rep.OpsStreamed, std::memory_order_relaxed);
          return Row()
              .addCell(Rep.Trace)
              .addCell(Rep.Policy)
              .addCell(Rep.Controller)
              .addCell(Rep.OpsStreamed)
              .addCell(Rep.Exec.HeapSize)
              .addCell(Rep.WasteFactor, 4)
              .addCell(Rep.Exec.MovedWords)
              .addCell(Rep.BudgetBurnPct, 2)
              .addCell(Rep.ControllerGrants)
              .addCell(Rep.ControllerDenials);
        },
        Sink);
  } catch (const std::exception &Ex) {
    std::cerr << "error: " << Ex.what() << "\n";
    return 1;
  }
  if (!Sink.emit(Opts))
    return 1;

  // Wall-clock reporting is stderr-only: the determinism test diffs
  // stdout across thread counts.
  double Wall = Run.wallSeconds();
  double OpsPerSec = Wall > 0.0 ? double(TotalOps.load()) / Wall : 0.0;
  std::cerr << "# perf: " << Grid.numCells() << " cells in "
            << formatDouble(Wall, 2) << "s wall (threads=" << Run.threads()
            << "); " << TotalOps.load() << " ops streamed, "
            << uint64_t(OpsPerSec) << " ops/s\n";

  if (!BenchJsonPath.empty()) {
    // Per-phase breakdown from a profiled serial re-run of one
    // representative cell: the first trace through the evacuating
    // manager under the MemBalancer gate, so trace.read, the substrate
    // sections and the gate's denial counter all fire.
    Profiler Prof;
    double CellWall = 0.0;
    uint64_t CellOps = 0;
    {
      TraceRunOptions RO = Base;
      RO.Policy = "evacuating";
      RO.Controller = Spec;
      RO.Controller.Name = "membalancer";
      std::istringstream IS(Serialized.at(Traces.front()));
      TraceReader R(IS);
      ProfilerScope Scope(Prof);
      auto Start = std::chrono::steady_clock::now();
      CellOps = runTrace(R, RO, Traces.front()).OpsStreamed;
      CellWall = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    }

    std::ofstream OS(BenchJsonPath);
    OS << "{\n"
       << "  \"bench\": \"trace\",\n"
       << "  \"traces\": [";
    for (size_t I = 0; I != Traces.size(); ++I)
      OS << (I ? ", " : "") << "\"" << Traces[I] << "\"";
    OS << "],\n"
       << "  \"policies\": [";
    for (size_t I = 0; I != Policies.size(); ++I)
      OS << (I ? ", " : "") << "\"" << Policies[I] << "\"";
    OS << "],\n"
       << "  \"controllers\": [";
    for (size_t I = 0; I != Controllers.size(); ++I)
      OS << (I ? ", " : "") << "\"" << Controllers[I] << "\"";
    OS << "],\n"
       << "  \"ops\": " << NumOps << ",\n"
       << "  \"threads\": " << Run.threads() << ",\n"
       << "  \"wall_seconds\": " << formatDouble(Wall, 3) << ",\n"
       << "  \"total_steps\": " << TotalOps.load() << ",\n"
       << "  \"steps_per_second\": " << formatDouble(OpsPerSec, 1) << ",\n"
       << "  \"profiled_cell\": {\"trace\": \"" << Traces.front()
       << "\", \"policy\": \"evacuating\", \"controller\": \"membalancer\""
       << ", \"ops\": " << CellOps << ", \"wall_seconds\": "
       << formatDouble(CellWall, 3) << "},\n"
       << "  \"per_phase\": [";
    bool First = true;
    for (unsigned S = 0; S != Profiler::NumSections; ++S) {
      const Profiler::SectionStats &Stats =
          Prof.section(Profiler::Section(S));
      if (Stats.Calls == 0)
        continue;
      OS << (First ? "" : ", ") << "{\"section\": \""
         << Profiler::sectionName(Profiler::Section(S))
         << "\", \"calls\": " << Stats.Calls << ", \"total_ms\": "
         << formatDouble(double(Stats.Nanos) * 1e-6, 3)
         << ", \"ns_per_call\": "
         << formatDouble(double(Stats.Nanos) / double(Stats.Calls), 1)
         << "}";
      First = false;
    }
    OS << "]\n}\n";
    if (!OS) {
      std::cerr << "error: cannot write '" << BenchJsonPath << "'\n";
      return 1;
    }
    std::cerr << "# bench baseline written to " << BenchJsonPath << "\n";
  }
  return 0;
}
