//===- bench/bench_robson.cpp - E4: Robson's bound by simulation ---------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Validates the paper's Section 2.2 baseline by running Robson's bad
// program PR against every non-moving manager at scaled parameters and
// comparing the measured footprint with the closed form
// M (log n / 2 + 1) - n + 1. Robson's theorem says the simulated column
// must never fall below the theory column; first fit and best fit match
// it exactly.
//
// Usage: bench_robson [logm=14] [lognmin=4] [lognmax=8] [csv=0]
//                     [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/RobsonProgram.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 14));
  unsigned LogNMin = unsigned(Opts.getUInt("lognmin", 4));
  unsigned LogNMax = unsigned(Opts.getUInt("lognmax", 8));
  uint64_t M = pow2(LogM);

  std::cout << "# E4: Robson's matching bound, simulated (PR vs"
            << " non-moving managers), M=" << formatWords(M) << "\n"
            << "# measured_waste >= theory_waste is the theorem;"
            << " first-fit matches it exactly.\n";

  ExperimentGrid Grid;
  Grid.addRangeAxis("log2n", LogNMin, LogNMax);
  Grid.addAxis("policy", nonMovingManagerPolicies());

  ResultSink Sink({"log2(n)", "policy", "measured_HS", "measured_waste",
                   "theory_waste", "ratio"});
  makeRunner(Opts).runRows(
      Grid,
      [&](const GridCell &Cell) {
        unsigned LogN = unsigned(Cell.num("log2n"));
        const std::string &Policy = Cell.str("policy");
        BoundParams P{M, pow2(LogN), 10.0};
        double Theory = robsonWasteFactor(P);
        Heap H;
        auto MM = createManager(Policy, H, /*C=*/1e18);
        RobsonProgram PR(M, LogN);
        Execution E(*MM, PR, M);
        ExecutionResult R = E.run();
        return Row()
            .addCell(uint64_t(LogN))
            .addCell(Policy)
            .addCell(R.HeapSize)
            .addCell(R.wasteFactor(M), 3)
            .addCell(Theory, 3)
            .addCell(R.wasteFactor(M) / Theory, 3);
      },
      Sink);
  return Sink.emit(Opts) ? 0 : 1;
}
