//===- bench/bench_fleet.cpp - E14: fleet service-mode throughput --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Drives the service layer end to end: for each arena count in arenas=,
// a ServiceFleet drains sessions= lightweight mutator sessions through
// the work-stealing scheduler and reports the fleet's footprint and
// fragmentation percentiles. The table shows how sharding one workload
// over more arenas trades total footprint against per-arena
// fragmentation (the Compact-fit per-thread-arena question) under a
// fixed c-partial budget.
//
// Usage: bench_fleet [arenas=1,4,8] [sessions=100000] [policy=evacuating]
//                    [c=50] [batch=16] [resident=8] [ops=48] [maxlog=6]
//                    [seed=1] [threads=0] [csv=0] [json=0] [out=]
//                    [bench-json=FILE]
//
// The results table on stdout is byte-identical across thread counts
// (the determinism test diffs it); wall-clock perf goes to stderr, and
// the machine-readable regression baseline (ops/sec plus the profiled
// per-phase breakdown, serve.flush included) goes to bench-json=FILE.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "obs/Profiler.h"
#include "runner/ResultSink.h"
#include "service/ServiceFleet.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <chrono>
#include <fstream>
#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::vector<double> ArenaCounts =
      parseNumberList(Opts.getString("arenas", "1,4,8"));
  uint64_t Sessions = Opts.getUInt("sessions", 100000);
  std::string BenchJsonPath = Opts.getString("bench-json", "");

  FleetOptions Base;
  Base.NumSessions = Sessions;
  Base.Threads = unsigned(Opts.getUInt("threads", 0));
  Base.SliceFlushes = std::max<uint64_t>(1, Opts.getUInt("slice", 32));
  Base.Shard.Policy = Opts.getString("policy", "evacuating");
  Base.Shard.C = Opts.getDouble("c", 50.0);
  Base.Shard.BatchSize = std::max<uint64_t>(1, Opts.getUInt("batch", 16));
  Base.Shard.MaxResident =
      std::max<uint64_t>(1, Opts.getUInt("resident", 8));
  Base.Shard.SampleEverySessions = 0; // throughput run: no timelines
  Base.Shard.Session.FleetSeed = Opts.getUInt("seed", 1);
  Base.Shard.Session.TargetOps = Opts.getUInt("ops", 48);
  Base.Shard.Session.MaxLogSize = unsigned(Opts.getUInt("maxlog", 6));

  std::cout << "# E14: fleet service mode: " << ArenaCounts.size()
            << " arena counts x " << Sessions << " sessions (policy="
            << Base.Shard.Policy << ", c=" << formatDouble(Base.Shard.C, 0)
            << ", batch=" << Base.Shard.BatchSize << ", resident="
            << Base.Shard.MaxResident << ", ops="
            << Base.Shard.Session.TargetOps << ")\n"
            << "# Sharding one workload over more arenas: total footprint"
            << " vs per-arena fragmentation percentiles.\n";

  ResultSink Sink({"arenas", "sessions", "footprint_words", "p99_footprint",
                   "frag_p50", "frag_p99", "mean_util", "moved_words",
                   "burn_%", "flushes"});

  // The fleets run profiled (serve.flush plus the substrate sections) so
  // the regression baseline reflects the real scheduler path; the
  // ScopedTimer overhead at flush granularity is noise.
  Profiler Prof;
  double Wall = 0.0;
  uint64_t TotalOps = 0;
  uint64_t TotalSessions = 0;
  unsigned Threads = 0;

  for (double ArenasD : ArenaCounts) {
    FleetOptions FO = Base;
    FO.NumArenas = unsigned(ArenasD);
    if (FO.NumArenas == 0) {
      std::cerr << "error: arenas= entries must be positive\n";
      return 1;
    }
    FO.Prof = &Prof;
    try {
      ServiceFleet Fleet(FO);
      Fleet.run();
      Wall += Fleet.wallSeconds();
      Threads = Fleet.threads();
      FleetReport R = Fleet.report();
      TotalOps += R.TotalOpsApplied;
      TotalSessions += R.TotalSessions;
      Sink.append(Row()
                      .addCell(uint64_t(FO.NumArenas))
                      .addCell(R.TotalSessions)
                      .addCell(R.TotalFootprintWords)
                      .addCell(R.P99FootprintWords)
                      .addCell(R.P50Fragmentation, 3)
                      .addCell(R.P99Fragmentation, 3)
                      .addCell(R.MeanUtilization, 3)
                      .addCell(R.TotalMovedWords)
                      .addCell(100.0 * R.BudgetBurn, 1)
                      .addCell(R.TotalFlushes));
    } catch (const std::exception &Ex) {
      std::cerr << "error: " << Ex.what() << "\n";
      return 1;
    }
  }
  if (!Sink.emit(Opts))
    return 1;

  double OpsPerSec = Wall > 0.0 ? double(TotalOps) / Wall : 0.0;
  std::cerr << "# perf: " << ArenaCounts.size() << " fleets in "
            << formatDouble(Wall, 2) << "s wall (threads=" << Threads
            << "); " << TotalSessions << " sessions, " << TotalOps
            << " ops, " << uint64_t(OpsPerSec) << " ops/s\n";

  if (!BenchJsonPath.empty()) {
    std::ofstream OS(BenchJsonPath);
    OS << "{\n"
       << "  \"bench\": \"fleet\",\n"
       << "  \"arenas\": [";
    for (size_t I = 0; I != ArenaCounts.size(); ++I)
      OS << (I ? ", " : "") << formatDouble(ArenaCounts[I], 0);
    OS << "],\n"
       << "  \"sessions\": " << Sessions << ",\n"
       << "  \"policy\": \"" << Base.Shard.Policy << "\",\n"
       << "  \"batch\": " << Base.Shard.BatchSize << ",\n"
       << "  \"resident\": " << Base.Shard.MaxResident << ",\n"
       << "  \"ops\": " << Base.Shard.Session.TargetOps << ",\n"
       << "  \"threads\": " << Threads << ",\n"
       << "  \"wall_seconds\": " << formatDouble(Wall, 3) << ",\n"
       << "  \"total_steps\": " << TotalOps << ",\n"
       << "  \"steps_per_second\": " << formatDouble(OpsPerSec, 1) << ",\n"
       << "  \"per_phase\": [";
    bool First = true;
    for (unsigned S = 0; S != Profiler::NumSections; ++S) {
      const Profiler::SectionStats &Stats =
          Prof.section(Profiler::Section(S));
      if (Stats.Calls == 0)
        continue;
      OS << (First ? "" : ", ") << "{\"section\": \""
         << Profiler::sectionName(Profiler::Section(S))
         << "\", \"calls\": " << Stats.Calls << ", \"total_ms\": "
         << formatDouble(double(Stats.Nanos) * 1e-6, 3)
         << ", \"ns_per_call\": "
         << formatDouble(double(Stats.Nanos) / double(Stats.Calls), 1)
         << "}";
      First = false;
    }
    OS << "]\n}\n";
    if (!OS) {
      std::cerr << "error: cannot write '" << BenchJsonPath << "'\n";
      return 1;
    }
    std::cerr << "# bench baseline written to " << BenchJsonPath << "\n";
  }
  return 0;
}
