//===- bench/bench_fig3.cpp - Figure 3: upper bound vs c -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Regenerates Figure 3: upper bounds on the waste factor for the paper's
// realistic parameters (M = 256MB, n = 1MB) as a function of c. Compares
// the previously best known bound min((c+1) M, 2 * Robson) with the
// Theorem 2 reconstruction (see DESIGN.md section 3 for the caveat on the
// OCR-damaged recursion).
//
// Usage: bench_fig3 [M=256M] [n=1M] [cmin=10] [cmax=100] [csv=0]
//                   [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundSweep.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/AsciiChart.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>
#include <limits>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  uint64_t M = Opts.getUInt("M", pow2(28));
  uint64_t N = Opts.getUInt("n", pow2(20));
  unsigned CMin = unsigned(Opts.getUInt("cmin", 10));
  unsigned CMax = unsigned(Opts.getUInt("cmax", 100));

  std::cout << "# Figure 3: upper bound on the waste factor"
            << " (M=" << formatWords(M) << ", n=" << formatWords(N)
            << ") as a function of c\n"
            << "# prior_upper = min((c+1)M, 2*Robson)/M;"
            << " new_upper = Theorem 2 (reconstructed);"
            << " best = min of both.\n";

  ExperimentGrid Grid;
  Grid.addRangeAxis("c", CMin, CMax);
  std::vector<Fig3Point> Series =
      makeRunner(Opts).map<Fig3Point>(Grid, [&](const GridCell &Cell) {
        unsigned C = unsigned(Cell.num("c"));
        return sweepFig3(M, N, C, C).front();
      });

  ResultSink Sink({"c", "new_upper", "prior_upper", "best", "improvement_%"});
  ChartSeries NewCurve{"Theorem 2 upper bound (reconstructed)", '#', {}};
  ChartSeries PriorCurve{"prior best: min((c+1)M, 2*Robson)", '.', {}};
  for (const Fig3Point &Pt : Series) {
    NewCurve.Y.push_back(Pt.NewUpper); // NaN gaps outside the domain
    PriorCurve.Y.push_back(Pt.PriorUpper);
    Row R;
    R.addCell(uint64_t(Pt.C));
    if (std::isnan(Pt.NewUpper))
      R.addCell(std::string("n/a"));
    else
      R.addCell(Pt.NewUpper, 3);
    R.addCell(Pt.PriorUpper, 3);
    R.addCell(Pt.BestUpper, 3);
    double Improvement =
        100.0 * (Pt.PriorUpper - Pt.BestUpper) / Pt.PriorUpper;
    R.addCell(Improvement, 1);
    Sink.append(std::move(R));
  }
  if (!Sink.emit(Opts))
    return 1;

  AsciiChart::Options ChartOpts;
  ChartOpts.XLabel = "c";
  ChartOpts.YLabel = "waste factor (upper bounds)";
  AsciiChart Chart(double(CMin), double(CMax), ChartOpts);
  Chart.addSeries(NewCurve);
  Chart.addSeries(PriorCurve);
  std::cout << '\n';
  Chart.print(std::cout);

  std::cout << "\n# Paper: the new bound improves on the prior best for"
            << " c in [20, 100];\n"
            << "# our reconstruction preserves that shape (see"
            << " EXPERIMENTS.md for the magnitude caveat).\n";
  return 0;
}
