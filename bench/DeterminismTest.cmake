# Runs a bench twice — threads=1 and threads=8 — and fails unless the
# stdout tables are byte-identical. This is the runner's determinism
# contract, enforced on the real bench binaries by ctest.
#
# Usage: cmake -DBENCH=<path> -DARGS=<;-separated args> -P DeterminismTest.cmake

separate_arguments(BENCH_ARGS UNIX_COMMAND "${ARGS}")

execute_process(COMMAND ${BENCH} ${BENCH_ARGS} threads=1 progress=0
                OUTPUT_VARIABLE SerialOut RESULT_VARIABLE SerialCode)
if(NOT SerialCode EQUAL 0)
  message(FATAL_ERROR "${BENCH} threads=1 exited with ${SerialCode}")
endif()

execute_process(COMMAND ${BENCH} ${BENCH_ARGS} threads=8 progress=0
                OUTPUT_VARIABLE ParallelOut RESULT_VARIABLE ParallelCode)
if(NOT ParallelCode EQUAL 0)
  message(FATAL_ERROR "${BENCH} threads=8 exited with ${ParallelCode}")
endif()

if(NOT SerialOut STREQUAL ParallelOut)
  message(FATAL_ERROR "${BENCH}: threads=1 and threads=8 tables differ")
endif()
