//===- bench/bench_ablation.cpp - E7: ablating PF's improvements ---------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Section 3.1 credits the improved bound to specific design choices of
// PF. This bench disables them one at a time and measures the footprint
// each variant forces out of the evacuating c-partial manager:
//
//   full          the paper's Algorithm 1
//   no-density    density maintenance off: the adversary frees greedily,
//                 handing the manager cheap chunks to evacuate
//   no-ghosts     stage-one ghost bookkeeping off: compaction perturbs
//                 the Robson stage's offset accounting
//   no-stage1     the Robson bootstrap replaced by a flat unit-object
//                 fill (a POPL-2011-style adversary, the paper's first
//                 improvement undone)
//   greedy-alloc  the fixed x*M per-step allocation replaced by
//                 allocate-as-much-as-fits (the POPL 2011 behaviour the
//                 paper's second improvement replaces)
//   sigma=k       forcing each admissible density exponent, showing the
//                 optimum matches the h-maximizing sigma
//
// The (c, variant) grid is rectangular; sigma=k cells outside a given
// c's admissible range produce no row.
//
// Usage: bench_ablation [logm=15] [logn=9] [cs=20,50,100] [csv=0]
//                       [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/EvacuatingCompactor.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 9));
  std::vector<double> Cs = parseNumberList(Opts.getString("cs", "20,50,100"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout << "# E7: ablation of PF's design choices vs the evacuating"
            << " manager (M=" << formatWords(M) << ", n=" << formatWords(N)
            << ")\n";

  auto MaxSigmaFor = [&](double C) {
    return std::min(cohenPetrankMaxSigma(C), (log2Exact(N) - 2) / 2);
  };
  unsigned GlobalMaxSigma = 0;
  for (double C : Cs)
    GlobalMaxSigma = std::max(GlobalMaxSigma, MaxSigmaFor(C));

  std::vector<std::string> Variants = {"full", "no-density", "no-ghosts",
                                       "no-stage1", "greedy-alloc"};
  for (unsigned S = 1; S <= GlobalMaxSigma; ++S)
    Variants.push_back("sigma=" + std::to_string(S));

  ExperimentGrid Grid;
  Grid.addAxis("c", Cs);
  Grid.addAxis("variant", Variants);

  ResultSink Sink({"c", "variant", "sigma", "measured_waste", "theory_h",
                   "moved_words"});
  makeRunner(Opts).run(
      Grid,
      [&](const GridCell &Cell) -> std::vector<Row> {
        double C = Cell.num("c");
        const std::string &Variant = Cell.str("variant");
        CohenPetrankProgram::Options ProgOpts;
        if (Variant == "no-density")
          ProgOpts.MaintainDensity = false;
        else if (Variant == "no-ghosts")
          ProgOpts.TrackGhosts = false;
        else if (Variant == "no-stage1")
          ProgOpts.RobsonBootstrap = false;
        else if (Variant == "greedy-alloc")
          ProgOpts.FixedAllocation = false;
        else if (Variant.rfind("sigma=", 0) == 0) {
          unsigned S = unsigned(std::stoul(Variant.substr(6)));
          if (S > MaxSigmaFor(C))
            return {}; // inadmissible sigma at this c: no row
          ProgOpts.SigmaOverride = S;
        }

        Heap H;
        EvacuatingCompactor MM(H, C);
        CohenPetrankProgram PF(M, N, C, ProgOpts);
        Execution E(MM, PF, M);
        ExecutionResult R = E.run();
        return {Row()
                    .addCell(uint64_t(C))
                    .addCell(Variant)
                    .addCell(uint64_t(PF.sigma()))
                    .addCell(R.wasteFactor(M), 3)
                    .addCell(PF.targetWasteFactor(), 3)
                    .addCell(R.MovedWords)};
      },
      Sink);
  return Sink.emit(Opts) ? 0 : 1;
}
