//===- bench/bench_ablation.cpp - E7: ablating PF's improvements ---------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Section 3.1 credits the improved bound to specific design choices of
// PF. This bench disables them one at a time and measures the footprint
// each variant forces out of the evacuating c-partial manager:
//
//   full          the paper's Algorithm 1
//   no-density    density maintenance off: the adversary frees greedily,
//                 handing the manager cheap chunks to evacuate
//   no-ghosts     stage-one ghost bookkeeping off: compaction perturbs
//                 the Robson stage's offset accounting
//   no-stage1     the Robson bootstrap replaced by a flat unit-object
//                 fill (a POPL-2011-style adversary, the paper's first
//                 improvement undone)
//   greedy-alloc  the fixed x*M per-step allocation replaced by
//                 allocate-as-much-as-fits (the POPL 2011 behaviour the
//                 paper's second improvement replaces)
//   sigma=k       forcing each admissible density exponent, showing the
//                 optimum matches the h-maximizing sigma
//
// Usage: bench_ablation [logm=15] [logn=9] [cs=20,50,100] [csv=0]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/EvacuatingCompactor.h"
#include "BenchUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>
#include <sstream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 9));
  std::vector<double> Cs = parseNumberList(Opts.getString("cs", "20,50,100"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout << "# E7: ablation of PF's design choices vs the evacuating"
            << " manager (M=" << formatWords(M) << ", n=" << formatWords(N)
            << ")\n";

  Table T({"c", "variant", "sigma", "measured_waste", "theory_h",
           "moved_words"});

  auto RunVariant = [&](double C, const std::string &Name,
                        const CohenPetrankProgram::Options &ProgOpts) {
    Heap H;
    EvacuatingCompactor MM(H, C);
    CohenPetrankProgram PF(M, N, C, ProgOpts);
    Execution E(MM, PF, M);
    ExecutionResult R = E.run();
    T.beginRow();
    T.addCell(uint64_t(C));
    T.addCell(Name);
    T.addCell(uint64_t(PF.sigma()));
    T.addCell(R.wasteFactor(M), 3);
    T.addCell(PF.targetWasteFactor(), 3);
    T.addCell(R.MovedWords);
  };

  for (double C : Cs) {
    CohenPetrankProgram::Options Full;
    RunVariant(C, "full", Full);

    CohenPetrankProgram::Options NoDensity;
    NoDensity.MaintainDensity = false;
    RunVariant(C, "no-density", NoDensity);

    CohenPetrankProgram::Options NoGhosts;
    NoGhosts.TrackGhosts = false;
    RunVariant(C, "no-ghosts", NoGhosts);

    CohenPetrankProgram::Options NoStageOne;
    NoStageOne.RobsonBootstrap = false;
    RunVariant(C, "no-stage1", NoStageOne);

    CohenPetrankProgram::Options Greedy;
    Greedy.FixedAllocation = false;
    RunVariant(C, "greedy-alloc", Greedy);

    unsigned MaxSigma = std::min(cohenPetrankMaxSigma(C),
                                 (log2Exact(N) - 2) / 2);
    for (unsigned S = 1; S <= MaxSigma; ++S) {
      CohenPetrankProgram::Options Forced;
      Forced.SigmaOverride = S;
      RunVariant(C, "sigma=" + std::to_string(S), Forced);
    }
  }
  if (!emitTable(T, Opts))
    return 1;
  return 0;
}
