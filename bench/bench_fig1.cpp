//===- bench/bench_fig1.cpp - Figure 1: lower bound vs c -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Regenerates Figure 1: the lower bound on the waste factor h for the
// paper's realistic parameters (M = 256MB, n = 1MB) as a function of the
// compaction quota c, alongside the Bendersky-Petrank POPL 2011 lower
// bound (trivial at these parameters) and Robson's no-compaction bound.
//
// Usage: bench_fig1 [M=256M] [n=1M] [cmin=10] [cmax=100] [csv=0]
//                   [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundSweep.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/AsciiChart.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  uint64_t M = Opts.getUInt("M", pow2(28));
  uint64_t N = Opts.getUInt("n", pow2(20));
  unsigned CMin = unsigned(Opts.getUInt("cmin", 10));
  unsigned CMax = unsigned(Opts.getUInt("cmax", 100));

  std::cout << "# Figure 1: lower bound on the waste factor h"
            << " (M=" << formatWords(M) << ", n=" << formatWords(N)
            << ") as a function of c\n"
            << "# new_lower: Theorem 1 (this paper); prior_lower:"
            << " Bendersky-Petrank POPL 2011 (clamped at the trivial 1);\n"
            << "# robson: the no-compaction ceiling.\n";

  ExperimentGrid Grid;
  Grid.addRangeAxis("c", CMin, CMax);
  std::vector<Fig1Point> Series =
      makeRunner(Opts).map<Fig1Point>(Grid, [&](const GridCell &Cell) {
        unsigned C = unsigned(Cell.num("c"));
        return sweepFig1(M, N, C, C).front();
      });

  ResultSink Sink({"c", "new_lower", "sigma", "prior_lower", "robson"});
  ChartSeries NewCurve{"Theorem 1 lower bound (this paper)", '#', {}};
  ChartSeries PriorCurve{"POPL 2011 lower bound", '.', {}};
  for (const Fig1Point &Pt : Series) {
    Sink.append(Row()
                    .addCell(uint64_t(Pt.C))
                    .addCell(Pt.NewLower, 3)
                    .addCell(uint64_t(Pt.Sigma))
                    .addCell(Pt.PriorLower, 3)
                    .addCell(Pt.RobsonLower, 3));
    NewCurve.Y.push_back(Pt.NewLower);
    PriorCurve.Y.push_back(Pt.PriorLower);
  }
  if (!Sink.emit(Opts))
    return 1;

  AsciiChart::Options ChartOpts;
  ChartOpts.XLabel = "c";
  ChartOpts.YLabel = "waste factor h";
  AsciiChart Chart(double(CMin), double(CMax), ChartOpts);
  Chart.addSeries(NewCurve);
  Chart.addSeries(PriorCurve);
  std::cout << '\n';
  Chart.print(std::cout);

  // The prose anchors of the paper, restated for quick comparison.
  std::cout << "\n# Paper anchors: h(c=10) = 2, h(c=50) ~ 3.15,"
            << " h(c=100) ~ 3.5 (for M=256MB, n=1MB)\n";
  return 0;
}
