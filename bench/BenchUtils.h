//===- bench/BenchUtils.h - Shared bench plumbing ---------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table benches: emitting a Table according
/// to the common `csv=` / `out=` options, and parsing comma-separated
/// numeric lists (`cs=10,25,50`).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BENCH_BENCHUTILS_H
#define PCBOUND_BENCH_BENCHUTILS_H

#include "support/OptionParser.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pcb {

/// Prints \p T to stdout (aligned, or CSV with `csv=1`) and additionally
/// writes CSV to the file named by `out=` when given. Returns false when
/// the output file could not be written.
inline bool emitTable(const Table &T, const OptionParser &Opts) {
  if (Opts.getBool("csv", false))
    T.printCsv(std::cout);
  else
    T.printAligned(std::cout);
  std::string OutPath = Opts.getString("out", "");
  if (OutPath.empty())
    return true;
  std::ofstream OS(OutPath);
  if (!OS) {
    std::cerr << "error: cannot write '" << OutPath << "'\n";
    return false;
  }
  T.printCsv(OS);
  std::cout << "# wrote " << OutPath << "\n";
  return true;
}

/// Parses "10,25,50" into doubles; empty items are skipped.
inline std::vector<double> parseNumberList(const std::string &Text) {
  std::vector<double> Values;
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Values.push_back(std::stod(Item));
  return Values;
}

} // namespace pcb

#endif // PCBOUND_BENCH_BENCHUTILS_H
