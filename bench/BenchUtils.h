//===- bench/BenchUtils.h - Shared bench plumbing ---------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table benches: constructing the experiment
/// Runner from the common `threads=` / `progress=` options, and parsing
/// comma-separated numeric lists (`cs=10,25,50`). Table emission lives in
/// runner/ResultSink.h (`csv=` / `json=` / `out=` handling included).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BENCH_BENCHUTILS_H
#define PCBOUND_BENCH_BENCHUTILS_H

#include "runner/Runner.h"
#include "support/OptionParser.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pcb {

/// Builds a Runner from the benches' common options: `threads=N` (0 or
/// absent = all hardware threads) and `progress=0/1` (default: auto,
/// i.e. report to stderr only when it is a terminal).
inline Runner makeRunner(const OptionParser &Opts) {
  RunnerOptions RO;
  RO.Threads = unsigned(Opts.getUInt("threads", 0));
  if (Opts.has("progress"))
    RO.Progress = Opts.getBool("progress", true) ? 1 : 0;
  return Runner(RO);
}

/// Parses "10,25,50" into doubles; empty items are skipped.
inline std::vector<double> parseNumberList(const std::string &Text) {
  std::vector<double> Values;
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ',')) {
    if (Item.empty())
      continue;
    char *End = nullptr;
    double Value = std::strtod(Item.c_str(), &End);
    if (!End || *End != '\0') {
      std::cerr << "error: invalid number '" << Item << "' in list\n";
      std::exit(1);
    }
    Values.push_back(Value);
  }
  return Values;
}

} // namespace pcb

#endif // PCBOUND_BENCH_BENCHUTILS_H
