//===- bench/bench_substrate.cpp - E8: simulator micro-benchmarks --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// google-benchmark microbenchmarks of the simulation substrate itself:
// free-space index queries, heap place/free cycles, each manager policy
// under churn, and whole adversary pipelines at small scale. These guard
// the asymptotics the larger experiment benches rely on.
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/RobsonProgram.h"
#include "driver/Execution.h"
#include "heap/FreeSpaceIndex.h"
#include "mm/ManagerFactory.h"
#include "mm/SequentialFitManagers.h"
#include "runner/ExperimentGrid.h"
#include "runner/Runner.h"
#include "support/MathUtils.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <array>

using namespace pcb;

namespace {

/// Pre-fragments a free index with Holes holes of HoleSize words.
void fragment(FreeSpaceIndex &F, uint64_t Holes, uint64_t HoleSize) {
  F.reserve(0, Holes * HoleSize * 2);
  for (uint64_t K = 0; K != Holes; ++K)
    F.release(K * HoleSize * 2, HoleSize);
}

void BM_FreeIndexFirstFit(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, uint64_t(State.range(0)), 4);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.firstFit(4));
    benchmark::DoNotOptimize(F.firstFit(8));
  }
}
BENCHMARK(BM_FreeIndexFirstFit)->Arg(1024)->Arg(65536);

void BM_FreeIndexBestFit(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, uint64_t(State.range(0)), 4);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.bestFit(4));
    benchmark::DoNotOptimize(F.bestFit(8));
  }
}
BENCHMARK(BM_FreeIndexBestFit)->Arg(1024)->Arg(65536);

void BM_FreeIndexReserveRelease(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, 4096, 8);
  Rng R(5);
  for (auto _ : State) {
    Addr A = R.nextBelow(4096) * 16;
    F.reserve(A, 8);
    F.release(A, 8);
  }
}
BENCHMARK(BM_FreeIndexReserveRelease);

// --- Bitboard kernels -------------------------------------------------------
// The packed-occupancy primitives the placement queries are built from:
// span extraction (with and without the cross-word shift path), the
// popcount aggregate, and first fit over a checkerboarded board whose
// digests are all dirty (every query pays a word-level sweep).

void BM_BitmapOccupancyWords(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, 4096, 8);
  const Addr Start = Addr(State.range(0)); // 0 = aligned, else shifted
  std::array<uint64_t, 64> Out;
  for (auto _ : State) {
    F.occupancyWords(Start, Out.size(), Out.data());
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_BitmapOccupancyWords)->Arg(0)->Arg(13);

void BM_BitmapFreeWordsIn(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, 4096, 8);
  Addr At = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.freeWordsIn(At, At + 1024));
    At = (At + 1024) % (4096 * 16);
  }
}
BENCHMARK(BM_BitmapFreeWordsIn);

void BM_BitmapFirstFitDirty(benchmark::State &State) {
  FreeSpaceIndex F;
  fragment(F, 4096, 8);
  // Alternately splitting and restoring one hole per iteration keeps the
  // touched super permanently dirty: the measured loop is the digest
  // re-derivation plus the in-word run scan, not a digest cache hit.
  Rng R(7);
  for (auto _ : State) {
    Addr A = R.nextBelow(4096) * 16;
    F.reserve(A + 3, 2);
    benchmark::DoNotOptimize(F.firstFit(8));
    F.release(A + 3, 2);
  }
}
BENCHMARK(BM_BitmapFirstFitDirty);

void BM_HeapPlaceFree(benchmark::State &State) {
  Heap H;
  for (auto _ : State) {
    ObjectId Id = H.place(H.freeSpace().firstFit(16), 16);
    H.free(Id);
  }
}
BENCHMARK(BM_HeapPlaceFree);

void BM_ManagerChurn(benchmark::State &State, const char *Policy) {
  Heap H;
  auto MM = createManager(Policy, H, 20.0);
  Rng R(7);
  std::vector<ObjectId> Live;
  for (auto _ : State) {
    if (Live.size() < 512 || R.nextBool(0.5)) {
      Live.push_back(MM->allocate(uint64_t(1) << R.nextBelow(6)));
    } else {
      size_t Pick = size_t(R.nextBelow(Live.size()));
      MM->free(Live[Pick]);
      Live[Pick] = Live.back();
      Live.pop_back();
    }
  }
}
BENCHMARK_CAPTURE(BM_ManagerChurn, first_fit, "first-fit");
BENCHMARK_CAPTURE(BM_ManagerChurn, best_fit, "best-fit");
BENCHMARK_CAPTURE(BM_ManagerChurn, buddy, "buddy");
BENCHMARK_CAPTURE(BM_ManagerChurn, segregated, "segregated-fit");
BENCHMARK_CAPTURE(BM_ManagerChurn, evacuating, "evacuating");
BENCHMARK_CAPTURE(BM_ManagerChurn, hybrid, "hybrid");
BENCHMARK_CAPTURE(BM_ManagerChurn, sliding, "sliding");

void BM_RobsonPipeline(benchmark::State &State) {
  const uint64_t M = pow2(unsigned(State.range(0)));
  for (auto _ : State) {
    Heap H;
    FirstFitManager MM(H, 1e18);
    RobsonProgram PR(M, unsigned(State.range(1)));
    Execution E(MM, PR, M);
    benchmark::DoNotOptimize(E.run().HeapSize);
  }
}
BENCHMARK(BM_RobsonPipeline)
    ->Args({10, 5})
    ->Args({12, 6})
    ->Unit(benchmark::kMillisecond);

void BM_CohenPetrankPipeline(benchmark::State &State) {
  const uint64_t M = pow2(unsigned(State.range(0)));
  const uint64_t N = pow2(unsigned(State.range(1)));
  for (auto _ : State) {
    Heap H;
    auto MM = createManager("evacuating", H, 50.0);
    CohenPetrankProgram PF(M, N, 50.0);
    Execution E(*MM, PF, M);
    benchmark::DoNotOptimize(E.run().HeapSize);
  }
}
BENCHMARK(BM_CohenPetrankPipeline)
    ->Args({12, 7})
    ->Args({14, 8})
    ->Unit(benchmark::kMillisecond);

/// Dispatch overhead of the experiment runner itself: a grid of cheap
/// simulation cells, at 1 worker (serial fallback) and at a small pool.
/// Guards the fan-out cost the table benches now pay per cell.
void BM_RunnerGridSweep(benchmark::State &State) {
  RunnerOptions RO;
  RO.Threads = unsigned(State.range(0));
  RO.Progress = 0;
  Runner R(RO);
  for (auto _ : State) {
    ExperimentGrid Grid;
    Grid.addRangeAxis("logm", 9, 9 + uint64_t(State.range(1)) - 1);
    std::vector<uint64_t> Sizes = R.map<uint64_t>(
        Grid, [](const GridCell &Cell) {
          const uint64_t M = pow2(unsigned(Cell.num("logm")));
          Heap H;
          FirstFitManager MM(H, 1e18);
          RobsonProgram PR(M, 4);
          Execution E(MM, PR, M);
          return E.run().HeapSize;
        });
    benchmark::DoNotOptimize(Sizes.data());
  }
}
BENCHMARK(BM_RunnerGridSweep)
    ->Args({1, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
