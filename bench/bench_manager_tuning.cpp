//===- bench/bench_manager_tuning.cpp - Evacuation aggressiveness --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The manager-side ablation the theory predicts: PF keeps every chunk's
// density above 2^-sigma > 1/c precisely so that evacuating it costs
// more budget than the allocation recharges. A manager that evacuates
// chunks denser than 1/c therefore burns budget for little footprint
// against the adversary — while against ordinary churn, aggressive
// evacuation is pure win. This bench sweeps EvacuatingCompactor's
// density threshold and ChunkedManager's garbage-share threshold against
// both kinds of workload and prints where the budget went. Note the
// knobs point in opposite directions: a HIGH density threshold is
// aggressive (denser chunks qualify for evacuation), a HIGH garbage
// threshold is conservative (a chunk must rot further before its
// trigger fires). Expected shape: against PF the footprint barely
// responds to either knob (and the budget empties), against churn it
// improves with aggressiveness at low move cost.
//
// Usage: bench_manager_tuning [logm=15] [logn=8] [c=50]
//        [thresholds=0.05,0.1,0.25,0.5,0.9] [csv=0] [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "mm/ChunkedManager.h"
#include "mm/EvacuatingCompactor.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/MathUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 50.0);
  std::vector<double> Thresholds =
      parseNumberList(Opts.getString("thresholds", "0.05,0.1,0.25,0.5,0.9"));
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);

  std::cout << "# Manager tuning: evacuation density threshold vs PF and"
            << " vs churn (M=" << formatWords(M) << ", n=" << formatWords(N)
            << ", c=" << C << ")\n"
            << "# The adversary's density 2^-sigma > 1/c makes aggressive"
            << " evacuation a budget sink against PF.\n";

  ExperimentGrid Grid;
  Grid.addAxis("manager",
               std::vector<std::string>{"evacuating", "chunked"});
  Grid.addAxis("threshold", Thresholds);
  Grid.addAxis("workload",
               std::vector<std::string>{"cohen-petrank", "random-churn"});

  ResultSink Sink({"manager", "threshold", "workload", "measured_waste",
                   "moved_words", "evacuations", "budget_used_%"});
  makeRunner(Opts).runRows(
      Grid,
      [&](const GridCell &Cell) {
        const std::string &Manager = Cell.str("manager");
        double Threshold = Cell.num("threshold");
        const std::string &Workload = Cell.str("workload");
        Heap H;
        std::unique_ptr<MemoryManager> MM;
        if (Manager == "evacuating") {
          EvacuatingCompactor::Options MOpts;
          MOpts.DensityThreshold = Threshold;
          MM = std::make_unique<EvacuatingCompactor>(H, C, MOpts);
        } else {
          ChunkedManager::Options MOpts;
          MOpts.GarbageThreshold = Threshold;
          MM = std::make_unique<ChunkedManager>(H, C, MOpts);
        }
        std::unique_ptr<Program> Prog;
        if (Workload == "cohen-petrank") {
          Prog = std::make_unique<CohenPetrankProgram>(M, N, C);
        } else {
          RandomChurnProgram::Options POpts;
          POpts.Steps = 48;
          POpts.MaxLogSize = LogN;
          Prog = std::make_unique<RandomChurnProgram>(M, POpts);
        }
        Execution E(*MM, *Prog, M);
        ExecutionResult R = E.run();
        uint64_t Evacs =
            Manager == "evacuating"
                ? static_cast<EvacuatingCompactor &>(*MM).numEvacuations()
                : static_cast<ChunkedManager &>(*MM).numChunkEvacuations();
        double BudgetPct = R.TotalAllocatedWords == 0
                               ? 0.0
                               : 100.0 * double(R.MovedWords) * C /
                                     double(R.TotalAllocatedWords);
        return Row()
            .addCell(Manager)
            .addCell(Threshold, 2)
            .addCell(Workload)
            .addCell(R.wasteFactor(M), 3)
            .addCell(R.MovedWords)
            .addCell(Evacs)
            .addCell(BudgetPct, 1);
      },
      Sink);
  return Sink.emit(Opts) ? 0 : 1;
}
