//===- bench/bench_exact.cpp - E12: certify the sandwich -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Solves the allocation game exactly on a grid of tiny parameters and
// certifies the closed-form bounds layer against the resulting ground
// truth: Theorem 1's forced heap <= exact <= the best upper bound on
// every cell, with exact == Robson's matching formula at c = infinity.
// The stdout table is deterministic (the determinism test diffs it across
// thread counts); solver wall-clock and state-space sizes go to stderr.
//
// Usage: bench_exact [Ms=2,4,8] [ns=2,4] [cs=1,2,4,inf] [csv=0]
//                    [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "exact/Certifier.h"
#include "exact/MinimaxSolver.h"
#include "BenchUtils.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace pcb;

namespace {

std::string formatBound(double Words) {
  return std::isnan(Words) ? std::string("-") : formatDouble(Words, 1);
}

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::vector<double> Ms = parseNumberList(Opts.getString("Ms", "2,4,8"));
  std::vector<double> Ns = parseNumberList(Opts.getString("ns", "2,4"));
  std::string CsText = Opts.getString("cs", "1,2,4,inf");

  // Quota labels: integers plus "inf" (solver convention C = 0).
  std::vector<std::pair<std::string, uint64_t>> Cs;
  {
    std::istringstream IS(CsText);
    std::string Item;
    while (std::getline(IS, Item, ',')) {
      if (Item.empty())
        continue;
      if (Item == "inf") {
        Cs.push_back({Item, 0});
        continue;
      }
      Cs.push_back({Item, uint64_t(std::strtoull(Item.c_str(), nullptr, 10))});
    }
  }

  struct ExactCell {
    ExactParams P;
    std::string CLabel;
  };
  std::vector<ExactCell> Cells;
  for (double M : Ms)
    for (double N : Ns)
      for (const auto &[Label, C] : Cs) {
        if (N > M)
          continue; // out of the P2(M, n) domain
        ExactParams P;
        P.M = uint64_t(M);
        P.N = uint64_t(N);
        P.C = C;
        if (!P.valid()) {
          std::cerr << "error: cell M=" << M << " n=" << N << " c=" << Label
                    << " is outside the solvable range\n";
          return 1;
        }
        Cells.push_back({P, Label});
      }

  std::cout << "# E12: certify the sandwich — exact game values vs the"
            << " closed-form bounds\n"
            << "# Theorem 1 <= exact <= best upper on every cell;"
            << " exact == Robson at c=inf.\n";

  Runner Run = makeRunner(Opts);
  std::vector<ExactCertificate> Certs{Cells.size()};
  Run.forEachCell(Cells.size(), [&](uint64_t I) {
    const ExactParams &P = Cells[size_t(I)].P;
    Certs[size_t(I)] = certifyCell(P, solveExact(P));
  });

  ResultSink Sink({"M", "n", "c", "exact", "lower", "robson", "thm2",
                   "upper", "status"});
  uint64_t NumFailed = 0, TotalNodes = 0;
  for (size_t I = 0; I != Cells.size(); ++I) {
    const ExactCertificate &Cert = Certs[I];
    for (const ArenaOutcome &A : Cert.Result.Arenas)
      TotalNodes += A.Nodes;
    if (!Cert.ok()) {
      ++NumFailed;
      std::cerr << "certificate FAILED: " << Cert.describe() << "\n";
    }
    Sink.append(Row()
                    .addCell(Cells[I].P.M)
                    .addCell(Cells[I].P.N)
                    .addCell(Cells[I].CLabel)
                    .addCell(Cert.Result.Solved
                                 ? std::to_string(Cert.Result.ExactWords)
                                 : std::string("-"))
                    .addCell(formatBound(Cert.LowerWords))
                    .addCell(formatBound(Cert.RobsonWords))
                    .addCell(formatBound(Cert.Theorem2Words))
                    .addCell(formatBound(Cert.UpperWords))
                    .addCell(!Cert.Result.Solved ? "unsolved"
                             : !Cert.ok()        ? "FAIL"
                             : Cert.Strict       ? "ok-strict"
                                                 : "ok"));
  }
  if (!Sink.emit(Opts))
    return 1;

  std::cerr << "# perf: " << Cells.size() << " cells, " << TotalNodes
            << " game states in " << formatDouble(Run.wallSeconds(), 2)
            << "s wall (threads=" << Run.threads() << ")\n";
  return NumFailed == 0 ? 0 : 1;
}
