//===- bench/bench_upper.cpp - E6: upper-bound manager behaviour ---------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Measures how the Theorem-2-spirited HybridManager (segregated fit plus
// budgeted evacuation) and its relatives behave against both adversarial
// and ordinary workloads, and compares the measured footprints with the
// three upper-bound formulas: (c+1) M (POPL 2011), 2 * Robson
// (no-compaction, general programs) and the reconstructed Theorem 2.
// Every measured waste must stay below every applicable upper bound.
//
// Usage: bench_upper [logm=15] [logn=8] [c=50] [csv=0]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/PatternWorkloads.h"
#include "adversary/RobsonProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "support/Statistics.h"
#include "BenchUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <functional>
#include <iostream>
#include <memory>
#include <vector>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 50.0);
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);
  BoundParams P{M, N, C};

  std::cout << "# E6: upper-bound manager behaviour (M=" << formatWords(M)
            << ", n=" << formatWords(N) << ", c=" << C << ")\n"
            << "# Upper bounds: (c+1)M waste=" << C + 1.0
            << "; 2*Robson waste="
            << formatDouble(robsonGeneralWasteFactor(P), 3);
  if (C > 0.5 * double(P.logN()))
    std::cout << "; Theorem 2 waste="
              << formatDouble(cohenPetrankUpperWasteFactor(P), 3);
  std::cout << "\n";

  std::vector<std::string> Policies = {"segregated-fit", "buddy",
                                       "first-fit",      "evacuating",
                                       "hybrid",         "paged-space",
                                       "bump-compactor"};

  // Stochastic workloads are averaged over seeds; the adversaries are
  // deterministic and run once.
  Table T({"workload", "policy", "waste_mean", "waste_min", "waste_max",
           "moved_mean"});
  auto RunStats =
      [&](const std::string &Workload, const std::string &Policy,
          const std::function<std::unique_ptr<Program>(uint64_t)> &Make,
          const std::vector<uint64_t> &Seeds) {
        RunningStat Waste, Moved;
        for (uint64_t Seed : Seeds) {
          Heap H;
          auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
          auto Prog = Make(Seed);
          Execution E(*MM, *Prog, M);
          ExecutionResult R = E.run();
          Waste.add(R.wasteFactor(M));
          Moved.add(double(R.MovedWords));
        }
        T.beginRow();
        T.addCell(Workload);
        T.addCell(Policy);
        T.addCell(Waste.mean(), 3);
        T.addCell(Waste.min(), 3);
        T.addCell(Waste.max(), 3);
        T.addCell(uint64_t(Moved.mean()));
      };
  auto RunOne = [&](const std::string &Workload, const std::string &Policy,
                    std::unique_ptr<Program> Prog) {
    Heap H;
    auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
    Execution E(*MM, *Prog, M);
    ExecutionResult R = E.run();
    T.beginRow();
    T.addCell(Workload);
    T.addCell(Policy);
    T.addCell(R.wasteFactor(M), 3);
    T.addCell(R.wasteFactor(M), 3);
    T.addCell(R.wasteFactor(M), 3);
    T.addCell(R.MovedWords);
  };
  const std::vector<uint64_t> Seeds = {1, 2, 3};

  for (const std::string &Policy : Policies) {
    RunOne("robson", Policy, std::make_unique<RobsonProgram>(M, LogN));
    RunOne("cohen-petrank", Policy,
           std::make_unique<CohenPetrankProgram>(M, N, C));
    RunStats("random-churn", Policy,
             [&](uint64_t Seed) -> std::unique_ptr<Program> {
               RandomChurnProgram::Options O;
               O.Steps = 48;
               O.MaxLogSize = LogN;
               O.Seed = Seed;
               return std::make_unique<RandomChurnProgram>(M, O);
             },
             Seeds);
    RunStats("markov-phase", Policy,
             [&](uint64_t Seed) -> std::unique_ptr<Program> {
               MarkovPhaseProgram::Options O;
               O.MaxLogSize = LogN;
               O.Seed = Seed;
               return std::make_unique<MarkovPhaseProgram>(M, O);
             },
             Seeds);
    RunStats("stack-lifo", Policy,
             [&](uint64_t Seed) -> std::unique_ptr<Program> {
               StackProgram::Options O;
               O.MaxLogSize = LogN;
               O.Seed = Seed;
               return std::make_unique<StackProgram>(M, O);
             },
             Seeds);
    RunStats("queue-fifo", Policy,
             [&](uint64_t Seed) -> std::unique_ptr<Program> {
               QueueProgram::Options O;
               O.MaxLogSize = LogN;
               O.Seed = Seed;
               return std::make_unique<QueueProgram>(M, O);
             },
             Seeds);
    RunStats("sawtooth", Policy,
             [&](uint64_t Seed) -> std::unique_ptr<Program> {
               SawtoothProgram::Options O;
               O.MaxLogSize = LogN;
               O.Seed = Seed;
               return std::make_unique<SawtoothProgram>(M, O);
             },
             Seeds);
  }
  if (!emitTable(T, Opts))
    return 1;
  return 0;
}
