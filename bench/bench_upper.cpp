//===- bench/bench_upper.cpp - E6: upper-bound manager behaviour ---------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Measures how the Theorem-2-spirited HybridManager (segregated fit plus
// budgeted evacuation) and its relatives behave against both adversarial
// and ordinary workloads, and compares the measured footprints with the
// three upper-bound formulas: (c+1) M (POPL 2011), 2 * Robson
// (no-compaction, general programs) and the reconstructed Theorem 2.
// Every measured waste must stay below every applicable upper bound.
//
// Each (policy, workload) pair is one grid cell; stochastic workloads
// average over per-cell seeds split from the cell's deterministic seed.
//
// Usage: bench_upper [logm=15] [logn=8] [c=50] [seeds=3] [csv=0]
//                    [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "adversary/PatternWorkloads.h"
#include "adversary/RobsonProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "support/Statistics.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/OptionParser.h"
#include "support/Random.h"
#include "support/Table.h"

#include <iostream>
#include <memory>
#include <vector>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  unsigned LogM = unsigned(Opts.getUInt("logm", 15));
  unsigned LogN = unsigned(Opts.getUInt("logn", 8));
  double C = Opts.getDouble("c", 50.0);
  uint64_t NumSeeds = Opts.getUInt("seeds", 3);
  uint64_t M = pow2(LogM);
  uint64_t N = pow2(LogN);
  BoundParams P{M, N, C};

  std::cout << "# E6: upper-bound manager behaviour (M=" << formatWords(M)
            << ", n=" << formatWords(N) << ", c=" << C << ")\n"
            << "# Upper bounds: (c+1)M waste=" << C + 1.0
            << "; 2*Robson waste="
            << formatDouble(robsonGeneralWasteFactor(P), 3);
  if (C > 0.5 * double(P.logN()))
    std::cout << "; Theorem 2 waste="
              << formatDouble(cohenPetrankUpperWasteFactor(P), 3);
  std::cout << "\n";

  std::vector<std::string> Policies = {"segregated-fit", "buddy",
                                       "first-fit",      "evacuating",
                                       "hybrid",         "paged-space",
                                       "bump-compactor"};
  std::vector<std::string> Workloads = {
      "robson",     "cohen-petrank", "random-churn", "markov-phase",
      "stack-lifo", "queue-fifo",    "sawtooth"};

  ExperimentGrid Grid;
  Grid.addAxis("policy", Policies);
  Grid.addAxis("workload", Workloads);

  ResultSink Sink({"workload", "policy", "waste_mean", "waste_min",
                   "waste_max", "moved_mean"});
  makeRunner(Opts).runRows(
      Grid,
      [&](const GridCell &Cell) {
        const std::string &Policy = Cell.str("policy");
        const std::string &Workload = Cell.str("workload");

        // The adversaries are deterministic and run once; the stochastic
        // workloads run NumSeeds times on independent streams split from
        // the cell seed (so results depend only on the cell, never on
        // which thread ran it).
        auto MakeProgram =
            [&](uint64_t Seed) -> std::unique_ptr<Program> {
          if (Workload == "robson")
            return std::make_unique<RobsonProgram>(M, LogN);
          if (Workload == "cohen-petrank")
            return std::make_unique<CohenPetrankProgram>(M, N, C);
          if (Workload == "random-churn") {
            RandomChurnProgram::Options O;
            O.Steps = 48;
            O.MaxLogSize = LogN;
            O.Seed = Seed;
            return std::make_unique<RandomChurnProgram>(M, O);
          }
          if (Workload == "markov-phase") {
            MarkovPhaseProgram::Options O;
            O.MaxLogSize = LogN;
            O.Seed = Seed;
            return std::make_unique<MarkovPhaseProgram>(M, O);
          }
          if (Workload == "stack-lifo") {
            StackProgram::Options O;
            O.MaxLogSize = LogN;
            O.Seed = Seed;
            return std::make_unique<StackProgram>(M, O);
          }
          if (Workload == "queue-fifo") {
            QueueProgram::Options O;
            O.MaxLogSize = LogN;
            O.Seed = Seed;
            return std::make_unique<QueueProgram>(M, O);
          }
          SawtoothProgram::Options O;
          O.MaxLogSize = LogN;
          O.Seed = Seed;
          return std::make_unique<SawtoothProgram>(M, O);
        };
        bool Deterministic =
            Workload == "robson" || Workload == "cohen-petrank";
        uint64_t Runs = Deterministic ? 1 : NumSeeds;

        RunningStat Waste, Moved;
        for (uint64_t K = 0; K != Runs; ++K) {
          Heap H;
          auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
          auto Prog = MakeProgram(splitSeed(Cell.seed(), K));
          Execution E(*MM, *Prog, M);
          ExecutionResult R = E.run();
          Waste.add(R.wasteFactor(M));
          Moved.add(double(R.MovedWords));
        }
        return Row()
            .addCell(Workload)
            .addCell(Policy)
            .addCell(Waste.mean(), 3)
            .addCell(Waste.min(), 3)
            .addCell(Waste.max(), 3)
            .addCell(uint64_t(Moved.mean()));
      },
      Sink);
  return Sink.emit(Opts) ? 0 : 1;
}
