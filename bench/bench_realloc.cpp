//===- bench/bench_realloc.cpp - E16: reallocation overhead curves -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// The reallocation workbench's overhead-curve bench: every insert/delete
// adversary (realloc/UpdateProgram.h) plus the Cohen–Petrank PF
// adversary runs through every reallocation algorithm, reporting the
// footprint each achieved and the overhead it paid — moved words per
// allocated word, with the worst prefix ratio checked against each
// scheme's declared bound. PF's row is E16's cross-family half: the
// compaction family's strongest adversary aimed at the other problem.
//
// Usage: bench_realloc [programs=update-fill-drain,...,cohen-petrank]
//                      [policies=realloc-never,realloc-bucket,realloc-jin]
//                      [logm=12] [logn=6] [c=50] [threads=0]
//                      [csv=0] [json=0] [out=] [bench-json=FILE]
//
// The results table on stdout stays byte-identical across thread counts
// (the determinism test diffs it); wall-clock perf goes to stderr, and
// the regression baseline (steps/sec, the per-phase breakdown with
// mm.realloc, and the per-cell overhead ratios compare_bench.py gates)
// goes to bench-json=FILE.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "adversary/ProgramFactory.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "obs/Profiler.h"
#include "realloc/ReallocationLedger.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/MathUtils.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <algorithm>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

using namespace pcb;

namespace {

/// Splits "a,b,c" into non-empty items.
std::vector<std::string> parseNameList(const std::string &Text) {
  std::vector<std::string> Names;
  std::istringstream IS(Text);
  std::string Item;
  while (std::getline(IS, Item, ','))
    if (!Item.empty())
      Names.push_back(Item);
  return Names;
}

struct CellOutcome {
  ExecutionResult Exec;
  double Overhead = 0.0;
  double WorstPrefix = 0.0;
  double Bound = 0.0;
};

CellOutcome runCell(const std::string &ProgName, const std::string &Policy,
                    uint64_t M, unsigned LogN, double C) {
  Heap H;
  auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
  auto Prog = createProgram(ProgName, M, LogN, C);
  Execution E(*MM, *Prog, M);
  CellOutcome Out;
  Out.Exec = E.run();
  Out.Overhead = Out.Exec.overheadRatio();
  Out.Bound = MM->overheadBound();
  if (const ReallocationLedger *RL = MM->reallocationLedger())
    Out.WorstPrefix = RL->maxPrefixRatio();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  std::vector<std::string> Programs = parseNameList(Opts.getString(
      "programs", "update-fill-drain,update-alternating,update-comb,"
                  "update-size-profile,update-mix,cohen-petrank"));
  std::vector<std::string> Policies = parseNameList(
      Opts.getString("policies", "realloc-never,realloc-bucket,realloc-jin"));
  unsigned LogM = unsigned(Opts.getUInt("logm", 12));
  unsigned LogN = unsigned(Opts.getUInt("logn", 6));
  double C = Opts.getDouble("c", 50.0);
  uint64_t M = pow2(LogM);
  std::string BenchJsonPath = Opts.getString("bench-json", "");
  if (Programs.empty() || Policies.empty()) {
    std::cerr << "error: programs= and policies= must be non-empty\n";
    return 1;
  }
  for (const std::string &Name : Programs) {
    std::string Error;
    if (!createProgramChecked(Name, M, LogN, C, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
  }
  for (const std::string &Policy : Policies) {
    Heap Probe;
    std::string Error;
    if (!createManagerChecked(Policy, Probe, C, /*LiveBound=*/M, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
  }

  std::cout << "# E16: reallocation overhead curves: " << Programs.size()
            << " programs x " << Policies.size() << " algorithms (M="
            << formatWords(M) << ", n=" << formatWords(pow2(LogN)) << ")\n"
            << "# overhead = moved words / allocated words; worst_prefix"
            << " must stay at or below each scheme's bound.\n";

  ExperimentGrid Grid;
  Grid.addAxis("program", Programs);
  Grid.addAxis("policy", Policies);

  ResultSink Sink({"program", "policy", "steps", "HS", "waste", "moved_words",
                   "alloc_words", "overhead", "worst_prefix", "bound"});
  std::atomic<uint64_t> TotalSteps{0};
  // The gated overhead cells for the JSON baseline, keyed for stable
  // emission order; filled under a mutex because runRows is parallel.
  std::vector<std::pair<std::string, double>> OverheadCells;
  std::mutex CellsMutex;
  Runner Run = makeRunner(Opts);
  try {
    Run.runRows(
        Grid,
        [&](const GridCell &Cell) {
          const std::string &ProgName = Cell.str("program");
          const std::string &Policy = Cell.str("policy");
          CellOutcome Out = runCell(ProgName, Policy, M, LogN, C);
          TotalSteps.fetch_add(Out.Exec.Steps, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> Lock(CellsMutex);
            OverheadCells.emplace_back(ProgName + "/" + Policy,
                                       Out.Overhead);
          }
          return Row()
              .addCell(ProgName)
              .addCell(Policy)
              .addCell(Out.Exec.Steps)
              .addCell(Out.Exec.HeapSize)
              .addCell(Out.Exec.wasteFactor(M), 3)
              .addCell(Out.Exec.MovedWords)
              .addCell(Out.Exec.TotalAllocatedWords)
              .addCell(Out.Overhead, 4)
              .addCell(Out.WorstPrefix, 4)
              .addCell(std::isfinite(Out.Bound) ? formatDouble(Out.Bound, 1)
                                                : std::string("inf"));
        },
        Sink);
  } catch (const std::exception &Ex) {
    std::cerr << "error: " << Ex.what() << "\n";
    return 1;
  }
  if (!Sink.emit(Opts))
    return 1;

  // Wall-clock reporting is stderr-only: the determinism test diffs
  // stdout across thread counts.
  double Wall = Run.wallSeconds();
  double StepsPerSec = Wall > 0.0 ? double(TotalSteps.load()) / Wall : 0.0;
  std::cerr << "# perf: " << Grid.numCells() << " cells in "
            << formatDouble(Wall, 2) << "s wall (threads=" << Run.threads()
            << "); " << TotalSteps.load() << " steps, "
            << uint64_t(StepsPerSec) << " steps/s\n";

  if (!BenchJsonPath.empty()) {
    // Per-phase breakdown from a profiled serial re-run of the whole
    // grid: one cell would be over in a millisecond, far too few calls
    // for the per-phase ns/call gate to be stable across CI runs.
    Profiler Prof;
    double CellWall = 0.0;
    uint64_t CellSteps = 0;
    {
      ProfilerScope Scope(Prof);
      auto Start = std::chrono::steady_clock::now();
      for (const std::string &ProgName : Programs)
        for (const std::string &Policy : Policies)
          CellSteps += runCell(ProgName, Policy, M, LogN, C).Exec.Steps;
      CellWall = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    }

    // Deterministic emission order for the committed baseline.
    std::sort(OverheadCells.begin(), OverheadCells.end());

    std::ofstream OS(BenchJsonPath);
    OS << "{\n"
       << "  \"bench\": \"realloc\",\n"
       << "  \"programs\": [";
    for (size_t I = 0; I != Programs.size(); ++I)
      OS << (I ? ", " : "") << "\"" << Programs[I] << "\"";
    OS << "],\n"
       << "  \"policies\": [";
    for (size_t I = 0; I != Policies.size(); ++I)
      OS << (I ? ", " : "") << "\"" << Policies[I] << "\"";
    OS << "],\n"
       << "  \"logm\": " << LogM << ",\n"
       << "  \"logn\": " << LogN << ",\n"
       << "  \"threads\": " << Run.threads() << ",\n"
       << "  \"wall_seconds\": " << formatDouble(Wall, 3) << ",\n"
       << "  \"total_steps\": " << TotalSteps.load() << ",\n"
       << "  \"steps_per_second\": " << formatDouble(StepsPerSec, 1) << ",\n"
       << "  \"profiled_grid\": {\"cells\": " << Grid.numCells()
       << ", \"steps\": " << CellSteps
       << ", \"wall_seconds\": " << formatDouble(CellWall, 3) << "},\n"
       << "  \"overhead_cells\": [";
    for (size_t I = 0; I != OverheadCells.size(); ++I)
      OS << (I ? ", " : "") << "{\"cell\": \"" << OverheadCells[I].first
         << "\", \"overhead\": " << formatDouble(OverheadCells[I].second, 4)
         << "}";
    OS << "],\n"
       << "  \"per_phase\": [";
    bool First = true;
    for (unsigned S = 0; S != Profiler::NumSections; ++S) {
      const Profiler::SectionStats &Stats =
          Prof.section(Profiler::Section(S));
      if (Stats.Calls == 0)
        continue;
      OS << (First ? "" : ", ") << "{\"section\": \""
         << Profiler::sectionName(Profiler::Section(S))
         << "\", \"calls\": " << Stats.Calls << ", \"total_ms\": "
         << formatDouble(double(Stats.Nanos) * 1e-6, 3)
         << ", \"ns_per_call\": "
         << formatDouble(double(Stats.Nanos) / double(Stats.Calls), 1)
         << "}";
      First = false;
    }
    OS << "]\n}\n";
    if (!OS) {
      std::cerr << "error: cannot write '" << BenchJsonPath << "'\n";
      return 1;
    }
    std::cerr << "# bench baseline written to " << BenchJsonPath << "\n";
  }
  return 0;
}
