//===- bench/bench_fig2.cpp - Figure 2: lower bound vs n -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Regenerates Figure 2: the lower bound on the waste factor h as a
// function of the maximum object size n, with c = 100 and M = 256 n
// (the paper's "no object larger than half a percent of the heap" rule).
// n ranges over 1KB .. 1GB.
//
// Usage: bench_fig2 [c=100] [lognmin=10] [lognmax=30] [ratio=256] [csv=0]
//                   [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundSweep.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/AsciiChart.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  double C = Opts.getDouble("c", 100.0);
  unsigned LogNMin = unsigned(Opts.getUInt("lognmin", 10));
  unsigned LogNMax = unsigned(Opts.getUInt("lognmax", 30));
  uint64_t Ratio = Opts.getUInt("ratio", 256);

  std::cout << "# Figure 2: lower bound on the waste factor h as a"
            << " function of n (c=" << C << ", M=" << Ratio << "n)\n";

  ExperimentGrid Grid;
  Grid.addRangeAxis("log2n", LogNMin, LogNMax);
  std::vector<Fig2Point> Series =
      makeRunner(Opts).map<Fig2Point>(Grid, [&](const GridCell &Cell) {
        unsigned LogN = unsigned(Cell.num("log2n"));
        return sweepFig2(C, LogN, LogN, Ratio).front();
      });

  ResultSink Sink({"n", "log2(n)", "new_lower", "sigma", "prior_lower"});
  ChartSeries NewCurve{"Theorem 1 lower bound (this paper)", '#', {}};
  ChartSeries PriorCurve{"POPL 2011 lower bound", '.', {}};
  for (const Fig2Point &Pt : Series) {
    Sink.append(Row()
                    .addCell(formatWords(Pt.N))
                    .addCell(uint64_t(Pt.LogN))
                    .addCell(Pt.NewLower, 3)
                    .addCell(uint64_t(Pt.Sigma))
                    .addCell(Pt.PriorLower, 3));
    NewCurve.Y.push_back(Pt.NewLower);
    PriorCurve.Y.push_back(Pt.PriorLower);
  }
  if (!Sink.emit(Opts))
    return 1;

  AsciiChart::Options ChartOpts;
  ChartOpts.XLabel = "log2(n)";
  ChartOpts.YLabel = "waste factor h";
  AsciiChart Chart(double(LogNMin), double(LogNMax), ChartOpts);
  Chart.addSeries(NewCurve);
  Chart.addSeries(PriorCurve);
  std::cout << '\n';
  Chart.print(std::cout);
  return 0;
}
