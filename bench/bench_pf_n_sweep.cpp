//===- bench/bench_pf_n_sweep.cpp - Figure 2's simulated counterpart -----===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
// Figure 2 plots the closed-form lower bound against the maximum object
// size n. This bench measures the same sweep: at fixed c and fixed
// M = ratio * n (the paper's proportions), PF runs against the best
// c-partial managers and the measured waste factor is compared with the
// closed form evaluated at the simulated scale. Theorem 1 predicts
// measured >= theory in every cell, with both growing in n.
//
// Usage: bench_pf_n_sweep [c=50] [lognmin=6] [lognmax=10] [ratio=64]
//                         [policy=evacuating] [csv=0] [threads=0] [out=]
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"
#include "bounds/CohenPetrankBounds.h"
#include "driver/Execution.h"
#include "mm/ManagerFactory.h"
#include "BenchUtils.h"
#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"
#include "runner/Runner.h"
#include "support/AsciiChart.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <iostream>

using namespace pcb;

namespace {

/// One measured point of the sweep, kept numeric for the ASCII chart.
struct SweepPoint {
  unsigned LogN = 0;
  uint64_t M = 0;
  uint64_t HeapSize = 0;
  double MeasuredWaste = 0.0;
  double TheoryH = 0.0;
  uint64_t Sigma = 0;
};

} // namespace

int main(int argc, char **argv) {
  OptionParser Opts(argc, argv);
  double C = Opts.getDouble("c", 50.0);
  unsigned LogNMin = unsigned(Opts.getUInt("lognmin", 6));
  unsigned LogNMax = unsigned(Opts.getUInt("lognmax", 10));
  uint64_t Ratio = Opts.getUInt("ratio", 64);
  std::string Policy = Opts.getString("policy", "evacuating");

  {
    // Validate the policy name once, before the sweep fans out.
    Heap Probe;
    if (!createManager(Policy, Probe, C)) {
      std::cerr << "error: unknown policy '" << Policy << "'\n";
      return 1;
    }
  }

  std::cout << "# Figure 2, simulated: PF vs " << Policy
            << " while n grows (c=" << C << ", M=" << Ratio << "n)\n"
            << "# Theorem 1: measured >= theory at every n; both grow"
            << " with n.\n";

  ExperimentGrid Grid;
  Grid.addRangeAxis("log2n", LogNMin, LogNMax);
  std::vector<SweepPoint> Series =
      makeRunner(Opts).map<SweepPoint>(Grid, [&](const GridCell &Cell) {
        unsigned LogN = unsigned(Cell.num("log2n"));
        uint64_t N = pow2(LogN);
        uint64_t M = Ratio * N;
        Heap H;
        auto MM = createManager(Policy, H, C, /*LiveBound=*/M);
        CohenPetrankProgram PF(M, N, C);
        Execution E(*MM, PF, M);
        ExecutionResult R = E.run();
        return SweepPoint{LogN,
                          M,
                          R.HeapSize,
                          R.wasteFactor(M),
                          PF.targetWasteFactor(),
                          uint64_t(PF.sigma())};
      });

  ResultSink Sink({"log2(n)", "M_words", "measured_HS", "measured_waste",
                   "theory_h", "sigma"});
  ChartSeries Measured{"measured waste (PF vs " + Policy + ")", '#', {}};
  ChartSeries Theory{"Theorem 1 h at simulated scale", '.', {}};
  for (const SweepPoint &Pt : Series) {
    Sink.append(Row()
                    .addCell(uint64_t(Pt.LogN))
                    .addCell(Pt.M)
                    .addCell(Pt.HeapSize)
                    .addCell(Pt.MeasuredWaste, 3)
                    .addCell(Pt.TheoryH, 3)
                    .addCell(Pt.Sigma));
    Measured.Y.push_back(Pt.MeasuredWaste);
    Theory.Y.push_back(Pt.TheoryH);
  }
  if (!Sink.emit(Opts))
    return 1;

  AsciiChart::Options ChartOpts;
  ChartOpts.XLabel = "log2(n)";
  ChartOpts.YLabel = "waste factor";
  AsciiChart Chart(double(LogNMin), double(LogNMax), ChartOpts);
  Chart.addSeries(Measured);
  Chart.addSeries(Theory);
  std::cout << '\n';
  Chart.print(std::cout);
  return 0;
}
