//===- service/SessionWorkload.cpp - Lightweight mutator sessions --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/SessionWorkload.h"

#include "support/Random.h"

using namespace pcb;

uint64_t pcb::sessionSeed(uint64_t FleetSeed, uint64_t GlobalId) {
  return splitSeed(FleetSeed, GlobalId);
}

WorkloadFuzzer::Pattern pcb::sessionPattern(uint64_t GlobalId) {
  // Only the direct patterns: the recorded ones (Churn/Phase) replay a
  // whole synthetic program per generation, far too heavy to run once
  // per session in a million-session fleet.
  static const WorkloadFuzzer::Pattern Direct[] = {
      WorkloadFuzzer::Pattern::Uniform,   WorkloadFuzzer::Pattern::Bimodal,
      WorkloadFuzzer::Pattern::StackLifo, WorkloadFuzzer::Pattern::QueueFifo,
      WorkloadFuzzer::Pattern::Comb,
  };
  return Direct[GlobalId % (sizeof(Direct) / sizeof(Direct[0]))];
}

namespace {

/// Teardown: free every allocation the schedule left live, in
/// allocation order. Retired sessions hold no memory.
void appendTeardown(std::vector<TraceOp> &Ops) {
  uint64_t NumAllocs = 0;
  for (const TraceOp &Op : Ops)
    if (Op.Op == TraceOp::Kind::Alloc)
      ++NumAllocs;
  std::vector<bool> Freed(size_t(NumAllocs), false);
  for (const TraceOp &Op : Ops)
    if (Op.Op == TraceOp::Kind::Free)
      Freed[size_t(Op.Value)] = true;
  for (uint64_t A = 0; A != NumAllocs; ++A)
    if (!Freed[size_t(A)])
      Ops.push_back(TraceOp::release(A));
}

} // namespace

std::vector<TraceOp> pcb::generateSessionTrace(const SessionParams &P,
                                               uint64_t GlobalId) {
  if (P.Trace) {
    // One trace = one session class: every session replays the recorded
    // schedule (plus teardown), and differs only in where the fleet's
    // striping, batching and residency interleave it with its
    // neighbours.
    std::vector<TraceOp> Ops = *P.Trace;
    appendTeardown(Ops);
    return Ops;
  }

  WorkloadFuzzer::Options FO;
  FO.Seed = sessionSeed(P.FleetSeed, GlobalId);
  FO.NumOps = P.TargetOps == 0 ? 1 : P.TargetOps;
  FO.LiveBound = P.LiveBound;
  FO.MaxLogSize = P.MaxLogSize;
  FO.P = sessionPattern(GlobalId);
  std::vector<TraceOp> Ops = WorkloadFuzzer(FO).generate().materialize();
  appendTeardown(Ops);
  return Ops;
}
