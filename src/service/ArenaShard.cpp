//===- service/ArenaShard.cpp - One shared-nothing fleet shard -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/ArenaShard.h"

#include "heap/Metrics.h"
#include "mm/ManagerFactory.h"
#include "obs/Profiler.h"

#include <algorithm>
#include <stdexcept>

using namespace pcb;

ArenaShard::ArenaShard(unsigned ArenaId, uint64_t NumSessions,
                       uint64_t FirstGlobalId, uint64_t GlobalStride,
                       const ShardConfig &Cfg, EventTap Tap)
    : Id(ArenaId), NumSessions(NumSessions), FirstGlobalId(FirstGlobalId),
      GlobalStride(GlobalStride == 0 ? 1 : GlobalStride), Cfg(Cfg),
      Tap(std::move(Tap)) {
  // The arena's live bound: resident sessions each respect their own.
  uint64_t LiveBound =
      std::max<uint64_t>(1, Cfg.MaxResident) * Cfg.Session.LiveBound;
  std::string Error;
  MM = createManagerChecked(Cfg.Policy, H, Cfg.C, LiveBound, &Error);
  if (!MM)
    throw std::runtime_error(Error);
  Ctrl = createControllerChecked(Cfg.Controller, &Error);
  if (!Ctrl)
    throw std::runtime_error(Error);
  MM->setSpendGate([this] { return Ctrl->consult(); });
  Ctrl->observe(sampleFromHeap(H, 0));
  if (Cfg.Audit) {
    H.setEventCallback([this](const HeapEvent &E) {
      HeapEvent Copy = E;
      if (this->Tap && !this->Tap(Copy))
        return;
      Log.record(Copy);
    });
    InvariantOracle::Options OO;
    OO.DeepCheckEvery = Cfg.DeepCheckEvery;
    Oracle = std::make_unique<InvariantOracle>(H, *MM, Log, OO);
  }
  Slots.resize(size_t(std::max<uint64_t>(1, Cfg.MaxResident)));
}

void ArenaShard::admit() {
  for (size_t S = 0; S != Slots.size() && NextToAdmit != NumSessions; ++S) {
    Resident &R = Slots[S];
    if (R.Active)
      continue;
    uint64_t GlobalId = FirstGlobalId + NextToAdmit * GlobalStride;
    ++NextToAdmit;
    R.Ops = generateSessionTrace(Cfg.Session, GlobalId);
    if (R.Ops.empty()) {
      // Degenerate empty session: retires at admission. Re-examine this
      // slot for the next pending session.
      ++Retired;
      Profiler::bump(Profiler::CtrServeSessions);
      sampleTimeline();
      --S;
      continue;
    }
    R.Active = true;
    R.GlobalId = GlobalId;
    R.Enqueued = 0;
    R.Applied = 0;
    R.AllocIds.clear();
    ++NumResident;
  }
}

void ArenaShard::fillBatch() {
  admit();
  while (Pending.size() < size_t(std::max<uint64_t>(1, Cfg.BatchSize))) {
    // Round-robin: the next resident session with an unqueued op submits
    // exactly one request per turn.
    bool Found = false;
    for (size_t Probe = 0; Probe != Slots.size(); ++Probe) {
      size_t S = (Cursor + Probe) % Slots.size();
      Resident &R = Slots[S];
      if (!R.Active || R.Enqueued == R.Ops.size())
        continue;
      Pending.push_back(Request{uint32_t(S), R.Ops[R.Enqueued]});
      ++R.Enqueued;
      Cursor = (S + 1) % Slots.size();
      Found = true;
      break;
    }
    if (!Found)
      break; // starved: every resident op is already queued
  }
}

void ArenaShard::flush() {
  ScopedTimer Timer(Profiler::SecServeFlush);
  for (const Request &Q : Pending) {
    Resident &R = Slots[Q.Slot];
    if (Q.Op.Op == TraceOp::Kind::Alloc) {
      R.AllocIds.push_back(MM->allocate(Q.Op.Value));
    } else {
      MM->free(R.AllocIds[size_t(Q.Op.Value)]);
    }
    ++R.Applied;
    ++OpsApplied;
    if (R.Applied == R.Ops.size()) {
      // The queue holds no further requests for this slot (requests
      // apply in submission order), so the slot is safely reusable at
      // the next admission.
      R.Active = false;
      R.Ops.clear();
      R.AllocIds.clear();
      --NumResident;
      ++Retired;
      Profiler::bump(Profiler::CtrServeSessions);
      sampleTimeline();
    }
  }
  Pending.clear();
  ++NumFlushes;
  Profiler::bump(Profiler::CtrServeFlushes);
  // The controller observes at flush granularity: a pure function of the
  // shard's fixed schedule, never of slicing or stealing.
  Ctrl->observe(sampleFromHeap(H, NumFlushes));
  // Flush-boundary fragmentation telemetry (O(log free blocks), so it
  // stays cheap at batch granularity). The drained endpoint has no live
  // words, so percentile reporting uses these peaks/means instead.
  FragmentationMetrics FM = measureFragmentation(H);
  PeakFrag = std::max(PeakFrag, FM.ExternalFragmentation);
  UtilSum += FM.Utilization;
  if (Oracle && Violations.size() < Cfg.MaxViolations) {
    Oracle->checkStep(NumFlushes, Violations);
    if (Violations.size() > Cfg.MaxViolations)
      Violations.resize(Cfg.MaxViolations);
  }
}

void ArenaShard::sampleTimeline() {
  if (Cfg.SampleEverySessions == 0 || Retired % Cfg.SampleEverySessions != 0)
    return;
  recordTimelinePoint();
}

void ArenaShard::recordTimelinePoint() {
  FragmentationMetrics FM = measureFragmentation(H);
  TimelinePoint P;
  P.Step = Retired;
  P.FootprintWords = FM.FootprintWords;
  P.LiveWords = FM.LiveWords;
  P.FreeWords = FM.FreeWords;
  P.FreeBlocks = FM.FreeBlocks;
  P.LargestFreeBlock = FM.LargestFreeBlock;
  P.Utilization = FM.Utilization;
  P.ExternalFragmentation = FM.ExternalFragmentation;
  P.AllocatedWords = H.stats().TotalAllocatedWords;
  P.MovedWords = H.stats().MovedWords;
  P.BudgetWords =
      MM->ledger().isUnlimited() ? 0 : MM->ledger().budgetWords();
  TL.addPoint(P);
  Profiler::bump(Profiler::CtrTimelineSamples);
}

bool ArenaShard::runSlice(uint64_t MaxFlushes) {
  for (uint64_t F = 0; F != MaxFlushes; ++F) {
    if (drained())
      break;
    fillBatch();
    if (Pending.empty())
      break; // nothing left to apply: drained (or all sessions empty)
    flush();
  }
  if (!drained())
    return false;
  if (!FinalCheckDone) {
    FinalCheckDone = true;
    // Endpoint timeline sample (unless the retirement cadence already
    // recorded this exact state).
    if (Cfg.SampleEverySessions != 0 &&
        (TL.empty() || TL.points().back().Step != Retired))
      recordTimelinePoint();
    // Closing deep check: the audit replay and budget history over the
    // whole recorded stream.
    if (Oracle && Violations.size() < Cfg.MaxViolations) {
      Oracle->checkDeep(NumFlushes, Violations);
      if (Violations.size() > Cfg.MaxViolations)
        Violations.resize(Cfg.MaxViolations);
    }
  }
  return true;
}
