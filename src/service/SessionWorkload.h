//===- service/SessionWorkload.h - Lightweight mutator sessions -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Session generation for the fleet simulator. A session is one
/// lightweight mutator: a short allocate/free trace produced by the
/// fuzzer's workload patterns (src/fuzz/WorkloadFuzzer.h), identified
/// fleet-wide by a single global id. Everything about a session — its
/// seed, its pattern, its operation list — is a pure function of
/// (fleet seed, global id) via splitSeed, the same discipline the
/// experiment runner uses for grid cells: schedules never depend on which
/// arena slot, batch, thread, or steal served them, which is what makes
/// the fleet report reproducible at any thread count.
///
/// Sessions are generated lazily (a few hundred bytes of TraceOps when
/// admitted, freed at retirement), so a fleet can hold millions of
/// pending sessions while only MaxResident-per-arena are materialized.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SERVICE_SESSIONWORKLOAD_H
#define PCBOUND_SERVICE_SESSIONWORKLOAD_H

#include "adversary/SyntheticWorkloads.h"
#include "fuzz/WorkloadFuzzer.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace pcb {

/// Shape parameters shared by every session of a fleet.
struct SessionParams {
  /// Seed of the whole fleet; per-session seeds are split from it.
  uint64_t FleetSeed = 1;
  /// Target operations per session (the fuzzer approximates it).
  uint64_t TargetOps = 48;
  /// Cap on one session's simultaneous live words. An arena's live
  /// volume is then bounded by MaxResident * LiveBound.
  uint64_t LiveBound = uint64_t(1) << 10;
  /// Largest object a session allocates: 2^MaxLogSize words.
  unsigned MaxLogSize = 6;
  /// Trace-backed fleets: when set, every session replays this recorded
  /// malloc trace (one trace = one session class) instead of a
  /// synthesized fuzz schedule; teardown frees are still appended. The
  /// caller must raise LiveBound to at least the trace's peak live
  /// volume. Shared: a production-sized trace is materialized once per
  /// fleet, not once per session.
  std::shared_ptr<const std::vector<TraceOp>> Trace;
};

/// The seed of session \p GlobalId: splitSeed(FleetSeed, GlobalId).
/// Depends only on its arguments, never on scheduling.
uint64_t sessionSeed(uint64_t FleetSeed, uint64_t GlobalId);

/// The workload pattern of session \p GlobalId: cycles through the
/// fuzzer's direct patterns (uniform, bimodal, stack-LIFO, queue-FIFO,
/// fragmentation comb) so neighbouring sessions stress an arena
/// differently.
WorkloadFuzzer::Pattern sessionPattern(uint64_t GlobalId);

/// Materializes session \p GlobalId's full operation list: the fuzzer
/// schedule for (sessionSeed, sessionPattern), with teardown frees
/// appended for every allocation the schedule leaves live — sessions
/// release all their memory when they retire, so a draining fleet's live
/// volume stays bounded by the resident sessions alone. Frees name their
/// allocation by per-session allocation ordinal (TraceOp convention).
std::vector<TraceOp> generateSessionTrace(const SessionParams &P,
                                          uint64_t GlobalId);

} // namespace pcb

#endif // PCBOUND_SERVICE_SESSIONWORKLOAD_H
