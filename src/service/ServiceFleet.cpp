//===- service/ServiceFleet.cpp - Work-stealing fleet scheduler ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/ServiceFleet.h"

#include "heap/Metrics.h"
#include "obs/Profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

using namespace pcb;

ServiceFleet::ServiceFleet(const FleetOptions &Opts) : Opts(Opts) {
  Shards.reserve(Opts.NumArenas);
  for (unsigned A = 0; A != Opts.NumArenas; ++A) {
    // Round-robin striping: arena A serves global ids A + k * NumArenas,
    // i.e. NumSessions / NumArenas sessions plus one for the first
    // NumSessions % NumArenas arenas.
    uint64_t Count = Opts.NumSessions / Opts.NumArenas +
                     (A < Opts.NumSessions % Opts.NumArenas ? 1 : 0);
    ArenaShard::EventTap Tap;
    if (Opts.ArenaTap) {
      auto Fleet = Opts.ArenaTap;
      Tap = [Fleet, A](HeapEvent &E) { return Fleet(A, E); };
    }
    Shards.push_back(std::make_unique<ArenaShard>(
        A, Count, /*FirstGlobalId=*/A, /*GlobalStride=*/Opts.NumArenas,
        Opts.Shard, std::move(Tap)));
  }
}

void ServiceFleet::run() {
  auto WallStart = std::chrono::steady_clock::now();
  uint64_t Quantum = std::max<uint64_t>(1, Opts.SliceFlushes);

  unsigned W = Opts.Threads != 0 ? Opts.Threads
                                 : std::max(1u, std::thread::hardware_concurrency());
  W = std::min(W, std::max(1u, unsigned(Shards.size())));
  UsedThreads = W;

  // One deque per worker; an arena is in exactly one deque or held by
  // exactly one worker, so shard state itself is never shared.
  struct WorkerState {
    std::mutex Mu;
    std::deque<ArenaShard *> Deque;
  };
  std::vector<std::unique_ptr<WorkerState>> Workers;
  Workers.reserve(W);
  for (unsigned I = 0; I != W; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  for (size_t A = 0; A != Shards.size(); ++A)
    Workers[A % W]->Deque.push_back(Shards[A].get());

  std::atomic<uint64_t> Remaining{Shards.size()};
  std::atomic<uint64_t> StealCount{0};
  std::atomic<uint64_t> SliceCount{0};
  std::atomic<bool> Abort{false};
  std::exception_ptr FirstExc;
  std::mutex ExcMu;

  auto worker = [&](unsigned Me) {
    Profiler LocalProf;
    ProfilerScope Scope(Opts.Prof ? &LocalProf : nullptr);
    WorkerState &Own = *Workers[Me];
    while (!Abort.load(std::memory_order_relaxed) &&
           Remaining.load(std::memory_order_relaxed) != 0) {
      ArenaShard *S = nullptr;
      {
        std::lock_guard<std::mutex> Lock(Own.Mu);
        if (!Own.Deque.empty()) {
          S = Own.Deque.front();
          Own.Deque.pop_front();
        }
      }
      if (!S) {
        // Steal from a victim's back (coldest work first).
        for (unsigned D = 1; D != W && !S; ++D) {
          WorkerState &Victim = *Workers[(Me + D) % W];
          std::lock_guard<std::mutex> Lock(Victim.Mu);
          if (!Victim.Deque.empty()) {
            S = Victim.Deque.back();
            Victim.Deque.pop_back();
          }
        }
        if (S) {
          StealCount.fetch_add(1, std::memory_order_relaxed);
          Profiler::bump(Profiler::CtrServeSteals);
        }
      }
      if (!S) {
        // Nothing runnable here, but undrained arenas are held by other
        // workers; spin politely until one re-queues or all drain.
        std::this_thread::yield();
        continue;
      }
      try {
        bool Drained = S->runSlice(Quantum);
        SliceCount.fetch_add(1, std::memory_order_relaxed);
        if (Drained) {
          Remaining.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          std::lock_guard<std::mutex> Lock(Own.Mu);
          Own.Deque.push_back(S);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> Lock(ExcMu);
          if (!FirstExc)
            FirstExc = std::current_exception();
        }
        Abort.store(true, std::memory_order_relaxed);
      }
    }
    if (Opts.Prof) {
      std::lock_guard<std::mutex> Lock(ExcMu);
      Opts.Prof->merge(LocalProf);
    }
  };

  if (W == 1) {
    worker(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(W);
    for (unsigned I = 0; I != W; ++I)
      Pool.emplace_back(worker, I);
    for (std::thread &T : Pool)
      T.join();
  }

  NumSteals = StealCount.load();
  NumSlices = SliceCount.load();
  WallSecs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           WallStart)
                 .count();
  if (FirstExc)
    std::rethrow_exception(FirstExc);
}

FleetReport ServiceFleet::report() const {
  FleetReport R;
  R.NumArenas = unsigned(Shards.size());
  R.NumSessions = Opts.NumSessions;
  R.Policy = Opts.Shard.Policy;
  R.C = Opts.Shard.C;
  R.BatchSize = Opts.Shard.BatchSize;
  R.MaxResident = Opts.Shard.MaxResident;
  R.SessionOps = Opts.Shard.Session.TargetOps;
  R.Seed = Opts.Shard.Session.FleetSeed;
  R.ArenaRowLimit = Opts.ArenaRowLimit;

  std::vector<double> Frags, Utils, Footprints;
  Frags.reserve(Shards.size());
  Utils.reserve(Shards.size());
  Footprints.reserve(Shards.size());

  for (const std::unique_ptr<ArenaShard> &SP : Shards) {
    const ArenaShard &S = *SP;
    ArenaSummary A;
    A.ArenaId = S.arenaId();
    A.Sessions = S.sessionsRetired();
    A.Flushes = S.flushes();
    A.OpsApplied = S.opsApplied();
    A.Stats = S.heap().stats();
    A.Frag = measureFragmentation(S.heap());
    A.PeakFragmentation = S.peakFragmentation();
    A.MeanUtilization = S.meanUtilization();
    const CompactionLedger &L = S.manager().ledger();
    A.BudgetAllowedWords = L.isUnlimited() ? 0 : L.budgetWords();
    A.BudgetBurn = A.BudgetAllowedWords != 0
                       ? double(A.Stats.MovedWords) /
                             double(A.BudgetAllowedWords)
                       : 0.0;
    A.NumViolations = S.violations().size();
    R.Arenas.push_back(A);

    R.TotalFootprintWords += A.Stats.HighWaterMark;
    R.TotalLiveWords += A.Stats.LiveWords;
    R.TotalAllocatedWords += A.Stats.TotalAllocatedWords;
    R.TotalMovedWords += A.Stats.MovedWords;
    R.TotalAllocations += A.Stats.NumAllocations;
    R.TotalFrees += A.Stats.NumFrees;
    R.TotalMoves += A.Stats.NumMoves;
    R.TotalSessions += A.Sessions;
    R.TotalFlushes += A.Flushes;
    R.TotalOpsApplied += A.OpsApplied;
    R.BudgetAllowedWords += A.BudgetAllowedWords;

    Frags.push_back(A.PeakFragmentation);
    Utils.push_back(A.MeanUtilization);
    Footprints.push_back(double(A.Stats.HighWaterMark));

    for (const Violation &V : S.violations())
      R.Violations.push_back(FleetViolation{S.arenaId(), V});
  }

  R.P50Fragmentation = percentileNearestRank(Frags, 0.50);
  R.P99Fragmentation = percentileNearestRank(Frags, 0.99);
  R.P99FootprintWords = uint64_t(percentileNearestRank(Footprints, 0.99));
  if (!Utils.empty()) {
    double Sum = 0.0;
    for (double U : Utils)
      Sum += U;
    R.MeanUtilization = Sum / double(Utils.size());
  }
  R.BudgetBurn = R.BudgetAllowedWords != 0
                     ? double(R.TotalMovedWords) / double(R.BudgetAllowedWords)
                     : 0.0;

  // Epoch-aligned fleet timeline: epoch k sums every arena's point at
  // min(k, last). Arenas sample on the same retired-sessions cadence, so
  // epochs line up; a shorter arena contributes its drained endpoint to
  // later epochs.
  size_t Epochs = 0;
  for (const std::unique_ptr<ArenaShard> &SP : Shards)
    Epochs = std::max(Epochs, SP->timeline().size());
  for (size_t K = 0; K != Epochs; ++K) {
    TimelinePoint P;
    for (const std::unique_ptr<ArenaShard> &SP : Shards) {
      const std::vector<TimelinePoint> &Pts = SP->timeline().points();
      if (Pts.empty())
        continue;
      const TimelinePoint &Q = Pts[std::min(K, Pts.size() - 1)];
      P.Step += Q.Step;
      P.FootprintWords += Q.FootprintWords;
      P.LiveWords += Q.LiveWords;
      P.FreeWords += Q.FreeWords;
      P.FreeBlocks += Q.FreeBlocks;
      P.LargestFreeBlock = std::max(P.LargestFreeBlock, Q.LargestFreeBlock);
      P.AllocatedWords += Q.AllocatedWords;
      P.MovedWords += Q.MovedWords;
      P.BudgetWords += Q.BudgetWords;
    }
    P.Utilization = P.FootprintWords != 0
                        ? double(P.LiveWords) / double(P.FootprintWords)
                        : 0.0;
    P.ExternalFragmentation =
        P.FreeWords != 0
            ? 1.0 - double(P.LargestFreeBlock) / double(P.FreeWords)
            : 0.0;
    R.FleetTimeline.addPoint(P);
  }

  return R;
}
