//===- service/FleetReport.h - Aggregate fleet telemetry --------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic output of a fleet run: per-arena summaries, fleet
/// totals (footprint, allocation volume, compaction spend), the
/// percentile view of per-arena fragmentation the Compact-fit trade-off
/// curves are drawn from, arena-attributed invariant violations, and a
/// merged fleet timeline. Every field derives from the shards' final
/// deterministic state — never from the clock, thread count, or steal
/// history — so the rendered report is byte-identical across thread
/// counts and fits golden-file testing. Wall-clock and scheduler
/// observability (steals, slices) live on ServiceFleet and go to stderr.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SERVICE_FLEETREPORT_H
#define PCBOUND_SERVICE_FLEETREPORT_H

#include "fuzz/InvariantOracle.h"
#include "heap/Heap.h"
#include "heap/Metrics.h"
#include "obs/Timeline.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

/// Final state of one arena, as reported.
struct ArenaSummary {
  unsigned ArenaId = 0;
  uint64_t Sessions = 0; ///< sessions assigned (== retired after a run)
  uint64_t Flushes = 0;
  uint64_t OpsApplied = 0;
  HeapStats Stats;
  /// Endpoint measurement (degenerate after a full drain: no live words).
  FragmentationMetrics Frag;
  /// Peak external fragmentation over flush boundaries.
  double PeakFragmentation = 0.0;
  /// Mean utilization over flush boundaries.
  double MeanUtilization = 0.0;
  /// floor(s/c) at the end; 0 for non-budget-limited managers.
  uint64_t BudgetAllowedWords = 0;
  /// Moved words as a fraction of the allowed budget (0 when unlimited
  /// or nothing allowed yet).
  double BudgetBurn = 0.0;
  size_t NumViolations = 0;
};

/// One arena-attributed invariant violation.
struct FleetViolation {
  unsigned ArenaId = 0;
  Violation V;
};

/// The deterministic fleet report; see the file comment.
struct FleetReport {
  // Configuration echo.
  unsigned NumArenas = 0;
  uint64_t NumSessions = 0;
  std::string Policy;
  double C = 0.0;
  uint64_t BatchSize = 0;
  uint64_t MaxResident = 0;
  uint64_t SessionOps = 0;
  uint64_t Seed = 0;

  std::vector<ArenaSummary> Arenas;

  // Fleet-wide aggregates.
  uint64_t TotalFootprintWords = 0; ///< sum of per-arena high-water marks
  uint64_t TotalLiveWords = 0;
  uint64_t TotalAllocatedWords = 0;
  uint64_t TotalMovedWords = 0;
  uint64_t TotalAllocations = 0;
  uint64_t TotalFrees = 0;
  uint64_t TotalMoves = 0;
  uint64_t TotalSessions = 0;
  uint64_t TotalFlushes = 0;
  uint64_t TotalOpsApplied = 0;
  /// Percentiles (nearest-rank) of per-arena *peak* external
  /// fragmentation — the endpoint measure is degenerate after a drain.
  double P50Fragmentation = 0.0;
  double P99Fragmentation = 0.0;
  /// Nearest-rank p99 of per-arena footprint, in words.
  uint64_t P99FootprintWords = 0;
  /// Mean of the arenas' flush-boundary mean utilizations.
  double MeanUtilization = 0.0;
  /// Fleet compaction budget: sum of per-arena floor(s/c) (0 when every
  /// manager is unlimited) and the burn fraction spent of it.
  uint64_t BudgetAllowedWords = 0;
  double BudgetBurn = 0.0;

  std::vector<FleetViolation> Violations;

  /// Epoch-aligned sum of the per-arena timelines (see ServiceFleet).
  Timeline FleetTimeline;

  /// Per-arena rows beyond this many are elided from the text table
  /// (the totals still cover every arena).
  unsigned ArenaRowLimit = 32;

  bool clean() const { return Violations.empty(); }

  /// Renders the aligned text report.
  void printText(std::ostream &OS) const;
  /// Renders the report as one JSON object (stable key order).
  void printJson(std::ostream &OS) const;
  /// Writes JSON when \p Path ends in ".json", text otherwise. Returns
  /// false and fills \p Error on open or write failure.
  bool writeFile(const std::string &Path, std::string *Error = nullptr) const;
};

/// Nearest-rank percentile of \p Values (copied, then sorted): the
/// smallest element at or above the \p Pct fraction of the distribution.
/// Returns 0 on an empty vector. Exposed for the service tests.
double percentileNearestRank(std::vector<double> Values, double Pct);

} // namespace pcb

#endif // PCBOUND_SERVICE_FLEETREPORT_H
