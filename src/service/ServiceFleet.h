//===- service/ServiceFleet.h - Work-stealing fleet scheduler ---*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer's top: N shared-nothing ArenaShards multiplexed onto
/// W worker threads by a work-stealing scheduler, plus the assembly of
/// the deterministic FleetReport from the drained shards.
///
/// \par Scheduling
/// Each worker owns a mutex-protected deque of arenas. A worker pops its
/// own front; when empty it steals from a victim's back (classic
/// Arora-Blumofe-Plumbeck shape, locked rather than lock-free — arena
/// slices are thousands of operations, so the lock is noise). An arena
/// lives in exactly one deque or is held by exactly one worker, so shard
/// state needs no synchronization at all. Workers run one slice
/// (SliceFlushes flushes) per acquisition and re-queue undrained arenas
/// locally; termination is an atomic count of drained arenas.
///
/// \par Determinism
/// A shard's execution is a pure function of its configuration (see
/// ArenaShard.h), and slices commute with shard state, so the drained
/// fleet — and hence report() — is byte-identical for every thread count,
/// steal pattern, and slice size. Only wall-clock, steal and slice
/// counts, and Profiler timings vary; those are exposed separately and
/// printed to stderr by the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SERVICE_SERVICEFLEET_H
#define PCBOUND_SERVICE_SERVICEFLEET_H

#include "service/ArenaShard.h"
#include "service/FleetReport.h"

#include <functional>
#include <memory>
#include <vector>

namespace pcb {

class Profiler;

/// Configuration of one fleet run.
struct FleetOptions {
  /// Number of arena shards.
  unsigned NumArenas = 4;
  /// Total sessions, striped round-robin over arenas (session GlobalId g
  /// is served by arena g % NumArenas).
  uint64_t NumSessions = 1024;
  /// Worker threads; 0 means hardware concurrency. Clamped to
  /// [1, NumArenas] — more workers than arenas can never help.
  unsigned Threads = 0;
  /// Flushes per scheduler quantum (ArenaShard::runSlice bound).
  uint64_t SliceFlushes = 32;
  /// Per-shard configuration (policy, c, session shape, batching, audit).
  ShardConfig Shard;
  /// When set, every worker profiles into a private Profiler and the
  /// results are merged here after the join.
  Profiler *Prof = nullptr;
  /// Fault-injection port: forwarded to the named arena's shard as its
  /// EventTap (other arenas get none). Only meaningful with Shard.Audit.
  std::function<bool(unsigned Arena, HeapEvent &)> ArenaTap;
  /// Forwarded to FleetReport::ArenaRowLimit.
  unsigned ArenaRowLimit = 32;
};

/// Owns the shards, runs the scheduler, assembles the report.
class ServiceFleet {
public:
  /// Builds every shard (throws std::runtime_error on a bad policy).
  explicit ServiceFleet(const FleetOptions &Opts);

  ServiceFleet(const ServiceFleet &) = delete;
  ServiceFleet &operator=(const ServiceFleet &) = delete;

  /// Drains every arena. Runs single-threaded inline when one worker
  /// suffices, otherwise spawns workers. Rethrows the first worker
  /// exception after joining. Call once.
  void run();

  /// The deterministic fleet report; valid after run().
  FleetReport report() const;

  unsigned numArenas() const { return unsigned(Shards.size()); }
  ArenaShard &shard(unsigned A) { return *Shards[A]; }
  const ArenaShard &shard(unsigned A) const { return *Shards[A]; }

  /// Scheduler observability (nondeterministic; stderr only).
  uint64_t steals() const { return NumSteals; }
  uint64_t slices() const { return NumSlices; }
  double wallSeconds() const { return WallSecs; }
  /// Workers the last run() used (after the 0 = hardware and
  /// [1, NumArenas] clamps).
  unsigned threads() const { return UsedThreads; }

private:
  FleetOptions Opts;
  std::vector<std::unique_ptr<ArenaShard>> Shards;
  uint64_t NumSteals = 0;
  uint64_t NumSlices = 0;
  double WallSecs = 0.0;
  unsigned UsedThreads = 0;
};

} // namespace pcb

#endif // PCBOUND_SERVICE_SERVICEFLEET_H
