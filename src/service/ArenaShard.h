//===- service/ArenaShard.h - One shared-nothing fleet shard ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One arena of the fleet: a private Heap / MemoryManager /
/// CompactionLedger stack (the Compact-fit per-thread-arena model), a
/// batched allocate/free request queue, and the session multiplexer that
/// drives both. Shards are shared-nothing — no two shards reference any
/// common mutable state — so the scheduler may hand a shard to any worker
/// thread at any time, provided at most one thread runs it at once.
///
/// \par Execution model
/// Sessions assigned to the shard are admitted in global-id order into at
/// most MaxResident resident slots; resident sessions submit their next
/// operation round-robin into the arena's request queue, and the queue is
/// applied to the manager ("flushed") whenever it reaches BatchSize
/// requests — or earlier, when every resident operation is already queued
/// (starvation flush) or the arena drains. A session retires the moment
/// its last queued request is applied, which frees its slot for the next
/// admission after the flush completes.
///
/// \par Determinism
/// Everything above is a pure function of (shard config, session ids):
/// admission order, round-robin turns, batch boundaries, and therefore
/// every placement decision the manager makes. runSlice() only bounds how
/// much of that fixed schedule executes per call, so slicing — and hence
/// work-stealing — cannot change any observable outcome.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SERVICE_ARENASHARD_H
#define PCBOUND_SERVICE_ARENASHARD_H

#include "driver/EventLog.h"
#include "fuzz/InvariantOracle.h"
#include "mm/MemoryManager.h"
#include "obs/Timeline.h"
#include "service/SessionWorkload.h"
#include "trace/BudgetController.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pcb {

/// Configuration shared by every shard of a fleet.
struct ShardConfig {
  /// Manager policy each arena runs (any ManagerFactory name).
  std::string Policy = "evacuating";
  /// Compaction quota denominator handed to every arena's manager.
  double C = 50.0;
  /// Budget controller gating each arena's compaction spend. Every shard
  /// builds a private controller from this spec and observes it at flush
  /// granularity (Step = flush ordinal) — still a pure function of the
  /// shard config, so the fleet determinism contract is untouched. The
  /// default fixed trigger is byte-identical to an ungated arena.
  ControllerSpec Controller;
  /// Session shape (seed, ops, live bound, size cap).
  SessionParams Session;
  /// Requests applied per flush of the arena queue. 1 applies every
  /// request immediately; a value above the resident ops supply degrades
  /// to starvation flushes.
  uint64_t BatchSize = 16;
  /// Sessions multiplexed concurrently per arena.
  uint64_t MaxResident = 8;
  /// Record a timeline point every this-many retired sessions (plus an
  /// endpoint at drain); 0 disables per-arena timelines.
  uint64_t SampleEverySessions = 64;
  /// Record the event stream and run the fuzzer's InvariantOracle at
  /// every flush. Off by default: a million-session fleet's event log
  /// would dominate memory; tests and smoke runs turn it on.
  bool Audit = false;
  /// Oracle deep-check cadence, in flushes (with Audit).
  uint64_t DeepCheckEvery = 16;
  /// Cap on violations collected per arena.
  size_t MaxViolations = 16;
};

/// One shared-nothing arena shard; see the file comment for semantics.
class ArenaShard {
public:
  /// Fault-injection port (the fuzzer's LogTap contract): invoked for
  /// every heap event before it is recorded, may mutate the event,
  /// returns false to drop it. Only meaningful with Cfg.Audit.
  using EventTap = std::function<bool(HeapEvent &)>;

  /// Builds the shard for arena \p ArenaId serving \p NumSessions
  /// sessions whose global ids are FirstGlobalId + k * GlobalStride
  /// (round-robin striping over the fleet). Throws std::runtime_error on
  /// an unknown policy.
  ArenaShard(unsigned ArenaId, uint64_t NumSessions, uint64_t FirstGlobalId,
             uint64_t GlobalStride, const ShardConfig &Cfg,
             EventTap Tap = nullptr);

  ArenaShard(const ArenaShard &) = delete;
  ArenaShard &operator=(const ArenaShard &) = delete;

  /// Runs up to \p MaxFlushes flushes of the arena queue (a scheduler
  /// quantum). Returns true when the arena has drained: every session
  /// retired and the queue empty. Not thread-safe; the scheduler
  /// guarantees one runner at a time.
  bool runSlice(uint64_t MaxFlushes);

  bool drained() const {
    return NextToAdmit == NumSessions && NumResident == 0 && Pending.empty();
  }

  unsigned arenaId() const { return Id; }
  uint64_t numSessions() const { return NumSessions; }
  uint64_t sessionsRetired() const { return Retired; }
  uint64_t flushes() const { return NumFlushes; }
  uint64_t opsApplied() const { return OpsApplied; }

  /// Maximum external fragmentation observed at any flush boundary (the
  /// drained endpoint is degenerate — everything freed — so the fleet's
  /// fragmentation percentiles are over these peaks).
  double peakFragmentation() const { return PeakFrag; }
  /// Mean utilization over flush boundaries (0 before the first flush).
  double meanUtilization() const {
    return NumFlushes != 0 ? UtilSum / double(NumFlushes) : 0.0;
  }

  const Heap &heap() const { return H; }
  const MemoryManager &manager() const { return *MM; }
  const BudgetController &controller() const { return *Ctrl; }
  const std::vector<Violation> &violations() const { return Violations; }
  const Timeline &timeline() const { return TL; }
  const EventLog &eventLog() const { return Log; }

private:
  struct Resident {
    bool Active = false;
    uint64_t GlobalId = 0;
    std::vector<TraceOp> Ops;
    size_t Enqueued = 0; ///< ops submitted to the arena queue so far
    size_t Applied = 0;  ///< ops the flusher has executed so far
    std::vector<ObjectId> AllocIds; ///< by per-session allocation ordinal
  };
  struct Request {
    uint32_t Slot;
    TraceOp Op;
  };

  /// Admits sessions (in global order) into free slots.
  void admit();
  /// Fills the request queue round-robin up to BatchSize or starvation.
  void fillBatch();
  /// Applies every pending request in order; retires finished sessions.
  void flush();
  /// Records a point when the retirement count hits the sample cadence.
  void sampleTimeline();
  /// Unconditionally appends the current heap state to the timeline.
  void recordTimelinePoint();

  unsigned Id;
  uint64_t NumSessions;
  uint64_t FirstGlobalId;
  uint64_t GlobalStride;
  ShardConfig Cfg;
  EventTap Tap;

  Heap H;
  std::unique_ptr<MemoryManager> MM;
  std::unique_ptr<BudgetController> Ctrl;
  EventLog Log;
  std::unique_ptr<InvariantOracle> Oracle;
  std::vector<Violation> Violations;
  Timeline TL;

  std::vector<Resident> Slots;
  std::vector<Request> Pending;
  uint64_t NextToAdmit = 0; ///< local session index, in [0, NumSessions]
  uint64_t NumResident = 0;
  size_t Cursor = 0; ///< round-robin position over Slots
  uint64_t Retired = 0;
  uint64_t NumFlushes = 0;
  uint64_t OpsApplied = 0;
  double PeakFrag = 0.0;
  double UtilSum = 0.0;
  bool FinalCheckDone = false;
};

} // namespace pcb

#endif // PCBOUND_SERVICE_ARENASHARD_H
