//===- service/FleetReport.cpp - Aggregate fleet telemetry ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/FleetReport.h"

#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace pcb;

double pcb::percentileNearestRank(std::vector<double> Values, double Pct) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  double Rank = std::ceil(Pct * double(Values.size()));
  size_t Index = Rank < 1.0 ? 0 : size_t(Rank) - 1;
  if (Index >= Values.size())
    Index = Values.size() - 1;
  return Values[Index];
}

void FleetReport::printText(std::ostream &OS) const {
  OS << "# fleet: " << NumArenas << " arenas x " << NumSessions
     << " sessions (policy=" << Policy << ", c=" << formatDouble(C, 0)
     << ", batch=" << BatchSize << ", resident=" << MaxResident
     << ", ops=" << SessionOps << ", seed=" << Seed << ")\n";

  Table T({"arena", "sessions", "flushes", "ops", "HS_words", "live",
           "allocated", "moved", "peak_frag", "mean_util", "burn_%",
           "viol"});
  size_t Shown = std::min<size_t>(Arenas.size(), ArenaRowLimit);
  for (size_t I = 0; I != Shown; ++I) {
    const ArenaSummary &A = Arenas[I];
    T.beginRow();
    T.addCell(uint64_t(A.ArenaId));
    T.addCell(A.Sessions);
    T.addCell(A.Flushes);
    T.addCell(A.OpsApplied);
    T.addCell(A.Stats.HighWaterMark);
    T.addCell(A.Stats.LiveWords);
    T.addCell(A.Stats.TotalAllocatedWords);
    T.addCell(A.Stats.MovedWords);
    T.addCell(A.PeakFragmentation, 3);
    T.addCell(A.MeanUtilization, 3);
    T.addCell(100.0 * A.BudgetBurn, 1);
    T.addCell(uint64_t(A.NumViolations));
  }
  T.printAligned(OS);
  if (Arenas.size() > Shown)
    OS << "# ... " << (Arenas.size() - Shown) << " more arenas elided"
       << " (totals below cover all " << Arenas.size() << ")\n";

  OS << "# totals: footprint=" << TotalFootprintWords
     << " live=" << TotalLiveWords << " allocated=" << TotalAllocatedWords
     << " moved=" << TotalMovedWords << " words\n"
     << "# sessions retired " << TotalSessions << "/" << NumSessions
     << ", flushes " << TotalFlushes << ", ops " << TotalOpsApplied << " ("
     << TotalAllocations << " allocs, " << TotalFrees << " frees, "
     << TotalMoves << " moves)\n"
     << "# fragmentation p50=" << formatDouble(P50Fragmentation, 3)
     << " p99=" << formatDouble(P99Fragmentation, 3)
     << ", p99 footprint=" << P99FootprintWords
     << " words, mean utilization=" << formatDouble(MeanUtilization, 3)
     << "\n"
     << "# compaction budget: allowed=" << BudgetAllowedWords
     << " words, spent=" << TotalMovedWords << " (burn "
     << formatDouble(100.0 * BudgetBurn, 1) << "%)\n"
     << "# violations: " << Violations.size() << "\n";
  for (const FleetViolation &FV : Violations)
    OS << "# violation[arena " << FV.ArenaId << "]: " << FV.V.describe()
       << "\n";
}

void FleetReport::printJson(std::ostream &OS) const {
  OS << "{\n"
     << "  \"fleet\": {\"arenas\": " << NumArenas << ", \"sessions\": "
     << NumSessions << ", \"policy\": \"" << Policy << "\", \"c\": "
     << formatDouble(C, 1) << ", \"batch\": " << BatchSize
     << ", \"resident\": " << MaxResident << ", \"ops\": " << SessionOps
     << ", \"seed\": " << Seed << "},\n"
     << "  \"arenas\": [";
  for (size_t I = 0; I != Arenas.size(); ++I) {
    const ArenaSummary &A = Arenas[I];
    OS << (I ? ", " : "") << "{\"arena\": " << A.ArenaId
       << ", \"sessions\": " << A.Sessions << ", \"flushes\": " << A.Flushes
       << ", \"ops\": " << A.OpsApplied << ", \"hs_words\": "
       << A.Stats.HighWaterMark << ", \"live_words\": " << A.Stats.LiveWords
       << ", \"allocated_words\": " << A.Stats.TotalAllocatedWords
       << ", \"moved_words\": " << A.Stats.MovedWords
       << ", \"peak_fragmentation\": " << formatDouble(A.PeakFragmentation, 3)
       << ", \"mean_utilization\": " << formatDouble(A.MeanUtilization, 3)
       << ", \"budget_burn\": " << formatDouble(A.BudgetBurn, 3)
       << ", \"violations\": " << A.NumViolations << "}";
  }
  OS << "],\n"
     << "  \"totals\": {\"footprint_words\": " << TotalFootprintWords
     << ", \"live_words\": " << TotalLiveWords << ", \"allocated_words\": "
     << TotalAllocatedWords << ", \"moved_words\": " << TotalMovedWords
     << ", \"sessions\": " << TotalSessions << ", \"flushes\": "
     << TotalFlushes << ", \"ops\": " << TotalOpsApplied
     << ", \"allocations\": " << TotalAllocations << ", \"frees\": "
     << TotalFrees << ", \"moves\": " << TotalMoves << "},\n"
     << "  \"fragmentation\": {\"p50\": " << formatDouble(P50Fragmentation, 3)
     << ", \"p99\": " << formatDouble(P99Fragmentation, 3)
     << ", \"p99_footprint_words\": " << P99FootprintWords
     << ", \"mean_utilization\": " << formatDouble(MeanUtilization, 3)
     << "},\n"
     << "  \"budget\": {\"allowed_words\": " << BudgetAllowedWords
     << ", \"spent_words\": " << TotalMovedWords << ", \"burn\": "
     << formatDouble(BudgetBurn, 3) << "},\n"
     << "  \"violations\": [";
  for (size_t I = 0; I != Violations.size(); ++I) {
    const FleetViolation &FV = Violations[I];
    // describe() is free-form prose; escape the characters JSON cares
    // about so a diagnostic can never corrupt the report.
    std::string Detail = FV.V.describe();
    std::string Escaped;
    Escaped.reserve(Detail.size());
    for (char Ch : Detail) {
      if (Ch == '"' || Ch == '\\')
        Escaped.push_back('\\');
      if (Ch == '\n') {
        Escaped += "\\n";
        continue;
      }
      Escaped.push_back(Ch);
    }
    OS << (I ? ", " : "") << "{\"arena\": " << FV.ArenaId << ", \"check\": \""
       << FV.V.Check << "\", \"step\": " << FV.V.Step << ", \"detail\": \""
       << Escaped << "\"}";
  }
  OS << "]\n}\n";
}

bool FleetReport::writeFile(const std::string &Path,
                            std::string *Error) const {
  std::ofstream OS(Path);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Json = Path.size() >= 5 && Path.rfind(".json") == Path.size() - 5;
  if (Json)
    printJson(OS);
  else
    printText(OS);
  OS.flush();
  if (!OS) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}
