//===- heap/Metrics.h - Fragmentation metrics -------------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-in-time fragmentation metrics of a heap: how much of the
/// footprint is live, how the free space below the high-water mark is
/// shattered, and the classic external-fragmentation ratio
/// (1 - largest free block / total free space). The examples and the E6
/// bench use these to show *why* a footprint grew, not only that it did.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_METRICS_H
#define PCBOUND_HEAP_METRICS_H

#include "heap/Heap.h"

#include <cstdint>

namespace pcb {

/// A snapshot of fragmentation state, all relative to the high-water
/// mark (the heap the manager has committed to). An empty heap (no word
/// ever used) measures as all zeros, including Utilization: there is no
/// footprint to utilize, and defining 0/0 as zero keeps time-series
/// plots starting from the origin instead of a phantom full heap.
struct FragmentationMetrics {
  uint64_t FootprintWords = 0;      ///< the high-water mark
  uint64_t LiveWords = 0;           ///< currently allocated
  uint64_t FreeWords = 0;           ///< free words below the mark
  uint64_t FreeBlocks = 0;          ///< maximal free runs below the mark
  uint64_t LargestFreeBlock = 0;    ///< largest free run below the mark
  double Utilization = 0.0;         ///< live / footprint (0 when empty)
  double ExternalFragmentation = 0; ///< 1 - largest / free
};

/// Measures \p H now. O(log free blocks): the free words below the mark
/// are the complement of the live words, and the block count / largest
/// block come from FreeSpaceIndex aggregate queries, so sampling a
/// timeline every step does not re-scan the heap.
FragmentationMetrics measureFragmentation(const Heap &H);

} // namespace pcb

#endif // PCBOUND_HEAP_METRICS_H
