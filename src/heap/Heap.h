//===- heap/Heap.h - The simulated word-addressed heap ----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for heap state: the object table, the free
/// space, and the footprint accounting. Memory managers are policies on
/// top of this model; they decide *where* to place or move objects, the
/// Heap validates and records it.
///
/// Address-ordered lookups run on a packed object-start bitboard (bit i
/// set iff a live object starts at address i) paired with a flat
/// address -> id table, replacing the former std::map over live objects.
/// Occupancy itself is not duplicated: the FreeSpaceIndex's occupancy
/// board is the one copy, and Heap's mask/bitboard queries read it
/// directly, so the object table and the free space cannot disagree about
/// which words are used. Starts beyond the dense board's ceiling (a cold
/// path for address-space-boundary placements) fall back to a small
/// sorted map.
///
/// Footprint semantics follow the paper: the heap is the smallest
/// consecutive address prefix the manager ever touches, so the heap size
/// HS(A, P) is the historical maximum of (highest used address + 1). Once
/// a word has been used it counts forever (Section 4: "the chunk that it
/// did occupy will remain part of the heap forever").
///
/// \par Thread compatibility
/// Heap is thread-compatible: it has no global or static mutable state,
/// so distinct instances may be used concurrently from distinct threads
/// with no synchronization (the experiment runner in src/runner/ gives
/// every grid cell its own Heap). A single instance must not be shared
/// across threads without external locking.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_HEAP_H
#define PCBOUND_HEAP_HEAP_H

#include "heap/FreeSpaceIndex.h"
#include "heap/HeapEvent.h"
#include "heap/HeapTypes.h"
#include "heap/PackedBitmap.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace pcb {

/// Aggregate statistics the heap maintains as the execution proceeds.
struct HeapStats {
  /// Historical maximum of (highest used address + 1) — HS(A, P).
  uint64_t HighWaterMark = 0;
  /// Total words ever allocated (the paper's "s", which funds the
  /// compaction budget s/c).
  uint64_t TotalAllocatedWords = 0;
  /// Total words moved by compaction so far (the paper's "q").
  uint64_t MovedWords = 0;
  /// Currently live words.
  uint64_t LiveWords = 0;
  /// Maximum of LiveWords over time.
  uint64_t PeakLiveWords = 0;
  /// Counts of events.
  uint64_t NumAllocations = 0;
  uint64_t NumFrees = 0;
  uint64_t NumMoves = 0;
};

/// The simulated heap: object table + free-space index + statistics.
class Heap {
public:
  Heap() = default;
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Places a new object of \p Size words at \p Address. The target range
  /// must be free (asserted). Returns the new object's id.
  ObjectId place(Addr Address, uint64_t Size);

  /// Frees a live object.
  void free(ObjectId Id);

  /// Moves a live object to \p NewAddress (target must be free and must
  /// not overlap the object's current placement). Counts toward
  /// MovedWords. The caller (memory manager) is responsible for having
  /// charged its compaction budget.
  void move(ObjectId Id, Addr NewAddress);

  /// The object with id \p Id (live or freed).
  const Object &object(ObjectId Id) const {
    assert(Id < Objects.size() && "object id out of range");
    return Objects[Id];
  }

  /// True if \p Id denotes a live object.
  bool isLive(ObjectId Id) const {
    return Id < Objects.size() && Objects[Id].isLive();
  }

  /// Number of object slots ever created (ids are dense in [0, size)).
  size_t numObjects() const { return Objects.size(); }

  /// Placement queries over the free space.
  const FreeSpaceIndex &freeSpace() const { return Free; }

  /// Live words occupying [Start, Start + Size). Inline: the compactors
  /// call this once per candidate chunk scan.
  uint64_t usedWordsIn(Addr Start, uint64_t Size) const {
    assert(Size != 0 && "empty query range");
    return Size - Free.freeWordsIn(Start, Start + Size);
  }

  /// True if [Start, Start + Size) contains no live object words.
  bool isFree(Addr Start, uint64_t Size) const {
    return Free.isFree(Start, Size);
  }

  const HeapStats &stats() const { return Stats; }

  /// Installs an observer invoked after every place/free/move. Pass an
  /// empty function to detach. The observer must not mutate the heap.
  void setEventCallback(std::function<void(const HeapEvent &)> Callback) {
    OnEvent = std::move(Callback);
  }

  /// Full structural self-check: live objects are disjoint, the free
  /// index is exactly their complement, the start-bit index agrees, and
  /// the statistics match a recount. O(objects + free blocks); meant
  /// for tests and the fuzzing oracle. When \p Why is non-null and the
  /// check fails, it receives a one-line diagnosis of the first
  /// inconsistency found.
  bool checkConsistency(std::string *Why = nullptr) const;

  /// Ids of all live objects, in address order. O(live objects).
  std::vector<ObjectId> liveObjects() const;

  /// Occupancy bitboard of the first \p Count (<= 64) words: bit i is set
  /// iff address i is covered by a live object. Canonicalization hook for
  /// the exact game solver (src/exact/), whose states are exactly such
  /// boards. For wider prefixes use occupancyWords.
  uint64_t occupancyMask(unsigned Count) const;

  /// Companion bitboard: bit i is set iff a live object starts at
  /// address i. Together with occupancyMask this determines the heap
  /// prefix's layout up to object identity.
  uint64_t objectStartMask(unsigned Count) const;

  /// Span generalization of occupancyMask: copies the occupancy of
  /// [Start, Start + 64 * Count) into \p Out as packed words (Out[i]
  /// bit j = address Start + 64 * i + j). O(Count + log objects); the
  /// exact solver's witness replays cross-check arbitrary arena widths
  /// through this.
  void occupancyWords(Addr Start, size_t Count, uint64_t *Out) const;

  /// Span generalization of objectStartMask, same layout as
  /// occupancyWords.
  void objectStartWords(Addr Start, size_t Count, uint64_t *Out) const;

  /// True if the occupancy of [A, A + Size) and [B, B + Size) never uses
  /// the same offset: for every i < Size, at most one of A + i and B + i
  /// is covered by a live object. This is the meshing probe — for
  /// 64-aligned ranges it is a word-AND per 64 addresses straight off the
  /// occupancy board, no per-cell work.
  bool occupancyDisjoint(Addr A, Addr B, uint64_t Size) const;

  /// Ids of live objects intersecting [Start, Start + Size), in address
  /// order. O(log live + matches).
  std::vector<ObjectId> liveObjectsIn(Addr Start, uint64_t Size) const;

  /// Id of the lowest-addressed live object starting at or above \p A, or
  /// InvalidObjectId when none exists. O(words scanned); lets compactors
  /// walk the heap in address order without snapshotting the whole live
  /// set.
  ObjectId firstLiveAt(Addr A) const;

private:
  /// Dense start-board ceiling: objects starting at or above it live in
  /// the sorted fallback map.
  static constexpr uint64_t DenseLimit = uint64_t(1) << 24;

  /// Records/erases the start bit (dense board or fallback map).
  void noteStart(Addr Address, ObjectId Id);
  void forgetStart(Addr Address);

  /// Id of the live object starting at \p Address (which must carry a
  /// start bit / map entry).
  ObjectId idStartingAt(Addr Address) const;

  /// Start address of the last live object starting strictly below
  /// \p Limit, or InvalidAddr.
  Addr lastStartBefore(Addr Limit) const;

  std::vector<Object> Objects;
  FreeSpaceIndex Free;
  /// Live object starts below DenseLimit: bit A set iff a live object
  /// starts at A, with IdAt[A] naming it (IdAt is meaningful only under
  /// set bits).
  PackedBitmap StartBits;
  std::vector<ObjectId> IdAt;
  /// Live objects starting at or above DenseLimit, ordered by address.
  std::map<Addr, ObjectId> HighObjects;
  HeapStats Stats;
  std::function<void(const HeapEvent &)> OnEvent;
};

} // namespace pcb

#endif // PCBOUND_HEAP_HEAP_H
