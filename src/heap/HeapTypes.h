//===- heap/HeapTypes.h - Core heap model types -----------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic types of the simulated heap. The heap is a flat, word-addressed
/// space; objects are contiguous runs of words identified by a small
/// integer id that survives moves (the paper's model lets the program know
/// object addresses, so both the id and the current address are exposed).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_HEAPTYPES_H
#define PCBOUND_HEAP_HEAPTYPES_H

#include <cstdint>
#include <limits>

namespace pcb {

/// A word address in the simulated heap.
using Addr = uint64_t;

/// Identifies an allocated object for its whole lifetime, across moves.
using ObjectId = uint32_t;

/// Sentinel for "no object".
inline constexpr ObjectId InvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// Sentinel for "no address" (the heap model never hands out addresses
/// this high; the address space is capped well below).
inline constexpr Addr InvalidAddr = std::numeric_limits<Addr>::max();

/// Upper limit of the simulated address space. Managers may place objects
/// anywhere below this; the footprint (high-water mark) is what counts.
inline constexpr Addr AddrLimit = uint64_t(1) << 60;

/// Lifecycle of an object slot in the ObjectTable.
enum class ObjectState : uint8_t {
  Live,  ///< Allocated and not yet freed.
  Freed, ///< De-allocated; the slot is retained for id stability.
};

/// One object: a contiguous [Address, Address + Size) run of words.
struct Object {
  Addr Address = InvalidAddr;
  uint64_t Size = 0;
  ObjectState State = ObjectState::Freed;

  bool isLive() const { return State == ObjectState::Live; }
  Addr end() const { return Address + Size; }
};

} // namespace pcb

#endif // PCBOUND_HEAP_HEAPTYPES_H
