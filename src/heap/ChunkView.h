//===- heap/ChunkView.h - Aligned power-of-two chunk partitions -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analysis partitions the heap into aligned chunks of size
/// 2^i words — the partition D(i). This header provides the pure address
/// arithmetic of those partitions: which chunk contains a word, which
/// chunks an object's placement covers fully or touches, and the
/// f-occupying test used by Robson's and Cohen-Petrank's adversaries
/// (Definition 4.2: an object is f-occupying w.r.t. step i if it occupies
/// a word at address k * 2^i + f for some integer k).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_CHUNKVIEW_H
#define PCBOUND_HEAP_CHUNKVIEW_H

#include "heap/HeapTypes.h"
#include "support/MathUtils.h"

#include <cstdint>

namespace pcb {

/// Address arithmetic for the partition D(LogSize) of the heap into
/// aligned chunks of 2^LogSize words. Chunks are identified by their
/// index: chunk K spans [K * 2^LogSize, (K + 1) * 2^LogSize).
class ChunkView {
public:
  explicit ChunkView(unsigned LogSize) : LogSize(LogSize) {
    assert(LogSize < 63 && "chunk size out of range");
  }

  unsigned logSize() const { return LogSize; }
  uint64_t chunkSize() const { return pow2(LogSize); }

  /// Index of the chunk containing address \p A.
  uint64_t indexOf(Addr A) const { return A >> LogSize; }

  /// First address of chunk \p Index.
  Addr startOf(uint64_t Index) const { return Index << LogSize; }

  /// One past the last address of chunk \p Index.
  Addr endOf(uint64_t Index) const { return (Index + 1) << LogSize; }

  /// Index of the first chunk *fully covered* by [Start, Start + Size),
  /// via firstFull/lastFull: the covered range is [firstFull, lastFull].
  /// When no chunk is fully covered, firstFull > lastFull.
  uint64_t firstFullIndex(Addr Start, uint64_t Size) const {
    (void)Size;
    return (Start + chunkSize() - 1) >> LogSize;
  }
  uint64_t lastFullIndex(Addr Start, uint64_t Size) const {
    Addr End = Start + Size;
    return (End >> LogSize) - 1; // chunk ending at or before End
  }

  /// Number of chunks fully covered by [Start, Start + Size).
  uint64_t numFullChunks(Addr Start, uint64_t Size) const {
    uint64_t First = firstFullIndex(Start, Size);
    uint64_t Last = lastFullIndex(Start, Size);
    return Last + 1 > First ? Last + 1 - First : 0;
  }

  /// Index of the first/last chunk *touched* by [Start, Start + Size).
  uint64_t firstTouchedIndex(Addr Start) const { return indexOf(Start); }
  uint64_t lastTouchedIndex(Addr Start, uint64_t Size) const {
    return indexOf(Start + Size - 1);
  }

  /// Definition 4.2: does the object at [Start, Start + Size) occupy some
  /// word at address k * 2^LogSize + Offset?
  bool isOccupying(Addr Start, uint64_t Size, uint64_t Offset) const {
    assert(Offset < chunkSize() && "offset outside the chunk");
    // The first address >= Start congruent to Offset is
    // Start + ((Offset - Start) mod 2^LogSize); the object occupies it
    // iff that distance is below Size.
    uint64_t Distance = (Offset - Start) & (chunkSize() - 1);
    return Distance < Size;
  }

private:
  unsigned LogSize;
};

} // namespace pcb

#endif // PCBOUND_HEAP_CHUNKVIEW_H
