//===- heap/PackedBitmap.h - Growable packed bit vector ---------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, growable bitmap over the committed address prefix: bit i of
/// word i/64 is address i (low bit = low address). This is the storage
/// layer of the bitboard heap substrate — FreeSpaceIndex keeps the
/// occupancy board here and Heap keeps the object-start board. The bitmap
/// covers only the prefix the simulation has touched; addresses at or
/// above sizeBits() are implicitly zero (the callers own that
/// convention: for occupancy, "zero" means free, which is exactly the
/// model's infinite tail).
///
/// Range mutators assert the prior state of every bit they flip, so a
/// double-reserve or double-release is caught at the word level with the
/// same diagnostics the interval structures used to raise.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_PACKEDBITMAP_H
#define PCBOUND_HEAP_PACKEDBITMAP_H

#include "support/BitOps.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace pcb {

class PackedBitmap {
public:
  /// Sentinel for "no such bit".
  static constexpr uint64_t NoBit = ~uint64_t(0);

  uint64_t sizeBits() const { return uint64_t(W.size()) * WordBits; }
  size_t sizeWords() const { return W.size(); }
  const uint64_t *words() const { return W.data(); }
  uint64_t word(size_t I) const { return W[I]; }

  /// Grows the committed prefix to at least \p Words words (zero-filled);
  /// never shrinks.
  void growWords(size_t Words) {
    if (Words > W.size())
      W.resize(Words, 0);
  }

  /// Bit \p I, which must be committed.
  bool test(uint64_t I) const {
    assert(I < sizeBits() && "bit beyond the committed prefix");
    return (W[I / WordBits] >> (I % WordBits)) & 1;
  }

  /// Bit \p I, reading uncommitted bits as zero.
  bool testZeroExtended(uint64_t I) const {
    return I < sizeBits() && test(I);
  }

  void set(uint64_t I) {
    assert(I < sizeBits() && "bit beyond the committed prefix");
    W[I / WordBits] |= uint64_t(1) << (I % WordBits);
  }

  void clear(uint64_t I) {
    assert(I < sizeBits() && "bit beyond the committed prefix");
    W[I / WordBits] &= ~(uint64_t(1) << (I % WordBits));
  }

  /// True when every bit of [S, E) is zero; bits beyond the committed
  /// prefix read as zero.
  bool rangeClear(uint64_t S, uint64_t E) const {
    assert(S <= E && "inverted range");
    E = clampBits(E);
    if (S >= E)
      return true;
    size_t WS = S / WordBits, WE = (E - 1) / WordBits;
    uint64_t Lo = S % WordBits, Hi = (E - 1) % WordBits + 1;
    if (WS == WE)
      return (W[WS] & bitRange(unsigned(Lo), unsigned(Hi))) == 0;
    if ((W[WS] & ~lowMask(unsigned(Lo))) != 0)
      return false;
    if ((W[WE] & lowMask(unsigned(Hi))) != 0)
      return false;
    return findNonzeroWord(W.data() + WS + 1, WE - WS - 1) == WE - WS - 1;
  }

  /// True when every bit of [S, E) is one. The range must be committed.
  bool rangeSet(uint64_t S, uint64_t E) const {
    assert(S < E && E <= sizeBits() && "range beyond the committed prefix");
    size_t WS = S / WordBits, WE = (E - 1) / WordBits;
    uint64_t Lo = S % WordBits, Hi = (E - 1) % WordBits + 1;
    if (WS == WE) {
      uint64_t M = bitRange(unsigned(Lo), unsigned(Hi));
      return (W[WS] & M) == M;
    }
    if ((~W[WS] & ~lowMask(unsigned(Lo))) != 0)
      return false;
    if ((~W[WE] & lowMask(unsigned(Hi))) != 0)
      return false;
    return findNotOnesWord(W.data() + WS + 1, WE - WS - 1) == WE - WS - 1;
  }

  /// Sets [S, E). The range must be committed and currently clear
  /// (asserted word by word).
  void setRange(uint64_t S, uint64_t E) {
    mutateRange(S, E, /*Set=*/true);
  }

  /// Clears [S, E). The range must be committed and currently set.
  void clearRange(uint64_t S, uint64_t E) {
    mutateRange(S, E, /*Set=*/false);
  }

  /// Number of set bits in [S, E); bits beyond the prefix read as zero.
  uint64_t popcountRange(uint64_t S, uint64_t E) const {
    assert(S <= E && "inverted range");
    E = clampBits(E);
    if (S >= E)
      return 0;
    size_t WS = S / WordBits, WE = (E - 1) / WordBits;
    uint64_t Lo = S % WordBits, Hi = (E - 1) % WordBits + 1;
    if (WS == WE)
      return popcount64(W[WS] & bitRange(unsigned(Lo), unsigned(Hi)));
    uint64_t N = popcount64(W[WS] & ~lowMask(unsigned(Lo)));
    for (size_t I = WS + 1; I != WE; ++I)
      N += popcount64(W[I]);
    return N + popcount64(W[WE] & lowMask(unsigned(Hi)));
  }

  /// First set bit at or after \p From, or NoBit. Bits beyond the prefix
  /// are zero, so the scan stops at sizeBits().
  uint64_t findFirstSet(uint64_t From) const {
    uint64_t Bits = sizeBits();
    if (From >= Bits)
      return NoBit;
    size_t WI = From / WordBits;
    uint64_t Head = W[WI] & ~lowMask(unsigned(From % WordBits));
    if (Head != 0)
      return uint64_t(WI) * WordBits + countTrailingZeros(Head);
    size_t Off = findNonzeroWord(W.data() + WI + 1, W.size() - WI - 1);
    size_t At = WI + 1 + Off;
    if (At == W.size())
      return NoBit;
    return uint64_t(At) * WordBits + countTrailingZeros(W[At]);
  }

  /// First clear bit at or after \p From (bits beyond the prefix are
  /// clear, so this always exists).
  uint64_t findFirstClear(uint64_t From) const {
    uint64_t Bits = sizeBits();
    if (From >= Bits)
      return From;
    size_t WI = From / WordBits;
    uint64_t Head = ~W[WI] & ~lowMask(unsigned(From % WordBits));
    if (Head != 0)
      return uint64_t(WI) * WordBits + countTrailingZeros(Head);
    size_t Off = findNotOnesWord(W.data() + WI + 1, W.size() - WI - 1);
    size_t At = WI + 1 + Off;
    if (At == W.size())
      return Bits;
    return uint64_t(At) * WordBits + countTrailingZeros(~W[At]);
  }

  /// Last set bit strictly below \p Limit, or NoBit.
  uint64_t findLastSetBefore(uint64_t Limit) const {
    uint64_t Bits = sizeBits();
    if (Limit > Bits)
      Limit = Bits;
    if (Limit == 0)
      return NoBit;
    size_t WI = (Limit - 1) / WordBits;
    uint64_t Head = W[WI] & lowMask(unsigned((Limit - 1) % WordBits) + 1);
    for (;;) {
      if (Head != 0)
        return uint64_t(WI) * WordBits + topBitIndex(Head);
      if (WI == 0)
        return NoBit;
      Head = W[--WI];
    }
  }

  /// Copies bits [Start, Start + 64 * Count) into \p Out as packed words
  /// (Out[i] bit j = bit Start + 64 * i + j); bits beyond the committed
  /// prefix read as zero. Arbitrary (non-word-aligned) Start.
  void extract(uint64_t Start, size_t Count, uint64_t *Out) const {
    unsigned Shift = unsigned(Start % WordBits);
    size_t Base = size_t(Start / WordBits);
    for (size_t I = 0; I != Count; ++I) {
      uint64_t Lo = wordOrZero(Base + I);
      if (Shift == 0) {
        Out[I] = Lo;
        continue;
      }
      uint64_t Hi = wordOrZero(Base + I + 1);
      Out[I] = (Lo >> Shift) | (Hi << (WordBits - Shift));
    }
  }

private:
  uint64_t clampBits(uint64_t E) const {
    uint64_t Bits = sizeBits();
    return E < Bits ? E : Bits;
  }

  uint64_t wordOrZero(size_t I) const { return I < W.size() ? W[I] : 0; }

  void mutateRange(uint64_t S, uint64_t E, bool Set) {
    assert(S < E && E <= sizeBits() && "range beyond the committed prefix");
    size_t WS = S / WordBits, WE = (E - 1) / WordBits;
    uint64_t Lo = S % WordBits, Hi = (E - 1) % WordBits + 1;
    if (WS == WE) {
      applyMask(WS, bitRange(unsigned(Lo), unsigned(Hi)), Set);
      return;
    }
    applyMask(WS, ~lowMask(unsigned(Lo)), Set);
    for (size_t I = WS + 1; I != WE; ++I)
      applyMask(I, ~uint64_t(0), Set);
    applyMask(WE, lowMask(unsigned(Hi)), Set);
  }

  void applyMask(size_t WI, uint64_t M, bool Set) {
    if (Set) {
      assert((W[WI] & M) == 0 && "setting bits that are already set");
      W[WI] |= M;
    } else {
      assert((W[WI] & M) == M && "clearing bits that are already clear");
      W[WI] &= ~M;
    }
  }

  std::vector<uint64_t> W;
};

} // namespace pcb

#endif // PCBOUND_HEAP_PACKEDBITMAP_H
