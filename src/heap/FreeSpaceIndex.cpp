//===- heap/FreeSpaceIndex.cpp - Free-space queries over the heap --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Every query is a scan over the occupancy bitboard: free blocks are
// maximal zero runs, assembled on the fly with a carry of "open run
// length" threaded across words and supers. A run is *complete* when a
// used bit terminates it; the scans report complete runs in address
// order, which makes every lowest-address tie-break automatic. Runs
// spanning supers need no word access at all — a super's digest gives
// the exact prefix/suffix free-run lengths, so the chain
// suffix -> (all-free supers) -> prefix reconstructs them arithmetically.
//
//===----------------------------------------------------------------------===//

#include "heap/FreeSpaceIndex.h"

#include "obs/Profiler.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace pcb;

FreeSpaceIndex::FreeSpaceIndex() = default;

unsigned FreeSpaceIndex::classOf(uint64_t Size) {
  assert(Size != 0 && "zero-size block");
  unsigned K = log2Floor(Size);
  return K < NumClasses ? K : NumClasses - 1;
}

//===----------------------------------------------------------------------===//
// Board growth and digests
//===----------------------------------------------------------------------===//

void FreeSpaceIndex::growDense(uint64_t NeedBits) {
  assert(NeedBits <= MaxDenseBits && "dense board beyond its ceiling");
  size_t NeedWords = size_t(alignUp(ceilDiv(NeedBits, WordBits), SuperWords));
  size_t Grown = std::max(NeedWords, Occ.sizeWords() * 2);
  Grown = std::min(Grown, size_t(MaxDenseBits / WordBits));
  Occ.growWords(Grown);
  Super AllFree;
  AllFree.Pre = AllFree.Suf = AllFree.Max = SuperBits;
  AllFree.FreeCount = SuperBits;
  Sum.resize(Occ.sizeWords() / SuperWords, AllFree);
}

namespace {

/// First set occupancy bit in [From, To), or To when none. \p To must be
/// word-aligned and committed; the scan is bounded by To.
uint64_t findSetIn(const PackedBitmap &Occ, uint64_t From, uint64_t To) {
  if (From >= To)
    return To;
  size_t WI = size_t(From / WordBits), W1 = size_t((To - 1) / WordBits);
  uint64_t U = Occ.word(WI) & ~lowMask(unsigned(From % WordBits));
  for (;;) {
    if (U != 0) {
      uint64_t B = uint64_t(WI) * WordBits + countTrailingZeros(U);
      return B < To ? B : To;
    }
    if (WI == W1)
      return To;
    U = Occ.word(++WI);
  }
}

/// Bits i where \p F has ones at every position i .. i + L - 1 (runs of
/// length >= \p L wholly inside the word; the shift chain feeds zeros in
/// from the top, so runs are never counted past bit 63). O(log L).
uint64_t runsGE(uint64_t F, uint64_t L) {
  uint64_t Have = 1;
  while (Have < L && F != 0) {
    uint64_t S = std::min(Have, L - Have);
    F &= F >> unsigned(S);
    Have += S;
  }
  return F;
}

/// Last set occupancy bit in [From, To), or PackedBitmap::NoBit. \p From
/// must be word-aligned and the range committed.
uint64_t findSetBackIn(const PackedBitmap &Occ, uint64_t From, uint64_t To) {
  if (From >= To)
    return PackedBitmap::NoBit;
  size_t W0 = size_t(From / WordBits), WI = size_t((To - 1) / WordBits);
  uint64_t U = Occ.word(WI) & lowMask(unsigned((To - 1) % WordBits) + 1);
  for (;;) {
    if (U != 0)
      return uint64_t(WI) * WordBits + topBitIndex(U);
    if (WI == W0)
      return PackedBitmap::NoBit;
    U = Occ.word(--WI);
  }
}

} // namespace

void FreeSpaceIndex::noteReserve(uint64_t S, uint64_t E) {
  assert(S < E && E <= capBits() && "digest range beyond the board");
  size_t I1 = size_t((E - 1) / SuperBits);
  for (size_t I = size_t(S / SuperBits); I <= I1; ++I) {
    Super &Sp = Sum[I];
    uint64_t B = uint64_t(I) * SuperBits, WEnd = B + SuperBits;
    uint64_t Lo = std::max(S, B), Hi = std::min(E, WEnd);
    Sp.FreeCount = uint16_t(Sp.FreeCount - (Hi - Lo));
    Sp.Pre = std::min(Sp.Pre, uint16_t(Lo - B));
    Sp.Suf = std::min(Sp.Suf, uint16_t(WEnd - Hi));
    // Splitting runs only shrinks them, so the stale Max stays an upper
    // bound until a descent recomputes it.
    Sp.Dirty = true;
  }
}

void FreeSpaceIndex::noteRelease(uint64_t S, uint64_t E) {
  assert(S < E && E <= capBits() && "digest range beyond the board");
  size_t I1 = size_t((E - 1) / SuperBits);
  for (size_t I = size_t(S / SuperBits); I <= I1; ++I) {
    Super &Sp = Sum[I];
    uint64_t B = uint64_t(I) * SuperBits, WEnd = B + SuperBits;
    uint64_t Lo = std::max(S, B), Hi = std::min(E, WEnd);
    Sp.FreeCount = uint16_t(Sp.FreeCount + (Hi - Lo));
    if (Sp.FreeCount == SuperBits) {
      Sp.Pre = Sp.Suf = Sp.Max = uint16_t(SuperBits);
      Sp.Trans = 0;
      Sp.ClassMask = 0;
      Sp.Dirty = false;
      continue;
    }
    // The release merged every adjacent run into one; find its extent
    // within the window (the bits are already cleared).
    uint64_t RHi = findSetIn(Occ, Hi, WEnd);
    uint64_t LU = findSetBackIn(Occ, B, Lo);
    uint64_t RLo = LU == PackedBitmap::NoBit ? B : LU + 1;
    if (RLo == B)
      Sp.Pre = uint16_t(RHi - B);
    if (RHi == WEnd)
      Sp.Suf = uint16_t(WEnd - RLo);
    Sp.Max = std::max(Sp.Max, uint16_t(RHi - RLo));
    Sp.Dirty = true;
  }
}

void FreeSpaceIndex::ensureClean(size_t I) const {
  if (Sum[I].Dirty)
    recomputeSuper(I);
}

void FreeSpaceIndex::recomputeSuper(size_t I) const {
  Super &S = Sum[I];
  const uint64_t *W = Occ.words() + I * SuperWords;
  unsigned Free = 0, MaxRun = 0, Pre = 0, Trans = 0, Run = 0;
  uint64_t CMask = 0;
  bool SeenUsed = false;
  for (unsigned WI = 0; WI != SuperWords; ++WI) {
    const uint64_t U = W[WI];
    Free += WordBits - popcount64(U);
    if (U == 0) {
      Run += WordBits;
      continue;
    }
    // Jump used-run to used-run: one ctz finds the run's first used bit,
    // a second (over the complement) skips past its last.
    unsigned Prev = 0;
    uint64_t Used = U;
    while (Used != 0) {
      unsigned B = countTrailingZeros(Used);
      Run += B - Prev;
      if (Run != 0) {
        if (!SeenUsed) {
          Pre = Run;
        } else {
          // A run with used bits on both sides, wholly interior to the
          // window: its class participates in best-fit pruning.
          CMask |= uint64_t(1) << classOf(Run);
          ++Trans;
        }
        if (Run > MaxRun)
          MaxRun = Run;
        Run = 0;
      }
      SeenUsed = true;
      uint64_t FreeAbove = ~U & ~lowMask(B);
      if (FreeAbove == 0) {
        Prev = WordBits;
        break;
      }
      Prev = countTrailingZeros(FreeAbove);
      Used = U & ~lowMask(Prev);
    }
    Run += WordBits - Prev;
  }
  if (!SeenUsed) {
    S.Pre = S.Suf = S.Max = uint16_t(SuperBits);
    S.Trans = 0;
    S.FreeCount = uint16_t(SuperBits);
    S.ClassMask = 0;
    S.Dirty = false;
    return;
  }
  if (Run != 0) {
    // Suffix run: starts after a used bit (counts as an interior start),
    // but completes in a later super, so it stays out of ClassMask.
    ++Trans;
    if (Run > MaxRun)
      MaxRun = Run;
  }
  S.Pre = uint16_t(Pre);
  S.Suf = uint16_t(Run);
  S.Max = uint16_t(MaxRun);
  S.Trans = uint16_t(Trans);
  S.FreeCount = uint16_t(Free);
  S.ClassMask = CMask;
  S.Dirty = false;
}

//===----------------------------------------------------------------------===//
// The interval map above the dense board
//===----------------------------------------------------------------------===//

bool FreeSpaceIndex::highRangeFree(Addr S, Addr E) const {
  if (HighUsed.empty() || S >= E)
    return true;
  auto It = HighUsed.upper_bound(S);
  if (It != HighUsed.begin() && std::prev(It)->second > S)
    return false;
  return It == HighUsed.end() || It->first >= E;
}

uint64_t FreeSpaceIndex::highUsedWordsIn(Addr S, Addr E) const {
  if (HighUsed.empty() || S >= E)
    return 0;
  uint64_t Used = 0;
  auto It = HighUsed.upper_bound(S);
  if (It != HighUsed.begin())
    --It;
  for (; It != HighUsed.end() && It->first < E; ++It) {
    Addr Lo = std::max(It->first, S), Hi = std::min(It->second, E);
    if (Hi > Lo)
      Used += Hi - Lo;
  }
  return Used;
}

uint64_t FreeSpaceIndex::highOccupancyWord(uint64_t I) const {
  if (HighUsed.empty())
    return 0;
  Addr Base = Addr(I) * WordBits;
  uint64_t Out = 0;
  auto It = HighUsed.upper_bound(Base);
  if (It != HighUsed.begin())
    --It;
  for (; It != HighUsed.end() && It->first < Base + WordBits; ++It) {
    Addr Lo = std::max(It->first, Base);
    Addr Hi = std::min<Addr>(It->second, Base + WordBits);
    if (Hi > Lo)
      Out |= bitRange(unsigned(Lo - Base), unsigned(Hi - Base));
  }
  return Out;
}

void FreeSpaceIndex::highReserve(Addr S, Addr E) {
  assert(highRangeFree(S, E) && "reserve target is not free");
  Addr NS = S, NE = E;
  // Merge touching neighbours so the free gaps between intervals stay
  // nonempty (run enumeration depends on it).
  auto It = HighUsed.upper_bound(S);
  if (It != HighUsed.begin()) {
    auto P = std::prev(It);
    if (P->second == S) {
      NS = P->first;
      HighUsed.erase(P);
    }
  }
  It = HighUsed.find(E);
  if (It != HighUsed.end()) {
    NE = It->second;
    HighUsed.erase(It);
  }
  HighUsed[NS] = NE;
}

void FreeSpaceIndex::highRelease(Addr S, Addr E) {
  auto It = HighUsed.upper_bound(S);
  assert(It != HighUsed.begin() && "releasing a range that is partly free");
  --It;
  Addr IS = It->first, IE = It->second;
  assert(IS <= S && E <= IE && "releasing a range that is partly free");
  HighUsed.erase(It);
  if (IS < S)
    HighUsed[IS] = S;
  if (E < IE)
    HighUsed[E] = IE;
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

void FreeSpaceIndex::reserve(Addr Start, uint64_t Size) {
  ScopedTimer Timer(Profiler::SecFreeReserve);
  assert(Size != 0 && "reserving zero words");
  Addr End = Start + Size;
  // The block-count delta is read off the two flanking bits: consuming a
  // whole block removes one, biting into the middle of one adds one.
  bool LeftFree = Start != 0 && bitFree(Start - 1);
  bool RightFree = End < AddrLimit && bitFree(End);
  if (Start < MaxDenseBits) {
    Addr DenseEnd = std::min<Addr>(End, MaxDenseBits);
    ensureDense(DenseEnd);
    assert(Occ.rangeClear(Start, DenseEnd) && "reserve target is not free");
    Occ.setRange(Start, DenseEnd);
    noteReserve(Start, DenseEnd);
  }
  if (End > MaxDenseBits)
    highReserve(std::max<Addr>(Start, MaxDenseBits), End);
  TotalBlocks += size_t(LeftFree) + size_t(RightFree) - 1;
}

void FreeSpaceIndex::release(Addr Start, uint64_t Size) {
  ScopedTimer Timer(Profiler::SecFreeRelease);
  assert(Size != 0 && "releasing zero words");
  Addr End = Start + Size;
  bool LeftFree = Start != 0 && bitFree(Start - 1);
  bool RightFree = End < AddrLimit && bitFree(End);
  if (Start < MaxDenseBits) {
    Addr DenseEnd = std::min<Addr>(End, MaxDenseBits);
    assert(DenseEnd <= capBits() &&
           "releasing a range that is partly free");
    assert(Occ.rangeSet(Start, DenseEnd) &&
           "releasing a range that is partly free");
    Occ.clearRange(Start, DenseEnd);
    noteRelease(Start, DenseEnd);
  }
  if (End > MaxDenseBits)
    highRelease(std::max<Addr>(Start, MaxDenseBits), End);
  TotalBlocks += 1 - size_t(LeftFree) - size_t(RightFree);
}

//===----------------------------------------------------------------------===//
// The run scan scaffold
//===----------------------------------------------------------------------===//

namespace {

/// Enumerates complete maximal free runs over occupancy words
/// [FromBit, ToBit) (ToBit word-aligned), threading \p Run as the open
/// run length entering the range. Bits below FromBit in its word are
/// treated as used, so reported starts are >= FromBit. Returns true when
/// \p Fn stopped the scan.
template <typename FnT>
bool scanWords(const PackedBitmap &Occ, uint64_t FromBit, uint64_t ToBit,
               uint64_t &Run, FnT &&Fn) {
  size_t W0 = size_t(FromBit / WordBits), W1 = size_t(ToBit / WordBits);
  for (size_t WI = W0; WI != W1; ++WI) {
    uint64_t U = Occ.word(WI);
    if (WI == W0)
      U |= lowMask(unsigned(FromBit % WordBits));
    if (U == 0) {
      Run += WordBits;
      continue;
    }
    uint64_t Base = uint64_t(WI) * WordBits;
    // Jump used-run to used-run (see recomputeSuper): iterations scale
    // with the word's run count, not its popcount.
    unsigned Prev = 0;
    uint64_t Used = U;
    while (Used != 0) {
      unsigned B = countTrailingZeros(Used);
      Run += B - Prev;
      if (Run != 0) {
        if (Fn(Addr(Base + B - Run), Addr(Base + B)))
          return true;
        Run = 0;
      }
      uint64_t FreeAbove = ~U & ~lowMask(B);
      if (FreeAbove == 0) {
        Prev = WordBits;
        break;
      }
      Prev = countTrailingZeros(FreeAbove);
      Used = U & ~lowMask(Prev);
    }
    Run += WordBits - Prev;
  }
  return false;
}

/// First-fit specialization of the word scan over [FromBit, ToBit)
/// (ToBit word-aligned, bits below FromBit treated as used): the lowest
/// block start where \p Size bits fit, or InvalidAddr when the range
/// ends without one (\p Run then carries the trailing open run). Exits
/// as soon as the open run reaches \p Size — the block's start is
/// already determined, its end is irrelevant — and rejects whole words
/// with one shift-AND chain instead of chopping out their runs.
Addr scanFirstFit(const PackedBitmap &Occ, uint64_t FromBit, uint64_t ToBit,
                  uint64_t &Run, uint64_t Size, uint64_t &Probes) {
  size_t W0 = size_t(FromBit / WordBits), W1 = size_t(ToBit / WordBits);
  for (size_t WI = W0; WI != W1; ++WI) {
    uint64_t U = Occ.word(WI);
    if (WI == W0)
      U |= lowMask(unsigned(FromBit % WordBits));
    if (U == 0) {
      Run += WordBits;
      if (Run >= Size)
        return Addr(uint64_t(WI + 1) * WordBits - Run);
      continue;
    }
    uint64_t Base = uint64_t(WI) * WordBits;
    unsigned T = countTrailingZeros(U);
    if (Run + T >= Size)
      return Addr(Base - Run); // the carried run completes here
    uint64_t F = ~U;
    if (Size <= WordBits) {
      // Lowest in-word window of Size free bits; its predecessor bit is
      // necessarily used (else a lower window existed), so it is a block
      // start.
      uint64_t M = runsGE(F, Size);
      if (M != 0)
        return Addr(Base + countTrailingZeros(M));
    }
    // No fit starts in this word: count its completed runs (ends with a
    // free predecessor, plus a carried run cut at bit 0) and carry the
    // free suffix.
    Probes += popcount64(U & (F << 1)) + uint64_t(Run != 0 && T == 0);
    Run = WordBits - 1 - topBitIndex(U);
  }
  return InvalidAddr;
}

} // namespace

template <typename FnT>
bool FreeSpaceIndex::scanSuperFused(size_t I, uint64_t &Run, FnT &&Fn) const {
  Super &Sp = Sum[I];
  const uint64_t Base = uint64_t(I) * SuperBits;
  const uint64_t *W = Occ.words() + I * SuperWords;
  unsigned Free = 0, MaxRun = 0, Pre = 0, Trans = 0;
  uint64_t CMask = 0;
  // LRun is the window-local open run (resets at the window base); Run is
  // the global carry. They differ only until the first used bit, where
  // the local length is the window's prefix.
  uint64_t LRun = 0;
  bool SeenUsed = false, Stopped = false;
  for (unsigned WI = 0; WI != SuperWords; ++WI) {
    const uint64_t U = W[WI];
    Free += WordBits - popcount64(U);
    if (U == 0) {
      Run += WordBits;
      LRun += WordBits;
      continue;
    }
    uint64_t WBase = Base + uint64_t(WI) * WordBits;
    unsigned Prev = 0;
    uint64_t Used = U;
    while (Used != 0) {
      unsigned B = countTrailingZeros(Used);
      Run += B - Prev;
      LRun += B - Prev;
      if (Run != 0) {
        if (!Stopped && Fn(Addr(WBase + B - Run), Addr(WBase + B)))
          Stopped = true;
        if (!SeenUsed) {
          Pre = unsigned(LRun);
        } else {
          CMask |= uint64_t(1) << classOf(LRun);
          ++Trans;
        }
        if (LRun > MaxRun)
          MaxRun = unsigned(LRun);
      }
      Run = 0;
      LRun = 0;
      SeenUsed = true;
      uint64_t FreeAbove = ~U & ~lowMask(B);
      if (FreeAbove == 0) {
        Prev = WordBits;
        break;
      }
      Prev = countTrailingZeros(FreeAbove);
      Used = U & ~lowMask(Prev);
    }
    Run += WordBits - Prev;
    LRun += WordBits - Prev;
  }
  if (!SeenUsed) {
    Sp.Pre = Sp.Suf = Sp.Max = uint16_t(SuperBits);
    Sp.Trans = 0;
    Sp.FreeCount = uint16_t(SuperBits);
    Sp.ClassMask = 0;
    Sp.Dirty = false;
    return Stopped;
  }
  if (LRun != 0) {
    ++Trans;
    if (LRun > MaxRun)
      MaxRun = unsigned(LRun);
  }
  Sp.Pre = uint16_t(Pre);
  Sp.Suf = uint16_t(LRun);
  Sp.Max = uint16_t(MaxRun);
  Sp.Trans = uint16_t(Trans);
  Sp.FreeCount = uint16_t(Free);
  Sp.ClassMask = CMask;
  Sp.Dirty = false;
  return Stopped;
}

Addr FreeSpaceIndex::firstFitInSuper(size_t I, uint64_t &Run, uint64_t Size,
                                     uint64_t &Probes) const {
  // Two passes beat one fused sweep here: most stale descents find their
  // fit (and exit early), so the hit path runs the lean word scan with no
  // digest bookkeeping at all; only the no-fit minority pays the second,
  // digest-banking pass over the same 64 words.
  const uint64_t Base = uint64_t(I) * SuperBits;
  Addr Hit = scanFirstFit(Occ, Base, Base + SuperBits, Run, Size, Probes);
  if (Hit == InvalidAddr)
    recomputeSuper(I);
  return Hit;
}

template <typename DescendT, typename FnT>
FreeSpaceIndex::ScanEnd FreeSpaceIndex::forEachRun(Addr From, Addr StopBase,
                                                   DescendT Descend,
                                                   FnT Fn) const {
  const uint64_t Cap = capBits();
  uint64_t Run = 0;
  if (From < Cap) {
    size_t SI = size_t(From / SuperBits);
    if (From % SuperBits != 0) {
      // Partial first super: word-scan it, then chain from the next one.
      if (scanWords(Occ, From, uint64_t(SI + 1) * SuperBits, Run, Fn))
        return {true, 0, 0, false};
      ++SI;
    }
    const size_t NS = Sum.size();
    size_t StopSI =
        StopBase >= Cap ? NS : size_t(ceilDiv(StopBase, SuperBits));
    if (StopSI > NS)
      StopSI = NS;
    for (size_t I = SI; I != StopSI; ++I) {
      const Super &S = Sum[I];
      uint64_t Base = uint64_t(I) * SuperBits;
      if (S.FreeCount == SuperBits) {
        Run += SuperBits;
        continue;
      }
      if (Descend(I, S, Run)) {
        if (S.Dirty ? scanSuperFused(I, Run, Fn)
                    : scanWords(Occ, Base, Base + SuperBits, Run, Fn))
          return {true, 0, 0, false};
      } else {
        uint64_t L = Run + S.Pre;
        if (L != 0 && Fn(Addr(Base + S.Pre - L), Addr(Base + S.Pre)))
          return {true, 0, 0, false};
        Run = S.Suf;
      }
    }
    if (StopSI != NS)
      return {false, Run, Addr(uint64_t(StopSI) * SuperBits), false};
  } else {
    // Dense board skipped entirely; reconstruct its trailing free run so
    // the tail run start is exact.
    uint64_t Last = Occ.findLastSetBefore(Cap);
    Run = Last == PackedBitmap::NoBit ? Cap : Cap - (Last + 1);
  }
  // Tail: the open run reaches from Cap - Run through the interval map's
  // gaps to AddrLimit. Runs starting below From were already rejected by
  // the caller's straddle pre-check, so they are skipped, not clipped.
  Addr T = Addr(Cap - Run);
  for (const auto &[IS, IE] : HighUsed) {
    if (T < IS && T >= From && Fn(T, IS))
      return {true, 0, 0, true};
    if (IE > T)
      T = IE;
  }
  if (T < AddrLimit && T >= From && Fn(T, AddrLimit))
    return {true, 0, 0, true};
  return {false, 0, AddrLimit, true};
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool FreeSpaceIndex::isFree(Addr Start, uint64_t Size) const {
  assert(Size != 0 && "querying zero words");
  Addr End = Start + Size;
  if (End > AddrLimit)
    return false;
  if (Start < capBits() &&
      !Occ.rangeClear(Start, std::min<Addr>(End, capBits())))
    return false;
  return highRangeFree(Start, End);
}

Addr FreeSpaceIndex::firstFit(uint64_t Size) const {
  return firstFitFrom(0, Size);
}

Addr FreeSpaceIndex::firstFitFrom(Addr From, uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  // A block containing From may serve the request from From onward.
  if (From != 0 && isFree(From, Size))
    return From;
  // This is the hottest query, so it gets a bespoke walk instead of the
  // generic forEachRun: it exits the moment the carried open run reaches
  // Size (the run's start is already the answer; scanning to its end
  // would be wasted work) and judges whole supers from the always-exact
  // Pre digest before considering a descent.
  const uint64_t Cap = capBits();
  uint64_t Run = 0, Probes = 0;
  Addr Found = InvalidAddr;
  if (From < Cap) {
    size_t SI = size_t(From / SuperBits);
    if (From % SuperBits != 0) {
      Found =
          scanFirstFit(Occ, From, uint64_t(SI + 1) * SuperBits, Run, Size,
                       Probes);
      ++SI;
    }
    const size_t NS = Sum.size();
    for (size_t I = SI; Found == InvalidAddr && I != NS; ++I) {
      const Super &S = Sum[I];
      uint64_t Base = uint64_t(I) * SuperBits;
      if (S.FreeCount == SuperBits) {
        Run += SuperBits;
        if (Run >= Size)
          Found = Addr(Base + SuperBits - Run);
        continue;
      }
      if (Run + S.Pre >= Size) { // the carried run completes here
        Found = Addr(Base - Run);
        break;
      }
      if (uint64_t(S.Max) >= Size) {
        // Max is an upper bound while dirty: a stale pass either finds
        // the fit (cheap — the sweep stops right there) or banks a clean
        // digest whose exact Max skips this super until the next
        // mutation. A stale skip cannot happen. Clean supers promise an
        // in-window fit (Max is exact), so their scan never wastes a
        // full sweep.
        Found = S.Dirty
                    ? firstFitInSuper(I, Run, Size, Probes)
                    : scanFirstFit(Occ, Base, Base + SuperBits, Run, Size,
                                   Probes);
        continue;
      }
      Probes += uint64_t(Run + S.Pre != 0);
      Run = S.Suf;
    }
  } else {
    // Dense board skipped entirely; reconstruct its trailing free run so
    // the tail run start is exact.
    uint64_t Last = Occ.findLastSetBefore(Cap);
    Run = Last == PackedBitmap::NoBit ? Cap : Cap - (Last + 1);
  }
  if (Found == InvalidAddr) {
    // Tail: the open run reaches from Cap - Run through the interval
    // map's gaps to AddrLimit. Runs starting below From were already
    // rejected by the straddle pre-check, so they are skipped.
    Addr T = Addr(Cap - Run);
    for (const auto &[IS, IE] : HighUsed) {
      if (T < IS && T >= From) {
        if (IS - T >= Size) {
          Found = T;
          break;
        }
        ++Probes;
      }
      if (IE > T)
        T = IE;
    }
    if (Found == InvalidAddr && T < AddrLimit && T >= From)
      Found = T; // the infinite tail always fits
  }
  Profiler::bump(Profiler::CtrFitProbes, Probes);
  assert(Found != InvalidAddr && "infinite tail should always fit");
  return Found;
}

Addr FreeSpaceIndex::bestFit(uint64_t Size) const {
  assert(Size != 0 && "zero-size fit query");
  const unsigned K = classOf(Size);
  uint64_t BestSize = UINT64_MAX;
  Addr Best = InvalidAddr;
  forEachRun(
      0, AddrLimit,
      [&](size_t, const Super &S, uint64_t) {
        // A dirty super is judged by its Max upper bound alone; a clean
        // one descends only when an interior run could tighten the
        // incumbent: its class must reach Size's class but not exceed
        // the incumbent's (floor-log is monotone). Boundary runs are
        // judged from the always-exact Pre/Suf digests either way.
        if (S.Dirty)
          return uint64_t(S.Max) >= Size;
        unsigned Hi =
            BestSize == UINT64_MAX ? NumClasses - 1 : classOf(BestSize);
        return (S.ClassMask & bitRange(K, Hi + 1)) != 0;
      },
      [&](Addr S, Addr E) {
        uint64_t L = E - S;
        if (L >= Size && L < BestSize) {
          BestSize = L;
          Best = S;
          if (L == Size)
            return true; // exact fit: nothing can be tighter
        }
        return false;
      });
  assert(Best != InvalidAddr && "infinite tail should always fit");
  return Best;
}

Addr FreeSpaceIndex::firstFitAligned(uint64_t Size, uint64_t Align) const {
  assert(Size != 0 && "zero-size fit query");
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  // Blocks are disjoint and address-ordered, so the first block (by
  // address) that admits an aligned placement yields the lowest aligned
  // address overall.
  Addr Found = InvalidAddr;
  uint64_t Probes = 0;
  forEachRun(
      0, AddrLimit,
      [&](size_t, const Super &S, uint64_t) {
        return uint64_t(S.Max) >= Size;
      },
      [&](Addr S, Addr E) {
        if (E - S < Size)
          return false;
        ++Probes;
        Addr Aligned = alignUp(S, Align);
        if (Aligned < E && E - Aligned >= Size) {
          Found = Aligned;
          return true;
        }
        return false;
      });
  Profiler::bump(Profiler::CtrFitProbes, Probes);
  assert(Found != InvalidAddr && "infinite tail should always fit");
  return Found;
}

Addr FreeSpaceIndex::firstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  // Blocks are address-ordered, so if the overall first fit does not end
  // below the limit, no later block can either.
  Addr A = firstFit(Size);
  return A + Size <= Limit ? A : InvalidAddr;
}

Addr FreeSpaceIndex::worstFitBelow(uint64_t Size, Addr Limit) const {
  assert(Size != 0 && "zero-size fit query");
  Addr Best = InvalidAddr;
  uint64_t BestSpan = 0;
  ScanEnd End = forEachRun(
      0, Limit,
      [&](size_t, const Super &S, uint64_t) {
        // A clipped span never exceeds the run's length, so a super
        // whose longest run cannot beat the incumbent (strictly — ties
        // keep the lower address) is skipped whole.
        return uint64_t(S.Max) >= std::max<uint64_t>(Size, BestSpan + 1);
      },
      [&](Addr S, Addr E) {
        if (S >= Limit)
          return true;
        uint64_t Span = std::min<Addr>(E, Limit) - S;
        if (Span >= Size && Span > BestSpan) {
          BestSpan = Span;
          Best = S;
        }
        return false;
      });
  if (!End.Stopped && !End.ReachedTail && End.Carry != 0) {
    // The run left open where the dense walk stopped crosses Limit.
    Addr S = End.Pos - End.Carry;
    if (S < Limit) {
      uint64_t Span = Limit - S;
      if (Span >= Size && Span > BestSpan)
        Best = S;
    }
  }
  return Best;
}

uint64_t FreeSpaceIndex::freeWordsBelow(Addr Limit) const {
  return Limit == 0 ? 0 : freeWordsIn(0, Limit);
}

size_t FreeSpaceIndex::numBlocksBelow(Addr Limit) const {
  if (Limit == 0)
    return 0;
  size_t N = 0;
  const uint64_t Cap = capBits();
  bool PrevUsed = true; // virtual used bit before address 0
  const uint64_t DenseLim = std::min<Addr>(Limit, Cap);
  const size_t FullSupers = size_t(DenseLim / SuperBits);
  for (size_t I = 0; I != FullSupers; ++I) {
    ensureClean(I);
    const Super &S = Sum[I];
    bool AllFree = S.FreeCount == SuperBits;
    bool Bit0Free = AllFree || S.Pre > 0;
    N += S.Trans + size_t(Bit0Free && PrevUsed);
    PrevUsed = !AllFree && S.Suf == 0;
  }
  uint64_t Pos = uint64_t(FullSupers) * SuperBits;
  if (Pos < DenseLim) {
    // Straddling super: count run starts at word level up to the limit.
    size_t W1 = size_t(ceilDiv(DenseLim, WordBits));
    for (size_t WI = size_t(Pos / WordBits); WI != W1; ++WI) {
      uint64_t F = ~Occ.word(WI);
      uint64_t WordEnd = uint64_t(WI + 1) * WordBits;
      if (WordEnd > DenseLim)
        F &= lowMask(unsigned(DenseLim - uint64_t(WI) * WordBits));
      uint64_t Starts = F & ~((F << 1) | uint64_t(!PrevUsed));
      N += popcount64(Starts);
      PrevUsed = (Occ.word(WI) >> 63) & 1;
    }
  }
  if (Limit > Cap) {
    // Runs starting in [Cap, Limit): the tail run (when the dense board
    // ends used) and the gaps after each interval.
    Addr T = Cap;
    bool NewStart = PrevUsed;
    for (const auto &[IS, IE] : HighUsed) {
      if (T >= Limit)
        break;
      if (T < IS && NewStart)
        ++N;
      if (IE > T)
        T = IE;
      NewStart = true;
    }
    if (T < Limit && T < AddrLimit && NewStart)
      ++N;
  }
  return N;
}

uint64_t FreeSpaceIndex::largestBlockBelow(Addr Limit) const {
  uint64_t Best = 0;
  ScanEnd End = forEachRun(
      0, Limit,
      [&](size_t, const Super &S, uint64_t) {
        return uint64_t(S.Max) > Best;
      },
      [&](Addr S, Addr E) {
        if (S >= Limit)
          return true;
        Best = std::max<uint64_t>(Best, std::min<Addr>(E, Limit) - S);
        return false;
      });
  if (!End.Stopped && !End.ReachedTail && End.Carry != 0) {
    Addr S = End.Pos - End.Carry;
    if (S < Limit)
      Best = std::max<uint64_t>(Best, Limit - S);
  }
  return Best;
}

void FreeSpaceIndex::occupancyWords(Addr Start, size_t Count,
                                    uint64_t *Out) const {
  Occ.extract(Start, Count, Out);
  if (HighUsed.empty())
    return;
  Addr End = Start + uint64_t(Count) * WordBits;
  auto It = HighUsed.upper_bound(Start);
  if (It != HighUsed.begin())
    --It;
  for (; It != HighUsed.end() && It->first < End; ++It) {
    Addr Lo = std::max(It->first, Start), Hi = std::min(It->second, End);
    if (Hi <= Lo)
      continue;
    size_t W0 = size_t((Lo - Start) / WordBits);
    size_t W1 = size_t((Hi - Start - 1) / WordBits);
    for (size_t WI = W0; WI <= W1; ++WI) {
      Addr WBase = Start + uint64_t(WI) * WordBits;
      unsigned BLo = Lo > WBase ? unsigned(Lo - WBase) : 0;
      unsigned BHi =
          Hi < WBase + WordBits ? unsigned(Hi - WBase) : WordBits;
      Out[WI] |= bitRange(BLo, BHi);
    }
  }
}

std::pair<Addr, Addr> FreeSpaceIndex::nextFreeRun(Addr Pos) const {
  const uint64_t Cap = capBits();
  if (Pos < Cap) {
    uint64_t S = Occ.findFirstClear(Pos);
    if (S < Cap) {
      uint64_t E = Occ.findFirstSet(S);
      if (E != PackedBitmap::NoBit)
        return {Addr(S), Addr(E)};
      // The run reaches the end of the board: it extends through the
      // tail to the first interval (or forever).
      Addr TailEnd =
          HighUsed.empty() ? AddrLimit : HighUsed.begin()->first;
      return {Addr(S), TailEnd};
    }
    Pos = Addr(S); // == Cap: the dense board is fully used past Pos
  }
  // First free run with start >= Pos among the interval map's gaps.
  Addr T = Pos;
  auto It = HighUsed.upper_bound(T);
  if (It != HighUsed.begin() && std::prev(It)->second > T)
    T = std::prev(It)->second;
  for (;;) {
    if (T >= AddrLimit)
      return {InvalidAddr, InvalidAddr};
    auto Next = HighUsed.lower_bound(T);
    if (Next == HighUsed.end())
      return {T, AddrLimit};
    if (Next->first > T)
      return {T, Next->first};
    T = Next->second;
  }
}
