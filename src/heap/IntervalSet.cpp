//===- heap/IntervalSet.cpp - Disjoint half-open interval set ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/IntervalSet.h"

#include <cassert>

using namespace pcb;

void IntervalSet::insert(Addr Start, Addr End) {
  assert(Start < End && "empty interval");
  assert(!overlaps(Start, End) && "inserting an overlapping interval");
  Total += End - Start;

  // Coalesce with a predecessor ending exactly at Start.
  auto It = Map.lower_bound(Start);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second == Start) {
      Start = Prev->first;
      Map.erase(Prev);
    }
  }
  // Coalesce with a successor starting exactly at End.
  It = Map.find(End);
  if (It != Map.end()) {
    End = It->second;
    Map.erase(It);
  }
  Map[Start] = End;
}

void IntervalSet::erase(Addr Start, Addr End) {
  assert(Start < End && "empty interval");
  assert(containsRange(Start, End) && "erasing a range not in the set");
  Total -= End - Start;

  auto It = Map.upper_bound(Start);
  assert(It != Map.begin() && "containsRange lied");
  --It;
  Addr BlockStart = It->first;
  Addr BlockEnd = It->second;
  Map.erase(It);
  if (BlockStart < Start)
    Map[BlockStart] = Start;
  if (End < BlockEnd)
    Map[End] = BlockEnd;
}

bool IntervalSet::containsRange(Addr Start, Addr End) const {
  assert(Start < End && "empty interval");
  auto It = Map.upper_bound(Start);
  if (It == Map.begin())
    return false;
  --It;
  return It->first <= Start && End <= It->second;
}

bool IntervalSet::overlaps(Addr Start, Addr End) const {
  assert(Start < End && "empty interval");
  auto It = Map.upper_bound(Start);
  if (It != Map.end() && It->first < End)
    return true;
  if (It == Map.begin())
    return false;
  --It;
  return It->second > Start;
}

uint64_t IntervalSet::coveredWords(Addr Start, Addr End) const {
  assert(Start < End && "empty interval");
  uint64_t Covered = 0;
  auto It = Map.upper_bound(Start);
  if (It != Map.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Start)
      Covered += std::min(Prev->second, End) - Start;
  }
  for (; It != Map.end() && It->first < End; ++It)
    Covered += std::min(It->second, End) - It->first;
  return Covered;
}

void IntervalSet::clear() {
  Map.clear();
  Total = 0;
}

std::pair<Addr, Addr> IntervalSet::intervalContaining(Addr A) const {
  auto It = Map.upper_bound(A);
  if (It == Map.begin())
    return {InvalidAddr, InvalidAddr};
  --It;
  if (A < It->second)
    return {It->first, It->second};
  return {InvalidAddr, InvalidAddr};
}
