//===- heap/HeapImage.h - ASCII rendering of heap occupancy -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders heap occupancy as ASCII art for the examples and for debugging
/// adversary behaviour: one character per bucket of words, '#' for fully
/// used, '.' for fully free, ':' for mixed buckets.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_HEAPIMAGE_H
#define PCBOUND_HEAP_HEAPIMAGE_H

#include "heap/Heap.h"

#include <string>

namespace pcb {

/// Renders the occupancy of [0, \p End) of \p H as at most \p MaxColumns
/// characters per line, \p MaxLines lines. Returns a newline-joined block.
std::string renderHeapImage(const Heap &H, Addr End, unsigned MaxColumns = 64,
                            unsigned MaxLines = 8);

} // namespace pcb

#endif // PCBOUND_HEAP_HEAPIMAGE_H
