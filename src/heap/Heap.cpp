//===- heap/Heap.cpp - The simulated word-addressed heap -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include "obs/Profiler.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace pcb;

void Heap::noteStart(Addr Address, ObjectId Id) {
  if (Address < DenseLimit) {
    if (Address >= StartBits.sizeBits()) {
      size_t Need = size_t(Address / WordBits) + 1;
      StartBits.growWords(std::max(Need, StartBits.sizeWords() * 2));
      IdAt.resize(size_t(StartBits.sizeBits()), InvalidObjectId);
    }
    StartBits.set(Address);
    IdAt[size_t(Address)] = Id;
    return;
  }
  HighObjects[Address] = Id;
}

void Heap::forgetStart(Addr Address) {
  if (Address < DenseLimit) {
    StartBits.clear(Address);
    return;
  }
  HighObjects.erase(Address);
}

ObjectId Heap::idStartingAt(Addr Address) const {
  if (Address < DenseLimit) {
    assert(StartBits.test(Address) && "no object starts here");
    return IdAt[size_t(Address)];
  }
  auto It = HighObjects.find(Address);
  assert(It != HighObjects.end() && "no object starts here");
  return It->second;
}

Addr Heap::lastStartBefore(Addr Limit) const {
  if (Limit > DenseLimit && !HighObjects.empty()) {
    auto It = HighObjects.lower_bound(Limit);
    if (It != HighObjects.begin())
      return std::prev(It)->first;
  }
  uint64_t B = StartBits.findLastSetBefore(std::min<Addr>(Limit, DenseLimit));
  return B == PackedBitmap::NoBit ? InvalidAddr : Addr(B);
}

ObjectId Heap::firstLiveAt(Addr A) const {
  if (A < DenseLimit) {
    uint64_t B = StartBits.findFirstSet(A);
    if (B != PackedBitmap::NoBit)
      return IdAt[size_t(B)];
  }
  auto It = HighObjects.lower_bound(A);
  return It == HighObjects.end() ? InvalidObjectId : It->second;
}

ObjectId Heap::place(Addr Address, uint64_t Size) {
  ScopedTimer Timer(Profiler::SecHeapPlace);
  assert(Size != 0 && "zero-size object");
  assert(Address + Size <= AddrLimit && "placement beyond the address space");
  Free.reserve(Address, Size);

  ObjectId Id = ObjectId(Objects.size());
  Objects.push_back(Object{Address, Size, ObjectState::Live});
  noteStart(Address, Id);

  Stats.TotalAllocatedWords += Size;
  Stats.LiveWords += Size;
  Stats.PeakLiveWords = std::max(Stats.PeakLiveWords, Stats.LiveWords);
  Stats.HighWaterMark = std::max(Stats.HighWaterMark, Address + Size);
  ++Stats.NumAllocations;
  if (OnEvent)
    OnEvent(HeapEvent::alloc(Id, Address, Size));
  return Id;
}

void Heap::free(ObjectId Id) {
  ScopedTimer Timer(Profiler::SecHeapFree);
  assert(isLive(Id) && "freeing a dead or unknown object");
  Object &O = Objects[Id];
  Free.release(O.Address, O.Size);
  forgetStart(O.Address);
  O.State = ObjectState::Freed;
  Stats.LiveWords -= O.Size;
  ++Stats.NumFrees;
  if (OnEvent)
    OnEvent(HeapEvent::release(Id, O.Address, O.Size));
}

void Heap::move(ObjectId Id, Addr NewAddress) {
  ScopedTimer Timer(Profiler::SecHeapMove);
  assert(isLive(Id) && "moving a dead or unknown object");
  Object &O = Objects[Id];
  assert(NewAddress + O.Size <= AddrLimit && "move beyond the address space");
  // Vacate first so that sliding moves (target overlapping the source, as
  // in memmove) are allowed; reserve still asserts the target is free of
  // every *other* object.
  Free.release(O.Address, O.Size);
  Free.reserve(NewAddress, O.Size);
  forgetStart(O.Address);
  noteStart(NewAddress, Id);
  Addr OldAddress = O.Address;
  O.Address = NewAddress;
  Stats.MovedWords += O.Size;
  Stats.HighWaterMark = std::max(Stats.HighWaterMark, NewAddress + O.Size);
  ++Stats.NumMoves;
  if (OnEvent)
    OnEvent(HeapEvent::move(Id, OldAddress, NewAddress, O.Size));
}

bool Heap::checkConsistency(std::string *Why) const {
  auto Fail = [&](const std::string &Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };
  uint64_t LiveWords = 0;
  uint64_t LiveCount = 0;
  Addr PrevEnd = 0;
  uint64_t MaxEnd = 0;
  // Walk the start index in address order: dense board first, then the
  // fallback map (its keys are all >= DenseLimit, above every dense bit).
  auto CheckOne = [&](Addr Address, ObjectId Id) {
    if (Id >= Objects.size())
      return Fail("address index names an unknown object id " +
                  std::to_string(Id));
    const Object &O = Objects[Id];
    if (!O.isLive() || O.Address != Address)
      return Fail("address index disagrees with object table at id " +
                  std::to_string(Id));
    if (Address < PrevEnd)
      return Fail("object " + std::to_string(Id) +
                  " overlaps its predecessor at address " +
                  std::to_string(Address));
    // Every word of the object must be absent from the free index.
    if (Free.freeWordsIn(Address, O.end()) != 0)
      return Fail("object " + std::to_string(Id) +
                  " overlaps the free index");
    PrevEnd = O.end();
    MaxEnd = std::max(MaxEnd, uint64_t(O.end()));
    LiveWords += O.Size;
    ++LiveCount;
    return true;
  };
  for (uint64_t B = StartBits.findFirstSet(0); B != PackedBitmap::NoBit;
       B = StartBits.findFirstSet(B + 1))
    if (!CheckOne(Addr(B), IdAt[size_t(B)]))
      return false;
  for (const auto &[Address, Id] : HighObjects)
    if (!CheckOne(Address, Id))
      return false;
  // Every live object appears in the index; no dead object does.
  uint64_t TableLive = 0;
  for (const Object &O : Objects)
    TableLive += O.isLive();
  if (TableLive != LiveCount)
    return Fail("object table has " + std::to_string(TableLive) +
                " live objects but the address index has " +
                std::to_string(LiveCount));
  // The free index is the exact complement up to the high-water mark.
  if (Stats.HighWaterMark != 0 &&
      Free.freeWordsIn(0, Stats.HighWaterMark) !=
          Stats.HighWaterMark - LiveWords)
    return Fail("free index is not the complement of the live objects "
                "below the high-water mark");
  if (LiveWords != Stats.LiveWords)
    return Fail("LiveWords statistic " + std::to_string(Stats.LiveWords) +
                " does not match recount " + std::to_string(LiveWords));
  if (MaxEnd > Stats.HighWaterMark)
    return Fail("an object ends above the recorded high-water mark");
  return true;
}

std::vector<ObjectId> Heap::liveObjects() const {
  std::vector<ObjectId> Ids;
  for (uint64_t B = StartBits.findFirstSet(0); B != PackedBitmap::NoBit;
       B = StartBits.findFirstSet(B + 1))
    Ids.push_back(IdAt[size_t(B)]);
  for (const auto &[Address, Id] : HighObjects) {
    (void)Address;
    Ids.push_back(Id);
  }
  return Ids;
}

uint64_t Heap::occupancyMask(unsigned Count) const {
  assert(Count <= 64 && "mask covers at most 64 words");
  uint64_t Occ;
  occupancyWords(0, 1, &Occ);
  return Occ & lowMask(Count);
}

uint64_t Heap::objectStartMask(unsigned Count) const {
  assert(Count <= 64 && "mask covers at most 64 words");
  uint64_t Starts;
  objectStartWords(0, 1, &Starts);
  return Starts & lowMask(Count);
}

void Heap::occupancyWords(Addr Start, size_t Count, uint64_t *Out) const {
  Free.occupancyWords(Start, Count, Out);
}

bool Heap::occupancyDisjoint(Addr A, Addr B, uint64_t Size) const {
  assert(Size != 0 && "empty disjointness probe");
  if ((A | B) % WordBits == 0 && Size % WordBits == 0) {
    // Aligned probe: one AND per word, straight off the occupancy board.
    uint64_t Words = Size / WordBits;
    for (uint64_t I = 0; I != Words; ++I)
      if (Free.occupancyWord(A / WordBits + I) &
          Free.occupancyWord(B / WordBits + I))
        return false;
    return true;
  }
  // Unaligned ranges gather both masks and AND them wordwise.
  size_t Words = size_t((Size + WordBits - 1) / WordBits);
  std::vector<uint64_t> MaskA(Words), MaskB(Words);
  occupancyWords(A, Words, MaskA.data());
  occupancyWords(B, Words, MaskB.data());
  if (Size % WordBits != 0) {
    uint64_t Keep = lowMask(unsigned(Size % WordBits));
    MaskA[Words - 1] &= Keep;
    MaskB[Words - 1] &= Keep;
  }
  for (size_t I = 0; I != Words; ++I)
    if (MaskA[I] & MaskB[I])
      return false;
  return true;
}

void Heap::objectStartWords(Addr Start, size_t Count, uint64_t *Out) const {
  StartBits.extract(Start, Count, Out);
  if (HighObjects.empty())
    return;
  Addr End = Start + uint64_t(Count) * WordBits;
  for (auto It = HighObjects.lower_bound(Start);
       It != HighObjects.end() && It->first < End; ++It) {
    uint64_t Off = It->first - Start;
    Out[size_t(Off / WordBits)] |= uint64_t(1) << (Off % WordBits);
  }
}

std::vector<ObjectId> Heap::liveObjectsIn(Addr Start, uint64_t Size) const {
  Addr End = Start + Size;
  std::vector<ObjectId> Ids;
  // An object starting before the range may still reach into it; it
  // exists iff the word at Start is used but carries no start bit there.
  if (Start != 0 && !Free.isFree(Start, 1)) {
    bool StartsHere = Start < DenseLimit
                          ? StartBits.testZeroExtended(Start)
                          : HighObjects.count(Start) != 0;
    if (!StartsHere) {
      Addr Prev = lastStartBefore(Start);
      assert(Prev != InvalidAddr && "used word with no covering object");
      ObjectId Id = idStartingAt(Prev);
      if (Objects[Id].end() > Start)
        Ids.push_back(Id);
    }
  }
  if (Start < DenseLimit)
    for (uint64_t B = StartBits.findFirstSet(Start);
         B != PackedBitmap::NoBit && B < End;
         B = StartBits.findFirstSet(B + 1))
      Ids.push_back(IdAt[size_t(B)]);
  for (auto It = HighObjects.lower_bound(std::max<Addr>(Start, DenseLimit));
       It != HighObjects.end() && It->first < End; ++It)
    Ids.push_back(It->second);
  return Ids;
}
