//===- heap/Metrics.cpp - Fragmentation metrics --------------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/Metrics.h"

#include <algorithm>

using namespace pcb;

FragmentationMetrics pcb::measureFragmentation(const Heap &H) {
  FragmentationMetrics M;
  M.FootprintWords = H.stats().HighWaterMark;
  M.LiveWords = H.stats().LiveWords;
  if (M.FootprintWords == 0)
    return M;

  for (const auto &[Start, End] : H.freeSpace()) {
    if (Start >= M.FootprintWords)
      break;
    uint64_t Span = std::min(End, M.FootprintWords) - Start;
    M.FreeWords += Span;
    M.LargestFreeBlock = std::max(M.LargestFreeBlock, Span);
    ++M.FreeBlocks;
  }
  M.Utilization = double(M.LiveWords) / double(M.FootprintWords);
  if (M.FreeWords != 0)
    M.ExternalFragmentation =
        1.0 - double(M.LargestFreeBlock) / double(M.FreeWords);
  return M;
}
