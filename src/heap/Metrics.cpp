//===- heap/Metrics.cpp - Fragmentation metrics --------------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/Metrics.h"

#include <cassert>

using namespace pcb;

FragmentationMetrics pcb::measureFragmentation(const Heap &H) {
  FragmentationMetrics M;
  M.FootprintWords = H.stats().HighWaterMark;
  M.LiveWords = H.stats().LiveWords;
  // An empty heap is all zeros by definition (see FragmentationMetrics).
  if (M.FootprintWords == 0)
    return M;

  // Everything below the high-water mark is either live or free, so the
  // free total is the complement of the live words — no scan needed.
  assert(M.LiveWords <= M.FootprintWords && "live words exceed footprint");
  M.FreeWords = M.FootprintWords - M.LiveWords;
  M.FreeBlocks = H.freeSpace().numBlocksBelow(M.FootprintWords);
  M.LargestFreeBlock = H.freeSpace().largestBlockBelow(M.FootprintWords);
  M.Utilization = double(M.LiveWords) / double(M.FootprintWords);
  if (M.FreeWords != 0)
    M.ExternalFragmentation =
        1.0 - double(M.LargestFreeBlock) / double(M.FreeWords);
  return M;
}
