//===- heap/HeapImage.cpp - ASCII rendering of heap occupancy ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "heap/HeapImage.h"

#include "support/MathUtils.h"

#include <algorithm>

using namespace pcb;

std::string pcb::renderHeapImage(const Heap &H, Addr End, unsigned MaxColumns,
                                 unsigned MaxLines) {
  if (End == 0)
    return "(empty heap)";
  uint64_t MaxCells = uint64_t(MaxColumns) * MaxLines;
  uint64_t WordsPerCell = ceilDiv(End, MaxCells);
  uint64_t NumCells = ceilDiv(End, WordsPerCell);

  std::string Out;
  for (uint64_t Cell = 0; Cell != NumCells; ++Cell) {
    Addr Start = Cell * WordsPerCell;
    uint64_t Span = std::min<uint64_t>(WordsPerCell, End - Start);
    uint64_t Used = H.usedWordsIn(Start, Span);
    char Glyph = Used == 0 ? '.' : (Used == Span ? '#' : ':');
    Out += Glyph;
    if ((Cell + 1) % MaxColumns == 0 && Cell + 1 != NumCells)
      Out += '\n';
  }
  return Out;
}
