//===- heap/HeapEvent.h - Heap mutation events ------------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of heap mutations. The Heap emits one event per
/// place/free/move through an optional observer callback; the driver adds
/// StepEnd markers between program steps. Auditors replay event streams
/// to re-derive statistics independently of the heap's own counters.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_HEAPEVENT_H
#define PCBOUND_HEAP_HEAPEVENT_H

#include "heap/HeapTypes.h"

#include <cstdint>

namespace pcb {

/// One mutation of the heap, or a step boundary marker.
struct HeapEvent {
  enum class Kind : uint8_t { Alloc, Free, Move, StepEnd };

  Kind Event = Kind::StepEnd;
  ObjectId Id = InvalidObjectId;
  Addr Address = InvalidAddr; ///< placement (Alloc/Free) or target (Move)
  Addr From = InvalidAddr;    ///< source address (Move only)
  uint64_t Size = 0;

  static HeapEvent alloc(ObjectId Id, Addr A, uint64_t Size) {
    return HeapEvent{Kind::Alloc, Id, A, InvalidAddr, Size};
  }
  static HeapEvent release(ObjectId Id, Addr A, uint64_t Size) {
    return HeapEvent{Kind::Free, Id, A, InvalidAddr, Size};
  }
  static HeapEvent move(ObjectId Id, Addr From, Addr To, uint64_t Size) {
    return HeapEvent{Kind::Move, Id, To, From, Size};
  }
  static HeapEvent stepEnd() { return HeapEvent{}; }
};

} // namespace pcb

#endif // PCBOUND_HEAP_HEAPEVENT_H
