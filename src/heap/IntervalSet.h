//===- heap/IntervalSet.h - Disjoint half-open interval set -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set of disjoint half-open intervals [start, end) over the word
/// address space, with coalescing insertion. Backing store is an ordered
/// map keyed by interval start, so all operations are logarithmic in the
/// number of maximal intervals.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_INTERVALSET_H
#define PCBOUND_HEAP_INTERVALSET_H

#include "heap/HeapTypes.h"

#include <cstddef>
#include <cstdint>
#include <map>

namespace pcb {

/// Disjoint, coalesced half-open intervals over Addr.
class IntervalSet {
public:
  using MapType = std::map<Addr, Addr>; // start -> end
  using const_iterator = MapType::const_iterator;

  /// Inserts [Start, End). The range must be disjoint from the current
  /// contents (asserted); adjacent intervals are coalesced.
  void insert(Addr Start, Addr End);

  /// Removes [Start, End), which must be fully contained in the set
  /// (asserted). May split an interval in two.
  void erase(Addr Start, Addr End);

  /// True if every word of [Start, End) is in the set.
  bool containsRange(Addr Start, Addr End) const;

  /// True if some word of [Start, End) is in the set.
  bool overlaps(Addr Start, Addr End) const;

  /// True if address \p A is in the set.
  bool contains(Addr A) const { return overlaps(A, A + 1); }

  /// Number of words covered by [Start, End) that are in the set.
  uint64_t coveredWords(Addr Start, Addr End) const;

  /// Total words in the set.
  uint64_t totalWords() const { return Total; }

  /// Number of maximal intervals.
  size_t numIntervals() const { return Map.size(); }

  bool empty() const { return Map.empty(); }
  void clear();

  const_iterator begin() const { return Map.begin(); }
  const_iterator end() const { return Map.end(); }

  /// The maximal interval containing \p A, or {InvalidAddr, InvalidAddr}.
  std::pair<Addr, Addr> intervalContaining(Addr A) const;

private:
  MapType Map;
  uint64_t Total = 0;
};

} // namespace pcb

#endif // PCBOUND_HEAP_INTERVALSET_H
