//===- heap/FreeSpaceIndex.h - Free-space queries over the heap -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Placement queries over the free space — first fit, best fit, next fit,
/// aligned first fit, worst fit below a limit, plus the aggregate queries
/// the telemetry samples — computed directly from a packed occupancy
/// bitboard rather than a second interval structure kept in sync with the
/// heap.
///
/// The index owns one bit per committed word (1 = used); a free block is
/// a maximal zero run. Mutations (reserve/release) are now plain masked
/// word stores, and every query is a summary-guided scan: the bitmap is
/// grouped into 4096-bit supers, each with a lazily recomputed digest
/// (free-bit count, prefix/suffix/max zero-run lengths, run-start count,
/// and a size-class mask of its interior runs) that lets scans skip whole
/// supers and assemble runs spanning supers from prefix/suffix arithmetic
/// alone. Free blocks are never materialized; they are *views* of the
/// occupancy words, so the index cannot drift from the heap.
///
/// The bitmap covers only the committed prefix of the 2^60-word address
/// space; everything above is implicitly free (the model's infinite
/// tail), except for objects explicitly placed beyond the maximum dense
/// capacity, which live in a tiny sorted interval map (a cold path that
/// exists for address-space-boundary semantics, e.g. a placement ending
/// exactly at AddrLimit).
///
/// Semantics are identical to the previous interval implementations —
/// the original node-based ReferenceFreeSpaceIndex and the flat leaf
/// structure it replaced (preserved as testsupport/FlatFreeSpaceIndex)
/// are both cross-checked continuously by the equivalence property test
/// and the differential fuzzer's heap-parity oracle. All tie-breaks
/// resolve to the lowest address, and numBlocksBelow / largestBlockBelow
/// stay exact for the telemetry layer.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_FREESPACEINDEX_H
#define PCBOUND_HEAP_FREESPACEINDEX_H

#include "heap/HeapTypes.h"
#include "heap/PackedBitmap.h"

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <utility>
#include <vector>

namespace pcb {

/// Free-space placement queries as views of a packed occupancy bitboard.
class FreeSpaceIndex {
public:
  /// Initializes with the whole address space [0, AddrLimit) free.
  FreeSpaceIndex();

  FreeSpaceIndex(const FreeSpaceIndex &) = delete;
  FreeSpaceIndex &operator=(const FreeSpaceIndex &) = delete;

  /// Marks [Start, Start + Size) free, coalescing neighbours. The range
  /// must currently be absent from the index (i.e. used).
  void release(Addr Start, uint64_t Size);

  /// Marks [Start, Start + Size) used. The range must be fully free.
  void reserve(Addr Start, uint64_t Size);

  /// True if [Start, Start + Size) is entirely free.
  bool isFree(Addr Start, uint64_t Size) const;

  /// Lowest address where \p Size words fit.
  Addr firstFit(uint64_t Size) const;

  /// Lowest address >= \p From where \p Size words fit (a block
  /// containing \p From counts from \p From onward).
  Addr firstFitFrom(Addr From, uint64_t Size) const;

  /// Address of the smallest free block that fits \p Size (ties broken by
  /// lowest address).
  Addr bestFit(uint64_t Size) const;

  /// Lowest \p Align-aligned address where \p Size words fit.
  /// \p Align must be a power of two.
  Addr firstFitAligned(uint64_t Size, uint64_t Align) const;

  /// Lowest address where \p Size words fit entirely below \p Limit, or
  /// InvalidAddr when no such placement exists.
  Addr firstFitBelow(uint64_t Size, Addr Limit) const;

  /// Start of the free block with the largest span clipped to [0, Limit)
  /// among blocks starting below \p Limit whose clipped span is at least
  /// \p Size (ties broken by lowest address), or InvalidAddr when no such
  /// block exists. This is classic worst fit over the committed heap.
  Addr worstFitBelow(uint64_t Size, Addr Limit) const;

  /// Number of free blocks (including the infinite tail). Maintained
  /// incrementally: a mutation learns the block-count delta from the two
  /// occupancy bits flanking its range.
  size_t numBlocks() const { return TotalBlocks; }

  /// Free words below \p Limit.
  uint64_t freeWordsBelow(Addr Limit) const;

  /// Free words within [Start, End). Inline: the compactors probe this
  /// once per candidate chunk, so the dense popcount path must not pay a
  /// call or touch the (almost always empty) interval map.
  uint64_t freeWordsIn(Addr Start, Addr End) const {
    assert(Start < End && "empty query range");
    uint64_t UsedDense =
        Start < capBits()
            ? Occ.popcountRange(Start, std::min<Addr>(End, capBits()))
            : 0;
    uint64_t UsedHigh = HighUsed.empty() ? 0 : highUsedWordsIn(Start, End);
    return (End - Start) - UsedDense - UsedHigh;
  }

  /// Number of free blocks that begin below \p Limit. O(supers): whole
  /// supers answer from their run-start digests, only the super
  /// straddling \p Limit is scanned at word level.
  size_t numBlocksBelow(Addr Limit) const;

  /// Largest free run clipped to [0, Limit): the maximum over blocks
  /// starting below \p Limit of min(end, Limit) - start. O(supers):
  /// supers that cannot beat the incumbent are skipped via their max-run
  /// digest.
  uint64_t largestBlockBelow(Addr Limit) const;

  /// Word \p I of the occupancy board (bit j = address 64 * I + j,
  /// 1 = used); words beyond the committed prefix are zero. This is the
  /// raw substrate Heap's mask queries expose.
  uint64_t occupancyWord(uint64_t I) const {
    return I < Occ.sizeWords() ? Occ.word(size_t(I)) : highOccupancyWord(I);
  }

  /// Copies the occupancy of [Start, Start + 64 * Count) into \p Out as
  /// packed words; arbitrary Start.
  void occupancyWords(Addr Start, size_t Count, uint64_t *Out) const;

  /// Forward iteration over (start, end) free blocks in address order.
  /// Blocks are materialized lazily by scanning the board.
  class const_iterator {
  public:
    using value_type = std::pair<Addr, Addr>;
    using reference = value_type;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    value_type operator*() const { return {S, E}; }
    const_iterator &operator++() {
      if (E >= AddrLimit) {
        S = InvalidAddr;
        E = InvalidAddr;
      } else {
        auto [NS, NE] = Owner->nextFreeRun(E);
        S = NS;
        E = NE;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator Old = *this;
      ++*this;
      return Old;
    }
    bool operator==(const const_iterator &O) const { return S == O.S; }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    friend class FreeSpaceIndex;
    const_iterator(const FreeSpaceIndex *Owner, Addr S, Addr E)
        : Owner(Owner), S(S), E(E) {}

    const FreeSpaceIndex *Owner;
    Addr S, E;
  };

  const_iterator begin() const {
    auto [S, E] = nextFreeRun(0);
    return const_iterator(this, S, E);
  }
  const_iterator end() const {
    return const_iterator(this, InvalidAddr, InvalidAddr);
  }

private:
  /// Digest granularity: 64 words = 4096 bits per super.
  static constexpr unsigned SuperWords = 64;
  static constexpr unsigned SuperBits = SuperWords * WordBits;
  /// Dense-bitmap ceiling: 2^26 bits (an 8 MiB board). Reservations
  /// ending beyond it go to the sorted interval map instead.
  static constexpr uint64_t MaxDenseBits = uint64_t(1) << 26;
  static constexpr unsigned NumClasses = 61;

  /// Per-super digest. FreeCount, Pre and Suf are maintained exactly by
  /// every mutation (O(1) for reserve, a window-bounded bit scan for
  /// release), so run assembly across skipped supers never recomputes
  /// anything. Max degrades to a sound *upper bound* while Dirty (a
  /// reserve can only shrink runs; a release folds its merged run in), so
  /// it still filters descents — a stale pass costs one recompute, a
  /// stale skip cannot happen. Trans and ClassMask are only valid when
  /// clean; the queries that need them (numBlocksBelow, bestFit)
  /// recompute on the way. A fully free super has FreeCount == SuperBits
  /// (and canonical Pre = Suf = Max = SuperBits, Trans = 0,
  /// ClassMask = 0, Dirty = false).
  struct Super {
    uint16_t Pre = 0;      ///< leading free bits (always exact)
    uint16_t Suf = 0;      ///< trailing free bits (always exact)
    uint16_t Max = 0;      ///< longest free run (upper bound while Dirty)
    uint16_t Trans = 0;    ///< free runs starting at an interior position
    uint16_t FreeCount = 0;///< free bits in the window (always exact)
    bool Dirty = false;
    uint64_t ClassMask = 0;///< classes of runs interior to the window
  };

  /// Size class of a block: floor(log2(size)). Class K holds sizes in
  /// [2^K, 2^(K+1)).
  static unsigned classOf(uint64_t Size);

  /// Where a run scan ended when no callback stopped it: the open run of
  /// \p Carry free bits ending at \p Pos (a super boundary), or the tail
  /// walk completed (\p ReachedTail).
  struct ScanEnd {
    bool Stopped;
    uint64_t Carry;
    Addr Pos;
    bool ReachedTail;
  };

  /// Walks the complete maximal free runs with start >= \p From in
  /// address order, including the final tail run ending at AddrLimit.
  /// \p Fn(S, E) returns true to stop. \p Descend(I, Sup, CarryIn)
  /// decides whether super \p I is scanned at word level; when it
  /// declines, only the boundary run completing at the super's prefix is
  /// reported (from the always-exact Pre/Suf digests), so Descend must
  /// return true whenever an interior run of the super could interest Fn
  /// (it may recompute the digest itself to decide). Supers whose base
  /// is >= \p StopBase are not entered (the dense walk ends there).
  template <typename DescendT, typename FnT>
  ScanEnd forEachRun(Addr From, Addr StopBase, DescendT Descend,
                     FnT Fn) const;

  /// Committed bits of the dense board (== Occ.sizeBits()).
  uint64_t capBits() const { return Occ.sizeBits(); }

  /// Grows the dense board (in whole supers) to cover [0, NeedBits).
  /// Split so the almost-always-true capacity check inlines into the
  /// mutation hot path.
  void ensureDense(uint64_t NeedBits) {
    if (NeedBits > capBits())
      growDense(NeedBits);
  }
  void growDense(uint64_t NeedBits);

  /// Digest maintenance for a mutation of dense range [S, E):
  /// noteReserve before any query sees the super again, noteRelease after
  /// the bits have been cleared (it scans the merged run's extent).
  void noteReserve(uint64_t S, uint64_t E);
  void noteRelease(uint64_t S, uint64_t E);

  /// One fused pass over super \p I's words: reports complete free runs
  /// to \p Fn (threading \p Run as the open-run carry, exactly like the
  /// plain word scan) while rebuilding the digest as a side effect, so a
  /// descent into a dirty super costs a single sweep instead of
  /// recompute-then-rescan. The sweep always runs to the super's end
  /// (the digest needs it); once Fn stops, remaining runs feed only the
  /// digest. Returns true when Fn stopped.
  template <typename FnT>
  bool scanSuperFused(size_t I, uint64_t &Run, FnT &&Fn) const;

  /// First-fit sweep of dirty super \p I: returns the lowest block start
  /// where \p Size bits fit (exiting immediately — the digest stays
  /// dirty, nothing was wasted), or InvalidAddr after sweeping the whole
  /// window, in which case the digest is banked clean as a side effect
  /// (so the super's now-exact Max skips it until the next mutation).
  Addr firstFitInSuper(size_t I, uint64_t &Run, uint64_t Size,
                       uint64_t &Probes) const;

  /// Recomputes Sum[I] from the occupancy words if dirty.
  void ensureClean(size_t I) const;
  void recomputeSuper(size_t I) const;

  /// True when address \p A (anywhere in [0, AddrLimit)) is free.
  bool bitFree(Addr A) const {
    if (A < capBits())
      return !Occ.test(A);
    return HighUsed.empty() || highRangeFree(A, A + 1);
  }

  /// Used words of the interval map intersecting [S, E).
  uint64_t highUsedWordsIn(Addr S, Addr E) const;
  /// True when [S, E) misses every interval of the map.
  bool highRangeFree(Addr S, Addr E) const;
  /// Occupancy word \p I synthesized from the interval map.
  uint64_t highOccupancyWord(uint64_t I) const;

  /// The maximal free run with the lowest start >= \p Pos (iterator
  /// plumbing; \p Pos must not be interior to a free run).
  std::pair<Addr, Addr> nextFreeRun(Addr Pos) const;

  /// Reserve/release of the interval-map region.
  void highReserve(Addr S, Addr E);
  void highRelease(Addr S, Addr E);

  PackedBitmap Occ;                ///< 1 = used, dense prefix only
  mutable std::vector<Super> Sum;  ///< one digest per super, lazy
  /// Used intervals at or above MaxDenseBits, keyed by start; disjoint
  /// and coalesced (no two touching intervals).
  std::map<Addr, Addr> HighUsed;
  size_t TotalBlocks = 1;
};

} // namespace pcb

#endif // PCBOUND_HEAP_FREESPACEINDEX_H
