//===- heap/FreeSpaceIndex.h - Free-space queries over the heap -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintains the complement of the used space — the free blocks — with the
/// placement queries the memory-manager policies need: first fit, best
/// fit, next fit (first fit from a cursor), and aligned first fit.
///
/// Three synchronized structures keep every query logarithmic in the
/// number of free blocks: an address-ordered map, a size-ordered multimap
/// (best fit), and per-size-class address sets (first fit: the lowest
/// address among blocks of size >= S is the minimum over one lower_bound
/// per size class, of which there are at most 61).
///
/// The heap model is unbounded above (up to AddrLimit); the index always
/// holds a final "tail" block reaching AddrLimit, so placement queries
/// never fail.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_HEAP_FREESPACEINDEX_H
#define PCBOUND_HEAP_FREESPACEINDEX_H

#include "heap/HeapTypes.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace pcb {

/// Address- and size-indexed free blocks with placement queries.
class FreeSpaceIndex {
public:
  /// Initializes with the whole address space [0, AddrLimit) free.
  FreeSpaceIndex();

  /// Marks [Start, Start + Size) free, coalescing neighbours. The range
  /// must currently be absent from the index (i.e. used).
  void release(Addr Start, uint64_t Size);

  /// Marks [Start, Start + Size) used. The range must be fully free.
  void reserve(Addr Start, uint64_t Size);

  /// True if [Start, Start + Size) is entirely free.
  bool isFree(Addr Start, uint64_t Size) const;

  /// Lowest address where \p Size words fit.
  Addr firstFit(uint64_t Size) const;

  /// Lowest address >= \p From where \p Size words fit (a block
  /// containing \p From counts from \p From onward).
  Addr firstFitFrom(Addr From, uint64_t Size) const;

  /// Address of the smallest free block that fits \p Size (ties broken by
  /// lowest address).
  Addr bestFit(uint64_t Size) const;

  /// Lowest \p Align-aligned address where \p Size words fit.
  /// \p Align must be a power of two.
  Addr firstFitAligned(uint64_t Size, uint64_t Align) const;

  /// Lowest address where \p Size words fit entirely below \p Limit, or
  /// InvalidAddr when no such placement exists.
  Addr firstFitBelow(uint64_t Size, Addr Limit) const;

  /// Number of free blocks (including the infinite tail).
  size_t numBlocks() const { return ByAddr.size(); }

  /// Free words below \p Limit.
  uint64_t freeWordsBelow(Addr Limit) const;

  /// Free words within [Start, End).
  uint64_t freeWordsIn(Addr Start, Addr End) const;

  /// Number of free blocks that begin below \p Limit. O(log + blocks at
  /// or above Limit); with Limit at the heap's high-water mark at most
  /// the tail block lies above, so the fragmentation metrics sample in
  /// O(log) instead of walking the index.
  size_t numBlocksBelow(Addr Limit) const;

  /// Largest free run clipped to [0, Limit): the maximum over blocks
  /// starting below \p Limit of min(end, Limit) - start. Walks the size
  /// index from the largest block down and stops as soon as no remaining
  /// block can beat the best clipped span — O(log) when, as at the
  /// high-water mark, only the tail block straddles \p Limit.
  uint64_t largestBlockBelow(Addr Limit) const;

  /// Iteration over (start, end) free blocks in address order.
  using const_iterator = std::map<Addr, Addr>::const_iterator;
  const_iterator begin() const { return ByAddr.begin(); }
  const_iterator end() const { return ByAddr.end(); }

private:
  void eraseBlock(std::map<Addr, Addr>::iterator It);
  void addBlock(Addr Start, Addr End);

  /// Size class of a block: floor(log2(size)). Class K holds sizes in
  /// [2^K, 2^(K+1)).
  static unsigned classOf(uint64_t Size);

  static constexpr unsigned NumClasses = 61;

  std::map<Addr, Addr> ByAddr;              // start -> end
  std::set<std::pair<uint64_t, Addr>> BySize; // (size, start); best fit
  std::set<Addr> Buckets[NumClasses];       // per-class starts (first fit)
};

} // namespace pcb

#endif // PCBOUND_HEAP_FREESPACEINDEX_H
