//===- trace/TraceRecorder.h - Capturing runs as traces ---------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Captures any run of the stack as a malloc trace. Two sources:
///
///   heapTap()  an adapter for Heap::setEventCallback — every Alloc/Free
///              heap event becomes a trace record keyed by its heap
///              ObjectId (dense, never reused, so the trace is trivially
///              well-formed). Moves are dropped: compaction does not
///              change the program's allocation schedule, which is the
///              whole point of replaying one trace under many policies
///              and controllers. This records adversaries, synthetic
///              programs, and whole fleet runs at production sizes.
///
///   record(TraceOp)  lowers the ordinal-free TraceOp convention (frees
///              name the k-th allocation) used by fuzz schedules and
///              fleet sessions, numbering allocations as it goes.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TRACE_TRACERECORDER_H
#define PCBOUND_TRACE_TRACERECORDER_H

#include "adversary/SyntheticWorkloads.h"
#include "heap/HeapEvent.h"
#include "trace/TraceFormat.h"

#include <functional>

namespace pcb {

/// Writes a malloc trace from live runs; see the file comment.
class TraceRecorder {
public:
  TraceRecorder(std::ostream &OS, TraceFraming F) : W(OS, F) {}

  /// Records one TraceOp (frees name allocation ordinals).
  void record(const TraceOp &Op);

  /// Records a whole TraceOp list.
  void record(const std::vector<TraceOp> &Ops);

  /// The Heap::setEventCallback adapter. The recorder must outlive the
  /// callback's installation.
  std::function<void(const HeapEvent &)> heapTap();

  TraceWriter &writer() { return W; }
  uint64_t opsWritten() const { return W.opsWritten(); }
  bool good() const { return W.good(); }

private:
  TraceWriter W;
  uint64_t NextAllocOrdinal = 0;
};

} // namespace pcb

#endif // PCBOUND_TRACE_TRACERECORDER_H
