//===- trace/TraceRun.h - Streaming trace replay ----------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a streamed malloc trace through a manager under a budget
/// controller. StreamingTraceProgram is a Program that pulls one MallocOp
/// per step straight from a TraceReader — the trace is never
/// materialized, so memory use is bounded by the live-id window, not the
/// op count. runTrace() assembles the whole stack (heap, manager,
/// controller, execution) and returns a TraceRunReport whose text and
/// JSON renderings are deterministic: pure functions of the trace and
/// configuration, no wall-clock, suitable for golden files and the
/// byte-identity determinism gate.
///
//======---------------------------------------------------------------===//

#ifndef PCBOUND_TRACE_TRACERUN_H
#define PCBOUND_TRACE_TRACERUN_H

#include "adversary/Program.h"
#include "adversary/SyntheticWorkloads.h"
#include "driver/Execution.h"
#include "trace/BudgetController.h"
#include "trace/TraceReader.h"

#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace pcb {

/// A Program that replays a TraceReader's stream, one op per step.
class StreamingTraceProgram : public Program {
public:
  explicit StreamingTraceProgram(TraceReader &R) : Reader(R) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "trace-stream"; }

  /// High-water mark of the trace-id -> ObjectId window — the program's
  /// only trace-size-dependent state.
  size_t maxLiveWindow() const { return MaxLiveWindow; }

private:
  bool readAhead();

  TraceReader &Reader;
  std::unordered_map<uint64_t, ObjectId> LiveIds;
  size_t MaxLiveWindow = 0;
  /// One-op lookahead, so the last operation's step reports end-of-trace
  /// the way TraceReplayProgram's does and a streamed run is
  /// step-for-step identical to a materialized one.
  MallocOp Pending;
  bool HavePending = false;
  bool Primed = false;
};

/// Configuration of one trace replay.
struct TraceRunOptions {
  std::string Policy = "first-fit";
  double C = 50.0;
  ControllerSpec Controller;
  /// The program's live bound M. 0 means "unknown" (streaming traces):
  /// the driver runs against an effectively unbounded M and the report's
  /// waste factor is taken against the trace's measured peak live volume.
  /// Policies that need M up front (bump-compactor) require it nonzero.
  uint64_t LiveBound = 0;
  /// Deep heap self-check cadence (0 disables).
  uint64_t DeepCheckEvery = 0;
  /// Observation port: invoked with the Execution before any step runs,
  /// so callers can attach samplers without this layer knowing them.
  std::function<void(Execution &)> OnExecution;
  /// Invoked after the run completes, while the Execution is still
  /// alive — the place to finish samplers attached via OnExecution.
  std::function<void(Execution &)> OnFinished;
};

/// What one trace replay produced; rendering is deterministic.
struct TraceRunReport {
  std::string Trace; ///< display name of the trace source
  std::string Policy;
  std::string Controller;
  double C = 0.0;
  ExecutionResult Exec;
  uint64_t OpsStreamed = 0;
  uint64_t PeakLiveWindow = 0; ///< max simultaneously live trace ids
  uint64_t BudgetWords = 0;
  /// MovedWords / BudgetWords, as a percentage (0 when unlimited).
  double BudgetBurnPct = 0.0;
  /// HS / peak live words (the waste factor against the trace's own M).
  double WasteFactor = 0.0;
  uint64_t ControllerGrants = 0;
  uint64_t ControllerDenials = 0;

  void printText(std::ostream &OS) const;
  void printJson(std::ostream &OS) const;
  /// Writes the report to \p Path — JSON when it ends in ".json", text
  /// otherwise. Returns false and sets \p Error when the file cannot be
  /// written.
  bool writeFile(const std::string &Path, std::string *Error) const;
};

/// Streams \p R through the configured stack. Throws std::runtime_error
/// on an unknown policy or controller, or when the trace fails
/// validation mid-stream (the reader's line/record diagnostic).
TraceRunReport runTrace(TraceReader &R, const TraceRunOptions &Opts,
                        const std::string &TraceName = "<stream>");

/// Materializes \p R into the ordinal-free TraceOp convention (frees name
/// the k-th allocation) used by fuzz schedules and fleet sessions.
/// Returns an empty vector and sets \p Error on a validation failure.
/// This is the non-streaming path — only for traces meant to be held
/// whole (fuzz corpora, session classes), never for trace-run.
std::vector<TraceOp> materializeTrace(TraceReader &R, std::string *Error);

} // namespace pcb

#endif // PCBOUND_TRACE_TRACERUN_H
