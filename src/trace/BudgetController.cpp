//===- trace/BudgetController.cpp - When to spend the budget -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "trace/BudgetController.h"

#include "driver/Execution.h"
#include "heap/Heap.h"
#include "mm/MemoryManager.h"
#include "obs/Profiler.h"

#include <cassert>
#include <cmath>

using namespace pcb;

BudgetController::~BudgetController() = default;

bool BudgetController::consult() {
  if (allowSpend()) {
    ++NumGrants;
    return true;
  }
  ++NumDenials;
  Profiler::bump(Profiler::CtrControllerDenials);
  return false;
}

BudgetSample pcb::sampleFromHeap(const Heap &H, uint64_t Step) {
  const HeapStats &S = H.stats();
  BudgetSample Sample;
  Sample.Step = Step;
  Sample.LiveWords = S.LiveWords;
  Sample.FootprintWords = S.HighWaterMark;
  Sample.AllocatedWords = S.TotalAllocatedWords;
  Sample.MovedWords = S.MovedWords;
  Sample.NumMoves = S.NumMoves;
  return Sample;
}

void MemBalancerController::observe(const BudgetSample &S) {
  if (HavePrev && S.Step > PrevStep) {
    // Live-size derivative per step, clamped at zero: shrinking phases
    // mean "no growth pressure", not negative pressure.
    double Delta = S.LiveWords > PrevLive
                       ? double(S.LiveWords - PrevLive) /
                             double(S.Step - PrevStep)
                       : 0.0;
    Growth = (1.0 - Opts.Smoothing) * Growth + Opts.Smoothing * Delta;
  }
  PrevLive = S.LiveWords;
  PrevStep = S.Step;
  HavePrev = true;
  Live = S.LiveWords;
  Slack = S.FootprintWords > S.LiveWords ? S.FootprintWords - S.LiveWords : 0;
  MoveCost = S.NumMoves != 0 ? double(S.MovedWords) / double(S.NumMoves) : 1.0;
}

double MemBalancerController::slackTargetWords() const {
  double Target =
      std::sqrt(Opts.C1 * double(Live) * Growth / std::max(1.0, MoveCost));
  return std::max(Opts.MinSlackWords, Target);
}

bool MemBalancerController::allowSpend() const {
  return double(Slack) >= slackTargetWords();
}

const std::vector<std::string> &pcb::allControllerNames() {
  static const std::vector<std::string> Names = {"fixed", "periodic",
                                                 "membalancer"};
  return Names;
}

std::unique_ptr<BudgetController>
pcb::createControllerChecked(const ControllerSpec &Spec, std::string *Error) {
  if (Spec.Name == "fixed")
    return std::make_unique<FixedTriggerController>();
  if (Spec.Name == "periodic")
    return std::make_unique<PeriodicController>(Spec.Period);
  if (Spec.Name == "membalancer") {
    MemBalancerController::Options O;
    O.C1 = Spec.C1;
    O.Smoothing = Spec.Smoothing;
    return std::make_unique<MemBalancerController>(O);
  }
  if (Error) {
    std::string Valid;
    for (const std::string &N : allControllerNames())
      Valid += (Valid.empty() ? "" : ", ") + N;
    *Error = "unknown controller '" + Spec.Name + "' (valid: " + Valid + ")";
  }
  return nullptr;
}

std::unique_ptr<BudgetController>
pcb::createController(const ControllerSpec &Spec) {
  std::string Error;
  std::unique_ptr<BudgetController> C = createControllerChecked(Spec, &Error);
  assert(C && "unknown controller name");
  return C;
}

void pcb::attachController(Execution &E, MemoryManager &MM,
                           BudgetController &C) {
  C.observe(sampleFromHeap(MM.heap(), 0));
  MM.setSpendGate([&C] { return C.consult(); });
  E.addStepObserver([&C](const Execution &Ex) {
    C.observe(sampleFromHeap(Ex.manager().heap(), Ex.stepsRun()));
  });
}
