//===- trace/TraceFormat.cpp - The malloc-trace wire format --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFormat.h"

#include <cassert>
#include <ostream>

using namespace pcb;

namespace {
constexpr char BinaryMagic[4] = {'P', 'C', 'B', 'T'};
constexpr uint8_t TagAlloc = 1;
constexpr uint8_t TagFree = 2;
} // namespace

std::string pcb::framingName(TraceFraming F) {
  return F == TraceFraming::Text ? "text" : "binary";
}

bool pcb::parseFraming(const std::string &Name, TraceFraming &F) {
  if (Name == "text") {
    F = TraceFraming::Text;
    return true;
  }
  if (Name == "binary") {
    F = TraceFraming::Binary;
    return true;
  }
  return false;
}

TraceWriter::TraceWriter(std::ostream &OS, TraceFraming F)
    : OS(OS), Framing(F) {
  if (Framing == TraceFraming::Text) {
    OS << "pcbtrace " << TraceFormatVersion << " text\n";
  } else {
    OS.write(BinaryMagic, sizeof(BinaryMagic));
    OS.put(char(TraceFormatVersion));
  }
}

void TraceWriter::putVarint(uint64_t V) {
  while (V >= 0x80) {
    OS.put(char((V & 0x7f) | 0x80));
    V >>= 7;
  }
  OS.put(char(V));
}

void TraceWriter::alloc(uint64_t Id, uint64_t Size) {
  assert(Size != 0 && "recording a zero-word allocation");
  if (Framing == TraceFraming::Text) {
    OS << "a " << Id << ' ' << Size << '\n';
  } else {
    OS.put(char(TagAlloc));
    putVarint(Id);
    putVarint(Size);
  }
  ++Ops;
}

void TraceWriter::free(uint64_t Id) {
  if (Framing == TraceFraming::Text) {
    OS << "f " << Id << '\n';
  } else {
    OS.put(char(TagFree));
    putVarint(Id);
  }
  ++Ops;
}

void TraceWriter::record(const MallocOp &Op) {
  if (Op.isAlloc())
    alloc(Op.Id, Op.Size);
  else
    free(Op.Id);
}

void TraceWriter::comment(const std::string &Text) {
  if (Framing == TraceFraming::Text)
    OS << "# " << Text << '\n';
}

bool TraceWriter::good() const { return OS.good(); }
