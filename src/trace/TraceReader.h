//===- trace/TraceReader.h - Streaming malloc-trace parser ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming side of the malloc-trace format: next() yields one
/// validated MallocOp at a time, so a million-op trace flows through in
/// constant memory plus a window of the *currently live* trace ids (the
/// only state replay fundamentally needs — maxLiveWindow() exposes its
/// high-water mark so tests can assert the bound). The framing is sniffed
/// from the first byte: "PCBT" magic means binary, anything else is
/// parsed as the text header.
///
/// Validation mirrors driver/TraceIO: structural damage (bad header or
/// version, unknown tags, truncated records, trailing garbage) and
/// schedule damage (zero-size allocation, allocating an id that is still
/// live, freeing an id that is not) all fail with a diagnostic naming the
/// line (text) or record ordinal (binary). After a failure next() returns
/// false forever and error() describes the damage.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TRACE_TRACEREADER_H
#define PCBOUND_TRACE_TRACEREADER_H

#include "trace/TraceFormat.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>

namespace pcb {

/// Streams one malloc trace out of an istream; see the file comment.
class TraceReader {
public:
  /// The stream must outlive the reader, and must have been opened in
  /// binary mode when it may hold the binary framing.
  explicit TraceReader(std::istream &IS) : IS(IS) {}

  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Yields the next operation. Returns false at end of trace *or* on a
  /// validation failure — check failed() to tell the two apart.
  bool next(MallocOp &Op);

  /// True once validation has failed; error() holds the diagnostic.
  bool failed() const { return Failed; }
  const std::string &error() const { return Error; }

  /// The framing the header announced (valid once next() was called).
  TraceFraming framing() const { return Framing; }

  /// Streaming statistics over the operations yielded so far.
  uint64_t opsRead() const { return NumAllocs + NumFrees; }
  uint64_t numAllocs() const { return NumAllocs; }
  uint64_t numFrees() const { return NumFrees; }
  uint64_t allocatedWords() const { return AllocWords; }
  uint64_t liveWords() const { return LiveWords; }
  uint64_t peakLiveWords() const { return PeakLiveWords; }

  /// The live-id window: ids allocated but not yet freed. Its high-water
  /// mark is the reader's only trace-size-dependent memory use.
  size_t liveWindow() const { return Live.size(); }
  size_t maxLiveWindow() const { return MaxLiveWindow; }

private:
  bool readHeader();
  bool nextText(MallocOp &Op);
  bool nextBinary(MallocOp &Op);
  bool readVarint(uint64_t &V);
  bool fail(const std::string &Reason);
  bool apply(MallocOp &Op);

  std::istream &IS;
  TraceFraming Framing = TraceFraming::Text;
  bool HeaderRead = false;
  bool Failed = false;
  bool Done = false;
  std::string Error;

  std::unordered_map<uint64_t, uint64_t> Live; ///< live trace id -> words
  uint64_t LineNo = 0;   ///< text framing: current line
  uint64_t RecordNo = 0; ///< binary framing: current record ordinal
  uint64_t NumAllocs = 0;
  uint64_t NumFrees = 0;
  uint64_t AllocWords = 0;
  uint64_t LiveWords = 0;
  uint64_t PeakLiveWords = 0;
  size_t MaxLiveWindow = 0;
};

} // namespace pcb

#endif // PCBOUND_TRACE_TRACEREADER_H
