//===- trace/TraceRun.cpp - Streaming trace replay -----------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRun.h"

#include "heap/Heap.h"
#include "mm/ManagerFactory.h"
#include "obs/Profiler.h"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

using namespace pcb;

bool StreamingTraceProgram::readAhead() {
  ScopedTimer T(Profiler::SecTraceRead);
  return Reader.next(Pending);
}

bool StreamingTraceProgram::step(MutatorContext &Ctx) {
  if (!Primed) {
    HavePending = readAhead();
    Primed = true;
  }
  if (!HavePending)
    return false;
  MallocOp Op = Pending;
  HavePending = readAhead();
  Profiler::bump(Profiler::CtrTraceOps);
  if (Op.isAlloc()) {
    // The reader rejected duplicate live ids, so the insert must be new.
    ObjectId Id = Ctx.allocate(Op.Size);
    bool Inserted = LiveIds.emplace(Op.Id, Id).second;
    assert(Inserted && "reader admitted a duplicate live id");
    (void)Inserted;
    if (LiveIds.size() > MaxLiveWindow)
      MaxLiveWindow = LiveIds.size();
  } else {
    auto It = LiveIds.find(Op.Id);
    assert(It != LiveIds.end() && "reader admitted a free of a dead id");
    Ctx.free(It->second);
    LiveIds.erase(It);
  }
  return HavePending;
}

TraceRunReport pcb::runTrace(TraceReader &R, const TraceRunOptions &Opts,
                             const std::string &TraceName) {
  std::string Error;
  std::unique_ptr<BudgetController> Ctrl =
      createControllerChecked(Opts.Controller, &Error);
  if (!Ctrl)
    throw std::runtime_error(Error);

  Heap H;
  std::unique_ptr<MemoryManager> MM =
      createManagerChecked(Opts.Policy, H, Opts.C, Opts.LiveBound, &Error);
  if (!MM)
    throw std::runtime_error(Error);

  // Streaming means the trace's peak live volume is unknown up front;
  // without a caller-supplied bound the driver's M check runs against an
  // effectively unbounded M and the report's waste factor is taken
  // against the trace's own measured peak instead.
  uint64_t M = Opts.LiveBound != 0 ? Opts.LiveBound : uint64_t(1) << 62;

  StreamingTraceProgram Prog(R);
  Execution::Options EO;
  EO.DeepCheckEvery = Opts.DeepCheckEvery;
  EO.MaxSteps = UINT64_MAX; // the stream's end is the stop condition
  Execution E(*MM, Prog, M, EO);
  attachController(E, *MM, *Ctrl);
  if (Opts.OnExecution)
    Opts.OnExecution(E);

  TraceRunReport Rep;
  Rep.Exec = E.run();
  if (Opts.OnFinished)
    Opts.OnFinished(E);

  if (R.failed())
    throw std::runtime_error(TraceName + ": " + R.error());

  Rep.Trace = TraceName;
  Rep.Policy = MM->name();
  Rep.Controller = Ctrl->name();
  Rep.C = Opts.C;
  Rep.OpsStreamed = R.opsRead();
  Rep.PeakLiveWindow = Prog.maxLiveWindow();
  const CompactionLedger &L = MM->ledger();
  Rep.BudgetWords = L.isUnlimited() ? 0 : L.budgetWords();
  Rep.BudgetBurnPct = Rep.BudgetWords != 0 ? 100.0 * double(Rep.Exec.MovedWords) /
                                                 double(Rep.BudgetWords)
                                           : 0.0;
  Rep.WasteFactor = Rep.Exec.PeakLiveWords != 0
                        ? double(Rep.Exec.HeapSize) /
                              double(Rep.Exec.PeakLiveWords)
                        : 0.0;
  Rep.ControllerGrants = Ctrl->grants();
  Rep.ControllerDenials = Ctrl->denials();
  return Rep;
}

namespace {
std::string fixed2(double V) {
  std::ostringstream SS;
  SS << std::fixed << std::setprecision(2) << V;
  return SS.str();
}

std::string fixed4(double V) {
  std::ostringstream SS;
  SS << std::fixed << std::setprecision(4) << V;
  return SS.str();
}
} // namespace

void TraceRunReport::printText(std::ostream &OS) const {
  OS << "trace-run report\n";
  OS << "  trace:       " << Trace << '\n';
  OS << "  ops:         " << OpsStreamed << " (" << Exec.NumAllocations
     << " allocs, " << Exec.NumFrees << " frees)\n";
  OS << "  policy:      " << Policy << " (c=" << fixed2(C) << ")\n";
  OS << "  controller:  " << Controller << '\n';
  OS << "  HS:          " << Exec.HeapSize << " words\n";
  OS << "  peak live:   " << Exec.PeakLiveWords << " words (waste "
     << fixed4(WasteFactor) << "x)\n";
  OS << "  live window: " << PeakLiveWindow << " ids\n";
  OS << "  moved:       " << Exec.MovedWords << " words in " << Exec.NumMoves
     << " moves\n";
  OS << "  budget:      " << BudgetWords << " words (burn "
     << fixed2(BudgetBurnPct) << "%)\n";
  OS << "  gate:        " << ControllerGrants << " grants, "
     << ControllerDenials << " denials\n";
}

void TraceRunReport::printJson(std::ostream &OS) const {
  OS << "{\n";
  OS << "  \"trace\": \"" << Trace << "\",\n";
  OS << "  \"policy\": \"" << Policy << "\",\n";
  OS << "  \"controller\": \"" << Controller << "\",\n";
  OS << "  \"c\": " << fixed2(C) << ",\n";
  OS << "  \"ops\": " << OpsStreamed << ",\n";
  OS << "  \"allocs\": " << Exec.NumAllocations << ",\n";
  OS << "  \"frees\": " << Exec.NumFrees << ",\n";
  OS << "  \"hs_words\": " << Exec.HeapSize << ",\n";
  OS << "  \"peak_live_words\": " << Exec.PeakLiveWords << ",\n";
  OS << "  \"waste_factor\": " << fixed4(WasteFactor) << ",\n";
  OS << "  \"peak_live_window\": " << PeakLiveWindow << ",\n";
  OS << "  \"moved_words\": " << Exec.MovedWords << ",\n";
  OS << "  \"num_moves\": " << Exec.NumMoves << ",\n";
  OS << "  \"budget_words\": " << BudgetWords << ",\n";
  OS << "  \"budget_burn_pct\": " << fixed2(BudgetBurnPct) << ",\n";
  OS << "  \"controller_grants\": " << ControllerGrants << ",\n";
  OS << "  \"controller_denials\": " << ControllerDenials << "\n";
  OS << "}\n";
}

bool TraceRunReport::writeFile(const std::string &Path,
                               std::string *Error) const {
  std::ofstream OS(Path);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Json = Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".json") == 0;
  if (Json)
    printJson(OS);
  else
    printText(OS);
  OS.flush();
  if (!OS) {
    if (Error)
      *Error = "error writing '" + Path + "'";
    return false;
  }
  return true;
}

std::vector<TraceOp> pcb::materializeTrace(TraceReader &R,
                                           std::string *Error) {
  std::vector<TraceOp> Ops;
  // Trace ids are reusable; allocation ordinals are not. The window maps
  // the live id to the ordinal of the allocation that created it.
  std::unordered_map<uint64_t, uint64_t> OrdinalOf;
  uint64_t NextOrdinal = 0;
  MallocOp Op;
  while (R.next(Op)) {
    if (Op.isAlloc()) {
      OrdinalOf[Op.Id] = NextOrdinal++;
      Ops.push_back(TraceOp::alloc(Op.Size));
    } else {
      auto It = OrdinalOf.find(Op.Id);
      assert(It != OrdinalOf.end() && "reader admitted a free of a dead id");
      Ops.push_back(TraceOp::release(It->second));
      OrdinalOf.erase(It);
    }
  }
  if (R.failed()) {
    if (Error)
      *Error = R.error();
    return {};
  }
  return Ops;
}
