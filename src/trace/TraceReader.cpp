//===- trace/TraceReader.cpp - Streaming malloc-trace parser -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceReader.h"

#include <istream>
#include <sstream>

using namespace pcb;

namespace {
constexpr uint8_t TagAlloc = 1;
constexpr uint8_t TagFree = 2;
} // namespace

bool TraceReader::fail(const std::string &Reason) {
  Failed = true;
  if (Framing == TraceFraming::Text)
    Error = "line " + std::to_string(LineNo) + ": " + Reason;
  else
    Error = "record " + std::to_string(RecordNo) + ": " + Reason;
  return false;
}

bool TraceReader::readHeader() {
  HeaderRead = true;
  int First = IS.peek();
  if (First == std::char_traits<char>::eof())
    return fail("empty stream (missing pcbtrace header)");
  if (First == 'P') {
    // Binary framing: "PCBT" magic + version byte.
    Framing = TraceFraming::Binary;
    char Magic[4] = {};
    if (!IS.read(Magic, 4) || Magic[0] != 'P' || Magic[1] != 'C' ||
        Magic[2] != 'B' || Magic[3] != 'T')
      return fail("bad binary magic (expected \"PCBT\")");
    int Version = IS.get();
    if (Version == std::char_traits<char>::eof())
      return fail("truncated header (missing version byte)");
    if (unsigned(Version) != TraceFormatVersion)
      return fail("unsupported version " + std::to_string(Version) +
                  " (this build reads version " +
                  std::to_string(TraceFormatVersion) + ")");
    return true;
  }
  // Text framing: first line is `pcbtrace <version> <framing>`.
  Framing = TraceFraming::Text;
  std::string Line;
  if (!std::getline(IS, Line))
    return fail("empty stream (missing pcbtrace header)");
  ++LineNo;
  std::istringstream LS(Line);
  std::string Word, FramingWord;
  unsigned Version = 0;
  if (!(LS >> Word >> Version >> FramingWord) || Word != "pcbtrace")
    return fail("missing or malformed pcbtrace header");
  if (Version != TraceFormatVersion)
    return fail("unsupported version " + std::to_string(Version) +
                " (this build reads version " +
                std::to_string(TraceFormatVersion) + ")");
  TraceFraming Announced;
  if (!parseFraming(FramingWord, Announced) ||
      Announced != TraceFraming::Text)
    return fail("unknown framing '" + FramingWord + "'");
  std::string Rest;
  if (LS >> Rest)
    return fail("trailing characters '" + Rest + "' after header");
  return true;
}

bool TraceReader::apply(MallocOp &Op) {
  if (Op.isAlloc()) {
    if (Op.Size == 0)
      return fail("zero-word allocation (id " + std::to_string(Op.Id) + ")");
    auto [It, Inserted] = Live.emplace(Op.Id, Op.Size);
    if (!Inserted)
      return fail("allocation of id " + std::to_string(Op.Id) +
                  " while it is still live");
    ++NumAllocs;
    AllocWords += Op.Size;
    LiveWords += Op.Size;
    if (LiveWords > PeakLiveWords)
      PeakLiveWords = LiveWords;
    if (Live.size() > MaxLiveWindow)
      MaxLiveWindow = Live.size();
  } else {
    auto It = Live.find(Op.Id);
    if (It == Live.end())
      return fail("free of unknown or already-freed id " +
                  std::to_string(Op.Id));
    Op.Size = It->second;
    LiveWords -= It->second;
    Live.erase(It);
    ++NumFrees;
  }
  return true;
}

bool TraceReader::nextText(MallocOp &Op) {
  std::string Line;
  while (std::getline(IS, Line)) {
    ++LineNo;
    // Blank (including whitespace-only) and comment lines carry no
    // record; comments may be indented.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::istringstream LS(Line);
    char Tag = 0;
    LS >> Tag;
    switch (Tag) {
    case 'a':
      if (!(LS >> Op.Id >> Op.Size))
        return fail("truncated or malformed allocation record");
      Op.Op = MallocOp::Kind::Alloc;
      break;
    case 'f':
      if (!(LS >> Op.Id))
        return fail("truncated or malformed free record");
      Op.Op = MallocOp::Kind::Free;
      Op.Size = 0;
      break;
    default:
      return fail(std::string("unknown record type '") + Tag + "'");
    }
    std::string Rest;
    if (LS >> Rest)
      return fail("trailing characters '" + Rest + "'");
    return apply(Op);
  }
  Done = true;
  return false;
}

bool TraceReader::readVarint(uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    int Byte = IS.get();
    if (Byte == std::char_traits<char>::eof())
      return fail("truncated varint");
    V |= uint64_t(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0)
      return true;
  }
  return fail("varint overflow (more than 64 bits)");
}

bool TraceReader::nextBinary(MallocOp &Op) {
  int Tag = IS.get();
  if (Tag == std::char_traits<char>::eof()) {
    Done = true;
    return false;
  }
  ++RecordNo;
  switch (uint8_t(Tag)) {
  case TagAlloc:
    Op.Op = MallocOp::Kind::Alloc;
    if (!readVarint(Op.Id) || !readVarint(Op.Size))
      return false;
    break;
  case TagFree:
    Op.Op = MallocOp::Kind::Free;
    Op.Size = 0;
    if (!readVarint(Op.Id))
      return false;
    break;
  default:
    return fail("unknown record tag " + std::to_string(Tag));
  }
  return apply(Op);
}

bool TraceReader::next(MallocOp &Op) {
  if (Failed || Done)
    return false;
  if (!HeaderRead && !readHeader())
    return false;
  return Framing == TraceFraming::Text ? nextText(Op) : nextBinary(Op);
}
