//===- trace/TraceFormat.h - The malloc-trace wire format -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The malloc-trace format: a versioned header followed by a flat stream
/// of allocation-level operations, in the style of the classic
/// malloc/free test-suite logs. Two framings carry the same records:
///
///   text    `pcbtrace 1 text` header, then one record per line —
///           `a <id> <size>` allocates <size> words under trace id <id>,
///           `f <id>` frees it. `#` comments and blank lines are skipped.
///
///   binary  magic "PCBT" + a version byte, then tagged records: a tag
///           byte (1 = alloc, 2 = free) followed by ULEB128-encoded id
///           (and size, for allocs). Roughly 3-6 bytes per op, so a
///           million-op trace is a few megabytes.
///
/// Trace ids name *allocations*, not addresses: an id may be reused after
/// it is freed (real malloc logs recycle slot numbers). Placement is the
/// manager's business; a trace records only the program's schedule, which
/// is what makes one trace replayable under every policy and budget
/// controller.
///
/// TraceWriter emits either framing behind one call surface; the
/// streaming parser lives in trace/TraceReader.h.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TRACE_TRACEFORMAT_H
#define PCBOUND_TRACE_TRACEFORMAT_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace pcb {

/// One allocation-level trace operation.
struct MallocOp {
  enum class Kind : uint8_t { Alloc, Free } Op = Kind::Alloc;
  /// Trace id of the object (allocation slot, reusable after a free).
  uint64_t Id = 0;
  /// Words allocated. Filled in for frees too (from the live window), so
  /// consumers can account live volume without their own id map.
  uint64_t Size = 0;

  bool isAlloc() const { return Op == Kind::Alloc; }
};

/// The two encodings of the format.
enum class TraceFraming : uint8_t { Text, Binary };

/// "text" or "binary".
std::string framingName(TraceFraming F);

/// Parses a framing name; returns false on an unknown name.
bool parseFraming(const std::string &Name, TraceFraming &F);

/// The format version this build reads and writes.
inline constexpr unsigned TraceFormatVersion = 1;

/// Serializes a malloc trace in either framing. The header is written by
/// the constructor; records append in call order. The caller owns the
/// stream (and must have opened it in binary mode for the binary framing).
class TraceWriter {
public:
  TraceWriter(std::ostream &OS, TraceFraming F);

  void alloc(uint64_t Id, uint64_t Size);
  void free(uint64_t Id);
  void record(const MallocOp &Op);

  /// Comment line; records nothing in the binary framing.
  void comment(const std::string &Text);

  TraceFraming framing() const { return Framing; }
  uint64_t opsWritten() const { return Ops; }

  /// True while every write has succeeded at the stream level.
  bool good() const;

private:
  void putVarint(uint64_t V);

  std::ostream &OS;
  TraceFraming Framing;
  uint64_t Ops = 0;
};

} // namespace pcb

#endif // PCBOUND_TRACE_TRACEFORMAT_H
