//===- trace/BudgetController.h - When to spend the budget ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's bound says how much compaction budget a c-partial manager
/// *has* (s/c words); a BudgetController decides *when* to spend it. The
/// controller sits between the manager's policy code and the ledger as a
/// spend gate (MemoryManager::setSpendGate): each tryMoveObject consults
/// it, and a denial makes the move fail exactly as an exhausted ledger
/// would, so every manager's budget-denied fallback path already handles
/// it. Managers whose compaction transactions pre-check the ledger and
/// then assume every move succeeds additionally consult the gate at
/// transaction start (MemoryManager::spendApproved): the gate is
/// constant within an execution step — observations happen only at step
/// boundaries — so approval there funds the whole transaction.
/// Observation is a pure function of HeapStats samples — never of
/// profiler state or the wall clock — so gated runs stay deterministic.
///
/// Three policies:
///
///   fixed        always allow — the managers' built-in triggers decide
///                alone, byte-identical to pre-controller behaviour.
///
///   periodic     allow only on every Period-th step; a time-sliced
///                "compact on schedule" baseline.
///
///   membalancer  the square-root rule of Kirisame et al., "Optimal Heap
///                Limits for Reducing Browser Memory Use": the optimal
///                heap slack of a program with live size L, live-size
///                growth rate g, and collection speed s is
///                E* = sqrt(c1 * L * g / s). Mapped to this model: slack
///                is footprint minus live words, g is a deterministic
///                EWMA of the live-size derivative, and 1/s is the mean
///                words moved per compaction transaction. While actual
///                slack is below E* the controller denies — fragmentation
///                is still within the optimal limit and moving now would
///                burn budget the growth rate says we will want later;
///                past E* it grants.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TRACE_BUDGETCONTROLLER_H
#define PCBOUND_TRACE_BUDGETCONTROLLER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pcb {

class Execution;
class Heap;
class MemoryManager;

/// One deterministic observation of the heap, fed to observe() after
/// every step (and once before the first).
struct BudgetSample {
  uint64_t Step = 0;
  uint64_t LiveWords = 0;
  uint64_t FootprintWords = 0; ///< HighWaterMark — HS so far
  uint64_t AllocatedWords = 0;
  uint64_t MovedWords = 0;
  uint64_t NumMoves = 0;
};

/// The sample describing \p H after step \p Step.
BudgetSample sampleFromHeap(const Heap &H, uint64_t Step);

/// Decides whether the manager may spend compaction budget right now.
class BudgetController {
public:
  virtual ~BudgetController();

  /// Factory name of the policy, e.g. "membalancer".
  virtual std::string name() const = 0;

  /// Feeds one heap observation; called after every execution step.
  virtual void observe(const BudgetSample &S) = 0;

  /// The decision as of the last observation. Pure.
  virtual bool allowSpend() const = 0;

  /// allowSpend() plus grant/denial accounting — what the spend gate
  /// calls, once per attempted move.
  bool consult();

  uint64_t grants() const { return NumGrants; }
  uint64_t denials() const { return NumDenials; }

private:
  uint64_t NumGrants = 0;
  uint64_t NumDenials = 0;
};

/// "fixed": always allow; the manager's own trigger is the only policy.
class FixedTriggerController : public BudgetController {
public:
  std::string name() const override { return "fixed"; }
  void observe(const BudgetSample &S) override { (void)S; }
  bool allowSpend() const override { return true; }
};

/// "periodic": allow only on steps congruent to 0 mod Period.
class PeriodicController : public BudgetController {
public:
  explicit PeriodicController(uint64_t Period)
      : Period(Period == 0 ? 1 : Period) {}

  std::string name() const override { return "periodic"; }
  void observe(const BudgetSample &S) override { Step = S.Step; }
  bool allowSpend() const override { return Step % Period == 0; }

private:
  uint64_t Period;
  uint64_t Step = 0;
};

/// "membalancer": the square-root rule; see the file comment.
class MemBalancerController : public BudgetController {
public:
  struct Options {
    /// The rule's tuning constant c1.
    double C1 = 1.0;
    /// EWMA weight of the newest live-growth sample.
    double Smoothing = 0.25;
    /// Floor on the slack target E*: below this much slack the heap is
    /// essentially unfragmented and a move reclaims nothing worth the
    /// budget, so the gate denies regardless of the growth signal.
    double MinSlackWords = 64.0;
  };

  MemBalancerController() = default;
  explicit MemBalancerController(const Options &O) : Opts(O) {}

  std::string name() const override { return "membalancer"; }
  void observe(const BudgetSample &S) override;
  bool allowSpend() const override;

  /// The current E* = max(MinSlackWords, sqrt(c1 * L * g / cost)).
  double slackTargetWords() const;
  double growthEwma() const { return Growth; }

private:
  Options Opts;
  bool HavePrev = false;
  uint64_t PrevLive = 0;
  uint64_t PrevStep = 0;
  double Growth = 0.0;    ///< EWMA of max(0, dLive/dStep)
  double MoveCost = 1.0;  ///< mean words per compaction transaction
  uint64_t Live = 0;
  uint64_t Slack = 0;     ///< footprint - live
};

/// Everything needed to build a controller, CLI- and config-friendly.
struct ControllerSpec {
  std::string Name = "fixed";
  uint64_t Period = 16;     ///< periodic
  double C1 = 1.0;          ///< membalancer
  double Smoothing = 0.25;  ///< membalancer
};

/// Every controller name, in the factory's canonical order.
const std::vector<std::string> &allControllerNames();

/// Builds the controller \p Spec names; asserts on an unknown name.
std::unique_ptr<BudgetController> createController(const ControllerSpec &Spec);

/// createController, but an unknown name returns nullptr and sets
/// \p Error to a message listing the valid names.
std::unique_ptr<BudgetController>
createControllerChecked(const ControllerSpec &Spec, std::string *Error);

/// Wires \p C into a run: installs the spend gate on \p MM, feeds the
/// pre-run sample, and registers a step observer on \p E so every step's
/// HeapStats reach the controller. \p C must outlive the execution.
void attachController(Execution &E, MemoryManager &MM, BudgetController &C);

} // namespace pcb

#endif // PCBOUND_TRACE_BUDGETCONTROLLER_H
