//===- trace/TraceRecorder.cpp - Capturing runs as traces ----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRecorder.h"

using namespace pcb;

void TraceRecorder::record(const TraceOp &Op) {
  if (Op.Op == TraceOp::Kind::Alloc)
    W.alloc(NextAllocOrdinal++, Op.Value);
  else
    W.free(Op.Value);
}

void TraceRecorder::record(const std::vector<TraceOp> &Ops) {
  for (const TraceOp &Op : Ops)
    record(Op);
}

std::function<void(const HeapEvent &)> TraceRecorder::heapTap() {
  return [this](const HeapEvent &E) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc:
      W.alloc(E.Id, E.Size);
      break;
    case HeapEvent::Kind::Free:
      W.free(E.Id);
      break;
    case HeapEvent::Kind::Move:
    case HeapEvent::Kind::StepEnd:
      break;
    }
  };
}
