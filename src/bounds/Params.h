//===- bounds/Params.h - Common bound parameters ----------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three parameters every bound in the paper is expressed in:
///   M — the maximum number of words the program may hold live at once;
///   n — the maximum object size (equivalently the ratio between the
///       largest and smallest allocatable object, the smallest being one
///       word);
///   c — the compaction quota: a c-partial memory manager may move at most
///       a 1/c fraction of all space allocated so far.
///
/// All sizes are in abstract heap words. The paper's realistic setting is
/// M = 256MB and n = 1MB, i.e. M = 2^28 and n = 2^20 words.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_PARAMS_H
#define PCBOUND_BOUNDS_PARAMS_H

#include "support/MathUtils.h"

#include <cstdint>

namespace pcb {

/// Parameters (M, n, c) of a bound instance.
struct BoundParams {
  /// Maximum simultaneously-live space, in words.
  uint64_t M = pow2(28);
  /// Maximum object size, in words. Must be a power of two >= 2.
  uint64_t N = pow2(20);
  /// Compaction quota denominator; the manager may move at most
  /// (total allocated)/C words. C > 1.
  double C = 100.0;

  /// log2(n), the number of doubling steps available to an adversary.
  unsigned logN() const { return log2Exact(N); }

  /// Returns true if the parameters are in the domain all formulas accept.
  bool valid() const {
    return M >= N && N >= 2 && isPowerOfTwo(N) && isPowerOfTwo(M) && C > 1.0;
  }
};

} // namespace pcb

#endif // PCBOUND_BOUNDS_PARAMS_H
