//===- bounds/CohenPetrankBounds.cpp - PLDI 2013 main results ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bounds/CohenPetrankBounds.h"

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/RobsonBounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pcb;

unsigned pcb::cohenPetrankMaxSigma(double C) {
  // 2^sigma <= 3c/4, sigma >= 1.
  double Limit = 0.75 * C;
  if (Limit < 2.0)
    return 0;
  return unsigned(std::floor(std::log2(Limit)));
}

/// The partial sum sum_{i=1..Sigma} i / (2^i - 1) from Lemma 4.5's bound
/// on the first-stage allocation volume s1.
static double stageOneSeries(unsigned Sigma) {
  double Sum = 0.0;
  for (unsigned I = 1; I <= Sigma; ++I)
    Sum += double(I) / (std::pow(2.0, double(I)) - 1.0);
  return Sum;
}

double pcb::cohenPetrankLowerWasteFactorForSigma(const BoundParams &P,
                                                 unsigned Sigma) {
  assert(P.valid() && "invalid bound parameters");
  assert(Sigma >= 1 && Sigma <= cohenPetrankMaxSigma(P.C) &&
         "sigma outside Theorem 1's admissible range");
  double TwoSigma = std::pow(2.0, double(Sigma));
  double A = 0.75 - TwoSigma / P.C;
  double L =
      (double(P.logN()) - 2.0 * double(Sigma) - 1.0) / (double(Sigma) + 1.0);
  double S1 = double(Sigma) + 1.0 - 0.5 * stageOneSeries(Sigma);
  double Numerator = (double(Sigma) + 2.0) / 2.0 - (TwoSigma / P.C) * S1 +
                     A * L - 2.0 * double(P.N) / double(P.M);
  double Denominator = 1.0 + A * L / TwoSigma;
  // The denominator is 1 + 2^{-sigma} * A * L; A >= 0 by admissibility and
  // L > -1, so it stays positive for every admissible sigma.
  assert(Denominator > 0.0 && "degenerate Theorem 1 denominator");
  return Numerator / Denominator;
}

unsigned pcb::cohenPetrankOptimalSigma(const BoundParams &P) {
  unsigned MaxSigma = cohenPetrankMaxSigma(P.C);
  unsigned Best = 0;
  double BestH = -1.0;
  for (unsigned Sigma = 1; Sigma <= MaxSigma; ++Sigma) {
    double H = cohenPetrankLowerWasteFactorForSigma(P, Sigma);
    if (H > BestH) {
      BestH = H;
      Best = Sigma;
    }
  }
  return Best;
}

double pcb::cohenPetrankLowerWasteFactor(const BoundParams &P) {
  unsigned Sigma = cohenPetrankOptimalSigma(P);
  if (Sigma == 0)
    return 1.0;
  return std::max(1.0, cohenPetrankLowerWasteFactorForSigma(P, Sigma));
}

double pcb::cohenPetrankLowerHeapWords(const BoundParams &P) {
  return cohenPetrankLowerWasteFactor(P) * double(P.M);
}

std::vector<double> pcb::cohenPetrankUpperSequence(const BoundParams &P) {
  assert(P.valid() && "invalid bound parameters");
  unsigned LogN = P.logN();
  std::vector<double> A;
  A.reserve(LogN + 1);
  A.push_back(1.0);
  // a_i = (1 - 1/c) * max_{j<i} 2^{j-i} a_j. Track max_j 2^j a_j so each
  // step is O(1).
  double MaxScaled = 1.0; // max over j of 2^j * a_j
  for (unsigned I = 1; I <= LogN; ++I) {
    double Ai = (1.0 - 1.0 / P.C) * MaxScaled / std::pow(2.0, double(I));
    A.push_back(Ai);
    MaxScaled = std::max(MaxScaled, Ai * std::pow(2.0, double(I)));
  }
  return A;
}

double pcb::cohenPetrankUpperHeapWords(const BoundParams &P) {
  assert(P.C > 0.5 * double(P.logN()) &&
         "Theorem 2 requires c > log2(n)/2");
  std::vector<double> A = cohenPetrankUpperSequence(P);
  double Floor = 1.0 / (4.0 - 2.0 / P.C);
  double Sum = 0.0;
  for (double Ai : A)
    Sum += std::max(Ai, Floor);
  return 2.0 * double(P.M) * Sum + 2.0 * double(P.N) * double(P.logN());
}

double pcb::cohenPetrankUpperWasteFactor(const BoundParams &P) {
  return cohenPetrankUpperHeapWords(P) / double(P.M);
}

double pcb::priorBestUpperWasteFactor(const BoundParams &P) {
  return std::min(benderskyPetrankUpperWasteFactor(P),
                  robsonGeneralWasteFactor(P));
}

double pcb::newBestUpperWasteFactor(const BoundParams &P) {
  double Prior = priorBestUpperWasteFactor(P);
  if (P.C <= 0.5 * double(P.logN()))
    return Prior;
  return std::min(Prior, cohenPetrankUpperWasteFactor(P));
}

double pcb::cohenPetrankAllocationFactor(const BoundParams &P,
                                         unsigned Sigma) {
  double H = cohenPetrankLowerWasteFactorForSigma(P, Sigma);
  return (1.0 - H / std::pow(2.0, double(Sigma))) / (double(Sigma) + 1.0);
}
