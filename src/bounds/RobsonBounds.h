//===- bounds/RobsonBounds.h - Robson 1971/1974 bounds ----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robson's classical matching bounds for memory managers that never move
/// objects (Section 2.2 of the paper):
///
///   min_A HS(A, Po) = M * (log2(n)/2 + 1) - n + 1     (lower, P2(M,n))
///   max_P HS(Ao, P) = M * (log2(n)/2 + 1) - n + 1     (upper, P2(M,n))
///
/// For programs with arbitrary object sizes, rounding every request to the
/// next power of two at most doubles the live space, giving the general
/// upper bound 2 * (M * (log2(n)/2 + 1) - n + 1).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_ROBSONBOUNDS_H
#define PCBOUND_BOUNDS_ROBSONBOUNDS_H

#include "bounds/Params.h"

namespace pcb {

/// Heap words any non-moving manager needs against Robson's bad program,
/// for programs in P2(M, n). Matching upper bound for Robson's allocator.
double robsonHeapWords(const BoundParams &P);

/// robsonHeapWords as a multiple of M (the "waste factor" axis used by the
/// paper's figures).
double robsonWasteFactor(const BoundParams &P);

/// Upper bound for arbitrary-size programs in P(M, n): round sizes up to
/// powers of two, doubling the bound.
double robsonGeneralHeapWords(const BoundParams &P);

/// robsonGeneralHeapWords as a multiple of M.
double robsonGeneralWasteFactor(const BoundParams &P);

/// The number of f_i-occupying objects guaranteed after step i of Robson's
/// program (Claim 4.9): at least M * (i + 2) / 2^(i+1).
double robsonOccupierLowerBound(uint64_t M, unsigned Step);

} // namespace pcb

#endif // PCBOUND_BOUNDS_ROBSONBOUNDS_H
