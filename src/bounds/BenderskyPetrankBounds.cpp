//===- bounds/BenderskyPetrankBounds.cpp - POPL 2011 bounds --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bounds/BenderskyPetrankBounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pcb;

double pcb::benderskyPetrankLowerHeapWords(const BoundParams &P) {
  assert(P.valid() && "invalid bound parameters");
  double M = double(P.M);
  double N = double(P.N);
  double LogN = double(P.logN());
  if (P.C <= 4.0 * LogN) {
    double Factor = std::min(P.C, LogN / (10.0 * std::log2(P.C + 1.0)));
    return M * Factor - 5.0 * N;
  }
  return (M / 6.0) * LogN / (std::log2(LogN) + 2.0) - N / 2.0;
}

double pcb::benderskyPetrankLowerWasteFactor(const BoundParams &P) {
  return std::max(1.0, benderskyPetrankLowerHeapWords(P) / double(P.M));
}

double pcb::benderskyPetrankUpperHeapWords(const BoundParams &P) {
  assert(P.valid() && "invalid bound parameters");
  return (P.C + 1.0) * double(P.M);
}

double pcb::benderskyPetrankUpperWasteFactor(const BoundParams &P) {
  return P.C + 1.0;
}
