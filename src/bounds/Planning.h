//===- bounds/Planning.h - Inverse bound queries ----------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The practitioner-facing direction of Theorem 1: instead of "given c,
/// how much waste can be forced", answer "given a waste budget, how much
/// compaction must I be able to afford". Theorem 1's h(M, n, c) is
/// monotone non-decreasing in c (less moving, more forced waste), so the
/// inverse is a well-defined threshold: the largest c — equivalently the
/// smallest moved fraction 1/c — whose guaranteed worst case stays at or
/// below the target.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_PLANNING_H
#define PCBOUND_BOUNDS_PLANNING_H

#include "bounds/Params.h"

namespace pcb {

/// Result of a planning query.
struct CompactionPlan {
  /// True when some admissible c meets the target at all (a target below
  /// the best achievable h is infeasible for any partial compactor).
  bool Feasible = false;
  /// The largest quota denominator c with h(M, n, c) <= TargetWaste.
  double MaxQuota = 0.0;
  /// The corresponding minimum moved fraction, 1 / MaxQuota.
  double MinMovedFraction = 1.0;
  /// h at that quota (<= the target when feasible).
  double AchievedLowerBound = 0.0;
};

/// Finds the weakest compaction requirement under which *no* adversary
/// can force more than \p TargetWaste times the live space — i.e. the
/// point on Figure 1's curve at height TargetWaste. Searches
/// c in [CMin, CMax] (defaults cover the paper's plotted range and
/// beyond). Note this is a *necessary* budget by Theorem 1; achieving
/// the target also needs a good enough manager (Theorem 2 territory).
CompactionPlan planCompactionBudget(uint64_t M, uint64_t N,
                                    double TargetWaste, double CMin = 2.0,
                                    double CMax = 4096.0);

} // namespace pcb

#endif // PCBOUND_BOUNDS_PLANNING_H
