//===- bounds/Planning.cpp - Inverse bound queries ------------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bounds/Planning.h"

#include "bounds/CohenPetrankBounds.h"

#include <cassert>

using namespace pcb;

static double lowerBoundAt(uint64_t M, uint64_t N, double C) {
  BoundParams P{M, N, C};
  return cohenPetrankLowerWasteFactor(P);
}

CompactionPlan pcb::planCompactionBudget(uint64_t M, uint64_t N,
                                         double TargetWaste, double CMin,
                                         double CMax) {
  assert(CMin >= 2.0 && CMin < CMax && "bad search range");
  CompactionPlan Plan;
  if (TargetWaste < 1.0)
    return Plan; // below even the trivial bound: never feasible

  // h is non-decreasing in c. If even the most generous budget (smallest
  // c) forces more than the target, no budget in range works.
  if (lowerBoundAt(M, N, CMin) > TargetWaste)
    return Plan;
  Plan.Feasible = true;

  if (lowerBoundAt(M, N, CMax) <= TargetWaste) {
    Plan.MaxQuota = CMax;
  } else {
    // Binary search for the last c with h(c) <= target. h is a step-ish
    // monotone function of c (sigma switches create plateaus), so plain
    // bisection on the predicate is exact to the tolerance.
    double Lo = CMin, Hi = CMax;
    for (int Iter = 0; Iter != 64; ++Iter) {
      double Mid = 0.5 * (Lo + Hi);
      if (lowerBoundAt(M, N, Mid) <= TargetWaste)
        Lo = Mid;
      else
        Hi = Mid;
    }
    Plan.MaxQuota = Lo;
  }
  Plan.MinMovedFraction = 1.0 / Plan.MaxQuota;
  Plan.AchievedLowerBound = lowerBoundAt(M, N, Plan.MaxQuota);
  return Plan;
}
