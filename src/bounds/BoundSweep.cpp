//===- bounds/BoundSweep.cpp - Figure series generators ------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundSweep.h"

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"

#include <cassert>
#include <limits>

using namespace pcb;

std::vector<Fig1Point> pcb::sweepFig1(uint64_t M, uint64_t N, unsigned CMin,
                                      unsigned CMax) {
  assert(CMin >= 2 && CMin <= CMax && "bad c range");
  std::vector<Fig1Point> Series;
  Series.reserve(CMax - CMin + 1);
  for (unsigned C = CMin; C <= CMax; ++C) {
    BoundParams P{M, N, double(C)};
    Fig1Point Point;
    Point.C = double(C);
    Point.NewLower = cohenPetrankLowerWasteFactor(P);
    Point.Sigma = cohenPetrankOptimalSigma(P);
    Point.PriorLower = benderskyPetrankLowerWasteFactor(P);
    Point.RobsonLower = robsonWasteFactor(P);
    Series.push_back(Point);
  }
  return Series;
}

std::vector<Fig2Point> pcb::sweepFig2(double C, unsigned LogNMin,
                                      unsigned LogNMax,
                                      uint64_t LiveToMaxRatio) {
  assert(LogNMin >= 1 && LogNMin <= LogNMax && LogNMax < 34 && "bad n range");
  assert(isPowerOfTwo(LiveToMaxRatio) && "ratio must be a power of two");
  std::vector<Fig2Point> Series;
  Series.reserve(LogNMax - LogNMin + 1);
  for (unsigned LogN = LogNMin; LogN <= LogNMax; ++LogN) {
    uint64_t N = pow2(LogN);
    BoundParams P{LiveToMaxRatio * N, N, C};
    Fig2Point Point;
    Point.N = N;
    Point.LogN = LogN;
    Point.NewLower = cohenPetrankLowerWasteFactor(P);
    Point.Sigma = cohenPetrankOptimalSigma(P);
    Point.PriorLower = benderskyPetrankLowerWasteFactor(P);
    Series.push_back(Point);
  }
  return Series;
}

std::vector<Fig3Point> pcb::sweepFig3(uint64_t M, uint64_t N, unsigned CMin,
                                      unsigned CMax) {
  assert(CMin >= 2 && CMin <= CMax && "bad c range");
  std::vector<Fig3Point> Series;
  Series.reserve(CMax - CMin + 1);
  for (unsigned C = CMin; C <= CMax; ++C) {
    BoundParams P{M, N, double(C)};
    Fig3Point Point;
    Point.C = double(C);
    Point.NewUpper = P.C > 0.5 * double(P.logN())
                         ? cohenPetrankUpperWasteFactor(P)
                         : std::numeric_limits<double>::quiet_NaN();
    Point.PriorUpper = priorBestUpperWasteFactor(P);
    Point.BestUpper = newBestUpperWasteFactor(P);
    Series.push_back(Point);
  }
  return Series;
}
