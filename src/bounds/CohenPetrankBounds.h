//===- bounds/CohenPetrankBounds.h - PLDI 2013 main results -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two theorems.
///
/// Theorem 1 (lower bound). For every c-partial memory manager A and every
/// M > n > 1 there is a program PF in P2(M, n) with HS(A, PF) >= M * h,
/// where, for any integer sigma with 1 <= sigma <= log2(3c/4),
///
///     A  = 3/4 - 2^sigma / c
///     L  = (log2(n) - 2*sigma - 1) / (sigma + 1)
///     S1 = sigma + 1 - (1/2) * sum_{i=1..sigma} i / (2^i - 1)
///
///     h(sigma) = [ (sigma+2)/2 - (2^sigma/c) * S1 + A*L - 2n/M ]
///                / [ 1 + 2^{-sigma} * A * L ]
///
/// and h is the maximum of h(sigma) over admissible sigma. The density
/// parameter of the adversary is 2^{-sigma}; the constraint
/// 2^sigma <= 3c/4 keeps chunk evacuation unprofitable for the manager.
/// h(sigma) follows from the paper's own algebra (Lemmas 4.5 and 4.6
/// combined with the budget identity q1 + q2 <= (s1 + s2)/c) solved for h
/// at equality. Validated against the values the paper states in prose:
/// h = 2 at c = 10, ~3.15 at c = 50, ~3.5 at c = 100 for M = 2^28,
/// n = 2^20.
///
/// Theorem 2 (upper bound). For c > log2(n)/2 there is a c-partial manager
/// AC with, for every program in P(M, n),
///
///     HS(AC, P) <= 2M * sum_{i=0..log2(n)} max(a_i, 1/(4 - 2/c))
///                  + 2n * log2(n)
///
/// where a_0 = 1 and a_i = (1 - 1/c) * max_{j<i} 2^{j-i} * a_j. The
/// conference text's rendering of this recursion is partially corrupted;
/// this is our documented best-effort reconstruction (see DESIGN.md §3)
/// and EXPERIMENTS.md reports how its curve compares with the paper's
/// qualitative description of Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_COHENPETRANKBOUNDS_H
#define PCBOUND_BOUNDS_COHENPETRANKBOUNDS_H

#include "bounds/Params.h"

#include <vector>

namespace pcb {

/// Largest admissible density exponent: floor(log2(3c/4)). Returns 0 when
/// even sigma = 1 is inadmissible (c < 8/3).
unsigned cohenPetrankMaxSigma(double C);

/// The value h(sigma) of Theorem 1 for a specific density exponent.
/// \p Sigma must satisfy 1 <= Sigma <= cohenPetrankMaxSigma(P.C).
double cohenPetrankLowerWasteFactorForSigma(const BoundParams &P,
                                            unsigned Sigma);

/// The sigma maximizing h(sigma); 0 when no sigma is admissible.
unsigned cohenPetrankOptimalSigma(const BoundParams &P);

/// Theorem 1's waste factor h = max over sigma of h(sigma), clamped below
/// at the trivial 1.0 (a heap of size M is always necessary).
double cohenPetrankLowerWasteFactor(const BoundParams &P);

/// Theorem 1's bound in heap words: M * h.
double cohenPetrankLowerHeapWords(const BoundParams &P);

/// The sequence a_0 .. a_{log2 n} of Theorem 2's recursion.
std::vector<double> cohenPetrankUpperSequence(const BoundParams &P);

/// Theorem 2's upper bound in heap words. Requires C > log2(n)/2.
double cohenPetrankUpperHeapWords(const BoundParams &P);

/// Theorem 2's bound as a waste factor (heap words / M).
double cohenPetrankUpperWasteFactor(const BoundParams &P);

/// The best upper bound known before this paper:
/// min((c+1) * M, 2 * Robson) as a waste factor.
double priorBestUpperWasteFactor(const BoundParams &P);

/// The best upper bound including Theorem 2, as a waste factor.
double newBestUpperWasteFactor(const BoundParams &P);

/// The per-step allocation budget factor x used by the PF adversary's
/// second stage (Algorithm 1): x = (1 - 2^{-sigma} * h) / (sigma + 1).
double cohenPetrankAllocationFactor(const BoundParams &P, unsigned Sigma);

} // namespace pcb

#endif // PCBOUND_BOUNDS_COHENPETRANKBOUNDS_H
