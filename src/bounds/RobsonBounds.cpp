//===- bounds/RobsonBounds.cpp - Robson 1971/1974 bounds -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bounds/RobsonBounds.h"

#include <cassert>

using namespace pcb;

double pcb::robsonHeapWords(const BoundParams &P) {
  assert(P.valid() && "invalid bound parameters");
  double M = double(P.M);
  double N = double(P.N);
  return M * (0.5 * P.logN() + 1.0) - N + 1.0;
}

double pcb::robsonWasteFactor(const BoundParams &P) {
  return robsonHeapWords(P) / double(P.M);
}

double pcb::robsonGeneralHeapWords(const BoundParams &P) {
  return 2.0 * robsonHeapWords(P);
}

double pcb::robsonGeneralWasteFactor(const BoundParams &P) {
  return robsonGeneralHeapWords(P) / double(P.M);
}

double pcb::robsonOccupierLowerBound(uint64_t M, unsigned Step) {
  assert(Step < 63 && "step out of range");
  return double(M) * double(Step + 2) / double(pow2(Step + 1));
}
