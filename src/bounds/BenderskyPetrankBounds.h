//===- bounds/BenderskyPetrankBounds.h - POPL 2011 bounds -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prior-art bounds of Bendersky & Petrank, "Space overhead bounds for
/// dynamic memory management with partial compaction" (POPL 2011), quoted
/// in Section 2.2 of the Cohen-Petrank paper:
///
///   Upper: a simple compacting collector Ac in A(c) with
///          max_P HS(Ac, P) = (c + 1) * M.
///   Lower: a bad program PW with
///          min_A HS(A, PW) >= M * min(c, log(n)/(10*log(c+1))) - 5n
///              for c <= 4*log(n), and
///          min_A HS(A, PW) >= (M/6) * log(n)/(loglog(n) + 2) - n/2
///              for c > 4*log(n).
///
/// At the paper's realistic parameters (M = 2^28, n = 2^20 words) this
/// lower bound stays below the trivial bound M throughout c = 10..100 —
/// the motivating observation of the Cohen-Petrank paper, and the property
/// our Figure 1 bench reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_BENDERSKYPETRANKBOUNDS_H
#define PCBOUND_BOUNDS_BENDERSKYPETRANKBOUNDS_H

#include "bounds/Params.h"

namespace pcb {

/// Heap words forced by the POPL 2011 bad program PW. May be below M (the
/// trivial bound) at practical parameters; callers wanting the effective
/// bound should clamp with max(M, ...).
double benderskyPetrankLowerHeapWords(const BoundParams &P);

/// Lower bound as a waste factor, clamped below at the trivial 1.0.
double benderskyPetrankLowerWasteFactor(const BoundParams &P);

/// The (c + 1) * M upper bound in heap words.
double benderskyPetrankUpperHeapWords(const BoundParams &P);

/// Upper bound as a waste factor (c + 1).
double benderskyPetrankUpperWasteFactor(const BoundParams &P);

} // namespace pcb

#endif // PCBOUND_BOUNDS_BENDERSKYPETRANKBOUNDS_H
