//===- bounds/BoundSweep.h - Figure series generators -----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sweeps producing exactly the series plotted in the paper's
/// evaluation figures. Each sweep returns one row per x-axis point with
/// every curve of that figure, so the benches and tests share one source
/// of truth.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_BOUNDS_BOUNDSWEEP_H
#define PCBOUND_BOUNDS_BOUNDSWEEP_H

#include "bounds/Params.h"

#include <vector>

namespace pcb {

/// One point of Figure 1: lower bounds on the waste factor versus c at
/// fixed M and n.
struct Fig1Point {
  double C;
  /// Theorem 1's h (clamped at the trivial 1).
  double NewLower;
  /// The sigma achieving it (0 when the trivial bound applies).
  unsigned Sigma;
  /// Bendersky-Petrank POPL 2011 lower bound (clamped at 1).
  double PriorLower;
  /// Robson's no-compaction lower bound, for context.
  double RobsonLower;
};

/// Figure 1: c = CMin..CMax (step 1) at fixed M, n (paper: M = 2^28,
/// n = 2^20, c = 10..100).
std::vector<Fig1Point> sweepFig1(uint64_t M, uint64_t N, unsigned CMin,
                                 unsigned CMax);

/// One point of Figure 2: lower bound versus the maximum object size n,
/// with M = LiveToMaxRatio * n and c fixed.
struct Fig2Point {
  uint64_t N;
  unsigned LogN;
  double NewLower;
  unsigned Sigma;
  double PriorLower;
};

/// Figure 2: n = 2^LogNMin .. 2^LogNMax, M = LiveToMaxRatio * n, fixed c
/// (paper: c = 100, M = 256 n, n = 1KB..1GB i.e. logN = 10..30).
std::vector<Fig2Point> sweepFig2(double C, unsigned LogNMin, unsigned LogNMax,
                                 uint64_t LiveToMaxRatio);

/// One point of Figure 3: upper bounds on the waste factor versus c.
struct Fig3Point {
  double C;
  /// Theorem 2's bound (NaN when c <= log2(n)/2, outside its domain).
  double NewUpper;
  /// min((c+1) M, 2 * Robson) / M — the best previously known.
  double PriorUpper;
  /// The combined best after this paper.
  double BestUpper;
};

/// Figure 3: c = CMin..CMax at fixed M, n (paper: M = 2^28, n = 2^20,
/// c = 10..100).
std::vector<Fig3Point> sweepFig3(uint64_t M, uint64_t N, unsigned CMin,
                                 unsigned CMax);

} // namespace pcb

#endif // PCBOUND_BOUNDS_BOUNDSWEEP_H
