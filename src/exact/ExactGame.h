//===- exact/ExactGame.h - The allocation game on a tiny arena --*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State model for the exact small-parameter allocation game. The paper's
/// quantity HS(A, P) is a two-player game value: the adversary (program)
/// picks allocations and frees, the manager picks placements and
/// compaction moves, and the score is the footprint the manager is forced
/// to touch. For tiny parameters the game is solved exactly by
/// reformulating it over a fixed *arena* of W cells:
///
///   exact(M, n, c) = min { W : the manager can serve every P2(M, n)
///                              request sequence forever inside W cells }
///
/// which equals the minimax heap size because footprint is monotone — the
/// adversary wins arena W exactly when it can force some placement outside
/// [0, W), i.e. force HS >= W + 1. Dropping the historical footprint from
/// the state (only the arena bound remains) is what makes the state space
/// finite.
///
/// A layout is two W-bit boards: Occ (cell is covered by a live object)
/// and Starts (a live object begins here). Starts ⊆ Occ; object identity
/// beyond the boundary structure is deliberately erased — which object of
/// a given extent sits where never matters to either player, so this *is*
/// the canonicalization. The arena is end-to-end symmetric, so layouts are
/// further reduced modulo mirror reflection.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_EXACT_EXACTGAME_H
#define PCBOUND_EXACT_EXACTGAME_H

#include "support/BitOps.h"
#include "support/MathUtils.h"

#include <bit>
#include <cassert>
#include <cstdint>

namespace pcb {

/// Parameters of one exact-game cell. Unlike BoundParams these are tiny
/// and need not be powers of two (the closed-form bounds require that,
/// the solver does not); the quota denominator is an *integer* c, with 0
/// meaning c = infinity (a non-moving manager — note this is the opposite
/// convention from CompactionLedger, where C <= 0 means *unlimited*
/// compaction).
struct ExactParams {
  uint64_t M = 4; ///< bound on live words
  uint64_t N = 2; ///< max object size; request sizes are powers of two <= N
  uint64_t C = 0; ///< integer quota denominator; 0 = infinity (non-moving)
  /// Saturating cap on the banked compaction budget (see DESIGN.md §12:
  /// capping only ever weakens the manager, so upper-bound certificates
  /// stay sound). 0 selects the default, M.
  uint64_t BudgetCap = 0;
  /// Largest arena to try before giving up; 0 selects ceil(Robson) + 2.
  unsigned MaxArena = 0;
  /// Abort an arena whose reachable state space exceeds this many nodes;
  /// 0 selects the default (4M).
  uint64_t NodeLimit = 0;

  uint64_t budgetCap() const {
    uint64_t Cap = BudgetCap == 0 ? M : BudgetCap;
    return Cap < 4095 ? Cap : 4095;
  }

  uint64_t nodeLimit() const {
    return NodeLimit == 0 ? 4000000 : NodeLimit;
  }

  /// Robson's matching formula for P2 programs, M * (log2(n)/2 + 1) - n
  /// + 1, evaluated leniently (any M, any power-of-two n >= 1). This is
  /// the expected exact value at c = infinity and the default scan limit.
  double robsonWords() const {
    return double(M) * (0.5 * double(log2Floor(N)) + 1.0) - double(N) + 1.0;
  }

  unsigned maxArena() const {
    uint64_t Hi = MaxArena != 0 ? MaxArena : uint64_t(robsonWords() + 2.0);
    if (Hi < M)
      Hi = M;
    return unsigned(Hi < 30 ? Hi : 30);
  }

  bool valid() const {
    return M >= 1 && M <= 24 && N >= 1 && N <= 16 && isPowerOfTwo(N) &&
           N <= M && budgetCap() <= 4095 && maxArena() <= 30;
  }
};

/// A layout over an arena of W <= 30 cells: occupancy plus object-start
/// boundaries. Starts ⊆ Occ; every maximal run of occupied cells is
/// partitioned into objects by its start bits.
struct ArenaLayout {
  uint32_t Occ = 0;
  uint32_t Starts = 0;

  friend bool operator==(ArenaLayout A, ArenaLayout B) {
    return A.Occ == B.Occ && A.Starts == B.Starts;
  }
};

inline uint64_t packLayout(ArenaLayout L) {
  return (uint64_t(L.Starts) << 32) | L.Occ;
}

inline ArenaLayout unpackLayout(uint64_t Bits) {
  return {uint32_t(Bits & 0xffffffffu), uint32_t(Bits >> 32)};
}

inline unsigned layoutLiveWords(ArenaLayout L) {
  return unsigned(std::popcount(L.Occ));
}

/// True when [Pos, Pos + Size) lies inside the arena and is free.
inline bool layoutFits(ArenaLayout L, unsigned W, unsigned Size,
                       unsigned Pos) {
  if (Pos + Size > W)
    return false;
  uint32_t Range = lowMask32(Size) << Pos;
  return (L.Occ & Range) == 0;
}

inline ArenaLayout layoutPlace(ArenaLayout L, unsigned Size, unsigned Pos) {
  uint32_t Range = lowMask32(Size) << Pos;
  assert((L.Occ & Range) == 0 && "placement target not free");
  return {L.Occ | Range, L.Starts | (1u << Pos)};
}

inline ArenaLayout layoutRemove(ArenaLayout L, unsigned Size, unsigned Pos) {
  uint32_t Range = lowMask32(Size) << Pos;
  assert((L.Starts >> Pos) & 1u && "no object starts here");
  assert((L.Occ & Range) == Range && "object extent not occupied");
  return {L.Occ & ~Range, L.Starts & ~(1u << Pos)};
}

/// Size of the object starting at \p Start: the run of occupied cells
/// from Start up to (exclusive) the next start bit, free cell, or arena
/// end.
inline unsigned layoutObjectSize(ArenaLayout L, unsigned W, unsigned Start) {
  assert((L.Starts >> Start) & 1u && "no object starts here");
  unsigned Size = 1;
  for (unsigned J = Start + 1;
       J < W && ((L.Occ >> J) & 1u) && !((L.Starts >> J) & 1u); ++J)
    ++Size;
  return Size;
}

/// Calls \p Fn(Start, Size) for every object, in address order.
template <typename FnT>
void forEachLayoutObject(ArenaLayout L, unsigned W, FnT Fn) {
  uint32_t S = L.Starts;
  while (S != 0) {
    unsigned Start = unsigned(std::countr_zero(S));
    S &= S - 1;
    Fn(Start, layoutObjectSize(L, W, Start));
  }
}

/// The layout reflected end-to-end: an object at [i, i + s) maps to
/// [W - i - s, W - i).
inline ArenaLayout mirrorLayout(ArenaLayout L, unsigned W) {
  ArenaLayout R;
  forEachLayoutObject(L, W, [&](unsigned Start, unsigned Size) {
    unsigned NewStart = W - Start - Size;
    R.Occ |= lowMask32(Size) << NewStart;
    R.Starts |= 1u << NewStart;
  });
  return R;
}

/// The canonical representative of {L, mirror(L)}: the one with the
/// smaller packed encoding. The game dynamics are mirror-invariant, so
/// states may be identified up to reflection.
inline ArenaLayout canonicalLayout(ArenaLayout L, unsigned W) {
  ArenaLayout Mir = mirrorLayout(L, W);
  return packLayout(Mir) < packLayout(L) ? Mir : L;
}

/// One move of the solved game's witness trace, in arena coordinates.
/// Alloc combines the adversary's request with the manager's placement
/// reply; Move is a manager compaction step funded by the banked budget;
/// Free is an adversary release naming the object by its start address.
/// The final Alloc of a witness is the forced overflow — its placement
/// ends beyond the arena, demonstrating HS >= arena + 1.
struct WitnessOp {
  enum class Kind : uint8_t { Alloc, Free, Move };
  Kind Op = Kind::Alloc;
  unsigned Size = 0;
  unsigned Addr = 0; ///< placement (Alloc) or object start (Free, Move src)
  unsigned To = 0;   ///< move target (Move only)
};

} // namespace pcb

#endif // PCBOUND_EXACT_EXACTGAME_H
