//===- exact/MinimaxSolver.h - Exact game-value computation -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves the arena game of ExactGame.h exactly. One ArenaSolver decides a
/// single arena width W: it enumerates every reachable canonical state
/// into a transposition table, then computes the adversary's winning
/// region as the least fixpoint of
///
///   WIN(adversary node) = some successor is WIN
///   WIN(manager node)   = every successor is WIN   (vacuously true for a
///                         stuck manager: no placement fits and no move is
///                         fundable — the forced overflow)
///
/// by Jacobi value-iteration sweeps. Plays may cycle through adversary
/// nodes (allocate/free loops), so a naive memoized minimax DFS would be
/// unsound; the fixpoint iteration handles cycles correctly (an infinite
/// play never overflows, i.e. the manager wins it, which is exactly the
/// all-false initialization). Manager response phases cannot cycle: every
/// compaction move strictly decreases the banked budget.
///
/// solveExact() then scans W upward from M. Game value is monotone in W
/// (an arena-W adversary win embeds into every smaller arena), so the
/// first W the manager survives is the exact minimax heap size, and the
/// scan doubles as alpha-beta pruning on the heap-size score: arenas
/// below the answer are exactly the pruned "score <= alpha" subtrees, and
/// no arena above the answer is ever explored.
///
/// The sweep level at which a node entered the winning region is a
/// progress measure, so an optimal adversary strategy (descend levels;
/// the manager resists by ascending to the max-level successor) falls out
/// of the solved table as a finite replayable witness trace.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_EXACT_MINIMAXSOLVER_H
#define PCBOUND_EXACT_MINIMAXSOLVER_H

#include "exact/ExactGame.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pcb {

/// What one arena's solve established.
struct ArenaOutcome {
  unsigned Arena = 0;
  bool AdversaryWins = false;
  /// True when the node or edge limit was hit; AdversaryWins is then
  /// meaningless and the whole cell is reported unsolved.
  bool Aborted = false;
  uint64_t Nodes = 0;
  uint64_t Edges = 0;
  unsigned Sweeps = 0;
};

/// The solved cell: exact minimax heap size plus per-arena statistics and
/// the adversary's forcing witness on the largest losing arena.
struct ExactResult {
  bool Solved = false;
  bool Aborted = false;
  uint64_t ExactWords = 0;
  std::vector<ArenaOutcome> Arenas;
  /// Forcing trace on arena ExactWords - 1: replaying it against the
  /// optimally-resisting manager ends in an overflow placement, proving
  /// HS >= ExactWords for *every* manager of the modelled class.
  std::vector<WitnessOp> Witness;
};

/// Decides one arena width. Construct, solve(), then (if the adversary
/// wins) extractWitness().
class ArenaSolver {
public:
  ArenaSolver(const ExactParams &P, unsigned W);

  ArenaOutcome solve();

  /// The adversary's optimal forcing trace, ending with the overflow
  /// allocation. Only valid after solve() returned AdversaryWins.
  std::vector<WitnessOp> extractWitness() const;

private:
  /// A raw (possibly non-canonical) game state. Pending == 0 is an
  /// adversary node; Pending == s is a manager node that must place a
  /// pending request of s words. Bank/Residue track the integer
  /// compaction budget: Bank words are spendable now, Residue < C words
  /// of allocation have not yet funded a whole word.
  struct RawNode {
    ArenaLayout L;
    uint32_t Bank = 0;
    uint32_t Residue = 0;
    uint32_t Pending = 0;
  };

  /// Canonical transposition-table key: mirror-reduced layout plus the
  /// packed budget ledger and phase.
  struct NodeKey {
    uint64_t Layout = 0;
    uint32_t Aux = 0;
    friend bool operator==(const NodeKey &A, const NodeKey &B) {
      return A.Layout == B.Layout && A.Aux == B.Aux;
    }
  };

  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      uint64_t X = K.Layout + 0x9e3779b97f4a7c15ull * (uint64_t(K.Aux) + 1);
      X ^= X >> 33;
      X *= 0xff51afd7ed558ccdull;
      X ^= X >> 29;
      return size_t(X);
    }
  };

  struct Succ {
    RawNode Node;
    WitnessOp Op;
    bool HasOp = false;
  };

  NodeKey canonicalKey(const RawNode &N) const;
  static RawNode decode(const NodeKey &K);
  /// Budget accrual after placing \p Size words (no-op at c = infinity).
  void accrue(unsigned Size, uint32_t &Bank, uint32_t &Residue) const;
  /// All legal successors of \p N with their witness-op labels, in a
  /// deterministic order (frees by address, then requests by size;
  /// placements by address, then moves by source and target address).
  void successors(const RawNode &N, std::vector<Succ> &Out) const;
  /// Index of \p N's canonical key, inserting a fresh node if new.
  uint32_t internNode(const RawNode &N);
  bool enumerate();
  void sweep();
  /// Lowest placement of \p Size that avoids all live cells when every
  /// address >= W is free: the overflow placement of a stuck manager.
  unsigned overflowPlacement(ArenaLayout L, unsigned Size) const;

  ExactParams P;
  unsigned W;
  ArenaOutcome Out;

  std::vector<NodeKey> Keys;
  std::unordered_map<NodeKey, uint32_t, NodeKeyHash> Index;
  /// Forward successor lists in CSR form, deduplicated per node.
  std::vector<uint64_t> SuccOff;
  std::vector<uint32_t> Succs;
  std::vector<uint8_t> Win;
  /// Sweep number at which a node entered the winning region (the
  /// witness progress measure); 0 = not winning.
  std::vector<uint32_t> Level;
};

/// Computes the exact minimax heap size for \p P by the monotone arena
/// scan. Unsolved (Solved == false) when an arena aborts on the node
/// limit or the scan exhausts maxArena() without a manager win.
ExactResult solveExact(const ExactParams &P);

} // namespace pcb

#endif // PCBOUND_EXACT_MINIMAXSOLVER_H
