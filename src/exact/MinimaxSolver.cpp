//===- exact/MinimaxSolver.cpp - Exact game-value computation -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "exact/MinimaxSolver.h"

#include <algorithm>
#include <memory>

using namespace pcb;

ArenaSolver::ArenaSolver(const ExactParams &P, unsigned W) : P(P), W(W) {
  assert(P.valid() && "invalid exact-game parameters");
  assert(W <= 30 && "arena too wide for the 32-bit boards");
}

ArenaSolver::NodeKey ArenaSolver::canonicalKey(const RawNode &N) const {
  assert(N.Bank <= 0xfff && N.Residue <= 0xfff && N.Pending <= 0xff);
  return {packLayout(canonicalLayout(N.L, W)),
          N.Bank | (N.Residue << 12) | (N.Pending << 24)};
}

ArenaSolver::RawNode ArenaSolver::decode(const NodeKey &K) {
  RawNode N;
  N.L = unpackLayout(K.Layout);
  N.Bank = K.Aux & 0xfff;
  N.Residue = (K.Aux >> 12) & 0xfff;
  N.Pending = K.Aux >> 24;
  return N;
}

void ArenaSolver::accrue(unsigned Size, uint32_t &Bank,
                         uint32_t &Residue) const {
  if (P.C == 0) {
    // c = infinity: the budget is identically zero, so the solved value
    // is exact for non-moving managers with no cap approximation at all.
    Bank = 0;
    Residue = 0;
    return;
  }
  uint64_t Carry = Residue + Size;
  uint64_t NewBank = Bank + Carry / P.C;
  uint64_t Cap = P.budgetCap();
  Bank = uint32_t(NewBank < Cap ? NewBank : Cap);
  Residue = uint32_t(Carry % P.C);
}

void ArenaSolver::successors(const RawNode &N, std::vector<Succ> &Out) const {
  Out.clear();
  if (N.Pending == 0) {
    // Adversary to move: free any live object, or request any power-of-two
    // size that keeps the live volume within M.
    forEachLayoutObject(N.L, W, [&](unsigned Start, unsigned Size) {
      Succ S;
      S.Node = N;
      S.Node.L = layoutRemove(N.L, Size, Start);
      S.Op = {WitnessOp::Kind::Free, Size, Start, 0};
      S.HasOp = true;
      Out.push_back(S);
    });
    unsigned Live = layoutLiveWords(N.L);
    for (uint64_t Size = 1; Size <= P.N; Size *= 2) {
      if (Live + Size > P.M)
        break;
      Succ S;
      S.Node = N;
      S.Node.Pending = uint32_t(Size);
      S.HasOp = false; // the request is realized by the placement reply
      Out.push_back(S);
    }
    return;
  }

  // Manager to move: place the pending request (ending the response and
  // accruing budget for the placed words), or spend the bank on one
  // compaction move and stay in the response phase. Moves strictly
  // decrease the bank, so response phases cannot cycle.
  unsigned Size = N.Pending;
  for (unsigned Pos = 0; Pos + Size <= W; ++Pos) {
    if (!layoutFits(N.L, W, Size, Pos))
      continue;
    Succ S;
    S.Node.L = layoutPlace(N.L, Size, Pos);
    S.Node.Bank = N.Bank;
    S.Node.Residue = N.Residue;
    S.Node.Pending = 0;
    accrue(Size, S.Node.Bank, S.Node.Residue);
    S.Op = {WitnessOp::Kind::Alloc, Size, Pos, 0};
    S.HasOp = true;
    Out.push_back(S);
  }
  if (P.C != 0 && N.Bank > 0) {
    forEachLayoutObject(N.L, W, [&](unsigned Start, unsigned ObjSize) {
      if (ObjSize > N.Bank)
        return;
      ArenaLayout Without = layoutRemove(N.L, ObjSize, Start);
      for (unsigned Pos = 0; Pos + ObjSize <= W; ++Pos) {
        // The target must be free in the *current* layout — Heap::move
        // forbids overlap with the object's own placement.
        if (!layoutFits(N.L, W, ObjSize, Pos))
          continue;
        Succ S;
        S.Node.L = layoutPlace(Without, ObjSize, Pos);
        S.Node.Bank = N.Bank - ObjSize;
        S.Node.Residue = N.Residue;
        S.Node.Pending = N.Pending;
        S.Op = {WitnessOp::Kind::Move, ObjSize, Start, Pos};
        S.HasOp = true;
        Out.push_back(S);
      }
    });
  }
}

uint32_t ArenaSolver::internNode(const RawNode &N) {
  NodeKey K = canonicalKey(N);
  auto [It, Inserted] = Index.try_emplace(K, uint32_t(Keys.size()));
  if (Inserted)
    Keys.push_back(K);
  return It->second;
}

bool ArenaSolver::enumerate() {
  const uint64_t NodeLimit = P.nodeLimit();
  const uint64_t EdgeLimit = 32 * NodeLimit;
  internNode(RawNode{});
  SuccOff.push_back(0);
  std::vector<Succ> Ss;
  std::vector<uint32_t> Tmp;
  for (uint32_t I = 0; I < Keys.size(); ++I) {
    successors(decode(Keys[I]), Ss);
    Tmp.clear();
    for (const Succ &S : Ss)
      Tmp.push_back(internNode(S.Node));
    if (Keys.size() > NodeLimit)
      return false;
    // Canonicalization can merge successors; dedup keeps the edge lists
    // (and thus the sweeps) minimal.
    std::sort(Tmp.begin(), Tmp.end());
    Tmp.erase(std::unique(Tmp.begin(), Tmp.end()), Tmp.end());
    Succs.insert(Succs.end(), Tmp.begin(), Tmp.end());
    SuccOff.push_back(Succs.size());
    if (Succs.size() > EdgeLimit)
      return false;
  }
  return true;
}

void ArenaSolver::sweep() {
  const size_t NumNodes = Keys.size();
  Win.assign(NumNodes, 0);
  Level.assign(NumNodes, 0);
  std::vector<uint32_t> Undecided(NumNodes), NextUndecided, NewlyWon;
  for (uint32_t I = 0; I < NumNodes; ++I)
    Undecided[I] = I;

  // Jacobi least-fixpoint iteration: each sweep evaluates every undecided
  // node against the *previous* sweep's winning set, so the sweep number
  // at which a node wins is a sound progress measure for the witness
  // walk. Initialization all-false is exactly the value of infinite plays
  // (never overflowing means the manager survives).
  unsigned SweepNo = 0;
  while (!Win[0]) {
    ++SweepNo;
    NewlyWon.clear();
    NextUndecided.clear();
    for (uint32_t I : Undecided) {
      bool IsMgr = (Keys[I].Aux >> 24) != 0;
      bool V;
      if (IsMgr) {
        V = true; // vacuously won by the adversary when the manager is stuck
        for (uint64_t E = SuccOff[I]; E < SuccOff[I + 1]; ++E)
          if (!Win[Succs[E]]) {
            V = false;
            break;
          }
      } else {
        V = false;
        for (uint64_t E = SuccOff[I]; E < SuccOff[I + 1]; ++E)
          if (Win[Succs[E]]) {
            V = true;
            break;
          }
      }
      if (V)
        NewlyWon.push_back(I);
      else
        NextUndecided.push_back(I);
    }
    if (NewlyWon.empty())
      break; // fixpoint: the adversary's winning region is complete
    for (uint32_t I : NewlyWon) {
      Win[I] = 1;
      Level[I] = SweepNo;
    }
    Undecided.swap(NextUndecided);
  }
  Out.Sweeps = SweepNo;
  Out.AdversaryWins = Win[0] != 0;
}

ArenaOutcome ArenaSolver::solve() {
  assert(Keys.empty() && "solve() may run once per ArenaSolver");
  Out = ArenaOutcome{};
  Out.Arena = W;
  bool Complete = enumerate();
  Out.Nodes = Keys.size();
  Out.Edges = Succs.size();
  if (!Complete) {
    Out.Aborted = true;
    return Out;
  }
  sweep();
  return Out;
}

unsigned ArenaSolver::overflowPlacement(ArenaLayout L, unsigned Size) const {
  for (unsigned Pos = 0; Pos < W; ++Pos) {
    bool Free = true;
    for (unsigned J = Pos; J < Pos + Size && J < W; ++J)
      if ((L.Occ >> J) & 1u) {
        Free = false;
        break;
      }
    if (Free)
      return Pos;
  }
  return W;
}

std::vector<WitnessOp> ArenaSolver::extractWitness() const {
  assert(Out.AdversaryWins && "no witness: the manager survives this arena");
  std::vector<WitnessOp> Trace;
  RawNode Cur; // the root: empty arena, adversary to move
  uint32_t CurLevel = Level[0];
  std::vector<Succ> Ss;
  // Each step strictly decreases the node's sweep level, so the walk is
  // bounded by the root's level.
  for (uint32_t Guard = CurLevel + 2; Guard > 0; --Guard) {
    successors(Cur, Ss);
    if (Cur.Pending != 0 && Ss.empty()) {
      // Stuck manager: the request cannot be placed and no move is
      // fundable. The forced placement spills past the arena.
      Trace.push_back({WitnessOp::Kind::Alloc, Cur.Pending,
                       overflowPlacement(Cur.L, Cur.Pending), 0});
      return Trace;
    }
    const Succ *Best = nullptr;
    uint32_t BestLevel = 0;
    for (const Succ &S : Ss) {
      uint32_t I = Index.at(canonicalKey(S.Node));
      if (Cur.Pending != 0) {
        // Optimal resistance: every successor is winning; the manager
        // retreats to the one that took the most sweeps to win.
        assert(Win[I] && "manager node won with a non-winning successor");
        if (!Best || Level[I] > BestLevel) {
          Best = &S;
          BestLevel = Level[I];
        }
      } else {
        // Adversary progress: descend to the lowest-level winning
        // successor.
        if (!Win[I])
          continue;
        if (!Best || Level[I] < BestLevel) {
          Best = &S;
          BestLevel = Level[I];
        }
      }
    }
    assert(Best && "winning node without a usable successor");
    assert(BestLevel < CurLevel && "witness walk failed to descend");
    if (Best->HasOp)
      Trace.push_back(Best->Op);
    Cur = Best->Node;
    CurLevel = BestLevel;
  }
  assert(false && "witness walk exceeded its level bound");
  return Trace;
}

ExactResult pcb::solveExact(const ExactParams &P) {
  assert(P.valid() && "invalid exact-game parameters");
  ExactResult R;
  unsigned WLo = unsigned(P.M);
  unsigned WHi = P.maxArena();
  // Monotone scan: the adversary's win region only shrinks as W grows,
  // so the first surviving arena is the exact heap size and everything
  // below it is the alpha-pruned region. Arenas below M need no solver:
  // the adversary fills them with M unit objects.
  std::unique_ptr<ArenaSolver> LastWinning;
  for (unsigned W = WLo; W <= WHi; ++W) {
    auto S = std::make_unique<ArenaSolver>(P, W);
    ArenaOutcome O = S->solve();
    R.Arenas.push_back(O);
    if (O.Aborted) {
      R.Aborted = true;
      return R;
    }
    if (!O.AdversaryWins) {
      R.Solved = true;
      R.ExactWords = W;
      if (!LastWinning && W > 0) {
        // The scan's first arena already survives; solve W - 1 (a strict
        // adversary win — see the monotonicity argument) for the witness.
        LastWinning = std::make_unique<ArenaSolver>(P, W - 1);
        ArenaOutcome O2 = LastWinning->solve();
        if (O2.Aborted || !O2.AdversaryWins)
          LastWinning.reset();
      }
      if (LastWinning)
        R.Witness = LastWinning->extractWitness();
      return R;
    }
    LastWinning = std::move(S);
  }
  return R; // exhausted maxArena() without a manager win
}
