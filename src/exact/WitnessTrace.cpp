//===- exact/WitnessTrace.cpp - Witness traces as event logs --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "exact/WitnessTrace.h"

#include <cassert>
#include <map>
#include <utility>

using namespace pcb;

EventLog pcb::witnessToEventLog(const std::vector<WitnessOp> &Witness) {
  EventLog Log;
  std::map<unsigned, std::pair<ObjectId, unsigned>> ByAddr;
  ObjectId NextId = 0;
  for (const WitnessOp &Op : Witness) {
    switch (Op.Op) {
    case WitnessOp::Kind::Alloc: {
      ObjectId Id = NextId++;
      Log.record(HeapEvent::alloc(Id, Op.Addr, Op.Size));
      ByAddr[Op.Addr] = {Id, Op.Size};
      Log.record(HeapEvent::stepEnd());
      break;
    }
    case WitnessOp::Kind::Free: {
      auto It = ByAddr.find(Op.Addr);
      assert(It != ByAddr.end() && It->second.second == Op.Size &&
             "witness frees an object that is not live here");
      Log.record(HeapEvent::release(It->second.first, Op.Addr, Op.Size));
      ByAddr.erase(It);
      Log.record(HeapEvent::stepEnd());
      break;
    }
    case WitnessOp::Kind::Move: {
      auto It = ByAddr.find(Op.Addr);
      assert(It != ByAddr.end() && It->second.second == Op.Size &&
             "witness moves an object that is not live here");
      ObjectId Id = It->second.first;
      Log.record(HeapEvent::move(Id, Op.Addr, Op.To, Op.Size));
      ByAddr.erase(It);
      ByAddr[Op.To] = {Id, Op.Size};
      // No step boundary: the move belongs to the following allocation's
      // response.
      break;
    }
    }
  }
  return Log;
}
