//===- exact/WitnessTrace.h - Witness traces as event logs ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a solved cell's forcing witness into the driver's EventLog
/// vocabulary, so `pcbound exact witness-dir=...` writes TraceIO files
/// that `pcbound replay-trace` can audit, and tests can replay the
/// adversary's optimal play through a real Heap + CompactionLedger.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_EXACT_WITNESSTRACE_H
#define PCBOUND_EXACT_WITNESSTRACE_H

#include "driver/EventLog.h"
#include "exact/ExactGame.h"

#include <vector>

namespace pcb {

/// Renders \p Witness as an event log: object ids are assigned in
/// allocation order, frees and moves name objects through their current
/// start address, and a step boundary closes each program step (a free,
/// or an allocation together with the compaction moves of its response).
EventLog witnessToEventLog(const std::vector<WitnessOp> &Witness);

} // namespace pcb

#endif // PCBOUND_EXACT_WITNESSTRACE_H
