//===- exact/Certifier.h - Sandwich certification of solved cells -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certifies a solved exact-game cell against the closed-form bounds
/// layer: the paper's claims form a sandwich
///
///   PF-forced (Theorem 1)  <=  exact  <=  best upper bound
///
/// where the upper side is the minimum of Theorem 2 (when c > log2(n)/2
/// and c >= 2), the Bendersky-Petrank (c+1)M, and Robson's non-moving
/// value (always available to a c-partial manager: it may simply never
/// move). At c = infinity the game value is exactly Robson's matching
/// formula, so the certificate additionally demands equality there.
/// Any solved cell violating its certificate convicts either the bounds
/// layer or the game model — that is the point.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_EXACT_CERTIFIER_H
#define PCBOUND_EXACT_CERTIFIER_H

#include "exact/MinimaxSolver.h"

#include <string>

namespace pcb {

/// The sandwich verdict for one solved cell. Bound fields are NaN when
/// the corresponding formula does not apply at the cell's parameters
/// (Theorem 1/2 need integer c >= 2 and power-of-two M >= n >= 2;
/// Bendersky-Petrank needs finite c; Robson needs power-of-two M >= n >= 2).
struct ExactCertificate {
  ExactParams Params;
  ExactResult Result;

  double LowerWords = 0;       ///< PF-forced lower bound (>= M by clamping)
  double RobsonWords = 0;      ///< Robson's matching P2 value
  double Theorem2Words = 0;    ///< the paper's recursive upper bound
  double BenderskyWords = 0;   ///< (c + 1) * M
  double UpperWords = 0;       ///< min over the applicable upper bounds

  bool LowerOk = false;   ///< exact >= LowerWords
  bool UpperOk = false;   ///< exact <= UpperWords
  bool RobsonMatch = false; ///< exact == Robson at c = infinity (else true)
  /// The exact value strictly separates the two paper bounds:
  /// Theorem 1 < exact < Theorem 2.
  bool Strict = false;

  bool ok() const {
    return Result.Solved && LowerOk && UpperOk && RobsonMatch;
  }

  /// One line: "M=4 n=2 c=4: 4 <= 5 <= 13 ok [strict]".
  std::string describe() const;
};

/// Evaluates the sandwich for \p R solved at \p P. Unsolved (or aborted)
/// cells get a certificate with ok() == false and no bound checks
/// claimed.
ExactCertificate certifyCell(const ExactParams &P, ExactResult R);

} // namespace pcb

#endif // PCBOUND_EXACT_CERTIFIER_H
