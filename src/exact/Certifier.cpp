//===- exact/Certifier.cpp - Sandwich certification of solved cells -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "exact/Certifier.h"

#include "bounds/BenderskyPetrankBounds.h"
#include "bounds/CohenPetrankBounds.h"
#include "bounds/RobsonBounds.h"

#include <cmath>
#include <limits>
#include <sstream>

using namespace pcb;

static constexpr double NaN = std::numeric_limits<double>::quiet_NaN();
static constexpr double Eps = 1e-6;

ExactCertificate pcb::certifyCell(const ExactParams &P, ExactResult R) {
  ExactCertificate Cert;
  Cert.Params = P;
  Cert.Result = std::move(R);
  Cert.LowerWords = double(P.M); // a heap of M words is always forced
  Cert.RobsonWords = NaN;
  Cert.Theorem2Words = NaN;
  Cert.BenderskyWords = NaN;
  Cert.UpperWords = NaN;

  // The closed-form layer speaks only over power-of-two M >= n >= 2 (and
  // BoundParams asserts as much); outside that domain the certificate
  // degenerates to the trivial lower bound.
  bool FormulaDomain = isPowerOfTwo(P.M) && isPowerOfTwo(P.N) && P.N >= 2;
  if (FormulaDomain) {
    // Robson's value is c-independent; BoundParams just wants a valid C.
    BoundParams Robson{P.M, P.N, 2.0};
    Cert.RobsonWords = robsonHeapWords(Robson);
    Cert.UpperWords = Cert.RobsonWords;
    if (P.C >= 2) {
      BoundParams BP{P.M, P.N, double(P.C)};
      Cert.LowerWords = cohenPetrankLowerHeapWords(BP);
      Cert.BenderskyWords = benderskyPetrankUpperHeapWords(BP);
      if (double(P.C) > 0.5 * BP.logN())
        Cert.Theorem2Words = cohenPetrankUpperHeapWords(BP);
    } else if (P.C == 1) {
      // Theorem 1/2 need c > 1; the prior-art (c + 1) M still applies.
      Cert.BenderskyWords = 2.0 * double(P.M);
    } else {
      // c = infinity: the non-moving game, where Robson is the claimed
      // *matching* bound — both sides of the sandwich at once.
      Cert.LowerWords = Cert.RobsonWords;
    }
    for (double Upper : {Cert.Theorem2Words, Cert.BenderskyWords})
      if (std::isfinite(Upper) && Upper < Cert.UpperWords)
        Cert.UpperWords = Upper;
  }

  if (!Cert.Result.Solved)
    return Cert;

  double Exact = double(Cert.Result.ExactWords);
  Cert.LowerOk = Exact >= Cert.LowerWords - Eps;
  // With no applicable closed-form upper bound there is nothing to
  // certify on that side.
  Cert.UpperOk = !std::isfinite(Cert.UpperWords) || Exact <= Cert.UpperWords + Eps;
  Cert.RobsonMatch = P.C != 0 || !std::isfinite(Cert.RobsonWords) ||
                     std::abs(Exact - Cert.RobsonWords) <= Eps;
  Cert.Strict = std::isfinite(Cert.Theorem2Words) &&
                Cert.LowerWords + Eps < Exact &&
                Exact + Eps < Cert.Theorem2Words;
  return Cert;
}

std::string ExactCertificate::describe() const {
  std::ostringstream OS;
  OS << "M=" << Params.M << " n=" << Params.N << " c=";
  if (Params.C == 0)
    OS << "inf";
  else
    OS << Params.C;
  OS << ": ";
  if (!Result.Solved) {
    OS << (Result.Aborted ? "aborted (node limit)" : "unsolved");
    return OS.str();
  }
  OS << LowerWords << " <= " << Result.ExactWords;
  if (std::isfinite(UpperWords))
    OS << " <= " << UpperWords;
  OS << (ok() ? " ok" : " FAIL");
  if (Strict)
    OS << " [strict]";
  return OS.str();
}
