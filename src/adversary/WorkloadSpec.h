//===- adversary/WorkloadSpec.h - Config-driven workloads -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text format describing phased churn workloads, so experiment
/// configurations can live in files instead of code. A spec is a list of
/// phases; each phase runs a number of steps of "free some, refill to a
/// target" churn with its own size band:
///
///   # comment
///   seed 7
///   phase steps=10 occupancy=0.9 free=0.3 minlog=0 maxlog=6
///   phase steps=5  occupancy=0.4 free=0.8 minlog=4 maxlog=8
///
/// Defaults per phase: steps=8, occupancy=0.9, free=0.3, minlog=0,
/// maxlog=8. This composes into sawtooth, drift and burst patterns; the
/// pcbound CLI accepts it via `program=spec spec=FILE`.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_WORKLOADSPEC_H
#define PCBOUND_ADVERSARY_WORKLOADSPEC_H

#include "adversary/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

/// One phase of a spec workload.
struct PhaseSpec {
  uint64_t Steps = 8;
  double TargetOccupancy = 0.9;
  double FreeProbability = 0.3;
  unsigned MinLogSize = 0;
  unsigned MaxLogSize = 8;
};

/// A parsed workload specification.
struct WorkloadSpec {
  uint64_t Seed = 1;
  std::vector<PhaseSpec> Phases;

  /// True when every phase is well-formed (non-zero steps, fractions in
  /// range, minlog <= maxlog < 40) and at least one phase exists.
  bool valid() const;
};

/// Parses a spec. Returns false (with \p Error set to a one-line
/// diagnostic) on malformed input.
bool parseWorkloadSpec(std::istream &IS, WorkloadSpec &Spec,
                       std::string &Error);

/// Executes a WorkloadSpec as a program in the paper's model.
class SpecProgram : public Program {
public:
  /// \p M is the live bound the occupancy targets are relative to.
  SpecProgram(uint64_t M, WorkloadSpec Spec);

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "spec"; }

  uint64_t currentPhase() const { return PhaseIndex; }

private:
  uint64_t M;
  WorkloadSpec Spec;
  Rng Rand;
  uint64_t PhaseIndex = 0;
  uint64_t StepInPhase = 0;
  std::vector<ObjectId> Mine;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_WORKLOADSPEC_H
