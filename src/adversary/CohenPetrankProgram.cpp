//===- adversary/CohenPetrankProgram.cpp - The bad program PF ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/CohenPetrankProgram.h"

#include "bounds/CohenPetrankBounds.h"
#include "heap/ChunkView.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pcb;

CohenPetrankProgram::CohenPetrankProgram(uint64_t M, uint64_t N, double C)
    : CohenPetrankProgram(M, N, C, Options()) {}

CohenPetrankProgram::CohenPetrankProgram(uint64_t M, uint64_t N, double C,
                                         const Options &O)
    : M(M), N(N), C(C), Opts(O), LogN(log2Exact(N)),
      Core(M, O.TrackGhosts) {
  assert(M >= N && "live bound below the largest object");
  assert(LogN >= 4 && "n too small for a two-stage construction");

  // Admissible sigmas: 2^sigma <= 3c/4 (evacuation unprofitable) and
  // 2*sigma <= log2(n) - 2 (stage two non-empty).
  BoundParams P{M, N, C};
  unsigned MaxSigma =
      std::min(cohenPetrankMaxSigma(C), (LogN - 2) / 2);
  assert(MaxSigma >= 1 && "c too small for any admissible density");
  if (Opts.SigmaOverride != 0) {
    assert(Opts.SigmaOverride <= MaxSigma && "sigma override inadmissible");
    Sigma = Opts.SigmaOverride;
  } else {
    double BestH = -1.0;
    for (unsigned S = 1; S <= MaxSigma; ++S) {
      double H = cohenPetrankLowerWasteFactorForSigma(P, S);
      if (H > BestH) {
        BestH = H;
        Sigma = S;
      }
    }
  }
  TargetH = cohenPetrankLowerWasteFactorForSigma(P, Sigma);
  X = (1.0 - TargetH / std::pow(2.0, double(Sigma))) / (double(Sigma) + 1.0);
  X = std::max(X, 0.0);
}

bool CohenPetrankProgram::onObjectMoved(ObjectId Id, Addr From, Addr To) {
  (void)To;
  assert(TheHeap && "moved before the program's first step");
  if (Phase == PhaseKind::StageOne || Phase == PhaseKind::NullSteps)
    return Core.handleMove(*TheHeap, Id, From);

  // Stage two: the object's association entries persist as phantoms; the
  // object itself is freed immediately (return true).
  assert(isAssociated(Id) && "moved object has no association");
  for (uint64_t Index : Where[Id]) {
    if (Index == NoChunk)
      continue;
    auto CIt = Chunks.find(Index);
    assert(CIt != Chunks.end() && "association points at unknown chunk");
    for (Entry &E : CIt->second.Entries)
      if (E.Id == Id) {
        E.Phantom = true;
        // A fresh association on a chunk in E removes it from E
        // (Definition 4.12) — but a phantom is not fresh; leave InE.
      }
  }
  Where[Id] = {NoChunk, NoChunk};
  return true;
}

void CohenPetrankProgram::advancePhase(MutatorContext &Ctx) {
  if (Step <= Sigma) {
    Phase = PhaseKind::StageOne;
  } else if (Step <= 2 * Sigma - 1) {
    Phase = PhaseKind::NullSteps;
  } else if (Step <= LogN - 2) {
    if (Phase != PhaseKind::StageTwo)
      buildInitialAssociation(Ctx);
    Phase = PhaseKind::StageTwo;
  } else {
    Phase = PhaseKind::Done;
  }
}

bool CohenPetrankProgram::step(MutatorContext &Ctx) {
  TheHeap = &Ctx.heap();
  advancePhase(Ctx);
  switch (Phase) {
  case PhaseKind::StageOne:
    if (Step == 0)
      Core.runStepZero(Ctx);
    else if (Opts.RobsonBootstrap)
      Core.runStep(Ctx, Step);
    break;
  case PhaseKind::NullSteps:
    break; // The paper's null steps: no allocation, no de-allocation.
  case PhaseKind::StageTwo: {
    unsigned I = Step;
    mergeChunksTo(I);
    freeForDensity(Ctx, I);
    allocateStageTwo(Ctx, I);
    RanStageTwoStep = true;
    break;
  }
  case PhaseKind::Done:
    return false;
  }
  ++Step;
  advancePhase(Ctx);
  return Phase != PhaseKind::Done;
}

void CohenPetrankProgram::buildInitialAssociation(MutatorContext &Ctx) {
  CurLog = 2 * Sigma - 1;
  uint64_t FSigma = Core.offset();
  uint64_t Period = pow2(Sigma);
  assert(Chunks.empty() && "stage boundary reached twice");
  // Survivor addresses arrive in allocation order, i.e. scattered across
  // the heap; stable-sorting by chunk first turns the map build into an
  // ordered end()-hinted append while keeping each chunk's entry order
  // (allocation order) intact.
  struct Rec {
    uint64_t Index;
    ObjectId Id;
    uint64_t Size;
  };
  std::vector<Rec> Recs;
  for (ObjectId Id : Core.objects()) {
    if (!Ctx.heap().isLive(Id))
      continue;
    const Object &O = Ctx.heap().object(Id);
    // With the Robson bootstrap, associate via the object's unique
    // f_sigma-occupying word (all survivors of step sigma are
    // f_sigma-occupying and of size <= 2^sigma). Without it, all objects
    // are unit-sized and associate via their only word.
    uint64_t Distance =
        Opts.RobsonBootstrap ? ((FSigma - O.Address) & (Period - 1)) : 0;
    assert(Distance < O.Size && "survivor is not f_sigma-occupying");
    Addr Word = O.Address + Distance;
    Recs.push_back(Rec{Word >> CurLog, Id, O.Size});
  }
  std::stable_sort(
      Recs.begin(), Recs.end(),
      [](const Rec &A, const Rec &B) { return A.Index < B.Index; });
  for (const Rec &R : Recs) {
    if (Chunks.empty() || Chunks.rbegin()->first != R.Index)
      Chunks.emplace_hint(Chunks.end(), R.Index, ChunkState{});
    ChunkState &CS = Chunks.rbegin()->second;
    CS.Entries.push_back(Entry{R.Id, R.Size, false});
    CS.AssocWords += R.Size;
    whereSlot(R.Id) = {R.Index, NoChunk};
  }
}

void CohenPetrankProgram::normalizeChunk(ChunkState &CS) {
  // Merge duplicate ids (the two halves of one object reunited by a
  // partition merge) into a single whole entry.
  for (size_t A = 0; A != CS.Entries.size(); ++A)
    for (size_t B = A + 1; B != CS.Entries.size();) {
      if (CS.Entries[B].Id == CS.Entries[A].Id) {
        CS.Entries[A].Words += CS.Entries[B].Words;
        CS.Entries[A].Phantom |= CS.Entries[B].Phantom;
        CS.Entries[B] = CS.Entries.back();
        CS.Entries.pop_back();
      } else {
        ++B;
      }
    }
}

void CohenPetrankProgram::mergeChunksTo(unsigned NewLog) {
  assert(NewLog >= CurLog && "partitions only coarsen");
  while (CurLog < NewLog) {
    // Chunks ascend by index, so merged indices (Index >> 1) arrive
    // nondecreasing: build the coarser partition with end-hinted inserts
    // and steal the first child's entry storage instead of copying.
    std::map<uint64_t, ChunkState> Merged;
    auto Last = Merged.end();
    for (auto &[Index, CS] : Chunks) {
      uint64_t Coarse = Index >> 1;
      if (Last == Merged.end() || Last->first != Coarse)
        Last = Merged.emplace_hint(Merged.end(), Coarse, ChunkState{});
      ChunkState &Dst = Last->second;
      Dst.AssocWords += CS.AssocWords;
      if (Dst.Entries.empty())
        Dst.Entries = std::move(CS.Entries);
      else
        Dst.Entries.insert(Dst.Entries.end(), CS.Entries.begin(),
                           CS.Entries.end());
      // E membership dissolves on a step change (Definition 4.12).
      Dst.InE = false;
    }
    Chunks = std::move(Merged);
    ++CurLog;
  }
  for (auto &[Index, CS] : Chunks) {
    (void)Index;
    normalizeChunk(CS);
  }
  rebuildWhere();
}

void CohenPetrankProgram::rebuildWhere() {
  Where.assign(Where.size(), {NoChunk, NoChunk});
  for (const auto &[Index, CS] : Chunks)
    for (const Entry &E : CS.Entries) {
      if (E.Phantom)
        continue;
      std::array<uint64_t, 2> &Slot = whereSlot(E.Id);
      if (Slot[0] == NoChunk) {
        Slot[0] = Index;
      } else {
        assert(Slot[1] == NoChunk &&
               "object associated with more than two chunks");
        Slot[1] = Index;
      }
    }
}

void CohenPetrankProgram::reevaluateChunk(MutatorContext &Ctx,
                                          uint64_t Index, uint64_t T,
                                          std::vector<uint64_t> &Worklist) {
  auto CIt = Chunks.find(Index);
  if (CIt == Chunks.end())
    return;
  ChunkState &CS = CIt->second;

  // Free as many associated objects as possible while AssocWords stays at
  // least T (Algorithm 1 line 13). Removing the largest removable entry
  // first keeps the residue below T + max entry size.
  for (;;) {
    Entry *Best = nullptr;
    for (Entry &E : CS.Entries) {
      if (E.Phantom)
        continue;
      if (CS.AssocWords - E.Words < T)
        continue;
      if (!Best || E.Words > Best->Words)
        Best = &E;
    }
    if (!Best)
      break;

    ObjectId Id = Best->Id;
    uint64_t Words = Best->Words;
    uint64_t ObjectSize = Ctx.heap().object(Id).Size;
    // Drop the entry from this chunk.
    *Best = CS.Entries.back();
    CS.Entries.pop_back();
    CS.AssocWords -= Words;

    if (Words == ObjectSize) {
      // Wholly associated here: actually de-allocate it.
      Where[Id] = {NoChunk, NoChunk};
      Ctx.free(Id);
      continue;
    }
    // A half object: re-associate it wholly with the chunk holding the
    // other half and re-evaluate that chunk (line 13's transfer rule).
    assert(2 * Words == ObjectSize && "association is neither whole nor half");
    assert(isAssociated(Id) && "half object without reverse mapping");
    std::array<uint64_t, 2> &Slot = Where[Id];
    uint64_t Other = Slot[0] == Index ? Slot[1] : Slot[0];
    assert(Other != NoChunk && "half object with only one chunk");
    auto OIt = Chunks.find(Other);
    assert(OIt != Chunks.end() && "other half's chunk is unknown");
    bool Found = false;
    for (Entry &E : OIt->second.Entries)
      if (E.Id == Id) {
        E.Words += Words;
        Found = true;
        break;
      }
    assert(Found && "other half's entry is missing");
    (void)Found;
    OIt->second.AssocWords += Words;
    Slot = {Other, NoChunk};
    Worklist.push_back(Other);
  }
}

void CohenPetrankProgram::freeForDensity(MutatorContext &Ctx, unsigned I) {
  uint64_t T = Opts.MaintainDensity ? pow2(I - Sigma) : 1;
  std::vector<uint64_t> Worklist;
  Worklist.reserve(Chunks.size());
  for (const auto &[Index, CS] : Chunks) {
    (void)CS;
    Worklist.push_back(Index);
  }
  while (!Worklist.empty()) {
    uint64_t Index = Worklist.back();
    Worklist.pop_back();
    reevaluateChunk(Ctx, Index, T, Worklist);
  }
}

void CohenPetrankProgram::clearChunkForOverwrite(uint64_t Index) {
  auto It = Chunks.find(Index);
  if (It == Chunks.end())
    return;
  for ([[maybe_unused]] const Entry &E : It->second.Entries)
    assert(E.Phantom && "overwriting a chunk with live associations");
  Chunks.erase(It);
}

void CohenPetrankProgram::allocateStageTwo(MutatorContext &Ctx, unsigned I) {
  uint64_t Size = pow2(I + 2);
  uint64_t Count = Opts.FixedAllocation
                       ? uint64_t(X * double(M)) / Size
                       : UINT64_MAX;
  ChunkView View(I);
  for (uint64_t K = 0; K != Count; ++K) {
    if (Ctx.headroom() < Size)
      break;
    ObjectId Id = Ctx.allocate(Size);
    assert(Ctx.heap().isLive(Id) && "fresh allocation is dead");
    const Object &O = Ctx.heap().object(Id);

    // The object fully covers at least three chunks; take the first
    // three (Algorithm 1 line 14).
    uint64_t First = View.firstFullIndex(O.Address, Size);
    assert(View.numFullChunks(O.Address, Size) >= 3 &&
           "a 4-chunk object must cover three chunks fully");
    uint64_t D1 = First, D2 = First + 1, D3 = First + 2;
    clearChunkForOverwrite(D1);
    clearChunkForOverwrite(D2);
    clearChunkForOverwrite(D3);

    ChunkState &C1 = Chunks[D1];
    C1.Entries.push_back(Entry{Id, Size / 2, false});
    C1.AssocWords = Size / 2;
    ChunkState &C2 = Chunks[D2];
    C2.InE = true;
    ChunkState &C3 = Chunks[D3];
    C3.Entries.push_back(Entry{Id, Size / 2, false});
    C3.AssocWords = Size / 2;
    whereSlot(Id) = {D1, D3};
  }
}

double CohenPetrankProgram::potential() const {
  if (Chunks.empty())
    return 0.0;
  double TwoSigma = std::pow(2.0, double(Sigma));
  double ChunkSize = double(pow2(CurLog));
  double U = 0.0;
  for (const auto &[Index, CS] : Chunks) {
    (void)Index;
    if (CS.InE)
      U += ChunkSize;
    else
      U += std::min(TwoSigma * double(CS.AssocWords), ChunkSize);
  }
  return U - double(N) / 4.0;
}

bool CohenPetrankProgram::checkAssociationInvariants() const {
  if (!TheHeap)
    return true;
  // Rebuild the per-object association totals from the chunk side.
  std::map<ObjectId, uint64_t> Seen; // id -> total associated words
  std::map<ObjectId, unsigned> Count;
  ChunkView View(CurLog);
  for (const auto &[Index, CS] : Chunks) {
    uint64_t Sum = 0;
    for (const Entry &E : CS.Entries) {
      Sum += E.Words;
      if (E.Phantom)
        continue;
      Seen[E.Id] += E.Words;
      Count[E.Id] += 1;
      // Property 3 of Claim 4.15: a live associated object intersects
      // its chunk.
      if (!TheHeap->isLive(E.Id))
        return false;
      const Object &O = TheHeap->object(E.Id);
      Addr CStart = View.startOf(Index);
      Addr CEnd = View.endOf(Index);
      if (O.end() <= CStart || O.Address >= CEnd)
        return false;
    }
    if (Sum != CS.AssocWords)
      return false;
  }
  // Properties 1 and 2: each live object is associated whole with one
  // chunk or half-and-half with two.
  for (const auto &[Id, Words] : Seen) {
    const Object &O = TheHeap->object(Id);
    unsigned Parts = Count[Id];
    if (Parts == 1 && Words != O.Size && 2 * Words != O.Size)
      return false;
    if (Parts == 2 && Words != O.Size)
      return false;
    if (Parts > 2)
      return false;
    if (!isAssociated(Id))
      return false;
  }
  return true;
}

bool CohenPetrankProgram::checkDensityInvariant() const {
  if (!Opts.MaintainDensity || Chunks.empty() || !RanStageTwoStep)
    return true;
  uint64_t T = CurLog >= Sigma ? pow2(CurLog - Sigma) : 1;
  for (const auto &[Index, CS] : Chunks) {
    (void)Index;
    uint64_t LiveWords = 0;
    unsigned LiveCount = 0;
    for (const Entry &E : CS.Entries) {
      if (E.Phantom)
        continue;
      LiveWords += E.Words;
      ++LiveCount;
    }
    if (LiveCount > 1 && LiveWords > 2 * T)
      return false;
  }
  return true;
}
