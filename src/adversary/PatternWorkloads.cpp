//===- adversary/PatternWorkloads.cpp - Classic allocation patterns ------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/PatternWorkloads.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

bool StackProgram::step(MutatorContext &Ctx) {
  if (StepsDone >= Opts.Steps)
    return false;

  // Push until the target occupancy...
  uint64_t Target = uint64_t(Opts.TargetOccupancy * double(M));
  while (Ctx.heap().stats().LiveWords < Target) {
    uint64_t Size = pow2(unsigned(Rand.nextBelow(Opts.MaxLogSize + 1)));
    if (Ctx.headroom() < Size)
      break;
    Stack.push_back(Ctx.allocate(Size));
  }
  // ... then pop a random run in strict LIFO order.
  uint64_t Pops = Rand.nextInRange(1, Stack.empty() ? 1 : Stack.size());
  while (Pops-- != 0 && !Stack.empty()) {
    ObjectId Id = Stack.back();
    Stack.pop_back();
    if (Ctx.heap().isLive(Id))
      Ctx.free(Id);
  }

  ++StepsDone;
  return StepsDone < Opts.Steps;
}

bool QueueProgram::step(MutatorContext &Ctx) {
  if (StepsDone >= Opts.Steps)
    return false;

  uint64_t Target = uint64_t(Opts.TargetOccupancy * double(M));
  for (uint64_t K = 0; K != Opts.BatchObjects; ++K) {
    uint64_t Size = pow2(unsigned(Rand.nextBelow(Opts.MaxLogSize + 1)));
    // Make room FIFO-style before admitting the newcomer.
    while (Ctx.heap().stats().LiveWords + Size > Target &&
           !Window.empty()) {
      ObjectId Old = Window.front();
      Window.pop_front();
      if (Ctx.heap().isLive(Old))
        Ctx.free(Old);
    }
    if (Ctx.headroom() < Size)
      break;
    Window.push_back(Ctx.allocate(Size));
  }

  ++StepsDone;
  return StepsDone < Opts.Steps;
}

bool SawtoothProgram::step(MutatorContext &Ctx) {
  if (WavesDone >= Opts.Waves)
    return false;

  // Drop the previous wave, keeping a pinned residue alive forever (the
  // survivors that make sawtooth heaps fragment in practice).
  for (ObjectId Id : Wave) {
    if (!Ctx.heap().isLive(Id))
      continue;
    if (Rand.nextBool(Opts.PinnedFraction)) {
      Pinned.push_back(Id);
      continue;
    }
    Ctx.free(Id);
  }
  Wave.clear();

  // Refill with this wave's size band: waves alternate between small,
  // medium and large mixes.
  unsigned Span = Opts.MaxLogSize - Opts.MinLogSize + 1;
  unsigned BandLow = Opts.MinLogSize + unsigned(WavesDone % Span);
  uint64_t Target = uint64_t(Opts.TargetOccupancy * double(M));
  while (Ctx.heap().stats().LiveWords < Target) {
    unsigned Log = BandLow;
    if (BandLow < Opts.MaxLogSize && Rand.nextBool(0.5))
      ++Log;
    uint64_t Size = pow2(Log);
    if (Ctx.headroom() < Size)
      break;
    Wave.push_back(Ctx.allocate(Size));
  }

  ++WavesDone;
  return WavesDone < Opts.Waves;
}
