//===- adversary/SyntheticWorkloads.h - Non-adversarial programs -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ordinary (non-adversarial) workloads. The paper's bounds are
/// worst-case; these programs provide the contrast the conclusion draws:
/// "the lower bounds ... do not rule out achieving a better behavior on a
/// suite of benchmarks". RandomChurnProgram models steady-state churn
/// with uniformly random power-of-two sizes; MarkovPhaseProgram models
/// phased behaviour where the popular size class drifts over time (the
/// classic cause of size-class fragmentation); TraceReplayProgram replays
/// an explicit operation list (used heavily by the tests).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_SYNTHETICWORKLOADS_H
#define PCBOUND_ADVERSARY_SYNTHETICWORKLOADS_H

#include "adversary/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcb {

/// Steady-state churn: every step frees a random subset and refills up to
/// a target occupancy with random power-of-two sizes.
class RandomChurnProgram : public Program {
public:
  struct Options {
    uint64_t Steps = 64;
    /// Target live fraction of M after each step's refill.
    double TargetOccupancy = 0.9;
    /// Probability an existing object is freed in a step.
    double FreeProbability = 0.3;
    /// Largest object: 2^MaxLogSize words.
    unsigned MaxLogSize = 8;
    uint64_t Seed = 1;
  };

  RandomChurnProgram(uint64_t M, const Options &O)
      : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "random-churn"; }

private:
  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t StepsDone = 0;
  std::vector<ObjectId> Mine;
};

/// Phased allocation: each phase prefers one size class; on a phase
/// change most old objects die, a few survive — drifting class
/// popularity that defeats naive segregated allocators.
class MarkovPhaseProgram : public Program {
public:
  struct Options {
    uint64_t Phases = 12;
    uint64_t StepsPerPhase = 8;
    double SurvivorFraction = 0.1;
    double TargetOccupancy = 0.85;
    unsigned MinLogSize = 0;
    unsigned MaxLogSize = 10;
    uint64_t Seed = 2;
  };

  MarkovPhaseProgram(uint64_t M, const Options &O)
      : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "markov-phase"; }

private:
  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t StepsDone = 0;
  std::vector<ObjectId> Mine;
};

/// One scripted operation: allocate a size, or free the object created by
/// the Index-th allocation of the trace.
struct TraceOp {
  enum class Kind { Alloc, Free } Op;
  uint64_t Value; // size for Alloc, allocation index for Free

  static TraceOp alloc(uint64_t Size) {
    return TraceOp{Kind::Alloc, Size};
  }
  static TraceOp release(uint64_t AllocIndex) {
    return TraceOp{Kind::Free, AllocIndex};
  }

  bool operator==(const TraceOp &Other) const {
    return Op == Other.Op && Value == Other.Value;
  }
};

/// Structural validity of a trace: every Free names an allocation that
/// happened earlier in the trace, and no allocation is freed twice. When
/// \p Why is non-null and the trace is invalid, it receives a one-line
/// diagnosis naming the offending operation.
bool validateTrace(const std::vector<TraceOp> &Trace,
                   std::string *Why = nullptr);

/// Peak simultaneous live words over the whole trace — the smallest live
/// bound M under which TraceReplayProgram can run it. O(trace).
uint64_t tracePeakLiveWords(const std::vector<TraceOp> &Trace);

/// Replays an explicit trace, one operation per step.
class TraceReplayProgram : public Program {
public:
  explicit TraceReplayProgram(std::vector<TraceOp> Trace)
      : Trace(std::move(Trace)) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "trace-replay"; }

  /// Id assigned to the \p AllocIndex-th allocation so far.
  ObjectId idOfAllocation(uint64_t AllocIndex) const {
    return AllocIndex < Allocated.size() ? Allocated[AllocIndex]
                                         : InvalidObjectId;
  }

private:
  std::vector<TraceOp> Trace;
  size_t Position = 0;
  std::vector<ObjectId> Allocated;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_SYNTHETICWORKLOADS_H
