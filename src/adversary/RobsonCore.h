//===- adversary/RobsonCore.h - Shared Robson stage machinery ---*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The step engine of Robson's bad program, shared between RobsonProgram
/// (which runs it to log2(n)) and CohenPetrankProgram (whose first stage
/// runs it to sigma): offset selection, the f-occupying freeing rule, the
/// per-step allocation rule, and the ghost-object bookkeeping that makes
/// the program well-defined against compacting managers (Definition 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_ROBSONCORE_H
#define PCBOUND_ADVERSARY_ROBSONCORE_H

#include "adversary/Program.h"

#include <cstdint>
#include <vector>

namespace pcb {

/// A compacted-then-freed object remembered at its original location.
struct GhostObject {
  Addr Address;
  uint64_t Size;
};

/// Robson step engine with ghost bookkeeping.
class RobsonCore {
public:
  /// \p M is the live-space bound. When \p TrackGhosts is false, moved
  /// objects are freed but forgotten (an ablation of the reduction
  /// machinery; see bench E7).
  RobsonCore(uint64_t M, bool TrackGhosts)
      : M(M), TrackGhosts(TrackGhosts) {}

  /// Step 0: allocate M unit objects.
  void runStepZero(MutatorContext &Ctx);

  /// Step \p I >= 1: pick f_I, free non-occupying live and ghost objects,
  /// allocate floor((M - liveOrGhostWords) / 2^I) objects of size 2^I.
  void runStep(MutatorContext &Ctx, unsigned I);

  /// Move notification: free the object and (optionally) keep a ghost.
  /// Always returns true — the program de-allocates moved objects.
  bool handleMove(const Heap &H, ObjectId Id, Addr From);

  /// The chosen offset f_i after the most recent step.
  uint64_t offset() const { return Offset; }

  /// Ids of the program's objects; may contain dead ids (skip via
  /// Heap::isLive).
  const std::vector<ObjectId> &objects() const { return Mine; }

  /// Live-or-ghost f-occupying object count after the most recent step
  /// (the quantity Claim 4.9 bounds below).
  uint64_t occupierCount() const { return LastOccupierCount; }

  uint64_t ghostWords() const { return GhostWordsTotal; }
  const std::vector<GhostObject> &ghosts() const { return Ghosts; }

private:
  uint64_t scoreOffset(const Heap &H, unsigned I, uint64_t F) const;

  uint64_t M;
  bool TrackGhosts;
  uint64_t Offset = 0;
  std::vector<ObjectId> Mine;
  std::vector<GhostObject> Ghosts;
  uint64_t GhostWordsTotal = 0;
  uint64_t LastOccupierCount = 0;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_ROBSONCORE_H
