//===- adversary/RobsonProgram.h - Robson's bad program PR ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robson's malicious program (the paper's Algorithm 2, from Robson
/// 1971/74), extended with the ghost-object bookkeeping of the paper's
/// first stage so it stays meaningful against managers that move
/// objects:
///
///   f0 = 0; allocate M objects of size 1.
///   for i = 1 .. log2(n):
///     pick fi in {f(i-1), f(i-1) + 2^(i-1)} maximizing
///         sum over live-or-ghost fi-occupying objects o of (2^i - |o|)
///     free every live or ghost object that is not fi-occupying
///     allocate floor((M - liveOrGhostWords) / 2^i) objects of size 2^i
///
/// Against a non-moving manager no ghosts arise and this is PR verbatim,
/// forcing a footprint of M * (log2(n)/2 + 1) - n + 1.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_ROBSONPROGRAM_H
#define PCBOUND_ADVERSARY_ROBSONPROGRAM_H

#include "adversary/RobsonCore.h"

namespace pcb {

/// Robson's bad program with ghost-object handling.
class RobsonProgram : public Program {
public:
  /// Runs steps 0 .. \p LastStep; the classic program uses
  /// LastStep = log2(n). \p M is the live-space bound.
  RobsonProgram(uint64_t M, unsigned LastStep);

  bool step(MutatorContext &Ctx) override;
  bool onObjectMoved(ObjectId Id, Addr From, Addr To) override;
  std::string name() const override { return "robson"; }

  /// The offset f_i chosen at the most recent completed step.
  uint64_t currentOffset() const { return Core.offset(); }

  /// Step about to be executed (0-based; LastStep + 1 once finished).
  unsigned currentStep() const { return Step; }

  /// Total words currently held by ghosts.
  uint64_t ghostWords() const { return Core.ghostWords(); }

  /// Number of live-or-ghost f-occupying objects after the last step —
  /// the quantity Claim 4.9 bounds from below.
  uint64_t occupierCount() const { return Core.occupierCount(); }

private:
  unsigned LastStep;
  unsigned Step = 0;
  RobsonCore Core;
  const Heap *TheHeap = nullptr;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_ROBSONPROGRAM_H
