//===- adversary/Program.h - The program side of the interaction -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program/memory-manager interaction of Section 2.1 is a series of
/// sub-interactions: the program de-allocates, the manager may compact,
/// the program allocates. A Program implements one such series as a
/// sequence of step() calls against a MutatorContext (provided by the
/// execution driver), and reacts to compaction through onObjectMoved —
/// the paper's model gives the program full knowledge of object
/// addresses, which the context exposes.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_PROGRAM_H
#define PCBOUND_ADVERSARY_PROGRAM_H

#include "heap/Heap.h"

#include <string>

namespace pcb {

/// The services the execution driver offers a running program.
class MutatorContext {
public:
  virtual ~MutatorContext();

  /// Allocates \p Size words through the memory manager. Asserts the
  /// program's live-space bound M is respected.
  virtual ObjectId allocate(uint64_t Size) = 0;

  /// De-allocates a live object.
  virtual void free(ObjectId Id) = 0;

  /// Read access to the heap (addresses, sizes, statistics).
  virtual const Heap &heap() const = 0;

  /// The program's simultaneous live-space bound M, in words.
  virtual uint64_t liveBound() const = 0;

  /// Words the program may still allocate before reaching M.
  uint64_t headroom() const {
    uint64_t Live = heap().stats().LiveWords;
    uint64_t M = liveBound();
    return M > Live ? M - Live : 0;
  }
};

/// A program in the paper's model: a driver repeatedly calls step() until
/// it returns false. Each step is one de-allocate/compact/allocate
/// sub-interaction (the driver validates invariants between steps).
class Program {
public:
  virtual ~Program();

  /// Performs one step. Returns false when the program has finished.
  virtual bool step(MutatorContext &Ctx) = 0;

  /// Notification that the manager moved \p Id from \p From to \p To.
  /// Returns true to de-allocate the moved object immediately (the
  /// behaviour of the paper's adversaries); the manager performs the free
  /// before continuing.
  virtual bool onObjectMoved(ObjectId Id, Addr From, Addr To) {
    (void)Id;
    (void)From;
    (void)To;
    return false;
  }

  /// Display name, e.g. "robson".
  virtual std::string name() const = 0;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_PROGRAM_H
