//===- adversary/ProgramFactory.h - Programs by name ------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates programs by name so the CLI, benches and tests can sweep over
/// adversaries and ordinary workloads uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_PROGRAMFACTORY_H
#define PCBOUND_ADVERSARY_PROGRAMFACTORY_H

#include "adversary/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace pcb {

/// Creates the program named \p Name. \p M is the live bound, \p LogN the
/// log2 of the maximum object size, \p C the manager's compaction quota
/// (used by the PF adversary to tune sigma and x). Returns nullptr for
/// unknown names. Known names: "robson", "cohen-petrank",
/// "random-churn", "markov-phase", "stack-lifo", "queue-fifo",
/// "sawtooth", and the reallocation family's insert/delete adversaries
/// "update-fill-drain", "update-alternating", "update-comb",
/// "update-size-profile", "update-mix".
std::unique_ptr<Program> createProgram(const std::string &Name, uint64_t M,
                                       unsigned LogN, double C);

/// createProgram with a diagnosable failure: on an unknown name returns
/// nullptr and, when \p Error is non-null, sets *Error to a one-line
/// message naming every valid program — the same contract as
/// createManagerChecked.
std::unique_ptr<Program> createProgramChecked(const std::string &Name,
                                              uint64_t M, unsigned LogN,
                                              double C,
                                              std::string *Error = nullptr);

/// The valid program names as one comma-separated string, for error
/// messages and usage text.
std::string programNameList();

/// All names createProgram accepts.
std::vector<std::string> allProgramNames();

/// The adversarial subset (the paper's constructions).
std::vector<std::string> adversarialProgramNames();

/// The ordinary-workload subset (the benchmarks-behave-better contrast).
std::vector<std::string> ordinaryProgramNames();

/// The reallocation family's insert/delete adversaries (realloc/
/// UpdateProgram.h) — the Bender et al. and Jin update-model shapes.
std::vector<std::string> updateProgramNames();

} // namespace pcb

#endif // PCBOUND_ADVERSARY_PROGRAMFACTORY_H
