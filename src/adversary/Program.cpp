//===- adversary/Program.cpp - The program side of the interaction -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/Program.h"

using namespace pcb;

// Out-of-line virtual anchors.
MutatorContext::~MutatorContext() = default;
Program::~Program() = default;
