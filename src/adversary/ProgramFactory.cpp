//===- adversary/ProgramFactory.cpp - Programs by name --------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/ProgramFactory.h"

#include "adversary/CohenPetrankProgram.h"
#include "adversary/PatternWorkloads.h"
#include "adversary/RobsonProgram.h"
#include "adversary/SyntheticWorkloads.h"
#include "realloc/UpdateProgram.h"
#include "support/MathUtils.h"

using namespace pcb;

std::unique_ptr<Program> pcb::createProgram(const std::string &Name,
                                            uint64_t M, unsigned LogN,
                                            double C) {
  if (Name == "robson")
    return std::make_unique<RobsonProgram>(M, LogN);
  // "pf" is the paper's name for the adversarial program of Section 4.
  if (Name == "cohen-petrank" || Name == "pf")
    return std::make_unique<CohenPetrankProgram>(M, pow2(LogN), C);
  if (Name == "random-churn") {
    RandomChurnProgram::Options O;
    O.MaxLogSize = LogN;
    return std::make_unique<RandomChurnProgram>(M, O);
  }
  if (Name == "markov-phase") {
    MarkovPhaseProgram::Options O;
    O.MaxLogSize = LogN;
    return std::make_unique<MarkovPhaseProgram>(M, O);
  }
  if (Name == "stack-lifo") {
    StackProgram::Options O;
    O.MaxLogSize = LogN;
    return std::make_unique<StackProgram>(M, O);
  }
  if (Name == "queue-fifo") {
    QueueProgram::Options O;
    O.MaxLogSize = LogN;
    return std::make_unique<QueueProgram>(M, O);
  }
  if (Name == "sawtooth") {
    SawtoothProgram::Options O;
    O.MaxLogSize = LogN;
    return std::make_unique<SawtoothProgram>(M, O);
  }
  // The reallocation family's insert/delete adversaries (realloc/).
  for (UpdateProgram::Shape S :
       {UpdateProgram::Shape::FillDrain, UpdateProgram::Shape::Alternating,
        UpdateProgram::Shape::Comb, UpdateProgram::Shape::SizeProfile,
        UpdateProgram::Shape::Mix}) {
    if (Name == std::string("update-") + UpdateProgram::shapeName(S)) {
      UpdateProgram::Options O;
      O.MaxLogSize = LogN;
      O.S = S;
      return std::make_unique<UpdateProgram>(M, O);
    }
  }
  return nullptr;
}

std::unique_ptr<Program> pcb::createProgramChecked(const std::string &Name,
                                                   uint64_t M, unsigned LogN,
                                                   double C,
                                                   std::string *Error) {
  std::unique_ptr<Program> P = createProgram(Name, M, LogN, C);
  if (!P && Error)
    *Error =
        "unknown program '" + Name + "'; valid programs: " + programNameList();
  return P;
}

std::string pcb::programNameList() {
  std::string List;
  for (const std::string &Name : allProgramNames()) {
    if (!List.empty())
      List += ", ";
    List += Name;
  }
  return List;
}

std::vector<std::string> pcb::allProgramNames() {
  std::vector<std::string> All = {"robson",       "cohen-petrank",
                                  "random-churn", "markov-phase",
                                  "stack-lifo",   "queue-fifo",
                                  "sawtooth"};
  for (const std::string &Name : updateProgramNames())
    All.push_back(Name);
  return All;
}

std::vector<std::string> pcb::adversarialProgramNames() {
  return {"robson", "cohen-petrank"};
}

std::vector<std::string> pcb::ordinaryProgramNames() {
  return {"random-churn", "markov-phase", "stack-lifo", "queue-fifo",
          "sawtooth"};
}

std::vector<std::string> pcb::updateProgramNames() {
  return {"update-fill-drain", "update-alternating", "update-comb",
          "update-size-profile", "update-mix"};
}
