//===- adversary/RobsonProgram.cpp - Robson's bad program PR -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/RobsonProgram.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

RobsonProgram::RobsonProgram(uint64_t M, unsigned LastStep)
    : LastStep(LastStep), Core(M, /*TrackGhosts=*/true) {
  assert(M >= pow2(LastStep) && "live bound below the largest allocation");
}

bool RobsonProgram::onObjectMoved(ObjectId Id, Addr From, Addr To) {
  (void)To;
  assert(TheHeap && "moved before the program's first step");
  return Core.handleMove(*TheHeap, Id, From);
}

bool RobsonProgram::step(MutatorContext &Ctx) {
  TheHeap = &Ctx.heap();
  if (Step > LastStep)
    return false;
  if (Step == 0)
    Core.runStepZero(Ctx);
  else
    Core.runStep(Ctx, Step);
  ++Step;
  return Step <= LastStep;
}
