//===- adversary/PatternWorkloads.h - Classic allocation patterns -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three canonical lifetime patterns from the allocation-behaviour
/// literature, as programs in the paper's model:
///
///   StackProgram    LIFO — objects die in reverse allocation order
///                   (call stacks, arena phases); the friendliest case
///                   for every placement policy.
///   QueueProgram    FIFO — a sliding window of the W most recent
///                   objects (buffers, pipelines); freed space trails
///                   the allocation point.
///   SawtoothProgram fill the live budget, drop (almost) everything,
///                   repeat with a different size mix each wave — the
///                   classic driver of size-class drift.
///
/// Together with the synthetic workloads these provide the "ordinary
/// program" contrast for the paper's worst-case bounds.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_PATTERNWORKLOADS_H
#define PCBOUND_ADVERSARY_PATTERNWORKLOADS_H

#include "adversary/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace pcb {

/// LIFO lifetimes: push to a target depth, pop a random run, repeat.
class StackProgram : public Program {
public:
  struct Options {
    uint64_t Steps = 64;
    double TargetOccupancy = 0.9;
    unsigned MaxLogSize = 8;
    uint64_t Seed = 3;
  };

  StackProgram(uint64_t M, const Options &O) : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "stack-lifo"; }

private:
  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t StepsDone = 0;
  std::vector<ObjectId> Stack;
};

/// FIFO lifetimes: a window of recent objects; each step allocates a
/// batch and frees the same count from the window's old end.
class QueueProgram : public Program {
public:
  struct Options {
    uint64_t Steps = 64;
    uint64_t BatchObjects = 32;
    double TargetOccupancy = 0.9;
    unsigned MaxLogSize = 8;
    uint64_t Seed = 4;
  };

  QueueProgram(uint64_t M, const Options &O) : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "queue-fifo"; }

private:
  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t StepsDone = 0;
  std::deque<ObjectId> Window;
};

/// Sawtooth lifetimes: fill to the budget with one wave's size mix, free
/// all but a pinned residue, switch the mix, repeat.
class SawtoothProgram : public Program {
public:
  struct Options {
    uint64_t Waves = 12;
    double PinnedFraction = 0.02;
    double TargetOccupancy = 0.95;
    unsigned MinLogSize = 0;
    unsigned MaxLogSize = 8;
    uint64_t Seed = 5;
  };

  SawtoothProgram(uint64_t M, const Options &O)
      : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override { return "sawtooth"; }

private:
  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t WavesDone = 0;
  std::vector<ObjectId> Wave;
  std::vector<ObjectId> Pinned;
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_PATTERNWORKLOADS_H
