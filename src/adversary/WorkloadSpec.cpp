//===- adversary/WorkloadSpec.cpp - Config-driven workloads ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/WorkloadSpec.h"

#include "support/MathUtils.h"

#include <cassert>
#include <istream>
#include <sstream>

using namespace pcb;

bool WorkloadSpec::valid() const {
  if (Phases.empty())
    return false;
  for (const PhaseSpec &P : Phases) {
    if (P.Steps == 0)
      return false;
    if (P.TargetOccupancy < 0.0 || P.TargetOccupancy > 1.0)
      return false;
    if (P.FreeProbability < 0.0 || P.FreeProbability > 1.0)
      return false;
    if (P.MinLogSize > P.MaxLogSize || P.MaxLogSize >= 40)
      return false;
  }
  return true;
}

/// Parses one "key=value" token into \p Phase; returns false on unknown
/// keys or malformed values.
static bool applyPhaseOption(const std::string &Token, PhaseSpec &Phase) {
  size_t Eq = Token.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Token.size())
    return false;
  std::string Key = Token.substr(0, Eq);
  std::string Value = Token.substr(Eq + 1);
  char *End = nullptr;
  double Num = std::strtod(Value.c_str(), &End);
  if (!End || *End != '\0')
    return false;
  if (Key == "steps" && Num >= 1)
    Phase.Steps = uint64_t(Num);
  else if (Key == "occupancy")
    Phase.TargetOccupancy = Num;
  else if (Key == "free")
    Phase.FreeProbability = Num;
  else if (Key == "minlog" && Num >= 0)
    Phase.MinLogSize = unsigned(Num);
  else if (Key == "maxlog" && Num >= 0)
    Phase.MaxLogSize = unsigned(Num);
  else
    return false;
  return true;
}

bool pcb::parseWorkloadSpec(std::istream &IS, WorkloadSpec &Spec,
                            std::string &Error) {
  Spec = WorkloadSpec();
  Spec.Phases.clear();
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Word;
    if (!(LS >> Word) || Word[0] == '#')
      continue;
    if (Word == "seed") {
      if (!(LS >> Spec.Seed)) {
        Error = "line " + std::to_string(LineNo) + ": seed needs a number";
        return false;
      }
      continue;
    }
    if (Word == "phase") {
      PhaseSpec Phase;
      std::string Token;
      while (LS >> Token)
        if (!applyPhaseOption(Token, Phase)) {
          Error = "line " + std::to_string(LineNo) + ": bad option '" +
                  Token + "'";
          return false;
        }
      Spec.Phases.push_back(Phase);
      continue;
    }
    Error = "line " + std::to_string(LineNo) + ": unknown directive '" +
            Word + "'";
    return false;
  }
  if (!Spec.valid()) {
    Error = "spec is empty or has out-of-range phase parameters";
    return false;
  }
  return true;
}

SpecProgram::SpecProgram(uint64_t M, WorkloadSpec Spec)
    : M(M), Spec(std::move(Spec)), Rand(this->Spec.Seed) {
  assert(this->Spec.valid() && "running an invalid workload spec");
}

bool SpecProgram::step(MutatorContext &Ctx) {
  if (PhaseIndex >= Spec.Phases.size())
    return false;
  const PhaseSpec &Phase = Spec.Phases[PhaseIndex];

  // Death sub-phase.
  std::vector<ObjectId> Kept;
  Kept.reserve(Mine.size());
  for (ObjectId Id : Mine) {
    if (!Ctx.heap().isLive(Id))
      continue;
    if (Rand.nextBool(Phase.FreeProbability)) {
      Ctx.free(Id);
      continue;
    }
    Kept.push_back(Id);
  }
  Mine = std::move(Kept);

  // Refill sub-phase within this phase's size band.
  uint64_t Target = uint64_t(Phase.TargetOccupancy * double(M));
  unsigned Span = Phase.MaxLogSize - Phase.MinLogSize + 1;
  while (Ctx.heap().stats().LiveWords < Target) {
    uint64_t Size =
        pow2(Phase.MinLogSize + unsigned(Rand.nextBelow(Span)));
    if (Ctx.headroom() < Size)
      break;
    Mine.push_back(Ctx.allocate(Size));
  }

  if (++StepInPhase >= Phase.Steps) {
    StepInPhase = 0;
    ++PhaseIndex;
  }
  return PhaseIndex < Spec.Phases.size();
}
