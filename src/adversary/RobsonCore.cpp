//===- adversary/RobsonCore.cpp - Shared Robson stage machinery ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/RobsonCore.h"

#include "heap/ChunkView.h"

#include <cassert>

using namespace pcb;

void RobsonCore::runStepZero(MutatorContext &Ctx) {
  Offset = 0;
  Mine.reserve(size_t(M < (uint64_t(1) << 26) ? M : (uint64_t(1) << 26)));
  for (uint64_t K = 0; K != M; ++K)
    Mine.push_back(Ctx.allocate(1));
  LastOccupierCount = M;
}

uint64_t RobsonCore::scoreOffset(const Heap &H, unsigned I,
                                 uint64_t F) const {
  ChunkView View(I);
  uint64_t ChunkSize = View.chunkSize();
  uint64_t Score = 0;
  for (ObjectId Id : Mine) {
    if (!H.isLive(Id))
      continue;
    const Object &O = H.object(Id);
    if (View.isOccupying(O.Address, O.Size, F))
      Score += ChunkSize - O.Size;
  }
  for (const GhostObject &G : Ghosts)
    if (View.isOccupying(G.Address, G.Size, F))
      Score += ChunkSize - G.Size;
  return Score;
}

void RobsonCore::runStep(MutatorContext &Ctx, unsigned I) {
  assert(I >= 1 && "step zero has its own entry point");
  const Heap &H = Ctx.heap();
  ChunkView View(I);

  // Pick f_i among the two extensions of f_{i-1} (Algorithm 2, line 4):
  // keep the one whose occupying objects waste more chunk space.
  uint64_t CandLow = Offset;
  uint64_t CandHigh = Offset + pow2(I - 1);
  uint64_t ScoreLow = scoreOffset(H, I, CandLow);
  uint64_t ScoreHigh = scoreOffset(H, I, CandHigh);
  Offset = ScoreHigh > ScoreLow ? CandHigh : CandLow;

  // Free every live object that is not f_i-occupying; drop such ghosts.
  uint64_t Occupiers = 0;
  uint64_t LiveWordsKept = 0;
  std::vector<ObjectId> Kept;
  Kept.reserve(Mine.size());
  for (ObjectId Id : Mine) {
    if (!H.isLive(Id))
      continue;
    const Object &O = H.object(Id);
    if (!View.isOccupying(O.Address, O.Size, Offset)) {
      Ctx.free(Id);
      continue;
    }
    Kept.push_back(Id);
    LiveWordsKept += O.Size;
    ++Occupiers;
  }
  Mine = std::move(Kept);

  std::vector<GhostObject> KeptGhosts;
  KeptGhosts.reserve(Ghosts.size());
  GhostWordsTotal = 0;
  for (const GhostObject &G : Ghosts) {
    if (!View.isOccupying(G.Address, G.Size, Offset))
      continue;
    KeptGhosts.push_back(G);
    GhostWordsTotal += G.Size;
    ++Occupiers;
  }
  Ghosts = std::move(KeptGhosts);

  // Fill the remaining live-or-ghost budget with 2^i objects (Algorithm 1
  // line 7 / Algorithm 2 line 6). Allocation may trigger compaction; that
  // converts live words into ghost words one-for-one, so the budget
  // computed here stays valid.
  uint64_t LiveOrGhostWords = LiveWordsKept + GhostWordsTotal;
  uint64_t Size = pow2(I);
  uint64_t Count = LiveOrGhostWords <= M ? (M - LiveOrGhostWords) / Size : 0;
  for (uint64_t K = 0; K != Count; ++K)
    Mine.push_back(Ctx.allocate(Size));
  LastOccupierCount = Occupiers + Count;
}

bool RobsonCore::handleMove(const Heap &H, ObjectId Id, Addr From) {
  if (TrackGhosts) {
    const Object &O = H.object(Id);
    Ghosts.push_back(GhostObject{From, O.Size});
    GhostWordsTotal += O.Size;
  }
  return true;
}
