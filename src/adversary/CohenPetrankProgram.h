//===- adversary/CohenPetrankProgram.h - The bad program PF -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's main construction: the malicious program PF (Algorithm 1)
/// that forces every c-partial memory manager to use a heap of at least
/// M * h words (Theorem 1).
///
/// Stage one (steps 0..sigma) runs Robson's program with ghost-object
/// bookkeeping; steps sigma+1..2*sigma-1 are null steps. At the stage
/// boundary (line 9) every f_sigma-occupying object is associated with
/// the size-2^(2*sigma-1) aligned chunk containing its occupying word.
///
/// Stage two (steps i = 2*sigma..log2(n)-2) maintains, per aligned
/// 2^i-chunk, the association set OD: it frees as many associated objects
/// as possible while keeping each chunk's associated words at least
/// 2^(i-sigma) (density 2^-sigma, chosen > 1/c so evacuating a chunk
/// costs the manager more budget than the allocation recharges), then
/// allocates floor(x*M/2^(i+2)) objects of size 2^(i+2), associating the
/// two halves of each with the first and third chunk it fully covers (the
/// middle chunk enters the E-set of Definition 4.12).
///
/// Compacted objects are freed immediately: in stage one they become
/// ghosts at their original address; in stage two their association
/// entries remain (as phantoms) until a new object overwrites the chunk,
/// exactly as Definition 4.14's accounting requires.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_ADVERSARY_COHENPETRANKPROGRAM_H
#define PCBOUND_ADVERSARY_COHENPETRANKPROGRAM_H

#include "adversary/RobsonCore.h"

#include <array>
#include <map>

namespace pcb {

/// The Cohen-Petrank adversary PF.
class CohenPetrankProgram : public Program {
public:
  /// Knobs for the ablation study (bench E7). Defaults reproduce the
  /// paper's Algorithm 1.
  struct Options {
    /// Density exponent sigma; 0 selects the h-maximizing admissible
    /// value automatically.
    unsigned SigmaOverride = 0;
    /// Stage-one ghost bookkeeping (the reduction to Robson's analysis).
    bool TrackGhosts = true;
    /// Run Robson's program as stage one (the paper's first improvement
    /// over POPL 2011). When false, stage one only fills the heap with
    /// unit objects and stage two starts from a flat association — the
    /// prior work's style of adversary.
    bool RobsonBootstrap = true;
    /// Keep chunk density at 2^-sigma; when false the program frees
    /// everything it can (density 1 word), as a naive adversary would.
    bool MaintainDensity = true;
    /// Allocate the fixed x*M words per stage-two step (the paper's
    /// second improvement over POPL 2011); when false, allocate as much
    /// as the live bound allows.
    bool FixedAllocation = true;
  };

  /// \p M and \p N are the live bound and maximum object size in words
  /// (N a power of two); \p C the manager's compaction quota.
  CohenPetrankProgram(uint64_t M, uint64_t N, double C);
  CohenPetrankProgram(uint64_t M, uint64_t N, double C, const Options &O);

  bool step(MutatorContext &Ctx) override;
  bool onObjectMoved(ObjectId Id, Addr From, Addr To) override;
  std::string name() const override { return "cohen-petrank"; }

  /// The density exponent in use.
  unsigned sigma() const { return Sigma; }
  /// The per-step allocation factor x = (1 - 2^-sigma * h) / (sigma + 1).
  double allocationFactor() const { return X; }
  /// The waste factor h Theorem 1 predicts for these parameters.
  double targetWasteFactor() const { return TargetH; }
  unsigned currentStep() const { return Step; }
  bool inStageTwo() const { return Phase == PhaseKind::StageTwo; }
  uint64_t numTrackedChunks() const { return Chunks.size(); }

  /// The potential function u(t) of Definition 4.4, in words. Defined
  /// once stage two has started (returns 0 before). Claim 4.16 asserts it
  /// never decreases; the property tests verify that.
  double potential() const;

  /// Claim 4.15: association sets are disjoint, every live object is
  /// associated whole with one chunk or half-and-half with two, and live
  /// associated objects intersect their chunk.
  bool checkAssociationInvariants() const;

  /// Proposition 4.17-style bound: every tracked chunk holds at most one
  /// live associated object, or at most 2 * 2^(step - sigma) live
  /// associated words. Holds after each completed stage-two step (the
  /// proposition speaks about allocation time, i.e. after the free
  /// pass); trivially true before then or without MaintainDensity.
  bool checkDensityInvariant() const;

private:
  enum class PhaseKind { StageOne, NullSteps, StageTwo, Done };

  /// One association record: \p Words of object \p Id are associated with
  /// the containing chunk (half objects carry half their size). Phantom
  /// entries denote compacted-then-freed objects whose association
  /// persists until the chunk is overwritten.
  struct Entry {
    ObjectId Id;
    uint64_t Words;
    bool Phantom;
  };

  struct ChunkState {
    std::vector<Entry> Entries;
    uint64_t AssocWords = 0;
    bool InE = false;
  };

  static constexpr uint64_t NoChunk = UINT64_MAX;

  void advancePhase(MutatorContext &Ctx);
  void buildInitialAssociation(MutatorContext &Ctx); // Algorithm 1 line 9
  void mergeChunksTo(unsigned NewLog);               // line 12
  void normalizeChunk(ChunkState &CS);
  void rebuildWhere();
  void freeForDensity(MutatorContext &Ctx, unsigned I); // line 13
  void reevaluateChunk(MutatorContext &Ctx, uint64_t Index, uint64_t T,
                       std::vector<uint64_t> &Worklist);
  void allocateStageTwo(MutatorContext &Ctx, unsigned I); // line 14
  void clearChunkForOverwrite(uint64_t Index);

  uint64_t M;
  uint64_t N;
  double C;
  Options Opts;
  unsigned LogN;
  unsigned Sigma = 0;
  double TargetH = 1.0;
  double X = 0.0;
  unsigned Step = 0;
  PhaseKind Phase = PhaseKind::StageOne;
  RobsonCore Core;
  unsigned CurLog = 0;
  bool RanStageTwoStep = false;
  std::map<uint64_t, ChunkState> Chunks;
  /// Object id -> the one or two chunk indices it is associated with,
  /// indexed by id ({NoChunk, NoChunk} = not associated; slot 0 always
  /// names a real chunk otherwise). A flat table: ids are dense and the
  /// lookups (every move, every density free) are pure keyed access.
  std::vector<std::array<uint64_t, 2>> Where;
  const Heap *TheHeap = nullptr;

  /// Where[Id], growing the table as needed.
  std::array<uint64_t, 2> &whereSlot(ObjectId Id) {
    if (Id >= Where.size())
      Where.resize(size_t(Id) + 1, {NoChunk, NoChunk});
    return Where[Id];
  }
  bool isAssociated(ObjectId Id) const {
    return Id < Where.size() && Where[Id][0] != NoChunk;
  }
};

} // namespace pcb

#endif // PCBOUND_ADVERSARY_COHENPETRANKPROGRAM_H
