//===- adversary/SyntheticWorkloads.cpp - Non-adversarial programs -------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "adversary/SyntheticWorkloads.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace pcb;

bool RandomChurnProgram::step(MutatorContext &Ctx) {
  if (StepsDone >= Opts.Steps)
    return false;

  // Death phase: each live object dies independently.
  std::vector<ObjectId> Kept;
  Kept.reserve(Mine.size());
  for (ObjectId Id : Mine) {
    if (!Ctx.heap().isLive(Id))
      continue;
    if (Rand.nextBool(Opts.FreeProbability)) {
      Ctx.free(Id);
      continue;
    }
    Kept.push_back(Id);
  }
  Mine = std::move(Kept);

  // Refill phase: allocate random power-of-two sizes up to the target.
  uint64_t Target = uint64_t(Opts.TargetOccupancy * double(M));
  while (Ctx.heap().stats().LiveWords < Target) {
    uint64_t Size = pow2(unsigned(Rand.nextBelow(Opts.MaxLogSize + 1)));
    if (Ctx.headroom() < Size)
      break;
    Mine.push_back(Ctx.allocate(Size));
  }

  ++StepsDone;
  return StepsDone < Opts.Steps;
}

bool MarkovPhaseProgram::step(MutatorContext &Ctx) {
  uint64_t TotalSteps = Opts.Phases * Opts.StepsPerPhase;
  if (StepsDone >= TotalSteps)
    return false;

  bool PhaseChange =
      StepsDone != 0 && StepsDone % Opts.StepsPerPhase == 0;
  if (PhaseChange) {
    // Most of the previous phase's objects die; survivors pin their
    // pages, recreating the drifting-class fragmentation pattern.
    std::vector<ObjectId> Kept;
    Kept.reserve(Mine.size());
    for (ObjectId Id : Mine) {
      if (!Ctx.heap().isLive(Id))
        continue;
      if (Rand.nextBool(1.0 - Opts.SurvivorFraction)) {
        Ctx.free(Id);
        continue;
      }
      Kept.push_back(Id);
    }
    Mine = std::move(Kept);
  }

  // The phase's preferred class wanders over [MinLogSize, MaxLogSize].
  uint64_t Phase = StepsDone / Opts.StepsPerPhase;
  unsigned Span = Opts.MaxLogSize - Opts.MinLogSize + 1;
  unsigned Preferred = Opts.MinLogSize + unsigned(Phase % Span);

  uint64_t Target = uint64_t(Opts.TargetOccupancy * double(M));
  while (Ctx.heap().stats().LiveWords < Target) {
    // 3/4 of allocations use the preferred class, the rest are uniform.
    unsigned Log = Rand.nextBool(0.75)
                       ? Preferred
                       : Opts.MinLogSize +
                             unsigned(Rand.nextBelow(Span));
    uint64_t Size = pow2(Log);
    if (Ctx.headroom() < Size)
      break;
    Mine.push_back(Ctx.allocate(Size));
  }

  ++StepsDone;
  return StepsDone < TotalSteps;
}

bool pcb::validateTrace(const std::vector<TraceOp> &Trace,
                        std::string *Why) {
  auto Fail = [&](size_t Pos, const std::string &Reason) {
    if (Why)
      *Why = "op " + std::to_string(Pos) + ": " + Reason;
    return false;
  };
  uint64_t Allocations = 0;
  std::vector<bool> Freed;
  for (size_t Pos = 0; Pos != Trace.size(); ++Pos) {
    const TraceOp &Op = Trace[Pos];
    switch (Op.Op) {
    case TraceOp::Kind::Alloc:
      if (Op.Value == 0)
        return Fail(Pos, "zero-size allocation");
      ++Allocations;
      Freed.push_back(false);
      break;
    case TraceOp::Kind::Free:
      if (Op.Value >= Allocations)
        return Fail(Pos, "frees allocation " + std::to_string(Op.Value) +
                             " which has not happened yet");
      if (Freed[size_t(Op.Value)])
        return Fail(Pos, "frees allocation " + std::to_string(Op.Value) +
                             " twice");
      Freed[size_t(Op.Value)] = true;
      break;
    }
  }
  return true;
}

uint64_t pcb::tracePeakLiveWords(const std::vector<TraceOp> &Trace) {
  uint64_t Live = 0;
  uint64_t Peak = 0;
  std::vector<uint64_t> Sizes;
  for (const TraceOp &Op : Trace) {
    switch (Op.Op) {
    case TraceOp::Kind::Alloc:
      Sizes.push_back(Op.Value);
      Live += Op.Value;
      Peak = std::max(Peak, Live);
      break;
    case TraceOp::Kind::Free:
      assert(Op.Value < Sizes.size() && "trace frees unknown allocation");
      Live -= Sizes[size_t(Op.Value)];
      break;
    }
  }
  return Peak;
}

bool TraceReplayProgram::step(MutatorContext &Ctx) {
  if (Position >= Trace.size())
    return false;
  const TraceOp &Op = Trace[Position++];
  switch (Op.Op) {
  case TraceOp::Kind::Alloc:
    Allocated.push_back(Ctx.allocate(Op.Value));
    break;
  case TraceOp::Kind::Free: {
    assert(Op.Value < Allocated.size() && "trace frees unknown allocation");
    ObjectId Id = Allocated[Op.Value];
    assert(Ctx.heap().isLive(Id) && "trace frees a dead object");
    Ctx.free(Id);
    break;
  }
  }
  return Position < Trace.size();
}
