//===- runner/Runner.cpp - Parallel experiment execution -----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "runner/Runner.h"

#include "obs/Profiler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#ifdef _WIN32
#include <io.h>
#define PCB_STDERR_ISATTY() (_isatty(_fileno(stderr)) != 0)
#else
#include <unistd.h>
#define PCB_STDERR_ISATTY() (isatty(fileno(stderr)) != 0)
#endif

using namespace pcb;

namespace {

/// Throttled cells-done / elapsed / ETA line on stderr. tick() is called
/// by whichever worker finished a cell; contended updates simply skip
/// their report (try_lock), so reporting never serializes the pool.
class ProgressReporter {
public:
  ProgressReporter(uint64_t Total, bool Enabled)
      : Total(Total), Enabled(Enabled),
        Start(std::chrono::steady_clock::now()) {}

  void tick() {
    uint64_t DoneNow = Done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Enabled)
      return;
    std::unique_lock<std::mutex> Lock(Mu, std::try_to_lock);
    if (!Lock.owns_lock())
      return;
    auto Now = std::chrono::steady_clock::now();
    if (DoneNow != Total && Now - LastReport < std::chrono::milliseconds(250))
      return;
    LastReport = Now;
    double Elapsed = std::chrono::duration<double>(Now - Start).count();
    double Eta = DoneNow == 0
                     ? 0.0
                     : Elapsed / double(DoneNow) * double(Total - DoneNow);
    std::fprintf(stderr, "\r# cells %llu/%llu (%3.0f%%) elapsed %.1fs eta %.1fs ",
                 (unsigned long long)DoneNow, (unsigned long long)Total,
                 Total == 0 ? 100.0 : 100.0 * double(DoneNow) / double(Total),
                 Elapsed, Eta);
    Reported = true;
  }

  ~ProgressReporter() {
    if (Enabled && Reported)
      std::fprintf(stderr, "\n");
  }

private:
  uint64_t Total;
  bool Enabled;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point LastReport{};
  std::atomic<uint64_t> Done{0};
  std::mutex Mu;
  bool Reported = false;
};

} // namespace

Runner::Runner(RunnerOptions Opts)
    : NumThreads(Opts.Threads == 0 ? defaultThreads() : Opts.Threads),
      Progress(Opts.Progress), Prof(Opts.Prof) {}

unsigned Runner::defaultThreads() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

bool Runner::progressEnabled() const {
  if (Progress == 0)
    return false;
  if (Progress > 0)
    return true;
  return PCB_STDERR_ISATTY();
}

void Runner::forEachCell(uint64_t NumCells,
                         const std::function<void(uint64_t)> &Fn) const {
  CellSeconds.assign(size_t(NumCells), 0.0);
  WallSeconds = 0.0;
  if (NumCells == 0)
    return;
  ProgressReporter Prog(NumCells, progressEnabled());
  auto WallStart = std::chrono::steady_clock::now();
  auto RunCell = [&](uint64_t I) {
    auto Start = std::chrono::steady_clock::now();
    Fn(I);
    CellSeconds[size_t(I)] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  };

  if (NumThreads <= 1 || NumCells == 1) {
    // Inline cells see the calling thread's profiler; merge into the
    // aggregate only if the caller asked for one that is not already the
    // installed profiler (else the sections would double-count).
    Profiler Local;
    ProfilerScope Scope(Prof && Prof != Profiler::current() ? &Local
                                                            : nullptr);
    for (uint64_t I = 0; I != NumCells; ++I) {
      RunCell(I);
      Prog.tick();
    }
    if (Prof && Prof != Profiler::current())
      Prof->merge(Local);
    WallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();
    return;
  }

  std::atomic<uint64_t> NextCell{0};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;
  auto Work = [&] {
    // Workers never inherit the caller's thread-local profiler; give each
    // its own and merge (commutative adds) after the join.
    Profiler Local;
    ProfilerScope Scope(Prof ? &Local : nullptr);
    for (;;) {
      uint64_t I = NextCell.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumCells)
        break;
      try {
        RunCell(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMu);
        if (!FirstError)
          FirstError = std::current_exception();
        // Drain the queue so the other workers stop picking up cells.
        NextCell.store(NumCells, std::memory_order_relaxed);
        break;
      }
      Prog.tick();
    }
    if (Prof) {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      Prof->merge(Local);
    }
  };

  unsigned Spawn =
      unsigned(std::min<uint64_t>(uint64_t(NumThreads), NumCells));
  std::vector<std::thread> Pool;
  Pool.reserve(Spawn);
  for (unsigned T = 0; T != Spawn; ++T)
    Pool.emplace_back(Work);
  for (std::thread &Th : Pool)
    Th.join();
  WallSeconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - WallStart)
                    .count();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

void Runner::run(const ExperimentGrid &G,
                 const std::function<std::vector<Row>(const GridCell &)> &Fn,
                 ResultSink &Sink) const {
  Sink.resizeCells(G.numCells());
  forEachCell(G.numCells(),
              [&](uint64_t I) { Sink.store(I, Fn(G.cell(I))); });
}

void Runner::runRows(const ExperimentGrid &G,
                     const std::function<Row(const GridCell &)> &Fn,
                     ResultSink &Sink) const {
  run(
      G,
      [&Fn](const GridCell &Cell) {
        return std::vector<Row>{Fn(Cell)};
      },
      Sink);
}
