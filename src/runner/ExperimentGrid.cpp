//===- runner/ExperimentGrid.cpp - Declarative experiment plans ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "runner/ExperimentGrid.h"

#include "support/Random.h"

#include <cassert>

using namespace pcb;

ExperimentGrid::ExperimentGrid(uint64_t BaseSeed) : BaseSeed(BaseSeed) {}

ExperimentGrid &ExperimentGrid::addAxis(std::string Name,
                                        std::vector<double> Values) {
  GridAxis Axis;
  Axis.Name = std::move(Name);
  Axis.Values.reserve(Values.size());
  for (double V : Values)
    Axis.Values.push_back(AxisValue{AxisValue::Number, V, {}});
  Axes.push_back(std::move(Axis));
  return *this;
}

ExperimentGrid &ExperimentGrid::addAxis(std::string Name,
                                        std::vector<std::string> Values) {
  GridAxis Axis;
  Axis.Name = std::move(Name);
  Axis.Values.reserve(Values.size());
  for (std::string &V : Values)
    Axis.Values.push_back(AxisValue{AxisValue::Label, 0.0, std::move(V)});
  Axes.push_back(std::move(Axis));
  return *this;
}

ExperimentGrid &ExperimentGrid::addRangeAxis(std::string Name, uint64_t Lo,
                                             uint64_t Hi) {
  std::vector<double> Values;
  for (uint64_t V = Lo; V <= Hi; ++V)
    Values.push_back(double(V));
  return addAxis(std::move(Name), std::move(Values));
}

size_t ExperimentGrid::axisNumbered(const std::string &Name) const {
  for (size_t I = 0; I != Axes.size(); ++I)
    if (Axes[I].Name == Name)
      return I;
  assert(false && "unknown grid axis");
  return 0;
}

uint64_t ExperimentGrid::numCells() const {
  if (Axes.empty())
    return 0;
  uint64_t Product = 1;
  for (const GridAxis &Axis : Axes)
    Product *= Axis.Values.size();
  return Product;
}

GridCell ExperimentGrid::cell(uint64_t Index) const {
  assert(Index < numCells() && "cell index out of range");
  // First axis outermost: peel from the last (fastest-varying) axis.
  std::vector<size_t> Coord(Axes.size());
  uint64_t Rest = Index;
  for (size_t I = Axes.size(); I-- != 0;) {
    size_t Size = Axes[I].Values.size();
    Coord[I] = size_t(Rest % Size);
    Rest /= Size;
  }
  return GridCell(*this, Index, std::move(Coord));
}

uint64_t GridCell::seed() const { return splitSeed(G->baseSeed(), Idx); }

double GridCell::num(const std::string &Axis) const {
  size_t A = G->axisNumbered(Axis);
  const AxisValue &V = G->Axes[A].Values[Coord[A]];
  assert(V.ValueKind == AxisValue::Number && "axis is not numeric");
  return V.Num;
}

const std::string &GridCell::str(const std::string &Axis) const {
  size_t A = G->axisNumbered(Axis);
  const AxisValue &V = G->Axes[A].Values[Coord[A]];
  assert(V.ValueKind == AxisValue::Label && "axis is not string-valued");
  return V.Str;
}

size_t GridCell::axisIndex(const std::string &Axis) const {
  return Coord[G->axisNumbered(Axis)];
}
