//===- runner/ResultSink.cpp - Thread-safe result collection -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "runner/ResultSink.h"

#include "support/OptionParser.h"

#include <cassert>
#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace pcb;

ResultSink::ResultSink(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void ResultSink::resizeCells(uint64_t NumCells) {
  std::lock_guard<std::mutex> Lock(Mu);
  CellRows.assign(size_t(NumCells), {});
}

void ResultSink::store(uint64_t CellIndex, std::vector<Row> Rows) {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(CellIndex < CellRows.size() && "cell index outside the sweep");
  CellRows[size_t(CellIndex)] = std::move(Rows);
}

void ResultSink::append(Row R) {
  std::lock_guard<std::mutex> Lock(Mu);
  Appended.push_back(std::move(R));
}

uint64_t ResultSink::numRows() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = Appended.size();
  for (const std::vector<Row> &Rows : CellRows)
    N += Rows.size();
  return N;
}

Table ResultSink::toTable() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Table T(Header);
  auto AddRow = [&T](const Row &R) {
    T.beginRow();
    for (const std::string &Cell : R.cells())
      T.addCell(Cell);
  };
  for (const std::vector<Row> &Rows : CellRows)
    for (const Row &R : Rows)
      AddRow(R);
  for (const Row &R : Appended)
    AddRow(R);
  return T;
}

/// True when \p Cell renders as a finite JSON number.
static bool isJsonNumber(const std::string &Cell) {
  if (Cell.empty())
    return false;
  char *End = nullptr;
  std::strtod(Cell.c_str(), &End);
  if (End != Cell.c_str() + Cell.size())
    return false;
  // strtod accepts inf/nan and hex floats; JSON does not.
  for (char Ch : Cell)
    if ((Ch < '0' || Ch > '9') && Ch != '+' && Ch != '-' && Ch != '.' &&
        Ch != 'e' && Ch != 'E')
      return false;
  return true;
}

static void printJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20)
        OS << "\\u001f"; // control characters never occur in our cells
      else
        OS << Ch;
    }
  }
  OS << '"';
}

void ResultSink::printJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  OS << "[\n";
  bool FirstRow = true;
  auto PrintRow = [&](const Row &R) {
    if (!FirstRow)
      OS << ",\n";
    FirstRow = false;
    OS << "  {";
    for (size_t I = 0; I != Header.size(); ++I) {
      if (I != 0)
        OS << ", ";
      printJsonString(OS, Header[I]);
      OS << ": ";
      const std::string Cell = I < R.cells().size() ? R.cells()[I] : "";
      if (isJsonNumber(Cell))
        OS << Cell;
      else
        printJsonString(OS, Cell);
    }
    OS << "}";
  };
  for (const std::vector<Row> &Rows : CellRows)
    for (const Row &R : Rows)
      PrintRow(R);
  for (const Row &R : Appended)
    PrintRow(R);
  OS << "\n]\n";
}

bool ResultSink::emit(const OptionParser &Opts) const {
  if (Opts.getBool("json", false))
    printJson(std::cout);
  else if (Opts.getBool("csv", false))
    toTable().printCsv(std::cout);
  else
    toTable().printAligned(std::cout);
  std::cout.flush();
  if (!std::cout) {
    std::cerr << "error: writing results to stdout failed\n";
    return false;
  }

  std::string OutPath = Opts.getString("out", "");
  if (OutPath.empty())
    return true;
  bool Json = OutPath.size() >= 5 &&
              OutPath.compare(OutPath.size() - 5, 5, ".json") == 0;
  std::ofstream OS(OutPath);
  if (OS) {
    if (Json)
      printJson(OS);
    else
      toTable().printCsv(OS);
    OS.flush();
  }
  // One check covers open failure and mid-run write failure (disk full,
  // path removed): any failed state means rows were dropped.
  if (!OS) {
    std::cerr << "error: cannot write '" << OutPath << "'\n";
    return false;
  }
  std::cout << "# wrote " << OutPath << "\n";
  return true;
}
