//===- runner/ExperimentGrid.h - Declarative experiment plans ---*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative half of the experiment runner: an ExperimentGrid is a
/// cartesian product of named axes (managers, programs, c/n/M values, …),
/// and a GridCell is one point of that product. Cells are identified by a
/// single linear index with the first-added axis outermost (so iterating
/// indices 0..numCells()-1 reproduces the nested-loop order the benches
/// historically used), and every cell carries a deterministic seed derived
/// only from (grid base seed, cell index) — never from execution order or
/// thread assignment.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_RUNNER_EXPERIMENTGRID_H
#define PCBOUND_RUNNER_EXPERIMENTGRID_H

#include <cstdint>
#include <string>
#include <vector>

namespace pcb {

class ExperimentGrid;

/// One value along an axis: either a number or a string label.
struct AxisValue {
  enum Kind { Number, Label };
  Kind ValueKind;
  double Num = 0.0;
  std::string Str;
};

/// One named dimension of a grid.
struct GridAxis {
  std::string Name;
  std::vector<AxisValue> Values;
};

/// One point of a grid: per-axis value accessors plus the cell's identity
/// (linear index and deterministic seed). Cheap to copy; valid only while
/// the owning grid is alive.
class GridCell {
public:
  GridCell(const ExperimentGrid &G, uint64_t Index,
           std::vector<size_t> Coordinate)
      : G(&G), Idx(Index), Coord(std::move(Coordinate)) {}

  /// The cell's linear index in [0, numCells()).
  uint64_t index() const { return Idx; }

  /// Deterministic per-cell seed: splitSeed(grid base seed, index()).
  /// Identical across runs, thread counts, and execution orders.
  uint64_t seed() const;

  /// The numeric value of axis \p Axis at this cell. The axis must exist
  /// and be numeric.
  double num(const std::string &Axis) const;

  /// The string value of axis \p Axis at this cell. The axis must exist
  /// and hold labels.
  const std::string &str(const std::string &Axis) const;

  /// The position of this cell's value along axis \p Axis.
  size_t axisIndex(const std::string &Axis) const;

private:
  const ExperimentGrid *G;
  uint64_t Idx;
  std::vector<size_t> Coord;
};

/// A cartesian experiment plan over named axes. Axes are immutable once
/// added; the grid is then a pure function index -> cell.
class ExperimentGrid {
public:
  /// \p BaseSeed seeds the whole sweep; per-cell seeds are split from it.
  explicit ExperimentGrid(uint64_t BaseSeed = 0x70636230756e64ULL);

  /// Adds a numeric axis. Returns *this for chaining.
  ExperimentGrid &addAxis(std::string Name, std::vector<double> Values);

  /// Adds a string-labelled axis. Returns *this for chaining.
  ExperimentGrid &addAxis(std::string Name, std::vector<std::string> Values);

  /// Adds the integer range [\p Lo, \p Hi] (inclusive, step 1) as a
  /// numeric axis; an empty axis when Lo > Hi.
  ExperimentGrid &addRangeAxis(std::string Name, uint64_t Lo, uint64_t Hi);

  size_t numAxes() const { return Axes.size(); }
  const GridAxis &axis(size_t I) const { return Axes[I]; }

  /// Index of the axis named \p Name; asserts that it exists.
  size_t axisNumbered(const std::string &Name) const;

  /// Total number of cells: the product of the axis sizes. A grid with no
  /// axes (or with any empty axis) has zero cells and runs nothing.
  uint64_t numCells() const;

  /// Decodes linear index \p Index (first axis outermost, last axis
  /// fastest-varying) into a cell.
  GridCell cell(uint64_t Index) const;

  uint64_t baseSeed() const { return BaseSeed; }

private:
  friend class GridCell;
  uint64_t BaseSeed;
  std::vector<GridAxis> Axes;
};

} // namespace pcb

#endif // PCBOUND_RUNNER_EXPERIMENTGRID_H
