//===- runner/ResultSink.h - Thread-safe result collection ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection half of the experiment runner. Worker threads store the
/// rows each grid cell produced under that cell's index; the sink then
/// flattens them in cell order, so the emitted table is identical no
/// matter how many threads ran the sweep or in which order cells
/// finished. Emission (aligned text, CSV, JSON, and the benches' common
/// `csv=` / `json=` / `out=` options) lives here too, and unlike the old
/// bench/BenchUtils.h::emitTable it checks every stream after writing:
/// an unwritable or mid-run-failing output is reported and turned into a
/// false return, which the benches map to a non-zero exit code.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_RUNNER_RESULTSINK_H
#define PCBOUND_RUNNER_RESULTSINK_H

#include "support/Table.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pcb {

class OptionParser;

/// One result row under construction: the same addCell vocabulary as
/// Table, accumulated privately by a cell function and handed to the sink.
class Row {
public:
  Row &addCell(std::string Cell) {
    Cells.push_back(std::move(Cell));
    return *this;
  }
  Row &addCell(const char *Cell) { return addCell(std::string(Cell)); }
  Row &addCell(uint64_t Value) { return addCell(std::to_string(Value)); }
  Row &addCell(int64_t Value) { return addCell(std::to_string(Value)); }
  Row &addCell(double Value, int Precision = 4) {
    return addCell(formatDouble(Value, Precision));
  }

  const std::vector<std::string> &cells() const { return Cells; }

private:
  std::vector<std::string> Cells;
};

/// Collects rows keyed by grid-cell index (thread-safe) plus optional
/// serially-appended rows, and renders/emits the resulting table.
class ResultSink {
public:
  explicit ResultSink(std::vector<std::string> Header);

  /// Prepares storage for \p NumCells cells. Called by the Runner before
  /// a sweep; storing to an index >= NumCells is a bug.
  void resizeCells(uint64_t NumCells);

  /// Stores \p Rows as cell \p CellIndex's output. Thread-safe; a cell
  /// may legitimately produce zero rows (out-of-domain points).
  void store(uint64_t CellIndex, std::vector<Row> Rows);

  /// Appends one row after all cell rows (serial use only — summary rows
  /// or benches that build rows from mapped results).
  void append(Row R);

  /// Total number of rows collected so far.
  uint64_t numRows() const;

  /// Flattens cell rows (in cell order) then appended rows into a Table.
  Table toTable() const;

  /// Renders as a JSON array of one object per row, keyed by the header.
  /// Cells that parse as finite numbers are emitted unquoted.
  void printJson(std::ostream &OS) const;

  /// Emits the table per the benches' common options — `csv=1` or
  /// `json=1` select the stdout format (aligned otherwise), `out=FILE`
  /// additionally writes CSV (or JSON when FILE ends in ".json").
  /// Returns false, after printing an error to stderr, when any output
  /// stream fails; callers must turn that into a non-zero exit.
  bool emit(const OptionParser &Opts) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<Row>> CellRows;
  std::vector<Row> Appended;
  mutable std::mutex Mu;
};

} // namespace pcb

#endif // PCBOUND_RUNNER_RESULTSINK_H
