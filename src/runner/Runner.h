//===- runner/Runner.h - Parallel experiment execution ----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution half of the experiment runner: a fixed-size thread pool
/// that pulls grid cells off a shared work queue and runs each on a
/// private Heap/Manager/Program stack. The determinism contract:
///
///   * results are keyed by cell index and assembled in cell order, and
///   * anything stochastic inside a cell must be seeded from
///     GridCell::seed(), which depends only on (base seed, cell index),
///
/// so the emitted table is byte-identical for --threads=1 and
/// --threads=8. With Threads == 1 (or a 1-cell grid) no thread is
/// spawned at all — the serial fallback runs cells inline. Progress
/// (cells done / total, elapsed, ETA) goes to stderr only, keeping
/// stdout reserved for results.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_RUNNER_RUNNER_H
#define PCBOUND_RUNNER_RUNNER_H

#include "runner/ExperimentGrid.h"
#include "runner/ResultSink.h"

#include <functional>
#include <vector>

namespace pcb {

class Profiler;

struct RunnerOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency().
  unsigned Threads = 0;
  /// Progress reporting to stderr: 0 off, 1 on, -1 auto (on only when
  /// stderr is a terminal, so CI logs and redirections stay clean).
  int Progress = -1;
  /// When set, every cell runs under a profiler (per-worker instances on
  /// the pool) and the section/counter totals are merged here after the
  /// sweep. Merging is commutative, so the totals are deterministic even
  /// though workers finish in any order. Null leaves profiling to
  /// whatever ProfilerScope the calling thread has installed (which the
  /// pool's workers do NOT inherit).
  Profiler *Prof = nullptr;
};

class Runner {
public:
  explicit Runner(RunnerOptions Opts = {});

  /// The machine's hardware concurrency (at least 1).
  static unsigned defaultThreads();

  /// The resolved worker count this runner will use.
  unsigned threads() const { return NumThreads; }

  /// Runs \p Fn(I) for every I in [0, NumCells), distributing cells over
  /// the pool (or inline when threads() == 1). Blocks until all cells
  /// are done; rethrows the first cell exception after draining.
  void forEachCell(uint64_t NumCells,
                   const std::function<void(uint64_t)> &Fn) const;

  /// Parallel map: runs \p Fn on every cell of \p G and returns the
  /// results in cell order. For benches that post-process typed results
  /// (charts, summary statistics) before building their table.
  template <typename T>
  std::vector<T> map(const ExperimentGrid &G,
                     const std::function<T(const GridCell &)> &Fn) const {
    std::vector<T> Out(size_t(G.numCells()));
    forEachCell(G.numCells(),
                [&](uint64_t I) { Out[size_t(I)] = Fn(G.cell(I)); });
    return Out;
  }

  /// Runs \p Fn on every cell and stores its rows in \p Sink under the
  /// cell's index. Cells may return zero rows (out-of-domain points).
  void run(const ExperimentGrid &G,
           const std::function<std::vector<Row>(const GridCell &)> &Fn,
           ResultSink &Sink) const;

  /// Single-row convenience wrapper around run().
  void runRows(const ExperimentGrid &G,
               const std::function<Row(const GridCell &)> &Fn,
               ResultSink &Sink) const;

  /// Wall-clock seconds each cell of the last forEachCell() took, keyed
  /// by cell index. Timing is observability only — it never feeds into
  /// results, so the determinism contract is unaffected.
  const std::vector<double> &cellSeconds() const { return CellSeconds; }

  /// Wall-clock seconds the last forEachCell() took end to end.
  double wallSeconds() const { return WallSeconds; }

private:
  bool progressEnabled() const;

  unsigned NumThreads;
  int Progress;
  Profiler *Prof;
  /// Per-cell and total wall-clock of the last sweep (observability;
  /// distinct cells write distinct slots, so no synchronization needed).
  mutable std::vector<double> CellSeconds;
  mutable double WallSeconds = 0.0;
};

} // namespace pcb

#endif // PCBOUND_RUNNER_RUNNER_H
