//===- obs/Profiler.cpp - Section timers and counters ---------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "support/Table.h"

#include <ostream>

using namespace pcb;

const char *Profiler::sectionName(Section S) {
  switch (S) {
  case SecHeapPlace:
    return "heap.place";
  case SecHeapFree:
    return "heap.free";
  case SecHeapMove:
    return "heap.move";
  case SecFreeReserve:
    return "fsi.reserve";
  case SecFreeRelease:
    return "fsi.release";
  case SecCompaction:
    return "mm.compact";
  case SecMeshProbe:
    return "mm.mesh_probe";
  case SecChunkTrigger:
    return "mm.chunk_trigger";
  case SecRealloc:
    return "mm.realloc";
  case SecStep:
    return "exec.step";
  case SecServeFlush:
    return "serve.flush";
  case SecTraceRead:
    return "trace.read";
  case NumSections:
    break;
  }
  return "?";
}

const char *Profiler::counterName(Counter C) {
  switch (C) {
  case CtrFitProbes:
    return "fit.probes";
  case CtrCompactionPasses:
    return "compaction.passes";
  case CtrMeshProbes:
    return "mesh.probes";
  case CtrMeshMerges:
    return "mesh.merges";
  case CtrChunkEvacuations:
    return "chunk.evacuations";
  case CtrReallocPasses:
    return "realloc.passes";
  case CtrTimelineSamples:
    return "timeline.samples";
  case CtrServeFlushes:
    return "serve.flushes";
  case CtrServeSteals:
    return "serve.steals";
  case CtrServeSessions:
    return "serve.sessions";
  case CtrTraceOps:
    return "trace.ops";
  case CtrControllerDenials:
    return "controller.denials";
  case NumCounters:
    break;
  }
  return "?";
}

void Profiler::printReport(std::ostream &OS, double WallSeconds) const {
  Table T({"section", "calls", "total_ms", "ns_per_call", "%wall"});
  for (unsigned I = 0; I != NumSections; ++I) {
    const SectionStats &S = Sections[I];
    if (S.Calls == 0)
      continue;
    T.beginRow();
    T.addCell(std::string(sectionName(Section(I))));
    T.addCell(S.Calls);
    T.addCell(double(S.Nanos) * 1e-6, 2);
    T.addCell(double(S.Nanos) / double(S.Calls), 0);
    T.addCell(WallSeconds > 0.0 ? 100.0 * double(S.Nanos) * 1e-9 / WallSeconds
                                : 0.0,
              1);
  }
  OS << "# per-phase timing (times are inclusive: fsi.* nests in heap.*,"
     << " all nest in exec.step)\n";
  T.printAligned(OS);
  for (unsigned I = 0; I != NumCounters; ++I)
    if (Counters[I] != 0)
      OS << "# " << counterName(Counter(I)) << " = " << Counters[I] << "\n";
}
