//===- obs/TimelineSampler.h - Strided heap-state sampling ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records a Timeline of heap state during an Execution. The sampler
/// registers itself as a step observer; each sample is O(log free
/// blocks) thanks to the FreeSpaceIndex aggregate queries behind
/// measureFragmentation — no per-sample re-scan of the heap — so
/// per-step sampling of a multi-million-step run stays cheap.
///
/// Memory is bounded: when a run outgrows MaxPoints, the sampler drops
/// every other recorded point and doubles its stride. The thinning
/// depends only on the step count, so the resulting timeline is
/// deterministic across runs and thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_OBS_TIMELINESAMPLER_H
#define PCBOUND_OBS_TIMELINESAMPLER_H

#include "obs/Timeline.h"

#include <cstdint>

namespace pcb {

class Execution;

/// Samples heap state into a Timeline during an Execution.
class TimelineSampler {
public:
  struct Options {
    /// Record every Nth step (1 = every step). Steps 1, 1+N, 1+2N, ...
    uint64_t Stride = 1;
    /// Point budget; on overflow the series is half-thinned and the
    /// stride doubles. Must be at least 2.
    uint64_t MaxPoints = uint64_t(1) << 16;
  };

  TimelineSampler() : TimelineSampler(Options()) {}
  explicit TimelineSampler(const Options &O) : Opts(O), Stride(O.Stride) {}

  /// Registers a step observer on \p E that samples after every step the
  /// stride selects. May be combined with other observers.
  void attach(Execution &E);

  /// Observer body: records the current state when the stride selects
  /// this step (callable directly by tests).
  void sample(const Execution &E);

  /// Records the final state if the last step was not stride-selected,
  /// so every timeline ends at the run's endpoint. Call after run().
  void finish(const Execution &E);

  const Timeline &timeline() const { return TL; }

  /// Current stride (>= Options::Stride; doubled by thinning).
  uint64_t stride() const { return Stride; }

private:
  void record(const Execution &E);

  Options Opts;
  uint64_t Stride;
  uint64_t LastRecordedStep = UINT64_MAX;
  Timeline TL;
};

} // namespace pcb

#endif // PCBOUND_OBS_TIMELINESAMPLER_H
