//===- obs/Timeline.h - Time series of heap state ---------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording half of the observability layer: a Timeline is the
/// per-step (or strided) series of heap-state snapshots a TimelineSampler
/// collects during an Execution — the quantities the paper's bounds are
/// statements about (footprint and live words over time), the
/// fragmentation picture (free words/blocks, largest hole), and the
/// compaction-budget ledger (allocated s, moved q, allowed floor(s/c)).
///
/// Emission reuses the runner's checked-stream machinery (ResultSink):
/// CSV and JSON output is deterministic — every field derives from the
/// deterministic execution, never from the clock — so timelines are
/// byte-identical across thread counts and fit golden-file testing.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_OBS_TIMELINE_H
#define PCBOUND_OBS_TIMELINE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

class ResultSink;

/// One sampled snapshot of heap state after a completed step.
struct TimelinePoint {
  uint64_t Step = 0;             ///< steps completed when sampled
  uint64_t FootprintWords = 0;   ///< high-water mark HS so far
  uint64_t LiveWords = 0;        ///< currently live
  uint64_t FreeWords = 0;        ///< free words below the mark
  uint64_t FreeBlocks = 0;       ///< maximal free runs below the mark
  uint64_t LargestFreeBlock = 0; ///< largest free run below the mark
  double Utilization = 0.0;      ///< live / footprint (0 on empty heap)
  double ExternalFragmentation = 0.0; ///< 1 - largest / free
  uint64_t AllocatedWords = 0;   ///< the paper's s: total ever allocated
  uint64_t MovedWords = 0;       ///< the paper's q: total ever moved
  /// Compaction words allowed so far, floor(s/c); 0 when the manager is
  /// not budget-limited (the non-c-partial baselines).
  uint64_t BudgetWords = 0;
};

/// An ordered series of TimelinePoints with deterministic emitters.
class Timeline {
public:
  void addPoint(const TimelinePoint &P) { Points.push_back(P); }

  const std::vector<TimelinePoint> &points() const { return Points; }
  size_t size() const { return Points.size(); }
  bool empty() const { return Points.empty(); }
  void clear() { Points.clear(); }

  /// Drops every odd-indexed point (keeps 0, 2, 4, ...). The sampler uses
  /// this to double its stride when a run outgrows its point budget.
  void thinHalf();

  /// The emitted column names, in order.
  static std::vector<std::string> header();

  /// Appends the points (one row each) to \p Sink, sharing the runner's
  /// table/CSV/JSON renderers and checked streams. \p Sink must have been
  /// constructed with Timeline::header(). (ResultSink owns a mutex, so it
  /// is filled in place rather than returned.)
  void fillSink(ResultSink &Sink) const;

  void printCsv(std::ostream &OS) const;
  void printJson(std::ostream &OS) const;

  /// Writes CSV (or JSON when \p Path ends in ".json") to \p Path.
  /// Returns false and fills \p Error on open or write failure.
  bool writeFile(const std::string &Path, std::string *Error = nullptr) const;

  /// Terminal sparklines: footprint/live words over steps, then
  /// utilization and external fragmentation on a [0, 1] axis.
  void printCharts(std::ostream &OS, unsigned Width = 64,
                   unsigned Height = 10) const;

private:
  std::vector<TimelinePoint> Points;
};

/// Joins a per-cell tag into a timeline path prefix: inserts "-TAG"
/// before a trailing ".csv"/".json", otherwise appends "-TAG.csv". Used
/// by sweeps that write one timeline per grid cell.
std::string timelineCellPath(const std::string &Prefix,
                             const std::string &Tag);

} // namespace pcb

#endif // PCBOUND_OBS_TIMELINE_H
