//===- obs/Timeline.cpp - Time series of heap state -----------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "obs/Timeline.h"

#include "runner/ResultSink.h"
#include "support/AsciiChart.h"

#include <fstream>
#include <ostream>

using namespace pcb;

void Timeline::thinHalf() {
  size_t Kept = 0;
  for (size_t I = 0; I < Points.size(); I += 2)
    Points[Kept++] = Points[I];
  Points.resize(Kept);
}

std::vector<std::string> Timeline::header() {
  return {"step",
          "footprint_words",
          "live_words",
          "free_words",
          "free_blocks",
          "largest_free_block",
          "utilization",
          "external_fragmentation",
          "allocated_words",
          "moved_words",
          "budget_words"};
}

void Timeline::fillSink(ResultSink &Sink) const {
  for (const TimelinePoint &P : Points) {
    Row R;
    R.addCell(P.Step)
        .addCell(P.FootprintWords)
        .addCell(P.LiveWords)
        .addCell(P.FreeWords)
        .addCell(P.FreeBlocks)
        .addCell(P.LargestFreeBlock)
        .addCell(P.Utilization, 4)
        .addCell(P.ExternalFragmentation, 4)
        .addCell(P.AllocatedWords)
        .addCell(P.MovedWords)
        .addCell(P.BudgetWords);
    Sink.append(std::move(R));
  }
}

void Timeline::printCsv(std::ostream &OS) const {
  ResultSink Sink(header());
  fillSink(Sink);
  Sink.toTable().printCsv(OS);
}

void Timeline::printJson(std::ostream &OS) const {
  ResultSink Sink(header());
  fillSink(Sink);
  Sink.printJson(OS);
}

bool Timeline::writeFile(const std::string &Path, std::string *Error) const {
  bool Json = Path.size() >= 5 &&
              Path.compare(Path.size() - 5, 5, ".json") == 0;
  std::ofstream OS(Path);
  if (OS) {
    if (Json)
      printJson(OS);
    else
      printCsv(OS);
    OS.flush();
  }
  // One check covers open failure and mid-run write failure: any failed
  // state means points were dropped.
  if (!OS) {
    if (Error)
      *Error = "cannot write '" + Path + "'";
    return false;
  }
  return true;
}

void Timeline::printCharts(std::ostream &OS, unsigned Width,
                           unsigned Height) const {
  if (Points.empty()) {
    OS << "(empty timeline)\n";
    return;
  }
  double X0 = double(Points.front().Step);
  double X1 = double(Points.back().Step);
  if (X0 == X1)
    X1 = X0 + 1.0;

  ChartSeries Footprint{"footprint (words)", '#', {}};
  ChartSeries Live{"live (words)", '*', {}};
  ChartSeries Util{"utilization", '*', {}};
  ChartSeries Frag{"external fragmentation", '%', {}};
  for (const TimelinePoint &P : Points) {
    Footprint.Y.push_back(double(P.FootprintWords));
    Live.Y.push_back(double(P.LiveWords));
    Util.Y.push_back(P.Utilization);
    Frag.Y.push_back(P.ExternalFragmentation);
  }

  {
    AsciiChart::Options Opts;
    Opts.Width = Width;
    Opts.Height = Height;
    Opts.XLabel = "step";
    Opts.YLabel = "heap words over time";
    AsciiChart Chart(X0, X1, Opts);
    Chart.addSeries(std::move(Footprint));
    Chart.addSeries(std::move(Live));
    Chart.print(OS);
  }
  {
    AsciiChart::Options Opts;
    Opts.Width = Width;
    Opts.Height = Height;
    Opts.YMin = 0.0;
    Opts.YMax = 1.0;
    Opts.XLabel = "step";
    Opts.YLabel = "fragmentation over time";
    AsciiChart Chart(X0, X1, Opts);
    Chart.addSeries(std::move(Util));
    Chart.addSeries(std::move(Frag));
    Chart.print(OS);
  }
}

std::string pcb::timelineCellPath(const std::string &Prefix,
                                  const std::string &Tag) {
  for (const char *Ext : {".csv", ".json"}) {
    size_t Len = std::string(Ext).size();
    if (Prefix.size() >= Len &&
        Prefix.compare(Prefix.size() - Len, Len, Ext) == 0)
      return Prefix.substr(0, Prefix.size() - Len) + "-" + Tag + Ext;
  }
  return Prefix + "-" + Tag + ".csv";
}
