//===- obs/TimelineSampler.cpp - Strided heap-state sampling --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "obs/TimelineSampler.h"

#include "driver/Execution.h"
#include "heap/Metrics.h"
#include "mm/CompactionLedger.h"
#include "obs/Profiler.h"

#include <cassert>

using namespace pcb;

void TimelineSampler::attach(Execution &E) {
  assert(Opts.MaxPoints >= 2 && "point budget too small to thin");
  E.addStepObserver([this](const Execution &Ex) { sample(Ex); });
}

void TimelineSampler::sample(const Execution &E) {
  // Steps count from 1 after the first completed step.
  if ((E.stepsRun() - 1) % Stride != 0)
    return;
  record(E);
}

void TimelineSampler::finish(const Execution &E) {
  if (E.stepsRun() != LastRecordedStep)
    record(E);
}

void TimelineSampler::record(const Execution &E) {
  const Heap &H = E.heap();
  FragmentationMetrics FM = measureFragmentation(H);
  const CompactionLedger &L = E.manager().ledger();

  TimelinePoint P;
  P.Step = E.stepsRun();
  P.FootprintWords = FM.FootprintWords;
  P.LiveWords = FM.LiveWords;
  P.FreeWords = FM.FreeWords;
  P.FreeBlocks = FM.FreeBlocks;
  P.LargestFreeBlock = FM.LargestFreeBlock;
  P.Utilization = FM.Utilization;
  P.ExternalFragmentation = FM.ExternalFragmentation;
  P.AllocatedWords = H.stats().TotalAllocatedWords;
  P.MovedWords = H.stats().MovedWords;
  P.BudgetWords = L.isUnlimited() ? 0 : L.budgetWords();
  TL.addPoint(P);
  LastRecordedStep = P.Step;
  Profiler::bump(Profiler::CtrTimelineSamples);

  if (TL.size() >= Opts.MaxPoints) {
    TL.thinHalf();
    Stride *= 2;
  }
}
