//===- obs/Profiler.h - Section timers and counters -------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling half of the observability layer: named section timers
/// (ScopedTimer) and event counters aggregated into a Profiler. The hot
/// paths — Heap place/free/move, FreeSpaceIndex reserve/release, every
/// manager's compaction routine, Execution::runStep — are permanently
/// instrumented, but the instrumentation is a null sink unless a Profiler
/// is installed on the current thread (ProfilerScope): disabled, a
/// ScopedTimer is one thread_local load and a branch, no clock reads.
/// `bench_pf_sim overhead-check=1` asserts that this stays true.
///
/// Everything the instrumentation sites need is defined inline in this
/// header, so instrumented libraries (pcb_heap, pcb_mm, pcb_driver,
/// pcb_runner) do not link against pcb_obs; only report rendering lives
/// in Profiler.cpp.
///
/// Section times are inclusive: fsi.reserve nests inside heap.place,
/// which nests inside exec.step, so the report's percentages are "time
/// spent under this label", not a partition of the wall clock.
///
/// \par Thread compatibility
/// The installed-profiler pointer is thread_local, so distinct threads
/// profile independently and the library-wide thread-compatibility
/// contract (no shared mutable state between instances) is preserved. A
/// Profiler instance itself must not be written from two threads; the
/// Runner gives every worker a private Profiler and merges them.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_OBS_PROFILER_H
#define PCBOUND_OBS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace pcb {

/// Aggregated section timings and counters for one thread of execution.
class Profiler {
public:
  /// The permanently instrumented sections.
  enum Section : unsigned {
    SecHeapPlace,   ///< Heap::place
    SecHeapFree,    ///< Heap::free
    SecHeapMove,    ///< Heap::move
    SecFreeReserve, ///< FreeSpaceIndex::reserve
    SecFreeRelease, ///< FreeSpaceIndex::release
    SecCompaction,   ///< a manager's compaction routine
    SecMeshProbe,    ///< MeshingCompactor's word-AND disjointness probes
    SecChunkTrigger, ///< ChunkedManager's per-chunk trigger processing
    SecRealloc,      ///< a reallocation manager's backfill/repack routine
    SecStep,         ///< Execution::runStep (program + manager + checks)
    SecServeFlush,   ///< ArenaShard::flush (one applied request batch)
    SecTraceRead,    ///< TraceReader::next (parse + validate one op)
    NumSections
  };

  /// Counters without a duration.
  enum Counter : unsigned {
    CtrFitProbes,         ///< boundary-class blocks probed by fit searches
    CtrCompactionPasses,  ///< compaction routine invocations
    CtrMeshProbes,        ///< chunk pairs probed for occupancy disjointness
    CtrMeshMerges,        ///< chunk pairs merged by the meshing compactor
    CtrChunkEvacuations,  ///< chunks evacuated by the chunked manager
    CtrReallocPasses,     ///< reallocation backfill/repack invocations
    CtrTimelineSamples,   ///< points recorded by a TimelineSampler
    CtrServeFlushes,      ///< request batches applied by fleet shards
    CtrServeSteals,       ///< arenas stolen by idle fleet workers
    CtrServeSessions,     ///< sessions retired by fleet shards
    CtrTraceOps,          ///< malloc-trace operations streamed
    CtrControllerDenials, ///< moves denied by a budget controller's gate
    NumCounters
  };

  struct SectionStats {
    uint64_t Calls = 0;
    uint64_t Nanos = 0;
  };

  static const char *sectionName(Section S);
  static const char *counterName(Counter C);

  /// The profiler installed on the current thread, or nullptr.
  static Profiler *current() { return Current; }

  void add(Section S, uint64_t Nanos) {
    ++Sections[S].Calls;
    Sections[S].Nanos += Nanos;
  }

  /// Bumps \p C on the current thread's profiler, if one is installed.
  static void bump(Counter C, uint64_t N = 1) {
    if (Profiler *P = Current)
      P->Counters[C] += N;
  }

  const SectionStats &section(Section S) const { return Sections[S]; }
  uint64_t counter(Counter C) const { return Counters[C]; }

  /// True when nothing has been recorded.
  bool empty() const {
    for (unsigned S = 0; S != NumSections; ++S)
      if (Sections[S].Calls != 0)
        return false;
    for (unsigned C = 0; C != NumCounters; ++C)
      if (Counters[C] != 0)
        return false;
    return true;
  }

  void reset() {
    for (unsigned S = 0; S != NumSections; ++S)
      Sections[S] = SectionStats();
    for (unsigned C = 0; C != NumCounters; ++C)
      Counters[C] = 0;
  }

  /// Adds \p Other's sections and counters into this profiler (used by
  /// the Runner to fold per-worker profilers into one report).
  void merge(const Profiler &Other) {
    for (unsigned S = 0; S != NumSections; ++S) {
      Sections[S].Calls += Other.Sections[S].Calls;
      Sections[S].Nanos += Other.Sections[S].Nanos;
    }
    for (unsigned C = 0; C != NumCounters; ++C)
      Counters[C] += Other.Counters[C];
  }

  /// Renders the per-phase timing report as an aligned table: calls,
  /// total milliseconds, nanoseconds per call, and percent of \p
  /// WallSeconds (pass the enclosing run's wall clock). Sections with no
  /// calls are omitted; counters follow as comment lines.
  void printReport(std::ostream &OS, double WallSeconds) const;

private:
  friend class ProfilerScope;
  static inline thread_local Profiler *Current = nullptr;

  SectionStats Sections[NumSections];
  uint64_t Counters[NumCounters] = {};
};

/// RAII installation of a profiler on the current thread. Nesting
/// restores the previously installed profiler on exit.
class ProfilerScope {
public:
  explicit ProfilerScope(Profiler &P) : Saved(Profiler::Current) {
    Profiler::Current = &P;
  }
  /// Pointer overload: null leaves the current installation untouched,
  /// so callers can profile conditionally without duplicating the scope.
  explicit ProfilerScope(Profiler *P) : Saved(Profiler::Current) {
    if (P)
      Profiler::Current = P;
  }
  ~ProfilerScope() { Profiler::Current = Saved; }
  ProfilerScope(const ProfilerScope &) = delete;
  ProfilerScope &operator=(const ProfilerScope &) = delete;

private:
  Profiler *Saved;
};

/// Times one section for the lifetime of the object. When no profiler is
/// installed this is the null-sink fast path: one thread_local load, one
/// branch, no clock read.
class ScopedTimer {
public:
  explicit ScopedTimer(Profiler::Section S) : P(Profiler::current()), Sec(S) {
    if (P)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!P)
      return;
    auto End = std::chrono::steady_clock::now();
    P->add(Sec, uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             End - Start)
                             .count()));
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Profiler *P;
  Profiler::Section Sec;
  std::chrono::steady_clock::time_point Start;
};

} // namespace pcb

#endif // PCBOUND_OBS_PROFILER_H
