//===- support/Statistics.h - Streaming summary statistics ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming accumulator (Welford's algorithm) for the benches that
/// average stochastic workloads over seeds: count, mean, min, max and
/// sample standard deviation without storing the samples.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_STATISTICS_H
#define PCBOUND_SUPPORT_STATISTICS_H

#include <cmath>
#include <cstdint>
#include <limits>

namespace pcb {

/// Streaming mean / min / max / stddev accumulator.
class RunningStat {
public:
  void add(double Sample) {
    ++N;
    double Delta = Sample - Mean;
    Mean += Delta / double(N);
    M2 += Delta * (Sample - Mean);
    Lo = Sample < Lo ? Sample : Lo;
    Hi = Sample > Hi ? Sample : Hi;
  }

  uint64_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
  double min() const { return N == 0 ? 0.0 : Lo; }
  double max() const { return N == 0 ? 0.0 : Hi; }

  /// Sample standard deviation (0 for fewer than two samples).
  double stddev() const {
    return N < 2 ? 0.0 : std::sqrt(M2 / double(N - 1));
  }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Lo = std::numeric_limits<double>::infinity();
  double Hi = -std::numeric_limits<double>::infinity();
};

} // namespace pcb

#endif // PCBOUND_SUPPORT_STATISTICS_H
