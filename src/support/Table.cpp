//===- support/Table.cpp - Column-aligned and CSV table output -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace pcb;

std::string pcb::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return std::string(Buf);
}

std::string pcb::formatWords(uint64_t Words) {
  static const char *Suffix[] = {"", "K", "M", "G", "T"};
  unsigned Unit = 0;
  uint64_t Value = Words;
  while (Unit < 4 && Value >= 1024 && Value % 1024 == 0) {
    Value /= 1024;
    ++Unit;
  }
  return std::to_string(Value) + Suffix[Unit];
}

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::beginRow() { Rows.emplace_back(); }

void Table::addCell(std::string Cell) {
  assert(!Rows.empty() && "addCell before beginRow");
  Rows.back().push_back(std::move(Cell));
}

void Table::addCell(uint64_t Value) { addCell(std::to_string(Value)); }

void Table::addCell(int64_t Value) { addCell(std::to_string(Value)); }

void Table::addCell(double Value, int Precision) {
  addCell(formatDouble(Value, Precision));
}

void Table::printAligned(std::ostream &OS) const {
  std::vector<size_t> Width(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I >= Width.size())
        Width.resize(I + 1, 0);
      if (Row[I].size() > Width[I])
        Width[I] = Row[I].size();
    }

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Width.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      OS << (I == 0 ? "" : "  ");
      for (size_t Pad = Cell.size(); Pad < Width[I]; ++Pad)
        OS << ' ';
      OS << Cell;
    }
    OS << '\n';
  };

  PrintRow(Header);
  std::vector<std::string> Rule;
  Rule.reserve(Width.size());
  for (size_t W : Width)
    Rule.push_back(std::string(W, '-'));
  PrintRow(Rule);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

static void printCsvCell(std::ostream &OS, const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos) {
    OS << Cell;
    return;
  }
  OS << '"';
  for (char C : Cell) {
    if (C == '"')
      OS << '"';
    OS << C;
  }
  OS << '"';
}

void Table::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        OS << ',';
      printCsvCell(OS, Row[I]);
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
