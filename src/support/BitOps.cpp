//===- support/BitOps.cpp - Multi-word scan kernels -----------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Portable SWAR scans with AVX2 fast paths. The AVX2 functions live in
// this one translation unit with a per-function target attribute, so the
// rest of the project compiles for the baseline ISA; a cached
// __builtin_cpu_supports check picks the path at runtime. Both paths
// return the same index for the same input — the vector code only
// accelerates the "skip boring words" part of a scan, it never changes
// which word is found.
//
//===----------------------------------------------------------------------===//

#include "support/BitOps.h"

#if !defined(PCB_DISABLE_AVX2) && defined(__x86_64__)
#define PCB_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define PCB_HAVE_AVX2_KERNELS 0
#endif

namespace pcb {
namespace {

size_t findNonzeroWordSwar(const uint64_t *W, size_t N) {
  size_t I = 0;
  // Unrolled: OR four words and test once; the scalar tail resolves the
  // exact index.
  for (; I + 4 <= N; I += 4)
    if ((W[I] | W[I + 1] | W[I + 2] | W[I + 3]) != 0)
      break;
  for (; I != N; ++I)
    if (W[I] != 0)
      return I;
  return N;
}

size_t findNotOnesWordSwar(const uint64_t *W, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    if ((W[I] & W[I + 1] & W[I + 2] & W[I + 3]) != ~uint64_t(0))
      break;
  for (; I != N; ++I)
    if (W[I] != ~uint64_t(0))
      return I;
  return N;
}

#if PCB_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) size_t findNonzeroWordAvx2(const uint64_t *W,
                                                           size_t N) {
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i A = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(W + I));
    __m256i B =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(W + I + 4));
    if (!_mm256_testz_si256(A, A) || !_mm256_testz_si256(B, B))
      break;
  }
  for (; I != N; ++I)
    if (W[I] != 0)
      return I;
  return N;
}

__attribute__((target("avx2"))) size_t findNotOnesWordAvx2(const uint64_t *W,
                                                           size_t N) {
  const __m256i Ones = _mm256_set1_epi64x(-1);
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i A = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(W + I));
    __m256i B =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(W + I + 4));
    // testc(x, ones) is 1 iff x == all-ones.
    if (!_mm256_testc_si256(A, Ones) || !_mm256_testc_si256(B, Ones))
      break;
  }
  for (; I != N; ++I)
    if (W[I] != ~uint64_t(0))
      return I;
  return N;
}

bool detectAvx2() { return __builtin_cpu_supports("avx2"); }

#endif // PCB_HAVE_AVX2_KERNELS

} // namespace

bool avx2ScanActive() {
#if PCB_HAVE_AVX2_KERNELS
  static const bool Active = detectAvx2();
  return Active;
#else
  return false;
#endif
}

size_t findNonzeroWord(const uint64_t *W, size_t N) {
#if PCB_HAVE_AVX2_KERNELS
  if (avx2ScanActive())
    return findNonzeroWordAvx2(W, N);
#endif
  return findNonzeroWordSwar(W, N);
}

size_t findNotOnesWord(const uint64_t *W, size_t N) {
#if PCB_HAVE_AVX2_KERNELS
  if (avx2ScanActive())
    return findNotOnesWordAvx2(W, N);
#endif
  return findNotOnesWordSwar(W, N);
}

} // namespace pcb
