//===- support/AsciiChart.cpp - Terminal line charts ----------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"

#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <ostream>

using namespace pcb;

void AsciiChart::print(std::ostream &OS) const {
  unsigned W = std::max(8u, Opts.Width);
  unsigned H = std::max(4u, Opts.Height);

  // Establish the Y range.
  double Lo = Opts.YMin, Hi = Opts.YMax;
  if (Lo == Hi) {
    Lo = 0.0;
    Hi = 1.0;
    bool Any = false;
    for (const ChartSeries &S : AllSeries)
      for (double V : S.Y) {
        if (std::isnan(V))
          continue;
        if (!Any) {
          Lo = Hi = V;
          Any = true;
        } else {
          Lo = std::min(Lo, V);
          Hi = std::max(Hi, V);
        }
      }
    if (Hi == Lo)
      Hi = Lo + 1.0;
    double Pad = 0.05 * (Hi - Lo);
    Lo -= Pad;
    Hi += Pad;
  }

  // Paint the grid.
  std::vector<std::string> Grid(H, std::string(W, ' '));
  for (const ChartSeries &S : AllSeries) {
    if (S.Y.empty())
      continue;
    for (unsigned Col = 0; Col != W; ++Col) {
      // Sample the series at this column (nearest point).
      double T = S.Y.size() == 1
                     ? 0.0
                     : double(Col) * double(S.Y.size() - 1) / double(W - 1);
      double V = S.Y[size_t(std::llround(T))];
      if (std::isnan(V))
        continue;
      double Frac = (V - Lo) / (Hi - Lo);
      if (Frac < 0.0 || Frac > 1.0)
        continue;
      unsigned Row = unsigned(std::llround((1.0 - Frac) * (H - 1)));
      Grid[Row][Col] = S.Glyph;
    }
  }

  // Emit with Y labels on the left, an axis and the legend.
  if (!Opts.YLabel.empty())
    OS << Opts.YLabel << '\n';
  for (unsigned Row = 0; Row != H; ++Row) {
    double V = Hi - (Hi - Lo) * double(Row) / double(H - 1);
    std::string Label = formatDouble(V, 2);
    for (size_t Pad = Label.size(); Pad < 8; ++Pad)
      OS << ' ';
    OS << Label << " |" << Grid[Row] << '\n';
  }
  OS << std::string(8, ' ') << " +" << std::string(W, '-') << '\n';
  std::string XAxis = formatDouble(XMin, 0);
  std::string XEnd = formatDouble(XMax, 0);
  OS << std::string(10, ' ') << XAxis
     << std::string(W > XAxis.size() + XEnd.size()
                        ? W - XAxis.size() - XEnd.size()
                        : 1,
                    ' ')
     << XEnd;
  if (!Opts.XLabel.empty())
    OS << "  (" << Opts.XLabel << ")";
  OS << '\n';
  for (const ChartSeries &S : AllSeries)
    OS << std::string(10, ' ') << S.Glyph << " = " << S.Name << '\n';
}
