//===- support/OptionParser.h - Tiny key=value CLI parsing ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal option parser for the example and bench executables. Options
/// take the form `name=value` or `--name=value`; anything else is kept as a
/// positional argument. Numeric getters accept suffixes K/M/G (powers of
/// 1024) so parameters can be written the way the paper writes them
/// ("M=256M", "n=1M").
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_OPTIONPARSER_H
#define PCBOUND_SUPPORT_OPTIONPARSER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcb {

/// Parsed command line: `name=value` pairs plus positional arguments.
class OptionParser {
public:
  OptionParser(int Argc, const char *const *Argv);

  /// Returns true if \p Name was supplied.
  bool has(const std::string &Name) const { return Options.count(Name) != 0; }

  /// String option, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Unsigned option with optional K/M/G suffix, or \p Default when absent
  /// or malformed.
  uint64_t getUInt(const std::string &Name, uint64_t Default) const;

  /// Double option, or \p Default when absent or malformed.
  double getDouble(const std::string &Name, double Default) const;

  /// Boolean option: "1", "true", "yes" are true.
  bool getBool(const std::string &Name, bool Default) const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// Parses "256M" style word counts; returns false on malformed input.
  static bool parseWordCount(const std::string &Text, uint64_t &Out);

private:
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
};

} // namespace pcb

#endif // PCBOUND_SUPPORT_OPTIONPARSER_H
