//===- support/MathUtils.h - Integer and log helpers ------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer helpers used throughout the simulator and bound formulas:
/// powers of two, integer logarithms, alignment, and checked division.
/// Sizes in this project are measured in abstract heap words, held in
/// unsigned 64-bit integers.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_MATHUTILS_H
#define PCBOUND_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>

namespace pcb {

/// Returns true if \p X is a (positive) power of two.
constexpr bool isPowerOfTwo(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

/// Returns 2^\p Exp. \p Exp must be below 64.
constexpr uint64_t pow2(unsigned Exp) {
  assert(Exp < 64 && "pow2 exponent out of range");
  return uint64_t(1) << Exp;
}

/// Floor of log2(\p X). \p X must be nonzero.
constexpr unsigned log2Floor(uint64_t X) {
  assert(X != 0 && "log2Floor of zero");
  unsigned R = 0;
  while (X >>= 1)
    ++R;
  return R;
}

/// Ceiling of log2(\p X). \p X must be nonzero.
constexpr unsigned log2Ceil(uint64_t X) {
  assert(X != 0 && "log2Ceil of zero");
  return isPowerOfTwo(X) ? log2Floor(X) : log2Floor(X) + 1;
}

/// Exact log2 of a power of two.
constexpr unsigned log2Exact(uint64_t X) {
  assert(isPowerOfTwo(X) && "log2Exact of a non-power-of-two");
  return log2Floor(X);
}

/// Rounds \p X up to the next multiple of \p Align (a power of two).
constexpr uint64_t alignUp(uint64_t X, uint64_t Align) {
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  return (X + Align - 1) & ~(Align - 1);
}

/// Rounds \p X down to a multiple of \p Align (a power of two).
constexpr uint64_t alignDown(uint64_t X, uint64_t Align) {
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  return X & ~(Align - 1);
}

/// Rounds \p X up to the next power of two. Returns 1 for X == 0.
constexpr uint64_t nextPowerOfTwo(uint64_t X) {
  if (X <= 1)
    return 1;
  return pow2(log2Ceil(X));
}

/// Integer division rounding up. \p Den must be nonzero.
constexpr uint64_t ceilDiv(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "ceilDiv by zero");
  return (Num + Den - 1) / Den;
}

/// Saturating subtraction for unsigned values.
constexpr uint64_t satSub(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

} // namespace pcb

#endif // PCBOUND_SUPPORT_MATHUTILS_H
