//===- support/BitOps.h - Word-level bit manipulation -----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single home for packed-bitmap word arithmetic: range masks, bit
/// scans, and popcounts over 64-bit words (with 32-bit variants for the
/// exact solver's arena boards). The heap substrate (PackedBitmap,
/// FreeSpaceIndex, Heap) and the exact game (src/exact/) build on the
/// same helpers so a boundary bug cannot hide in one copy.
///
/// The multi-word scan kernels (find the first interesting word in an
/// array) have a portable SWAR implementation here and AVX2 variants in
/// BitOps.cpp behind a cached runtime CPU check; the AVX2 paths return
/// bit-identical results and exist purely for speed, so determinism is
/// unaffected. Configure with -DPCB_DISABLE_AVX2=ON to force the portable
/// path (CI exercises both).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_BITOPS_H
#define PCBOUND_SUPPORT_BITOPS_H

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace pcb {

/// Bits per packed word. Addresses map to (word = A / WordBits,
/// bit = A % WordBits); bit i of a word is address (word * 64 + i), so
/// "lower address" is "less significant bit" everywhere.
inline constexpr unsigned WordBits = 64;

/// The lowest \p N bits set; N may be 0..64 inclusive.
constexpr uint64_t lowMask(unsigned N) {
  assert(N <= 64 && "mask wider than a word");
  return N >= 64 ? ~uint64_t(0) : (uint64_t(1) << N) - 1;
}

/// 32-bit variant for the exact solver's arena boards (W <= 30 cells).
constexpr uint32_t lowMask32(unsigned N) {
  assert(N <= 32 && "mask wider than a word");
  return N >= 32 ? ~uint32_t(0) : (uint32_t(1) << N) - 1;
}

/// Bits [Lo, Hi) of a word, Lo <= Hi <= 64.
constexpr uint64_t bitRange(unsigned Lo, unsigned Hi) {
  assert(Lo <= Hi && "inverted bit range");
  return lowMask(Hi) & ~lowMask(Lo);
}

/// Index of the lowest set bit. \p X must be nonzero.
inline unsigned countTrailingZeros(uint64_t X) {
  assert(X != 0 && "bit scan over zero");
  return unsigned(std::countr_zero(X));
}

/// Index of the highest set bit. \p X must be nonzero.
inline unsigned topBitIndex(uint64_t X) {
  assert(X != 0 && "bit scan over zero");
  return 63u - unsigned(std::countl_zero(X));
}

inline unsigned popcount64(uint64_t X) { return unsigned(std::popcount(X)); }

/// Index of the first word in W[0..N) that is nonzero, or N. AVX2 when
/// available; result is identical either way.
size_t findNonzeroWord(const uint64_t *W, size_t N);

/// Index of the first word in W[0..N) that is not all-ones, or N.
size_t findNotOnesWord(const uint64_t *W, size_t N);

/// True when the AVX2 kernels are compiled in and the CPU supports them
/// (exposed so the bench header can report which path ran).
bool avx2ScanActive();

} // namespace pcb

#endif // PCBOUND_SUPPORT_BITOPS_H
