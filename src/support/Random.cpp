//===- support/Random.cpp - Deterministic pseudo-random numbers ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

using namespace pcb;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((State[0] | State[1] | State[2] | State[3]) == 0)
    State[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t pcb::splitSeed(uint64_t BaseSeed, uint64_t StreamIndex) {
  // The (StreamIndex+1)-th SplitMix64 output for BaseSeed: the generator
  // advances its state by the golden-ratio increment per draw, so the
  // k-th output is mix(BaseSeed + k * increment) — computable in O(1).
  uint64_t X = BaseSeed + (StreamIndex + 1) * 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling: draw until the value falls in the largest multiple
  // of Bound representable in 64 bits.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}
