//===- support/AsciiChart.h - Terminal line charts --------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small multi-series line-chart renderer for terminals, so the figure
/// benches can draw the paper's plots and not just their tables. Series
/// are sampled onto a character grid; each series gets a glyph, the Y
/// axis is labelled with real values, and a legend is appended.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_ASCIICHART_H
#define PCBOUND_SUPPORT_ASCIICHART_H

#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

/// One plotted series: a name, a glyph and y-values over the shared
/// x-grid (NaN values leave gaps).
struct ChartSeries {
  std::string Name;
  char Glyph = '*';
  std::vector<double> Y;
};

/// A multi-series line chart over a shared, evenly spaced x axis.
class AsciiChart {
public:
  struct Options {
    unsigned Width = 64;    ///< plot columns (excluding the Y labels)
    unsigned Height = 16;   ///< plot rows
    double YMin = 0.0;      ///< Y range; YMin == YMax means auto-scale
    double YMax = 0.0;
    std::string XLabel;
    std::string YLabel;
  };

  AsciiChart(double XMin, double XMax) : XMin(XMin), XMax(XMax) {}
  AsciiChart(double XMin, double XMax, const Options &Opts)
      : XMin(XMin), XMax(XMax), Opts(Opts) {}

  /// Adds a series. Y values are positioned at evenly spaced x
  /// coordinates spanning [XMin, XMax].
  void addSeries(ChartSeries Series) {
    AllSeries.push_back(std::move(Series));
  }

  /// Renders the chart with axes and legend.
  void print(std::ostream &OS) const;

private:
  double XMin;
  double XMax;
  Options Opts;
  std::vector<ChartSeries> AllSeries;
};

} // namespace pcb

#endif // PCBOUND_SUPPORT_ASCIICHART_H
