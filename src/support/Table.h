//===- support/Table.h - Column-aligned and CSV table output ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small table builder used by the benches and examples to print the
/// paper's figures as aligned text and as CSV series. Cells are stored as
/// strings; numeric helpers format with a fixed precision so figure output
/// is stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_TABLE_H
#define PCBOUND_SUPPORT_TABLE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

/// Accumulates rows of string cells and renders them column-aligned or as
/// CSV. Rows may be ragged; missing cells render empty.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Starts a new, empty row.
  void beginRow();

  /// Appends one cell to the current row.
  void addCell(std::string Cell);
  void addCell(uint64_t Value);
  void addCell(int64_t Value);
  /// Formats \p Value with \p Precision digits after the decimal point.
  void addCell(double Value, int Precision = 4);

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Renders the table with space-padded, right-aligned columns.
  void printAligned(std::ostream &OS) const;

  /// Renders the table as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes).
  void printCsv(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Precision fraction digits (no locale).
std::string formatDouble(double Value, int Precision);

/// Renders a word count in a human-friendly unit assuming 1 word = 1 byte
/// of the paper's scale, e.g. 268435456 -> "256M".
std::string formatWords(uint64_t Words);

} // namespace pcb

#endif // PCBOUND_SUPPORT_TABLE_H
