//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64 seeding a xoshiro256** state) used
/// by the non-adversarial workloads and the property tests. We avoid
/// <random> so that sequences are reproducible across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_SUPPORT_RANDOM_H
#define PCBOUND_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace pcb {

/// Deterministic xoshiro256** generator with SplitMix64 seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-seeds the generator deterministically from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t next();

  /// Returns a uniform value in [0, \p Bound). \p Bound must be nonzero.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform value in [\p Lo, \p Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State[4];
};

/// Derives an independent child seed for stream \p StreamIndex of a sweep
/// seeded with \p BaseSeed. Child k is the (k+1)-th output of the
/// SplitMix64 stream seeded with BaseSeed, so child streams are pairwise
/// independent, reproducible, and depend only on (BaseSeed, StreamIndex) —
/// never on the order in which streams are drawn. The experiment runner
/// uses this to give every grid cell its own Rng regardless of which
/// thread executes it.
uint64_t splitSeed(uint64_t BaseSeed, uint64_t StreamIndex);

} // namespace pcb

#endif // PCBOUND_SUPPORT_RANDOM_H
