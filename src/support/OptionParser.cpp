//===- support/OptionParser.cpp - Tiny key=value CLI parsing -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/OptionParser.h"

#include <cctype>
#include <cstdlib>

using namespace pcb;

OptionParser::OptionParser(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    size_t Start = 0;
    while (Start < Arg.size() && Arg[Start] == '-')
      ++Start;
    size_t Eq = Arg.find('=', Start);
    if (Eq == std::string::npos || Eq == Start) {
      Positional.push_back(Arg);
      continue;
    }
    Options[Arg.substr(Start, Eq - Start)] = Arg.substr(Eq + 1);
  }
}

std::string OptionParser::getString(const std::string &Name,
                                    const std::string &Default) const {
  auto It = Options.find(Name);
  return It == Options.end() ? Default : It->second;
}

bool OptionParser::parseWordCount(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  size_t Pos = 0;
  uint64_t Value = 0;
  while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                  Text[Pos]))) {
    uint64_t Digit = uint64_t(Text[Pos] - '0');
    // Out-of-range counts are malformed, not silently wrapped.
    if (Value > (UINT64_MAX - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
    ++Pos;
  }
  if (Pos == 0)
    return false;
  uint64_t Scale = 1;
  if (Pos < Text.size()) {
    switch (std::toupper(static_cast<unsigned char>(Text[Pos]))) {
    case 'K':
      Scale = 1024;
      break;
    case 'M':
      Scale = 1024 * 1024;
      break;
    case 'G':
      Scale = uint64_t(1024) * 1024 * 1024;
      break;
    default:
      return false;
    }
    ++Pos;
    if (Pos != Text.size())
      return false;
  }
  if (Scale != 1 && Value > UINT64_MAX / Scale)
    return false;
  Out = Value * Scale;
  return true;
}

uint64_t OptionParser::getUInt(const std::string &Name,
                               uint64_t Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  uint64_t Out;
  return parseWordCount(It->second, Out) ? Out : Default;
}

double OptionParser::getDouble(const std::string &Name, double Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  char *End = nullptr;
  double Value = std::strtod(It->second.c_str(), &End);
  return (End && *End == '\0') ? Value : Default;
}

bool OptionParser::getBool(const std::string &Name, bool Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  const std::string &V = It->second;
  return V == "1" || V == "true" || V == "yes";
}
