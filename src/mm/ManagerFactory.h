//===- mm/ManagerFactory.h - Managers by name -------------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates memory managers by policy name so benches, examples and tests
/// can sweep over the whole family uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_MANAGERFACTORY_H
#define PCBOUND_MM_MANAGERFACTORY_H

#include "mm/MemoryManager.h"

#include <memory>
#include <string>
#include <vector>

namespace pcb {

/// Creates the manager named \p Policy over \p H with compaction quota
/// \p C. Returns nullptr for unknown names. Known names:
/// "first-fit", "best-fit", "next-fit", "worst-fit", "aligned-fit",
/// "buddy", "segregated-fit", "evacuating", "hybrid", "sliding",
/// "sliding-unlimited" (ignores C; the non-c-partial ideal),
/// "bump-compactor" (requires \p LiveBound, the program's M — its
/// compaction period is c * LiveBound), and the reallocation family
/// "realloc-never", "realloc-bucket", "realloc-jin" (ignore C; budgeted
/// by their ReallocationLedger overhead bound instead).
std::unique_ptr<MemoryManager> createManager(const std::string &Policy,
                                             Heap &H, double C,
                                             uint64_t LiveBound = 0);

/// createManager with a diagnosable failure: on success returns the
/// manager; on failure returns nullptr and, when \p Error is non-null,
/// sets *Error to a one-line message naming every valid policy (or, for
/// "bump-compactor" without a LiveBound, what is missing) — so no caller
/// has to fall back to a silent default or an uninformative error.
std::unique_ptr<MemoryManager>
createManagerChecked(const std::string &Policy, Heap &H, double C,
                     uint64_t LiveBound = 0, std::string *Error = nullptr);

/// The valid policy names as one comma-separated string, for error
/// messages and usage text.
std::string managerPolicyList();

/// All policy names createManager accepts.
std::vector<std::string> allManagerPolicies();

/// The non-moving subset (the managers Robson's bounds apply to).
std::vector<std::string> nonMovingManagerPolicies();

/// The c-partial compacting subset.
std::vector<std::string> compactingManagerPolicies();

/// The Cohen–Petrank compaction family: every policy scored by peak
/// footprint under a c-partial move budget (allManagerPolicies minus
/// the reallocation family).
std::vector<std::string> compactionFamilyPolicies();

/// The reallocation family (realloc/): policies scored by the overhead
/// ratio — cumulative moved words per allocated word. They ignore the
/// factory's C parameter.
std::vector<std::string> reallocManagerPolicies();

/// True when \p Policy belongs to the reallocation family.
bool isReallocPolicy(const std::string &Policy);

/// True when \p Policy names a non-moving manager — one that must never
/// emit a Move event. The fuzzing harness uses this for policy-relative
/// invariants.
bool isNonMovingPolicy(const std::string &Policy);

} // namespace pcb

#endif // PCBOUND_MM_MANAGERFACTORY_H
