//===- mm/EvacuatingCompactor.h - Budgeted chunk evacuation -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A c-partial compacting manager of the kind the paper's lower bound is
/// aimed at: first fit, but before growing the heap it tries to evacuate
/// the emptiest size-aligned chunk below the high-water mark and allocate
/// into the cleared space — exactly the "reuse of sparsely allocated
/// chunks" move discussed in Section 3. The evacuation is subject to the
/// c-partial ledger and to a density threshold: chunks whose live
/// occupancy exceeds Threshold * chunkSize are never evacuated (the move
/// would cost more budget than the allocation recharges).
///
/// The PF adversary maintains chunk density 2^{-sigma} > 1/c precisely to
/// make this manager's evacuations a losing game; bench E5 measures it.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_EVACUATINGCOMPACTOR_H
#define PCBOUND_MM_EVACUATINGCOMPACTOR_H

#include "mm/MemoryManager.h"

#include <map>

namespace pcb {

/// First fit plus budgeted evacuation of sparse aligned chunks.
class EvacuatingCompactor : public MemoryManager {
public:
  struct Options {
    /// Maximum live fraction of a chunk that still qualifies it for
    /// evacuation. The allocation recharges 1/c of its size, so anything
    /// above 1/c is already a net budget loss; higher thresholds trade
    /// budget for footprint.
    double DensityThreshold = 0.5;
    /// Requests below this size never trigger evacuation (scanning for
    /// tiny chunks costs more than it saves).
    uint64_t MinEvacuationSize = 8;
    /// At most this many candidate chunks are examined per allocation.
    uint64_t MaxScanChunks = 4096;
  };

  EvacuatingCompactor(Heap &H, double C) : MemoryManager(H, C) {}
  EvacuatingCompactor(Heap &H, double C, const Options &Opts)
      : MemoryManager(H, C), Opts(Opts) {}

  std::string name() const override { return "evacuating"; }

  /// Number of chunk evacuations performed.
  uint64_t numEvacuations() const { return NumEvacuations; }

protected:
  Addr placeFor(uint64_t Size) override;

private:
  /// Tries to clear an aligned chunk able to hold \p Size words; returns
  /// its start, or InvalidAddr when no candidate qualified.
  Addr evacuateFor(uint64_t Size);

  /// Chunks only get sparser through frees and moves; when a scan found
  /// no candidate, rescanning is pointless until one happens. The
  /// signature captures that state.
  uint64_t heapChangeSignature() const {
    return heap().stats().NumFrees + heap().stats().NumMoves;
  }

  Options Opts;
  uint64_t NumEvacuations = 0;
  /// heapChangeSignature() at the last failed scan, per chunk log-size.
  std::map<unsigned, uint64_t> FailedScanSignature;
};

} // namespace pcb

#endif // PCBOUND_MM_EVACUATINGCOMPACTOR_H
