//===- mm/BuddyManager.cpp - Binary buddy allocation ---------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/BuddyManager.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

Addr BuddyManager::takeBlock(unsigned Order) {
  assert(Order <= MaxOrder && "request beyond the maximum buddy order");
  unsigned Found = Order;
  while (Found <= MaxOrder && FreeLists[Found].empty())
    ++Found;
  if (Found > MaxOrder) {
    // Carve a fresh block, aligned to its own size, at the frontier.
    Addr A = alignUp(Frontier, pow2(Order));
    Frontier = A + pow2(Order);
    return A;
  }
  Addr A = *FreeLists[Found].begin();
  FreeLists[Found].erase(FreeLists[Found].begin());
  // Split down to the requested order, returning upper halves.
  while (Found > Order) {
    --Found;
    FreeLists[Found].insert(A + pow2(Found));
  }
  return A;
}

void BuddyManager::releaseBlock(Addr A, unsigned Order) {
  while (Order < MaxOrder) {
    Addr Buddy = A ^ pow2(Order);
    auto It = FreeLists[Order].find(Buddy);
    if (It == FreeLists[Order].end())
      break;
    FreeLists[Order].erase(It);
    A = A < Buddy ? A : Buddy;
    ++Order;
  }
  FreeLists[Order].insert(A);
}

Addr BuddyManager::placeFor(uint64_t Size) {
  unsigned Order = log2Ceil(Size);
  Addr A = takeBlock(Order);
  PendingBlock = A;
  PendingOrder = Order;
  return A;
}

void BuddyManager::onPlaced(ObjectId Id) {
  assert(PendingBlock != InvalidAddr &&
         "buddy manager does not move objects");
  const Object &O = heap().object(Id);
  assert(O.Address == PendingBlock && "placement does not match its block");
  Blocks[Id] = {PendingBlock, PendingOrder};
  PaddingWords += pow2(PendingOrder) - O.Size;
  PendingBlock = InvalidAddr;
}

void BuddyManager::onFreeing(ObjectId Id) {
  auto It = Blocks.find(Id);
  assert(It != Blocks.end() && "freeing an object without a buddy block");
  const Object &O = heap().object(Id);
  PaddingWords -= pow2(It->second.second) - O.Size;
  releaseBlock(It->second.first, It->second.second);
  Blocks.erase(It);
}
