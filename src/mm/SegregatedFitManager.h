//===- mm/SegregatedFitManager.h - Per-size-class allocation ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Segregated storage in the spirit of Robson's optimal non-moving
/// allocator Ao (Section 2.2): each power-of-two size class owns slots
/// aligned to the class size; a freed slot is only ever reused by its own
/// class. Against programs in P2(M, n) this keeps the footprint within
/// Robson's matching upper bound territory; we measure exactly where it
/// lands in the E4 bench.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_SEGREGATEDFITMANAGER_H
#define PCBOUND_MM_SEGREGATEDFITMANAGER_H

#include "mm/MemoryManager.h"

#include <map>
#include <set>
#include <vector>

namespace pcb {

/// Per-size-class slots with size-aligned placement.
class SegregatedFitManager : public MemoryManager {
public:
  SegregatedFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "segregated-fit"; }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreeing(ObjectId Id) override;

private:
  static constexpr unsigned MaxClass = 48;

  /// Free slots per class, lowest address first.
  std::vector<std::set<Addr>> FreeSlots =
      std::vector<std::set<Addr>>(MaxClass + 1);
  /// The slot (start, class) backing each live object.
  std::map<ObjectId, std::pair<Addr, unsigned>> Slots;
  Addr Frontier = 0;
  Addr PendingSlot = InvalidAddr;
  unsigned PendingClass = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_SEGREGATEDFITMANAGER_H
