//===- mm/ChunkedManager.h - Counter-driven chunked heap --------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator in the style of the qp-trie allocator's
/// chunked design (see SNIPPETS.md): the address space is carved into
/// fixed-size chunks; allocation bumps through one open chunk at a time,
/// and every chunk keeps two counters — words ever bump-allocated in its
/// current cycle and words freed since. Their difference is the chunk's
/// live volume, so the garbage share of any chunk is known in O(1)
/// without scanning the heap.
///
/// Compaction is triggered *per chunk*: the moment a retired chunk's
/// freed-word counter reaches GarbageThreshold * chunkSize, the chunk is
/// queued, and at the next allocation its survivors are bump-evacuated
/// into the open chunk and the emptied chunk returns to a free pool. The
/// ledger is charged only for the moved words (the survivors), never for
/// the garbage — exactly the c-partial accounting of Section 2.1. A
/// wholly-garbage chunk is recycled for free.
///
/// Objects never straddle chunks: requests larger than a chunk take a
/// dedicated contiguous run of chunks (never compacted), everything else
/// fits the bump remainder of the open chunk or retires it.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_CHUNKEDMANAGER_H
#define PCBOUND_MM_CHUNKEDMANAGER_H

#include "mm/MemoryManager.h"

#include <set>
#include <vector>

namespace pcb {

/// Chunked bump allocator with O(1) per-chunk garbage accounting and
/// threshold-triggered per-chunk evacuation.
class ChunkedManager : public MemoryManager {
public:
  struct Options {
    /// log2 of the chunk size in words.
    unsigned ChunkLog = 8;
    /// A retired chunk is queued for evacuation as soon as its freed
    /// counter reaches this share of the chunk size (inclusive: a chunk
    /// exactly at the boundary triggers).
    double GarbageThreshold = 0.5;
  };

  ChunkedManager(Heap &H, double C) : MemoryManager(H, C) { checkOpts(); }
  ChunkedManager(Heap &H, double C, const Options &O)
      : MemoryManager(H, C), Opts(O) {
    checkOpts();
  }

  std::string name() const override { return "chunked"; }

  uint64_t chunkSize() const { return uint64_t(1) << Opts.ChunkLog; }
  uint64_t numChunkEvacuations() const { return NumEvacuations; }
  uint64_t numPendingTriggers() const { return Pending.size(); }
  uint64_t numFreeChunks() const { return FreeChunks.size(); }

  /// The two per-chunk counters, exposed for the accounting tests.
  struct Counters {
    uint64_t Bump;  ///< words ever bump-allocated this cycle
    uint64_t Freed; ///< words freed (or moved out) since
  };
  Counters countersAt(Addr A) const {
    uint64_t Index = A >> Opts.ChunkLog;
    if (Index >= Chunks.size())
      return {0, 0};
    return {Chunks[Index].Bump, Chunks[Index].Freed};
  }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreeing(ObjectId Id) override;

private:
  enum class ChunkState : uint8_t { Free, Open, Retired, Humongous,
                                    HumongousTail };

  struct ChunkInfo {
    ChunkState State = ChunkState::Free;
    uint64_t Bump = 0;      ///< words ever bump-allocated this cycle
    uint64_t Freed = 0;     ///< words freed (or moved out) since
    uint64_t RunLength = 0; ///< chunks in the run (Humongous head only)
  };

  void checkOpts() const;

  Addr startOf(uint64_t Index) const { return Index << Opts.ChunkLog; }

  /// Ensures chunk \p Index exists in the table.
  ChunkInfo &chunk(uint64_t Index);

  /// The trigger rule: freed words at or above the garbage-share
  /// boundary.
  bool triggered(const ChunkInfo &Ch) const {
    return double(Ch.Freed) >= Opts.GarbageThreshold * double(chunkSize());
  }

  /// Retires the open chunk (releasing it at once when it is already
  /// wholly garbage, queueing it when its trigger already fired).
  void retireCurrent();

  /// Opens a chunk for bump allocation (lowest free chunk, else the
  /// frontier).
  void openChunk();

  /// Returns an emptied chunk to the free pool and resets its counters.
  void releaseChunk(uint64_t Index);

  /// Bump-allocation address for \p Size <= chunkSize() words, retiring
  /// and opening chunks as needed. Placements and evacuation
  /// destinations share this path.
  Addr bumpDest(uint64_t Size);

  /// Dedicated contiguous chunk run for \p Size > chunkSize() words.
  Addr placeHumongous(uint64_t Size);

  /// Drains the pending-trigger queue (unless a previous drain died on
  /// the budget and it has not grown since).
  void processTriggers();

  /// Moves the survivors of \p Victim out through the bump path; true
  /// when the chunk emptied.
  bool evacuateChunk(uint64_t Victim);

  Options Opts;
  std::vector<ChunkInfo> Chunks;
  std::set<uint64_t> FreeChunks;
  uint64_t Frontier = 0;      ///< first never-carved chunk index
  uint64_t Cur = UINT64_MAX;  ///< the open bump chunk, or none
  /// Retired chunks whose trigger fired, awaiting evacuation.
  std::set<uint64_t> Pending;
  /// compactionBudget() at the last budget-denied drain; draining again
  /// is pointless until the budget grows past it.
  uint64_t LastDeniedBudget = UINT64_MAX;
  uint64_t NumEvacuations = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_CHUNKEDMANAGER_H
