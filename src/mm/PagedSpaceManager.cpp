//===- mm/PagedSpaceManager.cpp - Region-based size-class heap -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/PagedSpaceManager.h"

#include "obs/Profiler.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

void PagedSpaceManager::init() {
  assert(Opts.PageLog >= 1 && Opts.PageLog < 32 && "unreasonable page size");
  Allocatable.resize(Opts.PageLog + 1);
  BoundPages.resize(Opts.PageLog + 1);
}

PagedSpaceManager::PageInfo &PagedSpaceManager::page(uint64_t Index) {
  if (Index >= Pages.size())
    Pages.resize(Index + 1);
  return Pages[Index];
}

uint64_t PagedSpaceManager::acquirePage() {
  if (!FreePages.empty()) {
    uint64_t Index = *FreePages.begin();
    FreePages.erase(FreePages.begin());
    return Index;
  }
  uint64_t Index = Frontier++;
  page(Index); // materialize
  return Index;
}

void PagedSpaceManager::bindPage(uint64_t Index, unsigned Class) {
  PageInfo &P = page(Index);
  assert(P.State == PageState::Free && "binding a non-free page");
  P.State = PageState::Bound;
  P.Class = Class;
  P.LiveSlots = 0;
  P.FreeSlots.clear();
  for (uint64_t Offset = 0; Offset != pageSize(); Offset += pow2(Class))
    P.FreeSlots.insert(Offset);
  Allocatable[Class].insert(Index);
  BoundPages[Class].insert(Index);
}

void PagedSpaceManager::releasePage(uint64_t Index) {
  PageInfo &P = Pages[Index];
  P.State = PageState::Free;
  P.FreeSlots.clear();
  FreePages.insert(Index);
}

Addr PagedSpaceManager::takeSlot(unsigned Class, uint64_t AvoidPage) {
  uint64_t Index = UINT64_MAX;
  for (uint64_t Candidate : Allocatable[Class]) {
    if (Candidate == AvoidPage)
      continue;
    Index = Candidate;
    break;
  }
  if (Index == UINT64_MAX) {
    Index = acquirePage();
    bindPage(Index, Class);
  }
  PageInfo &P = Pages[Index];
  assert(!P.FreeSlots.empty() && "allocatable page without free slots");
  uint64_t Offset = *P.FreeSlots.begin();
  P.FreeSlots.erase(P.FreeSlots.begin());
  ++P.LiveSlots;
  if (P.FreeSlots.empty())
    Allocatable[Class].erase(Index);
  return Index * pageSize() + Offset;
}

bool PagedSpaceManager::evacuateSparsestPage() {
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  // The victim is the bound page with the fewest live slot words across
  // all classes — the G1 liveness criterion.
  uint64_t Victim = UINT64_MAX;
  uint64_t VictimWords = UINT64_MAX;
  for (unsigned Class = 0; Class != BoundPages.size(); ++Class)
    for (uint64_t Index : BoundPages[Class]) {
      const PageInfo &P = Pages[Index];
      uint64_t Words = P.LiveSlots * pow2(Class);
      if (P.LiveSlots != 0 && Words < VictimWords) {
        VictimWords = Words;
        Victim = Index;
      }
    }
  if (Victim == UINT64_MAX)
    return false;
  if (double(VictimWords) > Opts.EvacuationThreshold * double(pageSize()))
    return false;
  unsigned VictimClass = Pages[Victim].Class;

  Addr Start = Victim * pageSize();
  std::vector<ObjectId> Residents = heap().liveObjectsIn(Start, pageSize());
  uint64_t LiveWords = 0;
  for (ObjectId Id : Residents)
    LiveWords += heap().object(Id).Size;
  if (!ledger().canMove(LiveWords))
    return false;

  for (ObjectId Id : Residents) {
    const Object &O = heap().object(Id);
    assert(log2Ceil(O.Size) == VictimClass &&
           "resident object of a foreign class");
    Addr Dest = takeSlot(VictimClass, /*AvoidPage=*/Victim);
    if (!tryMoveObject(Id, Dest)) {
      // Undo the destination slot reservation and give up.
      uint64_t DestPage = Dest / pageSize();
      PageInfo &DP = Pages[DestPage];
      DP.FreeSlots.insert(Dest % pageSize());
      --DP.LiveSlots;
      Allocatable[VictimClass].insert(DestPage);
      return false;
    }
  }
  // The last departure released the victim page through onFreeing.
  assert(Pages[Victim].State == PageState::Free &&
         "evacuated page did not empty");
  ++NumEvacuations;
  return true;
}

Addr PagedSpaceManager::placeFor(uint64_t Size) {
  unsigned Class = log2Ceil(Size);

  // Humongous path: dedicated contiguous pages.
  if (pow2(Class) > pageSize()) {
    uint64_t RunLen = ceilDiv(Size, pageSize());
    // Find the lowest run of RunLen consecutive free pages.
    uint64_t RunStart = UINT64_MAX;
    uint64_t Count = 0;
    uint64_t Prev = UINT64_MAX;
    for (uint64_t Index : FreePages) {
      if (Prev != UINT64_MAX && Index == Prev + 1) {
        ++Count;
      } else {
        RunStart = Index;
        Count = 1;
      }
      Prev = Index;
      if (Count == RunLen)
        break;
    }
    uint64_t Head;
    if (Count == RunLen) {
      Head = RunStart;
      for (uint64_t K = 0; K != RunLen; ++K)
        FreePages.erase(Head + K);
    } else {
      Head = Frontier;
      Frontier += RunLen;
      page(Head + RunLen - 1); // materialize the run
    }
    PageInfo &HeadInfo = page(Head);
    HeadInfo.State = PageState::Humongous;
    HeadInfo.RunLength = RunLen;
    for (uint64_t K = 1; K != RunLen; ++K)
      page(Head + K).State = PageState::HumongousTail;
    return Head * pageSize();
  }

  // Slot path, with G1-style evacuation as the last resort before
  // growing the heap.
  if (Allocatable[Class].empty() && FreePages.empty() &&
      Opts.AllowEvacuation)
    evacuateSparsestPage();
  return takeSlot(Class, /*AvoidPage=*/UINT64_MAX);
}

void PagedSpaceManager::onFreeing(ObjectId Id) {
  const Object &O = heap().object(Id);
  uint64_t Index = O.Address / pageSize();
  PageInfo &P = Pages[Index];

  if (P.State == PageState::Humongous) {
    assert(O.Address % pageSize() == 0 && "humongous object off page start");
    // Copy the length first: the first iteration clears the head page's
    // own RunLength field.
    uint64_t RunLength = P.RunLength;
    for (uint64_t K = 0; K != RunLength; ++K) {
      Pages[Index + K].State = PageState::Free;
      Pages[Index + K].RunLength = 0;
      FreePages.insert(Index + K);
    }
    return;
  }

  assert(P.State == PageState::Bound && "free from an unbound page");
  uint64_t Offset = O.Address % pageSize();
  assert(Offset % pow2(P.Class) == 0 && "object off its slot boundary");
  P.FreeSlots.insert(Offset);
  assert(P.LiveSlots != 0 && "slot accounting underflow");
  --P.LiveSlots;
  if (P.LiveSlots == 0) {
    // The page emptied: recycle it across classes.
    Allocatable[P.Class].erase(Index);
    BoundPages[P.Class].erase(Index);
    releasePage(Index);
    return;
  }
  Allocatable[P.Class].insert(Index);
}
