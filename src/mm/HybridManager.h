//===- mm/HybridManager.h - Segregated fit + bounded evacuation -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A manager in the spirit of Theorem 2's AC: Robson-style segregated
/// size classes (which alone already guarantee the Robson upper bound),
/// augmented with budgeted evacuation — when a class has no free slot,
/// the manager looks for a sparse class-aligned region below the frontier
/// to clear before extending the heap. The paper's Theorem 2 shows this
/// combination beats both pure Robson (for moderate c) and the naive
/// (c+1)M compactor; bench E6 measures this implementation against both.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_HYBRIDMANAGER_H
#define PCBOUND_MM_HYBRIDMANAGER_H

#include "mm/MemoryManager.h"

#include <map>
#include <set>
#include <vector>

namespace pcb {

/// Segregated fit whose slot misses may evacuate a sparse aligned chunk.
class HybridManager : public MemoryManager {
public:
  struct Options {
    /// Maximum live fraction of a candidate chunk.
    double DensityThreshold = 0.25;
    /// Requests below this size never trigger evacuation.
    uint64_t MinEvacuationSize = 8;
    /// At most this many candidate chunks are examined per slot miss.
    uint64_t MaxScanChunks = 4096;
  };

  HybridManager(Heap &H, double C) : MemoryManager(H, C) {}
  HybridManager(Heap &H, double C, const Options &Opts)
      : MemoryManager(H, C), Opts(Opts) {}

  std::string name() const override { return "hybrid"; }

  uint64_t numEvacuations() const { return NumEvacuations; }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreeing(ObjectId Id) override;

private:
  /// Pops a free slot of \p Class outside [AvoidStart, AvoidEnd), or
  /// carves one at the frontier. Sets Pending state for onPlaced.
  Addr acquireSlot(unsigned Class, Addr AvoidStart, Addr AvoidEnd);

  /// Tries to clear a class-aligned chunk below the frontier; returns its
  /// start or InvalidAddr.
  Addr evacuateFor(unsigned Class);

  /// After clearing [Start, Start + 2^Class), reconciles the free-slot
  /// lists: contained smaller slots are absorbed, and a larger free slot
  /// containing the chunk is buddy-split so only its complement stays
  /// free. Keeps slot bookkeeping consistent with the heap.
  void removeOverlappingSlots(Addr Start, unsigned Class);

  static constexpr unsigned MaxClass = 48;

  /// Chunks only get sparser through frees and moves; a failed scan need
  /// not be repeated until one happens.
  uint64_t heapChangeSignature() const {
    return heap().stats().NumFrees + heap().stats().NumMoves;
  }

  Options Opts;
  std::map<unsigned, uint64_t> FailedScanSignature;
  std::vector<std::set<Addr>> FreeSlots =
      std::vector<std::set<Addr>>(MaxClass + 1);
  std::map<ObjectId, std::pair<Addr, unsigned>> Slots;
  Addr Frontier = 0;
  Addr PendingSlot = InvalidAddr;
  unsigned PendingClass = 0;
  uint64_t NumEvacuations = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_HYBRIDMANAGER_H
