//===- mm/ChunkedManager.cpp - Counter-driven chunked heap ----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/ChunkedManager.h"

#include "obs/Profiler.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

void ChunkedManager::checkOpts() const {
  assert(Opts.ChunkLog >= 1 && Opts.ChunkLog < 32 &&
         "unreasonable chunk size");
  assert(Opts.GarbageThreshold > 0.0 && "threshold must be positive");
}

ChunkedManager::ChunkInfo &ChunkedManager::chunk(uint64_t Index) {
  if (Index >= Chunks.size())
    Chunks.resize(Index + 1);
  return Chunks[Index];
}

void ChunkedManager::retireCurrent() {
  assert(Cur != UINT64_MAX && "no open chunk to retire");
  ChunkInfo &Ch = Chunks[Cur];
  assert(Ch.State == ChunkState::Open && "retiring a non-open chunk");
  Ch.State = ChunkState::Retired;
  if (Ch.Freed == Ch.Bump)
    releaseChunk(Cur); // already wholly garbage: recycle for free
  else if (triggered(Ch))
    Pending.insert(Cur);
  Cur = UINT64_MAX;
}

void ChunkedManager::openChunk() {
  assert(Cur == UINT64_MAX && "opening over an open chunk");
  uint64_t Index;
  if (!FreeChunks.empty()) {
    Index = *FreeChunks.begin();
    FreeChunks.erase(FreeChunks.begin());
  } else {
    Index = Frontier++;
  }
  ChunkInfo &Ch = chunk(Index);
  assert(Ch.State == ChunkState::Free && "opening a non-free chunk");
  assert(Ch.Bump == 0 && Ch.Freed == 0 && "stale counters on a free chunk");
  Ch.State = ChunkState::Open;
  Cur = Index;
}

void ChunkedManager::releaseChunk(uint64_t Index) {
  ChunkInfo &Ch = Chunks[Index];
  Ch.State = ChunkState::Free;
  Ch.Bump = 0;
  Ch.Freed = 0;
  FreeChunks.insert(Index);
  Pending.erase(Index);
}

Addr ChunkedManager::bumpDest(uint64_t Size) {
  assert(Size <= chunkSize() && "bump request exceeds a chunk");
  if (Cur != UINT64_MAX && chunkSize() - Chunks[Cur].Bump < Size)
    retireCurrent();
  if (Cur == UINT64_MAX)
    openChunk();
  return startOf(Cur) + Chunks[Cur].Bump;
}

Addr ChunkedManager::placeHumongous(uint64_t Size) {
  uint64_t RunLen = ceilDiv(Size, chunkSize());
  // Find the lowest run of RunLen consecutive free chunks.
  uint64_t RunStart = UINT64_MAX;
  uint64_t Count = 0;
  uint64_t Prev = UINT64_MAX;
  for (uint64_t Index : FreeChunks) {
    if (Prev != UINT64_MAX && Index == Prev + 1) {
      ++Count;
    } else {
      RunStart = Index;
      Count = 1;
    }
    Prev = Index;
    if (Count == RunLen)
      break;
  }
  uint64_t Head;
  if (Count == RunLen) {
    Head = RunStart;
    for (uint64_t K = 0; K != RunLen; ++K)
      FreeChunks.erase(Head + K);
  } else {
    Head = Frontier;
    Frontier += RunLen;
    chunk(Head + RunLen - 1); // materialize the run
  }
  ChunkInfo &HeadInfo = chunk(Head);
  HeadInfo.State = ChunkState::Humongous;
  HeadInfo.RunLength = RunLen;
  for (uint64_t K = 1; K != RunLen; ++K)
    chunk(Head + K).State = ChunkState::HumongousTail;
  return startOf(Head);
}

void ChunkedManager::processTriggers() {
  if (Pending.empty())
    return;
  // A drain that died on the budget is not retried until it grows.
  if (LastDeniedBudget != UINT64_MAX &&
      compactionBudget() <= LastDeniedBudget)
    return;
  ScopedTimer Timer(Profiler::SecChunkTrigger);
  Profiler::bump(Profiler::CtrCompactionPasses);
  while (!Pending.empty()) {
    uint64_t Victim = *Pending.begin();
    if (!evacuateChunk(Victim)) {
      LastDeniedBudget = compactionBudget();
      return;
    }
  }
  LastDeniedBudget = UINT64_MAX;
}

bool ChunkedManager::evacuateChunk(uint64_t Victim) {
  ScopedTimer Timer(Profiler::SecCompaction);
  ChunkInfo &Ch = Chunks[Victim];
  assert(Ch.State == ChunkState::Retired && "evacuating a non-retired chunk");
  assert(Ch.Bump > Ch.Freed && "evacuating a wholly-garbage chunk");
  // The ledger is charged only for the survivors; refuse the whole chunk
  // when they do not fit the remaining budget (a partial evacuation
  // would spend budget without recycling the chunk). The spend gate is
  // consulted up front for the same reason — it is constant within a
  // step, so approval here funds the whole drain.
  if (!spendApproved() || !ledger().canMove(Ch.Bump - Ch.Freed))
    return false;
  for (ObjectId Id : heap().liveObjectsIn(startOf(Victim), chunkSize())) {
    // Bump placement never straddles chunks, so every resident is wholly
    // inside the victim.
    Addr Dest = bumpDest(heap().object(Id).Size);
    bool Moved = tryMoveObject(Id, Dest);
    assert((Moved || hasSpendGate()) &&
           "pre-checked evacuation exceeded the budget");
    if (!Moved)
      return false;
  }
  // The last departure released the victim through onFreeing.
  assert(Chunks[Victim].State == ChunkState::Free &&
         "evacuated chunk did not empty");
  Profiler::bump(Profiler::CtrChunkEvacuations);
  ++NumEvacuations;
  return true;
}

Addr ChunkedManager::placeFor(uint64_t Size) {
  processTriggers();
  if (Size > chunkSize())
    return placeHumongous(Size);
  return bumpDest(Size);
}

void ChunkedManager::onPlaced(ObjectId Id) {
  const Object &O = heap().object(Id);
  uint64_t Index = O.Address >> Opts.ChunkLog;
  ChunkInfo &Ch = chunk(Index);
  if (O.Size > chunkSize()) {
    assert(Ch.State == ChunkState::Humongous &&
           O.Address == startOf(Index) && "humongous object off its run");
    return;
  }
  assert(Index == Cur && Ch.State == ChunkState::Open &&
         "placement outside the open chunk");
  assert(O.Address == startOf(Index) + Ch.Bump &&
         "placement off the bump pointer");
  Ch.Bump += O.Size;
  assert(Ch.Bump <= chunkSize() && "bump counter overran the chunk");
}

void ChunkedManager::onFreeing(ObjectId Id) {
  const Object &O = heap().object(Id);
  uint64_t Index = O.Address >> Opts.ChunkLog;
  ChunkInfo &Ch = Chunks[Index];

  if (Ch.State == ChunkState::Humongous) {
    assert(O.Address == startOf(Index) && "humongous object off its run");
    // Copy the length first: the first iteration clears the head's own
    // RunLength field.
    uint64_t RunLength = Ch.RunLength;
    for (uint64_t K = 0; K != RunLength; ++K) {
      Chunks[Index + K].State = ChunkState::Free;
      Chunks[Index + K].RunLength = 0;
      FreeChunks.insert(Index + K);
    }
    return;
  }

  assert((Ch.State == ChunkState::Open || Ch.State == ChunkState::Retired) &&
         "free from a chunk that is not in use");
  Ch.Freed += O.Size;
  assert(Ch.Freed <= Ch.Bump && "freed counter overran the bump counter");
  if (Ch.State != ChunkState::Retired)
    return; // the open chunk is never released or queued while open
  if (Ch.Freed == Ch.Bump) {
    releaseChunk(Index);
    return;
  }
  if (triggered(Ch))
    Pending.insert(Index);
}
