//===- mm/SegregatedFitManager.cpp - Per-size-class allocation -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/SegregatedFitManager.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace pcb;

Addr SegregatedFitManager::placeFor(uint64_t Size) {
  unsigned Class = log2Ceil(Size);
  assert(Class <= MaxClass && "request beyond the maximum size class");
  Addr A;
  if (!FreeSlots[Class].empty()) {
    A = *FreeSlots[Class].begin();
    FreeSlots[Class].erase(FreeSlots[Class].begin());
  } else {
    A = alignUp(Frontier, pow2(Class));
    Frontier = A + pow2(Class);
  }
  PendingSlot = A;
  PendingClass = Class;
  return A;
}

void SegregatedFitManager::onPlaced(ObjectId Id) {
  assert(PendingSlot != InvalidAddr &&
         "segregated manager does not move objects");
  Slots[Id] = {PendingSlot, PendingClass};
  PendingSlot = InvalidAddr;
}

void SegregatedFitManager::onFreeing(ObjectId Id) {
  auto It = Slots.find(Id);
  assert(It != Slots.end() && "freeing an object without a slot");
  FreeSlots[It->second.second].insert(It->second.first);
  Slots.erase(It);
}
