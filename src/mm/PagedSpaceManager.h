//===- mm/PagedSpaceManager.h - Region-based size-class heap ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A region (page) based heap in the style of the production collectors
/// the paper's introduction cites (G1, Metronome, Pauseless, ...): the
/// address space is carved into fixed-size pages; each page is bound to
/// one power-of-two size class while in use and returns to a shared free
/// page pool when it empties; objects larger than a page take dedicated
/// contiguous "humongous" page runs. Unlike the flat SegregatedFit
/// baseline, empty pages are recycled *across* classes — the design real
/// systems use to contain size-class drift.
///
/// Defragmentation is page evacuation under the c-partial ledger: when a
/// class has neither a free slot nor a free page, the manager may
/// evacuate its sparsest page (moving the survivors into other pages of
/// the class) and rebind the freed page — a G1-style mixed collection.
/// Against PF this is exactly the move Theorem 1 prices: the adversary's
/// density keeps every page expensive enough that evacuation cannot
/// rescue the footprint.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_PAGEDSPACEMANAGER_H
#define PCBOUND_MM_PAGEDSPACEMANAGER_H

#include "mm/MemoryManager.h"

#include <set>
#include <vector>

namespace pcb {

/// Page-based size-class manager with cross-class page recycling and
/// budgeted page evacuation.
class PagedSpaceManager : public MemoryManager {
public:
  struct Options {
    /// log2 of the page size in words.
    unsigned PageLog = 9;
    /// Evacuate a page only when its live fraction is at most this (the
    /// G1 "liveness threshold").
    double EvacuationThreshold = 0.25;
    /// Enable evacuation at all (off = pure region recycling).
    bool AllowEvacuation = true;
  };

  PagedSpaceManager(Heap &H, double C) : MemoryManager(H, C) { init(); }
  PagedSpaceManager(Heap &H, double C, const Options &O)
      : MemoryManager(H, C), Opts(O) {
    init();
  }

  std::string name() const override { return "paged-space"; }

  uint64_t pageSize() const { return uint64_t(1) << Opts.PageLog; }
  uint64_t numPages() const { return Pages.size(); }
  uint64_t numFreePages() const { return FreePages.size(); }
  uint64_t numEvacuations() const { return NumEvacuations; }

protected:
  Addr placeFor(uint64_t Size) override;
  // onPlaced is not needed: takeSlot updates the slot structures at
  // selection time, for placements and move destinations alike.
  void onFreeing(ObjectId Id) override;

private:
  enum class PageState : uint8_t { Free, Bound, Humongous, HumongousTail };

  struct PageInfo {
    PageState State = PageState::Free;
    unsigned Class = 0;          ///< slot class when Bound
    uint64_t LiveSlots = 0;      ///< occupied slots when Bound
    std::set<uint64_t> FreeSlots; ///< free slot offsets when Bound
    uint64_t RunLength = 0;      ///< pages in the run (Humongous head)
  };

  void init();

  /// Ensures page \p Index exists in the table.
  PageInfo &page(uint64_t Index);

  /// Takes a free page (lowest index first) or extends the frontier.
  uint64_t acquirePage();

  /// Binds \p Index to \p Class and indexes it as allocatable.
  void bindPage(uint64_t Index, unsigned Class);

  /// Returns an emptied bound page (or a humongous run head) to the pool.
  void releasePage(uint64_t Index);

  /// Allocates one slot of \p Class; \p AvoidPage (or UINT64_MAX) is
  /// excluded (used during evacuation). May consume a free page. Never
  /// evacuates. Returns the slot address.
  Addr takeSlot(unsigned Class, uint64_t AvoidPage);

  /// Attempts a G1-style evacuation of the globally sparsest bound page
  /// (fewest live words, any class); survivors move into other pages of
  /// their own class. Returns true if a page was freed for reuse.
  bool evacuateSparsestPage();

  Options Opts;
  std::vector<PageInfo> Pages;
  std::set<uint64_t> FreePages;
  /// Bound pages with at least one free slot, per class.
  std::vector<std::set<uint64_t>> Allocatable;
  /// All bound pages per class (evacuation candidates).
  std::vector<std::set<uint64_t>> BoundPages;
  uint64_t Frontier = 0; ///< first never-carved page index
  uint64_t NumEvacuations = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_PAGEDSPACEMANAGER_H
