//===- mm/SlidingCompactor.h - Sliding (full) compaction --------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sliding mark-compact style manager: when no hole below the
/// high-water mark fits a request, it slides every live object toward
/// address zero (in address order, preserving relative order — the
/// classic Lisp-2 invariant) and retries. With an unlimited budget
/// (C <= 0) this is the paper's "full compaction after each
/// de-allocation" ideal whose overhead factor is 1 — the reference point
/// the lower bound proves unreachable for any c-partial manager. With a
/// finite C it degrades into a best-effort c-partial slider that stops
/// when the ledger runs dry.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_SLIDINGCOMPACTOR_H
#define PCBOUND_MM_SLIDINGCOMPACTOR_H

#include "mm/MemoryManager.h"

namespace pcb {

/// First fit plus whole-heap sliding compaction when fragmented.
class SlidingCompactor : public MemoryManager {
public:
  SlidingCompactor(Heap &H, double C) : MemoryManager(H, C) {}

  std::string name() const override {
    return ledger().isUnlimited() ? "sliding-unlimited" : "sliding";
  }

  /// Number of whole-heap compaction passes performed.
  uint64_t numCompactions() const { return NumCompactions; }

protected:
  Addr placeFor(uint64_t Size) override;

private:
  /// Slides live objects toward zero while the budget allows. Returns the
  /// number of objects moved.
  uint64_t slideAll();

  uint64_t NumCompactions = 0;
  /// Remaining budget at the last fruitless compaction attempt; retrying
  /// before new budget accrues (1 word per c allocated) is pointless.
  uint64_t LastFruitlessBudget = 0;
  bool HadFruitlessAttempt = false;
};

} // namespace pcb

#endif // PCBOUND_MM_SLIDINGCOMPACTOR_H
