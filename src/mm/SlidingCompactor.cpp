//===- mm/SlidingCompactor.cpp - Sliding (full) compaction ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/SlidingCompactor.h"

#include "obs/Profiler.h"

#include <algorithm>
#include <vector>

using namespace pcb;

Addr SlidingCompactor::placeFor(uint64_t Size) {
  const FreeSpaceIndex &Free = heap().freeSpace();
  Addr Hwm = heap().stats().HighWaterMark;

  if (Hwm >= Size) {
    Addr A = Free.firstFitBelow(Size, Hwm);
    if (A != InvalidAddr)
      return A;
  }

  // Only compact when the free space below the mark could actually absorb
  // the request afterwards. Every object lies below the mark, so the free
  // space below it is Hwm minus the live words — O(1) from the stats.
  uint64_t FreeBelow = Hwm - heap().stats().LiveWords;
  bool WorthTrying =
      !HadFruitlessAttempt ||
      ledger().remainingWords() != LastFruitlessBudget;
  if (Hwm > 0 && FreeBelow >= Size && WorthTrying) {
    if (slideAll() > 0) {
      ++NumCompactions;
      HadFruitlessAttempt = false;
      Addr A = Free.firstFitBelow(Size, heap().stats().HighWaterMark);
      if (A != InvalidAddr)
        return A;
    } else {
      HadFruitlessAttempt = true;
      LastFruitlessBudget = ledger().remainingWords();
    }
  }
  return Free.firstFit(Size);
}

uint64_t SlidingCompactor::slideAll() {
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  // Everything below the lowest free address is contiguously live, i.e.
  // already at its packed position, so the slide starts at the first gap.
  // Objects are visited in address order, lazily: a pass usually ends on
  // the first budget-denied move, so snapshotting the whole live set up
  // front is O(live) of mostly wasted work. The walk ahead of the cursor
  // is stable because moves only go downward and the move callback can
  // free only the just-moved object, which is already behind the cursor.
  // Sliding each object to the packed position never collides because
  // predecessors have already moved left.
  uint64_t Moved = 0;
  Addr Target = heap().freeSpace().firstFit(1);
  for (ObjectId Id = heap().firstLiveAt(Target); Id != InvalidObjectId;) {
    const Object &O = heap().object(Id);
    Addr After = O.Address + 1;
    if (O.Address != Target) {
      assert(Target < O.Address && "sliding would move an object upward");
      if (!tryMoveObject(Id, Target))
        break; // Budget exhausted; stop compacting.
      ++Moved;
    }
    // Moving may have freed the object (adversary callback); it still
    // consumed its packed span only if it is still there.
    if (heap().isLive(Id))
      Target += O.Size;
    Id = heap().firstLiveAt(After);
  }
  return Moved;
}
