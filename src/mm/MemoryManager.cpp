//===- mm/MemoryManager.cpp - Manager interface and move plumbing --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/MemoryManager.h"

#include <cassert>
#include <limits>

using namespace pcb;

MemoryManager::~MemoryManager() = default;

double MemoryManager::overheadBound() const {
  if (Ledger.isUnlimited())
    return std::numeric_limits<double>::infinity();
  // Each c-partial move of s words is funded by c*s words of fresh
  // allocation, so cumulative moves never exceed allocations / c.
  return 1.0 / Ledger.quotaDenominator();
}

ObjectId MemoryManager::allocate(uint64_t Size) {
  assert(Size != 0 && "allocating zero words");
  Addr Address = placeFor(Size);
  assert(TheHeap.isFree(Address, Size) &&
         "policy chose a non-free placement");
  ObjectId Id = TheHeap.place(Address, Size);
  onPlaced(Id);
  return Id;
}

void MemoryManager::free(ObjectId Id) {
  assert(TheHeap.isLive(Id) && "freeing a dead or unknown object");
  onFreeing(Id);
  const Object &O = TheHeap.object(Id);
  Addr From = O.Address;
  uint64_t Size = O.Size;
  TheHeap.free(Id);
  onFreed(Id, From, Size);
}

bool MemoryManager::tryMoveObject(ObjectId Id, Addr To) {
  assert(TheHeap.isLive(Id) && "moving a dead or unknown object");
  const Object &O = TheHeap.object(Id);
  if (Spend && !Spend())
    return false;
  if (!Ledger.canMove(O.Size))
    return false;
  Addr From = O.Address;
  // The policy's metadata must follow the object across the move; let the
  // subclass drop and re-add it around the heap-level move.
  onFreeing(Id);
  TheHeap.move(Id, To);
  onPlaced(Id);
  if (OnMove && OnMove(Id, From, To)) {
    // The program chose to de-allocate the moved object immediately.
    free(Id);
  }
  return true;
}
