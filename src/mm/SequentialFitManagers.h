//===- mm/SequentialFitManagers.h - First/best/next/aligned fit -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical non-moving sequential-fit policies. These are the
/// managers Robson's bounds speak about: they never compact, so against
/// Robson's bad program they must pay the full
/// M * (log2(n)/2 + 1) - n + 1 footprint.
///
/// AlignedFitManager additionally places every object at an address
/// aligned to its size rounded up to a power of two — the "aligned
/// allocation" simplification the paper uses in its overview (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_SEQUENTIALFITMANAGERS_H
#define PCBOUND_MM_SEQUENTIALFITMANAGERS_H

#include "mm/MemoryManager.h"
#include "support/MathUtils.h"

#include <algorithm>

namespace pcb {

/// Places each object at the lowest address where it fits.
class FirstFitManager : public MemoryManager {
public:
  FirstFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "first-fit"; }

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().firstFit(Size);
  }
};

/// Places each object in the smallest free block that fits.
class BestFitManager : public MemoryManager {
public:
  BestFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "best-fit"; }

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().bestFit(Size);
  }
};

/// First fit starting from a roving cursor (classic next fit).
class NextFitManager : public MemoryManager {
public:
  NextFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "next-fit"; }

protected:
  Addr placeFor(uint64_t Size) override {
    Addr A = heap().freeSpace().firstFitFrom(Cursor, Size);
    Cursor = A + Size;
    return A;
  }

private:
  Addr Cursor = 0;
};

/// Places each object in the *largest* free block (classic worst fit —
/// the textbook policy that keeps remainders big; included for the
/// baseline family, and indeed the one Robson's adversary punishes most).
class WorstFitManager : public MemoryManager {
public:
  WorstFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "worst-fit"; }

protected:
  Addr placeFor(uint64_t Size) override {
    // The largest block is always the infinite tail, which would degrade
    // worst fit into pure bump allocation; classic worst fit considers
    // the committed heap, so prefer the largest block strictly below the
    // high-water mark when one fits.
    Addr Hwm = heap().stats().HighWaterMark;
    Addr Best = heap().freeSpace().worstFitBelow(Size, Hwm);
    return Best != InvalidAddr ? Best : heap().freeSpace().firstFit(Size);
  }
};

/// First fit at addresses aligned to the request size rounded up to a
/// power of two (the paper's aligned-allocation model).
class AlignedFitManager : public MemoryManager {
public:
  AlignedFitManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "aligned-fit"; }

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().firstFitAligned(Size, nextPowerOfTwo(Size));
  }
};

} // namespace pcb

#endif // PCBOUND_MM_SEQUENTIALFITMANAGERS_H
