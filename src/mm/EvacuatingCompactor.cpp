//===- mm/EvacuatingCompactor.cpp - Budgeted chunk evacuation ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/EvacuatingCompactor.h"

#include "heap/ChunkView.h"
#include "obs/Profiler.h"

#include <algorithm>

using namespace pcb;

Addr EvacuatingCompactor::placeFor(uint64_t Size) {
  const FreeSpaceIndex &Free = heap().freeSpace();
  Addr Hwm = heap().stats().HighWaterMark;

  // Reuse an existing hole whenever one fits below the high-water mark:
  // that never costs budget and never grows the footprint.
  if (Hwm >= Size) {
    Addr A = Free.firstFitBelow(Size, Hwm);
    if (A != InvalidAddr)
      return A;
  }

  // Otherwise try to clear a sparse chunk.
  if (Size >= Opts.MinEvacuationSize) {
    Addr Cleared = evacuateFor(Size);
    if (Cleared != InvalidAddr)
      return Cleared;
  }

  // Give up and extend the heap.
  return Free.firstFit(Size);
}

Addr EvacuatingCompactor::evacuateFor(uint64_t Size) {
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  unsigned LogSize = log2Ceil(Size);
  ChunkView View(LogSize);
  uint64_t ChunkSize = View.chunkSize();
  Addr Hwm = heap().stats().HighWaterMark;
  uint64_t NumChunks = Hwm / ChunkSize;
  if (NumChunks == 0)
    return InvalidAddr;

  // If the previous scan at this size failed and nothing was freed or
  // moved since, every chunk is at least as dense as it was — skip.
  auto FIt = FailedScanSignature.find(LogSize);
  if (FIt != FailedScanSignature.end() &&
      FIt->second == heapChangeSignature())
    return InvalidAddr;

  uint64_t MaxUsed =
      uint64_t(Opts.DensityThreshold * double(ChunkSize));
  uint64_t Scan = std::min(NumChunks, Opts.MaxScanChunks);

  // Take the first qualifying chunk (evacuable under both the density
  // threshold and the remaining budget).
  uint64_t BestChunk = UINT64_MAX;
  uint64_t BestUsed = UINT64_MAX;
  for (uint64_t K = 0; K != Scan; ++K) {
    uint64_t Used = heap().usedWordsIn(View.startOf(K), ChunkSize);
    if (Used < BestUsed) {
      BestUsed = Used;
      BestChunk = K;
    }
    if (Used <= MaxUsed && ledger().canMove(Used))
      break;
  }
  if (BestChunk == UINT64_MAX)
    return InvalidAddr;

  Addr Start = View.startOf(BestChunk);
  Addr End = View.endOf(BestChunk);
  if (BestUsed == 0)
    return Start; // Already free; no moves needed.
  if (BestUsed > MaxUsed || !ledger().canMove(BestUsed)) {
    FailedScanSignature[LogSize] = heapChangeSignature();
    return InvalidAddr;
  }

  // Evacuate every live object intersecting the chunk. Objects straddling
  // the boundary must be moved whole (Section 3's discussion of
  // non-aligned objects).
  for (ObjectId Id : heap().liveObjectsIn(Start, ChunkSize)) {
    const Object &O = heap().object(Id);
    uint64_t ObjSize = O.Size;
    Addr Dest = heap().freeSpace().firstFit(ObjSize);
    // Never relocate into the chunk being cleared.
    if (Dest < End && Dest + ObjSize > Start)
      Dest = heap().freeSpace().firstFitFrom(End, ObjSize);
    if (!tryMoveObject(Id, Dest))
      return InvalidAddr; // Budget ran out mid-evacuation.
  }
  if (!heap().isFree(Start, Size))
    return InvalidAddr;
  ++NumEvacuations;
  return Start;
}
