//===- mm/HybridManager.cpp - Segregated fit + bounded evacuation --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/HybridManager.h"

#include "heap/ChunkView.h"
#include "obs/Profiler.h"

#include <algorithm>
#include <cassert>

using namespace pcb;

Addr HybridManager::acquireSlot(unsigned Class, Addr AvoidStart,
                                Addr AvoidEnd) {
  auto &List = FreeSlots[Class];
  for (auto It = List.begin(); It != List.end(); ++It) {
    Addr A = *It;
    if (A + pow2(Class) <= AvoidStart || A >= AvoidEnd) {
      List.erase(It);
      PendingSlot = A;
      PendingClass = Class;
      return A;
    }
  }
  Addr A = alignUp(Frontier, pow2(Class));
  Frontier = A + pow2(Class);
  PendingSlot = A;
  PendingClass = Class;
  return A;
}

Addr HybridManager::evacuateFor(unsigned Class) {
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  ChunkView View(Class);
  uint64_t ChunkSize = View.chunkSize();
  uint64_t NumChunks = Frontier / ChunkSize;
  if (NumChunks == 0)
    return InvalidAddr;

  // Skip the scan when nothing was freed or moved since the last failure
  // at this class — no chunk can have become sparser.
  auto FIt = FailedScanSignature.find(Class);
  if (FIt != FailedScanSignature.end() &&
      FIt->second == heapChangeSignature())
    return InvalidAddr;

  uint64_t MaxUsed = uint64_t(Opts.DensityThreshold * double(ChunkSize));
  uint64_t Scan = std::min(NumChunks, Opts.MaxScanChunks);

  uint64_t BestChunk = UINT64_MAX;
  uint64_t BestUsed = UINT64_MAX;
  for (uint64_t K = 0; K != Scan; ++K) {
    uint64_t Used = heap().usedWordsIn(View.startOf(K), ChunkSize);
    if (Used != 0 && Used < BestUsed) {
      BestUsed = Used;
      BestChunk = K;
      if (Used <= MaxUsed && ledger().canMove(Used))
        break;
    }
  }
  if (BestChunk == UINT64_MAX || BestUsed > MaxUsed ||
      !ledger().canMove(BestUsed)) {
    FailedScanSignature[Class] = heapChangeSignature();
    return InvalidAddr;
  }

  Addr Start = View.startOf(BestChunk);
  Addr End = View.endOf(BestChunk);
  for (ObjectId Id : heap().liveObjectsIn(Start, ChunkSize)) {
    const Object &O = heap().object(Id);
    unsigned ObjClass = log2Ceil(O.Size);
    Addr Dest = acquireSlot(ObjClass, Start, End);
    if (!tryMoveObject(Id, Dest)) {
      // Undo the pending acquisition: the slot goes back to its list.
      FreeSlots[PendingClass].insert(PendingSlot);
      PendingSlot = InvalidAddr;
      return InvalidAddr;
    }
  }
  if (!heap().isFree(Start, ChunkSize))
    return InvalidAddr;
  removeOverlappingSlots(Start, Class);
  ++NumEvacuations;
  return Start;
}

void HybridManager::removeOverlappingSlots(Addr Start, unsigned Class) {
  Addr End = Start + pow2(Class);
  // Smaller or equal classes: any overlapping free slot is aligned inside
  // the chunk; absorb it into the new slot by dropping it.
  for (unsigned K = 0; K <= Class; ++K) {
    auto &List = FreeSlots[K];
    auto It = List.lower_bound(Start);
    while (It != List.end() && *It < End)
      It = List.erase(It);
  }
  // Larger classes: at most one free slot can contain the chunk. Split it
  // buddy-style, keeping the halves that do not contain the chunk.
  for (unsigned K = Class + 1; K <= MaxClass; ++K) {
    auto &List = FreeSlots[K];
    if (List.empty())
      continue;
    Addr SlotStart = alignDown(Start, pow2(K));
    auto It = List.find(SlotStart);
    if (It == List.end())
      continue;
    List.erase(It);
    for (unsigned J = K; J > Class; --J) {
      Addr Half = pow2(J - 1);
      // The half not containing the chunk stays free as a class J-1 slot.
      if (Start & Half) {
        FreeSlots[J - 1].insert(SlotStart);
        SlotStart += Half;
      } else {
        FreeSlots[J - 1].insert(SlotStart + Half);
      }
    }
    break;
  }
}

Addr HybridManager::placeFor(uint64_t Size) {
  unsigned Class = log2Ceil(Size);
  assert(Class <= MaxClass && "request beyond the maximum size class");

  if (!FreeSlots[Class].empty()) {
    Addr A = *FreeSlots[Class].begin();
    FreeSlots[Class].erase(FreeSlots[Class].begin());
    PendingSlot = A;
    PendingClass = Class;
    return A;
  }

  if (pow2(Class) >= Opts.MinEvacuationSize) {
    Addr Cleared = evacuateFor(Class);
    if (Cleared != InvalidAddr) {
      PendingSlot = Cleared;
      PendingClass = Class;
      return Cleared;
    }
  }

  return acquireSlot(Class, /*AvoidStart=*/0, /*AvoidEnd=*/0);
}

void HybridManager::onPlaced(ObjectId Id) {
  assert(PendingSlot != InvalidAddr && "placement without an acquired slot");
  Slots[Id] = {PendingSlot, PendingClass};
  PendingSlot = InvalidAddr;
}

void HybridManager::onFreeing(ObjectId Id) {
  auto It = Slots.find(Id);
  assert(It != Slots.end() && "freeing an object without a slot");
  FreeSlots[It->second.second].insert(It->second.first);
  Slots.erase(It);
}
