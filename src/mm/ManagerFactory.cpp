//===- mm/ManagerFactory.cpp - Managers by name ---------------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/ManagerFactory.h"

#include "mm/BuddyManager.h"
#include "mm/BumpCompactor.h"
#include "mm/ChunkedManager.h"
#include "mm/EvacuatingCompactor.h"
#include "mm/HybridManager.h"
#include "mm/MeshingCompactor.h"
#include "mm/PagedSpaceManager.h"
#include "mm/SegregatedFitManager.h"
#include "mm/SequentialFitManagers.h"
#include "mm/SlidingCompactor.h"
#include "realloc/CostObliviousAllocator.h"
#include "realloc/NeverMoveAllocator.h"
#include "realloc/TightSpanAllocator.h"

using namespace pcb;

std::unique_ptr<MemoryManager> pcb::createManager(const std::string &Policy,
                                                  Heap &H, double C,
                                                  uint64_t LiveBound) {
  if (Policy == "first-fit")
    return std::make_unique<FirstFitManager>(H, C);
  if (Policy == "best-fit")
    return std::make_unique<BestFitManager>(H, C);
  if (Policy == "next-fit")
    return std::make_unique<NextFitManager>(H, C);
  if (Policy == "worst-fit")
    return std::make_unique<WorstFitManager>(H, C);
  if (Policy == "aligned-fit")
    return std::make_unique<AlignedFitManager>(H, C);
  if (Policy == "buddy")
    return std::make_unique<BuddyManager>(H, C);
  if (Policy == "segregated-fit")
    return std::make_unique<SegregatedFitManager>(H, C);
  if (Policy == "paged-space")
    return std::make_unique<PagedSpaceManager>(H, C);
  if (Policy == "chunked")
    return std::make_unique<ChunkedManager>(H, C);
  if (Policy == "meshing")
    return std::make_unique<MeshingCompactor>(H, C);
  if (Policy == "evacuating")
    return std::make_unique<EvacuatingCompactor>(H, C);
  if (Policy == "hybrid")
    return std::make_unique<HybridManager>(H, C);
  if (Policy == "sliding")
    return std::make_unique<SlidingCompactor>(H, C);
  if (Policy == "sliding-unlimited")
    return std::make_unique<SlidingCompactor>(H, /*C=*/0.0);
  if (Policy == "bump-compactor")
    return LiveBound == 0
               ? nullptr
               : std::make_unique<BumpCompactor>(H, C, LiveBound);
  // The reallocation family (DESIGN.md §17). These ignore C: their
  // budget is the overhead bound in the ReallocationLedger, not a
  // c-partial quota.
  if (Policy == "realloc-never")
    return std::make_unique<NeverMoveAllocator>(H);
  if (Policy == "realloc-bucket")
    return std::make_unique<CostObliviousAllocator>(H);
  if (Policy == "realloc-jin")
    return std::make_unique<TightSpanAllocator>(H);
  return nullptr;
}

std::unique_ptr<MemoryManager>
pcb::createManagerChecked(const std::string &Policy, Heap &H, double C,
                          uint64_t LiveBound, std::string *Error) {
  std::unique_ptr<MemoryManager> MM = createManager(Policy, H, C, LiveBound);
  if (MM)
    return MM;
  if (Error) {
    if (Policy == "bump-compactor")
      *Error = "policy 'bump-compactor' requires a live bound (the "
               "program's M) to size its compaction period";
    else
      *Error = "unknown policy '" + Policy +
               "'; valid policies: " + managerPolicyList();
  }
  return nullptr;
}

std::string pcb::managerPolicyList() {
  std::string List;
  for (const std::string &Name : allManagerPolicies()) {
    if (!List.empty())
      List += ", ";
    List += Name;
  }
  return List;
}

std::vector<std::string> pcb::allManagerPolicies() {
  std::vector<std::string> All = compactionFamilyPolicies();
  for (const std::string &Name : reallocManagerPolicies())
    All.push_back(Name);
  return All;
}

std::vector<std::string> pcb::compactionFamilyPolicies() {
  return {"first-fit",      "best-fit",       "next-fit",
          "worst-fit",      "aligned-fit",    "buddy",
          "segregated-fit", "chunked",        "meshing",
          "evacuating",     "hybrid",         "paged-space",
          "sliding",        "sliding-unlimited", "bump-compactor"};
}

std::vector<std::string> pcb::reallocManagerPolicies() {
  return {"realloc-never", "realloc-bucket", "realloc-jin"};
}

bool pcb::isReallocPolicy(const std::string &Policy) {
  for (const std::string &Name : reallocManagerPolicies())
    if (Name == Policy)
      return true;
  return false;
}

std::vector<std::string> pcb::nonMovingManagerPolicies() {
  return {"first-fit",   "best-fit", "next-fit",      "worst-fit",
          "aligned-fit", "buddy",    "segregated-fit", "realloc-never"};
}

std::vector<std::string> pcb::compactingManagerPolicies() {
  return {"chunked",     "meshing", "evacuating",     "hybrid",
          "paged-space", "sliding", "bump-compactor"};
}

bool pcb::isNonMovingPolicy(const std::string &Policy) {
  for (const std::string &Name : nonMovingManagerPolicies())
    if (Name == Policy)
      return true;
  return false;
}
