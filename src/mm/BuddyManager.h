//===- mm/BuddyManager.h - Binary buddy allocation --------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary buddy system: requests are rounded up to powers of two,
/// blocks split and coalesce pairwise. Buddy systems are the standard
/// non-moving design with internal rather than external fragmentation;
/// they serve as another baseline for the Robson adversary, which
/// allocates power-of-two sizes only (so the buddy's rounding costs it
/// nothing and the comparison is fair).
///
/// The arena grows upward: when no free block of the needed order exists
/// the manager carves a fresh, size-aligned block at the frontier. The
/// alignment gap below a carved block is permanently unused and — unlike
/// object padding — is never entered into the free lists, which keeps
/// buddy-coalescing sound across carve boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_BUDDYMANAGER_H
#define PCBOUND_MM_BUDDYMANAGER_H

#include "mm/MemoryManager.h"

#include <map>
#include <set>
#include <vector>

namespace pcb {

/// Binary buddy allocator over a growing arena.
class BuddyManager : public MemoryManager {
public:
  BuddyManager(Heap &H, double C) : MemoryManager(H, C) {}
  std::string name() const override { return "buddy"; }

  /// Words handed out as block padding (block size minus object size),
  /// i.e. the buddy's internal fragmentation so far, live blocks only.
  uint64_t internalPaddingWords() const { return PaddingWords; }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreeing(ObjectId Id) override;

private:
  /// Takes a free block of order \p Order, splitting larger blocks or
  /// carving from the frontier as needed.
  Addr takeBlock(unsigned Order);

  /// Returns block [A, A + 2^Order) to the free lists, coalescing.
  void releaseBlock(Addr A, unsigned Order);

  static constexpr unsigned MaxOrder = 48;

  /// Free blocks per order, lowest address first for determinism.
  std::vector<std::set<Addr>> FreeLists =
      std::vector<std::set<Addr>>(MaxOrder + 1);
  /// The live block (start, order) backing each object.
  std::map<ObjectId, std::pair<Addr, unsigned>> Blocks;
  /// Where the next carved block begins.
  Addr Frontier = 0;
  /// Block address chosen by placeFor, consumed by onPlaced.
  Addr PendingBlock = InvalidAddr;
  unsigned PendingOrder = 0;
  uint64_t PaddingWords = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_BUDDYMANAGER_H
