//===- mm/CompactionLedger.h - The c-partial budget -------------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's compaction model (Section 2.1): a memory manager is
/// c-partial if, at every point of the execution, the total number of
/// words it has moved is at most s/c where s is the total number of words
/// allocated so far. This ledger evaluates that constraint against the
/// heap's running statistics; the MemoryManager base class refuses moves
/// that would breach it, and the execution driver re-validates it as an
/// invariant after every step.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_COMPACTIONLEDGER_H
#define PCBOUND_MM_COMPACTIONLEDGER_H

#include "heap/Heap.h"

#include <cmath>
#include <cstdint>

namespace pcb {

/// Evaluates the c-partial compaction constraint against a heap.
class CompactionLedger {
public:
  /// \p C is the compaction quota denominator. C <= 0 means unlimited
  /// compaction (used by the full-compaction baseline, which is
  /// deliberately *not* a c-partial manager).
  CompactionLedger(const Heap &H, double C) : H(H), C(C) {}

  /// True when compaction is not budget-limited.
  bool isUnlimited() const { return C <= 0.0; }

  double quotaDenominator() const { return C; }

  /// Words of compaction allowed so far: floor(total allocated / c).
  uint64_t budgetWords() const {
    if (isUnlimited())
      return UINT64_MAX;
    return uint64_t(std::floor(double(H.stats().TotalAllocatedWords) / C));
  }

  /// Words of budget not yet spent.
  uint64_t remainingWords() const {
    uint64_t Budget = budgetWords();
    uint64_t Spent = H.stats().MovedWords;
    return Budget > Spent ? Budget - Spent : 0;
  }

  /// True if moving \p Words more would still respect the budget.
  bool canMove(uint64_t Words) const {
    return isUnlimited() || Words <= remainingWords();
  }

  /// Invariant check: the moves performed so far respect the budget.
  bool holds() const {
    return isUnlimited() || H.stats().MovedWords <= budgetWords();
  }

private:
  const Heap &H;
  double C;
};

} // namespace pcb

#endif // PCBOUND_MM_COMPACTIONLEDGER_H
