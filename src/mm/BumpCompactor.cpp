//===- mm/BumpCompactor.cpp - The (c+1)M collector of POPL 2011 ----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/BumpCompactor.h"

#include "obs/Profiler.h"

#include <cassert>
#include <vector>

using namespace pcb;

Addr BumpCompactor::compact() {
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  // Everything below the lowest free address is contiguously live and so
  // already packed; the pass starts at the first gap. Live objects arrive
  // in address order; packing them downward in that order never collides
  // (the Lisp-2 invariant).
  Addr FirstGap = heap().freeSpace().firstFit(1);
  Addr Target = FirstGap;
  for (ObjectId Id : heap().liveObjectsIn(FirstGap, AddrLimit - FirstGap)) {
    const Object &O = heap().object(Id);
    if (O.Address != Target) {
      bool Moved = tryMoveObject(Id, Target);
      assert((Moved || hasSpendGate()) &&
             "the c*M period must fund a full compaction");
      // Only a spend gate flipping mid-pass can land here; abandon the
      // pass with the old frontier, which is still free.
      if (!Moved)
        return Bump;
      // The program may free the object in response to the move (the
      // adversaries do); its packed span is only consumed if it stayed.
    }
    if (heap().isLive(Id))
      Target += O.Size;
  }
  ++NumCompactions;
  return Target;
}

Addr BumpCompactor::placeFor(uint64_t Size) {
  double C = ledger().quotaDenominator();
  // One full compaction per c * M allocated words; with an unlimited
  // ledger, compact every M words (a reasonable full-compaction cadence).
  uint64_t Period =
      C <= 0.0 ? LiveBound : uint64_t(C * double(LiveBound));
  // The spend gate is consulted once for the whole pass: the gate is
  // constant within a step, so approval here funds every move below. A
  // denial defers the pass; the accumulated period keeps retrying it on
  // every later allocation until the gate reopens.
  if (AllocatedSinceCompaction >= Period && heap().stats().LiveWords > 0 &&
      spendApproved()) {
    Bump = compact();
    AllocatedSinceCompaction = 0;
  }
  // Fresh allocation always goes to the bump frontier; space freed
  // behind it is reclaimed only by the next compaction, exactly as in
  // the POPL 2011 construction. Every object ever placed lies below
  // Bump, so the frontier itself is always free.
  Addr A = Bump;
  assert(heap().isFree(A, Size) && "bump frontier is occupied");
  Bump = A + Size;
  AllocatedSinceCompaction += Size;
  return A;
}
