//===- mm/MemoryManager.h - Manager interface and move plumbing -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-manager side of the paper's program/manager interaction.
/// A manager is a placement policy over the shared Heap model: it decides
/// where each allocation goes and may move (compact) live objects within
/// its c-partial budget. Every move is reported to the program through a
/// callback, matching the paper's model in which the adversary reacts to
/// compaction (PF frees moved objects immediately).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_MEMORYMANAGER_H
#define PCBOUND_MM_MEMORYMANAGER_H

#include "heap/Heap.h"
#include "mm/CompactionLedger.h"

#include <functional>
#include <string>

namespace pcb {

class ReallocationLedger;

/// Base class for all memory managers. Subclasses implement the placement
/// policy in placeFor() and may use tryMoveObject() to compact.
class MemoryManager {
public:
  /// Invoked after the manager moves an object. Returns true if the
  /// program de-allocates the moved object immediately (PF's behaviour);
  /// the base class then performs that free before returning control to
  /// the policy code.
  using MoveCallback = std::function<bool(ObjectId, Addr, Addr)>;

  /// \p C is the compaction quota (see CompactionLedger); pass C <= 0 for
  /// the unlimited baseline.
  MemoryManager(Heap &H, double C) : TheHeap(H), Ledger(H, C) {}
  virtual ~MemoryManager();

  MemoryManager(const MemoryManager &) = delete;
  MemoryManager &operator=(const MemoryManager &) = delete;

  /// Allocates \p Size words, returning the new object's id. The address
  /// space is unbounded, so allocation always succeeds; the interesting
  /// quantity is the footprint it produces.
  ObjectId allocate(uint64_t Size);

  /// De-allocates a live object (a program action).
  void free(ObjectId Id);

  /// Display name of the policy, e.g. "first-fit".
  virtual std::string name() const = 0;

  void setMoveCallback(MoveCallback Callback) {
    OnMove = std::move(Callback);
  }

  /// Consulted at the top of every tryMoveObject, before the ledger: a
  /// false return makes the move fail exactly as an exhausted budget
  /// would, so the policy's budget-denied fallback handles it. This is
  /// the budget controllers' port (trace/BudgetController.h); unset (or
  /// always-true, the fixed-trigger controller) leaves behaviour
  /// byte-identical to an ungated manager.
  using SpendGate = std::function<bool()>;
  void setSpendGate(SpendGate Gate) { Spend = std::move(Gate); }

  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }
  const CompactionLedger &ledger() const { return Ledger; }

  /// The reallocation-family ledger when this manager maintains one
  /// (realloc/ReallocManager.h); null for the compaction family. The
  /// fuzzer's oracle uses it to reconcile ledger spend against the
  /// heap's cumulative move statistics end-to-end.
  virtual const ReallocationLedger *reallocationLedger() const {
    return nullptr;
  }

  /// The manager's declared overhead bound: on every prefix of an
  /// execution, cumulative moved words stay at or below this multiple
  /// of cumulative allocated words. For c-partial managers that is 1/c
  /// (each move of s words is funded by c*s freshly allocated words);
  /// unlimited baselines return infinity; reallocation managers
  /// override this with the bound of their paper scheme.
  virtual double overheadBound() const;

protected:
  /// Policy hook: returns the address at which to place \p Size words.
  /// The returned range must be free. May perform compaction first.
  virtual Addr placeFor(uint64_t Size) = 0;

  /// Policy hook: metadata update after an object was placed.
  virtual void onPlaced(ObjectId Id) { (void)Id; }

  /// Policy hook: metadata update just before an object's words are
  /// returned to the free space. The object is still live when called.
  virtual void onFreeing(ObjectId Id) { (void)Id; }

  /// Policy hook: runs after an object's words were returned to the
  /// free space, with the vacated range passed explicitly (the object
  /// is dead by now and no longer in the table). The reallocation
  /// managers react here — backfilling or repacking around the new
  /// hole — which onFreeing cannot do because the dying object still
  /// occupies its slot when that hook fires.
  virtual void onFreed(ObjectId Id, Addr From, uint64_t Size) {
    (void)Id;
    (void)From;
    (void)Size;
  }

  /// Attempts to move \p Id to \p To. Fails (returning false, no state
  /// change) when the c-partial budget does not cover the object. On
  /// success the program is notified; if it frees the object in response,
  /// the free happens before this returns.
  bool tryMoveObject(ObjectId Id, Addr To);

  /// True when a spend gate is installed (a budget controller is
  /// attached to this manager).
  bool hasSpendGate() const { return bool(Spend); }

  /// Consults the spend gate once; true when none is installed. Policies
  /// whose compaction transactions pre-check the ledger and then assume
  /// every move succeeds must call this at transaction start: the gate is
  /// constant within an execution step (controllers observe the heap only
  /// at step boundaries), so approval here funds every move of the
  /// transaction.
  bool spendApproved() const { return !Spend || Spend(); }

  /// Budget remaining right now, in words.
  uint64_t compactionBudget() const { return Ledger.remainingWords(); }

private:
  Heap &TheHeap;
  CompactionLedger Ledger;
  MoveCallback OnMove;
  SpendGate Spend;
};

} // namespace pcb

#endif // PCBOUND_MM_MEMORYMANAGER_H
