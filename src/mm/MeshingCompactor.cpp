//===- mm/MeshingCompactor.cpp - Bitboard chunk meshing -------------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "mm/MeshingCompactor.h"

#include "obs/Profiler.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace pcb;

void MeshingCompactor::checkOpts() const {
  assert(Opts.ChunkLog >= 1 && Opts.ChunkLog < 32 &&
         "unreasonable chunk size");
  assert(Opts.MaxProbePairs != 0 && Opts.MaxMerges != 0 &&
         "a mesh pass must be allowed to do something");
}

bool MeshingCompactor::chunkSelfContained(uint64_t Index) const {
  // An object straddles *into* a chunk iff the chunk's first word is
  // occupied but no object starts there; a straddler *out of* the chunk
  // is a straddler into the next one.
  auto StraddlesInto = [&](Addr Start) {
    uint64_t Occ, Starts;
    heap().occupancyWords(Start, 1, &Occ);
    heap().objectStartWords(Start, 1, &Starts);
    return (Occ & 1) != 0 && (Starts & 1) == 0;
  };
  return !StraddlesInto(startOf(Index)) && !StraddlesInto(startOf(Index + 1));
}

bool MeshingCompactor::mergeChunks(uint64_t Src, uint64_t Dst) {
  assert(Src != Dst && "meshing a chunk with itself");
  Addr SrcStart = startOf(Src);
  Addr DstStart = startOf(Dst);
  assert(heap().usedWordsIn(SrcStart, chunkSize()) != 0 &&
         "meshing an empty source chunk");
  assert(heap().occupancyDisjoint(SrcStart, DstStart, chunkSize()) &&
         "meshing chunks with overlapping occupancy");
  for (ObjectId Id : heap().liveObjectsIn(SrcStart, chunkSize())) {
    const Object &O = heap().object(Id);
    assert(O.Address >= SrcStart &&
           O.Address + O.Size <= SrcStart + chunkSize() &&
           "mesh source object straddles the chunk");
    // Disjointness makes the mirror offset free in the destination.
    bool Moved = tryMoveObject(Id, DstStart + (O.Address - SrcStart));
    assert((Moved || hasSpendGate()) &&
           "mesh merge exceeded the compaction budget");
    // Only a spend gate flipping mid-merge can land here; the objects
    // already moved form a valid (if partial) merge.
    if (!Moved)
      return false;
  }
  ++NumMerges;
  Profiler::bump(Profiler::CtrMeshMerges);
  return true;
}

bool MeshingCompactor::meshPass() {
  // A closed spend gate cannot fund any merge this step; skip the
  // candidate scan outright, leaving the failed-pass memo untouched so
  // the pass retries as soon as the gate reopens.
  if (!spendApproved())
    return false;
  ScopedTimer Timer(Profiler::SecCompaction);
  Profiler::bump(Profiler::CtrCompactionPasses);
  if (FailedPassSignature == heapChangeSignature())
    return false;

  // Candidates: partially occupied chunks wholly below the high-water
  // mark. Full chunks can only mesh with empty ones (pointless), empty
  // ones are already holes.
  struct Candidate {
    uint64_t Index;
    uint64_t Live;
  };
  std::vector<Candidate> Cands;
  uint64_t NumChunks = heap().stats().HighWaterMark >> Opts.ChunkLog;
  for (uint64_t K = 0; K != NumChunks; ++K) {
    uint64_t Used = heap().usedWordsIn(startOf(K), chunkSize());
    if (Used != 0 && Used != chunkSize())
      Cands.push_back({K, Used});
  }
  // Lightest sources first: the source popcount is the exact ledger
  // cost of its merge.
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.Live < B.Live;
                   });

  uint64_t Merges = 0;
  uint64_t Probes = 0;
  std::vector<bool> Consumed(Cands.size(), false);
  for (size_t S = 0; S != Cands.size() && Merges != Opts.MaxMerges &&
                     Probes != Opts.MaxProbePairs;
       ++S) {
    if (Consumed[S])
      continue;
    // Candidates are sorted: if the lightest source is over budget,
    // every remaining one is too.
    if (!ledger().canMove(Cands[S].Live))
      break;
    if (!chunkSelfContained(Cands[S].Index)) {
      Consumed[S] = true;
      continue;
    }
    // Probe the densest partners first so merges pack tightly.
    for (size_t D = Cands.size(); D-- > S + 1 && Probes != Opts.MaxProbePairs;) {
      if (Consumed[D])
        continue;
      ++Probes;
      bool Disjoint;
      {
        ScopedTimer ProbeTimer(Profiler::SecMeshProbe);
        Profiler::bump(Profiler::CtrMeshProbes);
        Disjoint = heap().occupancyDisjoint(startOf(Cands[S].Index),
                                            startOf(Cands[D].Index),
                                            chunkSize());
      }
      if (!Disjoint)
        continue;
      bool Merged = mergeChunks(Cands[S].Index, Cands[D].Index);
      // Both chunks' occupancy changed; retire them from this pass.
      Consumed[S] = Consumed[D] = true;
      if (!Merged) {
        // The spend gate closed mid-merge; no further merge can be
        // funded this step.
        NumProbes += Probes;
        return Merges != 0;
      }
      ++Merges;
      break;
    }
  }
  NumProbes += Probes;
  if (Merges == 0) {
    FailedPassSignature = heapChangeSignature();
    return false;
  }
  FailedPassSignature = UINT64_MAX;
  return true;
}

Addr MeshingCompactor::placeFor(uint64_t Size) {
  const FreeSpaceIndex &Free = heap().freeSpace();
  Addr Hwm = heap().stats().HighWaterMark;

  // Reuse an existing hole whenever one fits below the high-water mark:
  // that never costs budget and never grows the footprint.
  if (Hwm >= Size) {
    Addr A = Free.firstFitBelow(Size, Hwm);
    if (A != InvalidAddr)
      return A;
    // Meshing empties whole chunks; retry the fit after a productive
    // pass.
    if (meshPass()) {
      A = Free.firstFitBelow(Size, Hwm);
      if (A != InvalidAddr)
        return A;
    }
  }

  // Give up and extend the heap.
  return Free.firstFit(Size);
}
