//===- mm/BumpCompactor.h - The (c+1)M collector of POPL 2011 ---*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bendersky & Petrank's simple compacting collector Ac (Section 2.2):
/// bump-pointer allocation, and a full sliding compaction every time
/// c * M fresh words have been allocated since the previous compaction.
/// Each compaction moves at most M live words and is funded by exactly
/// the c * M words that preceded it, so the manager is c-partial; and
/// the footprint never exceeds M (live, packed at the bottom) plus c * M
/// (the bump run since), i.e. HS <= (c + 1) * M against every program in
/// P(M, n). This is the guarantee the paper's Figure 3 uses as the prior
/// upper bound, and the E6 bench and unit tests verify it holds in
/// simulation against every adversary.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_BUMPCOMPACTOR_H
#define PCBOUND_MM_BUMPCOMPACTOR_H

#include "mm/MemoryManager.h"

namespace pcb {

/// Bump allocation plus periodic full sliding compaction.
class BumpCompactor : public MemoryManager {
public:
  /// \p LiveBound is the program's M: the compaction period is
  /// c * LiveBound allocated words, which always funds sliding the at
  /// most LiveBound live words.
  BumpCompactor(Heap &H, double C, uint64_t LiveBound)
      : MemoryManager(H, C), LiveBound(LiveBound) {}

  std::string name() const override { return "bump-compactor"; }

  uint64_t numCompactions() const { return NumCompactions; }

  /// The worst footprint this manager can ever need for programs that
  /// keep at most LiveBound words live: (c + 1) * LiveBound.
  uint64_t footprintGuarantee() const {
    double C = ledger().quotaDenominator();
    return uint64_t((C + 1.0) * double(LiveBound));
  }

protected:
  Addr placeFor(uint64_t Size) override;

private:
  /// Slides every live object to the bottom of the heap; returns the
  /// packed end (the new bump pointer).
  Addr compact();

  uint64_t LiveBound;
  Addr Bump = 0;
  uint64_t AllocatedSinceCompaction = 0;
  uint64_t NumCompactions = 0;
};

} // namespace pcb

#endif // PCBOUND_MM_BUMPCOMPACTOR_H
