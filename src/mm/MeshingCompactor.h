//===- mm/MeshingCompactor.h - Bitboard chunk meshing -----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compacting manager in the style of Mesh (Powers et al., see
/// PAPERS.md): when allocation would grow the heap, scan pairs of
/// fixed-size chunks below the high-water mark for *disjoint occupancy*
/// and mesh them — move every live object of the sparser chunk to the
/// same offset in the other, which is guaranteed free by disjointness.
/// The source chunk empties wholesale and its span becomes a reusable
/// hole.
///
/// On the bitboard substrate the disjointness probe is
/// Heap::occupancyDisjoint — a word-AND per 64 addresses (with the
/// default chunk of 64 words, literally a single AND per pair). The
/// popcount of the source chunk is the exact number of words a merge
/// moves, so the c-partial ledger can be consulted before any object is
/// touched; moves are charged through tryMoveObject like every other
/// manager.
///
/// Unlike ChunkedManager the policy keeps no per-chunk metadata at all:
/// candidates, probes and merge plans are all derived from the occupancy
/// board, so the policy state cannot drift from the heap.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_MM_MESHINGCOMPACTOR_H
#define PCBOUND_MM_MESHINGCOMPACTOR_H

#include "mm/MemoryManager.h"

namespace pcb {

/// First fit plus budgeted meshing of occupancy-disjoint chunk pairs.
class MeshingCompactor : public MemoryManager {
public:
  struct Options {
    /// log2 of the mesh chunk size in words. At the default 6 one chunk
    /// is one occupancy word and a pair probe is a single AND.
    unsigned ChunkLog = 6;
    /// At most this many pair probes per mesh pass.
    uint64_t MaxProbePairs = 4096;
    /// At most this many merges per mesh pass.
    uint64_t MaxMerges = 8;
  };

  MeshingCompactor(Heap &H, double C) : MemoryManager(H, C) { checkOpts(); }
  MeshingCompactor(Heap &H, double C, const Options &O)
      : MemoryManager(H, C), Opts(O) {
    checkOpts();
  }

  std::string name() const override { return "meshing"; }

  uint64_t chunkSize() const { return uint64_t(1) << Opts.ChunkLog; }
  uint64_t numMerges() const { return NumMerges; }
  uint64_t numProbes() const { return NumProbes; }

  /// Meshes chunk \p Src into chunk \p Dst: every live object of Src
  /// moves to the same offset in Dst. Requires (asserted) a non-empty,
  /// self-contained source, disjoint occupancy, and enough budget —
  /// meshPass() only calls it with all four established. False when a
  /// spend gate closed mid-merge: the partial merge is still a valid
  /// heap, but the pass must stop probing. Public so the edge-case tests
  /// (merge target at AddrLimit, double-merge death test) can drive a
  /// merge directly.
  bool mergeChunks(uint64_t Src, uint64_t Dst);

  /// Runs one mesh pass (normally triggered by allocation pressure);
  /// true when at least one pair merged. Public for tests.
  bool meshPass();

protected:
  Addr placeFor(uint64_t Size) override;

private:
  void checkOpts() const;

  Addr startOf(uint64_t Index) const { return Index << Opts.ChunkLog; }

  /// True when no live object straddles the chunk's start or end
  /// boundary — only such chunks may be mesh sources (a straddler cannot
  /// move to "the same offset" of another chunk).
  bool chunkSelfContained(uint64_t Index) const;

  /// Meshes only get easier through frees and moves; when a pass merged
  /// nothing, re-scanning is pointless until one happens.
  uint64_t heapChangeSignature() const {
    return heap().stats().NumFrees + heap().stats().NumMoves;
  }

  Options Opts;
  uint64_t NumMerges = 0;
  uint64_t NumProbes = 0;
  /// heapChangeSignature() at the last merge-less pass.
  uint64_t FailedPassSignature = UINT64_MAX;
};

} // namespace pcb

#endif // PCBOUND_MM_MESHINGCOMPACTOR_H
