//===- driver/TraceIO.h - Text serialization of event logs ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for event logs, so adversarial executions
/// can be captured once and replayed (or inspected) later:
///
///   A <id> <addr> <size>        allocation
///   F <id> <addr> <size>        free
///   M <id> <from> <to> <size>   move (compaction)
///   S                           step boundary
///   # ...                       comment (ignored on read)
///
/// Reading tolerates blank lines and comments; any other malformed line
/// fails the whole parse (returning false) rather than silently skipping.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_DRIVER_TRACEIO_H
#define PCBOUND_DRIVER_TRACEIO_H

#include "driver/EventLog.h"

#include <iosfwd>
#include <string>

namespace pcb {

/// Writes \p Log line-by-line to \p OS.
void writeEventLog(std::ostream &OS, const EventLog &Log);

/// Parses a log previously written by writeEventLog. Returns false (and
/// leaves \p Log empty) on any malformed line; when \p Error is non-null
/// it then receives a diagnostic naming the line number and the reason
/// (truncated record, unknown tag, trailing garbage).
bool readEventLog(std::istream &IS, EventLog &Log,
                  std::string *Error = nullptr);

} // namespace pcb

#endif // PCBOUND_DRIVER_TRACEIO_H
