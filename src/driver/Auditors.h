//===- driver/Auditors.h - Independent re-derivation of statistics -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Auditors replay a recorded event stream and re-derive every quantity
/// the model cares about — footprint, live volume, total allocation,
/// moved words — *without* consulting the heap's own counters. The tests
/// use them as an independent witness that the statistics feeding
/// HS(A, P) and the compaction ledger are honest, and that the c-partial
/// constraint held at every prefix of the execution (not merely at the
/// end).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_DRIVER_AUDITORS_H
#define PCBOUND_DRIVER_AUDITORS_H

#include "heap/Heap.h"
#include "heap/HeapEvent.h"

#include <cstdint>
#include <vector>

namespace pcb {

/// Statistics re-derived from an event stream.
struct AuditReport {
  uint64_t HighWaterMark = 0;
  uint64_t LiveWords = 0;
  uint64_t PeakLiveWords = 0;
  uint64_t TotalAllocatedWords = 0;
  uint64_t MovedWords = 0;
  uint64_t NumAllocations = 0;
  uint64_t NumFrees = 0;
  uint64_t NumMoves = 0;
  /// True when the replay saw no inconsistency (double frees, moves of
  /// dead objects, overlapping placements are detected structurally).
  bool Consistent = true;

  /// True when every field agrees with the heap's own statistics.
  bool matches(const HeapStats &S) const {
    return Consistent && HighWaterMark == S.HighWaterMark &&
           LiveWords == S.LiveWords && PeakLiveWords == S.PeakLiveWords &&
           TotalAllocatedWords == S.TotalAllocatedWords &&
           MovedWords == S.MovedWords &&
           NumAllocations == S.NumAllocations && NumFrees == S.NumFrees &&
           NumMoves == S.NumMoves;
  }
};

/// Replays \p Events and re-derives the statistics.
AuditReport auditEvents(const std::vector<HeapEvent> &Events);

/// True when, at every prefix of \p Events, the moved words stay within
/// floor(allocated words / c) — the c-partial constraint as a property
/// of the whole history, not just its endpoint.
bool auditBudgetHistory(const std::vector<HeapEvent> &Events, double C);

} // namespace pcb

#endif // PCBOUND_DRIVER_AUDITORS_H
