//===- driver/Auditors.cpp - Independent re-derivation of statistics -----===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Auditors.h"

#include "heap/IntervalSet.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace pcb;

AuditReport pcb::auditEvents(const std::vector<HeapEvent> &Events) {
  AuditReport R;
  std::map<ObjectId, std::pair<Addr, uint64_t>> Live;
  IntervalSet Used;

  auto Occupy = [&](Addr A, uint64_t Size) {
    if (Used.overlaps(A, A + Size)) {
      R.Consistent = false;
      return;
    }
    Used.insert(A, A + Size);
  };

  for (const HeapEvent &E : Events) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc: {
      if (Live.count(E.Id)) {
        R.Consistent = false;
        break;
      }
      Occupy(E.Address, E.Size);
      Live[E.Id] = {E.Address, E.Size};
      R.LiveWords += E.Size;
      R.TotalAllocatedWords += E.Size;
      R.PeakLiveWords = std::max(R.PeakLiveWords, R.LiveWords);
      R.HighWaterMark = std::max(R.HighWaterMark, E.Address + E.Size);
      ++R.NumAllocations;
      break;
    }
    case HeapEvent::Kind::Free: {
      auto It = Live.find(E.Id);
      if (It == Live.end() || It->second.first != E.Address ||
          It->second.second != E.Size) {
        R.Consistent = false;
        break;
      }
      Used.erase(E.Address, E.Address + E.Size);
      Live.erase(It);
      R.LiveWords -= E.Size;
      ++R.NumFrees;
      break;
    }
    case HeapEvent::Kind::Move: {
      auto It = Live.find(E.Id);
      if (It == Live.end() || It->second.first != E.From ||
          It->second.second != E.Size) {
        R.Consistent = false;
        break;
      }
      Used.erase(E.From, E.From + E.Size);
      Occupy(E.Address, E.Size);
      It->second.first = E.Address;
      R.MovedWords += E.Size;
      R.HighWaterMark = std::max(R.HighWaterMark, E.Address + E.Size);
      ++R.NumMoves;
      break;
    }
    case HeapEvent::Kind::StepEnd:
      break;
    }
  }
  return R;
}

bool pcb::auditBudgetHistory(const std::vector<HeapEvent> &Events,
                             double C) {
  if (C <= 0.0)
    return true; // unlimited budget
  uint64_t Allocated = 0;
  uint64_t Moved = 0;
  for (const HeapEvent &E : Events) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc:
      Allocated += E.Size;
      break;
    case HeapEvent::Kind::Move:
      Moved += E.Size;
      if (double(Moved) > std::floor(double(Allocated) / C))
        return false;
      break;
    case HeapEvent::Kind::Free:
    case HeapEvent::Kind::StepEnd:
      break;
    }
  }
  return true;
}
