//===- driver/Execution.h - Program/manager execution engine ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a Program against a MemoryManager over a shared Heap, mediating
/// the de-allocate / compact / allocate sub-interactions of Section 2.1:
/// program requests flow through the driver (which enforces the live
/// bound M), compaction notifications flow back from the manager to the
/// program, and after every step the driver validates the model's
/// invariants — the c-partial budget (the manager never moves more than
/// 1/c of the allocated space) and the program's live bound.
///
/// \par Thread compatibility
/// Execution is thread-compatible: neither it nor the Program / Memory-
/// Manager / Heap stack it drives keeps global or static mutable state,
/// so independent executions (each with a private Heap, manager, and
/// program instance) may run concurrently on distinct threads. This is
/// the contract the experiment runner (src/runner/) relies on; one
/// Execution instance is not safe to share across threads.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_DRIVER_EXECUTION_H
#define PCBOUND_DRIVER_EXECUTION_H

#include "adversary/Program.h"
#include "driver/EventLog.h"
#include "mm/MemoryManager.h"

#include <functional>
#include <vector>

namespace pcb {

/// Summary of one completed execution.
struct ExecutionResult {
  /// HS(A, P): the heap footprint the manager needed, in words.
  uint64_t HeapSize = 0;
  uint64_t PeakLiveWords = 0;
  uint64_t TotalAllocatedWords = 0;
  uint64_t MovedWords = 0;
  uint64_t Steps = 0;
  uint64_t NumAllocations = 0;
  uint64_t NumFrees = 0;
  uint64_t NumMoves = 0;

  /// HS as a multiple of the live bound \p M — the figures' y axis.
  double wasteFactor(uint64_t M) const {
    return M == 0 ? 0.0 : double(HeapSize) / double(M);
  }

  /// Moved words per allocated word — the reallocation family's cost
  /// measure (0 before anything was allocated).
  double overheadRatio() const {
    return TotalAllocatedWords == 0
               ? 0.0
               : double(MovedWords) / double(TotalAllocatedWords);
  }
};

/// The execution engine; also the MutatorContext handed to the program.
class Execution : public MutatorContext {
public:
  struct Options {
    /// Validate invariants after every step (cheap; leave on).
    bool CheckInvariants = true;
    /// Additionally run the heap's full structural self-check
    /// (Heap::checkConsistency, O(objects)) every this-many steps;
    /// 0 disables. Used by the property tests.
    uint64_t DeepCheckEvery = 0;
    /// Hard stop against runaway programs.
    uint64_t MaxSteps = uint64_t(1) << 22;
    /// When set, every heap event (and a StepEnd marker per step) is
    /// recorded there; see driver/Auditors.h for what that enables.
    EventLog *Log = nullptr;
  };

  /// Wires \p P's move notifications into \p MM's callback. \p M is the
  /// program's live-space bound (the paper's M).
  Execution(MemoryManager &MM, Program &P, uint64_t M);
  Execution(MemoryManager &MM, Program &P, uint64_t M, const Options &O);

  /// Runs the program to completion and returns the summary.
  ExecutionResult run();

  /// Runs a single step; returns false when the program has finished.
  bool runStep();

  /// Invoked after every completed step; used by tests to sample
  /// program state (e.g. the potential function).
  void addStepObserver(std::function<void(const Execution &)> Observer) {
    Observers.push_back(std::move(Observer));
  }

  /// Summary of the execution so far.
  ExecutionResult result() const;

  uint64_t stepsRun() const { return Steps; }

  /// The manager this execution drives (e.g. for budget-ledger sampling).
  const MemoryManager &manager() const { return MM; }

  // MutatorContext interface.
  ObjectId allocate(uint64_t Size) override;
  void free(ObjectId Id) override;
  const Heap &heap() const override { return MM.heap(); }
  uint64_t liveBound() const override { return M; }

private:
  void checkInvariants() const;

  MemoryManager &MM;
  Program &P;
  uint64_t M;
  Options Opts;
  uint64_t Steps = 0;
  bool Finished = false;
  std::vector<std::function<void(const Execution &)>> Observers;
};

} // namespace pcb

#endif // PCBOUND_DRIVER_EXECUTION_H
