//===- driver/Execution.cpp - Program/manager execution engine -----------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Execution.h"

#include "obs/Profiler.h"

#include <cassert>

using namespace pcb;

Execution::Execution(MemoryManager &MM, Program &P, uint64_t M)
    : Execution(MM, P, M, Options()) {}

Execution::Execution(MemoryManager &MM, Program &P, uint64_t M,
                     const Options &O)
    : MM(MM), P(P), M(M), Opts(O) {
  MM.setMoveCallback([this](ObjectId Id, Addr From, Addr To) {
    return this->P.onObjectMoved(Id, From, To);
  });
  if (Opts.Log)
    MM.heap().setEventCallback(
        [Log = Opts.Log](const HeapEvent &E) { Log->record(E); });
}

ObjectId Execution::allocate(uint64_t Size) {
  assert(Size != 0 && "program allocates zero words");
  assert(MM.heap().stats().LiveWords + Size <= M &&
         "program exceeds its live bound M");
  return MM.allocate(Size);
}

void Execution::free(ObjectId Id) { MM.free(Id); }

bool Execution::runStep() {
  if (Finished)
    return false;
  // exec.step encloses the whole step, so heap.* / fsi.* / mm.compact
  // section times nest inside it (the report notes times are inclusive).
  ScopedTimer Timer(Profiler::SecStep);
  Finished = !P.step(*this);
  ++Steps;
  if (Opts.Log)
    Opts.Log->record(HeapEvent::stepEnd());
  if (Opts.CheckInvariants)
    checkInvariants();
  if (Opts.DeepCheckEvery != 0 && Steps % Opts.DeepCheckEvery == 0)
    assert(MM.heap().checkConsistency() &&
           "heap failed its structural self-check");
  for (const auto &Observer : Observers)
    Observer(*this);
  assert(Steps <= Opts.MaxSteps && "program exceeded the step limit");
  return !Finished;
}

ExecutionResult Execution::run() {
  while (runStep())
    ;
  return result();
}

ExecutionResult Execution::result() const {
  const HeapStats &S = MM.heap().stats();
  ExecutionResult R;
  R.HeapSize = S.HighWaterMark;
  R.PeakLiveWords = S.PeakLiveWords;
  R.TotalAllocatedWords = S.TotalAllocatedWords;
  R.MovedWords = S.MovedWords;
  R.Steps = Steps;
  R.NumAllocations = S.NumAllocations;
  R.NumFrees = S.NumFrees;
  R.NumMoves = S.NumMoves;
  return R;
}

void Execution::checkInvariants() const {
  // The c-partial constraint (Section 2.1): moved <= allocated / c.
  assert(MM.ledger().holds() && "manager exceeded its compaction budget");
  // The program's own contract.
  assert(MM.heap().stats().LiveWords <= M && "live space exceeds M");
}
