//===- driver/EventLog.cpp - Typed execution event stream ----------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/EventLog.h"

#include <cassert>
#include <map>

using namespace pcb;

std::vector<TraceOp> EventLog::toTrace() const {
  std::vector<TraceOp> Trace;
  // The trace addresses objects by allocation ordinal; map heap ids to
  // the ordinal their Alloc event got.
  std::map<ObjectId, uint64_t> Ordinal;
  uint64_t NextOrdinal = 0;
  for (const HeapEvent &E : Events) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc:
      Ordinal[E.Id] = NextOrdinal++;
      Trace.push_back(TraceOp::alloc(E.Size));
      break;
    case HeapEvent::Kind::Free: {
      auto It = Ordinal.find(E.Id);
      assert(It != Ordinal.end() && "free of an unlogged object");
      Trace.push_back(TraceOp::release(It->second));
      break;
    }
    case HeapEvent::Kind::Move:
    case HeapEvent::Kind::StepEnd:
      break; // manager decisions / markers: not program behaviour
    }
  }
  return Trace;
}
