//===- driver/EventLog.h - Recorded execution event stream ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only log of HeapEvents recorded during an execution. The
/// log is an independent record — the auditors in driver/Auditors.h
/// replay it to re-derive the footprint, live volume and compaction
/// spend, cross-checking the heap's own statistics; and a log converts
/// into a trace so any execution's allocation behaviour can be re-run
/// against a different manager (TraceReplayProgram).
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_DRIVER_EVENTLOG_H
#define PCBOUND_DRIVER_EVENTLOG_H

#include "adversary/SyntheticWorkloads.h"
#include "heap/HeapEvent.h"

#include <cstdint>
#include <vector>

namespace pcb {

/// An append-only event log.
class EventLog {
public:
  void record(const HeapEvent &E) { Events.push_back(E); }

  const std::vector<HeapEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  void clear() { Events.clear(); }

  /// Converts the log's allocation/free sequence into a trace that
  /// TraceReplayProgram can re-run against any manager (moves are
  /// dropped: they were the *manager's* decisions, not the program's).
  std::vector<TraceOp> toTrace() const;

private:
  std::vector<HeapEvent> Events;
};

} // namespace pcb

#endif // PCBOUND_DRIVER_EVENTLOG_H
