//===- driver/TraceIO.cpp - Text serialization of event logs -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/TraceIO.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace pcb;

void pcb::writeEventLog(std::ostream &OS, const EventLog &Log) {
  for (const HeapEvent &E : Log.events()) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc:
      OS << "A " << E.Id << ' ' << E.Address << ' ' << E.Size << '\n';
      break;
    case HeapEvent::Kind::Free:
      OS << "F " << E.Id << ' ' << E.Address << ' ' << E.Size << '\n';
      break;
    case HeapEvent::Kind::Move:
      OS << "M " << E.Id << ' ' << E.From << ' ' << E.Address << ' '
         << E.Size << '\n';
      break;
    case HeapEvent::Kind::StepEnd:
      OS << "S\n";
      break;
    }
  }
}

bool pcb::readEventLog(std::istream &IS, EventLog &Log,
                       std::string *Error) {
  Log.clear();
  uint64_t LineNo = 0;
  auto Fail = [&](const std::string &Reason) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Reason;
    Log.clear();
    return false;
  };
  std::string Line;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    char Tag = 0;
    LS >> Tag;
    ObjectId Id;
    Addr A, B;
    uint64_t Size;
    switch (Tag) {
    case 'A':
      if (!(LS >> Id >> A >> Size))
        return Fail("truncated or malformed allocation record");
      Log.record(HeapEvent::alloc(Id, A, Size));
      break;
    case 'F':
      if (!(LS >> Id >> A >> Size))
        return Fail("truncated or malformed free record");
      Log.record(HeapEvent::release(Id, A, Size));
      break;
    case 'M':
      if (!(LS >> Id >> A >> B >> Size))
        return Fail("truncated or malformed move record");
      Log.record(HeapEvent::move(Id, A, B, Size));
      break;
    case 'S':
      Log.record(HeapEvent::stepEnd());
      break;
    default:
      return Fail(std::string("unknown record type '") + Tag + "'");
    }
    // Trailing garbage on a line is a parse error too.
    std::string Rest;
    if (LS >> Rest)
      return Fail("trailing characters '" + Rest + "'");
  }
  return true;
}
