//===- driver/TraceIO.cpp - Text serialization of event logs -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/TraceIO.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace pcb;

void pcb::writeEventLog(std::ostream &OS, const EventLog &Log) {
  for (const HeapEvent &E : Log.events()) {
    switch (E.Event) {
    case HeapEvent::Kind::Alloc:
      OS << "A " << E.Id << ' ' << E.Address << ' ' << E.Size << '\n';
      break;
    case HeapEvent::Kind::Free:
      OS << "F " << E.Id << ' ' << E.Address << ' ' << E.Size << '\n';
      break;
    case HeapEvent::Kind::Move:
      OS << "M " << E.Id << ' ' << E.From << ' ' << E.Address << ' '
         << E.Size << '\n';
      break;
    case HeapEvent::Kind::StepEnd:
      OS << "S\n";
      break;
    }
  }
}

bool pcb::readEventLog(std::istream &IS, EventLog &Log) {
  Log.clear();
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    char Tag = 0;
    LS >> Tag;
    ObjectId Id;
    Addr A, B;
    uint64_t Size;
    switch (Tag) {
    case 'A':
      if (!(LS >> Id >> A >> Size)) {
        Log.clear();
        return false;
      }
      Log.record(HeapEvent::alloc(Id, A, Size));
      break;
    case 'F':
      if (!(LS >> Id >> A >> Size)) {
        Log.clear();
        return false;
      }
      Log.record(HeapEvent::release(Id, A, Size));
      break;
    case 'M':
      if (!(LS >> Id >> A >> B >> Size)) {
        Log.clear();
        return false;
      }
      Log.record(HeapEvent::move(Id, A, B, Size));
      break;
    case 'S':
      Log.record(HeapEvent::stepEnd());
      break;
    default:
      Log.clear();
      return false;
    }
    // Trailing garbage on a line is a parse error too.
    std::string Rest;
    if (LS >> Rest) {
      Log.clear();
      return false;
    }
  }
  return true;
}
