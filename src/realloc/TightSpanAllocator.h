//===- realloc/TightSpanAllocator.h - Jin-style repacking -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-level reduction of Jin's "Memory Reallocation with
/// Polylogarithmic Overhead" scheme, with identical cost accounting.
/// The allocator tracks the top of its span (the highest live end since
/// the last complete repack) and repacks the whole prefix — a sliding
/// compaction to address 0 — whenever dead words inside the span exceed
/// an epsilon fraction of the live words (epsilon = 1/2 here). Each
/// repack moves at most the live size, and the trigger guarantees at
/// least live/2 words were freed since the span was last tight, so
/// moved <= 2 * freed <= 2 * allocated on every prefix: overhead bound
/// 2 (= 1/epsilon). Jin's full construction recurses this idea over
/// log n levels to get polylog overhead *and* tight footprint; one
/// level keeps the amortization honest at the cost of a constant bound.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_TIGHTSPANALLOCATOR_H
#define PCBOUND_REALLOC_TIGHTSPANALLOCATOR_H

#include "realloc/ReallocManager.h"

namespace pcb {

class TightSpanAllocator : public ReallocManager {
public:
  explicit TightSpanAllocator(Heap &H)
      : ReallocManager(H, /*OverheadBound=*/2.0) {}

  std::string name() const override { return "realloc-jin"; }

  /// Repack passes started so far (for tests and bench reporting).
  uint64_t rebuilds() const { return NumRebuilds; }

  /// The current span top: every live word lies below this address.
  Addr spanTop() const { return Top; }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreed(ObjectId Id, Addr From, uint64_t Size) override;

private:
  void maybeRebuild();
  uint64_t rebuildPass();

  // Highest live end since the last complete repack; dead-inside-span
  // is Top - LiveWords.
  Addr Top = 0;
  // Guards against re-entry: a program that frees moved objects (PF)
  // re-enters onFreed from inside the pass.
  bool InRebuild = false;
  uint64_t NumRebuilds = 0;
};

} // namespace pcb

#endif // PCBOUND_REALLOC_TIGHTSPANALLOCATOR_H
