//===- realloc/UpdateProgram.h - Insert/delete adversaries ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reallocation family's adversary programs: pure insert/delete
/// sequences in the update model of Bender et al. ("Cost-Oblivious
/// Storage Reallocation") and Jin ("Memory Reallocation with
/// Polylogarithmic Overhead"). Unlike PF, an UpdateProgram does not
/// free objects when they move (onObjectMoved returns false — the
/// update model charges the *algorithm* for moves, the adversary only
/// chooses the update sequence). The shapes:
///
///  - FillDrain: fill to target occupancy, then drain FIFO — the
///    sawtooth that maximizes a repacking scheme's dead-space trigger.
///  - Alternating: Bender et al.'s staircase — free the lowest-placed
///    object, reallocate one word larger, so the vacated hole can never
///    fit the replacement and first-fit creep forces movement.
///  - Comb: the Cohen–Petrank comb re-aimed at reallocation — lay down
///    teeth of size s, free alternate teeth, demand 2s objects, double.
///  - SizeProfile: Jin-style size-profile stressor — the popular size
///    class sweeps 2^0, 2^1, ..., with 90% of each phase dying when the
///    next begins, churning every bucket of a size-classed scheme.
///  - Mix: seeded rotation through the four shapes in segments.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_UPDATEPROGRAM_H
#define PCBOUND_REALLOC_UPDATEPROGRAM_H

#include "adversary/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcb {

class UpdateProgram : public Program {
public:
  enum class Shape { FillDrain, Alternating, Comb, SizeProfile, Mix };

  struct Options {
    uint64_t Steps = 96;
    /// Largest object: 2^MaxLogSize words.
    unsigned MaxLogSize = 8;
    /// Target live fraction of M for the filling shapes.
    double TargetOccupancy = 0.85;
    uint64_t Seed = 1;
    Shape S = Shape::Mix;
  };

  UpdateProgram(uint64_t M, const Options &O)
      : M(M), Opts(O), Rand(O.Seed) {}

  bool step(MutatorContext &Ctx) override;
  std::string name() const override;

  /// The shape a "update-<suffix>" program name denotes.
  static const char *shapeName(Shape S);

private:
  // Allocates min(Size, headroom) words (never zero); returns false
  // when there is no headroom at all.
  bool tryAlloc(MutatorContext &Ctx, uint64_t Size);
  void freeAt(MutatorContext &Ctx, size_t Index);
  // One unit of work for a concrete shape (Mix delegates here).
  void stepShape(MutatorContext &Ctx, Shape S);

  void stepFillDrain(MutatorContext &Ctx);
  void stepAlternating(MutatorContext &Ctx);
  void stepComb(MutatorContext &Ctx);
  void stepSizeProfile(MutatorContext &Ctx);

  uint64_t M;
  Options Opts;
  Rng Rand;
  uint64_t StepsDone = 0;
  std::vector<ObjectId> Mine;

  // FillDrain
  bool Draining = false;
  // Comb
  unsigned CombLog = 0;
  unsigned CombPhase = 0;
  // SizeProfile
  unsigned ProfilePhase = 0;
  std::vector<ObjectId> PrevPhase;
  // Mix
  Shape Current = Shape::FillDrain;
};

} // namespace pcb

#endif // PCBOUND_REALLOC_UPDATEPROGRAM_H
