//===- realloc/ReallocationLedger.h - Overhead accounting -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reallocation family's cost ledger. Where CompactionLedger meters
/// moves against a per-call quota of the live size (the c-partial
/// budget), this ledger meters them against the *cumulative allocation
/// volume*: the cost measure of Jin ("Memory Reallocation with
/// Polylogarithmic Overhead") and Bender et al. ("Cost-Oblivious
/// Storage Reallocation") is total words moved per word allocated, on
/// every prefix of the update sequence. The ledger keeps its own
/// counters rather than deriving them from HeapStats so the fuzzer's
/// ledger-reconcile invariant has an independent witness to check the
/// heap's move accounting against.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_REALLOCATIONLEDGER_H
#define PCBOUND_REALLOC_REALLOCATIONLEDGER_H

#include <algorithm>
#include <cstdint>
#include <limits>

namespace pcb {

class ReallocationLedger {
public:
  /// \p Bound is the declared overhead bound: on every prefix, moved
  /// words stay at or below Bound * allocated words. Bound <= 0 means
  /// unlimited (no enforcement, ratios still tracked).
  explicit ReallocationLedger(double Bound) : Bound(Bound) {}

  bool isUnlimited() const { return Bound <= 0.0; }
  double bound() const {
    return isUnlimited() ? std::numeric_limits<double>::infinity() : Bound;
  }

  uint64_t allocatedWords() const { return AllocVolume; }
  uint64_t movedWords() const { return MoveCost; }

  /// Records \p Words of fresh allocation volume (placements only, not
  /// the re-placement half of a move).
  void noteAllocation(uint64_t Words) { AllocVolume += Words; }

  /// True when a move of \p Words would keep the prefix within the
  /// bound. Like CompactionLedger::canMove this is all-or-nothing.
  bool canCharge(uint64_t Words) const {
    if (isUnlimited())
      return true;
    return double(MoveCost + Words) <= Bound * double(AllocVolume) + Slack;
  }

  /// Charges a committed move of \p Words and folds the new prefix into
  /// the running worst-prefix ratio.
  void chargeMove(uint64_t Words) {
    MoveCost += Words;
    MaxPrefix = std::max(MaxPrefix, overheadRatio());
  }

  /// Moved words per allocated word on the prefix seen so far (0 before
  /// the first allocation).
  double overheadRatio() const {
    return AllocVolume == 0 ? 0.0 : double(MoveCost) / double(AllocVolume);
  }

  /// The worst overhead ratio over every prefix at which a move
  /// committed — the quantity the papers bound.
  double maxPrefixRatio() const { return MaxPrefix; }

  /// True when every prefix so far respected the bound.
  bool holds() const { return isUnlimited() || MaxPrefix <= Bound + Slack; }

private:
  // Absorbs floating-point rounding at exact-equality boundaries; the
  // counters themselves are exact integers.
  static constexpr double Slack = 1e-9;

  double Bound;
  uint64_t AllocVolume = 0;
  uint64_t MoveCost = 0;
  double MaxPrefix = 0.0;
};

} // namespace pcb

#endif // PCBOUND_REALLOC_REALLOCATIONLEDGER_H
