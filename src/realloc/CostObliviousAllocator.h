//===- realloc/CostObliviousAllocator.h - Bucketed backfill -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cost-oblivious bucketed reallocation scheme after Bender et al.,
/// "Cost-Oblivious Storage Reallocation" (PODS 2014). Objects are
/// indexed by exact size class; when an object dies, the
/// highest-addressed class-mate above the hole is slid down into it (a
/// perfect fit, so no search and no new fragmentation within the
/// class). Every move is funded by the free that opened the hole:
/// moved words never exceed freed words, and freed words never exceed
/// allocated words, so the overhead ratio is bounded by 1 on every
/// prefix — the ledger enforces exactly that.
///
/// "Cost-oblivious" is Bender et al.'s sense: the policy never looks at
/// the ledger to decide *what* to move — the same backfill fires
/// whatever the charge history — so the bound holds against adversaries
/// that choose sizes after seeing the algorithm's moves.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_COSTOBLIVIOUSALLOCATOR_H
#define PCBOUND_REALLOC_COSTOBLIVIOUSALLOCATOR_H

#include "realloc/ReallocManager.h"

#include <map>

namespace pcb {

class CostObliviousAllocator : public ReallocManager {
public:
  explicit CostObliviousAllocator(Heap &H)
      : ReallocManager(H, /*OverheadBound=*/1.0) {}

  std::string name() const override { return "realloc-bucket"; }

  /// Backfill moves committed so far (for tests and bench reporting).
  uint64_t backfills() const { return NumBackfills; }

protected:
  Addr placeFor(uint64_t Size) override;
  void onPlaced(ObjectId Id) override;
  void onFreeing(ObjectId Id) override;
  void onFreed(ObjectId Id, Addr From, uint64_t Size) override;

private:
  // Exact-size classes, each ordered by address. Exactness is what
  // makes backfill a perfect fit; power-of-two rounding (as in the
  // paper's bucket hierarchy) would let a larger class-mate fail to fit
  // the hole.
  std::map<uint64_t, std::map<Addr, ObjectId>> Classes;
  uint64_t NumBackfills = 0;
  // Re-entry depth of onFreed (PF cascades); only the outermost frame
  // owns the mm.realloc profiler section.
  unsigned CascadeDepth = 0;
};

} // namespace pcb

#endif // PCBOUND_REALLOC_COSTOBLIVIOUSALLOCATOR_H
