//===- realloc/UpdateProgram.cpp - Insert/delete adversaries -------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "realloc/UpdateProgram.h"

#include <algorithm>
#include <cassert>

using namespace pcb;

const char *UpdateProgram::shapeName(Shape S) {
  switch (S) {
  case Shape::FillDrain:
    return "fill-drain";
  case Shape::Alternating:
    return "alternating";
  case Shape::Comb:
    return "comb";
  case Shape::SizeProfile:
    return "size-profile";
  case Shape::Mix:
    return "mix";
  }
  return "?";
}

std::string UpdateProgram::name() const {
  return std::string("update-") + shapeName(Opts.S);
}

bool UpdateProgram::tryAlloc(MutatorContext &Ctx, uint64_t Size) {
  uint64_t Room = Ctx.headroom();
  if (Room == 0)
    return false;
  Mine.push_back(Ctx.allocate(std::max<uint64_t>(1, std::min(Size, Room))));
  return true;
}

void UpdateProgram::freeAt(MutatorContext &Ctx, size_t Index) {
  assert(Index < Mine.size());
  Ctx.free(Mine[Index]);
  Mine.erase(Mine.begin() + Index);
}

bool UpdateProgram::step(MutatorContext &Ctx) {
  if (StepsDone >= Opts.Steps)
    return false;
  Shape S = Opts.S;
  if (S == Shape::Mix) {
    // Rotate to a fresh seeded shape every 16 steps, keeping whatever
    // live set the previous segment built — the hand-offs are part of
    // the stress.
    if (StepsDone % 16 == 0) {
      switch (Rand.nextBelow(4)) {
      case 0:
        Current = Shape::FillDrain;
        break;
      case 1:
        Current = Shape::Alternating;
        break;
      case 2:
        Current = Shape::Comb;
        break;
      default:
        Current = Shape::SizeProfile;
        break;
      }
    }
    S = Current;
  }
  stepShape(Ctx, S);
  ++StepsDone;
  return StepsDone < Opts.Steps;
}

void UpdateProgram::stepShape(MutatorContext &Ctx, Shape S) {
  switch (S) {
  case Shape::FillDrain:
    stepFillDrain(Ctx);
    break;
  case Shape::Alternating:
    stepAlternating(Ctx);
    break;
  case Shape::Comb:
    stepComb(Ctx);
    break;
  case Shape::SizeProfile:
    stepSizeProfile(Ctx);
    break;
  case Shape::Mix:
    break; // resolved by the caller
  }
}

void UpdateProgram::stepFillDrain(MutatorContext &Ctx) {
  uint64_t Target = uint64_t(double(M) * Opts.TargetOccupancy);
  if (Draining) {
    // Drain FIFO: the oldest objects sit lowest, so their departure
    // opens dead space at the bottom of the span.
    for (unsigned I = 0; I != 32 && !Mine.empty(); ++I)
      freeAt(Ctx, 0);
    if (Mine.empty())
      Draining = false;
    return;
  }
  for (unsigned I = 0; I != 32; ++I) {
    if (Ctx.heap().stats().LiveWords >= Target ||
        !tryAlloc(Ctx, uint64_t(1) << Rand.nextBelow(Opts.MaxLogSize + 1)))
      break;
  }
  if (Ctx.heap().stats().LiveWords >= Target)
    Draining = true;
}

void UpdateProgram::stepAlternating(MutatorContext &Ctx) {
  // Warm up a pool before the staircase has anything to climb.
  if (Mine.size() < 8) {
    tryAlloc(Ctx, uint64_t(1) << Rand.nextBelow(Opts.MaxLogSize + 1));
    return;
  }
  // Free the lowest-placed object, then ask for one word more than it
  // held: the vacated hole can never fit the replacement, so first-fit
  // placement creeps upward and only movement can reclaim the bottom.
  size_t Lowest = 0;
  for (size_t I = 1; I != Mine.size(); ++I)
    if (Ctx.heap().object(Mine[I]).Address <
        Ctx.heap().object(Mine[Lowest]).Address)
      Lowest = I;
  uint64_t Size = Ctx.heap().object(Mine[Lowest]).Size;
  freeAt(Ctx, Lowest);
  uint64_t Cap = uint64_t(1) << Opts.MaxLogSize;
  tryAlloc(Ctx, std::min(Size + 1, Cap));
}

void UpdateProgram::stepComb(MutatorContext &Ctx) {
  const unsigned Teeth = 16;
  uint64_t S = uint64_t(1) << CombLog;
  switch (CombPhase) {
  case 0: // lay down the comb
    for (unsigned I = 0; I != 2 * Teeth; ++I)
      if (!tryAlloc(Ctx, S))
        break;
    CombPhase = 1;
    break;
  case 1: { // free alternate teeth (every other one of the last row)
    size_t Row = std::min<size_t>(Mine.size(), 2 * Teeth);
    size_t Base = Mine.size() - Row;
    // Walk backwards so the erase indices stay valid.
    for (size_t I = Row; I-- > 0;)
      if (I % 2 == 1)
        freeAt(Ctx, Base + I);
    CombPhase = 2;
    break;
  }
  case 2: // demand doubled teeth that no comb gap can hold
    for (unsigned I = 0; I != Teeth; ++I)
      if (!tryAlloc(Ctx, 2 * S))
        break;
    CombPhase = 0;
    CombLog = (CombLog + 1) % std::max(1u, Opts.MaxLogSize);
    // Clear the board for the next, larger comb.
    while (!Mine.empty())
      freeAt(Ctx, Mine.size() - 1);
    break;
  }
}

void UpdateProgram::stepSizeProfile(MutatorContext &Ctx) {
  // Advance the popular size class every 4 steps; 90% of the previous
  // phase's objects die, 10% survive as long-lived fragmentation seeds.
  if (StepsDone % 4 == 0) {
    std::vector<ObjectId> Survivors;
    for (size_t I = 0; I != PrevPhase.size(); ++I) {
      ObjectId Id = PrevPhase[I];
      auto It = std::find(Mine.begin(), Mine.end(), Id);
      if (It == Mine.end())
        continue;
      if (Rand.nextBool(0.1)) {
        Survivors.push_back(Id);
        continue;
      }
      Mine.erase(It);
      Ctx.free(Id);
    }
    PrevPhase = std::move(Survivors);
    ++ProfilePhase;
  }
  uint64_t Size = uint64_t(1) << (ProfilePhase % (Opts.MaxLogSize + 1));
  uint64_t Target = uint64_t(double(M) * Opts.TargetOccupancy);
  for (unsigned I = 0; I != 16; ++I) {
    if (Ctx.heap().stats().LiveWords >= Target || !tryAlloc(Ctx, Size))
      break;
    PrevPhase.push_back(Mine.back());
  }
}
