//===- realloc/NeverMoveAllocator.h - Zero-overhead baseline ----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reallocation family's lower envelope: first-fit placement and no
/// moves, ever. Its overhead ratio is identically zero — the price is
/// footprint, which fragments freely. Benches plot the other schemes'
/// overhead curves against this floor and their footprints against its
/// ceiling.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_NEVERMOVEALLOCATOR_H
#define PCBOUND_REALLOC_NEVERMOVEALLOCATOR_H

#include "realloc/ReallocManager.h"

namespace pcb {

class NeverMoveAllocator : public ReallocManager {
public:
  explicit NeverMoveAllocator(Heap &H)
      : ReallocManager(H, /*OverheadBound=*/-1.0) {}

  std::string name() const override { return "realloc-never"; }

  // The ledger is unlimited (nothing ever charges it), but the declared
  // bound is exact: zero moved words per allocated word.
  double overheadBound() const override { return 0.0; }

protected:
  Addr placeFor(uint64_t Size) override {
    return heap().freeSpace().firstFit(Size);
  }
};

} // namespace pcb

#endif // PCBOUND_REALLOC_NEVERMOVEALLOCATOR_H
