//===- realloc/ReallocManager.h - Reallocation-family base ------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base class for the reallocation problem family (DESIGN.md §17). A
/// reallocation manager plays the sibling game to c-partial compaction:
/// it may move objects whenever it likes, but its score is the overhead
/// ratio — cumulative words moved per word allocated — which its
/// declared bound must dominate on every prefix. The base class routes
/// every move through a ReallocationLedger so the bound is *enforced*,
/// not merely claimed: an algorithm whose amortization argument is
/// wrong has its moves denied rather than silently exceeding the bound,
/// and the fuzzer's overhead-history invariant stays a theorem.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_REALLOC_REALLOCMANAGER_H
#define PCBOUND_REALLOC_REALLOCMANAGER_H

#include "mm/MemoryManager.h"
#include "realloc/ReallocationLedger.h"

namespace pcb {

class ReallocManager : public MemoryManager {
public:
  /// \p OverheadBound is the scheme's declared bound; <= 0 means
  /// unlimited. The compaction ledger is constructed unlimited (C = 0):
  /// this family's budget lives in the reallocation ledger instead.
  ReallocManager(Heap &H, double OverheadBound)
      : MemoryManager(H, /*C=*/0.0), RLedger(OverheadBound) {}

  const ReallocationLedger *reallocationLedger() const override {
    return &RLedger;
  }

  double overheadBound() const override { return RLedger.bound(); }

protected:
  /// Subclass overrides must call through so allocation volume is noted
  /// exactly once per placement (moves re-enter onPlaced but are not
  /// fresh volume, so they are excluded here).
  void onPlaced(ObjectId Id) override {
    if (!InMove)
      RLedger.noteAllocation(heap().object(Id).Size);
  }

  /// The family's move primitive: moves \p Id to \p To iff the ledger's
  /// bound covers the charge (and any installed spend gate approves,
  /// via the base tryMoveObject). Returns false with no state change
  /// otherwise, so a scheme throttled by a budget controller degrades
  /// to fewer moves instead of a violated bound.
  bool reallocMove(ObjectId Id, Addr To) {
    uint64_t Size = heap().object(Id).Size;
    if (!RLedger.canCharge(Size))
      return false;
    bool WasInMove = InMove;
    InMove = true;
    bool Moved = tryMoveObject(Id, To);
    InMove = WasInMove;
    if (Moved)
      RLedger.chargeMove(Size);
    return Moved;
  }

private:
  ReallocationLedger RLedger;
  // True while a reallocMove is in flight: distinguishes the
  // re-placement half of a move from a fresh allocation in onPlaced.
  bool InMove = false;
};

} // namespace pcb

#endif // PCBOUND_REALLOC_REALLOCMANAGER_H
