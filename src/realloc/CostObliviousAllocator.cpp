//===- realloc/CostObliviousAllocator.cpp - Bucketed backfill ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "realloc/CostObliviousAllocator.h"

#include "obs/Profiler.h"

#include <cassert>
#include <optional>

using namespace pcb;

Addr CostObliviousAllocator::placeFor(uint64_t Size) {
  return heap().freeSpace().firstFit(Size);
}

void CostObliviousAllocator::onPlaced(ObjectId Id) {
  ReallocManager::onPlaced(Id);
  const Object &O = heap().object(Id);
  Classes[O.Size][O.Address] = Id;
}

void CostObliviousAllocator::onFreeing(ObjectId Id) {
  const Object &O = heap().object(Id);
  auto It = Classes.find(O.Size);
  assert(It != Classes.end() && "freeing an object missing from its class");
  It->second.erase(O.Address);
  if (It->second.empty())
    Classes.erase(It);
}

void CostObliviousAllocator::onFreed(ObjectId, Addr From, uint64_t Size) {
  // A program that frees moved objects (PF) re-enters here from inside
  // reallocMove; only the outermost frame times the cascade, or the
  // nested ScopedTimers would each re-count the whole remainder.
  struct DepthGuard {
    unsigned &D;
    explicit DepthGuard(unsigned &D) : D(D) { ++D; }
    ~DepthGuard() { --D; }
  } Guard(CascadeDepth);
  std::optional<ScopedTimer> Timer;
  if (CascadeDepth == 1)
    Timer.emplace(Profiler::SecRealloc);
  auto It = Classes.find(Size);
  if (It == Classes.end())
    return;
  // The highest-addressed class-mate strictly above the hole slides
  // down into it: addresses only ever decrease, so a program that frees
  // every moved object (PF) drives a cascade that removes one object
  // per link and terminates.
  auto Last = std::prev(It->second.end());
  if (Last->first <= From)
    return;
  Profiler::bump(Profiler::CtrReallocPasses);
  // Perfect fit and no overlap: the mover has the hole's exact size and
  // a strictly higher address, so its range starts at or past From+Size.
  if (reallocMove(Last->second, From))
    ++NumBackfills;
}
