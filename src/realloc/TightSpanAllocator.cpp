//===- realloc/TightSpanAllocator.cpp - Jin-style repacking --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "realloc/TightSpanAllocator.h"

#include "obs/Profiler.h"

#include <cassert>

using namespace pcb;

Addr TightSpanAllocator::placeFor(uint64_t Size) {
  return heap().freeSpace().firstFit(Size);
}

void TightSpanAllocator::onPlaced(ObjectId Id) {
  ReallocManager::onPlaced(Id);
  const Object &O = heap().object(Id);
  Top = std::max(Top, O.Address + O.Size);
}

void TightSpanAllocator::onFreed(ObjectId, Addr, uint64_t) {
  if (InRebuild)
    return;
  maybeRebuild();
}

void TightSpanAllocator::maybeRebuild() {
  // Loop because a program that frees moved objects (PF) can re-open
  // dead space during a pass; a pass that commits no move — everything
  // already packed, or the ledger/gate denying the first move — breaks
  // the loop, and the ledger bounds the total work in between.
  while (true) {
    uint64_t Live = heap().stats().LiveWords;
    if (Live == 0) {
      // Nothing to repack; the span collapses for free.
      Top = 0;
      return;
    }
    assert(Top >= Live && "live words above the tracked span top");
    uint64_t Dead = Top - Live;
    // Epsilon = 1/2: repack only once dead space exceeds live/2, which
    // guarantees the pass (cost <= Live) is funded by >= Live/2 words
    // freed since the span was last tight.
    if (2 * Dead <= Live)
      return;
    if (rebuildPass() == 0)
      return;
  }
}

uint64_t TightSpanAllocator::rebuildPass() {
  ScopedTimer Timer(Profiler::SecRealloc);
  Profiler::bump(Profiler::CtrReallocPasses);
  InRebuild = true;
  ++NumRebuilds;
  uint64_t Moved = 0;
  bool Complete = true;
  // Walk live objects from the first hole upward, sliding each down to
  // the packed frontier (the same lazy walk as SlidingCompactor: the
  // heap allows overlapping downward moves, and re-fetching the next
  // live object by address tolerates frees from the move callback).
  Addr Target = heap().freeSpace().firstFit(1);
  for (ObjectId Id = heap().firstLiveAt(Target); Id != InvalidObjectId;) {
    const Object &O = heap().object(Id);
    Addr After = O.Address + 1;
    if (O.Address != Target) {
      assert(Target < O.Address && "repacking would move an object upward");
      if (!reallocMove(Id, Target)) {
        Complete = false;
        break;
      }
      ++Moved;
    }
    if (heap().isLive(Id))
      Target += O.Size;
    Id = heap().firstLiveAt(After);
  }
  // Only a complete pass proves every live word lies below the packed
  // frontier, so only then may the span tighten.
  if (Complete)
    Top = Target;
  InRebuild = false;
  return Moved;
}
