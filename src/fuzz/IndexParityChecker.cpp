//===- fuzz/IndexParityChecker.cpp - Live vs reference free index --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/IndexParityChecker.h"

#include <string>

using namespace pcb;

void IndexParityChecker::observe(const HeapEvent &E) {
  switch (E.Event) {
  case HeapEvent::Kind::Alloc:
    Ref.reserve(E.Address, E.Size);
    break;
  case HeapEvent::Kind::Free:
    Ref.release(E.Address, E.Size);
    break;
  case HeapEvent::Kind::Move:
    // Mirror exactly how Heap::move mutates the free index: the source
    // is released before the target is reserved, which is what makes
    // overlapping slides legal.
    Ref.release(E.From, E.Size);
    Ref.reserve(E.Address, E.Size);
    break;
  case HeapEvent::Kind::StepEnd:
    break;
  }
}

void IndexParityChecker::checkStep(const std::string &Policy, uint64_t Step,
                                   std::vector<Violation> &Out) const {
  const FreeSpaceIndex &Live = H.freeSpace();
  auto Report = [&](const std::string &Detail) {
    Out.push_back(Violation{"index-parity", Policy, Step, Detail});
  };

  // Structural parity: same blocks, same order.
  if (Live.numBlocks() != Ref.numBlocks()) {
    Report("live index has " + std::to_string(Live.numBlocks()) +
           " blocks but the reference has " +
           std::to_string(Ref.numBlocks()));
    return; // the walk below would only repeat the same divergence
  }
  auto LIt = Live.begin();
  for (const auto &[Start, End] : Ref) {
    auto [LStart, LEnd] = *LIt;
    if (LStart != Start || LEnd != End) {
      Report("block [" + std::to_string(LStart) + ", " +
             std::to_string(LEnd) + ") in the live index but [" +
             std::to_string(Start) + ", " + std::to_string(End) +
             ") in the reference");
      return;
    }
    ++LIt;
  }

  // Query parity at the sizes the policies ask for (powers of two are
  // the adversarial workloads' vocabulary) and the aggregates the
  // telemetry samples at the high-water mark.
  Addr Hwm = H.stats().HighWaterMark;
  auto Expect = [&](const char *What, uint64_t Arg, uint64_t Got,
                    uint64_t Want) {
    if (Got != Want)
      Report(std::string(What) + "(" + std::to_string(Arg) + ") = " +
             std::to_string(Got) + " but the reference says " +
             std::to_string(Want));
  };
  for (uint64_t Size = 1; Size <= 1024; Size *= 4) {
    Expect("firstFit", Size, Live.firstFit(Size), Ref.firstFit(Size));
    Expect("bestFit", Size, Live.bestFit(Size), Ref.bestFit(Size));
    Expect("firstFitFrom(hwm/2)", Size, Live.firstFitFrom(Hwm / 2, Size),
           Ref.firstFitFrom(Hwm / 2, Size));
    Expect("firstFitAligned(.,8)", Size, Live.firstFitAligned(Size, 8),
           Ref.firstFitAligned(Size, 8));
  }
  if (Hwm != 0) {
    Expect("worstFitBelow(1,hwm)", Hwm, Live.worstFitBelow(1, Hwm),
           Ref.worstFitBelow(1, Hwm));
    Expect("numBlocksBelow", Hwm, Live.numBlocksBelow(Hwm),
           Ref.numBlocksBelow(Hwm));
    Expect("largestBlockBelow", Hwm, Live.largestBlockBelow(Hwm),
           Ref.largestBlockBelow(Hwm));
    Expect("freeWordsBelow", Hwm, Live.freeWordsBelow(Hwm),
           Ref.freeWordsBelow(Hwm));
  }
}
