//===- fuzz/HeapParityChecker.h - Live vs reference heap --------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A policy-invisible differential checker: mirrors every heap mutation
/// into the preserved pre-bitboard ReferenceHeap and, at each step
/// boundary, compares the live bitboard Heap against it — the whole
/// substrate, not just the free index: free blocks block-for-block, the
/// placement and aggregate queries the managers actually issue, the
/// object table, the statistics, and the occupancy/start bitboards. The
/// managers never see the reference heap, so a parity violation always
/// means the bitboard substrate (or the mirroring contract) drifted,
/// never that a policy behaved differently.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_FUZZ_HEAPPARITYCHECKER_H
#define PCBOUND_FUZZ_HEAPPARITYCHECKER_H

#include "fuzz/InvariantOracle.h"
#include "heap/Heap.h"
#include "heap/HeapEvent.h"
#include "testsupport/ReferenceHeap.h"

#include <string>
#include <vector>

namespace pcb {

/// Mirrors heap events into a reference heap and checks the live heap
/// against it at step boundaries.
class HeapParityChecker {
public:
  explicit HeapParityChecker(const Heap &H) : H(H) {}

  /// Mirrors one heap mutation. Must be fed the *uncorrupted* event
  /// stream (before any fault-injection tap): the mirror tracks the real
  /// heap, not the log.
  void observe(const HeapEvent &E);

  /// Compares the live heap against the mirror, appending any
  /// divergence to \p Out with Check = "heap-parity".
  void checkStep(const std::string &Policy, uint64_t Step,
                 std::vector<Violation> &Out) const;

private:
  const Heap &H;
  ReferenceHeap Ref;
};

} // namespace pcb

#endif // PCBOUND_FUZZ_HEAPPARITYCHECKER_H
