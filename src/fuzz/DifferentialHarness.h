//===- fuzz/DifferentialHarness.h - Cross-policy fuzz execution -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzz schedule through every manager policy and cross-checks
/// the results. Per policy, an InvariantOracle re-validates the heap and
/// the recorded event stream after every step. Across policies, the
/// program behaviour must be manager-independent: every run must report
/// identical allocation totals, free counts, live and peak-live words —
/// only the footprint (and moves) may differ. Policy-relative checks:
/// non-moving managers must never move, and the designated replay-check
/// policy must reproduce byte-identical statistics when run twice
/// (placement policies are deterministic functions of the schedule).
///
/// On failure the harness shrinks the schedule with delta debugging
/// (chunked op removal at halving granularity, then per-op removal, then
/// allocation-size halving) and can serialize the minimal failing run as
/// a TraceIO reproducer that `pcbound replay-trace` re-executes.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_FUZZ_DIFFERENTIALHARNESS_H
#define PCBOUND_FUZZ_DIFFERENTIALHARNESS_H

#include "driver/EventLog.h"
#include "fuzz/InvariantOracle.h"
#include "fuzz/WorkloadFuzzer.h"
#include "trace/BudgetController.h"

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pcb {

class Execution;

/// Outcome of one policy's execution of a schedule.
struct PolicyRunResult {
  std::string Policy;
  /// The effective compaction quota denominator (policies such as
  /// sliding-unlimited override the harness-wide C).
  double QuotaC = 0.0;
  HeapStats Stats;
  EventLog Log;
  std::vector<Violation> Violations;

  bool clean() const { return Violations.empty(); }
};

/// Everything one differential run produced.
struct DifferentialReport {
  std::vector<PolicyRunResult> Runs;
  /// Violations of cross-policy agreement (not attributable to a single
  /// run's oracle).
  std::vector<Violation> Cross;

  bool clean() const;
  /// Per-run and cross-policy violations, concatenated.
  std::vector<Violation> allViolations() const;
  /// The first run with violations, or nullptr when only cross-policy
  /// checks failed (or none did).
  const PolicyRunResult *firstFailing() const;
  /// One line per violation, for logs and test output.
  std::string summary() const;
};

/// Cross-policy execution of fuzz schedules, with minimization.
class DifferentialHarness {
public:
  struct Options {
    /// Policies to run; defaults to the whole factory family.
    std::vector<std::string> Policies;
    /// Compaction quota denominator handed to every manager.
    double C = 50.0;
    /// Budget controller gating every run's compaction spend (each run
    /// gets a private instance built from this spec). The default fixed
    /// trigger is byte-identical to an ungated run, so existing fuzz
    /// corpora keep their meaning; the cross-policy agreement invariants
    /// must hold under every controller.
    ControllerSpec Controller;
    /// Deep-check cadence of the per-run oracle.
    uint64_t DeepCheckEvery = 64;
    /// Policy run twice per schedule to confirm replay determinism;
    /// empty (or absent from Policies) disables the check.
    std::string ReplayCheckPolicy = "first-fit";
    /// Fault-injection port for the tests: invoked for every heap event
    /// before it is logged, may mutate the event, returns false to drop
    /// it. Corrupting the log this way must be caught by the oracle's
    /// audit checks — that is the planted-bug experiment.
    std::function<bool(HeapEvent &)> LogTap;
    /// Stop collecting per-run violations beyond this many (a broken
    /// substrate would otherwise report one per step).
    size_t MaxViolationsPerRun = 16;
    /// Cross-check the live bitboard heap against the preserved
    /// pre-bitboard ReferenceHeap on every step — free blocks, placement
    /// queries, object table, statistics, and occupancy/start masks (the
    /// 14th, policy-invisible checker: the managers never see the
    /// reference heap).
    bool HeapParity = true;
    /// Observation port: invoked with each per-policy Execution right
    /// after construction, before any step runs. Lets callers attach
    /// step observers (e.g. a TimelineSampler recording the heap state
    /// of a failing schedule) without the harness depending on the
    /// observability layer.
    std::function<void(Execution &, const std::string &Policy)> OnExecution;
  };

  DifferentialHarness();
  explicit DifferentialHarness(Options O);

  const Options &options() const { return Opts; }

  /// Runs \p S through every configured policy.
  DifferentialReport run(const FuzzSchedule &S) const;

  /// Delta-debugging minimization of a failing schedule: the smallest
  /// schedule found on which \p Fails still returns true. \p Fails must
  /// hold for \p S itself (asserted).
  FuzzSchedule
  shrink(const FuzzSchedule &S,
         const std::function<bool(const FuzzSchedule &)> &Fails) const;

  /// shrink() with the default predicate !run(S).clean().
  FuzzSchedule shrink(const FuzzSchedule &S) const;

  /// Serializes \p Failing (a run produced by run() on \p S) as a
  /// replayable reproducer: a `# pcbound-fuzz-repro` header naming the
  /// policy, quota, seed and pattern, followed by the recorded event
  /// trace in TraceIO format.
  static void writeReproducer(std::ostream &OS, const FuzzSchedule &S,
                              const PolicyRunResult &Failing);

private:
  PolicyRunResult runPolicy(const std::string &Policy,
                            const std::vector<TraceOp> &Trace,
                            uint64_t M) const;

  Options Opts;
};

} // namespace pcb

#endif // PCBOUND_FUZZ_DIFFERENTIALHARNESS_H
