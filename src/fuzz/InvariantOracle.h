//===- fuzz/InvariantOracle.h - Per-step invariant checking -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adversarial witness the fuzzer runs alongside every execution.
/// Where the Execution driver *asserts* its invariants (dying on breach),
/// the oracle *reports* them as Violation records, so the differential
/// harness can keep running, collect every failure, and hand the schedule
/// to the shrinker.
///
/// Checked after every step (cheap, O(1)):
///   * footprint >= live words (the heap never under-reports its size),
///   * the footprint (high-water mark) never shrinks,
///   * the c-partial ledger holds at the endpoint,
///   * overhead-ratio — cumulative moved words stay within the
///     manager's declared overheadBound() multiple of allocated words
///     (finite for c-partial managers and the reallocation family).
///
/// Checked every DeepCheckEvery steps and at the end (O(objects+events)):
///   * Heap::checkConsistency — live objects disjoint, free index the
///     exact complement, statistics match a recount,
///   * auditEvents over the recorded event stream reproduces the heap's
///     statistics exactly (the independent-witness property),
///   * auditBudgetHistory — the c-partial constraint held on *every*
///     prefix of the execution, not merely at the end,
///   * ledger-reconcile / overhead-history — for reallocation managers,
///     the ReallocationLedger's own counters must equal the heap's
///     cumulative move/allocation statistics end-to-end, and its
///     worst-prefix ratio must respect the bound.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_FUZZ_INVARIANTORACLE_H
#define PCBOUND_FUZZ_INVARIANTORACLE_H

#include "driver/EventLog.h"
#include "mm/MemoryManager.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcb {

/// One invariant breach found by the oracle.
struct Violation {
  /// Short check identifier, e.g. "audit-mismatch", "structural".
  std::string Check;
  /// Manager policy under which the breach occurred.
  std::string Policy;
  /// Step at which the breach was detected.
  uint64_t Step = 0;
  /// Human-readable diagnosis.
  std::string Detail;

  std::string describe() const;
};

/// Re-checks heap/manager/event-log agreement during an execution.
class InvariantOracle {
public:
  struct Options {
    /// Run the deep (audit-replay + structural) checks every this-many
    /// steps; the final check is always deep. 0 means endpoint-only.
    uint64_t DeepCheckEvery = 64;
  };

  InvariantOracle(const Heap &H, const MemoryManager &MM,
                  const EventLog &Log);
  InvariantOracle(const Heap &H, const MemoryManager &MM,
                  const EventLog &Log, Options O);

  /// Invoked after every execution step; appends any violations to
  /// \p Out and returns how many were added. Runs the deep checks when
  /// the step count hits the DeepCheckEvery cadence.
  size_t checkStep(uint64_t Step, std::vector<Violation> &Out);

  /// The full deep check (structural + audit replay + budget history).
  size_t checkDeep(uint64_t Step, std::vector<Violation> &Out);

private:
  size_t checkCheap(uint64_t Step, std::vector<Violation> &Out);
  Violation make(const std::string &Check, uint64_t Step,
                 const std::string &Detail) const;

  const Heap &H;
  const MemoryManager &MM;
  const EventLog &Log;
  Options Opts;
  uint64_t LastHighWaterMark = 0;
};

} // namespace pcb

#endif // PCBOUND_FUZZ_INVARIANTORACLE_H
