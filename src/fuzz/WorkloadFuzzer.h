//===- fuzz/WorkloadFuzzer.h - Random schedule generation -------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates seeded random allocate/free schedules for differential
/// fuzzing. A schedule is a list of FuzzOps: unlike TraceOp (which frees
/// by allocation ordinal), a FuzzOp free names its partner allocation by
/// *schedule position*, so any subset of a schedule remains well-formed —
/// frees whose partner was dropped simply vanish. That closure property
/// is what makes delta-debugging minimization straightforward.
///
/// Patterns cover the size and lifetime distributions that historically
/// break allocators: uniform churn with arbitrary (non-power-of-two)
/// sizes, bimodal small/large mixes, LIFO and FIFO lifetimes, a
/// fragmentation-adversarial comb (free every other small object, then
/// demand large ones), and schedules recorded from the SyntheticWorkloads
/// programs (RandomChurnProgram, MarkovPhaseProgram) so the fuzzer also
/// replays realistic phased behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_FUZZ_WORKLOADFUZZER_H
#define PCBOUND_FUZZ_WORKLOADFUZZER_H

#include "adversary/SyntheticWorkloads.h"
#include "support/Random.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pcb {

/// One operation of a fuzz schedule.
struct FuzzOp {
  enum class Kind : uint8_t { Alloc, Free };
  Kind Op = Kind::Alloc;
  uint64_t Size = 0;   ///< Alloc: words requested.
  size_t AllocPos = 0; ///< Free: schedule index of the partner Alloc.

  static FuzzOp alloc(uint64_t Size) {
    return FuzzOp{Kind::Alloc, Size, 0};
  }
  static FuzzOp release(size_t AllocPos) {
    return FuzzOp{Kind::Free, 0, AllocPos};
  }
};

/// A generated schedule plus the parameters it was generated under.
struct FuzzSchedule {
  uint64_t Seed = 0;
  std::string Pattern;
  std::vector<FuzzOp> Ops;

  size_t size() const { return Ops.size(); }

  /// Lowers the schedule — optionally restricted to the \p Keep subset of
  /// its operations — to the TraceOp list TraceReplayProgram consumes.
  /// Allocation ordinals are re-numbered densely; frees whose partner
  /// allocation is not kept are dropped.
  std::vector<TraceOp>
  materialize(const std::vector<bool> *Keep = nullptr) const;

  /// The compacted sub-schedule selected by \p Keep, with free partners
  /// re-pointed at the new positions (frees of dropped allocations are
  /// dropped too).
  FuzzSchedule subset(const std::vector<bool> &Keep) const;
};

/// Converts a plain trace into a schedule (the inverse of materialize),
/// so recorded executions can enter the shrinking pipeline. The trace
/// must be valid (validateTrace).
FuzzSchedule scheduleFromTrace(const std::vector<TraceOp> &Trace,
                               uint64_t Seed, const std::string &Pattern);

/// Seeded random schedule generator.
class WorkloadFuzzer {
public:
  enum class Pattern : uint8_t {
    Uniform,   ///< arbitrary sizes, memoryless frees
    Bimodal,   ///< many small objects, occasional huge ones
    StackLifo, ///< ramps allocated then freed newest-first
    QueueFifo, ///< sliding window freed oldest-first
    Comb,      ///< free every other small object, then demand large ones
    Churn,     ///< recorded RandomChurnProgram behaviour
    Phase,     ///< recorded MarkovPhaseProgram behaviour
    Mixed,     ///< random segments of the direct patterns above
    Trace,     ///< seeded windows of a recorded malloc trace
  };

  struct Options {
    uint64_t Seed = 1;
    /// Target schedule length (recorded patterns approximate it).
    uint64_t NumOps = 512;
    /// Cap on simultaneous live words the schedule may reach.
    uint64_t LiveBound = uint64_t(1) << 12;
    /// Largest object: 2^MaxLogSize words.
    unsigned MaxLogSize = 8;
    Pattern P = Pattern::Mixed;
    /// Pattern::Trace's source (required for it): a recorded trace in
    /// the ordinal-free TraceOp convention, shared so a corpus-sized
    /// trace is not copied per iteration. Each seed selects a different
    /// contiguous window of roughly NumOps operations; subset() closure
    /// keeps every window well-formed, and windows enter ddmin shrinking
    /// like any generated schedule.
    std::shared_ptr<const std::vector<TraceOp>> TraceOps;
  };

  explicit WorkloadFuzzer(const Options &O) : Opts(O) {}

  /// Generates the schedule determined by the options (pure function of
  /// them; calling twice yields the same schedule).
  FuzzSchedule generate() const;

  /// Every self-contained pattern, in a fixed order (used by `pcbound
  /// fuzz` to cycle patterns across iterations). Excludes Pattern::Trace,
  /// which needs an external trace to draw from.
  static const std::vector<Pattern> &allPatterns();
  static std::string patternName(Pattern P);

private:
  Options Opts;
};

} // namespace pcb

#endif // PCBOUND_FUZZ_WORKLOADFUZZER_H
