//===- fuzz/InvariantOracle.cpp - Per-step invariant checking ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/InvariantOracle.h"

#include "driver/Auditors.h"
#include "realloc/ReallocationLedger.h"

#include <cmath>

using namespace pcb;

std::string Violation::describe() const {
  return Policy + "/" + Check + " at step " + std::to_string(Step) + ": " +
         Detail;
}

InvariantOracle::InvariantOracle(const Heap &H, const MemoryManager &MM,
                                 const EventLog &Log)
    : InvariantOracle(H, MM, Log, Options()) {}

InvariantOracle::InvariantOracle(const Heap &H, const MemoryManager &MM,
                                 const EventLog &Log, Options O)
    : H(H), MM(MM), Log(Log), Opts(O) {}

Violation InvariantOracle::make(const std::string &Check, uint64_t Step,
                                const std::string &Detail) const {
  return Violation{Check, MM.name(), Step, Detail};
}

size_t InvariantOracle::checkCheap(uint64_t Step,
                                   std::vector<Violation> &Out) {
  size_t Before = Out.size();
  const HeapStats &S = H.stats();
  if (S.HighWaterMark < S.LiveWords)
    Out.push_back(make("footprint-below-live", Step,
                       "footprint " + std::to_string(S.HighWaterMark) +
                           " < live " + std::to_string(S.LiveWords)));
  if (S.HighWaterMark < LastHighWaterMark)
    Out.push_back(make("footprint-shrank", Step,
                       "high-water mark fell from " +
                           std::to_string(LastHighWaterMark) + " to " +
                           std::to_string(S.HighWaterMark)));
  LastHighWaterMark = S.HighWaterMark;
  if (!MM.ledger().holds())
    Out.push_back(make("budget-endpoint", Step,
                       "moved " + std::to_string(S.MovedWords) +
                           " words against a budget of " +
                           std::to_string(MM.ledger().budgetWords())));
  // The family-agnostic overhead invariant: cumulative moved words stay
  // within the manager's declared multiple of cumulative allocated
  // words (1/c for c-partial managers, the paper bound for the
  // reallocation family, 0 for never-move baselines).
  double Bound = MM.overheadBound();
  if (std::isfinite(Bound) &&
      double(S.MovedWords) > Bound * double(S.TotalAllocatedWords) + 1e-9)
    Out.push_back(make("overhead-ratio", Step,
                       "moved " + std::to_string(S.MovedWords) +
                           " words against " +
                           std::to_string(S.TotalAllocatedWords) +
                           " allocated at declared bound " +
                           std::to_string(Bound)));
  return Out.size() - Before;
}

size_t InvariantOracle::checkStep(uint64_t Step,
                                  std::vector<Violation> &Out) {
  size_t Added = checkCheap(Step, Out);
  if (Opts.DeepCheckEvery != 0 && Step % Opts.DeepCheckEvery == 0)
    Added += checkDeep(Step, Out);
  return Added;
}

size_t InvariantOracle::checkDeep(uint64_t Step,
                                  std::vector<Violation> &Out) {
  size_t Before = Out.size();
  checkCheap(Step, Out);

  std::string Why;
  if (!H.checkConsistency(&Why))
    Out.push_back(make("structural", Step, Why));

  const HeapStats &S = H.stats();
  AuditReport A = auditEvents(Log.events());
  if (!A.Consistent)
    Out.push_back(make("event-stream", Step,
                       "recorded events are internally inconsistent "
                       "(double free, overlap, or move of a dead object)"));
  else if (!A.matches(S)) {
    auto Diff = [](const char *Field, uint64_t Audited, uint64_t Stated) {
      return std::string(Field) + " audited=" + std::to_string(Audited) +
             " stats=" + std::to_string(Stated) + "; ";
    };
    std::string Detail;
    if (A.HighWaterMark != S.HighWaterMark)
      Detail += Diff("HighWaterMark", A.HighWaterMark, S.HighWaterMark);
    if (A.LiveWords != S.LiveWords)
      Detail += Diff("LiveWords", A.LiveWords, S.LiveWords);
    if (A.PeakLiveWords != S.PeakLiveWords)
      Detail += Diff("PeakLiveWords", A.PeakLiveWords, S.PeakLiveWords);
    if (A.TotalAllocatedWords != S.TotalAllocatedWords)
      Detail += Diff("TotalAllocatedWords", A.TotalAllocatedWords,
                     S.TotalAllocatedWords);
    if (A.MovedWords != S.MovedWords)
      Detail += Diff("MovedWords", A.MovedWords, S.MovedWords);
    if (A.NumAllocations != S.NumAllocations)
      Detail += Diff("NumAllocations", A.NumAllocations, S.NumAllocations);
    if (A.NumFrees != S.NumFrees)
      Detail += Diff("NumFrees", A.NumFrees, S.NumFrees);
    if (A.NumMoves != S.NumMoves)
      Detail += Diff("NumMoves", A.NumMoves, S.NumMoves);
    Out.push_back(make("audit-mismatch", Step, Detail));
  }

  if (!auditBudgetHistory(Log.events(), MM.ledger().quotaDenominator()))
    Out.push_back(make("budget-history", Step,
                       "a prefix of the execution moved more than "
                       "allocated/c words"));

  // End-to-end ledger reconciliation for the reallocation family: the
  // ledger keeps its own counters, so cumulative heap statistics are an
  // independent witness — a manager that moves behind its ledger's back
  // (or forgets to note volume) diverges here even if every per-step
  // ratio looks fine.
  if (const ReallocationLedger *RL = MM.reallocationLedger()) {
    if (RL->movedWords() != S.MovedWords ||
        RL->allocatedWords() != S.TotalAllocatedWords)
      Out.push_back(make(
          "ledger-reconcile", Step,
          "ledger moved=" + std::to_string(RL->movedWords()) + " allocated=" +
              std::to_string(RL->allocatedWords()) + " vs heap moved=" +
              std::to_string(S.MovedWords) + " allocated=" +
              std::to_string(S.TotalAllocatedWords)));
    if (!RL->holds())
      Out.push_back(make("overhead-history", Step,
                         "a prefix reached overhead ratio " +
                             std::to_string(RL->maxPrefixRatio()) +
                             " above the declared bound " +
                             std::to_string(RL->bound())));
  }
  return Out.size() - Before;
}
