//===- fuzz/InvariantOracle.cpp - Per-step invariant checking ------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/InvariantOracle.h"

#include "driver/Auditors.h"

using namespace pcb;

std::string Violation::describe() const {
  return Policy + "/" + Check + " at step " + std::to_string(Step) + ": " +
         Detail;
}

InvariantOracle::InvariantOracle(const Heap &H, const MemoryManager &MM,
                                 const EventLog &Log)
    : InvariantOracle(H, MM, Log, Options()) {}

InvariantOracle::InvariantOracle(const Heap &H, const MemoryManager &MM,
                                 const EventLog &Log, Options O)
    : H(H), MM(MM), Log(Log), Opts(O) {}

Violation InvariantOracle::make(const std::string &Check, uint64_t Step,
                                const std::string &Detail) const {
  return Violation{Check, MM.name(), Step, Detail};
}

size_t InvariantOracle::checkCheap(uint64_t Step,
                                   std::vector<Violation> &Out) {
  size_t Before = Out.size();
  const HeapStats &S = H.stats();
  if (S.HighWaterMark < S.LiveWords)
    Out.push_back(make("footprint-below-live", Step,
                       "footprint " + std::to_string(S.HighWaterMark) +
                           " < live " + std::to_string(S.LiveWords)));
  if (S.HighWaterMark < LastHighWaterMark)
    Out.push_back(make("footprint-shrank", Step,
                       "high-water mark fell from " +
                           std::to_string(LastHighWaterMark) + " to " +
                           std::to_string(S.HighWaterMark)));
  LastHighWaterMark = S.HighWaterMark;
  if (!MM.ledger().holds())
    Out.push_back(make("budget-endpoint", Step,
                       "moved " + std::to_string(S.MovedWords) +
                           " words against a budget of " +
                           std::to_string(MM.ledger().budgetWords())));
  return Out.size() - Before;
}

size_t InvariantOracle::checkStep(uint64_t Step,
                                  std::vector<Violation> &Out) {
  size_t Added = checkCheap(Step, Out);
  if (Opts.DeepCheckEvery != 0 && Step % Opts.DeepCheckEvery == 0)
    Added += checkDeep(Step, Out);
  return Added;
}

size_t InvariantOracle::checkDeep(uint64_t Step,
                                  std::vector<Violation> &Out) {
  size_t Before = Out.size();
  checkCheap(Step, Out);

  std::string Why;
  if (!H.checkConsistency(&Why))
    Out.push_back(make("structural", Step, Why));

  const HeapStats &S = H.stats();
  AuditReport A = auditEvents(Log.events());
  if (!A.Consistent)
    Out.push_back(make("event-stream", Step,
                       "recorded events are internally inconsistent "
                       "(double free, overlap, or move of a dead object)"));
  else if (!A.matches(S)) {
    auto Diff = [](const char *Field, uint64_t Audited, uint64_t Stated) {
      return std::string(Field) + " audited=" + std::to_string(Audited) +
             " stats=" + std::to_string(Stated) + "; ";
    };
    std::string Detail;
    if (A.HighWaterMark != S.HighWaterMark)
      Detail += Diff("HighWaterMark", A.HighWaterMark, S.HighWaterMark);
    if (A.LiveWords != S.LiveWords)
      Detail += Diff("LiveWords", A.LiveWords, S.LiveWords);
    if (A.PeakLiveWords != S.PeakLiveWords)
      Detail += Diff("PeakLiveWords", A.PeakLiveWords, S.PeakLiveWords);
    if (A.TotalAllocatedWords != S.TotalAllocatedWords)
      Detail += Diff("TotalAllocatedWords", A.TotalAllocatedWords,
                     S.TotalAllocatedWords);
    if (A.MovedWords != S.MovedWords)
      Detail += Diff("MovedWords", A.MovedWords, S.MovedWords);
    if (A.NumAllocations != S.NumAllocations)
      Detail += Diff("NumAllocations", A.NumAllocations, S.NumAllocations);
    if (A.NumFrees != S.NumFrees)
      Detail += Diff("NumFrees", A.NumFrees, S.NumFrees);
    if (A.NumMoves != S.NumMoves)
      Detail += Diff("NumMoves", A.NumMoves, S.NumMoves);
    Out.push_back(make("audit-mismatch", Step, Detail));
  }

  if (!auditBudgetHistory(Log.events(), MM.ledger().quotaDenominator()))
    Out.push_back(make("budget-history", Step,
                       "a prefix of the execution moved more than "
                       "allocated/c words"));
  return Out.size() - Before;
}
