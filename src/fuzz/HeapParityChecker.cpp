//===- fuzz/HeapParityChecker.cpp - Live vs reference heap ---------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/HeapParityChecker.h"

#include <cassert>
#include <string>

using namespace pcb;

void HeapParityChecker::observe(const HeapEvent &E) {
  switch (E.Event) {
  case HeapEvent::Kind::Alloc: {
    // Both heaps hand out dense ids in placement order, so a faithful
    // mirror reproduces the live heap's ids exactly.
    ObjectId Id = Ref.place(E.Address, E.Size);
    assert(Id == E.Id && "mirror desynchronized from the event stream");
    (void)Id;
    break;
  }
  case HeapEvent::Kind::Free:
    Ref.free(E.Id);
    break;
  case HeapEvent::Kind::Move:
    Ref.move(E.Id, E.Address);
    break;
  case HeapEvent::Kind::StepEnd:
    break;
  }
}

void HeapParityChecker::checkStep(const std::string &Policy, uint64_t Step,
                                  std::vector<Violation> &Out) const {
  auto Report = [&](const std::string &Detail) {
    Out.push_back(Violation{"heap-parity", Policy, Step, Detail});
  };

  // Free-space structural parity: same blocks, same order.
  const FreeSpaceIndex &Live = H.freeSpace();
  const FlatFreeSpaceIndex &RefFree = Ref.freeSpace();
  if (Live.numBlocks() != RefFree.numBlocks()) {
    Report("live index has " + std::to_string(Live.numBlocks()) +
           " blocks but the reference has " +
           std::to_string(RefFree.numBlocks()));
    return; // the walk below would only repeat the same divergence
  }
  auto LIt = Live.begin();
  for (const auto &[Start, End] : RefFree) {
    auto [LStart, LEnd] = *LIt;
    if (LStart != Start || LEnd != End) {
      Report("block [" + std::to_string(LStart) + ", " +
             std::to_string(LEnd) + ") in the live index but [" +
             std::to_string(Start) + ", " + std::to_string(End) +
             ") in the reference");
      return;
    }
    ++LIt;
  }

  // Query parity at the sizes the policies ask for (powers of two are
  // the adversarial workloads' vocabulary) and the aggregates the
  // telemetry samples at the high-water mark.
  Addr Hwm = H.stats().HighWaterMark;
  auto Expect = [&](const char *What, uint64_t Arg, uint64_t Got,
                    uint64_t Want) {
    if (Got != Want)
      Report(std::string(What) + "(" + std::to_string(Arg) + ") = " +
             std::to_string(Got) + " but the reference says " +
             std::to_string(Want));
  };
  for (uint64_t Size = 1; Size <= 1024; Size *= 4) {
    Expect("firstFit", Size, Live.firstFit(Size), RefFree.firstFit(Size));
    Expect("bestFit", Size, Live.bestFit(Size), RefFree.bestFit(Size));
    Expect("firstFitFrom(hwm/2)", Size, Live.firstFitFrom(Hwm / 2, Size),
           RefFree.firstFitFrom(Hwm / 2, Size));
    Expect("firstFitAligned(.,8)", Size, Live.firstFitAligned(Size, 8),
           RefFree.firstFitAligned(Size, 8));
  }
  if (Hwm != 0) {
    Expect("worstFitBelow(1,hwm)", Hwm, Live.worstFitBelow(1, Hwm),
           RefFree.worstFitBelow(1, Hwm));
    Expect("numBlocksBelow", Hwm, Live.numBlocksBelow(Hwm),
           RefFree.numBlocksBelow(Hwm));
    Expect("largestBlockBelow", Hwm, Live.largestBlockBelow(Hwm),
           RefFree.largestBlockBelow(Hwm));
    Expect("freeWordsBelow", Hwm, Live.freeWordsBelow(Hwm),
           RefFree.freeWordsBelow(Hwm));
  }

  // Object-table parity: same slots, same placements, same liveness.
  if (H.numObjects() != Ref.numObjects()) {
    Report("live heap has " + std::to_string(H.numObjects()) +
           " object slots but the reference has " +
           std::to_string(Ref.numObjects()));
    return;
  }
  for (ObjectId Id = 0; Id != ObjectId(H.numObjects()); ++Id) {
    const Object &L = H.object(Id);
    const Object &R = Ref.object(Id);
    if (L.isLive() != R.isLive()) {
      Report("object " + std::to_string(Id) + " is " +
             (L.isLive() ? "live" : "dead") + " in the live heap but " +
             (R.isLive() ? "live" : "dead") + " in the reference");
      return;
    }
    if (L.isLive() && (L.Address != R.Address || L.Size != R.Size)) {
      Report("object " + std::to_string(Id) + " at [" +
             std::to_string(L.Address) + ", " + std::to_string(L.end()) +
             ") in the live heap but [" + std::to_string(R.Address) + ", " +
             std::to_string(R.end()) + ") in the reference");
      return;
    }
  }

  // Statistics parity: every counter the telemetry exports.
  const HeapStats &LS = H.stats();
  const HeapStats &RS = Ref.stats();
  auto Stat = [&](const char *Field, uint64_t Got, uint64_t Want) {
    if (Got != Want)
      Report(std::string(Field) + " = " + std::to_string(Got) +
             " but the reference says " + std::to_string(Want));
  };
  Stat("TotalAllocatedWords", LS.TotalAllocatedWords, RS.TotalAllocatedWords);
  Stat("LiveWords", LS.LiveWords, RS.LiveWords);
  Stat("PeakLiveWords", LS.PeakLiveWords, RS.PeakLiveWords);
  Stat("HighWaterMark", LS.HighWaterMark, RS.HighWaterMark);
  Stat("MovedWords", LS.MovedWords, RS.MovedWords);
  Stat("NumAllocations", LS.NumAllocations, RS.NumAllocations);
  Stat("NumFrees", LS.NumFrees, RS.NumFrees);
  Stat("NumMoves", LS.NumMoves, RS.NumMoves);

  // Bitboard parity over the canonicalization hooks' window.
  Expect("occupancyMask", 64, H.occupancyMask(64), Ref.occupancyMask(64));
  Expect("objectStartMask", 64, H.objectStartMask(64),
         Ref.objectStartMask(64));
}
