//===- fuzz/DifferentialHarness.cpp - Cross-policy fuzz execution --------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialHarness.h"

#include "fuzz/HeapParityChecker.h"

#include "driver/Execution.h"
#include "driver/TraceIO.h"
#include "mm/ManagerFactory.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <ostream>
#include <stdexcept>

using namespace pcb;

bool DifferentialReport::clean() const {
  if (!Cross.empty())
    return false;
  for (const PolicyRunResult &R : Runs)
    if (!R.clean())
      return false;
  return true;
}

std::vector<Violation> DifferentialReport::allViolations() const {
  std::vector<Violation> All;
  for (const PolicyRunResult &R : Runs)
    All.insert(All.end(), R.Violations.begin(), R.Violations.end());
  All.insert(All.end(), Cross.begin(), Cross.end());
  return All;
}

const PolicyRunResult *DifferentialReport::firstFailing() const {
  for (const PolicyRunResult &R : Runs)
    if (!R.clean())
      return &R;
  return nullptr;
}

std::string DifferentialReport::summary() const {
  std::string Out;
  for (const Violation &V : allViolations())
    Out += V.describe() + "\n";
  return Out;
}

DifferentialHarness::DifferentialHarness() : DifferentialHarness(Options()) {}

DifferentialHarness::DifferentialHarness(Options O) : Opts(std::move(O)) {
  if (Opts.Policies.empty())
    Opts.Policies = allManagerPolicies();
}

PolicyRunResult
DifferentialHarness::runPolicy(const std::string &Policy,
                               const std::vector<TraceOp> &Trace,
                               uint64_t M) const {
  Heap H;
  std::string Error;
  auto MM = createManagerChecked(Policy, H, Opts.C, /*LiveBound=*/M, &Error);
  if (!MM)
    throw std::invalid_argument("differential harness: " + Error);

  PolicyRunResult R;
  R.Policy = Policy;
  R.QuotaC = MM->ledger().quotaDenominator();

  // The harness owns the event callback (rather than handing the log to
  // Execution) so the LogTap fault-injection port can intercept events.
  // The heap-parity mirror is fed the original event first: it tracks
  // the real heap, and must stay immune to injected log corruption.
  EventLog Log;
  std::optional<HeapParityChecker> Parity;
  if (Opts.HeapParity)
    Parity.emplace(H);
  H.setEventCallback([this, &Log, &Parity](const HeapEvent &E) {
    if (Parity)
      Parity->observe(E);
    HeapEvent Copy = E;
    if (!Opts.LogTap || Opts.LogTap(Copy))
      Log.record(Copy);
  });

  TraceReplayProgram P(Trace);
  Execution E(*MM, P, M);
  std::unique_ptr<BudgetController> Ctrl =
      createControllerChecked(Opts.Controller, &Error);
  if (!Ctrl)
    throw std::invalid_argument("differential harness: " + Error);
  attachController(E, *MM, *Ctrl);
  if (Opts.OnExecution)
    Opts.OnExecution(E, Policy);
  InvariantOracle Oracle(H, *MM, Log, {Opts.DeepCheckEvery});

  uint64_t Step = 0;
  bool More = true;
  while (More && R.Violations.size() < Opts.MaxViolationsPerRun) {
    More = E.runStep();
    Log.record(HeapEvent::stepEnd());
    ++Step;
    Oracle.checkStep(Step, R.Violations);
    if (Parity)
      Parity->checkStep(Policy, Step, R.Violations);
  }
  // The endpoint is always checked deeply, whatever the cadence.
  Oracle.checkDeep(Step, R.Violations);
  if (R.Violations.size() > Opts.MaxViolationsPerRun)
    R.Violations.resize(Opts.MaxViolationsPerRun);

  R.Stats = H.stats();
  H.setEventCallback({});
  R.Log = std::move(Log);
  return R;
}

namespace {

/// Appends a cross-policy violation comparing one statistic field.
void compareField(std::vector<Violation> &Out, const char *Field,
                  const PolicyRunResult &Ref, uint64_t RefValue,
                  const PolicyRunResult &Run, uint64_t Value) {
  if (RefValue == Value)
    return;
  Out.push_back(Violation{
      "cross-policy-divergence", Run.Policy, 0,
      std::string(Field) + " = " + std::to_string(Value) + " but " +
          Ref.Policy + " saw " + std::to_string(RefValue) +
          " on the same schedule"});
}

} // namespace

DifferentialReport DifferentialHarness::run(const FuzzSchedule &S) const {
  std::vector<TraceOp> Trace = S.materialize();
  assert(validateTrace(Trace) && "fuzzer produced an invalid trace");
  // The tightest admissible live bound; shrinking may have changed the
  // peak, so it is recomputed per materialization.
  uint64_t M = std::max<uint64_t>(tracePeakLiveWords(Trace), 1);

  DifferentialReport Report;
  Report.Runs.reserve(Opts.Policies.size());
  for (const std::string &Policy : Opts.Policies)
    Report.Runs.push_back(runPolicy(Policy, Trace, M));

  // Program behaviour is manager-independent: every policy must agree on
  // everything except footprint and compaction.
  const PolicyRunResult &Ref = Report.Runs.front();
  for (const PolicyRunResult &R : Report.Runs) {
    compareField(Report.Cross, "TotalAllocatedWords", Ref,
                 Ref.Stats.TotalAllocatedWords, R,
                 R.Stats.TotalAllocatedWords);
    compareField(Report.Cross, "NumAllocations", Ref,
                 Ref.Stats.NumAllocations, R, R.Stats.NumAllocations);
    compareField(Report.Cross, "NumFrees", Ref, Ref.Stats.NumFrees, R,
                 R.Stats.NumFrees);
    compareField(Report.Cross, "LiveWords", Ref, Ref.Stats.LiveWords, R,
                 R.Stats.LiveWords);
    compareField(Report.Cross, "PeakLiveWords", Ref, Ref.Stats.PeakLiveWords,
                 R, R.Stats.PeakLiveWords);

    if (R.Stats.HighWaterMark < R.Stats.PeakLiveWords)
      Report.Cross.push_back(
          Violation{"footprint-below-peak", R.Policy, 0,
                    "footprint " + std::to_string(R.Stats.HighWaterMark) +
                        " < peak live " +
                        std::to_string(R.Stats.PeakLiveWords)});
    if (isNonMovingPolicy(R.Policy) && R.Stats.NumMoves != 0)
      Report.Cross.push_back(
          Violation{"non-moving-moved", R.Policy, 0,
                    "a non-moving policy performed " +
                        std::to_string(R.Stats.NumMoves) + " moves"});
  }

  // Replay determinism: the same schedule through the same policy must
  // reproduce identical statistics.
  if (!Opts.ReplayCheckPolicy.empty()) {
    auto It = std::find_if(Report.Runs.begin(), Report.Runs.end(),
                           [&](const PolicyRunResult &R) {
                             return R.Policy == Opts.ReplayCheckPolicy;
                           });
    if (It != Report.Runs.end()) {
      PolicyRunResult Again = runPolicy(Opts.ReplayCheckPolicy, Trace, M);
      auto Same = [&](const char *Field, uint64_t First, uint64_t Second) {
        if (First == Second)
          return;
        Report.Cross.push_back(Violation{
            "replay-divergence", Opts.ReplayCheckPolicy, 0,
            std::string(Field) + " was " + std::to_string(First) +
                " on the first run but " + std::to_string(Second) +
                " on the second"});
      };
      Same("HighWaterMark", It->Stats.HighWaterMark,
           Again.Stats.HighWaterMark);
      Same("MovedWords", It->Stats.MovedWords, Again.Stats.MovedWords);
      Same("NumMoves", It->Stats.NumMoves, Again.Stats.NumMoves);
    }
  }
  return Report;
}

FuzzSchedule DifferentialHarness::shrink(const FuzzSchedule &S) const {
  return shrink(S,
                [this](const FuzzSchedule &Sub) { return !run(Sub).clean(); });
}

FuzzSchedule DifferentialHarness::shrink(
    const FuzzSchedule &S,
    const std::function<bool(const FuzzSchedule &)> &Fails) const {
  assert(Fails(S) && "shrinking a schedule that does not fail");
  const size_t N = S.Ops.size();
  std::vector<bool> Keep(N, true);
  size_t Evals = 0;
  // The cap bounds worst-case shrink time on pathological predicates; it
  // is far above what the test schedules need.
  const size_t MaxEvals = 2000;

  // Phase 1: remove chunks of operations at halving granularity
  // (ddmin's core loop). A chunk is dropped when the remainder still
  // fails; a free whose allocation was dropped vanishes via subset().
  size_t Chunk = 1;
  while (Chunk * 2 <= N)
    Chunk *= 2;
  for (; Chunk != 0 && Evals < MaxEvals; Chunk /= 2) {
    bool Progress = true;
    while (Progress && Evals < MaxEvals) {
      Progress = false;
      for (size_t Start = 0; Start < N && Evals < MaxEvals; Start += Chunk) {
        size_t End = std::min(Start + Chunk, N);
        bool AnyKept = false;
        for (size_t I = Start; I != End; ++I)
          AnyKept |= Keep[I];
        if (!AnyKept)
          continue;
        std::vector<bool> Candidate = Keep;
        for (size_t I = Start; I != End; ++I)
          Candidate[I] = false;
        ++Evals;
        if (Fails(S.subset(Candidate))) {
          Keep = std::move(Candidate);
          Progress = true;
        }
      }
    }
  }

  FuzzSchedule Min = S.subset(Keep);

  // Phase 2: shrink allocation sizes (halving toward 1) while the
  // schedule still fails, so the reproducer's constants are minimal too.
  bool Progress = true;
  while (Progress && Evals < MaxEvals) {
    Progress = false;
    for (size_t I = 0; I != Min.Ops.size() && Evals < MaxEvals; ++I) {
      FuzzOp &Op = Min.Ops[I];
      if (Op.Op != FuzzOp::Kind::Alloc || Op.Size <= 1)
        continue;
      FuzzSchedule Candidate = Min;
      Candidate.Ops[I].Size = Op.Size / 2;
      ++Evals;
      if (Fails(Candidate)) {
        Min = std::move(Candidate);
        Progress = true;
      }
    }
  }
  assert(Fails(Min) && "shrinking lost the failure");
  return Min;
}

void DifferentialHarness::writeReproducer(std::ostream &OS,
                                          const FuzzSchedule &S,
                                          const PolicyRunResult &Failing) {
  OS << "# pcbound-fuzz-repro policy=" << Failing.Policy
     << " c=" << Failing.QuotaC << " seed=" << S.Seed
     << " pattern=" << (S.Pattern.empty() ? "unknown" : S.Pattern)
     << " ops=" << S.Ops.size() << "\n";
  for (const Violation &V : Failing.Violations)
    OS << "# violation: " << V.describe() << "\n";
  writeEventLog(OS, Failing.Log);
}
