//===- fuzz/IndexParityChecker.h - Live vs reference free index -*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A policy-invisible differential checker: mirrors every heap mutation
/// into the preserved node-based ReferenceFreeSpaceIndex and, at each
/// step boundary, compares the live flat FreeSpaceIndex against it —
/// block-for-block, plus the placement and aggregate queries the
/// managers actually issue. The managers never see the reference index,
/// so a parity violation always means the flat index (or the mirroring
/// contract) drifted, never that a policy behaved differently.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_FUZZ_INDEXPARITYCHECKER_H
#define PCBOUND_FUZZ_INDEXPARITYCHECKER_H

#include "fuzz/InvariantOracle.h"
#include "heap/Heap.h"
#include "heap/HeapEvent.h"
#include "testsupport/ReferenceFreeSpaceIndex.h"

#include <string>
#include <vector>

namespace pcb {

/// Mirrors heap events into a reference free-space index and checks the
/// live index against it at step boundaries.
class IndexParityChecker {
public:
  explicit IndexParityChecker(const Heap &H) : H(H) {}

  /// Mirrors one heap mutation. Must be fed the *uncorrupted* event
  /// stream (before any fault-injection tap): the mirror tracks the real
  /// heap, not the log.
  void observe(const HeapEvent &E);

  /// Compares the live index against the mirror, appending any
  /// divergence to \p Out with Check = "index-parity".
  void checkStep(const std::string &Policy, uint64_t Step,
                 std::vector<Violation> &Out) const;

private:
  const Heap &H;
  ReferenceFreeSpaceIndex Ref;
};

} // namespace pcb

#endif // PCBOUND_FUZZ_INDEXPARITYCHECKER_H
