//===- fuzz/WorkloadFuzzer.cpp - Random schedule generation --------------===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "fuzz/WorkloadFuzzer.h"

#include "driver/Execution.h"
#include "mm/SequentialFitManagers.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace pcb;

std::vector<TraceOp>
FuzzSchedule::materialize(const std::vector<bool> *Keep) const {
  assert((!Keep || Keep->size() == Ops.size()) && "keep mask size mismatch");
  std::vector<TraceOp> Trace;
  Trace.reserve(Ops.size());
  // Ordinal the Pos-th schedule op's allocation got, if kept.
  std::vector<uint64_t> Ordinal(Ops.size(), UINT64_MAX);
  uint64_t Next = 0;
  for (size_t Pos = 0; Pos != Ops.size(); ++Pos) {
    if (Keep && !(*Keep)[Pos])
      continue;
    const FuzzOp &Op = Ops[Pos];
    switch (Op.Op) {
    case FuzzOp::Kind::Alloc:
      Ordinal[Pos] = Next++;
      Trace.push_back(TraceOp::alloc(Op.Size));
      break;
    case FuzzOp::Kind::Free:
      assert(Op.AllocPos < Pos && "free precedes its allocation");
      if (Ordinal[Op.AllocPos] != UINT64_MAX)
        Trace.push_back(TraceOp::release(Ordinal[Op.AllocPos]));
      break;
    }
  }
  return Trace;
}

FuzzSchedule FuzzSchedule::subset(const std::vector<bool> &Keep) const {
  assert(Keep.size() == Ops.size() && "keep mask size mismatch");
  FuzzSchedule Out;
  Out.Seed = Seed;
  Out.Pattern = Pattern;
  std::vector<size_t> NewPos(Ops.size(), SIZE_MAX);
  for (size_t Pos = 0; Pos != Ops.size(); ++Pos) {
    if (!Keep[Pos])
      continue;
    const FuzzOp &Op = Ops[Pos];
    switch (Op.Op) {
    case FuzzOp::Kind::Alloc:
      NewPos[Pos] = Out.Ops.size();
      Out.Ops.push_back(Op);
      break;
    case FuzzOp::Kind::Free:
      if (NewPos[Op.AllocPos] != SIZE_MAX)
        Out.Ops.push_back(FuzzOp::release(NewPos[Op.AllocPos]));
      break;
    }
  }
  return Out;
}

FuzzSchedule pcb::scheduleFromTrace(const std::vector<TraceOp> &Trace,
                                    uint64_t Seed,
                                    const std::string &Pattern) {
  assert(validateTrace(Trace) && "schedule source trace is invalid");
  FuzzSchedule S;
  S.Seed = Seed;
  S.Pattern = Pattern;
  S.Ops.reserve(Trace.size());
  std::vector<size_t> PosOfOrdinal;
  for (const TraceOp &Op : Trace) {
    switch (Op.Op) {
    case TraceOp::Kind::Alloc:
      PosOfOrdinal.push_back(S.Ops.size());
      S.Ops.push_back(FuzzOp::alloc(Op.Value));
      break;
    case TraceOp::Kind::Free:
      S.Ops.push_back(FuzzOp::release(PosOfOrdinal[size_t(Op.Value)]));
      break;
    }
  }
  return S;
}

namespace {

/// Incrementally builds a schedule while tracking the live set, so every
/// pattern respects the live bound and never double-frees.
class ScheduleBuilder {
public:
  explicit ScheduleBuilder(uint64_t LiveBound) : LiveBound(LiveBound) {}

  size_t numOps() const { return Ops.size(); }
  size_t numLive() const { return Live.size(); }
  uint64_t liveWords() const { return LiveWords; }
  bool canAlloc(uint64_t Size) const {
    return LiveWords + Size <= LiveBound;
  }

  void alloc(uint64_t Size) {
    assert(Size != 0 && canAlloc(Size) && "builder breaks the live bound");
    Live.push_back({Ops.size(), Size});
    LiveWords += Size;
    Ops.push_back(FuzzOp::alloc(Size));
  }

  /// Frees the \p LiveIndex-th oldest live object.
  void freeAt(size_t LiveIndex) {
    assert(LiveIndex < Live.size() && "free of a dead object");
    auto [Pos, Size] = Live[LiveIndex];
    Live.erase(Live.begin() + ptrdiff_t(LiveIndex));
    LiveWords -= Size;
    Ops.push_back(FuzzOp::release(Pos));
  }

  void freeNewest() { freeAt(Live.size() - 1); }
  void freeOldest() { freeAt(0); }

  std::vector<FuzzOp> take() { return std::move(Ops); }

private:
  uint64_t LiveBound;
  uint64_t LiveWords = 0;
  std::vector<FuzzOp> Ops;
  /// (schedule position, size) of live allocations, oldest first.
  std::vector<std::pair<size_t, uint64_t>> Live;
};

using Opt = WorkloadFuzzer::Options;

/// Frees one random live object if any; returns false when none is live.
bool freeRandom(ScheduleBuilder &B, Rng &R) {
  if (B.numLive() == 0)
    return false;
  B.freeAt(size_t(R.nextBelow(B.numLive())));
  return true;
}

void genUniform(ScheduleBuilder &B, Rng &R, const Opt &O, size_t N) {
  uint64_t MaxSize = pow2(O.MaxLogSize);
  for (size_t End = B.numOps() + N; B.numOps() < End;) {
    if (B.numLive() != 0 && R.nextBool(0.45)) {
      freeRandom(B, R);
      continue;
    }
    uint64_t Size = R.nextInRange(1, MaxSize);
    if (B.canAlloc(Size))
      B.alloc(Size);
    else if (!freeRandom(B, R))
      B.alloc(1);
  }
}

void genBimodal(ScheduleBuilder &B, Rng &R, const Opt &O, size_t N) {
  uint64_t Huge = pow2(O.MaxLogSize);
  for (size_t End = B.numOps() + N; B.numOps() < End;) {
    if (B.numLive() != 0 && R.nextBool(0.4)) {
      freeRandom(B, R);
      continue;
    }
    uint64_t Size =
        R.nextBool(0.9) ? R.nextInRange(1, 16) : R.nextInRange(Huge / 2, Huge);
    if (B.canAlloc(Size))
      B.alloc(Size);
    else if (!freeRandom(B, R))
      B.alloc(1);
  }
}

void genStackLifo(ScheduleBuilder &B, Rng &R, const Opt &O, size_t N) {
  uint64_t MaxSize = pow2(O.MaxLogSize);
  for (size_t End = B.numOps() + N; B.numOps() < End;) {
    // Ramp up a stack frame worth of objects...
    uint64_t Frame = R.nextInRange(2, 24);
    for (uint64_t I = 0; I != Frame && B.numOps() < End; ++I) {
      uint64_t Size = R.nextInRange(1, MaxSize);
      if (!B.canAlloc(Size))
        break;
      B.alloc(Size);
    }
    // ...then pop most of it, newest first.
    uint64_t Pop = B.numLive() == 0 ? 0 : R.nextBelow(B.numLive()) + 1;
    for (uint64_t I = 0; I != Pop && B.numOps() < End; ++I)
      B.freeNewest();
  }
}

void genQueueFifo(ScheduleBuilder &B, Rng &R, const Opt &O, size_t N) {
  uint64_t MaxSize = pow2(O.MaxLogSize);
  uint64_t Window = R.nextInRange(4, 64);
  for (size_t End = B.numOps() + N; B.numOps() < End;) {
    uint64_t Size = R.nextInRange(1, MaxSize);
    while (B.numOps() < End &&
           (B.numLive() >= Window || !B.canAlloc(Size))) {
      if (B.numLive() == 0) {
        Size = 1;
        break;
      }
      B.freeOldest();
    }
    if (B.numOps() < End)
      B.alloc(Size);
  }
}

void genComb(ScheduleBuilder &B, Rng &R, const Opt &O, size_t N) {
  for (size_t End = B.numOps() + N; B.numOps() < End;) {
    size_t Before = B.numOps();
    // A run of equal small teeth...
    uint64_t Tooth = R.nextInRange(1, std::min<uint64_t>(8, pow2(O.MaxLogSize)));
    size_t RunStart = B.numLive();
    uint64_t Teeth = R.nextInRange(4, 32);
    for (uint64_t I = 0; I != Teeth && B.numOps() < End; ++I) {
      if (!B.canAlloc(Tooth))
        break;
      B.alloc(Tooth);
    }
    // ...then knock out every other tooth, leaving a comb of holes...
    size_t Placed = B.numLive() - RunStart;
    for (size_t I = Placed; I > 1 && B.numOps() < End; I -= 2)
      B.freeAt(RunStart + I - 2);
    // ...that objects two sizes up cannot reuse without compaction.
    uint64_t Big = Tooth * R.nextInRange(2, 4);
    for (uint64_t I = R.nextInRange(1, 4); I != 0 && B.numOps() < End; --I) {
      if (!B.canAlloc(Big) && !freeRandom(B, R))
        break;
      if (B.canAlloc(Big))
        B.alloc(Big);
    }
    if (B.numOps() == Before)
      break; // nothing fits at this live bound; give up on the pattern
  }
}

/// Records \p P running against a first-fit manager until roughly
/// \p TargetOps alloc/free events were captured, then converts the log
/// into a schedule.
std::vector<FuzzOp> recordProgram(Program &P, uint64_t LiveBound,
                                  uint64_t TargetOps) {
  Heap H;
  FirstFitManager MM(H, /*C=*/0.0);
  EventLog Log;
  H.setEventCallback([&Log](const HeapEvent &E) { Log.record(E); });
  Execution E(MM, P, LiveBound);
  while (E.runStep() && Log.size() < TargetOps)
    ;
  FuzzSchedule S = scheduleFromTrace(Log.toTrace(), 0, "");
  return std::move(S.Ops);
}

std::vector<FuzzOp> genChurn(Rng &R, const Opt &O) {
  RandomChurnProgram::Options CO;
  CO.Steps = O.NumOps; // stopped by the op-count cap, not the step count
  CO.TargetOccupancy = 0.85;
  CO.FreeProbability = 0.3;
  CO.MaxLogSize = O.MaxLogSize;
  CO.Seed = R.next();
  RandomChurnProgram P(O.LiveBound, CO);
  return recordProgram(P, O.LiveBound, O.NumOps);
}

std::vector<FuzzOp> genPhase(Rng &R, const Opt &O) {
  MarkovPhaseProgram::Options PO;
  PO.Phases = O.NumOps;
  PO.StepsPerPhase = 6;
  PO.SurvivorFraction = 0.15;
  PO.TargetOccupancy = 0.8;
  PO.MinLogSize = 0;
  PO.MaxLogSize = O.MaxLogSize;
  PO.Seed = R.next();
  MarkovPhaseProgram P(O.LiveBound, PO);
  return recordProgram(P, O.LiveBound, O.NumOps);
}

} // namespace

const std::vector<WorkloadFuzzer::Pattern> &WorkloadFuzzer::allPatterns() {
  static const std::vector<Pattern> Patterns = {
      Pattern::Uniform, Pattern::Bimodal, Pattern::StackLifo,
      Pattern::QueueFifo, Pattern::Comb, Pattern::Churn,
      Pattern::Phase, Pattern::Mixed};
  return Patterns;
}

std::string WorkloadFuzzer::patternName(Pattern P) {
  switch (P) {
  case Pattern::Uniform:
    return "uniform";
  case Pattern::Bimodal:
    return "bimodal";
  case Pattern::StackLifo:
    return "stack-lifo";
  case Pattern::QueueFifo:
    return "queue-fifo";
  case Pattern::Comb:
    return "comb";
  case Pattern::Churn:
    return "churn";
  case Pattern::Phase:
    return "phase";
  case Pattern::Mixed:
    return "mixed";
  case Pattern::Trace:
    return "trace";
  }
  return "unknown";
}

FuzzSchedule WorkloadFuzzer::generate() const {
  assert(Opts.LiveBound >= pow2(Opts.MaxLogSize) &&
         "live bound below the largest object");
  Rng R(Opts.Seed);
  FuzzSchedule S;
  S.Seed = Opts.Seed;
  S.Pattern = patternName(Opts.P);

  if (Opts.P == Pattern::Trace) {
    assert(Opts.TraceOps && "Pattern::Trace needs Options::TraceOps");
    FuzzSchedule Full =
        scheduleFromTrace(*Opts.TraceOps, Opts.Seed, S.Pattern);
    size_t N = Full.Ops.size();
    size_t Window = std::min<size_t>(size_t(Opts.NumOps), N);
    if (Window == N)
      return Full;
    // A seeded contiguous window; subset() re-points frees and drops
    // those whose allocation fell outside, so the window is well-formed.
    size_t Start = size_t(R.nextBelow(N - Window + 1));
    std::vector<bool> Keep(N, false);
    for (size_t I = Start; I != Start + Window; ++I)
      Keep[I] = true;
    return Full.subset(Keep);
  }

  switch (Opts.P) {
  case Pattern::Churn:
    S.Ops = genChurn(R, Opts);
    return S;
  case Pattern::Phase:
    S.Ops = genPhase(R, Opts);
    return S;
  default:
    break;
  }

  ScheduleBuilder B(Opts.LiveBound);
  size_t N = size_t(Opts.NumOps);
  if (Opts.P == Pattern::Mixed) {
    while (B.numOps() < N) {
      size_t Segment = size_t(R.nextInRange(N / 8 + 1, N / 3 + 1));
      Segment = std::min(Segment, N - B.numOps());
      switch (R.nextBelow(5)) {
      case 0:
        genUniform(B, R, Opts, Segment);
        break;
      case 1:
        genBimodal(B, R, Opts, Segment);
        break;
      case 2:
        genStackLifo(B, R, Opts, Segment);
        break;
      case 3:
        genQueueFifo(B, R, Opts, Segment);
        break;
      default:
        genComb(B, R, Opts, Segment);
        break;
      }
    }
  } else if (Opts.P == Pattern::Uniform) {
    genUniform(B, R, Opts, N);
  } else if (Opts.P == Pattern::Bimodal) {
    genBimodal(B, R, Opts, N);
  } else if (Opts.P == Pattern::StackLifo) {
    genStackLifo(B, R, Opts, N);
  } else if (Opts.P == Pattern::QueueFifo) {
    genQueueFifo(B, R, Opts, N);
  } else {
    genComb(B, R, Opts, N);
  }
  S.Ops = B.take();
  return S;
}
