//===- testsupport/FlatFreeSpaceIndex.h - Oracle flat index -----*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintains the complement of the used space — the free blocks — with the
/// placement queries the memory-manager policies need: first fit, best
/// fit, next fit (first fit from a cursor), aligned first fit, and worst
/// fit below a limit.
///
/// The index is a flat, cache-friendly structure: free blocks live in
/// fixed-capacity leaves (sorted arrays of [start, end) runs in address
/// order), and a contiguous directory of per-leaf summaries — first
/// start, largest block size, bitmask of size classes present — lets
/// every query skip whole leaves with sequential scans instead of
/// pointer-chasing node-based containers. A 61-entry size-class summary
/// (presence bitmask, per-class block counts, and a per-class min-address
/// cache) turns first-fit queries into "binary-search near the answer,
/// then scan a couple of cache lines".
///
/// Semantics are identical to the original map/multimap/set-based
/// implementation (kept as ReferenceFreeSpaceIndex in the test-support
/// library and cross-checked continuously by the equivalence property
/// test and the differential fuzzer's heap-parity oracle): all
/// tie-breaks resolve to the lowest address, and the aggregate queries
/// numBlocksBelow / largestBlockBelow stay exact for the telemetry layer.
///
/// The heap model is unbounded above (up to AddrLimit); the index always
/// holds a final "tail" block reaching AddrLimit, so placement queries
/// never fail.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TESTSUPPORT_FLATFREESPACEINDEX_H
#define PCBOUND_TESTSUPPORT_FLATFREESPACEINDEX_H

#include "heap/HeapTypes.h"

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

namespace pcb {

/// Address- and size-indexed free blocks with placement queries.
class FlatFreeSpaceIndex {
  /// A sorted run of free blocks. Starts/Ends are parallel arrays so the
  /// address binary searches touch only the Starts cache lines.
  struct Leaf {
    static constexpr uint32_t Cap = 64;
    uint32_t Count = 0;
    Addr Starts[Cap];
    Addr Ends[Cap];
  };

  /// Directory entry: the per-leaf summary the query scans read. Kept
  /// contiguous (and redundant with the leaf) so pruning a leaf costs one
  /// sequential cache line, not a pointer chase.
  struct LeafMeta {
    Addr FirstStart;    ///< == L->Starts[0]
    uint64_t MaxSize;   ///< largest block size in the leaf
    uint64_t ClassMask; ///< bit K set iff the leaf holds a class-K block
    uint32_t Count;     ///< == L->Count
    Leaf *L;
  };

public:
  /// Initializes with the whole address space [0, AddrLimit) free.
  FlatFreeSpaceIndex();

  FlatFreeSpaceIndex(const FlatFreeSpaceIndex &) = delete;
  FlatFreeSpaceIndex &operator=(const FlatFreeSpaceIndex &) = delete;

  /// Marks [Start, Start + Size) free, coalescing neighbours. The range
  /// must currently be absent from the index (i.e. used).
  void release(Addr Start, uint64_t Size);

  /// Marks [Start, Start + Size) used. The range must be fully free.
  void reserve(Addr Start, uint64_t Size);

  /// True if [Start, Start + Size) is entirely free.
  bool isFree(Addr Start, uint64_t Size) const;

  /// Lowest address where \p Size words fit.
  Addr firstFit(uint64_t Size) const;

  /// Lowest address >= \p From where \p Size words fit (a block
  /// containing \p From counts from \p From onward).
  Addr firstFitFrom(Addr From, uint64_t Size) const;

  /// Address of the smallest free block that fits \p Size (ties broken by
  /// lowest address).
  Addr bestFit(uint64_t Size) const;

  /// Lowest \p Align-aligned address where \p Size words fit.
  /// \p Align must be a power of two.
  Addr firstFitAligned(uint64_t Size, uint64_t Align) const;

  /// Lowest address where \p Size words fit entirely below \p Limit, or
  /// InvalidAddr when no such placement exists.
  Addr firstFitBelow(uint64_t Size, Addr Limit) const;

  /// Start of the free block with the largest span clipped to [0, Limit)
  /// among blocks starting below \p Limit whose clipped span is at least
  /// \p Size (ties broken by lowest address), or InvalidAddr when no such
  /// block exists. This is classic worst fit over the committed heap.
  Addr worstFitBelow(uint64_t Size, Addr Limit) const;

  /// Number of free blocks (including the infinite tail).
  size_t numBlocks() const { return TotalBlocks; }

  /// Free words below \p Limit.
  uint64_t freeWordsBelow(Addr Limit) const;

  /// Free words within [Start, End).
  uint64_t freeWordsIn(Addr Start, Addr End) const;

  /// Number of free blocks that begin below \p Limit. O(leaves): whole
  /// leaves are counted from the directory, only the straddling leaf is
  /// binary-searched.
  size_t numBlocksBelow(Addr Limit) const;

  /// Largest free run clipped to [0, Limit): the maximum over blocks
  /// starting below \p Limit of min(end, Limit) - start. O(leaves):
  /// leaves wholly below the limit answer from their MaxSize summary;
  /// only the leaf straddling \p Limit is scanned.
  uint64_t largestBlockBelow(Addr Limit) const;

  /// Forward iteration over (start, end) free blocks in address order.
  class const_iterator {
  public:
    using value_type = std::pair<Addr, Addr>;
    using reference = value_type;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    value_type operator*() const {
      const Leaf *L = (*Dir)[Li].L;
      return {L->Starts[Slot], L->Ends[Slot]};
    }
    const_iterator &operator++() {
      if (++Slot == (*Dir)[Li].Count) {
        ++Li;
        Slot = 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator Old = *this;
      ++*this;
      return Old;
    }
    bool operator==(const const_iterator &O) const {
      return Li == O.Li && Slot == O.Slot;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    friend class FlatFreeSpaceIndex;
    const_iterator(const std::vector<LeafMeta> *Dir, size_t Li,
                   uint32_t Slot)
        : Dir(Dir), Li(Li), Slot(Slot) {}

    const std::vector<LeafMeta> *Dir;
    size_t Li;
    uint32_t Slot;
  };

  const_iterator begin() const { return const_iterator(&Dir, 0, 0); }
  const_iterator end() const {
    return const_iterator(&Dir, Dir.size(), 0);
  }

private:
  static constexpr size_t NoLeaf = size_t(-1);
  static constexpr unsigned NumClasses = 61;

  /// Size class of a block: floor(log2(size)). Class K holds sizes in
  /// [2^K, 2^(K+1)).
  static unsigned classOf(uint64_t Size);

  /// Index of the last leaf whose FirstStart is <= \p A, or NoLeaf.
  size_t leafFor(Addr A) const;

  /// First slot in \p L whose start is > \p A.
  static uint32_t slotUpperBound(const Leaf &L, Addr A);
  /// First slot in \p L whose start is >= \p A.
  static uint32_t slotLowerBound(const Leaf &L, Addr A);

  /// Recomputes Dir[Li]'s FirstStart/MaxSize/ClassMask/Count from the
  /// leaf. O(leaf size) — a couple of cache lines.
  void refreshSummary(size_t Li);

  /// Inserts block [S, E) at \p Slot of leaf \p Li, splitting the leaf
  /// when full; refreshes affected summaries.
  void insertSlot(size_t Li, uint32_t Slot, Addr S, Addr E);

  /// Erases the block at \p Slot of leaf \p Li, dropping the leaf when it
  /// becomes empty; refreshes the summary otherwise.
  void eraseSlot(size_t Li, uint32_t Slot);

  /// Inserts a block with no free neighbours (used by the constructor and
  /// the no-coalesce release path).
  void insertBlock(Addr S, Addr E);

  /// Size-class accounting: every block is in exactly one class.
  void classAdd(uint64_t Size, Addr Start);
  void classRemove(uint64_t Size);

  /// Lowest address any block of size >= \p Size could start at, from the
  /// per-class min-address cache (a conservative lower bound; exact again
  /// each time a class empties). AddrLimit when no class could fit.
  Addr fitScanHint(unsigned MinClass) const;

  Leaf *newLeaf();
  void recycleLeaf(Leaf *L);

  std::vector<LeafMeta> Dir;                ///< leaf directory, address order
  std::vector<std::unique_ptr<Leaf>> Pool;  ///< owns every leaf ever made
  std::vector<Leaf *> FreeLeaves;           ///< recycled leaves
  size_t TotalBlocks = 0;

  /// 61-entry size-class summary.
  uint64_t ClassBits = 0;             ///< bit K set iff ClassCount[K] > 0
  uint32_t ClassCount[NumClasses] = {};
  Addr ClassMin[NumClasses];          ///< lower bound on min start per class
};

} // namespace pcb

#endif // PCBOUND_TESTSUPPORT_FLATFREESPACEINDEX_H
