//===- testsupport/ReferenceHeap.h - Oracle heap model ----------*- C++ -*-===//
//
// Part of pcbound, a reproduction of Cohen & Petrank, "Limitations of
// Partial Compaction: Towards Practical Bounds" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-bitboard Heap implementation, preserved verbatim as the
/// full-heap oracle for the differential fuzzer and the substrate tests.
/// Originally: the single source of truth for heap state: the object table, the free
/// space, and the footprint accounting. Memory managers are policies on
/// top of this model; they decide *where* to place or move objects, the
/// ReferenceHeap validates and records it.
///
/// Footprint semantics follow the paper: the heap is the smallest
/// consecutive address prefix the manager ever touches, so the heap size
/// HS(A, P) is the historical maximum of (highest used address + 1). Once
/// a word has been used it counts forever (Section 4: "the chunk that it
/// did occupy will remain part of the heap forever").
///
/// \par Thread compatibility
/// ReferenceHeap is thread-compatible: it has no global or static mutable state,
/// so distinct instances may be used concurrently from distinct threads
/// with no synchronization (the experiment runner in src/runner/ gives
/// every grid cell its own ReferenceHeap). A single instance must not be shared
/// across threads without external locking.
///
//===----------------------------------------------------------------------===//

#ifndef PCBOUND_TESTSUPPORT_REFERENCEHEAP_H
#define PCBOUND_TESTSUPPORT_REFERENCEHEAP_H

#include "heap/Heap.h" // for HeapStats
#include "testsupport/FlatFreeSpaceIndex.h"
#include "heap/HeapEvent.h"
#include "heap/HeapTypes.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace pcb {

/// The simulated heap: object table + free-space index + statistics.
class ReferenceHeap {
public:
  ReferenceHeap() = default;
  ReferenceHeap(const ReferenceHeap &) = delete;
  ReferenceHeap &operator=(const ReferenceHeap &) = delete;

  /// Places a new object of \p Size words at \p Address. The target range
  /// must be free (asserted). Returns the new object's id.
  ObjectId place(Addr Address, uint64_t Size);

  /// Frees a live object.
  void free(ObjectId Id);

  /// Moves a live object to \p NewAddress (target must be free and must
  /// not overlap the object's current placement). Counts toward
  /// MovedWords. The caller (memory manager) is responsible for having
  /// charged its compaction budget.
  void move(ObjectId Id, Addr NewAddress);

  /// The object with id \p Id (live or freed).
  const Object &object(ObjectId Id) const {
    assert(Id < Objects.size() && "object id out of range");
    return Objects[Id];
  }

  /// True if \p Id denotes a live object.
  bool isLive(ObjectId Id) const {
    return Id < Objects.size() && Objects[Id].isLive();
  }

  /// Number of object slots ever created (ids are dense in [0, size)).
  size_t numObjects() const { return Objects.size(); }

  /// Placement queries over the free space.
  const FlatFreeSpaceIndex &freeSpace() const { return Free; }

  /// Live words occupying [Start, Start + Size).
  uint64_t usedWordsIn(Addr Start, uint64_t Size) const;

  /// True if [Start, Start + Size) contains no live object words.
  bool isFree(Addr Start, uint64_t Size) const {
    return Free.isFree(Start, Size);
  }

  const HeapStats &stats() const { return Stats; }

  /// Installs an observer invoked after every place/free/move. Pass an
  /// empty function to detach. The observer must not mutate the heap.
  void setEventCallback(std::function<void(const HeapEvent &)> Callback) {
    OnEvent = std::move(Callback);
  }

  /// Full structural self-check: live objects are disjoint, the free
  /// index is exactly their complement, the live-by-address index agrees,
  /// and the statistics match a recount. O(objects + free blocks); meant
  /// for tests and the fuzzing oracle. When \p Why is non-null and the
  /// check fails, it receives a one-line diagnosis of the first
  /// inconsistency found.
  bool checkConsistency(std::string *Why = nullptr) const;

  /// Ids of all live objects, in address order. O(live objects).
  std::vector<ObjectId> liveObjects() const;

  /// Occupancy bitboard of the first \p Count (<= 64) words: bit i is set
  /// iff address i is covered by a live object. Canonicalization hook for
  /// the exact game solver (src/exact/), whose states are exactly such
  /// boards — witness replays cross-check the real heap against the
  /// solver's layout after every event. O(live objects).
  uint64_t occupancyMask(unsigned Count) const;

  /// Companion bitboard: bit i is set iff a live object starts at
  /// address i. Together with occupancyMask this determines the heap
  /// prefix's layout up to object identity. O(live objects).
  uint64_t objectStartMask(unsigned Count) const;

  /// Ids of live objects intersecting [Start, Start + Size), in address
  /// order. O(log live + matches).
  std::vector<ObjectId> liveObjectsIn(Addr Start, uint64_t Size) const;

  /// Id of the lowest-addressed live object starting at or above \p A, or
  /// InvalidObjectId when none exists. O(log live); lets compactors walk
  /// the heap in address order without snapshotting the whole live set.
  ObjectId firstLiveAt(Addr A) const {
    auto It = LiveByAddr.lower_bound(A);
    return It == LiveByAddr.end() ? InvalidObjectId : It->second;
  }

private:
  std::vector<Object> Objects;
  FlatFreeSpaceIndex Free;
  /// Live objects ordered by current address, for range queries.
  std::map<Addr, ObjectId> LiveByAddr;
  HeapStats Stats;
  std::function<void(const HeapEvent &)> OnEvent;
};

} // namespace pcb

#endif // PCBOUND_TESTSUPPORT_REFERENCEHEAP_H
